// Package padpd (per-application power delivery) is the public API of this
// reproduction of Guliani & Swift, "Per-Application Power Delivery"
// (EuroSys 2019).
//
// It re-exports the building blocks a downstream user needs:
//
//   - platforms: the paper's two evaluation chips (Skylake Xeon-SP 4114 and
//     AMD Ryzen 1700X) as simulator configurations;
//   - workloads: SPEC CPU2017-calibrated analytic profiles, the cpuburn
//     power virus, and the websearch closed-loop latency model;
//   - the machine: a discrete-time multicore simulator with per-core DVFS,
//     turbo, AVX licences, C-states, RAPL, and an MSR-level interface;
//   - the policies: the paper's priority policy and the power / frequency /
//     performance proportional-share policies;
//   - the daemon: the userspace control loop that drives a policy from
//     telemetry, in deterministic virtual time or wall-clock real time;
//   - the experiments: a regenerator for every table and figure of the
//     paper's evaluation, plus quantified studies of the paper's
//     discussion points (stability, useful frequency, game-ability,
//     consolidation) and ablations;
//   - the surrounding mechanism stack: cpufreq-style governors, HWP,
//     a thermald-style trip controller, a Linux-powercap sysfs zone,
//     single-core time sharing with throttle compensation, trace
//     record/replay, and a Dynamo-style cluster budget coordinator.
//
// # Quickstart
//
//	chip := padpd.Skylake()
//	m, _ := padpd.NewMachine(chip)
//	m.Pin(padpd.NewInstance(padpd.MustProfile("gcc")), 0)
//	m.Pin(padpd.NewInstance(padpd.MustProfile("cam4")), 1)
//	specs := []padpd.AppSpec{
//		{Name: "gcc", Core: 0, Shares: 90},
//		{Name: "cam4", Core: 1, Shares: 10, AVX: true},
//	}
//	pol, _ := padpd.NewFrequencyShares(chip, specs, padpd.ShareConfig{})
//	d, _ := padpd.NewDaemon(padpd.DaemonConfig{
//		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
//	}, m.Device(), padpd.MachineActuator{M: m})
//	d.AttachVirtual(m)
//	m.Run(60 * time.Second)
//
// See the examples directory for complete programs and DESIGN.md for the
// per-experiment index.
package padpd

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/daemon"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/hwp"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/powercap"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/websearch"
	"repro/internal/workload"
)

// Physical quantities.
type (
	// Hertz is a frequency in hertz.
	Hertz = units.Hertz
	// Watts is a power draw in watts.
	Watts = units.Watts
	// Joules is an energy amount in joules.
	Joules = units.Joules
	// Shares is a proportional-share weight.
	Shares = units.Shares
)

// Frequency constructors.
const (
	KHz = units.KHz
	MHz = units.MHz
	GHz = units.GHz
)

// Platforms.
type (
	// Chip is a single-socket processor configuration.
	Chip = platform.Chip
	// CState is one core idle state of a chip's C-state table.
	CState = cpu.CState
	// FreqSpec is a chip's frequency domain (P-states, turbo, AVX).
	FreqSpec = cpu.FreqSpec
	// TurboBin is one row of a turbo table.
	TurboBin = cpu.TurboBin
)

var (
	// Skylake returns the paper's Intel platform (Xeon-SP 4114).
	Skylake = platform.Skylake
	// Ryzen returns the paper's AMD platform (Ryzen 1700X).
	Ryzen = platform.Ryzen
	// PlatformByName resolves "skylake" or "ryzen".
	PlatformByName = platform.ByName
)

// Workloads.
type (
	// Profile is an analytic workload model.
	Profile = workload.Profile
	// Instance is one running copy of a profile.
	Instance = workload.Instance
)

var (
	// SPEC2017 returns the paper's 11-benchmark subset.
	SPEC2017 = workload.SPEC2017
	// ProfileByName resolves a profile by benchmark name.
	ProfileByName = workload.ByName
	// MustProfile resolves a profile, panicking on unknown names.
	MustProfile = workload.MustByName
	// NewInstance creates a running copy of a profile.
	NewInstance = workload.NewInstance
	// CPUBurn is the cpuburn power virus profile.
	CPUBurn = workload.CPUBurn
	// ProfileFromTrace rebuilds a replayable profile from recorded
	// telemetry (IPS + core power per interval).
	ProfileFromTrace = workload.ProfileFromTrace
)

// TracePoint is one recorded telemetry interval for ProfileFromTrace.
type TracePoint = workload.TracePoint

// The machine.
type (
	// Machine is one simulated socket.
	Machine = sim.Machine
	// MachineOption configures NewMachine.
	MachineOption = sim.Option
)

var (
	// NewMachine builds a simulated socket for a chip.
	NewMachine = sim.New
	// WithTick sets the simulation tick.
	WithTick = sim.WithTick
)

// MSR access.
type (
	// MSRDevice is register-level access to the socket's MSRs.
	MSRDevice = msr.Device
	// FileMSRDevice is the file-backed MSR tree.
	FileMSRDevice = msr.FileDevice
)

var (
	// NewFileMSRDevice opens (creating if needed) a file-backed MSR tree.
	NewFileMSRDevice = msr.NewFileDevice
	// MirrorMSRs copies a register set between devices (e.g. machine to
	// file tree) for out-of-process readers.
	MirrorMSRs = msr.Mirror
	// EncodePerfCtl and DecodePerfCtl convert between frequencies and
	// PERF_CTL register values.
	EncodePerfCtl = msr.EncodePerfCtl
	DecodePerfCtl = msr.DecodePerfCtl
)

// Architectural register addresses for direct MSR work.
const (
	MSRAperf           = msr.IA32Aperf
	MSRMperf           = msr.IA32Mperf
	MSRPerfCtl         = msr.IA32PerfCtl
	MSRPerfStatus      = msr.IA32PerfStatus
	MSRFixedCtr0       = msr.IA32FixedCtr0
	MSRRAPLPowerUnit   = msr.RAPLPowerUnit
	MSRPkgPowerLimit   = msr.PkgPowerLimit
	MSRPkgEnergyStatus = msr.PkgEnergyStatus
	MSRPP0EnergyStatus = msr.PP0EnergyStatus
)

// Telemetry.
type (
	// Sampler is the turbostat-equivalent telemetry reader.
	Sampler = telemetry.Sampler
	// TelemetrySample is one sampling interval's derived telemetry.
	TelemetrySample = telemetry.Sample
)

var (
	// NewSampler builds a telemetry sampler over an MSR device.
	NewSampler = telemetry.NewSampler
)

// Policies.
type (
	// Policy is a differential power-delivery controller.
	Policy = core.Policy
	// AppSpec describes one managed application.
	AppSpec = core.AppSpec
	// AppState is one application's telemetry within a snapshot.
	AppState = core.AppState
	// Snapshot is one control interval's policy input.
	Snapshot = core.Snapshot
	// Action is one per-core policy decision.
	Action = core.Action
	// ShareConfig tunes the proportional-share loops.
	ShareConfig = core.ShareConfig
	// PriorityConfig tunes the priority policy.
	PriorityConfig = core.PriorityConfig
)

var (
	// NewPriority builds the two-level priority policy.
	NewPriority = core.NewPriority
	// NewPriorityShares builds the priority policy with proportional
	// shares within each class (Section 5.1's composition).
	NewPriorityShares = core.NewPriorityShares
	// NewFrequencyShares builds the frequency-share policy.
	NewFrequencyShares = core.NewFrequencyShares
	// NewPerformanceShares builds the performance-share policy.
	NewPerformanceShares = core.NewPerformanceShares
	// NewPowerShares builds the power-share policy (per-core power chips).
	NewPowerShares = core.NewPowerShares
	// ClusterPStates reduces frequency targets to k simultaneous P-states.
	ClusterPStates = core.ClusterPStates
)

// The daemon.
type (
	// Daemon is the userspace control loop.
	Daemon = daemon.Daemon
	// DaemonConfig assembles a daemon.
	DaemonConfig = daemon.Config
	// Actuator applies policy actions to a machine.
	Actuator = daemon.Actuator
	// MachineActuator actuates a simulated machine.
	MachineActuator = daemon.MachineActuator
	// MSRActuator actuates through a bare MSR device.
	MSRActuator = daemon.MSRActuator
)

var (
	// NewDaemon builds a daemon over an MSR device and actuator.
	NewDaemon = daemon.New
)

// Latency-sensitive workload.
type (
	// Websearch is the closed-loop latency model.
	Websearch = websearch.App
	// WebsearchConfig parameterises it.
	WebsearchConfig = websearch.Config
)

var (
	// NewWebsearch builds the websearch model.
	NewWebsearch = websearch.New
)

// Single-core time sharing (the paper's Section 4.3).
type (
	// TimeSharedCore multiplexes applications on one core with CPU shares.
	TimeSharedCore = sched.Core
)

var (
	// NewTimeSharedCore builds a time-shared core at a fixed frequency.
	NewTimeSharedCore = sched.New
)

// Experiments: regenerators for every table and figure of the paper.
var (
	// Figure1 regenerates the RAPL-interference motivation figure.
	Figure1 = experiments.Figure1
	// Figure2 regenerates the Skylake DVFS sweep.
	Figure2 = experiments.Figure2
	// Figure3 regenerates the Ryzen DVFS sweep.
	Figure3 = experiments.Figure3
	// Figure4 regenerates the RAPL × per-core DVFS study.
	Figure4 = experiments.Figure4
	// Figure5 regenerates the unfair-throttling latency figure.
	Figure5 = experiments.Figure5
	// Figure6 regenerates the time-shared power figure.
	Figure6 = experiments.Figure6
	// Figure7 regenerates the Skylake priority experiments.
	Figure7 = experiments.Figure7
	// Figure8 regenerates the Ryzen priority experiments.
	Figure8 = experiments.Figure8
	// Figure9 regenerates the Skylake proportional-share experiments.
	Figure9 = experiments.Figure9
	// Figure10 regenerates the Ryzen proportional-share experiments.
	Figure10 = experiments.Figure10
	// Figure11 regenerates the random-mix experiments.
	Figure11 = experiments.Figure11
	// Figure12 regenerates the latency-sensitive policy comparison.
	Figure12 = experiments.Figure12
	// Figure13 regenerates the latency-experiment frequency series.
	Figure13 = experiments.Figure13
	// Table1 renders the platform feature summary.
	Table1 = experiments.Table1
	// Table2 renders the Skylake priority mixes.
	Table2 = experiments.Table2
	// Table3 renders the random-experiment application sets.
	Table3 = experiments.Table3
	// StabilityStudy quantifies Section 6.2's policy-stability claim.
	StabilityStudy = experiments.StabilityStudy
	// UsefulFreqStudy quantifies the Section 4.4 useful-frequency refinement.
	UsefulFreqStudy = experiments.UsefulFreqStudy
	// GamingStudy quantifies the Section 8 game-ability discussion.
	GamingStudy = experiments.GamingStudy
	// ConsolidationStudy quantifies partial vs all-or-nothing LP starvation.
	ConsolidationStudy = experiments.ConsolidationStudy
	// AblationClustering measures the Ryzen 3-P-state clustering cost.
	AblationClustering = experiments.AblationClustering
	// AblationInterval measures control-interval vs settling time.
	AblationInterval = experiments.AblationInterval
	// SLOStudy compares SLO feedback against the static policies under
	// a diurnal open-loop arrival trace.
	SLOStudy = experiments.SLOStudy
)

// Experiment policy selectors for GamingStudy and friends.
const (
	KindRAPL        = experiments.RAPL
	KindFreqShares  = experiments.FreqShares
	KindPerfShares  = experiments.PerfShares
	KindPowerShares = experiments.PowerShares
	KindPriority    = experiments.PriorityPol
)

// Extension building blocks.
var (
	// UsefulFrequency fits the two-point latency model and returns the
	// highest useful frequency (Section 4.4).
	UsefulFrequency = core.UsefulFrequency
	// AttachGovernor installs a cpufreq-style OS governor on machine cores.
	AttachGovernor = governor.Attach
	// NewThermalModel builds an RC package thermal model.
	NewThermalModel = thermal.NewModel
	// AttachThermalDaemon installs a thermald-style trip controller.
	AttachThermalDaemon = thermal.Attach
	// EnableHWP turns on hardware-managed P-states (CPPC/HWP) on machine
	// cores.
	EnableHWP = hwp.Enable
	// AttachPowercap creates a Linux-powercap-style sysfs tree bound to a
	// machine's RAPL limiter.
	AttachPowercap = powercap.Attach
	// RandomRobustness sweeps random synthetic mixes checking share-policy
	// invariants.
	RandomRobustness = experiments.RandomRobustness
)

// PowercapZone is the sysfs-style package power-capping zone.
type PowercapZone = powercap.Zone

// Cluster-level coordination (the Dynamo-style layer above node daemons).
type (
	// ClusterNode couples a machine with its power-delivery daemon.
	ClusterNode = cluster.Node
	// ClusterConfig parameterises the room-level coordinator.
	ClusterConfig = cluster.Config
	// ClusterCoordinator redistributes a power budget across nodes.
	ClusterCoordinator = cluster.Coordinator
)

var (
	// NewCluster builds a room-level power coordinator over node daemons.
	NewCluster = cluster.New
)

// HWPController is the hardware-managed P-state engine.
type HWPController = hwp.Controller

// Governor and thermal types.
type (
	// GovernorKind selects a cpufreq governor heuristic.
	GovernorKind = governor.Kind
	// GovernorConfig parameterises a governor.
	GovernorConfig = governor.Config
	// Governor is a running per-core governor manager.
	Governor = governor.Manager
	// ThermalModel is the RC package thermal model.
	ThermalModel = thermal.Model
	// ThermalConfig parameterises the thermal daemon.
	ThermalConfig = thermal.Config
	// ThermalDaemon is the thermald-style controller.
	ThermalDaemon = thermal.Daemon
)

// Governor kinds.
const (
	GovPerformance  = governor.Performance
	GovPowersave    = governor.Powersave
	GovUserspace    = governor.Userspace
	GovOndemand     = governor.Ondemand
	GovConservative = governor.Conservative
)
