package padpd

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each iteration regenerates the complete
// experiment (workload construction, warm-up, steady-state measurement),
// so -bench reports the cost of reproducing each result; the experiment
// outputs themselves are validated by the shape tests under
// internal/experiments and recorded in EXPERIMENTS.md.

import (
	"testing"
	"time"
)

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := Table1(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := Table2(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := Table3(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkMachineTick measures the raw cost of advancing the simulated
// machine by one tick with a full 10-core workload — the unit of work
// every experiment is built from.
func BenchmarkMachineTick(b *testing.B) {
	chip := Skylake()
	m, err := NewMachine(chip)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < chip.NumCores; i++ {
		if err := m.Pin(NewInstance(MustProfile("gcc")), i); err != nil {
			b.Fatal(err)
		}
	}
	m.SetPowerLimit(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkDaemonIteration measures one control-loop iteration (sample,
// policy update, actuate) of the frequency-share daemon — the paper's
// per-second overhead and the code path where GC jitter would bite in a
// real deployment.
func BenchmarkDaemonIteration(b *testing.B) {
	chip := Skylake()
	m, err := NewMachine(chip)
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]AppSpec, chip.NumCores)
	for i := 0; i < chip.NumCores; i++ {
		if err := m.Pin(NewInstance(MustProfile("gcc")), i); err != nil {
			b.Fatal(err)
		}
		specs[i] = AppSpec{Name: "gcc", Core: i, Shares: Shares(10 + i)}
	}
	pol, err := NewFrequencyShares(chip, specs, ShareConfig{})
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDaemon(DaemonConfig{Chip: chip, Policy: pol, Apps: specs, Limit: 50},
		m.Device(), MachineActuator{M: m})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
		if _, err := d.RunIteration(time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}
