// Command powercoord runs the room-level power coordinator over remote
// powerd daemons: it polls every node's control-plane agent, water-fills
// the room budget over their bids, and leases each node its share — the
// networked counterpart of the in-process cluster experiments.
//
// Usage:
//
//	powercoord -budget 200 -nodes n0=host0:9090,n1=host1:9090 \
//	           -interval 5s -listen :9190
//
// Nodes may also register themselves at runtime by POSTing to
// /v1/cluster/register on -listen (powerctl register does this).
// Membership changes rebuild the coordinator at the next tick, re-issuing
// the initial equal split before reallocation resumes.
//
// Leases make partitions safe: every grant expires after -ttl unless
// renewed, at which point the node reverts to its fallback cap on its own.
// Nodes that keep timing out are quarantined — their reservation decays to
// the floor — and re-admitted on their first good report.
//
// Observability: every reallocation round is traced (fan-out, per-node
// RPCs, plan, grant wave) into a constant-memory ring served at
// /debug/rounds, node metrics snapshots piggyback on the status poll and
// aggregate into fleet rollups at /debug/fleet (rendered by powerctl
// top), and the room totals are exported on /metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/powerapi"
	"repro/internal/tracing"
	"repro/internal/units"
)

// registry tracks the room's membership: the static -nodes set plus any
// node that registered over the wire.
type registry struct {
	mu    sync.Mutex
	addrs map[string]string // node name -> address
	dirty bool              // membership changed since the last build
}

func (r *registry) add(name, addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.addrs[name]; ok && prev == addr {
		return false
	}
	r.addrs[name] = addr
	r.dirty = true
	return true
}

func (r *registry) known(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.addrs[name]
	return ok
}

// snapshot returns the membership sorted by name and clears the dirty
// flag when take is set.
func (r *registry) snapshot(take bool) (names, addrs []string, changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.addrs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		addrs = append(addrs, r.addrs[n])
	}
	changed = r.dirty
	if take {
		r.dirty = false
	}
	return names, addrs, changed
}

func main() {
	var (
		budget    = flag.Float64("budget", 0, "room power budget in watts (required)")
		nodesArg  = flag.String("nodes", "", "static membership, comma-separated name=addr")
		name      = flag.String("name", "powercoord", "coordinator name stamped into leases")
		listen    = flag.String("listen", "", "serve /metrics and /v1/cluster/ on this address")
		interval  = flag.Duration("interval", 5*time.Second, "reallocation interval")
		ttl       = flag.Duration("ttl", 0, "lease TTL (0 = 3x interval)")
		floorFrac = flag.Float64("floor-fraction", 0.5, "per-node guaranteed fraction of an equal split")
		timeout   = flag.Duration("node-timeout", 2*time.Second, "per-attempt node call timeout")
		retries   = flag.Int("retries", 2, "extra attempts per failed node call")
		quarAfter = flag.Int("quarantine-after", 3, "consecutive failed steps before quarantine")
	)
	flag.Parse()
	if err := run(*budget, *nodesArg, *name, *listen, *interval, *ttl, *floorFrac, *timeout, *retries, *quarAfter); err != nil {
		fmt.Fprintln(os.Stderr, "powercoord:", err)
		os.Exit(1)
	}
}

func run(budget float64, nodesArg, name, listen string, interval, ttl time.Duration,
	floorFrac float64, timeout time.Duration, retries, quarAfter int) error {

	if budget <= 0 {
		return fmt.Errorf("-budget must be positive")
	}
	reg := &registry{addrs: map[string]string{}}
	if nodesArg != "" {
		for _, item := range strings.Split(nodesArg, ",") {
			parts := strings.SplitN(strings.TrimSpace(item), "=", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				return fmt.Errorf("node %q: want name=addr", item)
			}
			reg.add(parts[0], parts[1])
		}
	}

	mreg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(mreg, "powercoord")
	tracer := tracing.New(name, 0)
	fleet := cluster.NewFleet(units.Watts(budget), mreg)
	cfg := cluster.Config{
		Budget:          units.Watts(budget),
		Interval:        interval,
		FloorFraction:   floorFrac,
		LeaseTTL:        ttl,
		NodeTimeout:     timeout,
		Retries:         retries,
		QuarantineAfter: quarAfter,
		Metrics:         mreg,
		Tracer:          tracer,
		Fleet:           fleet,
	}

	var (
		mu    sync.Mutex
		coord *cluster.Coordinator
		names []string
	)

	if listen != "" {
		l, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc(powerapi.ClusterPrefix+"register", func(w http.ResponseWriter, r *http.Request) {
			msg, ok := readClusterMsg(w, r, powerapi.KindRegister)
			if !ok {
				return
			}
			reg2 := msg.(*powerapi.Register)
			if reg2.Node == "" || reg2.Addr == "" {
				writeClusterErr(w, http.StatusBadRequest, powerapi.CodeInvalid, "register needs node and addr")
				return
			}
			if reg.add(reg2.Node, reg2.Addr) {
				fmt.Printf("powercoord: node %s registered at %s\n", reg2.Node, reg2.Addr)
			}
			writeClusterMsg(w, http.StatusOK, &powerapi.RegisterAck{Accepted: true})
		})
		mux.HandleFunc(powerapi.ClusterPrefix+"heartbeat", func(w http.ResponseWriter, r *http.Request) {
			msg, ok := readClusterMsg(w, r, powerapi.KindHeartbeat)
			if !ok {
				return
			}
			hb := msg.(*powerapi.Heartbeat)
			writeClusterMsg(w, http.StatusOK, &powerapi.HeartbeatAck{Known: reg.known(hb.Node)})
		})
		mux.HandleFunc(powerapi.ClusterPrefix+"status", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				writeClusterErr(w, http.StatusMethodNotAllowed, powerapi.CodeBadRequest, "status requires GET")
				return
			}
			mu.Lock()
			c, ns := coord, append([]string(nil), names...)
			mu.Unlock()
			writeRoomStatus(w, units.Watts(budget), c, ns)
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "GET required", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = mreg.WritePrometheus(w)
		})
		mux.HandleFunc("/debug/rounds", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "GET required", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = tracer.Log().Write(w)
		})
		mux.HandleFunc("/debug/fleet", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "GET required", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(fleet.Snapshot())
		})
		hsrv := &http.Server{Handler: mux}
		go func() { _ = hsrv.Serve(l) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = hsrv.Shutdown(ctx)
		}()
		fmt.Printf("powercoord: serving http://%s (/metrics, /debug/fleet, /debug/rounds, %sstatus)\n", l.Addr(), powerapi.ClusterPrefix)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	fmt.Printf("powercoord: %v budget, %v interval\n", units.Watts(budget), interval)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		ns, addrs, changed := reg.snapshot(true)
		if len(ns) == 0 {
			fmt.Println("powercoord: no nodes yet; waiting for registrations")
		} else if changed || func() bool { mu.Lock(); defer mu.Unlock(); return coord == nil }() {
			ts := make([]cluster.Transport, len(ns))
			for i := range ns {
				ts[i] = cluster.NewHTTPNode(ns[i], addrs[i], name).CollectMetrics()
			}
			c, err := cluster.NewOverTransports(ts, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			coord, names = c, ns
			mu.Unlock()
			fmt.Printf("powercoord: coordinating %d node(s): %s\n", len(ns), strings.Join(ns, ", "))
		}
		mu.Lock()
		c := coord
		mu.Unlock()
		if c != nil {
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			err := c.Step(ctx)
			cancel()
			if err != nil {
				fmt.Fprintln(os.Stderr, "powercoord: step:", err)
			}
		}
		select {
		case sig := <-stop:
			fmt.Printf("powercoord: %v, shutting down (leases will expire on their own)\n", sig)
			return nil
		case <-ticker.C:
		}
	}
}

// RoomStatus is the /v1/cluster/status payload.
type RoomStatus struct {
	BudgetWatts     float64    `json:"budget_watts"`
	TotalPowerWatts float64    `json:"total_power_watts"`
	Reallocations   int        `json:"reallocations"`
	Nodes           []RoomNode `json:"nodes"`
}

// RoomNode is one node's row in a RoomStatus.
type RoomNode struct {
	Name        string  `json:"name"`
	LimitWatts  float64 `json:"limit_watts"`
	Quarantined bool    `json:"quarantined,omitempty"`
}

func writeRoomStatus(w http.ResponseWriter, budget units.Watts, c *cluster.Coordinator, names []string) {
	st := RoomStatus{BudgetWatts: float64(budget), Nodes: []RoomNode{}}
	if c != nil {
		st.TotalPowerWatts = float64(c.TotalPower())
		st.Reallocations = c.Reallocations()
		limits := c.Limits()
		for i, n := range names {
			st.Nodes = append(st.Nodes, RoomNode{
				Name:        n,
				LimitWatts:  float64(limits[i]),
				Quarantined: c.Quarantined(i),
			})
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// writeClusterMsg, writeClusterErr, and readClusterMsg mirror the node
// agent's envelope plumbing for the coordinator's endpoints.
func writeClusterMsg(w http.ResponseWriter, status int, msg any) {
	data, err := powerapi.Marshal(msg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", powerapi.ContentType)
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeClusterErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeClusterMsg(w, status, &powerapi.ErrorReply{Code: code, Message: fmt.Sprintf(format, args...)})
}

func readClusterMsg(w http.ResponseWriter, r *http.Request, want string) (any, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeClusterErr(w, http.StatusMethodNotAllowed, powerapi.CodeBadRequest, "%s requires POST", r.URL.Path)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeClusterErr(w, http.StatusBadRequest, powerapi.CodeBadRequest, "reading body: %v", err)
		return nil, false
	}
	msg, err := powerapi.UnmarshalAs(data, want)
	if err != nil {
		writeClusterErr(w, http.StatusBadRequest, powerapi.CodeBadRequest, "%v", err)
		return nil, false
	}
	return msg, true
}
