// Command powercoord runs one tier of the power-delivery hierarchy over
// remote children: it polls every child's control-plane agent,
// water-fills its budget over their bids, and leases each child its
// share — the networked counterpart of the in-process cluster
// experiments.
//
// Usage:
//
//	powercoord -budget 200 -nodes n0=host0:9090,n1=host1:9090 \
//	           -interval 5s -listen :9190
//
// Nodes may also register themselves at runtime by POSTing to
// /v1/cluster/register on -listen (powerctl register does this).
// Membership changes swap the child set at the next tick, carrying the
// acknowledged-grant ledger over so survivors shrink before newcomers
// grow.
//
// Stacked tiers: with -parent, this coordinator is itself a node one
// level up — it serves the standard node agent on -listen (so the
// parent polls its subtree aggregate as one status report and leases it
// one budget), registers itself with the parent, and starts at its
// -fallback cap until the first lease lands. -tier labels the level
// ("row", "building"); children may themselves be powercoord processes,
// to any depth. The same invariants hold recursively: a granted shrink
// is refused until the children's acknowledged caps fit under it, and a
// tier whose own lease expires clamps to -fallback while its children's
// leases lapse into theirs.
//
// Leases make partitions safe: every grant expires after -ttl unless
// renewed, at which point the node reverts to its fallback cap on its
// own. Nodes that keep timing out are quarantined — their reservation
// decays to the floor — and re-admitted on their first good report.
//
// Observability: every reallocation round is traced (fan-out, per-node
// RPCs, plan, grant wave) into a constant-memory ring served at
// /debug/rounds under this tier's round-ID namespace — powerdump -view
// merged joins the rings of stacked tiers into one cross-tier timeline.
// Node metrics snapshots piggyback on the status poll and aggregate
// into fleet rollups at /debug/fleet (rendered by powerctl top), and
// the tier totals are exported on /metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/hierarchy"
	"repro/internal/metrics"
	"repro/internal/powerapi"
	"repro/internal/tracing"
	"repro/internal/units"
)

// registry tracks the room's membership: the static -nodes set plus any
// node that registered over the wire.
type registry struct {
	mu    sync.Mutex
	addrs map[string]string // node name -> address
	dirty bool              // membership changed since the last build
}

func (r *registry) add(name, addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.addrs[name]; ok && prev == addr {
		return false
	}
	r.addrs[name] = addr
	r.dirty = true
	return true
}

func (r *registry) known(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.addrs[name]
	return ok
}

// snapshot returns the membership sorted by name and clears the dirty
// flag when take is set.
func (r *registry) snapshot(take bool) (names, addrs []string, changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.addrs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		addrs = append(addrs, r.addrs[n])
	}
	changed = r.dirty
	if take {
		r.dirty = false
	}
	return names, addrs, changed
}

func main() {
	var (
		budget    = flag.Float64("budget", 0, "tier power budget in watts (required; with -parent, the starting cap until the first lease)")
		nodesArg  = flag.String("nodes", "", "static membership, comma-separated name=addr")
		name      = flag.String("name", "powercoord", "coordinator name stamped into leases and round IDs")
		listen    = flag.String("listen", "", "serve /metrics, /v1/cluster/, and the uplink node agent on this address")
		interval  = flag.Duration("interval", 5*time.Second, "reallocation interval")
		ttl       = flag.Duration("ttl", 0, "lease TTL (0 = 3x interval)")
		floorFrac = flag.Float64("floor-fraction", 0.5, "per-node guaranteed fraction of an equal split")
		timeout   = flag.Duration("node-timeout", 2*time.Second, "per-attempt node call timeout")
		retries   = flag.Int("retries", 2, "extra attempts per failed node call")
		quarAfter = flag.Int("quarantine-after", 3, "consecutive failed steps before quarantine")
		tierLevel = flag.String("tier", "room", "this coordinator's level in the hierarchy (room, row, building)")
		parent    = flag.String("parent", "", "parent coordinator address; register there and take budget as leases")
		fallback  = flag.Float64("fallback", 0, "watts to clamp to when this tier's own lease expires (0 = budget without -parent, half of it with)")
		advertise = flag.String("advertise", "", "address the parent should dial back (default: the bound -listen address)")
	)
	flag.Parse()
	opts := options{
		budget: *budget, nodesArg: *nodesArg, name: *name, listen: *listen,
		interval: *interval, ttl: *ttl, floorFrac: *floorFrac, timeout: *timeout,
		retries: *retries, quarAfter: *quarAfter, tier: *tierLevel,
		parent: *parent, fallback: *fallback, advertise: *advertise,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "powercoord:", err)
		os.Exit(1)
	}
}

type options struct {
	budget    float64
	nodesArg  string
	name      string
	listen    string
	interval  time.Duration
	ttl       time.Duration
	floorFrac float64
	timeout   time.Duration
	retries   int
	quarAfter int
	tier      string
	parent    string
	fallback  float64
	advertise string
}

func run(opts options) error {
	budget, nodesArg, name, listen := opts.budget, opts.nodesArg, opts.name, opts.listen
	interval := opts.interval

	if budget <= 0 {
		return fmt.Errorf("-budget must be positive")
	}
	// Without a parent this tier is a root: its "fallback" is its whole
	// budget, which keeps the floor math identical to the flat room
	// coordinator. Under a parent the budget is a revocable lease, so
	// the default clamp is the guaranteed half.
	if opts.fallback <= 0 {
		opts.fallback = budget
		if opts.parent != "" {
			opts.fallback = budget * 0.5
		}
	}
	reg := &registry{addrs: map[string]string{}}
	if nodesArg != "" {
		for _, item := range strings.Split(nodesArg, ",") {
			parts := strings.SplitN(strings.TrimSpace(item), "=", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				return fmt.Errorf("node %q: want name=addr", item)
			}
			reg.add(parts[0], parts[1])
		}
	}

	if opts.parent != "" && listen == "" {
		return fmt.Errorf("-parent requires -listen: the parent needs an agent to dial back")
	}

	mreg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(mreg, "powercoord")
	tracer := tracing.New(name, 0)
	fleet := cluster.NewFleet(units.Watts(budget), mreg)
	tcfg := hierarchy.TierConfig{
		Name:            name,
		Level:           opts.tier,
		Budget:          units.Watts(budget),
		StartAtFallback: opts.parent != "",
		Fallback:        units.Watts(opts.fallback),
		FloorFraction:   opts.floorFrac,
		Interval:        interval,
		LeaseTTL:        opts.ttl,
		NodeTimeout:     opts.timeout,
		Retries:         opts.retries,
		QuarantineAfter: opts.quarAfter,
		Metrics:         mreg,
		Tracer:          tracer,
		Fleet:           fleet,
	}

	// The tier is built on the first nonempty membership; later changes
	// swap the child set in place, carrying the grant ledger over.
	var (
		mu       sync.Mutex
		tier     *hierarchy.Tier
		names    []string
		addrList []string
	)
	current := func() (*hierarchy.Tier, []string, []string) {
		mu.Lock()
		defer mu.Unlock()
		return tier, append([]string(nil), names...), append([]string(nil), addrList...)
	}

	if listen != "" {
		l, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc(powerapi.ClusterPrefix+"register", func(w http.ResponseWriter, r *http.Request) {
			msg, ok := readClusterMsg(w, r, powerapi.KindRegister)
			if !ok {
				return
			}
			reg2 := msg.(*powerapi.Register)
			if reg2.Node == "" || reg2.Addr == "" {
				writeClusterErr(w, http.StatusBadRequest, powerapi.CodeInvalid, "register needs node and addr")
				return
			}
			if reg.add(reg2.Node, reg2.Addr) {
				fmt.Printf("powercoord: node %s registered at %s\n", reg2.Node, reg2.Addr)
			}
			writeClusterMsg(w, http.StatusOK, &powerapi.RegisterAck{Accepted: true})
		})
		mux.HandleFunc(powerapi.ClusterPrefix+"heartbeat", func(w http.ResponseWriter, r *http.Request) {
			msg, ok := readClusterMsg(w, r, powerapi.KindHeartbeat)
			if !ok {
				return
			}
			hb := msg.(*powerapi.Heartbeat)
			writeClusterMsg(w, http.StatusOK, &powerapi.HeartbeatAck{Known: reg.known(hb.Node)})
		})
		mux.HandleFunc(powerapi.ClusterPrefix+"status", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				writeClusterErr(w, http.StatusMethodNotAllowed, powerapi.CodeBadRequest, "status requires GET")
				return
			}
			t, ns, as := current()
			writeRoomStatus(w, units.Watts(budget), t, ns, as)
		})
		mux.HandleFunc(powerapi.PathPrefix, func(w http.ResponseWriter, r *http.Request) {
			// The uplink: this tier served as one node, for a -parent
			// powercoord (or anything speaking the node protocol).
			t, _, _ := current()
			if t == nil {
				http.Error(w, "tier not assembled yet: no children", http.StatusServiceUnavailable)
				return
			}
			t.Agent().Handler().ServeHTTP(w, r)
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "GET required", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = mreg.WritePrometheus(w)
		})
		mux.HandleFunc("/debug/rounds", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "GET required", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = tracer.Log().Write(w)
		})
		mux.HandleFunc("/debug/fleet", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "GET required", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(fleet.Snapshot())
		})
		hsrv := &http.Server{Handler: mux}
		go func() { _ = hsrv.Serve(l) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = hsrv.Shutdown(ctx)
		}()
		fmt.Printf("powercoord: serving http://%s (/metrics, /debug/fleet, /debug/rounds, %sstatus, uplink %s)\n",
			l.Addr(), powerapi.ClusterPrefix, powerapi.PathPrefix)

		if opts.parent != "" {
			adv := opts.advertise
			if adv == "" {
				adv = l.Addr().String()
			}
			pc := powerapi.NewCoordClient(opts.parent)
			go func() {
				// Heartbeat the parent every interval; (re)register
				// whenever it does not know us — covering both first
				// contact and a parent restart.
				for {
					hctx, hcancel := context.WithTimeout(context.Background(), opts.timeout)
					ack, err := pc.Heartbeat(hctx, name)
					hcancel()
					if err != nil || !ack.Known {
						rctx, rcancel := context.WithTimeout(context.Background(), opts.timeout)
						if _, rerr := pc.Register(rctx, name, adv); rerr != nil {
							fmt.Fprintln(os.Stderr, "powercoord: register with parent:", rerr)
						} else {
							fmt.Printf("powercoord: registered %s tier %q with parent %s\n", opts.tier, name, opts.parent)
						}
						rcancel()
					}
					time.Sleep(interval)
				}
			}()
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	fmt.Printf("powercoord: %v budget, %v interval\n", units.Watts(budget), interval)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		ns, addrs, changed := reg.snapshot(true)
		t, _, _ := current()
		if len(ns) == 0 {
			fmt.Println("powercoord: no nodes yet; waiting for registrations")
		} else if changed || t == nil {
			ts := make([]cluster.Transport, len(ns))
			for i := range ns {
				ts[i] = cluster.NewHTTPNode(ns[i], addrs[i], name).CollectMetrics().DeltaStatus()
			}
			if t == nil {
				nt, err := hierarchy.NewTier(tcfg, ts)
				if err != nil {
					return err
				}
				mu.Lock()
				tier, names, addrList = nt, ns, addrs
				mu.Unlock()
			} else if err := t.SetChildren(ts); err != nil {
				fmt.Fprintln(os.Stderr, "powercoord: membership change:", err)
			} else {
				mu.Lock()
				names, addrList = ns, addrs
				mu.Unlock()
			}
			fmt.Printf("powercoord: coordinating %d node(s): %s\n", len(ns), strings.Join(ns, ", "))
		}
		if t, _, _ = current(); t != nil {
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			err := t.Step(ctx)
			cancel()
			if err != nil {
				fmt.Fprintln(os.Stderr, "powercoord: step:", err)
			}
		}
		select {
		case sig := <-stop:
			fmt.Printf("powercoord: %v, shutting down (leases will expire on their own)\n", sig)
			if t != nil {
				t.Close()
			}
			return nil
		case <-ticker.C:
		}
	}
}

// RoomStatus is the /v1/cluster/status payload. BudgetWatts is the
// budget the tier currently holds — under a parent it moves with the
// leases the parent grants.
type RoomStatus struct {
	BudgetWatts     float64    `json:"budget_watts"`
	TotalPowerWatts float64    `json:"total_power_watts"`
	Reallocations   int        `json:"reallocations"`
	Nodes           []RoomNode `json:"nodes"`

	// Subtree rollups for stacked tiers.
	Tier     string `json:"tier,omitempty"`
	Children int    `json:"children,omitempty"`
	Leaves   int    `json:"leaves,omitempty"`
	Depth    int    `json:"depth,omitempty"`
}

// RoomNode is one node's row in a RoomStatus. Addr lets clients walk
// the hierarchy: a child that is itself a tier serves its own cluster
// status there (powerctl tree recurses on it).
type RoomNode struct {
	Name        string  `json:"name"`
	Addr        string  `json:"addr,omitempty"`
	LimitWatts  float64 `json:"limit_watts"`
	Quarantined bool    `json:"quarantined,omitempty"`
}

func writeRoomStatus(w http.ResponseWriter, budget units.Watts, t *hierarchy.Tier, names, addrs []string) {
	st := RoomStatus{BudgetWatts: float64(budget), Nodes: []RoomNode{}}
	if t != nil {
		c := t.Coordinator()
		st.BudgetWatts = float64(c.Budget())
		st.TotalPowerWatts = float64(c.TotalPower())
		st.Reallocations = c.Reallocations()
		agg := c.Aggregate()
		st.Tier = t.Level()
		st.Children = agg.Children
		st.Leaves = agg.Leaves
		st.Depth = agg.Depth
		limits := c.Limits()
		for i, n := range names {
			rn := RoomNode{
				Name:        n,
				LimitWatts:  float64(limits[i]),
				Quarantined: c.Quarantined(i),
			}
			if i < len(addrs) {
				rn.Addr = addrs[i]
			}
			st.Nodes = append(st.Nodes, rn)
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// writeClusterMsg, writeClusterErr, and readClusterMsg mirror the node
// agent's envelope plumbing for the coordinator's endpoints.
func writeClusterMsg(w http.ResponseWriter, status int, msg any) {
	data, err := powerapi.Marshal(msg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", powerapi.ContentType)
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeClusterErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeClusterMsg(w, status, &powerapi.ErrorReply{Code: code, Message: fmt.Sprintf(format, args...)})
}

func readClusterMsg(w http.ResponseWriter, r *http.Request, want string) (any, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeClusterErr(w, http.StatusMethodNotAllowed, powerapi.CodeBadRequest, "%s requires POST", r.URL.Path)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeClusterErr(w, http.StatusBadRequest, powerapi.CodeBadRequest, "reading body: %v", err)
		return nil, false
	}
	msg, err := powerapi.UnmarshalAs(data, want)
	if err != nil {
		writeClusterErr(w, http.StatusBadRequest, powerapi.CodeBadRequest, "%v", err)
		return nil, false
	}
	return msg, true
}
