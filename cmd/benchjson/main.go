// Command benchjson emits and gates the repo's machine-readable
// performance trajectory.
//
// Generate (writes BENCH_coordinator.json and BENCH_loop.json):
//
//	benchjson -out .            # full trajectory
//	benchjson -smoke -out /tmp  # CI's quick pass, largest sizes dropped
//
// Gate (compare a fresh run against a committed baseline):
//
//	benchjson -compare BENCH_coordinator.json:/tmp/BENCH_coordinator.json
//
// The comparator exits non-zero when any entry regressed more than
// -threshold (default 20%) past the cross-machine calibration; pass
// -absolute when both files came from the same machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		out       = flag.String("out", "", "directory to write BENCH_*.json into (generation mode)")
		smoke     = flag.Bool("smoke", false, "drop the largest benchmark configurations (CI smoke pass)")
		compare   = flag.String("compare", "", "baseline:candidate file pair to gate (may repeat, comma-separated)")
		threshold = flag.Float64("threshold", bench.DefaultThreshold, "tolerated fractional ns/op regression")
		absolute  = flag.Bool("absolute", false, "disable machine-speed calibration when comparing")
	)
	flag.Parse()

	switch {
	case *compare != "":
		if err := runCompare(*compare, *threshold, *absolute); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *out != "":
		if err := runGenerate(*out, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchjson: nothing to do; pass -out DIR or -compare BASE:CAND")
		os.Exit(2)
	}
}

func runGenerate(dir string, smoke bool) error {
	coord := bench.NewFile("coordinator", smoke)
	entries, err := bench.CoordinatorTrajectory(smoke)
	if err != nil {
		return err
	}
	coord.Entries = entries
	hier, err := bench.HierarchyTrajectory(smoke)
	if err != nil {
		return err
	}
	coord.Entries = append(coord.Entries, hier...)
	path := filepath.Join(dir, "BENCH_coordinator.json")
	if err := coord.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries, rev %s)\n", path, len(coord.Entries), short(coord.GitRev))

	loop := bench.NewFile("loop", smoke)
	if loop.Entries, err = bench.LoopTrajectory(smoke); err != nil {
		return err
	}
	ledgerEntries, err := bench.LedgerTrajectory(smoke)
	if err != nil {
		return err
	}
	loop.Entries = append(loop.Entries, ledgerEntries...)
	svcEntries, err := bench.SvcTrajectory(smoke)
	if err != nil {
		return err
	}
	loop.Entries = append(loop.Entries, svcEntries...)
	sloEntries, err := bench.SLOLoopTrajectory(smoke)
	if err != nil {
		return err
	}
	loop.Entries = append(loop.Entries, sloEntries...)
	path = filepath.Join(dir, "BENCH_loop.json")
	if err := loop.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries, rev %s)\n", path, len(loop.Entries), short(loop.GitRev))
	return nil
}

func runCompare(spec string, threshold float64, absolute bool) error {
	failed := false
	for _, pair := range strings.Split(spec, ",") {
		base, cand, ok := strings.Cut(pair, ":")
		if !ok {
			return fmt.Errorf("benchjson: -compare wants baseline:candidate, got %q", pair)
		}
		bf, err := bench.ReadFile(base)
		if err != nil {
			return err
		}
		cf, err := bench.ReadFile(cand)
		if err != nil {
			return err
		}
		for _, w := range bench.ShapeWarnings(bf, cf) {
			fmt.Fprintf(os.Stderr, "%s: warning: %s\n", base, w)
		}
		regs, err := bench.Compare(bf, cf, bench.CompareOptions{Threshold: threshold, Absolute: absolute})
		if err != nil {
			return err
		}
		if len(regs) == 0 {
			fmt.Printf("%s: ok (%d entries, baseline rev %s, candidate rev %s)\n",
				base, len(bf.Entries), short(bf.GitRev), short(cf.GitRev))
			continue
		}
		failed = true
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "%s: REGRESSION %s\n", base, r)
		}
	}
	if failed {
		return fmt.Errorf("benchjson: performance regressions detected")
	}
	return nil
}

func short(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}
