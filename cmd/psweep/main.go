// Command psweep characterises the power-management mechanisms of a
// simulated platform: DVFS frequency sweeps (the paper's Section 3 study)
// and RAPL limit sweeps, with configurable benchmarks and ranges.
//
// Usage:
//
//	psweep -platform skylake -mode dvfs -benchmarks gcc,lbm -step 200
//	psweep -platform skylake -mode rapl -benchmarks gcc -limits 85,60,40
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	var (
		plat    = flag.String("platform", "skylake", "skylake or ryzen")
		mode    = flag.String("mode", "dvfs", "dvfs or rapl")
		bench   = flag.String("benchmarks", strings.Join(workload.Names(), ","), "comma-separated benchmark names")
		stepMHz = flag.Int("step", 200, "dvfs sweep step in MHz")
		limits  = flag.String("limits", "85,70,60,50,40", "rapl sweep limits in watts")
	)
	flag.Parse()

	chip, err := platform.ByName(*plat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psweep:", err)
		os.Exit(1)
	}
	names := strings.Split(*bench, ",")
	switch *mode {
	case "dvfs":
		err = dvfs(chip, names, units.Hertz(*stepMHz)*units.MHz)
	case "rapl":
		err = raplSweep(chip, names, *limits)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "psweep:", err)
		os.Exit(1)
	}
}

// measure runs one benchmark alone at a fixed request and returns its IPS
// and the package power.
func measure(chip platform.Chip, name string, req units.Hertz, limit units.Watts) (float64, units.Watts, units.Hertz, error) {
	m, err := sim.New(chip, sim.WithTick(2*time.Millisecond))
	if err != nil {
		return 0, 0, 0, err
	}
	p, err := workload.ByName(name)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := m.Pin(workload.NewInstance(p), 0); err != nil {
		return 0, 0, 0, err
	}
	if err := m.SetRequest(0, req); err != nil {
		return 0, 0, 0, err
	}
	if limit > 0 {
		m.SetPowerLimit(limit)
	}
	m.Run(2 * time.Second)
	i0 := m.Counters(0).Instr
	e0 := m.PackageEnergy()
	window := 8 * time.Second
	m.Run(window)
	ips := (m.Counters(0).Instr - i0) / window.Seconds()
	pwr := (m.PackageEnergy() - e0).Power(window)
	return ips, pwr, m.EffectiveFreq(0), nil
}

func dvfs(chip platform.Chip, names []string, step units.Hertz) error {
	tb := trace.Table{
		Title:  "DVFS sweep on " + chip.Name,
		Header: []string{"benchmark", "request MHz", "effective MHz", "IPS", "pkg W", "nJ/instr"},
	}
	for _, name := range names {
		for f := chip.Freq.Min; f <= chip.Freq.Max(); f += step {
			ips, pwr, eff, err := measure(chip, name, f, 0)
			if err != nil {
				return err
			}
			epi := "-"
			if ips > 0 {
				epi = fmt.Sprintf("%.2f", float64(pwr)/ips*1e9)
			}
			tb.AddRow(name, trace.Hz(f), trace.Hz(eff), fmt.Sprintf("%.3g", ips), trace.W(pwr), epi)
		}
	}
	return tb.Render(os.Stdout)
}

func raplSweep(chip platform.Chip, names []string, limitArg string) error {
	if !chip.HardwareRAPLLimit {
		return fmt.Errorf("%s has no documented hardware RAPL limiter", chip.Name)
	}
	tb := trace.Table{
		Title:  "RAPL sweep on " + chip.Name,
		Header: []string{"benchmark", "limit W", "effective MHz", "IPS", "pkg W"},
	}
	for _, name := range names {
		for _, ls := range strings.Split(limitArg, ",") {
			lw, err := strconv.ParseFloat(strings.TrimSpace(ls), 64)
			if err != nil {
				return fmt.Errorf("bad limit %q: %w", ls, err)
			}
			ips, pwr, eff, err := measure(chip, name, chip.Freq.Max(), units.Watts(lw))
			if err != nil {
				return err
			}
			tb.AddRow(name, ls, trace.Hz(eff), fmt.Sprintf("%.3g", ips), trace.W(pwr))
		}
	}
	return tb.Render(os.Stdout)
}
