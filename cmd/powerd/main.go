// Command powerd runs the per-application power delivery daemon on a
// simulated platform and reports per-application telemetry, mirroring how
// the paper's userspace daemon was driven.
//
// Usage:
//
//	powerd -platform skylake -policy frequency -limit 50 \
//	       -apps gcc:0:90,cam4:1:10 -duration 60s
//
// Each app is name:core:shares (share policies) or name:core:hp|lp
// (priority policy). The daemon runs in virtual time and prints one
// telemetry row per application at the end, plus periodic progress.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/obs"
	"repro/internal/opconfig"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	var (
		plat     = flag.String("platform", "skylake", "skylake or ryzen")
		policy   = flag.String("policy", "frequency", "frequency, performance, power, or priority")
		limit    = flag.Float64("limit", 50, "package power limit in watts")
		apps     = flag.String("apps", "gcc:0:90,cam4:1:10", "comma-separated name:core:shares or name:core:hp|lp")
		duration = flag.Duration("duration", 60*time.Second, "virtual run time")
		interval = flag.Duration("interval", time.Second, "control interval")
		tracePth = flag.String("trace", "", "write a per-iteration CSV time series to this file")
		confPath = flag.String("config", "", "JSON config file (overrides -platform/-policy/-limit/-apps/-interval)")
		listen   = flag.String("listen", "", "serve /metrics, /debug/status, /healthz on this address (e.g. :9090)")
	)
	flag.Parse()

	var err error
	if *confPath != "" {
		err = runConfig(*confPath, *duration, *tracePth, *listen)
	} else {
		err = run(*plat, *policy, units.Watts(*limit), *apps, *duration, *interval, *tracePth, *listen)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerd:", err)
		os.Exit(1)
	}
}

// runConfig drives the daemon from an operator config file.
func runConfig(path string, duration time.Duration, tracePath, listen string) error {
	cfg, err := opconfig.Load(path)
	if err != nil {
		return err
	}
	chip, specs, pol, err := cfg.Build()
	if err != nil {
		return err
	}
	return drive(chip, specs, pol, cfg.Policy, cfg.Limit(), cfg.Interval(), duration, tracePath, listen)
}

func parseApps(arg string, priority bool) ([]core.AppSpec, error) {
	var specs []core.AppSpec
	for _, item := range strings.Split(arg, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("app %q: want name:core:shares or name:core:hp|lp", item)
		}
		p, err := workload.ByName(parts[0])
		if err != nil {
			return nil, err
		}
		coreID, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("app %q: bad core: %w", item, err)
		}
		spec := core.AppSpec{Name: p.Name, Core: coreID, AVX: p.AVX}
		if priority {
			switch strings.ToLower(parts[2]) {
			case "hp":
				spec.HighPriority = true
			case "lp":
			default:
				return nil, fmt.Errorf("app %q: want hp or lp", item)
			}
		} else {
			shares, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("app %q: bad shares: %w", item, err)
			}
			spec.Shares = units.Shares(shares)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func run(plat, policy string, limit units.Watts, apps string, duration, interval time.Duration, tracePath, listen string) error {
	chip, err := platform.ByName(plat)
	if err != nil {
		return err
	}
	specs, err := parseApps(apps, policy == "priority")
	if err != nil {
		return err
	}
	for i := range specs {
		if policy == "performance" {
			// Offline standalone baseline at maximum frequency.
			p := workload.MustByName(specs[i].Name)
			specs[i].BaselineIPS = p.IPS(chip.Freq.Ceiling(1, p.AVX))
		}
	}
	var pol core.Policy
	switch policy {
	case "frequency":
		pol, err = core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	case "performance":
		pol, err = core.NewPerformanceShares(chip, specs, core.ShareConfig{})
	case "power":
		pol, err = core.NewPowerShares(chip, specs, core.ShareConfig{})
	case "priority":
		pol, err = core.NewPriority(chip, specs, core.PriorityConfig{Limit: limit})
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}
	if err != nil {
		return err
	}
	return drive(chip, specs, pol, policy, limit, interval, duration, tracePath, listen)
}

// drive builds the machine, pins the configured applications, and runs the
// daemon for the requested virtual duration with periodic progress output.
// When listen is non-empty the observability endpoints are served there for
// the life of the run.
func drive(chip platform.Chip, specs []core.AppSpec, pol core.Policy, policy string,
	limit units.Watts, interval, duration time.Duration, tracePath, listen string) error {

	reg := metrics.NewRegistry()
	journal := decisions.NewJournal(0)

	m, err := sim.New(chip, sim.WithMetrics(reg))
	if err != nil {
		return err
	}
	for i := range specs {
		p := workload.MustByName(specs[i].Name)
		if err := m.Pin(workload.NewInstance(p), specs[i].Core); err != nil {
			return err
		}
	}

	dcfg := daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit, Interval: interval,
		Metrics: reg, Journal: journal,
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("opening trace file: %w", err)
		}
		defer f.Close()
		tw := trace.NewSnapshotWriter(f, specs)
		defer tw.Flush()
		dcfg.OnSnapshot = tw.Observe
	}
	d, err := daemon.New(dcfg, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		return err
	}
	if err := d.AttachVirtual(m); err != nil {
		return err
	}

	if listen != "" {
		l, err := net.Listen("tcp", listen)
		if err != nil {
			return fmt.Errorf("observability listener: %w", err)
		}
		defer l.Close()
		srv := obs.New(reg, journal, obs.DaemonStatusFunc(d))
		go func() { _ = srv.Serve(l) }()
		fmt.Printf("powerd: observability on http://%s (/metrics, /debug/status, /healthz)\n", l.Addr())
	}

	fmt.Printf("powerd: %s, %s policy, %v limit, %d apps, %v virtual run\n",
		chip.Name, pol.Name(), limit, len(specs), duration)
	step := duration / 10
	if step < interval {
		step = interval
	}
	for elapsed := time.Duration(0); elapsed < duration; elapsed += step {
		m.Run(step)
		if err := d.Err(); err != nil {
			return err
		}
		snap := d.LastSnapshot()
		fmt.Printf("t=%-6s pkg=%-8s limit=%s\n", m.Now(), snap.PackagePower, snap.Limit)
	}

	snap := d.LastSnapshot()
	tb := trace.Table{
		Title:  "final state",
		Header: []string{"app", "core", "shares", "prio", "MHz", "IPS", "W/core", "parked"},
	}
	for _, a := range snap.Apps {
		prio := "lp"
		if a.Spec.HighPriority {
			prio = "hp"
		}
		if policy != "priority" {
			prio = "-"
		}
		tb.AddRow(a.Spec.Name, strconv.Itoa(a.Spec.Core), strconv.Itoa(int(a.Spec.Shares)), prio,
			trace.Hz(a.Freq), fmt.Sprintf("%.3g", a.IPS), trace.W(a.Power),
			fmt.Sprintf("%v", a.Parked))
	}
	return tb.Render(os.Stdout)
}
