// Command powerd runs the per-application power delivery daemon on a
// simulated platform and reports per-application telemetry, mirroring how
// the paper's userspace daemon was driven.
//
// Usage:
//
//	powerd -platform skylake -policy frequency -limit 50 \
//	       -apps gcc:0:90,cam4:1:10 -duration 60s
//
// Each app is name:core:shares (share policies) or name:core:hp|lp
// (priority policy). The daemon runs in virtual time and prints one
// telemetry row per application at the end, plus periodic progress.
//
// A flight recorder runs by default (-flight=false disables): every MSR
// access, policy decision, and actuation lands in a constant-memory ring.
// SIGQUIT (ctrl-\) snapshots the ring to a dump file in -flight-dump-dir
// without stopping the run, the -flight-overlimit / -flight-slo triggers
// dump automatically, and POST /debug/flight/dump on -listen streams one.
// Analyse or replay dumps with powerdump.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/msr"
	"repro/internal/obs"
	"repro/internal/opconfig"
	"repro/internal/platform"
	"repro/internal/powerapi"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/trace"
	"repro/internal/tracing"
	"repro/internal/units"
	"repro/internal/workload"
)

// runOpts bundles the cross-cutting flags that every run mode threads
// through to drive.
type runOpts struct {
	duration  time.Duration
	tracePath string
	listen    string
	nodeName  string
	fallback  units.Watts
	pprofOn   bool
	flightOn  bool
	flightCap int
	triggers  daemon.FlightTriggers
	faults    fault.Schedule
	faultSeed int64
	rates     ledger.RateSchedule

	// services are the latency services a -config file declared SLOs
	// for; their cores are driven by the service model, not a pinned
	// workload profile, and sloTargets are the live p99 objectives the
	// daemon stamps onto their telemetry.
	services   []svc.Config
	sloTargets []core.SLOTarget
}

func main() {
	var (
		plat     = flag.String("platform", "skylake", "skylake or ryzen")
		policy   = flag.String("policy", "frequency", "frequency, performance, power, or priority")
		limit    = flag.Float64("limit", 50, "package power limit in watts")
		apps     = flag.String("apps", "gcc:0:90,cam4:1:10", "comma-separated name:core:shares or name:core:hp|lp")
		duration = flag.Duration("duration", 60*time.Second, "virtual run time")
		interval = flag.Duration("interval", time.Second, "control interval")
		tracePth = flag.String("trace", "", "write a per-iteration CSV time series to this file")
		confPath = flag.String("config", "", "JSON config file (overrides -platform/-policy/-limit/-apps/-interval)")
		listen   = flag.String("listen", "", "serve /metrics, /debug/status, /healthz on this address (e.g. :9090)")
		nodeName = flag.String("node-name", "", "control-plane node name; serves /v1/power/ on -listen for powercoord and powerctl")
		fallback = flag.Float64("fallback", 0, "safe cap in watts a lease expiry reverts to (0 = the configured limit)")
		pprofOn  = flag.Bool("debug-pprof", false, "also serve /debug/pprof/ (CPU/heap/block profiles) on -listen")
		flightOn = flag.Bool("flight", true, "run the flight recorder (MSR accesses, decisions, actuations)")
		fltCap   = flag.Int("flight-cap", 0, "flight-recorder ring capacity per source (0 = default)")
		fltDir   = flag.String("flight-dump-dir", ".", "directory flight dumps are written to")
		fltOver  = flag.Duration("flight-overlimit", 0, "dump when power exceeds the limit continuously for this long (0 = off)")
		fltSLO   = flag.Duration("flight-slo", 0, "dump when one control iteration exceeds this wall-clock latency (0 = off)")
		faults   = flag.String("faults", "", "fault schedule, inline (';'-separated entries) or @file; enables the resilient daemon")
		faultSd  = flag.Int64("fault-seed", 1, "seed for probabilistic fault decisions (same seed = same fault pattern)")
		rates    = flag.String("energy-rates", "", `energy rate schedule "start=usd_per_kwh:gco2_per_kwh,..." (e.g. "0=0.12:420,8h=0.08:250"); empty = defaults`)
	)
	flag.Parse()

	rateSched := ledger.DefaultRates
	if *rates != "" {
		var rerr error
		if rateSched, rerr = ledger.ParseRateSchedule(*rates); rerr != nil {
			fmt.Fprintln(os.Stderr, "powerd:", rerr)
			os.Exit(1)
		}
	}

	var sched fault.Schedule
	if *faults != "" {
		text := *faults
		if strings.HasPrefix(text, "@") {
			data, rerr := os.ReadFile(text[1:])
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "powerd: reading fault schedule:", rerr)
				os.Exit(1)
			}
			text = string(data)
		}
		var perr error
		if sched, perr = fault.ParseSchedule(text); perr != nil {
			fmt.Fprintln(os.Stderr, "powerd:", perr)
			os.Exit(1)
		}
	}

	opts := runOpts{
		duration:  *duration,
		tracePath: *tracePth,
		listen:    *listen,
		nodeName:  *nodeName,
		fallback:  units.Watts(*fallback),
		pprofOn:   *pprofOn,
		flightOn:  *flightOn,
		flightCap: *fltCap,
		triggers: daemon.FlightTriggers{
			Dir:          *fltDir,
			OverLimitFor: *fltOver,
			IterationSLO: *fltSLO,
		},
		faults:    sched,
		faultSeed: *faultSd,
		rates:     rateSched,
	}

	var err error
	if *confPath != "" {
		err = runConfig(*confPath, opts)
	} else {
		err = run(*plat, *policy, units.Watts(*limit), *apps, *interval, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerd:", err)
		os.Exit(1)
	}
}

// runConfig drives the daemon from an operator config file.
func runConfig(path string, opts runOpts) error {
	cfg, err := opconfig.Load(path)
	if err != nil {
		return err
	}
	chip, specs, pol, err := cfg.Build()
	if err != nil {
		return err
	}
	if opts.services, err = cfg.BuildServices(); err != nil {
		return err
	}
	opts.sloTargets = cfg.SLOTargets()
	return drive(chip, specs, pol, cfg.Policy, cfg.Limit(), cfg.Interval(), opts)
}

func parseApps(arg string, priority bool) ([]core.AppSpec, error) {
	var specs []core.AppSpec
	for _, item := range strings.Split(arg, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("app %q: want name:core:shares or name:core:hp|lp", item)
		}
		p, err := workload.ByName(parts[0])
		if err != nil {
			return nil, err
		}
		coreID, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("app %q: bad core: %w", item, err)
		}
		spec := core.AppSpec{Name: p.Name, Core: coreID, AVX: p.AVX}
		if priority {
			switch strings.ToLower(parts[2]) {
			case "hp":
				spec.HighPriority = true
			case "lp":
			default:
				return nil, fmt.Errorf("app %q: want hp or lp", item)
			}
		} else {
			shares, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("app %q: bad shares: %w", item, err)
			}
			spec.Shares = units.Shares(shares)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func run(plat, policy string, limit units.Watts, apps string, interval time.Duration, opts runOpts) error {
	chip, err := platform.ByName(plat)
	if err != nil {
		return err
	}
	specs, err := parseApps(apps, policy == "priority")
	if err != nil {
		return err
	}
	for i := range specs {
		if policy == "performance" {
			// Offline standalone baseline at maximum frequency.
			p := workload.MustByName(specs[i].Name)
			specs[i].BaselineIPS = p.IPS(chip.Freq.Ceiling(1, p.AVX))
		}
	}
	pol, err := opconfig.PolicyFor(policy, chip, specs, limit)
	if err != nil {
		return err
	}
	return drive(chip, specs, pol, policy, limit, interval, opts)
}

// drive builds the machine, pins the configured applications, and runs the
// daemon for the requested virtual duration with periodic progress output.
// When opts.listen is non-empty the observability endpoints are served
// there for the life of the run.
func drive(chip platform.Chip, specs []core.AppSpec, pol core.Policy, policy string,
	limit units.Watts, interval time.Duration, opts runOpts) (err error) {

	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg, "powerd")
	journal := decisions.NewJournal(0)
	var rec *flight.Recorder
	if opts.flightOn {
		rec = flight.New(opts.flightCap)
	}

	m, err := sim.New(chip, sim.WithMetrics(reg), sim.WithFlightRecorder(rec))
	if err != nil {
		return err
	}
	// Latency-service cores are pinned by the service model below, not a
	// workload profile — their "app" entries only exist to give the
	// policy shares and core ownership.
	svcCores := make(map[int]bool)
	for _, sc := range opts.services {
		for _, c := range sc.Cores {
			svcCores[c] = true
		}
	}
	for i := range specs {
		if svcCores[specs[i].Core] {
			continue
		}
		p := workload.MustByName(specs[i].Name)
		if err := m.Pin(workload.NewInstance(p), specs[i].Core); err != nil {
			return err
		}
	}
	var svcModel *svc.Model
	if len(opts.services) > 0 {
		if svcModel, err = svc.NewModel(opts.services...); err != nil {
			return err
		}
		if err := svcModel.Attach(m); err != nil {
			return err
		}
	}

	// With a fault schedule the injector wraps the device (so the daemon
	// reads through it) and drives window transitions off virtual time;
	// resilient mode is implied — a fault run with a fail-fast daemon would
	// just exit on the first EIO.
	dev := msr.Device(m.Device())
	var inj *fault.Injector
	if len(opts.faults) > 0 {
		inj = fault.New(opts.faults, opts.faultSeed)
		inj.Instrument(reg)
		inj.Flight(rec)
		inj.Drive(m)
		dev = inj.WrapDevice(dev)
	}

	// The energy ledger is always on: attribution costs one lock and a few
	// hundred integer ops per interval, and post-hoc "which app burned the
	// budget" questions can't be answered from data nobody recorded.
	led, err := ledger.New(ledger.Config{
		Chip: chip, Apps: specs, Rates: opts.rates, Metrics: reg, Flight: rec,
	})
	if err != nil {
		return err
	}

	dcfg := daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit, Interval: interval,
		Metrics: reg, Journal: journal, Flight: rec, Triggers: opts.triggers,
		Ledger: led,
	}
	if svcModel != nil {
		dcfg.SLO = svcModel
		dcfg.SLOTargets = opts.sloTargets
	}
	if inj != nil {
		dcfg.Resilience = &daemon.Resilience{}
	}
	dcfg.Triggers.OnDump = func(path, reason string, derr error) {
		if derr != nil {
			fmt.Fprintf(os.Stderr, "powerd: flight dump (%s) failed: %v\n", reason, derr)
			return
		}
		fmt.Printf("powerd: flight dump (%s) written to %s\n", reason, path)
	}
	if opts.tracePath != "" {
		f, ferr := os.Create(opts.tracePath)
		if ferr != nil {
			return fmt.Errorf("opening trace file: %w", ferr)
		}
		tw := trace.NewSnapshotWriter(f, specs)
		defer func() {
			// The writer is buffered; a dropped flush error would silently
			// truncate the trace.
			if cerr := tw.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing trace file: %w", cerr)
			}
		}()
		dcfg.OnSnapshot = tw.Observe
	}
	d, err := daemon.New(dcfg, dev, daemon.MachineActuator{M: m, Dev: dev})
	if err != nil {
		return err
	}
	if err := d.AttachVirtual(m); err != nil {
		return err
	}

	if rec != nil {
		// SIGQUIT (ctrl-\) snapshots the flight recorder without stopping
		// the run, like the JVM's thread-dump handler.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			for range quit {
				if path, derr := d.DumpFlight("sigquit"); derr != nil {
					fmt.Fprintln(os.Stderr, "powerd: flight dump failed:", derr)
				} else {
					fmt.Println("powerd: flight dump written to", path)
				}
			}
		}()
	}

	if opts.listen != "" {
		l, lerr := net.Listen("tcp", opts.listen)
		if lerr != nil {
			return fmt.Errorf("observability listener: %w", lerr)
		}
		var srvOpts []obs.Option
		srvOpts = append(srvOpts, obs.WithLedger(led))
		if opts.pprofOn {
			srvOpts = append(srvOpts, obs.WithPprof())
		}
		if rec != nil {
			srvOpts = append(srvOpts, obs.WithFlight(rec))
		}
		if opts.nodeName != "" {
			// The control-plane agent rides on the observability listener:
			// coordinators lease budget and operators reconfigure through
			// /v1/power/ on the same port. Every coordinator round this node
			// serves is traced into a ring at /debug/rounds, joinable with
			// the coordinator's own trace by round ID (powerdump -view merged).
			tracer := tracing.New(opts.nodeName, 0)
			agent, aerr := powerapi.NewAgent(powerapi.AgentConfig{
				Name:       opts.nodeName,
				Daemon:     d,
				Fallback:   opts.fallback,
				PolicyName: policy,
				Metrics:    reg,
				Flight:     rec,
				Tracer:     tracer,
				Ledger:     led,
			})
			if aerr != nil {
				l.Close()
				return aerr
			}
			defer agent.Close()
			srvOpts = append(srvOpts,
				obs.WithHandler(powerapi.PathPrefix, agent.Handler()),
				obs.WithRounds(tracer))
		}
		srv := obs.New(reg, journal, obs.DaemonStatusFunc(d), srvOpts...)
		go func() { _ = srv.Serve(l) }()
		defer func() {
			// In-flight scrapes get a grace period instead of a reset.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if serr := srv.Shutdown(ctx); serr != nil && err == nil {
				err = fmt.Errorf("observability shutdown: %w", serr)
			}
		}()
		fmt.Printf("powerd: observability on http://%s (/metrics, /debug/status, /healthz)\n", l.Addr())
		if opts.nodeName != "" {
			fmt.Printf("powerd: control plane on http://%s%s (node %q)\n", l.Addr(), powerapi.PathPrefix, opts.nodeName)
		}
	}

	fmt.Printf("powerd: %s, %s policy, %v limit, %d apps, %v virtual run\n",
		chip.Name, pol.Name(), limit, len(specs), opts.duration)
	if inj != nil {
		fmt.Printf("powerd: fault schedule: %d windows, last closes at %v, seed %d\n",
			len(opts.faults), opts.faults.End(), opts.faultSeed)
	}
	// SIGINT/SIGTERM stop the run at the next progress step, so the final
	// table still prints and the observability server shuts down cleanly.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	step := opts.duration / 10
	if step < interval {
		step = interval
	}
	// The machine advances in chunks much smaller than a progress step so
	// a signal (or a coordinator-driven shutdown) is noticed within a
	// fraction of a wall-clock second even on very long virtual runs.
	chunk := 10 * time.Minute
	if chunk < interval {
		chunk = interval
	}
loop:
	for elapsed := time.Duration(0); elapsed < opts.duration; {
		target := elapsed + step
		if target > opts.duration {
			target = opts.duration
		}
		for elapsed < target {
			select {
			case sig := <-stop:
				fmt.Printf("powerd: %v, shutting down\n", sig)
				break loop
			default:
			}
			c := chunk
			if elapsed+c > target {
				c = target - elapsed
			}
			m.Run(c)
			if err := d.Err(); err != nil {
				return err
			}
			elapsed += c
		}
		snap := d.LastSnapshot()
		fmt.Printf("t=%-6s pkg=%-8s limit=%s\n", m.Now(), snap.PackagePower, snap.Limit)
	}

	snap := d.LastSnapshot()
	sum := led.Summarize()
	tb := trace.Table{
		Title:  "final state",
		Header: []string{"app", "core", "shares", "prio", "MHz", "IPS", "W/core", "parked", "joules", "energy%"},
	}
	for i, a := range snap.Apps {
		prio := "lp"
		if a.Spec.HighPriority {
			prio = "hp"
		}
		if policy != "priority" {
			prio = "-"
		}
		joules, frac := "-", "-"
		if i < len(sum.Apps) {
			joules = fmt.Sprintf("%.1f", sum.Apps[i].Joules)
			frac = fmt.Sprintf("%.1f", sum.Apps[i].EnergyFrac*100)
		}
		tb.AddRow(a.Spec.Name, strconv.Itoa(a.Spec.Core), strconv.Itoa(int(a.Spec.Shares)), prio,
			trace.Hz(a.Freq), fmt.Sprintf("%.3g", a.IPS), trace.W(a.Power),
			fmt.Sprintf("%v", a.Parked), joules, frac)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("powerd: energy: %.1f J total, %.1f J overshoot, %.1f J unattributed, %.1f J excluded, $%.6f, %.2f gCO2\n",
		sum.TotalJoules, sum.OvershootJoules,
		float64(sum.UnattributedUJ)/1e6, float64(sum.ExcludedUJ)/1e6,
		sum.CostUSD, sum.CarbonGrams)
	if svcModel != nil {
		for _, s := range svcModel.Services() {
			target := "no target"
			for _, t := range opts.sloTargets {
				if t.Service == s.Name() {
					verdict := "met"
					switch p99 := s.WindowPercentile(99); {
					case p99 <= 0:
						verdict = "no samples in window"
					case p99 > t.P99.Seconds():
						verdict = "MISSED"
					}
					target = fmt.Sprintf("target %v (%s)", t.P99, verdict)
					break
				}
			}
			fmt.Printf("powerd: service %s: p50 %.1fms p90 %.1fms p99 %.1fms, %d done, %d dropped, %d timed out, %s\n",
				s.Name(), s.WindowPercentile(50)*1e3, s.WindowPercentile(90)*1e3, s.WindowPercentile(99)*1e3,
				s.Completed(), s.Dropped(), s.TimedOut(), target)
		}
	}
	if inj != nil {
		var parts []string
		for _, c := range []fault.Class{fault.ClassEIO, fault.ClassStuck, fault.ClassTorn,
			fault.ClassLatency, fault.ClassThermal, fault.ClassRAPL, fault.ClassOffline} {
			if n := inj.Effects(c); n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", c, n))
			}
		}
		if lat := inj.TotalLatency(); lat > 0 {
			parts = append(parts, "added-latency="+lat.String())
		}
		if len(parts) > 0 {
			fmt.Println("powerd: fault effects:", strings.Join(parts, " "))
		}
	}
	return nil
}
