package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tracing"
)

// writeLog round-trips a log through the same files powerdump reads.
func writeLog(t *testing.T, dir, name string, l tracing.Log) string {
	t.Helper()
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if ferr != nil {
		t.Fatalf("merged: %v (output: %s)", ferr, buf.String())
	}
	return buf.String()
}

func TestMergedViewJoinsLogs(t *testing.T) {
	coord := tracing.Log{Origin: "coord", Rounds: []tracing.Round{{
		ID: 1, Origin: "coord", Start: 0, End: 10 * time.Millisecond,
		Spans: []tracing.Span{
			{Name: "report", Node: "n0", Start: 0, End: 2 * time.Millisecond},
			{Name: "report", Node: "n1", Start: 0, End: 9 * time.Millisecond},
			{Name: "plan", Start: 9 * time.Millisecond, End: 9*time.Millisecond + 100*time.Microsecond},
		},
	}}}
	n0 := tracing.Log{Origin: "n0", Rounds: []tracing.Round{{
		ID: 1, Origin: "n0", Start: 0, End: time.Millisecond,
		Spans: []tracing.Span{{Name: "receive", Start: 0, End: time.Millisecond}},
	}}}
	// n1 recorded nothing for round 1: a partition gap.
	n1 := tracing.Log{Origin: "n1"}

	dir := t.TempDir()
	paths := []string{
		writeLog(t, dir, "coord.json", coord),
		writeLog(t, dir, "n0.json", n0),
		writeLog(t, dir, "n1.json", n1),
	}

	out := capture(t, func() error { return merged(paths, true) })
	var tl tracing.Timeline
	if err := json.Unmarshal([]byte(out), &tl); err != nil {
		t.Fatalf("-json output is not a Timeline: %v\n%s", err, out)
	}
	if tl.Coordinator != "coord" || len(tl.Rounds) != 1 {
		t.Fatalf("timeline = %+v", tl)
	}
	r := tl.Rounds[0]
	if r.ID != 1 || len(r.Nodes) != 2 {
		t.Fatalf("round = %+v", r)
	}
	byNode := map[string]tracing.NodeRound{}
	for _, n := range r.Nodes {
		byNode[n.Node] = n
	}
	if n := byNode["n0"]; n.Record == nil || n.Missing {
		t.Errorf("n0 should have a node-side record: %+v", n)
	}
	if n := byNode["n1"]; !n.Missing {
		t.Errorf("n1 should be a partition gap: %+v", n)
	}
	if tl.GapRounds != 1 {
		t.Errorf("GapRounds = %d, want 1", tl.GapRounds)
	}

	// The text rendering names the gap too.
	txt := capture(t, func() error { return merged(paths, false) })
	for _, want := range []string{"round 1", "n0", "MISSING", "plan"} {
		if !bytes.Contains([]byte(txt), []byte(want)) {
			t.Errorf("text output missing %q:\n%s", want, txt)
		}
	}
}

// TestMergedViewCrossTier feeds merged a stacked-tier set of logs: the
// building root's rounds, a row tier whose log holds both its agent
// records (under the root's round IDs) and its own coordination rounds,
// and a leaf coordinated by the row. The row must appear twice — as a
// node of the root round and as a sub-timeline owning the leaf.
func TestMergedViewCrossTier(t *testing.T) {
	const (
		rootRound = 1<<32 | 7 // distinct round-ID namespaces per tier
		rowRound  = 2<<32 | 3
	)
	root := tracing.Log{Origin: "building", Rounds: []tracing.Round{{
		ID: rootRound, Origin: "building", Start: 0, End: 10 * time.Millisecond,
		Spans: []tracing.Span{
			{Name: "report", Node: "row0", Start: 0, End: 2 * time.Millisecond},
			{Name: "plan", Start: 2 * time.Millisecond, End: 3 * time.Millisecond},
		},
	}}}
	row := tracing.Log{Origin: "row0", Rounds: []tracing.Round{
		{ // agent side: the root's round, seen from below
			ID: rootRound, Origin: "row0", Start: 0, End: time.Millisecond,
			Spans: []tracing.Span{{Name: "receive", Start: 0, End: time.Millisecond}},
		},
		{ // coordinator side: the row's own round over its leaves
			ID: rowRound, Origin: "row0", Start: 3 * time.Millisecond, End: 8 * time.Millisecond,
			Spans: []tracing.Span{
				{Name: "report", Node: "leaf0", Start: 3 * time.Millisecond, End: 4 * time.Millisecond},
				{Name: "plan", Start: 4 * time.Millisecond, End: 5 * time.Millisecond},
			},
		},
	}}
	leaf := tracing.Log{Origin: "leaf0", Rounds: []tracing.Round{{
		ID: rowRound, Origin: "leaf0", Start: 3 * time.Millisecond, End: 4 * time.Millisecond,
		Spans: []tracing.Span{{Name: "receive", Start: 3 * time.Millisecond, End: 4 * time.Millisecond}},
	}}}

	dir := t.TempDir()
	paths := []string{
		writeLog(t, dir, "root.json", root),
		writeLog(t, dir, "row0.json", row),
		writeLog(t, dir, "leaf0.json", leaf),
	}

	out := capture(t, func() error { return merged(paths, true) })
	var tl tracing.Timeline
	if err := json.Unmarshal([]byte(out), &tl); err != nil {
		t.Fatalf("-json output is not a Timeline: %v\n%s", err, out)
	}
	if tl.Coordinator != "building" || len(tl.Rounds) != 1 {
		t.Fatalf("root timeline = %+v", tl)
	}
	if r := tl.Rounds[0]; r.ID != rootRound || len(r.Nodes) != 1 ||
		r.Nodes[0].Node != "row0" || r.Nodes[0].Record == nil {
		t.Fatalf("root round should join row0's agent record: %+v", tl.Rounds[0])
	}
	if len(tl.Tiers) != 1 {
		t.Fatalf("want one sub-tier timeline, got %+v", tl.Tiers)
	}
	sub := tl.Tiers[0]
	if sub.Coordinator != "row0" || len(sub.Rounds) != 1 {
		t.Fatalf("sub-tier = %+v", sub)
	}
	if r := sub.Rounds[0]; r.ID != rowRound || len(r.Nodes) != 1 ||
		r.Nodes[0].Node != "leaf0" || r.Nodes[0].Record == nil {
		t.Fatalf("row round should join leaf0's record: %+v", sub.Rounds[0])
	}

	txt := capture(t, func() error { return merged(paths, false) })
	for _, want := range []string{`coordinator "building"`, `tier "row0"`, "leaf0"} {
		if !bytes.Contains([]byte(txt), []byte(want)) {
			t.Errorf("text output missing %q:\n%s", want, txt)
		}
	}
}
