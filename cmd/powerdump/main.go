// Command powerdump decodes flight-recorder dumps (written by powerd's
// SIGQUIT handler, the daemon's automatic triggers, or POST
// /debug/flight/dump) and turns them into something a human can debug
// from:
//
//	powerdump dump.fr                  # summary: metadata + event census
//	powerdump -view timeline dump.fr   # every event, one line each
//	powerdump -view spans dump.fr      # per-interval sample→decide→actuate trees
//	powerdump -view anomalies dump.fr  # over-limit excursions, throttle bursts, parks
//	powerdump -view energy dump.fr     # energy ledger rebuilt from cumulative events
//	powerdump -replay dump.fr          # re-execute against a fresh simulator and diff
//
// The merged view joins distributed round traces (GET /debug/rounds on
// the coordinator and each node, or tracing logs written by tests) into
// one cross-node timeline keyed by round ID, flagging stragglers and
// partition gaps. The root coordinator's log comes first; logs from
// stacked tiers (powercoord -parent) nest as per-tier sub-timelines:
//
//	powerdump -view merged root.json row0.json row1.json leaf0.json ...
//
// -json switches the anomalies, energy, and merged views to
// machine-readable output for scripting and CI.
//
// Replay rebuilds the machine from the dump's metadata, re-applies the
// recorded MSR writes and park decisions at their recorded virtual times,
// and re-issues every recorded read: a clean dump reproduces bit for bit,
// and any divergence is printed with the first differing sequence number.
// A replay with mismatches exits non-zero, so CI can gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/flight"
	"repro/internal/flight/replay"
	"repro/internal/ledger"
	"repro/internal/msr"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/units"
)

func main() {
	var (
		view     = flag.String("view", "summary", "summary, timeline, spans, anomalies, energy, or merged")
		interval = flag.Int("interval", -1, "restrict timeline/spans to one control interval (-1 = all)")
		limit    = flag.Int("n", 0, "print at most n timeline events (0 = all)")
		doReplay = flag.Bool("replay", false, "deterministically replay the dump and diff against the recording")
		jsonOut  = flag.Bool("json", false, "machine-readable output (anomalies, energy, and merged views)")
	)
	flag.Parse()
	if *view == "merged" {
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "usage: powerdump -view merged [-json] coord.json node.json [node.json ...]")
			os.Exit(2)
		}
		if err := merged(flag.Args(), *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "powerdump:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: powerdump [-view summary|timeline|spans|anomalies|energy|merged] [-json] [-replay] dump.fr")
		os.Exit(2)
	}
	d, err := flight.ReadDumpFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerdump:", err)
		os.Exit(1)
	}
	if *doReplay {
		if err := runReplay(d); err != nil {
			fmt.Fprintln(os.Stderr, "powerdump:", err)
			os.Exit(1)
		}
		return
	}
	switch *view {
	case "summary":
		summary(d)
	case "timeline":
		timeline(d, *interval, *limit)
	case "spans":
		spans(d, *interval)
	case "anomalies":
		anomalies(d, *jsonOut)
	case "energy":
		energyView(d, *jsonOut)
	default:
		fmt.Fprintf(os.Stderr, "powerdump: unknown view %q\n", *view)
		os.Exit(2)
	}
}

// merged joins one coordinator round-trace log with any number of node
// logs into a cross-node timeline. Logs from stacked tiers compose: a
// mid-tier coordinator's log joins the root timeline as a node (its
// agent records carry the root's round IDs) and additionally surfaces
// as a sub-timeline of its own rounds merged against the remaining
// logs (tracing.MergeTree).
func merged(paths []string, jsonOut bool) error {
	coord, err := tracing.ReadLogFile(paths[0])
	if err != nil {
		return err
	}
	nodes := make([]tracing.Log, 0, len(paths)-1)
	for _, p := range paths[1:] {
		nl, err := tracing.ReadLogFile(p)
		if err != nil {
			return err
		}
		nodes = append(nodes, nl)
	}
	tl := tracing.MergeTree(coord, nodes)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tl)
	}
	renderTimeline(tl)
	return nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d)/1e6) }

func renderTimeline(tl tracing.Timeline) {
	fmt.Printf("merged timeline: coordinator %q, %d round(s), %d with partition gaps\n",
		tl.Coordinator, len(tl.Rounds), tl.GapRounds)
	for _, r := range tl.Rounds {
		line := fmt.Sprintf("round %-5d wall %s", r.ID, ms(r.End-r.Start))
		if r.Plan != nil {
			line += "  plan " + ms(r.Plan.Latency())
		}
		if r.Straggler != "" {
			line += "  straggler=" + r.Straggler
		}
		fmt.Println(line)
		for _, n := range r.Nodes {
			switch {
			case n.Missing:
				fmt.Printf("  %-12s MISSING (partition gap: no node-side record)\n", n.Node)
			default:
				row := fmt.Sprintf("  %-12s", n.Node)
				if n.Report != nil {
					row += "  report " + ms(n.Report.Latency())
					if n.Report.Err != "" {
						row += " ERR:" + n.Report.Err
					}
				}
				if n.Grant != nil {
					row += "  grant " + ms(n.Grant.Latency())
					if n.Grant.Err != "" {
						row += " ERR:" + n.Grant.Err
					}
				}
				if n.Record != nil {
					row += "  node-side " + ms(n.Record.Latency())
				}
				if n.Straggler {
					row += "  STRAGGLER"
				}
				fmt.Println(row)
			}
		}
	}
	if len(tl.Stragglers) > 0 {
		fmt.Println("stragglers:")
		for _, s := range tl.Stragglers {
			fmt.Printf("  %-12s %d round(s), worst %s\n", s.Node, s.Rounds, ms(s.Worst))
		}
	}
	for _, sub := range tl.Tiers {
		fmt.Printf("\n--- tier %q ---\n", sub.Coordinator)
		renderTimeline(sub)
	}
}

func mhz(v uint64) string    { return fmt.Sprintf("%.0fMHz", units.Hertz(v).MHzF()) }
func uwatts(v uint64) string { return fmt.Sprintf("%.1fW", float64(v)/1e6) }

// describe renders one event's payload.
func describe(e flight.Event) string {
	switch e.Kind {
	case flight.KindMSRRead:
		return fmt.Sprintf("cpu%-2d %-12s = %#x", e.Core, msr.RegName(e.Arg), e.Value)
	case flight.KindMSRWrite:
		return fmt.Sprintf("cpu%-2d %-12s <- %#x", e.Core, msr.RegName(e.Arg), e.Value)
	case flight.KindDecision:
		return fmt.Sprintf("%-20s pkg=%s limit=%s", flight.ReasonFromCode(e.Arg), uwatts(e.Value), uwatts(e.Aux))
	case flight.KindActuate:
		s := fmt.Sprintf("core%-2d %s", e.Core, flight.ActName(e.Arg))
		if e.Arg == flight.ActSetFreq {
			s += " " + mhz(e.Value)
		}
		return s
	case flight.KindRAPLThrottle, flight.KindRAPLRelease:
		return fmt.Sprintf("cap=%s pkg=%s", mhz(e.Value), uwatts(e.Aux))
	case flight.KindCStateSleep:
		return fmt.Sprintf("core%-2d -> C-state %d", e.Core, e.Value)
	case flight.KindCStateWake:
		return fmt.Sprintf("core%-2d <- C-state %d (exit %v)", e.Core, int(e.Arg)-1, time.Duration(e.Value))
	case flight.KindConstraint:
		return fmt.Sprintf("core%-2d bound by %s", e.Core, flight.ConstraintFromCode(e.Arg))
	case flight.KindFaultInject, flight.KindFaultClear:
		verb := "open"
		if e.Kind == flight.KindFaultClear {
			verb = "close"
		}
		scope := "pkg"
		if e.Core >= 0 {
			scope = fmt.Sprintf("cpu%d", e.Core)
		}
		s := fmt.Sprintf("%-5s %-8s %-5s", verb, flight.FaultName(e.Arg), scope)
		switch e.Arg {
		case flight.FaultThermal:
			s += " cap=" + mhz(e.Value)
		case flight.FaultRAPL:
			s += " limit=" + uwatts(e.Value)
		case flight.FaultLatency:
			s += " delay=" + time.Duration(e.Value).String()
		case flight.FaultEIO:
			s += fmt.Sprintf(" prob=%.2f", float64(e.Value)/1e6)
		}
		return s
	case flight.KindHealth:
		return fmt.Sprintf("core%-2d %s (telemetry %s)",
			e.Core, flight.HealthName(e.Arg), telemetry.CoreStatus(e.Value))
	case flight.KindLease:
		node := ""
		if e.Core >= 0 {
			node = fmt.Sprintf("node%-2d ", e.Core)
		}
		s := fmt.Sprintf("%s%-8s cap=%s", node, flight.LeaseName(e.Arg), uwatts(e.Value))
		switch e.Arg {
		case flight.LeaseGrant, flight.LeaseRenew:
			s += fmt.Sprintf(" ttl=%v", time.Duration(e.Aux))
		case flight.LeaseExpire, flight.LeaseFallback:
			s += " was=" + uwatts(e.Aux)
		}
		return s
	case flight.KindReconfigure:
		node := ""
		if e.Core >= 0 {
			node = fmt.Sprintf("node%-2d ", e.Core)
		}
		s := fmt.Sprintf("%s%-8s limit=%s", node, flight.ReconfigName(e.Arg), uwatts(e.Value))
		if e.Arg == flight.ReconfigLimit {
			s += " was=" + uwatts(e.Aux)
		}
		return s
	case flight.KindEnergy:
		acct := flight.EnergyArgName(e.Arg)
		if acct == "app" {
			acct = fmt.Sprintf("app%d(core%d)", e.Arg, e.Core)
		}
		return fmt.Sprintf("%-14s +%duJ total=%duJ", acct, e.Value, e.Aux)
	case flight.KindAnomaly:
		s := fmt.Sprintf("%-11s", flight.AnomalyName(e.Arg))
		switch e.Arg {
		case flight.AnomalyOvershoot:
			s += fmt.Sprintf(" over=%s for %d intervals", uwatts(e.Value), e.Aux)
		case flight.AnomalyOscillation:
			s += fmt.Sprintf(" limit=%s flips=%d", uwatts(e.Value), e.Aux)
		case flight.AnomalyShareDrift:
			s += fmt.Sprintf(" core%-2d energy=%.1f%% shares=%.1f%%",
				e.Core, float64(e.Value)/1e4, float64(e.Aux)/1e4)
		case flight.AnomalyStraggler:
			s += fmt.Sprintf(" socket%d untrusted for %d intervals", e.Core, e.Aux)
		}
		return s
	}
	return ""
}

func summary(d flight.Dump) {
	m := d.Meta
	fmt.Printf("flight dump v%d  reason=%s\n", m.Version, m.Reason)
	fmt.Printf("machine: %s, %d cores, tick %v, ESU %d\n",
		m.Chip, m.NumCores, time.Duration(m.TickNS), m.ESU)
	if m.Policy != "" {
		fmt.Printf("control: policy %s, limit %.1fW, interval %v\n",
			m.Policy, m.LimitWatts, time.Duration(m.IntervalNS))
	}
	for _, a := range m.Apps {
		extra := fmt.Sprintf("shares=%d", a.Shares)
		if a.HighPriority {
			extra = "high-priority"
		}
		fmt.Printf("  app %-10s core %d  %s\n", a.Name, a.Core, extra)
	}
	if len(d.Events) == 0 {
		fmt.Println("no events")
		return
	}
	first, last := d.Events[0], d.Events[len(d.Events)-1]
	fmt.Printf("%d events, seq %d..%d, t=%v..%v, intervals %d..%d\n",
		len(d.Events), first.Seq, last.Seq, first.Time, last.Time, first.Interval, last.Interval)
	if first.Seq != 1 {
		fmt.Println("NOTE: ring overwrote the start of the run (dump is truncated)")
	}
	counts := map[flight.Kind]int{}
	for _, e := range d.Events {
		counts[e.Kind]++
	}
	kinds := make([]flight.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-14s %d\n", k, counts[k])
	}
	var worst, total time.Duration
	sp := flight.BuildSpans(d.Events)
	totals := make([]float64, 0, len(sp))
	for _, s := range sp {
		t := s.Total()
		total += t
		totals = append(totals, float64(t))
		if t > worst {
			worst = t
		}
	}
	if n := len(sp); n > 0 {
		qs := stats.Quantiles(totals, 50, 90, 99)
		fmt.Printf("iteration latency (wall): mean %v, p50 %v, p90 %v, p99 %v, worst %v over %d intervals\n",
			total/time.Duration(n), time.Duration(qs[0]), time.Duration(qs[1]),
			time.Duration(qs[2]), worst, n)
	}
}

func timeline(d flight.Dump, interval, n int) {
	printed := 0
	for _, e := range d.Events {
		if interval >= 0 && int(e.Interval) != interval {
			continue
		}
		if n > 0 && printed >= n {
			fmt.Printf("... (%d more events; raise -n)\n", len(d.Events)-printed)
			return
		}
		fmt.Printf("%8d %12v i%-4d %-7s %-14s %s\n",
			e.Seq, e.Time, e.Interval, e.Source, e.Kind, describe(e))
		printed++
	}
}

func spans(d flight.Dump, interval int) {
	for _, s := range flight.BuildSpans(d.Events) {
		if interval >= 0 && int(s.Interval) != interval {
			continue
		}
		fmt.Printf("interval %d  t=%v  total %v\n", s.Interval, s.Time, s.Total())
		phase := func(name string, p flight.Phase) {
			if len(p.Events) == 0 {
				return
			}
			fmt.Printf("  %-8s %3d events  %v\n", name, len(p.Events), p.Latency())
			for _, e := range p.Events {
				fmt.Printf("    %-14s %s\n", e.Kind, describe(e))
			}
		}
		phase("sample", s.Sample)
		phase("decide", s.Decide)
		phase("actuate", s.Actuate)
		phase("machine", s.Machine)
	}
}

// anomalyReport is the machine-readable shape of the anomalies view
// (-json); the text rendering prints the same facts.
type anomalyReport struct {
	Truncated       bool       `json:"truncated,omitempty"`
	OverLimitRuns   int        `json:"over_limit_runs"`
	WorstOvershootW float64    `json:"worst_overshoot_watts,omitempty"`
	RAPLThrottles   int        `json:"rapl_throttles"`
	LongestBurst    int        `json:"longest_throttle_burst,omitempty"`
	CoreParks       int        `json:"core_parks"`
	LeaseExpiries   int        `json:"lease_expiries"`
	LeaseFallbacks  int        `json:"lease_fallbacks"`
	LeaseRefusals   int        `json:"lease_refusals"`
	Reconfigures    int        `json:"reconfigures"`
	SlowIterations  []slowIter `json:"slow_iterations,omitempty"`

	// Iteration-latency distribution over all spans in the dump.
	LatencyP50NS int64 `json:"latency_p50_ns,omitempty"`
	LatencyP90NS int64 `json:"latency_p90_ns,omitempty"`
	LatencyP99NS int64 `json:"latency_p99_ns,omitempty"`
}

// slowIter is one control interval more than 5x slower than the median.
type slowIter struct {
	Interval int   `json:"interval"`
	TotalNS  int64 `json:"total_ns"`
	MedianNS int64 `json:"median_ns"`
}

func (a anomalyReport) any() bool {
	return a.OverLimitRuns > 0 || a.RAPLThrottles > 0 || a.CoreParks > 0 ||
		a.LeaseExpiries > 0 || a.LeaseFallbacks > 0 || a.LeaseRefusals > 0 ||
		a.Reconfigures > 0 || len(a.SlowIterations) > 0
}

func collectAnomalies(d flight.Dump) anomalyReport {
	var a anomalyReport
	a.Truncated = len(d.Events) > 0 && d.Events[0].Seq != 1
	// Over-limit excursions, from the decision marks (which carry observed
	// package power and the enforced limit).
	inOver, burst := false, 0
	overWorst := uint64(0)
	for _, e := range d.Events {
		switch e.Kind {
		case flight.KindLease:
			switch e.Arg {
			case flight.LeaseExpire:
				a.LeaseExpiries++
			case flight.LeaseFallback:
				a.LeaseFallbacks++
			case flight.LeaseRefuse:
				a.LeaseRefusals++
			}
		case flight.KindReconfigure:
			a.Reconfigures++
		case flight.KindDecision:
			if e.Aux > 0 && e.Value > e.Aux {
				if !inOver {
					a.OverLimitRuns++
					inOver = true
				}
				if over := e.Value - e.Aux; over > overWorst {
					overWorst = over
				}
			} else {
				inOver = false
			}
		case flight.KindRAPLThrottle:
			a.RAPLThrottles++
			burst++
			if burst > a.LongestBurst {
				a.LongestBurst = burst
			}
		case flight.KindRAPLRelease:
			burst = 0
		case flight.KindActuate:
			if e.Arg == flight.ActPark {
				a.CoreParks++
			}
		}
	}
	a.WorstOvershootW = float64(overWorst) / 1e6
	// Iteration latency outliers: anything over 5x the median total.
	sp := flight.BuildSpans(d.Events)
	totals := make([]time.Duration, 0, len(sp))
	for _, s := range sp {
		if t := s.Total(); t > 0 {
			totals = append(totals, t)
		}
	}
	if len(totals) > 0 {
		fs := make([]float64, len(totals))
		for i, t := range totals {
			fs[i] = float64(t)
		}
		qs := stats.Quantiles(fs, 50, 90, 99)
		a.LatencyP50NS = int64(qs[0])
		a.LatencyP90NS = int64(qs[1])
		a.LatencyP99NS = int64(qs[2])
	}
	if len(totals) >= 4 {
		sorted := append([]time.Duration(nil), totals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		median := sorted[len(sorted)/2]
		for _, s := range sp {
			if t := s.Total(); median > 0 && t > 5*median {
				a.SlowIterations = append(a.SlowIterations, slowIter{
					Interval: int(s.Interval), TotalNS: int64(t), MedianNS: int64(median),
				})
			}
		}
	}
	return a
}

func anomalies(d flight.Dump, jsonOut bool) {
	a := collectAnomalies(d)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a)
		return
	}
	if a.Truncated {
		fmt.Println("truncated: ring overwrote the start of the run")
	}
	if a.OverLimitRuns > 0 {
		fmt.Printf("power over limit: %d excursion(s), worst overshoot %.1fW\n", a.OverLimitRuns, a.WorstOvershootW)
	}
	if a.RAPLThrottles > 0 {
		fmt.Printf("RAPL throttles: %d step-down(s), longest burst %d\n", a.RAPLThrottles, a.LongestBurst)
	}
	if a.CoreParks > 0 {
		fmt.Printf("core parks: %d\n", a.CoreParks)
	}
	if a.LeaseExpiries > 0 || a.LeaseFallbacks > 0 {
		fmt.Printf("lease expiries: %d, fallback reverts: %d (coordinator silent past TTL)\n",
			a.LeaseExpiries, a.LeaseFallbacks)
	}
	if a.LeaseRefusals > 0 {
		fmt.Printf("lease refusals: %d (draining node or invalid grant)\n", a.LeaseRefusals)
	}
	if a.Reconfigures > 0 {
		fmt.Printf("live reconfigurations: %d\n", a.Reconfigures)
	}
	for _, s := range a.SlowIterations {
		fmt.Printf("slow iteration: interval %d took %v (median %v)\n",
			s.Interval, time.Duration(s.TotalNS), time.Duration(s.MedianNS))
	}
	if a.LatencyP99NS > 0 {
		fmt.Printf("iteration latency: p50 %v, p90 %v, p99 %v\n",
			time.Duration(a.LatencyP50NS), time.Duration(a.LatencyP90NS), time.Duration(a.LatencyP99NS))
	}
	if !a.any() {
		fmt.Println("no anomalies found")
	}
}

// energyAppRow is one application's line in the machine-readable energy
// view.
type energyAppRow struct {
	Name       string  `json:"name"`
	Core       int     `json:"core"`
	TotalUJ    uint64  `json:"total_uj"`
	Joules     float64 `json:"joules"`
	EnergyFrac float64 `json:"energy_frac"`
}

// energyReport is the machine-readable shape of the energy view: the
// ledger account book rebuilt exactly from the dump's cumulative energy
// events.
type energyReport struct {
	Events         int               `json:"events"`
	TotalUJ        uint64            `json:"total_uj"`
	AttributedUJ   uint64            `json:"attributed_uj"`
	UnattributedUJ uint64            `json:"unattributed_uj"`
	ExcludedUJ     uint64            `json:"excluded_uj"`
	LimitUJ        uint64            `json:"limit_uj"`
	OvershootUJ    uint64            `json:"overshoot_uj"`
	TotalJoules    float64           `json:"total_joules"`
	Conserved      bool              `json:"conserved"`
	Apps           []energyAppRow    `json:"apps,omitempty"`
	Anomalies      map[string]uint64 `json:"anomalies,omitempty"`
}

func buildEnergyReport(d flight.Dump) energyReport {
	r := ledger.Rebuild(d.Events)
	rep := energyReport{
		Events:         r.Events,
		TotalUJ:        r.TotalUJ,
		AttributedUJ:   r.AttributedUJ(),
		UnattributedUJ: r.UnattributedUJ,
		ExcludedUJ:     r.ExcludedUJ,
		LimitUJ:        r.LimitUJ,
		OvershootUJ:    r.OvershootUJ,
		TotalJoules:    float64(r.TotalUJ) / 1e6,
		Anomalies:      r.AnomalyCounts,
	}
	rep.Conserved = rep.AttributedUJ+rep.UnattributedUJ+rep.ExcludedUJ == rep.TotalUJ
	for i, uj := range r.AppUJ {
		row := energyAppRow{Name: fmt.Sprintf("app%d", i), Core: -1, TotalUJ: uj, Joules: float64(uj) / 1e6}
		if i < len(d.Meta.Apps) {
			row.Name = d.Meta.Apps[i].Name
			row.Core = d.Meta.Apps[i].Core
		}
		if rep.TotalUJ > 0 {
			row.EnergyFrac = float64(uj) / float64(rep.TotalUJ)
		}
		rep.Apps = append(rep.Apps, row)
	}
	return rep
}

// energyView rebuilds the energy ledger's account book from the dump's
// cumulative KindEnergy events — bit-identical to the live ledger at the
// instant of the dump — and renders it.
func energyView(d flight.Dump, jsonOut bool) {
	rep := buildEnergyReport(d)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
		return
	}
	if rep.Events == 0 {
		fmt.Println("no energy events (ledger not running, or ring overwrote them)")
		return
	}
	fmt.Printf("energy ledger rebuilt from %d event(s):\n", rep.Events)
	fmt.Printf("  total        %12d uJ  (%.3f J)\n", rep.TotalUJ, rep.TotalJoules)
	fmt.Printf("  attributed   %12d uJ\n", rep.AttributedUJ)
	fmt.Printf("  unattributed %12d uJ\n", rep.UnattributedUJ)
	fmt.Printf("  excluded     %12d uJ  (untrusted telemetry, not smeared)\n", rep.ExcludedUJ)
	fmt.Printf("  limit budget %12d uJ, overshoot %d uJ\n", rep.LimitUJ, rep.OvershootUJ)
	if rep.Conserved {
		fmt.Println("  conservation: attributed + unattributed + excluded == total (exact)")
	} else {
		fmt.Println("  CONSERVATION VIOLATION: accounts do not sum to the total")
	}
	if len(rep.Apps) > 0 {
		fmt.Printf("  %-12s %5s %14s %8s\n", "APP", "CORE", "JOULES", "ENERGY%")
		for _, a := range rep.Apps {
			fmt.Printf("  %-12s %5d %14.3f %7.1f%%\n", a.Name, a.Core, a.Joules, a.EnergyFrac*100)
		}
	}
	if len(rep.Anomalies) > 0 {
		kinds := make([]string, 0, len(rep.Anomalies))
		for k := range rep.Anomalies {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("  anomalies (retained in ring):")
		for _, k := range kinds {
			fmt.Printf("  %s=%d", k, rep.Anomalies[k])
		}
		fmt.Println()
	}
}

func runReplay(d flight.Dump) error {
	res, err := replay.Replay(d)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d MSR writes, %d reads, %d park/wake actuations\n",
		res.Writes, res.Reads, res.Parks)
	if res.Truncated {
		fmt.Println("NOTE: dump is truncated; divergence is expected")
	}
	if len(res.Mismatches) == 0 {
		fmt.Println("all reads reproduced bit-identically")
	} else {
		fmt.Printf("%d read mismatches; first:\n", len(res.Mismatches))
		for i, mm := range res.Mismatches {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(res.Mismatches)-i)
				break
			}
			fmt.Printf("  %v\n", mm)
		}
	}
	cores := make([]int, 0, len(res.RecordedFreq))
	for c := range res.RecordedFreq {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		recS, repS := res.RecordedFreq[c], res.ReplayedFreq[c]
		fmt.Printf("core %d frequency series: %d points, %s\n", c, len(recS), seriesVerdict(len(recS) == len(repS) && freqEqual(recS, repS)))
	}
	fmt.Printf("package power series: %d points, %s\n", len(res.RecordedPower),
		seriesVerdict(len(res.RecordedPower) == len(res.ReplayedPower) && powerEqual(res.RecordedPower, res.ReplayedPower)))
	if len(res.Mismatches) > 0 && !res.Truncated {
		return fmt.Errorf("replay diverged from recording")
	}
	return nil
}

func seriesVerdict(same bool) string {
	if same {
		return "identical"
	}
	return "DIVERGED"
}

func freqEqual(a, b []replay.FreqPoint) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func powerEqual(a, b []replay.PowerPoint) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
