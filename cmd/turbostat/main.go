// Command turbostat is the simulator's rendition of the tool the paper used
// (modified) to collect its measurements: it runs a workload mix on a
// simulated platform and prints one telemetry block per sampling interval —
// per-core active frequency (ΔAPERF/ΔMPERF), IPS, per-core power where the
// platform provides it, package power, and C-state residency percentages.
//
// Usage:
//
//	turbostat -platform skylake -apps gcc:0,cam4:1 -limit 50 -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	var (
		plat     = flag.String("platform", "skylake", "skylake or ryzen")
		apps     = flag.String("apps", "gcc:0,cam4:1", "comma-separated name:core")
		limit    = flag.Float64("limit", 0, "RAPL package limit in watts (0 = uncapped)")
		duration = flag.Duration("duration", 10*time.Second, "virtual run time")
		interval = flag.Duration("interval", time.Second, "sampling interval")
	)
	flag.Parse()
	if err := run(*plat, *apps, units.Watts(*limit), *duration, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "turbostat:", err)
		os.Exit(1)
	}
}

func run(plat, apps string, limit units.Watts, duration, interval time.Duration) error {
	chip, err := platform.ByName(plat)
	if err != nil {
		return err
	}
	m, err := sim.New(chip)
	if err != nil {
		return err
	}
	for _, item := range strings.Split(apps, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 2 {
			return fmt.Errorf("app %q: want name:core", item)
		}
		p, err := workload.ByName(parts[0])
		if err != nil {
			return err
		}
		core, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("app %q: bad core: %w", item, err)
		}
		if err := m.Pin(workload.NewInstance(p), core); err != nil {
			return err
		}
		if err := m.SetRequest(core, chip.Freq.Max()); err != nil {
			return err
		}
	}
	if limit > 0 {
		if !chip.HardwareRAPLLimit {
			return fmt.Errorf("%s has no documented RAPL limiter", chip.Name)
		}
		m.SetPowerLimit(limit)
	}

	s, err := telemetry.NewSampler(m.Device(), chip.NumCores, chip.Freq.Nom, chip.PerCorePower)
	if err != nil {
		return err
	}
	if err := s.Prime(); err != nil {
		return err
	}
	prevRes := make([][]time.Duration, chip.NumCores)
	for i := range prevRes {
		prevRes[i] = m.CStateResidency(i)
	}

	header := "time     cpu   MHz        IPS"
	if chip.PerCorePower {
		header += "     W/core"
	}
	for _, cs := range chip.CStates {
		header += fmt.Sprintf("  %%%s", cs.Name)
	}
	for elapsed := time.Duration(0); elapsed < duration; elapsed += interval {
		m.Run(interval)
		sample, err := s.Sample(interval)
		if err != nil {
			return err
		}
		fmt.Println(header)
		for i, cs := range sample.Cores {
			line := fmt.Sprintf("%-8s %-4d  %-8.0f  %-8.3g", sample.At, i, cs.ActiveFreq.MHzF(), cs.IPS)
			if chip.PerCorePower {
				line += fmt.Sprintf("  %-6.2f", float64(cs.Power))
			}
			res := m.CStateResidency(i)
			for j := range chip.CStates {
				pct := float64(res[j]-prevRes[i][j]) / float64(interval) * 100
				line += fmt.Sprintf("  %5.1f", pct)
			}
			prevRes[i] = res
			fmt.Println(line)
		}
		fmt.Printf("package: %s\n\n", sample.PackagePower)
	}
	return nil
}
