// Command turbostat is the simulator's rendition of the tool the paper used
// (modified) to collect its measurements: it runs a workload mix on a
// simulated platform and prints one telemetry block per sampling interval —
// per-core active frequency (ΔAPERF/ΔMPERF), IPS, per-core power where the
// platform provides it, package power, and C-state residency percentages.
//
// Usage:
//
//	turbostat -platform skylake -apps gcc:0,cam4:1 -limit 50 -duration 10s
//
// With -connect it instead reads a live powerd daemon's /debug/status
// endpoint and prints one block per poll — the live-reader counterpart to
// powerd -listen:
//
//	turbostat -connect http://localhost:9090 -interval 1s -duration 10s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	var (
		plat     = flag.String("platform", "skylake", "skylake or ryzen")
		apps     = flag.String("apps", "gcc:0,cam4:1", "comma-separated name:core")
		limit    = flag.Float64("limit", 0, "RAPL package limit in watts (0 = uncapped)")
		duration = flag.Duration("duration", 10*time.Second, "virtual run time")
		interval = flag.Duration("interval", time.Second, "sampling interval")
		connect  = flag.String("connect", "", "read a live powerd daemon at this base URL instead of simulating")
	)
	flag.Parse()
	var err error
	if *connect != "" {
		err = watch(*connect, *duration, *interval)
	} else {
		err = run(*plat, *apps, units.Watts(*limit), *duration, *interval)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbostat:", err)
		os.Exit(1)
	}
}

// watch polls a powerd daemon's /debug/status and prints one telemetry
// block per poll, decision reasons included.
func watch(base string, duration, interval time.Duration) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: interval}
	deadline := time.Now().Add(duration)
	var lastSeq uint64
	for {
		resp, err := client.Get(base + "/debug/status?n=1")
		if err != nil {
			return err
		}
		var sr obs.StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding status: %w", err)
		}
		st := sr.Status
		fmt.Printf("t=%-8.1f policy=%-12s iter=%-6d pkg=%6.2fW limit=%6.2fW\n",
			st.TimeSeconds, st.Policy, st.Iterations, st.PackagePowerWatts, st.LimitWatts)
		for _, a := range st.Apps {
			fmt.Printf("  %-10s cpu%-3d %6.0f MHz  %10.3g IPS  %6.2f W  parked=%v\n",
				a.Name, a.Core, a.MHz, a.IPS, a.Watts, a.Parked)
		}
		if len(sr.Decisions) > 0 {
			d := sr.Decisions[len(sr.Decisions)-1]
			if d.Seq != lastSeq {
				lastSeq = d.Seq
				fmt.Printf("  decision #%d: %s\n", d.Seq, strings.Join(d.Reasons, ", "))
			}
		}
		fmt.Println()
		if time.Now().Add(interval).After(deadline) {
			return nil
		}
		time.Sleep(interval)
	}
}

func run(plat, apps string, limit units.Watts, duration, interval time.Duration) error {
	chip, err := platform.ByName(plat)
	if err != nil {
		return err
	}
	m, err := sim.New(chip)
	if err != nil {
		return err
	}
	for _, item := range strings.Split(apps, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 2 {
			return fmt.Errorf("app %q: want name:core", item)
		}
		p, err := workload.ByName(parts[0])
		if err != nil {
			return err
		}
		core, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("app %q: bad core: %w", item, err)
		}
		if err := m.Pin(workload.NewInstance(p), core); err != nil {
			return err
		}
		if err := m.SetRequest(core, chip.Freq.Max()); err != nil {
			return err
		}
	}
	if limit > 0 {
		if !chip.HardwareRAPLLimit {
			return fmt.Errorf("%s has no documented RAPL limiter", chip.Name)
		}
		m.SetPowerLimit(limit)
	}

	s, err := telemetry.NewSampler(m.Device(), chip.NumCores, chip.Freq.Nom, chip.PerCorePower)
	if err != nil {
		return err
	}
	if err := s.Prime(); err != nil {
		return err
	}
	prevRes := make([][]time.Duration, chip.NumCores)
	for i := range prevRes {
		prevRes[i] = m.CStateResidency(i)
	}

	header := "time     cpu   MHz        IPS"
	if chip.PerCorePower {
		header += "     W/core"
	}
	for _, cs := range chip.CStates {
		header += fmt.Sprintf("  %%%s", cs.Name)
	}
	for elapsed := time.Duration(0); elapsed < duration; elapsed += interval {
		m.Run(interval)
		sample, err := s.Sample(interval)
		if err != nil {
			return err
		}
		fmt.Println(header)
		for i, cs := range sample.Cores {
			line := fmt.Sprintf("%-8s %-4d  %-8.0f  %-8.3g", sample.At, i, cs.ActiveFreq.MHzF(), cs.IPS)
			if chip.PerCorePower {
				line += fmt.Sprintf("  %-6.2f", float64(cs.Power))
			}
			res := m.CStateResidency(i)
			for j := range chip.CStates {
				pct := float64(res[j]-prevRes[i][j]) / float64(interval) * 100
				line += fmt.Sprintf("  %5.1f", pct)
			}
			prevRes[i] = res
			fmt.Println(line)
		}
		fmt.Printf("package: %s\n\n", sample.PackagePower)
	}
	return nil
}
