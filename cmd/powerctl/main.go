// Command powerctl is the operator CLI of the power control plane: it
// inspects and live-reconfigures a running powerd daemon through its
// /v1/power/ endpoints, and registers nodes with a powercoord.
//
// Usage:
//
//	powerctl -node host:9090 status
//	powerctl -node host:9090 set-policy priority-shares
//	powerctl -node host:9090 set-limit 42
//	powerctl -node host:9090 set-shares gcc=70,cam4=30
//	powerctl -node host:9090 set-priorities gcc=hp,cam4=lp
//	powerctl -node host:9090 drain on|off
//	powerctl -coord host:9190 register n3 host3:9090
//	powerctl -coord host:9190 top
//	powerctl -coord host:9190 tree
//
// top renders the coordinator's fleet rollup (/debug/fleet): total power
// against the room budget, per-node rows with RPC latency percentiles,
// the fleet-wide per-application watt ranking, lease churn, and any
// nodes the round traces flag as stragglers.
//
// tree renders the coordination hierarchy rooted at -coord: each tier's
// level, live budget, and subtree rollup, recursing into children that
// are themselves powercoord tiers (probed through their node agents).
//
// set-policy, set-limit, set-shares, and set-priorities may be combined in
// one invocation; the daemon applies them as a single validated change
// between control intervals, without restarting or dropping a sample.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/powerapi"
)

func main() {
	var (
		node    = flag.String("node", "", "node address (powerd -listen) for node commands")
		coord   = flag.String("coord", "", "coordinator address (powercoord -listen) for register")
		timeout = flag.Duration("timeout", 5*time.Second, "request timeout")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: powerctl [-node addr | -coord addr] <command> [args]\n\ncommands:\n"+
				"  status                      node control-plane status\n"+
				"  set-policy <name>           switch the running policy\n"+
				"  set-limit <watts>           change the power limit\n"+
				"  set-shares a=N,b=M          change per-app shares\n"+
				"  set-priorities a=hp,b=lp    change per-app priorities\n"+
				"  drain on|off                toggle drain mode\n"+
				"  register <name> <addr>      register a node with -coord\n"+
				"  top                         fleet rollup from -coord (/debug/fleet)\n"+
				"  tree                        coordination hierarchy rooted at -coord\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := dispatch(ctx, *node, *coord, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "powerctl:", err)
		os.Exit(1)
	}
}

func dispatch(ctx context.Context, node, coord string, args []string) error {
	cmd, rest := args[0], args[1:]
	if cmd == "top" {
		if coord == "" {
			return fmt.Errorf("top needs -coord")
		}
		return top(ctx, coord)
	}
	if cmd == "tree" {
		if coord == "" {
			return fmt.Errorf("tree needs -coord")
		}
		return tree(ctx, coord, 0)
	}
	if cmd == "register" {
		if coord == "" {
			return fmt.Errorf("register needs -coord")
		}
		if len(rest) != 2 {
			return fmt.Errorf("register wants <name> <addr>")
		}
		ack, err := powerapi.NewCoordClient(coord).Register(ctx, rest[0], rest[1])
		if err != nil {
			return err
		}
		if !ack.Accepted {
			return fmt.Errorf("coordinator refused: %s", ack.Reason)
		}
		fmt.Printf("registered %s at %s\n", rest[0], rest[1])
		return nil
	}

	if node == "" {
		return fmt.Errorf("%s needs -node", cmd)
	}
	c := powerapi.NewClient(node)

	// The reconfigure verbs compose: walk the args as verb/value pairs and
	// send one combined message.
	rc := &powerapi.Reconfigure{}
	reconfig := false
	for len(args) > 0 {
		cmd, rest = args[0], args[1:]
		switch cmd {
		case "status":
			if reconfig {
				return fmt.Errorf("status does not combine with reconfiguration")
			}
			return status(ctx, c)
		case "drain":
			if len(rest) < 1 || (rest[0] != "on" && rest[0] != "off") {
				return fmt.Errorf("drain wants on or off")
			}
			ack, err := c.Drain(ctx, rest[0] == "on")
			if err != nil {
				return err
			}
			fmt.Printf("draining: %v\n", ack.Draining)
			return nil
		case "set-policy":
			if len(rest) < 1 {
				return fmt.Errorf("set-policy wants a policy name")
			}
			rc.Policy, reconfig = rest[0], true
			args = rest[1:]
		case "set-limit":
			if len(rest) < 1 {
				return fmt.Errorf("set-limit wants watts")
			}
			w, err := strconv.ParseFloat(rest[0], 64)
			if err != nil {
				return fmt.Errorf("set-limit: %w", err)
			}
			rc.LimitWatts, reconfig = w, true
			args = rest[1:]
		case "set-shares":
			if len(rest) < 1 {
				return fmt.Errorf("set-shares wants a=N,b=M")
			}
			m, err := parsePairs(rest[0])
			if err != nil {
				return err
			}
			rc.Shares = map[string]int{}
			for app, v := range m {
				n, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("shares for %s: %w", app, err)
				}
				rc.Shares[app] = n
			}
			reconfig = true
			args = rest[1:]
		case "set-priorities":
			if len(rest) < 1 {
				return fmt.Errorf("set-priorities wants a=hp,b=lp")
			}
			m, err := parsePairs(rest[0])
			if err != nil {
				return err
			}
			rc.Priorities = m
			reconfig = true
			args = rest[1:]
		default:
			return fmt.Errorf("unknown command %q", cmd)
		}
	}
	if !reconfig {
		return fmt.Errorf("nothing to do")
	}
	ack, err := c.Reconfigure(ctx, rc)
	if err != nil {
		return err
	}
	fmt.Printf("reconfigured: policy=%s limit=%.5gW\n", ack.Policy, ack.LimitWatts)
	return nil
}

func parsePairs(arg string) (map[string]string, error) {
	m := map[string]string{}
	for _, item := range strings.Split(arg, ",") {
		parts := strings.SplitN(strings.TrimSpace(item), "=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("%q: want app=value", item)
		}
		m[parts[0]] = parts[1]
	}
	return m, nil
}

// top fetches and renders the coordinator's fleet rollup.
func top(ctx context.Context, coord string) error {
	if !strings.Contains(coord, "://") {
		coord = "http://" + coord
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coord+"/debug/fleet", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator: %s", resp.Status)
	}
	var fs cluster.FleetSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return fmt.Errorf("decoding fleet snapshot: %w", err)
	}

	pct := 0.0
	if fs.BudgetWatts > 0 {
		pct = 100 * fs.TotalPowerWatts / fs.BudgetWatts
	}
	fmt.Printf("round %d   power %.5g / %.5g W (%.0f%%)   round latency p50 %.2fms p99 %.2fms\n",
		fs.Round, fs.TotalPowerWatts, fs.BudgetWatts, pct,
		fs.RoundLatency.P50MS, fs.RoundLatency.P99MS)
	if fs.MixedVersions {
		fmt.Printf("WARNING: mixed node versions: %s\n", strings.Join(fs.Versions, ", "))
	}

	fmt.Printf("\n%-12s %9s %9s %-16s %8s %8s %7s %s\n",
		"NODE", "POWER", "LIMIT", "POLICY", "RPC p50", "RPC p99", "MISSED", "FLAGS")
	for _, n := range fs.Nodes {
		flags := []string{}
		if n.Draining {
			flags = append(flags, "draining")
		}
		if n.MissedRounds > 0 {
			flags = append(flags, "unreachable")
		}
		for _, s := range fs.Stragglers {
			if s.Node == n.Name {
				flags = append(flags, "straggler")
			}
		}
		fmt.Printf("%-12s %8.3gW %8.3gW %-16s %6.2fms %6.2fms %7d %s\n",
			n.Name, n.PowerWatts, n.LimitWatts, n.Policy,
			n.RPC.P50MS, n.RPC.P99MS, n.TotalMissed, strings.Join(flags, ","))
	}

	if len(fs.Apps) > 0 {
		fmt.Printf("\n%-12s %9s %6s\n", "APP", "POWER", "NODES")
		for _, a := range fs.Apps {
			fmt.Printf("%-12s %8.3gW %6d\n", a.Name, a.Watts, a.Nodes)
		}
	}

	if fs.EnergyJoules > 0 {
		epct := 0.0
		if fs.EnergyBudgetJoules > 0 {
			epct = 100 * fs.EnergyJoules / fs.EnergyBudgetJoules
		}
		fmt.Printf("\nenergy: %.5g / %.5g J (%.0f%% of budget)   overshoot %.3g J   excluded %.3g J   $%.6f   %.2f gCO2\n",
			fs.EnergyJoules, fs.EnergyBudgetJoules, epct,
			fs.OvershootJoules, fs.ExcludedJoules, fs.EnergyCostUSD, fs.EnergyCarbonGrams)
		if len(fs.TopEnergyApps) > 0 {
			fmt.Printf("%-12s %12s %10s %10s %6s\n", "TOP ENERGY", "JOULES", "COST $", "gCO2", "NODES")
			for _, a := range fs.TopEnergyApps {
				fmt.Printf("%-12s %12.5g %10.6f %10.2f %6d\n",
					a.Name, a.Joules, a.CostUSD, a.CarbonGrams, a.Nodes)
			}
		}
		if len(fs.AnomalyCounts) > 0 {
			kinds := make([]string, 0, len(fs.AnomalyCounts))
			for k := range fs.AnomalyCounts {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			fmt.Printf("anomalies:")
			for _, k := range kinds {
				fmt.Printf("  %s=%d", k, fs.AnomalyCounts[k])
			}
			fmt.Println()
		}
	}

	if fs.SLOTotal > 0 {
		fmt.Printf("\nslo attainment: %d/%d service instances meeting p99 (%.0f%%)\n",
			fs.SLOMet, fs.SLOTotal, 100*fs.SLOAttainment)
		fmt.Printf("%-12s %6s %6s %12s %10s %10s\n", "SERVICE", "NODES", "MET", "WORST p99", "TARGET", "RATE")
		for _, s := range fs.SLOServices {
			target := "-"
			if s.TargetMS > 0 {
				target = fmt.Sprintf("%.2fms", s.TargetMS)
			}
			fmt.Printf("%-12s %6d %6d %10.2fms %10s %8.4g/s\n",
				s.Name, s.Nodes, s.MetNodes, s.WorstP99MS, target, s.Rate)
		}
	}

	if len(fs.LeaseEvents) > 0 {
		events := make([]string, 0, len(fs.LeaseEvents))
		for ev := range fs.LeaseEvents {
			events = append(events, ev)
		}
		sort.Strings(events)
		fmt.Printf("\nlease churn:")
		for _, ev := range events {
			fmt.Printf("  %s=%.0f", ev, fs.LeaseEvents[ev])
		}
		fmt.Println()
	}

	if len(fs.Stragglers) > 0 {
		fmt.Printf("\nstragglers (from round traces):\n")
		for _, s := range fs.Stragglers {
			fmt.Printf("  %-12s %d round(s), worst %.2fms\n", s.Node, s.Rounds, s.WorstMS)
		}
	}
	return nil
}

// roomStatus mirrors powercoord's /v1/cluster/status payload, with
// just the fields the tree walk needs.
type roomStatus struct {
	BudgetWatts     float64 `json:"budget_watts"`
	TotalPowerWatts float64 `json:"total_power_watts"`
	Tier            string  `json:"tier"`
	Children        int     `json:"children"`
	Leaves          int     `json:"leaves"`
	Depth           int     `json:"depth"`
	Nodes           []struct {
		Name        string  `json:"name"`
		Addr        string  `json:"addr"`
		LimitWatts  float64 `json:"limit_watts"`
		Quarantined bool    `json:"quarantined"`
	} `json:"nodes"`
}

// tree walks the hierarchy rooted at a coordinator address: print this
// tier, then probe each child's node agent — a child reporting a
// TierStatus is itself a coordinator, so recurse into its cluster
// status at the same address.
func tree(ctx context.Context, coord string, depth int) error {
	addr := coord
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/cluster/status", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator %s: %s", coord, resp.Status)
	}
	var rs roomStatus
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		return fmt.Errorf("decoding cluster status from %s: %w", coord, err)
	}
	indent := strings.Repeat("    ", depth)
	level := rs.Tier
	if level == "" {
		level = "room"
	}
	fmt.Printf("%s[%s] %s  budget %.5g W  power %.5g W  (%d children, %d leaves, depth %d)\n",
		indent, level, coord, rs.BudgetWatts, rs.TotalPowerWatts, rs.Children, rs.Leaves, rs.Depth)
	for _, n := range rs.Nodes {
		flags := ""
		if n.Quarantined {
			flags = "  QUARANTINED"
		}
		sub := false
		if n.Addr != "" {
			if st, err := powerapi.NewClient(n.Addr).Status(ctx); err == nil && st.Tier != nil {
				sub = true
			}
		}
		if sub {
			fmt.Printf("%s├─ %s  lease %.5g W%s\n", indent, n.Name, n.LimitWatts, flags)
			if err := tree(ctx, n.Addr, depth+1); err != nil {
				fmt.Printf("%s    (walking %s: %v)\n", indent, n.Name, err)
			}
			continue
		}
		fmt.Printf("%s├─ %-12s  lease %.5g W%s\n", indent, n.Name, n.LimitWatts, flags)
	}
	return nil
}

func status(ctx context.Context, c *powerapi.Client) error {
	st, err := c.Status(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("node       %s\n", st.Node)
	fmt.Printf("policy     %s\n", st.Policy)
	fmt.Printf("limit      %.5g W (fallback %.5g W, max %.5g W)\n", st.LimitWatts, st.FallbackWatts, st.MaxWatts)
	fmt.Printf("power      %.5g W\n", st.PowerWatts)
	fmt.Printf("iterations %d\n", st.Iterations)
	if st.Draining {
		fmt.Println("draining   yes")
	}
	if l := st.Lease; l != nil {
		fmt.Printf("lease      #%d from %q: %.5g W, %dms left of %dms\n",
			l.ID, l.Coordinator, l.LimitWatts, l.RemainingMS, l.TTLMS)
	} else {
		fmt.Println("lease      none (enforcing fallback or configured limit)")
	}
	for _, a := range st.Apps {
		fmt.Printf("app        %-10s core %-3d shares %-4d %s\n", a.Name, a.Core, a.Shares, a.Priority)
	}
	if s := st.SLO; s != nil {
		for _, svc := range s.Services {
			verdict := "met"
			if !svc.Met {
				verdict = "MISSED"
			}
			target := "no target"
			if svc.TargetMS > 0 {
				target = fmt.Sprintf("target %.2fms (%s)", svc.TargetMS, verdict)
			}
			fmt.Printf("slo        %-10s p50 %.2fms p90 %.2fms p99 %.2fms  %s\n",
				svc.Name, svc.P50MS, svc.P90MS, svc.P99MS, target)
			fmt.Printf("           rate %.4g/s queue %d dropped %d timeouts %d\n",
				svc.Rate, svc.QueueLen, svc.Dropped, svc.Timeouts)
		}
	}
	if e := st.Energy; e != nil {
		fmt.Printf("energy     %.5g J over %.4gs (%d intervals, %d over limit)\n",
			e.TotalJoules, e.ElapsedSeconds, e.Intervals, e.OverIntervals)
		fmt.Printf("           overshoot %.3g J, unattributed %.3g J, excluded %.3g J, $%.6f, %.2f gCO2\n",
			e.OvershootJoules, float64(e.UnattributedUJ)/1e6, float64(e.ExcludedUJ)/1e6,
			e.CostUSD, e.CarbonGrams)
		for _, a := range e.Apps {
			fmt.Printf("           %-10s %12.5g J  %5.1f%% of energy (%5.1f%% of shares)\n",
				a.Name, a.Joules, a.EnergyFrac*100, a.ShareFrac*100)
		}
		if len(e.Anomalies) > 0 {
			kinds := make([]string, 0, len(e.Anomalies))
			for k := range e.Anomalies {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			fmt.Printf("anomalies ")
			for _, k := range kinds {
				fmt.Printf(" %s=%d", k, e.Anomalies[k])
			}
			fmt.Println()
		}
	}
	return nil
}
