// Command experiments regenerates the paper's tables and figures as text
// tables (or CSV) on stdout.
//
// Usage:
//
//	experiments [-figure all|1|2|...|13|tables] [-csv]
//
// Each figure is produced by the corresponding harness in
// internal/experiments; DESIGN.md maps figures to modules.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: all, tables, 1-13, or one of stability, useful, gaming-perf, gaming-freq, clustering, interval, consolidation, chaos, slo")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	traceDir := flag.String("tracedir", "", "also write each run's per-iteration CSV time series into this directory")
	flag.Parse()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.SetTraceDir(*traceDir)
	}
	if err := run(*figure, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// tabler is any experiment result that renders to tables.
type tabler interface {
	Tables() []trace.Table
}

func run(figure string, csv bool) error {
	type gen struct {
		name string
		fn   func() (tabler, error)
	}
	wrap := func(fn func() (tabler, error)) func() (tabler, error) { return fn }
	gens := []gen{
		{"1", wrap(func() (tabler, error) { r, err := experiments.Figure1(); return r, err })},
		{"2", wrap(func() (tabler, error) { r, err := experiments.Figure2(); return r, err })},
		{"3", wrap(func() (tabler, error) { r, err := experiments.Figure3(); return r, err })},
		{"4", wrap(func() (tabler, error) { r, err := experiments.Figure4(); return r, err })},
		{"5", wrap(func() (tabler, error) { r, err := experiments.Figure5(); return r, err })},
		{"6", wrap(func() (tabler, error) { r, err := experiments.Figure6(); return r, err })},
		{"7", wrap(func() (tabler, error) { r, err := experiments.Figure7(); return r, err })},
		{"8", wrap(func() (tabler, error) { r, err := experiments.Figure8(); return r, err })},
		{"9", wrap(func() (tabler, error) { r, err := experiments.Figure9(); return r, err })},
		{"10", wrap(func() (tabler, error) { r, err := experiments.Figure10(); return r, err })},
		{"11", wrap(func() (tabler, error) { r, err := experiments.Figure11(); return r, err })},
		{"12", wrap(func() (tabler, error) { r, err := experiments.Figure12(); return r, err })},
		{"13", wrap(func() (tabler, error) { r, err := experiments.Figure13(); return r, err })},
		{"stability", wrap(func() (tabler, error) { r, err := experiments.StabilityStudy(); return r, err })},
		{"useful", wrap(func() (tabler, error) { r, err := experiments.UsefulFreqStudy(); return r, err })},
		{"gaming-perf", wrap(func() (tabler, error) { r, err := experiments.GamingStudy(experiments.PerfShares); return r, err })},
		{"gaming-freq", wrap(func() (tabler, error) { r, err := experiments.GamingStudy(experiments.FreqShares); return r, err })},
		{"clustering", wrap(func() (tabler, error) { r, err := experiments.AblationClustering(); return r, err })},
		{"interval", wrap(func() (tabler, error) { r, err := experiments.AblationInterval(); return r, err })},
		{"consolidation", wrap(func() (tabler, error) { r, err := experiments.ConsolidationStudy(); return r, err })},
		{"slo", wrap(func() (tabler, error) { r, err := experiments.SLOStudy(); return r, err })},
		{"chaos", wrap(func() (tabler, error) { r, err := experiments.ChaosStudy(); return r, err })},
	}

	emit := func(tables []trace.Table) error {
		for _, tb := range tables {
			var err error
			if csv {
				fmt.Printf("# %s\n", tb.Title)
				err = tb.RenderCSV(os.Stdout)
				fmt.Println()
			} else {
				err = tb.Render(os.Stdout)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	if figure == "tables" || figure == "all" {
		if err := emit([]trace.Table{experiments.Table1(), experiments.Table2(), experiments.Table3()}); err != nil {
			return err
		}
		if figure == "tables" {
			return nil
		}
	}
	matched := figure == "all"
	for _, g := range gens {
		if figure != "all" && figure != g.name {
			continue
		}
		matched = true
		fmt.Fprintf(os.Stderr, "regenerating figure %s...\n", g.name)
		res, err := g.fn()
		if err != nil {
			return fmt.Errorf("figure %s: %w", g.name, err)
		}
		if err := emit(res.Tables()); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (want all, tables, 1-13, or a study name)", figure)
	}
	return nil
}
