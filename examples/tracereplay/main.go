// Tracereplay: the substitution path for workloads that cannot ship.
//
// A "production host" runs some proprietary service (here stood in by
// cam4, phases and all). We record one minute of per-second telemetry —
// IPS and core power, exactly what turbostat emits — then rebuild a
// replayable profile from the trace with ProfileFromTrace and run it on a
// fresh machine. The replay reproduces the recording's throughput, power,
// and phase structure, so policy studies can use it in place of the real
// binary.
package main

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

const recordFreq = 2000 * padpd.MHz

func main() {
	// --- Record on the "production host". ---
	prod, err := padpd.NewMachine(padpd.Skylake())
	if err != nil {
		log.Fatal(err)
	}
	secret := padpd.MustProfile("cam4") // stand-in for an unshippable binary
	if err := prod.Pin(padpd.NewInstance(secret), 0); err != nil {
		log.Fatal(err)
	}
	if err := prod.SetRequest(0, recordFreq); err != nil {
		log.Fatal(err)
	}
	sampler, err := padpd.NewSampler(prod.Device(), 1, prod.Chip().Freq.Nom, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := sampler.Prime(); err != nil {
		log.Fatal(err)
	}
	var pts []padpd.TracePoint
	var recIPS, recPower float64
	for i := 0; i < 60; i++ {
		prod.Run(time.Second)
		s, err := sampler.Sample(time.Second)
		if err != nil {
			log.Fatal(err)
		}
		// Skylake has no per-core power counters; on the recording host
		// the whole-core share is package minus the known uncore/idle
		// floor (one busy core).
		corePower := s.PackagePower - prod.Chip().Power.UncorePower -
			9*prod.Chip().Power.IdleCorePower
		pts = append(pts, padpd.TracePoint{
			Duration: time.Second,
			IPS:      s.Cores[0].IPS,
			Power:    corePower,
		})
		recIPS += s.Cores[0].IPS
		recPower += float64(corePower)
	}
	fmt.Printf("recorded 60 s at %v: mean %.2f GIPS, %.2f W core power\n",
		recordFreq, recIPS/60/1e9, recPower/60)

	// --- Rebuild and replay elsewhere. ---
	replayProfile, err := padpd.ProfileFromTrace("replayed-service", pts, recordFreq, prod.Chip().Power)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt profile: %d phases, %.3g instructions per run\n",
		len(replayProfile.Phases), replayProfile.TotalInstructions)

	lab, err := padpd.NewMachine(padpd.Skylake())
	if err != nil {
		log.Fatal(err)
	}
	in := padpd.NewInstance(replayProfile)
	if err := lab.Pin(in, 0); err != nil {
		log.Fatal(err)
	}
	if err := lab.SetRequest(0, recordFreq); err != nil {
		log.Fatal(err)
	}
	lab.Run(60 * time.Second)
	repIPS := lab.Counters(0).Instr / 60
	repPower := float64(lab.CoreEnergy(0)) / 60
	fmt.Printf("replayed 60 s:             mean %.2f GIPS, %.2f W core power\n",
		repIPS/1e9, repPower)
	fmt.Printf("fidelity: IPS %.1f%%, power %.1f%% of the recording\n",
		repIPS/(recIPS/60)*100, repPower/(recPower/60)*100)
	if in.RunsCompleted() != 1 {
		fmt.Printf("(note: %d full trace replays completed)\n", in.RunsCompleted())
	}
}
