// Machineroom: the cluster layer above per-application power delivery.
//
// Two Skylake nodes share an 80 W room budget. Node "batch" runs ten
// high-demand jobs; node "frontend" runs two light ones. A static 40/40
// split strands headroom on the frontend while batch starves; the
// Dynamo-style coordinator (each node's share enforced by its own
// frequency-share daemon) shifts the stranded watts to the node whose
// limit binds — the hierarchy the paper's related work describes, with the
// paper's daemon as the node-level primitive.
package main

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

func main() {
	fmt.Println("room budget 80 W: node 'batch' (10x cactusBSSN) + node 'frontend' (2x leela)")
	fmt.Println()
	staticIPS := run(false)
	dynIPS := run(true)
	fmt.Printf("\nbatch-node throughput: static split %.2f GIPS, coordinated %.2f GIPS (%.0f%% gain)\n",
		staticIPS/1e9, dynIPS/1e9, (dynIPS/staticIPS-1)*100)
}

func node(name string, apps []string) *padpd.ClusterNode {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]padpd.AppSpec, len(apps))
	for i, a := range apps {
		p := padpd.MustProfile(a)
		if err := m.Pin(padpd.NewInstance(p), i); err != nil {
			log.Fatal(err)
		}
		specs[i] = padpd.AppSpec{Name: a, Core: i, Shares: 50, AVX: p.AVX}
	}
	pol, err := padpd.NewFrequencyShares(chip, specs, padpd.ShareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d, err := padpd.NewDaemon(padpd.DaemonConfig{
		Chip: chip, Policy: pol, Apps: specs, Limit: chip.RAPLMax,
	}, m.Device(), padpd.MachineActuator{M: m})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		log.Fatal(err)
	}
	return &padpd.ClusterNode{Name: name, M: m, Daemon: d}
}

func run(dynamic bool) float64 {
	batchApps := make([]string, 10)
	for i := range batchApps {
		batchApps[i] = "cactusBSSN"
	}
	nodes := []*padpd.ClusterNode{
		node("batch", batchApps),
		node("frontend", []string{"leela", "leela"}),
	}
	coord, err := padpd.NewCluster(nodes, padpd.ClusterConfig{Budget: 80})
	if err != nil {
		log.Fatal(err)
	}
	label := "static 40/40"
	if dynamic {
		if err := coord.Run(120 * time.Second); err != nil {
			log.Fatal(err)
		}
		label = "coordinated"
	} else {
		for _, n := range nodes {
			n.M.Run(120 * time.Second)
		}
	}
	limits := coord.Limits()
	fmt.Printf("%-12s  batch limit %-8s (pkg %-8s)  frontend limit %-8s (pkg %s)\n",
		label, limits[0], nodes[0].M.PackagePower(), limits[1], nodes[1].M.PackagePower())

	// Throughput of the batch node over a final window.
	var i0 float64
	for c := 0; c < 10; c++ {
		i0 += nodes[0].M.Counters(c).Instr
	}
	for _, n := range nodes {
		n.M.Run(10 * time.Second)
	}
	var i1 float64
	for c := 0; c < 10; c++ {
		i1 += nodes[0].M.Counters(c).Instr
	}
	return (i1 - i0) / 10
}
