// Msrfiles: the daemon driving a *file-backed* MSR tree in real time.
//
// This example demonstrates the deployment architecture the repro hint
// calls "file-based MSR access": the machine (here, the simulator standing
// in for silicon) publishes its counters into a /dev/cpu-shaped directory
// of register files, the control daemon reads and writes only those files,
// and a shuttle loop applies the daemon's P-state writes back to the
// machine. The daemon runs on a wall-clock ticker and reports its measured
// scheduling jitter — the GC-jitter observability knob for a Go control
// loop.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	padpd "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "padpd-msr-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	specs := []padpd.AppSpec{
		{Name: "gcc", Core: 0, Shares: 80},
		{Name: "omnetpp", Core: 1, Shares: 20},
	}
	for _, s := range specs {
		if err := m.Pin(padpd.NewInstance(padpd.MustProfile(s.Name)), s.Core); err != nil {
			log.Fatal(err)
		}
	}

	files, err := padpd.NewFileMSRDevice(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSR register tree at %s\n", dir)

	// The shuttle: every few milliseconds, advance the machine by the same
	// amount of virtual time, publish its counters into the file tree, and
	// apply any PERF_CTL writes the daemon left there. A mutex stands in
	// for the bus.
	regs := []uint32{
		padpd.MSRAperf, padpd.MSRMperf, padpd.MSRFixedCtr0,
		padpd.MSRRAPLPowerUnit, padpd.MSRPkgEnergyStatus, padpd.MSRPP0EnergyStatus,
	}
	var mu sync.Mutex
	// Publish the initial register state (in particular RAPL_POWER_UNIT,
	// which the daemon's sampler reads once at construction) before the
	// daemon opens the tree.
	if err := padpd.MirrorMSRs(m.Device(), files, chip.NumCores, regs); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		defer close(done)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		prev := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-ticker.C:
				// Advance virtual time by the wall time actually elapsed so
				// the daemon's wall-clock power derivation stays honest even
				// when the ticker drifts.
				elapsed := now.Sub(prev)
				prev = now
				mu.Lock()
				m.Run(elapsed)
				err := padpd.MirrorMSRs(m.Device(), files, chip.NumCores, regs)
				for _, s := range specs {
					if err != nil {
						break
					}
					var v uint64
					if v, err = files.Read(s.Core, padpd.MSRPerfCtl); err == nil && v != 0 {
						err = m.SetRequest(s.Core, padpd.DecodePerfCtl(v, chip.Freq.Step))
					}
				}
				mu.Unlock()
				if err != nil {
					done <- err
					return
				}
			}
		}
	}()

	pol, err := padpd.NewFrequencyShares(chip, specs, padpd.ShareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d, err := padpd.NewDaemon(padpd.DaemonConfig{
		Chip: chip, Policy: pol, Apps: specs, Limit: 30,
		Interval: 50 * time.Millisecond,
	}, files, padpd.MSRActuator{Dev: files, Step: chip.Freq.Step})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.RunRealtime(ctx, 60); err != nil {
		log.Fatal(err)
	}
	// Stop the shuttle before touching the tree or the machine again.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	snap := d.LastSnapshot()
	fmt.Printf("after %d real-time iterations: pkg=%v\n", d.Iterations(), snap.PackagePower)
	for _, a := range snap.Apps {
		fmt.Printf("  %-8s core %d: %v\n", a.Spec.Name, a.Spec.Core, a.Freq)
	}
	js := d.Jitter()
	fmt.Printf("control-loop jitter over %d iterations: mean=%.3fms p99=%.3fms max=%.3fms\n",
		js.Samples, js.Mean*1000, js.P99*1000, js.Max*1000)
}
