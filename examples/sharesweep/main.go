// Sharesweep: how share ratio translates into delivered resources.
//
// Five copies of leela (low demand) face five copies of cactusBSSN (high
// demand) on a Skylake socket at 50 W. We sweep the share ratio from 90/10
// to 10/90 under the frequency-share and performance-share policies and
// print the frequency and performance each class receives — including the
// paper's "low dynamic range" effect: below ~20% the 800 MHz floor stops
// further differentiation.
package main

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

func main() {
	fmt.Println("leela (LD) vs cactusBSSN (HD), 5 cores each, Skylake @ 50 W")
	fmt.Println()
	fmt.Printf("%-8s  %-20s  %-8s  %-8s  %-9s\n", "shares", "policy", "LD MHz", "HD MHz", "LD share")
	for _, ratio := range []struct{ ld, hd padpd.Shares }{
		{90, 10}, {70, 30}, {50, 50}, {30, 70}, {10, 90},
	} {
		for _, mk := range []func(padpd.Chip, []padpd.AppSpec, padpd.ShareConfig) (padpd.Policy, error){
			func(c padpd.Chip, s []padpd.AppSpec, cfg padpd.ShareConfig) (padpd.Policy, error) {
				return padpd.NewFrequencyShares(c, s, cfg)
			},
			func(c padpd.Chip, s []padpd.AppSpec, cfg padpd.ShareConfig) (padpd.Policy, error) {
				return padpd.NewPerformanceShares(c, s, cfg)
			},
		} {
			ldF, hdF, name := run(ratio.ld, ratio.hd, mk)
			frac := float64(ldF) / float64(ldF+hdF)
			fmt.Printf("%2d/%-5d  %-20s  %-8.0f  %-8.0f  %5.1f%%\n",
				ratio.ld, ratio.hd, name, ldF.MHzF(), hdF.MHzF(), frac*100)
		}
	}
}

func run(ld, hd padpd.Shares,
	mk func(padpd.Chip, []padpd.AppSpec, padpd.ShareConfig) (padpd.Policy, error)) (padpd.Hertz, padpd.Hertz, string) {

	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]padpd.AppSpec, 10)
	for i := 0; i < 10; i++ {
		name, shares := "leela", ld
		if i >= 5 {
			name, shares = "cactusBSSN", hd
		}
		p := padpd.MustProfile(name)
		if err := m.Pin(padpd.NewInstance(p), i); err != nil {
			log.Fatal(err)
		}
		specs[i] = padpd.AppSpec{
			Name: name, Core: i, Shares: shares, AVX: p.AVX,
			// Standalone baseline for the performance-share policy,
			// measured offline in the paper; the analytic profile value
			// at the single-core ceiling is the equivalent here.
			BaselineIPS: p.IPS(chip.Freq.Ceiling(1, p.AVX)),
		}
	}
	pol, err := mk(chip, specs, padpd.ShareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d, err := padpd.NewDaemon(padpd.DaemonConfig{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
	}, m.Device(), padpd.MachineActuator{M: m})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		log.Fatal(err)
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		log.Fatal(err)
	}
	snap := d.LastSnapshot()
	var ldF, hdF padpd.Hertz
	for i, a := range snap.Apps {
		if i < 5 {
			ldF += a.Freq
		} else {
			hdF += a.Freq
		}
	}
	return ldF / 5, hdF / 5, pol.Name()
}
