// Colocate: the paper's latency-sensitive scenario (Figures 5 and 12).
//
// A 300-user websearch service occupies nine cores; a cpuburn power virus
// occupies the tenth. Under a 40 W package limit we compare p90 latency in
// three configurations: websearch alone, colocated under RAPL (the virus
// triggers the limiter and websearch pays), and colocated under the
// frequency-share policy with a 90/10 split.
package main

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

const limit = 40 // watts

func main() {
	alone := scenario("alone")
	rapl := scenario("rapl")
	policy := scenario("policy")
	fmt.Printf("\nwebsearch p90 latency under a %d W limit:\n", limit)
	fmt.Printf("  alone                 %6.1f ms\n", alone*1000)
	fmt.Printf("  + cpuburn, RAPL       %6.1f ms  (%.2fx)\n", rapl*1000, rapl/alone)
	fmt.Printf("  + cpuburn, 90/10 freq %6.1f ms  (%.2fx)\n", policy*1000, policy/alone)
}

func scenario(kind string) float64 {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	cores := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	ws, err := padpd.NewWebsearch(padpd.WebsearchConfig{Users: 300, Cores: cores, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := ws.Attach(m); err != nil {
		log.Fatal(err)
	}
	if kind != "alone" {
		if err := m.Pin(padpd.NewInstance(padpd.CPUBurn), 9); err != nil {
			log.Fatal(err)
		}
	}

	switch kind {
	case "alone", "rapl":
		for c := 0; c < chip.NumCores; c++ {
			if m.App(c) != nil {
				if err := m.SetRequest(c, chip.Freq.Max()); err != nil {
					log.Fatal(err)
				}
			}
		}
		m.SetPowerLimit(limit)
	case "policy":
		specs := make([]padpd.AppSpec, 0, 10)
		for _, c := range cores {
			specs = append(specs, padpd.AppSpec{Name: "websearch", Core: c, Shares: 90})
		}
		specs = append(specs, padpd.AppSpec{Name: "cpuburn", Core: 9, Shares: 10, AVX: true})
		pol, err := padpd.NewFrequencyShares(chip, specs, padpd.ShareConfig{})
		if err != nil {
			log.Fatal(err)
		}
		d, err := padpd.NewDaemon(padpd.DaemonConfig{
			Chip: chip, Policy: pol, Apps: specs, Limit: limit,
		}, m.Device(), padpd.MachineActuator{M: m})
		if err != nil {
			log.Fatal(err)
		}
		if err := d.AttachVirtual(m); err != nil {
			log.Fatal(err)
		}
	}

	m.Run(15 * time.Second) // warm up
	ws.ResetStats()
	m.Run(30 * time.Second)
	fmt.Printf("%-7s: %5d requests served, websearch cores at %v, core 9 at %v\n",
		kind, ws.Completed(), m.EffectiveFreq(0), m.EffectiveFreq(9))
	return ws.LatencyPercentile(90)
}
