// Quickstart: the paper's motivating scenario in a few lines.
//
// A low-demand application (gcc) shares a Skylake socket with a high-demand
// AVX application (cam4) under a 40 W package limit. First we let the
// hardware baseline (RAPL) arbitrate — it throttles the faster gcc — then
// we hand power delivery to the frequency-share policy with a 90/10 split
// in gcc's favour and watch the differentiation flip.
package main

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

func main() {
	fmt.Println("== RAPL baseline (no policy) ==")
	raplRun()
	fmt.Println()
	fmt.Println("== frequency shares, gcc:cam4 = 90:10 ==")
	policyRun()
}

// raplRun pins five copies of each app, caps the package at 40 W, and lets
// the hardware limiter arbitrate.
func raplRun() {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		name := "gcc"
		if i >= 5 {
			name = "cam4"
		}
		if err := m.Pin(padpd.NewInstance(padpd.MustProfile(name)), i); err != nil {
			log.Fatal(err)
		}
		if err := m.SetRequest(i, chip.Freq.Max()); err != nil {
			log.Fatal(err)
		}
	}
	m.SetPowerLimit(40)
	m.Run(20 * time.Second)
	fmt.Printf("package power: %v (limit 40 W)\n", m.PackagePower())
	fmt.Printf("gcc  runs at %v  <- RAPL throttled the low-demand app\n", m.EffectiveFreq(0))
	fmt.Printf("cam4 runs at %v  <- the AVX power hog barely moved\n", m.EffectiveFreq(5))
}

// policyRun runs the same mix under the frequency-share daemon.
func policyRun() {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]padpd.AppSpec, 10)
	for i := 0; i < 10; i++ {
		name, shares := "gcc", padpd.Shares(90)
		if i >= 5 {
			name, shares = "cam4", 10
		}
		p := padpd.MustProfile(name)
		if err := m.Pin(padpd.NewInstance(p), i); err != nil {
			log.Fatal(err)
		}
		specs[i] = padpd.AppSpec{Name: name, Core: i, Shares: shares, AVX: p.AVX}
	}
	pol, err := padpd.NewFrequencyShares(chip, specs, padpd.ShareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d, err := padpd.NewDaemon(padpd.DaemonConfig{
		Chip: chip, Policy: pol, Apps: specs, Limit: 40,
	}, m.Device(), padpd.MachineActuator{M: m})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		log.Fatal(err)
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		log.Fatal(err)
	}
	snap := d.LastSnapshot()
	fmt.Printf("package power: %v (limit 40 W)\n", snap.PackagePower)
	fmt.Printf("gcc  runs at %v  <- 90 shares keep the priority app fast\n", snap.Apps[0].Freq)
	fmt.Printf("cam4 runs at %v  <- 10 shares push the hog to the floor\n", snap.Apps[5].Freq)
}
