// Hierarchy: a thousand-node fleet coordinated as building → rows → leaves.
//
// 1024 simulated leaves sit under 32 row coordinators under one
// building. Each row runs the ordinary room coordinator over its leaves
// in-process and presents itself upward as a single synthetic node; the
// building polls the 32 rows over loopback HTTP with delta-encoded
// status and cascades its budget downward as TTL'd leases. The run
// shows the three claims that make the hierarchy worth its extra tier:
// a full-tree round costs milliseconds where a flat poll of 1024 HTTP
// nodes would cost a round-trip per node; demand skew in one row pulls
// budget across tiers without any coordinator seeing more than its own
// children; and a building-level budget cut propagates to every leaf
// while Σ leaf caps stays inside the budget at each step.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster/hierarchy"
	"repro/internal/tracing"
	"repro/internal/units"
)

func main() {
	const (
		leaves = 1024
		rows   = 32
		budget = units.Watts(30 * leaves) // 30.7 kW building budget
	)
	tree, err := hierarchy.NewSimTree(hierarchy.SimTreeConfig{
		Leaves:      leaves,
		Rows:        rows,
		Budget:      budget,
		LeaseTTL:    time.Hour,
		Retries:     -1,
		HTTPUplinks: true,
		Trace:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	ctx := context.Background()

	fmt.Printf("tree: %d leaves / %d rows / 1 building, budget %.0f W\n\n", leaves, rows, float64(budget))

	step := func(label string) {
		t0 := time.Now()
		if err := tree.Step(ctx); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		var rowSum units.Watts
		for _, r := range tree.Rows {
			rowSum += r.Coordinator().Budget()
		}
		fmt.Printf("%-28s round %6.2f ms   Σ row budgets %8.1f W   Σ leaf caps %8.1f W\n",
			label, float64(wall)/1e6, float64(rowSum), float64(tree.TotalLeafCaps()))
	}

	for i := 1; i <= 3; i++ {
		step(fmt.Sprintf("steady round %d", i))
	}

	// Row 0's leaves heat up; everyone else idles down. The rows see only
	// their own leaves, the building sees only 32 aggregates — yet budget
	// drains from 31 cold rows into the hot one.
	hot := tree.RowLeaves[0]
	for _, l := range hot {
		l.SetDemand(2 * budget / units.Watts(leaves))
	}
	for _, rl := range tree.RowLeaves[1:] {
		for _, l := range rl {
			l.SetDemand(budget / units.Watts(leaves) / 4)
		}
	}
	before := tree.Rows[0].Coordinator().Budget()
	for i := 1; i <= 3; i++ {
		step(fmt.Sprintf("skew round %d", i))
	}
	after := tree.Rows[0].Coordinator().Budget()
	fmt.Printf("\nhot row budget: %.1f W -> %.1f W (+%.0f%%)\n\n", float64(before), float64(after), (float64(after/before)-1)*100)

	// A building-level cut: the shrink wave cascades tier by tier, and
	// only what every child acknowledges is committed.
	cut := budget * 3 / 4
	if err := tree.Root.SetBudget(ctx, cut); err != nil {
		log.Fatal(err)
	}
	step(fmt.Sprintf("after cut to %.0f W", float64(cut)))

	// The tracers of all 33 coordinators join into one cross-tier
	// timeline — the same view `powerdump -view merged` renders from
	// /debug/rounds dumps of a live tree.
	logs := tree.Logs()
	tl := tracing.MergeTree(logs[0], logs[1:])
	fmt.Printf("\nmerged timeline: root %q coordinated %d rounds over %d children; %d row sub-timelines\n",
		tl.Coordinator, len(tl.Rounds), len(tl.Rounds[len(tl.Rounds)-1].Nodes), len(tl.Tiers))
	sub := tl.Tiers[0]
	fmt.Printf("  tier %q: %d rounds over %d leaves\n", sub.Coordinator, len(sub.Rounds), len(sub.Rounds[len(sub.Rounds)-1].Nodes))
}
