// Governors: the OS-level mechanisms the paper's background section
// contrasts with its policies (Section 2.2).
//
// Part 1 compares cpufreq-style governors on an interactive (30% duty)
// workload: the performance governor burns power holding max frequency,
// ondemand tracks the load, powersave crawls.
//
// Part 2 runs a thermald scenario: a power virus heats the package past a
// trip temperature and the thermal daemon regulates it back using the RAPL
// limit — the same mechanism stack the paper's policies sit on top of.
package main

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

func main() {
	fmt.Println("== cpufreq governors on an interactive workload (duty cycle 0.3) ==")
	fmt.Printf("%-13s  %-10s  %-12s  %-10s\n", "governor", "request", "energy (J)", "GIPS done")
	for _, kind := range []padpd.GovernorKind{
		padpd.GovPerformance, padpd.GovOndemand, padpd.GovConservative, padpd.GovPowersave,
	} {
		governorRun(kind)
	}
	fmt.Println()
	fmt.Println("== thermald: trip, mitigate via RAPL, regulate ==")
	thermalRun()
}

func governorRun(kind padpd.GovernorKind) {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	p := padpd.MustProfile("gcc")
	p.Phases = nil
	p.DutyCycle = 0.3
	p.DutyPeriod = 50 * time.Millisecond
	if err := m.Pin(padpd.NewInstance(p), 0); err != nil {
		log.Fatal(err)
	}
	if _, err := padpd.AttachGovernor(m, []int{0}, padpd.GovernorConfig{Kind: kind}); err != nil {
		log.Fatal(err)
	}
	m.Run(10 * time.Second)
	fmt.Printf("%-13s  %-10s  %-12.1f  %-10.2f\n",
		kind, m.Request(0), float64(m.PackageEnergy()), m.Counters(0).Instr/1e9)
}

func thermalRun() {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < chip.NumCores; i++ {
		if err := m.Pin(padpd.NewInstance(padpd.CPUBurn), i); err != nil {
			log.Fatal(err)
		}
		if err := m.SetRequest(i, chip.Freq.Max()); err != nil {
			log.Fatal(err)
		}
	}
	model, err := padpd.NewThermalModel(25, 0.5, 60) // tau = 30 s
	if err != nil {
		log.Fatal(err)
	}
	d, err := padpd.AttachThermalDaemon(m, model, padpd.ThermalConfig{
		TripTemp: 55, TargetTemp: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	for step := 0; step < 6; step++ {
		m.Run(30 * time.Second)
		fmt.Printf("t=%-5s temp=%5.1f C  pkg=%-8s engaged=%-5v limit=%s\n",
			m.Now(), d.Temperature(), m.PackagePower(), d.Engaged(), d.Limit())
	}
}
