// Prioritymix: the paper's priority policy across workload mixes
// (Figure 7's story in miniature).
//
// We vary how many of ten Skylake cores run high-priority applications
// under a 40 W limit. With few HP applications, the policy deliberately
// starves the LP class to hand the HP class turbo headroom — so three HP
// applications at 40 W run *faster* than ten applications at 85 W.
package main

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

func main() {
	fmt.Println("priority policy on Skylake @ 40 W, cactusBSSN (HD) + leela (LD) mixes")
	fmt.Println()
	fmt.Printf("%-8s  %-8s  %-8s  %-10s  %-8s\n", "mix", "HP MHz", "LP MHz", "LP starved", "pkg W")
	for _, nHP := range []int{10, 7, 5, 3, 1} {
		hpF, lpF, starved, pkg := run(nHP)
		lp := fmt.Sprintf("%.0f", lpF.MHzF())
		if starved {
			lp = "-"
		}
		fmt.Printf("%dH %dL  %8.0f  %8s  %-10v  %8.2f\n",
			nHP, 10-nHP, hpF.MHzF(), lp, starved, float64(pkg))
	}
}

func run(nHP int) (hpF, lpF padpd.Hertz, starved bool, pkg padpd.Watts) {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]padpd.AppSpec, 10)
	for i := 0; i < 10; i++ {
		name := "cactusBSSN"
		if i%2 == 1 {
			name = "leela"
		}
		p := padpd.MustProfile(name)
		if err := m.Pin(padpd.NewInstance(p), i); err != nil {
			log.Fatal(err)
		}
		specs[i] = padpd.AppSpec{Name: name, Core: i, HighPriority: i < nHP, AVX: p.AVX}
	}
	pol, err := padpd.NewPriority(chip, specs, padpd.PriorityConfig{Limit: 40})
	if err != nil {
		log.Fatal(err)
	}
	d, err := padpd.NewDaemon(padpd.DaemonConfig{
		Chip: chip, Policy: pol, Apps: specs, Limit: 40,
	}, m.Device(), padpd.MachineActuator{M: m})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		log.Fatal(err)
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		log.Fatal(err)
	}
	snap := d.LastSnapshot()
	var nLP int
	starved = true
	for i, a := range snap.Apps {
		if i < nHP {
			hpF += a.Freq
		} else {
			nLP++
			lpF += a.Freq
			if !a.Parked {
				starved = false
			}
		}
	}
	hpF /= padpd.Hertz(nHP)
	if nLP > 0 {
		lpF /= padpd.Hertz(nLP)
	} else {
		starved = false
	}
	return hpF, lpF, starved, snap.PackagePower
}
