package padpd

// Benches for the extension studies and the mechanism substrates, beyond
// the per-figure benches in bench_test.go.

import (
	"testing"
	"time"
)

func BenchmarkStabilityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := StabilityStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUsefulFreqStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := UsefulFreqStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGamingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GamingStudy(KindPerfShares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AblationClustering(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsolidationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ConsolidationStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AblationInterval(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAPLControl measures the raw limiter decision path.
func BenchmarkRAPLControl(b *testing.B) {
	m, err := NewMachine(Skylake())
	if err != nil {
		b.Fatal(err)
	}
	lim := m.Limiter()
	lim.SetLimit(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lim.Observe(Watts(45+i%10), time.Millisecond)
	}
}

// BenchmarkClusterPStates measures the Ryzen 3-P-state DP on a full
// 8-core target vector.
func BenchmarkClusterPStates(b *testing.B) {
	chip := Ryzen()
	targets := []Hertz{
		3400 * MHz, 3200 * MHz, 2800 * MHz, 2400 * MHz,
		1800 * MHz, 1200 * MHz, 800 * MHz, 400 * MHz,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClusterPStates(targets, 3, chip.Freq)
	}
}

// BenchmarkWebsearchTick measures the queueing model's per-tick cost at
// the paper's 300-user load.
func BenchmarkWebsearchTick(b *testing.B) {
	m, err := NewMachine(Skylake())
	if err != nil {
		b.Fatal(err)
	}
	ws, err := NewWebsearch(WebsearchConfig{
		Users: 300, Cores: []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := ws.Attach(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkTelemetrySample measures one turbostat-style sampling pass over
// a 10-core machine.
func BenchmarkTelemetrySample(b *testing.B) {
	m, err := NewMachine(Skylake())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Pin(NewInstance(MustProfile("gcc")), 0); err != nil {
		b.Fatal(err)
	}
	s, err := NewSampler(m.Device(), 10, m.Chip().Freq.Nom, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
		if _, err := s.Sample(time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}
