package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func buildLoop(t *testing.T, chip platform.Chip, mkpol func(platform.Chip, []core.AppSpec) (core.Policy, error)) (*sim.Machine, *daemon.Daemon) {
	names := []string{"gcc", "cam4", "leela", "cactusBSSN"}
	reg := metrics.NewRegistry()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]core.AppSpec, chip.NumCores)
	for i := 0; i < chip.NumCores; i++ {
		p := workload.MustByName(names[i%len(names)])
		if err := m.Pin(workload.NewInstance(p), i); err != nil {
			t.Fatal(err)
		}
		specs[i] = core.AppSpec{Name: p.Name, Core: i, Shares: units.Shares(10 + i%7), AVX: p.AVX, HighPriority: i%2 == 0, BaselineIPS: 1e9}
	}
	pol, err := mkpol(chip, specs)
	if err != nil {
		t.Fatal(err)
	}
	limit := chip.RAPLMax * 6 / 10
	d, err := daemon.New(daemon.Config{Chip: chip, Policy: pol, Apps: specs, Limit: limit, Metrics: reg}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	return m, d
}

// TestAllocProbeDetectsInjection proves the measurement the zero-alloc
// gate rests on can actually fail: the same loop with one allocating
// snapshot hook wired in reads as nonzero allocs/op immediately. A green
// TestAllocProbe is therefore evidence of absence, not an artifact of a
// probe that cannot trip.
func TestAllocProbeDetectsInjection(t *testing.T) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.MustByName("gcc")
	if err := m.Pin(workload.NewInstance(p), 0); err != nil {
		t.Fatal(err)
	}
	specs := []core.AppSpec{{Name: p.Name, Core: 0, Shares: 10, AVX: p.AVX, BaselineIPS: 1e9}}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sink []core.AppState
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: chip.RAPLMax * 6 / 10,
		OnSnapshot: func(s core.Snapshot) {
			sink = append([]core.AppState(nil), s.Apps...) // one heap copy per interval
		},
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Step()
		if _, err := d.RunIteration(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(100, func() {
		m.Step()
		if _, err := d.RunIteration(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	if n == 0 {
		t.Error("injected per-interval allocation went unmeasured; the zero-alloc probe cannot trip")
	}
	_ = sink
}

// The SLO loop — service model tick, telemetry double-buffer, and the
// feedback policy's PI decide path — must stay allocation-free too.
func TestAllocProbeSLO(t *testing.T) {
	for _, cores := range []int{8, 32} {
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			m, d, _, err := buildSLOBench(cores)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				m.Step()
				if _, err := d.RunIteration(time.Millisecond); err != nil {
					t.Fatal(err)
				}
			}
			n := testing.AllocsPerRun(100, func() {
				m.Step()
				if _, err := d.RunIteration(time.Millisecond); err != nil {
					t.Fatal(err)
				}
			})
			if n != 0 {
				t.Errorf("allocs per SLO iteration = %v, want 0", n)
			}
		})
	}
}

func TestAllocProbe(t *testing.T) {
	chips := map[string]platform.Chip{
		"sky10":  platform.Skylake(),
		"sky128": platform.MultiSocket(platform.ScaleSocket(platform.Skylake(), 64), 2),
		"ryzen8": platform.Ryzen(),
	}
	pols := map[string]func(platform.Chip, []core.AppSpec) (core.Policy, error){
		"freq": func(c platform.Chip, s []core.AppSpec) (core.Policy, error) {
			return core.NewFrequencyShares(c, s, core.ShareConfig{})
		},
		"perf": func(c platform.Chip, s []core.AppSpec) (core.Policy, error) {
			return core.NewPerformanceShares(c, s, core.ShareConfig{})
		},
		"power": func(c platform.Chip, s []core.AppSpec) (core.Policy, error) {
			if !c.PerCorePower {
				return nil, nil
			}
			return core.NewPowerShares(c, s, core.ShareConfig{})
		},
		"prio": func(c platform.Chip, s []core.AppSpec) (core.Policy, error) {
			return core.NewPriority(c, s, core.PriorityConfig{Limit: c.RAPLMax * 6 / 10})
		},
		"prioshares": func(c platform.Chip, s []core.AppSpec) (core.Policy, error) {
			return core.NewPriorityShares(c, s, core.PriorityConfig{Limit: c.RAPLMax * 6 / 10})
		},
	}
	for cn, chip := range chips {
		for pn, mk := range pols {
			if pn == "power" && !chip.PerCorePower {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", cn, pn), func(t *testing.T) {
				m, d := buildLoop(t, chip, mk)
				for i := 0; i < 50; i++ {
					m.Step()
					if _, err := d.RunIteration(time.Millisecond); err != nil {
						t.Fatal(err)
					}
				}
				n := testing.AllocsPerRun(100, func() {
					m.Step()
					if _, err := d.RunIteration(time.Millisecond); err != nil {
						t.Fatal(err)
					}
				})
				if n != 0 {
					t.Errorf("allocs per iteration = %v, want 0", n)
				}
			})
		}
	}
}
