package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/hierarchy"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/powerapi"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/units"
	"repro/internal/workload"
)

// Node counts for the coordinator-tick trajectory and core counts for
// the control-loop trajectory. Smoke mode keeps the loop trajectory
// through the first multi-socket size (128 cores, where the NUMA paths
// start mattering) and drops only the largest fleets, so CI's gate run
// stays fast but still exercises cross-socket sampling.
var (
	coordinatorNodes      = []int{4, 16, 64}
	coordinatorSmokeNodes = []int{4, 16}
	// Hierarchy sizes are {leaves, rows}: 3-tier trees of in-process
	// leaves under rows reached over loopback-HTTP uplinks. The 1024-leaf
	// flagship (32 rows × 32 leaves) is the thousand-node configuration
	// the flat coordinator could never poll in one round.
	hierSizes      = [][2]int{{64, 8}, {256, 16}, {1024, 32}}
	hierSmokeSizes = [][2]int{{64, 8}}
	loopCores             = []int{4, 10, 32, 128, 256, 512}
	loopSmokeCores        = []int{4, 10, 32, 128}
	ledgerApps            = []int{2, 8, 32, 128}
	ledgerSmokeApps       = []int{2, 8, 32}
	svcTickCores          = []int{8, 32, 128}
	svcTickSmokeCores     = []int{8, 32}
)

func sizes(all, smokeSubset []int, smoke bool) []int {
	if smoke {
		return smokeSubset
	}
	return all
}

// benchSocketCores is the per-socket core count the multi-socket bench
// machines are built from: eight of these make the 512-core flagship.
const benchSocketCores = 64

// benchChip builds the control-loop benchmark machine for a core count:
// a single widened Skylake socket up to 64 cores, and a multi-socket
// package of 64-core sockets beyond that (128 = 2×64, 512 = 8×64), so
// the large configurations exercise per-socket RAPL domains and
// cross-socket turbo occupancy rather than one implausibly wide socket.
func benchChip(cores int) platform.Chip {
	if cores <= benchSocketCores {
		return platform.ScaleSocket(platform.Skylake(), cores)
	}
	if cores%benchSocketCores != 0 {
		panic(fmt.Sprintf("bench: %d cores is not a multiple of the %d-core bench socket", cores, benchSocketCores))
	}
	socket := platform.ScaleSocket(platform.Skylake(), benchSocketCores)
	return platform.MultiSocket(socket, cores/benchSocketCores)
}

// benchNode is one loopback-HTTP node for the coordinator benchmark:
// the full powerd stack (machine, daemon, agent, obs listener), reached
// only through the wire.
type benchNode struct {
	agent *powerapi.Agent
	srv   *httptest.Server
}

func (n *benchNode) close() {
	n.srv.Close()
	n.agent.Close()
}

func newBenchNode(name string, limit units.Watts, withLedger bool) (*benchNode, error) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		return nil, err
	}
	apps := []string{"gcc", "cam4"}
	specs := make([]core.AppSpec, len(apps))
	for i, a := range apps {
		p := workload.MustByName(a)
		if err := m.Pin(workload.NewInstance(p), i); err != nil {
			return nil, err
		}
		specs[i] = core.AppSpec{Name: a, Core: i, Shares: 50, AVX: p.AVX}
	}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		return nil, err
	}
	var led *ledger.Ledger
	if withLedger {
		if led, err = ledger.New(ledger.Config{Chip: chip, Apps: specs}); err != nil {
			return nil, err
		}
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit, Ledger: led,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		return nil, err
	}
	if err := d.AttachVirtual(m); err != nil {
		return nil, err
	}
	m.Run(time.Second) // non-zero power so the node bids
	agent, err := powerapi.NewAgent(powerapi.AgentConfig{
		Name: name, Daemon: d, Fallback: limit, PolicyName: "frequency",
		Ledger: led,
	})
	if err != nil {
		return nil, err
	}
	osrv := obs.New(nil, nil, nil, obs.WithHandler(powerapi.PathPrefix, agent.Handler()))
	return &benchNode{agent: agent, srv: httptest.NewServer(osrv.Handler())}, nil
}

// phaseWalls reduces a trace log to the mean wall-clock nanoseconds per
// span phase and round: concurrent spans of one phase (the report
// fan-out) count once, first-start to last-end.
func phaseWalls(log tracing.Log) map[string]float64 {
	sum := map[string]float64{}
	cnt := map[string]float64{}
	for _, r := range log.Rounds {
		starts := map[string]time.Duration{}
		ends := map[string]time.Duration{}
		for _, s := range r.Spans {
			if cur, ok := starts[s.Name]; !ok || s.Start < cur {
				starts[s.Name] = s.Start
			}
			if s.End > ends[s.Name] {
				ends[s.Name] = s.End
			}
		}
		for name := range starts {
			sum[name] += float64(ends[name] - starts[name])
			cnt[name]++
		}
	}
	out := make(map[string]float64, len(sum))
	for name, s := range sum {
		out[name] = s / cnt[name]
	}
	return out
}

// coordinatorEntry benchmarks one coordinator reallocation round over a
// loopback-HTTP fleet of n nodes. With withLedger every node runs an
// energy ledger and piggybacks its summary on the status poll, and the
// coordinator aggregates the fleet energy rollup — the full observability
// cost a production round pays.
func coordinatorEntry(n int, withLedger bool) (Entry, error) {
	budget := units.Watts(30 * n)
	nodes := make([]*benchNode, n)
	ts := make([]cluster.Transport, n)
	for i := range nodes {
		name := fmt.Sprintf("n%03d", i)
		nd, err := newBenchNode(name, budget/units.Watts(n), withLedger)
		if err != nil {
			return Entry{}, fmt.Errorf("bench: node %d of %d: %w", i, n, err)
		}
		nodes[i] = nd
		ts[i] = cluster.NewHTTPNode(name, nd.srv.URL, "bench")
	}
	defer func() {
		for _, nd := range nodes {
			nd.close()
		}
	}()
	tracer := tracing.New("bench-coord", 0)
	ccfg := cluster.Config{
		Budget:      budget,
		FloorBudget: budget,
		LeaseTTL:    time.Hour,
		Retries:     -1,
		Tracer:      tracer,
	}
	if withLedger {
		ccfg.Fleet = cluster.NewFleet(budget, nil)
	}
	c, err := cluster.NewOverTransports(ts, ccfg)
	if err != nil {
		return Entry{}, err
	}
	ctx := context.Background()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Step(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	phases := phaseWalls(tracer.Log())
	if _, ok := phases["grant"]; !ok {
		// Steady-state rounds skip no-op renewals, so a converged fleet
		// never shows a grant wave. Shrink the budget once under a traced
		// round to measure a real full-fleet wave.
		wid := ccfg.RoundBase + 1<<31
		if err := c.SetBudget(powerapi.WithRound(ctx, wid), budget*9/10); err != nil {
			return Entry{}, err
		}
		for _, rd := range tracer.Log().Rounds {
			if rd.ID != wid {
				continue
			}
			if w := phaseWalls(tracing.Log{Rounds: []tracing.Round{rd}})["grant"]; w > 0 {
				phases["grant"] = w
			}
		}
	}
	name := fmt.Sprintf("coordinator_tick/nodes=%d", n)
	cfg := map[string]int{"nodes": n}
	if withLedger {
		name = fmt.Sprintf("coordinator_tick_ledger/nodes=%d", n)
		cfg["ledger"] = 1
	}
	return Entry{
		Name:        name,
		Config:      cfg,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		Phases:      phases,
	}, nil
}

// meanRoundWall averages the wall-clock nanoseconds per recorded round
// across the given trace logs.
func meanRoundWall(logs ...tracing.Log) float64 {
	var sum, cnt float64
	for _, l := range logs {
		for _, r := range l.Rounds {
			sum += float64(r.End - r.Start)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}

// hierarchyEntry benchmarks one full tree round — every row polls its
// leaves, then the building polls the rows' fresh aggregates over
// loopback-HTTP uplinks and re-cascades budget — on a 3-tier tree of
// the given shape.
func hierarchyEntry(leaves, rows int) (Entry, error) {
	tree, err := hierarchy.NewSimTree(hierarchy.SimTreeConfig{
		Leaves:      leaves,
		Rows:        rows,
		Budget:      units.Watts(30 * leaves),
		LeaseTTL:    time.Hour,
		Retries:     -1,
		HTTPUplinks: true,
		Trace:       true,
	})
	if err != nil {
		return Entry{}, err
	}
	defer tree.Close()
	ctx := context.Background()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tree.Step(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	logs := tree.Logs()
	phases := map[string]float64{}
	if w := meanRoundWall(logs[0]); w > 0 {
		phases["round_building"] = w
	}
	if w := meanRoundWall(logs[1:]...); w > 0 {
		phases["round_row"] = w
	}
	return Entry{
		Name:        fmt.Sprintf("coordinator_tick_hier/leaves=%d", leaves),
		Config:      map[string]int{"leaves": leaves, "rows": rows},
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		Phases:      phases,
	}, nil
}

// HierarchyTrajectory benchmarks the full-tree reallocation round of
// room→row→building trees at increasing leaf counts. The leaves attach
// in-process (the deployment cost of a leaf lives in the flat
// coordinator_tick family); the row→building uplinks run the real
// delta-status wire protocol over loopback HTTP, so the trajectory
// prices exactly what the hierarchy adds: per-tier aggregation and the
// cascading grant wave.
func HierarchyTrajectory(smoke bool) ([]Entry, error) {
	shapes := hierSizes
	if smoke {
		shapes = hierSmokeSizes
	}
	var entries []Entry
	for _, s := range shapes {
		e, err := hierarchyEntry(s[0], s[1])
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// CoordinatorTrajectory benchmarks one coordinator reallocation round
// over loopback-HTTP node fleets of increasing size: the concurrent
// status fan-out, the water-fill plan, and the grant wave, with the
// phase breakdown taken from the round traces the run records. Each
// fleet size runs twice — bare, and with per-node energy ledgers plus
// the coordinator's fleet energy rollup — so the ledger's status-poll
// piggyback cost is pinned in the baseline next to the figure it must
// not regress.
func CoordinatorTrajectory(smoke bool) ([]Entry, error) {
	var entries []Entry
	for _, withLedger := range []bool{false, true} {
		for _, n := range sizes(coordinatorNodes, coordinatorSmokeNodes, smoke) {
			e, err := coordinatorEntry(n, withLedger)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// LoopTrajectory benchmarks one 1 ms control-loop iteration (sample →
// decide → actuate plus one simulator step) on Skylake sockets scaled
// to increasing core counts, with the phase breakdown read back from
// the daemon's phase histograms.
func LoopTrajectory(smoke bool) ([]Entry, error) {
	names := []string{"gcc", "cam4", "leela", "cactusBSSN"}
	var entries []Entry
	for _, cores := range sizes(loopCores, loopSmokeCores, smoke) {
		chip := benchChip(cores)
		reg := metrics.NewRegistry()
		m, err := sim.New(chip)
		if err != nil {
			return nil, err
		}
		specs := make([]core.AppSpec, cores)
		for i := 0; i < cores; i++ {
			p := workload.MustByName(names[i%len(names)])
			if err := m.Pin(workload.NewInstance(p), i); err != nil {
				return nil, err
			}
			specs[i] = core.AppSpec{Name: p.Name, Core: i, Shares: units.Shares(10 + i%7), AVX: p.AVX}
		}
		pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
		if err != nil {
			return nil, err
		}
		limit := chip.RAPLMax * 6 / 10
		d, err := daemon.New(daemon.Config{
			Chip: chip, Policy: pol, Apps: specs, Limit: limit, Metrics: reg,
		}, m.Device(), daemon.MachineActuator{M: m})
		if err != nil {
			return nil, err
		}
		if err := d.Start(); err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Step()
				if _, err := d.RunIteration(time.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
		})
		phases := map[string]float64{}
		vec := reg.HistogramVec("powerd_phase_seconds", "", nil, "phase")
		for _, ph := range []string{"sample", "decide", "actuate"} {
			h := vec.With(ph)
			if c := h.Count(); c > 0 {
				phases[ph] = h.Sum() / float64(c) * 1e9
			}
		}
		entries = append(entries, Entry{
			Name:        fmt.Sprintf("loop_iteration/cores=%d", cores),
			Config:      map[string]int{"cores": cores},
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			Phases:      phases,
		})
	}
	return entries, nil
}

// coreRange returns the half-open core interval [lo, hi).
func coreRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}

// SvcTrajectory benchmarks one 1 ms advance of the multi-tenant
// latency-service model — arrival admission, per-core cycle drain, and
// sliding-window bookkeeping for four co-located open-loop services —
// at increasing machine sizes. The tick rides the control loop's
// cadence, so the family is held to the hard zero-allocation gate.
func SvcTrajectory(smoke bool) ([]Entry, error) {
	var entries []Entry
	for _, cores := range sizes(svcTickCores, svcTickSmokeCores, smoke) {
		chip := benchChip(cores)
		m, err := sim.New(chip)
		if err != nil {
			return nil, err
		}
		const tenants = 4
		per := cores / tenants
		cfgs := make([]svc.Config, tenants)
		for i := range cfgs {
			cfgs[i] = svc.Config{
				Name:     fmt.Sprintf("svc%d", i),
				Cores:    coreRange(i*per, (i+1)*per),
				Seed:     int64(i + 1),
				Arrivals: svc.OpenPoisson,
				Rate:     svc.ConstantRate(40 * float64(per)),
				SLO:      50 * time.Millisecond,
			}
		}
		model, err := svc.NewModel(cfgs...)
		if err != nil {
			return nil, err
		}
		if err := model.Attach(m); err != nil {
			return nil, err
		}
		for c := 0; c < cores; c++ {
			if err := m.SetRequest(c, chip.Freq.Nom); err != nil {
				return nil, err
			}
		}
		// One simulated interval populates the effective frequencies and
		// warms the queues; after it the tick is driven directly so the
		// entry prices the service model alone, not the simulator.
		m.Run(100 * time.Millisecond)
		for i := 0; i < 2000; i++ {
			model.Advance(time.Millisecond)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.Advance(time.Millisecond)
			}
		})
		entries = append(entries, Entry{
			Name:        fmt.Sprintf("svc_tick/cores=%d", cores),
			Config:      map[string]int{"cores": cores, "services": tenants},
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		})
	}
	return entries, nil
}

// buildSLOBench assembles the SLO control-loop machine: half the cores
// serve an open-loop websearch service, a quarter serve ads, the rest
// run gcc batch, all daemonised under the SLO-feedback policy with the
// service model feeding telemetry into every snapshot.
func buildSLOBench(cores int) (*sim.Machine, *daemon.Daemon, *metrics.Registry, error) {
	chip := benchChip(cores)
	reg := metrics.NewRegistry()
	m, err := sim.New(chip)
	if err != nil {
		return nil, nil, nil, err
	}
	web, ads := cores/2, cores/4
	model, err := svc.NewModel(
		svc.Config{
			Name: "websearch", Cores: coreRange(0, web), Seed: 1,
			Arrivals: svc.OpenPoisson, Rate: svc.ConstantRate(40 * float64(web)),
			SLO: 50 * time.Millisecond,
		},
		svc.Config{
			Name: "ads", Cores: coreRange(web, web+ads), Seed: 2,
			Arrivals: svc.OpenPoisson, Rate: svc.ConstantRate(40 * float64(ads)),
			SLO: 30 * time.Millisecond,
		},
	)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := model.Attach(m); err != nil {
		return nil, nil, nil, err
	}
	specs := make([]core.AppSpec, cores)
	for i := 0; i < cores; i++ {
		switch {
		case i < web:
			specs[i] = core.AppSpec{Name: "websearch", Core: i, Shares: 50}
		case i < web+ads:
			specs[i] = core.AppSpec{Name: "ads", Core: i, Shares: 50}
		default:
			p := workload.MustByName("gcc")
			if err := m.Pin(workload.NewInstance(p), i); err != nil {
				return nil, nil, nil, err
			}
			specs[i] = core.AppSpec{Name: p.Name, Core: i, Shares: 30, AVX: p.AVX}
		}
	}
	targets := []core.SLOTarget{
		{Service: "websearch", P99: 50 * time.Millisecond},
		{Service: "ads", P99: 30 * time.Millisecond},
	}
	pol, err := core.NewSLOFeedback(chip, specs, core.SLOConfig{Targets: targets})
	if err != nil {
		return nil, nil, nil, err
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: chip.RAPLMax * 6 / 10,
		Metrics: reg, SLO: model, SLOTargets: targets,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := d.Start(); err != nil {
		return nil, nil, nil, err
	}
	return m, d, reg, nil
}

// SLOLoopTrajectory benchmarks the control-loop iteration with the SLO
// machinery engaged: the service model ticks on the simulator step, the
// daemon double-buffers per-service telemetry into the snapshot, and
// the SLO-feedback policy runs its PI loops. The entries live under the
// loop_iteration/ prefix, so the zero-alloc gate covers the whole SLO
// decide path.
func SLOLoopTrajectory(smoke bool) ([]Entry, error) {
	var entries []Entry
	for _, cores := range sizes(svcTickCores, svcTickSmokeCores, smoke) {
		m, d, reg, err := buildSLOBench(cores)
		if err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Step()
				if _, err := d.RunIteration(time.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
		})
		phases := map[string]float64{}
		vec := reg.HistogramVec("powerd_phase_seconds", "", nil, "phase")
		for _, ph := range []string{"sample", "decide", "actuate"} {
			h := vec.With(ph)
			if c := h.Count(); c > 0 {
				phases[ph] = h.Sum() / float64(c) * 1e9
			}
		}
		entries = append(entries, Entry{
			Name:        fmt.Sprintf("loop_iteration/slo/cores=%d", cores),
			Config:      map[string]int{"cores": cores},
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			Phases:      phases,
		})
	}
	return entries, nil
}

// LedgerTrajectory benchmarks one energy-ledger Append — attribution,
// tier append, detectors, cost, metrics publish, and flight events — at
// increasing app counts on the same multi-socket machines the loop
// trajectory uses. The family rides the control loop, so it is held to
// the hard zero-allocation gate alongside loop_iteration.
func LedgerTrajectory(smoke bool) ([]Entry, error) {
	var entries []Entry
	for _, napps := range sizes(ledgerApps, ledgerSmokeApps, smoke) {
		chip := benchChip(napps)
		names := []string{"gcc", "cam4", "leela", "cactusBSSN"}
		specs := make([]core.AppSpec, napps)
		for i := range specs {
			specs[i] = core.AppSpec{Name: names[i%len(names)], Core: i, Shares: units.Shares(10 + i%7)}
		}
		led, err := ledger.New(ledger.Config{
			Chip: chip, Apps: specs,
			Metrics: metrics.NewRegistry(), Flight: flight.New(0),
		})
		if err != nil {
			return nil, err
		}
		sockets := chip.Sockets()
		in := ledger.Input{
			Dt:           time.Millisecond,
			Limit:        units.Watts(25 * sockets),
			PackagePower: units.Watts(30 * sockets),
			PkgStatus:    telemetry.StatusOK,
			SocketPower:  make([]units.Watts, sockets),
			SocketStatus: make([]telemetry.CoreStatus, sockets),
			Cores:        make([]telemetry.CoreSample, chip.NumCores),
		}
		for s := 0; s < sockets; s++ {
			in.SocketPower[s] = 30
			in.SocketStatus[s] = telemetry.StatusOK
		}
		for c := range in.Cores {
			in.Cores[c] = telemetry.CoreSample{
				CPU: c, ActiveFreq: units.Hertz(2e9 + float64(c)*1e7), Status: telemetry.StatusOK,
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in.At += in.Dt
				led.Append(in)
			}
		})
		entries = append(entries, Entry{
			Name:        fmt.Sprintf("ledger_append/apps=%d", napps),
			Config:      map[string]int{"apps": napps},
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		})
	}
	return entries, nil
}
