package bench

import (
	"bytes"
	"strings"
	"testing"
)

func baseline() *File {
	f := NewFile("coordinator", false)
	f.Entries = []Entry{
		{Name: "coordinator_tick/nodes=4", Config: map[string]int{"nodes": 4},
			NsPerOp: 1_000_000, AllocsPerOp: 500, BytesPerOp: 64_000,
			Phases: map[string]float64{"report": 800_000, "plan": 5_000, "grant": 150_000}},
		{Name: "coordinator_tick/nodes=16", Config: map[string]int{"nodes": 16},
			NsPerOp: 2_000_000, AllocsPerOp: 2_000, BytesPerOp: 256_000},
		{Name: "coordinator_tick/nodes=64", Config: map[string]int{"nodes": 64},
			NsPerOp: 6_000_000, AllocsPerOp: 8_000, BytesPerOp: 1_000_000},
	}
	return f
}

func TestFileRoundTrip(t *testing.T) {
	f := baseline()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Name != "coordinator" || len(got.Entries) != 3 {
		t.Fatalf("read back %+v", got)
	}
	// Entries come back sorted by name (stable diffs).
	if got.Entries[0].Name != "coordinator_tick/nodes=16" {
		t.Errorf("entries not sorted: %q first", got.Entries[0].Name)
	}
	if got.Entries[1].Phases["report"] != 800_000 {
		t.Errorf("phases lost: %+v", got.Entries[1].Phases)
	}

	// A future schema is refused, not misread.
	if _, err := Read(strings.NewReader(`{"schema":"padbench/v2","entries":[]}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// The acceptance check for the CI gate: a 20%+ injected regression on
// one entry must fail the comparison, even though every other entry is
// unchanged (so calibration cannot wash it out).
func TestCompareFailsInjectedRegression(t *testing.T) {
	base := baseline()
	cand := baseline()
	cand.Entries[1].NsPerOp *= 1.25 // nodes=16: 25% slower

	regs, err := Compare(base, cand, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the injected one", regs)
	}
	if regs[0].Name != "coordinator_tick/nodes=16" || regs[0].Metric != "ns/op" {
		t.Fatalf("flagged %+v", regs[0])
	}

	// Just inside the threshold passes.
	cand = baseline()
	cand.Entries[1].NsPerOp *= 1.15
	if regs, _ := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("15%% growth flagged: %+v", regs)
	}
}

// A uniformly slower machine calibrates away; the same slowdown applied
// absolutely fails. This is what lets CI runners of different speeds
// share one committed baseline.
func TestCompareCalibratesMachineSpeed(t *testing.T) {
	base := baseline()
	cand := baseline()
	for i := range cand.Entries {
		cand.Entries[i].NsPerOp *= 1.8 // every entry: a slower runner
	}
	if regs, _ := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("uniform slowdown flagged: %+v", regs)
	}
	if regs, _ := Compare(base, cand, CompareOptions{Absolute: true}); len(regs) != 3 {
		t.Fatalf("absolute mode missed the slowdown: %+v", regs)
	}

	// A real regression on top of the uniform slowdown is still caught.
	cand.Entries[2].NsPerOp *= 1.5
	regs, _ := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Name != cand.Entries[2].Name {
		t.Fatalf("regression under calibration: %+v", regs)
	}

	// A faster machine never loosens the bound: a regression that still
	// beats the old absolute numbers is caught relative to the fleet.
	cand = baseline()
	for i := range cand.Entries {
		cand.Entries[i].NsPerOp *= 0.5
	}
	cand.Entries[0].NsPerOp *= 1.6 // 0.8× baseline absolute, 60% off the new fleet
	if regs, _ := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		// scale clamps at 1, so 0.8× baseline is within the old bound —
		// this documents the clamp rather than asserting a flag.
		t.Fatalf("sub-baseline entry flagged: %+v", regs)
	}
}

func TestCompareAllocsAndMissing(t *testing.T) {
	base := baseline()
	cand := baseline()
	cand.Entries[0].AllocsPerOp = cand.Entries[0].AllocsPerOp*1.3 + 20
	regs, _ := Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("alloc regression: %+v", regs)
	}

	// Small absolute alloc flips on tiny benchmarks stay quiet.
	cand = baseline()
	cand.Entries[0].AllocsPerOp += 5
	if regs, _ := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("alloc noise flagged: %+v", regs)
	}

	// Dropping an entry from the candidate is loud, never silent...
	cand = baseline()
	cand.Entries = cand.Entries[:2]
	regs, _ = Compare(base, cand, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("dropped entry: %+v", regs)
	}
	// ...unless the candidate is a smoke run, which is a subset by design.
	cand.Smoke = true
	if regs, _ := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("smoke subset flagged: %+v", regs)
	}

	// Mixed schemas refuse to compare.
	cand = baseline()
	cand.Schema = "padbench/v2"
	if _, err := Compare(base, cand, CompareOptions{}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

// TestTrajectorySmoke actually runs the smallest benchmark of each
// trajectory, so the generation path (node fleet construction, tracer
// phase extraction, histogram readback) is exercised by `go test`.
func TestTrajectorySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	ents, err := CoordinatorTrajectory(true)
	if err != nil {
		t.Fatal(err)
	}
	// Each smoke size runs bare and ledgered.
	if want := 2 * len(coordinatorSmokeNodes); len(ents) != want {
		t.Fatalf("coordinator smoke entries = %d, want %d", len(ents), want)
	}
	sawLedger := false
	for _, e := range ents {
		if e.NsPerOp <= 0 || e.Config["nodes"] == 0 {
			t.Errorf("entry %+v", e)
		}
		if e.Config["ledger"] == 1 {
			sawLedger = true
		}
		for _, ph := range []string{"report", "plan", "grant"} {
			if e.Phases[ph] <= 0 {
				t.Errorf("%s: phase %q missing (%v)", e.Name, ph, e.Phases)
			}
		}
	}
	if !sawLedger {
		t.Error("coordinator smoke never ran the ledgered variant")
	}

	hents, err := HierarchyTrajectory(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(hents) != len(hierSmokeSizes) {
		t.Fatalf("hierarchy smoke entries = %d, want %d", len(hents), len(hierSmokeSizes))
	}
	for i, e := range hents {
		if e.NsPerOp <= 0 || e.Config["leaves"] != hierSmokeSizes[i][0] || e.Config["rows"] != hierSmokeSizes[i][1] {
			t.Errorf("entry %+v", e)
		}
		for _, ph := range []string{"round_building", "round_row"} {
			if e.Phases[ph] <= 0 {
				t.Errorf("%s: phase %q missing (%v)", e.Name, ph, e.Phases)
			}
		}
	}

	lents, err := LoopTrajectory(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(lents) != len(loopSmokeCores) {
		t.Fatalf("loop smoke entries = %d, want %d", len(lents), len(loopSmokeCores))
	}
	sawMultiSocket := false
	for i, e := range lents {
		if e.NsPerOp <= 0 || e.Config["cores"] != loopSmokeCores[i] {
			t.Errorf("entry %+v", e)
		}
		if e.Config["cores"] > benchSocketCores {
			sawMultiSocket = true
		}
		// The steady-state loop invariant the CI gate enforces, checked at
		// the source too so a regression fails fast in `go test`.
		if e.AllocsPerOp != 0 {
			t.Errorf("%s: allocs/op = %v, want 0", e.Name, e.AllocsPerOp)
		}
		for _, ph := range []string{"sample", "decide", "actuate"} {
			if e.Phases[ph] <= 0 {
				t.Errorf("%s: phase %q missing (%v)", e.Name, ph, e.Phases)
			}
		}
	}
	if !sawMultiSocket {
		t.Error("loop smoke never reached a multi-socket machine")
	}

	sents, err := SvcTrajectory(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sents) != len(svcTickSmokeCores) {
		t.Fatalf("svc smoke entries = %d, want %d", len(sents), len(svcTickSmokeCores))
	}
	for i, e := range sents {
		if e.NsPerOp <= 0 || e.Config["cores"] != svcTickSmokeCores[i] || e.Config["services"] == 0 {
			t.Errorf("entry %+v", e)
		}
		// The service tick shares the control loop's cadence: zero-alloc.
		if e.AllocsPerOp != 0 {
			t.Errorf("%s: allocs/op = %v, want 0", e.Name, e.AllocsPerOp)
		}
	}

	slents, err := SLOLoopTrajectory(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(slents) != len(svcTickSmokeCores) {
		t.Fatalf("slo loop smoke entries = %d, want %d", len(slents), len(svcTickSmokeCores))
	}
	for i, e := range slents {
		if e.NsPerOp <= 0 || e.Config["cores"] != svcTickSmokeCores[i] {
			t.Errorf("entry %+v", e)
		}
		if e.AllocsPerOp != 0 {
			t.Errorf("%s: allocs/op = %v, want 0", e.Name, e.AllocsPerOp)
		}
		for _, ph := range []string{"sample", "decide", "actuate"} {
			if e.Phases[ph] <= 0 {
				t.Errorf("%s: phase %q missing (%v)", e.Name, ph, e.Phases)
			}
		}
	}

	gents, err := LedgerTrajectory(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(gents) != len(ledgerSmokeApps) {
		t.Fatalf("ledger smoke entries = %d, want %d", len(gents), len(ledgerSmokeApps))
	}
	for i, e := range gents {
		if e.NsPerOp <= 0 || e.Config["apps"] != ledgerSmokeApps[i] {
			t.Errorf("entry %+v", e)
		}
		// The ledger rides the 1 ms control loop: zero-alloc, and cheap
		// enough that attribution can never become the loop's long pole.
		if e.AllocsPerOp != 0 {
			t.Errorf("%s: allocs/op = %v, want 0", e.Name, e.AllocsPerOp)
		}
	}
}

// The zero-alloc gate is absolute: a loop_iteration entry with any
// allocations fails the comparison regardless of threshold, slack, or
// what the baseline recorded — including entries the baseline has never
// seen.
func TestCompareZeroAllocGate(t *testing.T) {
	base := baseline()
	base.Entries = append(base.Entries, Entry{
		Name: "loop_iteration/cores=10", Config: map[string]int{"cores": 10},
		NsPerOp: 4_000, AllocsPerOp: 0, BytesPerOp: 0,
	})
	cand := baseline()
	cand.Entries = append(cand.Entries, Entry{
		Name: "loop_iteration/cores=10", Config: map[string]int{"cores": 10},
		NsPerOp: 4_000, AllocsPerOp: 1, BytesPerOp: 64,
	})

	regs, err := Compare(base, cand, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op (zero-alloc gate)" || regs[0].Limit != 0 {
		t.Fatalf("gate did not trip: %+v", regs)
	}

	// Even a brand-new configuration absent from the baseline is gated.
	cand.Entries = append(cand.Entries, Entry{
		Name: "loop_iteration/cores=512", Config: map[string]int{"cores": 512},
		NsPerOp: 100_000, AllocsPerOp: 3,
	})
	regs, _ = Compare(base, cand, CompareOptions{})
	if len(regs) != 2 {
		t.Fatalf("unmatched entry escaped the gate: %+v", regs)
	}

	// Zero allocs passes; the slack that forgives small alloc flips
	// elsewhere must not apply here.
	cand = baseline()
	cand.Entries = append(cand.Entries, Entry{
		Name: "loop_iteration/cores=10", AllocsPerOp: 0, NsPerOp: 4_000,
	})
	if regs, _ := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("clean candidate flagged: %+v", regs)
	}
}

func TestShapeWarnings(t *testing.T) {
	base := baseline()
	cand := baseline()
	if w := ShapeWarnings(base, cand); len(w) != 0 {
		t.Fatalf("same shape warned: %v", w)
	}
	cand.NumCPU = base.NumCPU * 8
	cand.GOMAXPROCS = base.GOMAXPROCS * 8
	w := ShapeWarnings(base, cand)
	if len(w) != 2 {
		t.Fatalf("8x CPU/GOMAXPROCS gap: warnings = %v", w)
	}
	cand = baseline()
	cand.GOARCH = "arm64"
	if w := ShapeWarnings(base, cand); len(w) != 1 {
		t.Fatalf("arch mismatch: warnings = %v", w)
	}
	// Warnings never turn into failures: Compare stays clean.
	if regs, _ := Compare(base, cand, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("shape mismatch failed the gate: %+v", regs)
	}
}
