package bench

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultThreshold is the fractional ns/op regression the comparator
// tolerates (20%, on top of cross-machine calibration).
const DefaultThreshold = 0.20

// allocSlack is the absolute allocs/op slack on top of the threshold:
// tiny benchmarks flip a handful of allocations with runtime-internal
// noise, which must not read as a regression.
const allocSlack = 8

// zeroAllocPrefixes names the benchmark families held to the
// zero-allocation invariant: the steady-state control loop, the energy
// ledger that rides on it, and the latency-service tick that shares its
// cadence. Any entry under these prefixes with a nonzero allocs/op fails
// the gate outright — no threshold, no slack, no calibration — because a
// single allocation per iteration is a GC-pressure regression the
// threshold machinery exists to excuse everywhere else.
var zeroAllocPrefixes = []string{"loop_iteration/", "ledger_append/", "svc_tick/"}

// zeroAllocGated reports whether a benchmark entry is held to the hard
// zero-allocation gate.
func zeroAllocGated(name string) bool {
	for _, p := range zeroAllocPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// shapeWarnRatio is how far apart two machines' logical CPU counts may
// be before the comparator warns that calibration is stretching across
// very different hardware.
const shapeWarnRatio = 4

// Regression is one entry that got slower than the baseline allows.
type Regression struct {
	Name   string
	Metric string  // "ns/op" or "allocs/op"
	Old    float64 // baseline value
	New    float64 // current value
	Limit  float64 // the value the comparator would still have accepted
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.1f -> %.1f (limit %.1f)", r.Name, r.Metric, r.Old, r.New, r.Limit)
}

// CompareOptions tunes the comparator.
type CompareOptions struct {
	// Threshold is the tolerated fractional ns/op growth
	// (DefaultThreshold when zero or negative).
	Threshold float64
	// Absolute disables machine-speed calibration: ratios are compared
	// against the threshold directly. Use when baseline and candidate
	// ran on the same machine.
	Absolute bool
}

// Compare checks a candidate trajectory against a baseline and returns
// every regression past the threshold, plus entries the candidate
// dropped. To keep a slower-or-faster CI runner from producing phantom
// verdicts, the comparator first calibrates: the median ns/op ratio
// across all matched entries estimates the machine-speed difference, and
// each entry is then held to threshold-above-that-median. A uniform
// slowdown (different hardware) calibrates away; a single entry
// regressing (a real change) does not shift the median and is caught.
// Allocs/op are machine-independent and compared uncalibrated.
func Compare(baseline, candidate *File, opts CompareOptions) ([]Regression, error) {
	if baseline.Schema != candidate.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: baseline %q vs candidate %q", baseline.Schema, candidate.Schema)
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}

	byName := make(map[string]Entry, len(candidate.Entries))
	for _, e := range candidate.Entries {
		byName[e.Name] = e
	}

	type pair struct {
		old, new Entry
		ratio    float64
	}
	var pairs []pair
	var regs []Regression
	for _, old := range baseline.Entries {
		cur, ok := byName[old.Name]
		if !ok {
			// A smoke candidate drops the largest configurations by design;
			// a full candidate losing an entry is a silent coverage hole.
			if !candidate.Smoke {
				regs = append(regs, Regression{Name: old.Name, Metric: "missing", Old: old.NsPerOp})
			}
			continue
		}
		p := pair{old: old, new: cur, ratio: 1}
		if old.NsPerOp > 0 {
			p.ratio = cur.NsPerOp / old.NsPerOp
		}
		pairs = append(pairs, p)
	}

	scale := 1.0
	if !opts.Absolute && len(pairs) > 0 {
		ratios := make([]float64, len(pairs))
		for i, p := range pairs {
			ratios[i] = p.ratio
		}
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2]
		if scale < 1 {
			// The candidate machine is faster (or the code got uniformly
			// quicker); never loosen the bound below the baseline itself.
			scale = 1
		}
	}

	for _, p := range pairs {
		if limit := p.old.NsPerOp * scale * (1 + threshold); p.new.NsPerOp > limit {
			regs = append(regs, Regression{
				Name: p.old.Name, Metric: "ns/op",
				Old: p.old.NsPerOp, New: p.new.NsPerOp, Limit: limit,
			})
		}
		if zeroAllocGated(p.old.Name) {
			continue // held to the hard zero gate below instead
		}
		if limit := p.old.AllocsPerOp*(1+threshold) + allocSlack; p.new.AllocsPerOp > limit {
			regs = append(regs, Regression{
				Name: p.old.Name, Metric: "allocs/op",
				Old: p.old.AllocsPerOp, New: p.new.AllocsPerOp, Limit: limit,
			})
		}
	}

	// The zero-allocation gate runs over every candidate entry — matched
	// or not — so a newly added configuration cannot smuggle allocations
	// in just because the baseline predates it.
	for _, e := range candidate.Entries {
		if zeroAllocGated(e.Name) && e.AllocsPerOp > 0 {
			var old float64
			if o, ok := oldByName(baseline, e.Name); ok {
				old = o.AllocsPerOp
			}
			regs = append(regs, Regression{
				Name: e.Name, Metric: "allocs/op (zero-alloc gate)",
				Old: old, New: e.AllocsPerOp, Limit: 0,
			})
		}
	}
	return regs, nil
}

func oldByName(f *File, name string) (Entry, bool) {
	for _, e := range f.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ShapeWarnings reports advisory mismatches between the machines that
// produced the baseline and the candidate: a different architecture, or
// logical CPU counts more than shapeWarnRatio apart. These make the
// median-ratio calibration stretch further than it was designed to, so
// the verdicts deserve scepticism — but a shape difference alone is
// exactly what calibration exists to absorb, so it warns rather than
// fails.
func ShapeWarnings(baseline, candidate *File) []string {
	var warns []string
	if baseline.GOOS != candidate.GOOS || baseline.GOARCH != candidate.GOARCH {
		warns = append(warns, fmt.Sprintf(
			"baseline ran on %s/%s but candidate on %s/%s; ns/op calibration is unreliable across architectures",
			baseline.GOOS, baseline.GOARCH, candidate.GOOS, candidate.GOARCH))
	}
	bq, cq := baseline.NumCPU, candidate.NumCPU
	if bq > 0 && cq > 0 && (bq >= cq*shapeWarnRatio || cq >= bq*shapeWarnRatio) {
		warns = append(warns, fmt.Sprintf(
			"baseline machine has %d logical CPUs but candidate has %d (>%dx apart); contended phases scale differently",
			bq, cq, shapeWarnRatio))
	}
	bp, cp := baseline.GOMAXPROCS, candidate.GOMAXPROCS
	if bp > 0 && cp > 0 && (bp >= cp*shapeWarnRatio || cp >= bp*shapeWarnRatio) {
		warns = append(warns, fmt.Sprintf(
			"baseline ran with GOMAXPROCS=%d but candidate with GOMAXPROCS=%d (>%dx apart); scheduler width differs wildly",
			bp, cp, shapeWarnRatio))
	}
	return warns
}
