// Package bench produces and compares the repo's machine-readable
// performance trajectory: versioned BENCH_*.json files recording the
// coordinator-tick and control-loop microbenchmarks across node and core
// counts, with a span-phase breakdown per configuration. cmd/benchjson
// regenerates the files; the comparator gates CI on regressions against
// the committed baselines.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// Schema identifies the file layout. Bump on any incompatible change;
// the comparator refuses to compare across schemas.
const Schema = "padbench/v1"

// Entry is one benchmark configuration's result.
type Entry struct {
	// Name uniquely identifies the benchmark+configuration, e.g.
	// "coordinator_tick/nodes=16". The comparator joins files on it.
	Name string `json:"name"`
	// Config are the knobs this entry ran under (nodes, cores, ...).
	Config map[string]int `json:"config,omitempty"`
	// NsPerOp is the benchmark's wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the allocator footprint per
	// operation. Unlike wall time they are near machine-independent, so
	// the comparator holds them to the threshold without calibration.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Phases breaks one operation into mean span-phase nanoseconds —
	// report/plan/grant for the coordinator tick, sample/decide/actuate
	// for the control loop — matching the round-trace span names.
	Phases map[string]float64 `json:"phases_ns,omitempty"`
}

// File is one benchmark trajectory file (BENCH_coordinator.json,
// BENCH_loop.json).
type File struct {
	Schema    string `json:"schema"`
	Name      string `json:"name"`
	GitRev    string `json:"git_rev"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler width the run executed under; with
	// NumCPU it describes the machine shape, which the comparator uses
	// to warn when baseline and candidate ran on wildly different
	// hardware (a calibration hazard, not a failure).
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"`
	Smoke      bool    `json:"smoke,omitempty"`
	Entries    []Entry `json:"entries"`
}

// NewFile stamps an empty trajectory file with the environment.
func NewFile(name string, smoke bool) *File {
	return &File{
		Schema:     Schema,
		Name:       name,
		GitRev:     GitRev(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Smoke:      smoke,
	}
}

// Write emits the file as indented JSON with entries sorted by name, so
// regeneration produces stable diffs.
func (f *File) Write(w io.Writer) error {
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Name < f.Entries[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the trajectory to path.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Read parses a trajectory file and checks its schema.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("bench: schema %q, this tool speaks %q", f.Schema, Schema)
	}
	return &f, nil
}

// ReadFile parses the trajectory at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := Read(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// GitRev identifies the source revision: CI's GITHUB_SHA, else git
// itself, else the binary's embedded VCS stamp, else "unknown".
func GitRev() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "unknown"
}
