package ledger

import "repro/internal/flight"

// Rebuilt is a ledger account book reconstructed from a flight dump's
// KindEnergy events. Because every event carries its account's cumulative
// microjoules in Aux, the reconstruction is exact — bit-identical to the
// live ledger's totals at the instant of the dump — no matter how much of
// the ring was overwritten, as long as each account's latest event is
// retained (the ledger emits every account every interval, so the newest
// interval alone suffices).
type Rebuilt struct {
	// AppUJ holds cumulative microjoules by app index (flight.Meta.Apps
	// order in a dump).
	AppUJ []uint64

	TotalUJ        uint64
	UnattributedUJ uint64
	ExcludedUJ     uint64
	LimitUJ        uint64
	OvershootUJ    uint64

	// AnomalyCounts tallies retained KindAnomaly events by kind name —
	// the ring-bounded feed, not a lifetime total.
	AnomalyCounts map[string]uint64

	// Events is how many ledger events contributed.
	Events int
}

// Rebuild folds a dump's events into account totals, taking the
// latest-sequenced KindEnergy event per account. Events must be sorted by
// sequence number, which flight.Dump guarantees.
func Rebuild(events []flight.Event) Rebuilt {
	r := Rebuilt{}
	for _, e := range events {
		if e.Source != flight.SourceLedger {
			continue
		}
		switch e.Kind {
		case flight.KindEnergy:
			r.Events++
			switch e.Arg {
			case flight.EnergyArgTotal:
				r.TotalUJ = e.Aux
			case flight.EnergyArgUnattributed:
				r.UnattributedUJ = e.Aux
			case flight.EnergyArgExcluded:
				r.ExcludedUJ = e.Aux
			case flight.EnergyArgLimit:
				r.LimitUJ = e.Aux
			case flight.EnergyArgOvershoot:
				r.OvershootUJ = e.Aux
			default:
				if e.Arg >= 1<<20 {
					continue // corrupt index, not a plausible app count
				}
				i := int(e.Arg)
				for len(r.AppUJ) <= i {
					r.AppUJ = append(r.AppUJ, 0)
				}
				r.AppUJ[i] = e.Aux
			}
		case flight.KindAnomaly:
			if r.AnomalyCounts == nil {
				r.AnomalyCounts = make(map[string]uint64)
			}
			r.AnomalyCounts[flight.AnomalyName(e.Arg)]++
		}
	}
	return r
}

// AttributedUJ sums the rebuilt per-app accounts.
func (r Rebuilt) AttributedUJ() uint64 {
	var sum uint64
	for _, v := range r.AppUJ {
		sum += v
	}
	return sum
}
