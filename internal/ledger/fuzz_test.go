package ledger

import (
	"net/url"
	"testing"
	"time"
)

// FuzzParseEnergyQuery hammers the /debug/energy parameter parser: it must
// never panic, and anything it accepts must be internally consistent (a
// closed range is ordered, the resolution is one of the four names, limit
// and step are non-negative) — the properties Range relies on without
// re-checking.
func FuzzParseEnergyQuery(f *testing.F) {
	f.Add("from=10&to=1m&res=1s&step=5s&limit=12")
	f.Add("from=0&to=0")
	f.Add("res=auto")
	f.Add("from=12.5&res=raw")
	f.Add("to=-1")
	f.Add("limit=999999999999999999999")
	f.Add("from=NaN&step=Inf")
	f.Add("from=1h30m&to=1e300")
	f.Add("res=%00&from=+5")
	f.Fuzz(func(t *testing.T, raw string) {
		v, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := ParseQuery(v)
		if err != nil {
			return
		}
		if q.From < 0 || q.To < 0 || q.Step < 0 || q.Limit < 0 {
			t.Fatalf("accepted negative field: %+v from %q", q, raw)
		}
		if q.To > 0 && q.From > q.To {
			t.Fatalf("accepted inverted range: %+v from %q", q, raw)
		}
		switch q.Res {
		case ResRaw, ResSecond, ResMinute, ResAuto:
		default:
			t.Fatalf("accepted resolution %q from %q", q.Res, raw)
		}
	})
}

// FuzzDownsample drives the merge with adversarial point sets decoded from
// raw bytes and holds it to its contract: no panic, every microjoule
// column conserved exactly, output sorted by start, aligned to the step,
// with no duplicate windows.
func FuzzDownsample(f *testing.F) {
	f.Add([]byte{}, uint16(1000))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint16(0))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0}, uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, stepMS uint16) {
		// Decode 6 bytes per point: 2 start, 1 dur, 1 total, 1 app0, 1 app1.
		var pts []Point
		for i := 0; i+6 <= len(data) && len(pts) < 256; i += 6 {
			start := int64(data[i])<<8 | int64(data[i+1])
			p := Point{
				StartNS:   start * int64(time.Millisecond),
				DurNS:     int64(data[i+2]) * int64(time.Millisecond),
				Intervals: 1,
				TotalUJ:   uint64(data[i+3]),
				AppUJ:     []uint64{uint64(data[i+4])},
			}
			if data[i+5]%2 == 0 { // mixed app-column widths
				p.AppUJ = append(p.AppUJ, uint64(data[i+5]))
			}
			p.UnattributedUJ = uint64(data[i+5]) / 2
			p.ExcludedUJ = uint64(data[i]) % 7
			p.LimitUJ = uint64(data[i+1])
			p.OvershootUJ = uint64(data[i+2]) % 3
			pts = append(pts, p)
		}
		step := time.Duration(stepMS) * time.Millisecond

		wantT, wantU, wantE, wantL, wantO, wantA := sumPoints(pts)
		out := Downsample(pts, step)
		gotT, gotU, gotE, gotL, gotO, gotA := sumPoints(out)
		if gotT != wantT || gotU != wantU || gotE != wantE || gotL != wantL || gotO != wantO {
			t.Fatalf("package columns not conserved: in %d/%d/%d/%d/%d out %d/%d/%d/%d/%d",
				wantT, wantU, wantE, wantL, wantO, gotT, gotU, gotE, gotL, gotO)
		}
		for i := range wantA {
			var got uint64
			if i < len(gotA) {
				got = gotA[i]
			}
			if got != wantA[i] {
				t.Fatalf("app column %d not conserved: in %d out %d", i, wantA[i], got)
			}
		}
		stepNS := step.Nanoseconds()
		for i, p := range out {
			if i > 0 && p.StartNS < out[i-1].StartNS {
				t.Fatalf("output unsorted at %d: %d after %d", i, p.StartNS, out[i-1].StartNS)
			}
			if stepNS > 0 {
				if p.StartNS%stepNS != 0 {
					t.Fatalf("window %d unaligned: %d %% %d", i, p.StartNS, stepNS)
				}
				if i > 0 && p.StartNS == out[i-1].StartNS {
					t.Fatalf("duplicate window at %d: start %d", i, p.StartNS)
				}
			}
		}
	})
}
