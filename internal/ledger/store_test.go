package ledger

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/units"
)

// feed pushes one synthetic interval into a tier: total µJ split as
// one-third per app column (2 apps) with the rest unattributed, so every
// account column is nonzero and conservation is checkable end to end.
func feed(t *tier, at, dur time.Duration, total uint64) {
	apps := []appAccount{{lastUJ: total / 3}, {lastUJ: total / 3}}
	unattrib := total - 2*(total/3)
	t.accumulate(at, dur, apps, total, unattrib, 0, total+5, 7)
}

func sumPoints(ps []Point) (total, unattrib, excluded, limit, overshoot uint64, apps []uint64) {
	for _, p := range ps {
		total += p.TotalUJ
		unattrib += p.UnattributedUJ
		excluded += p.ExcludedUJ
		limit += p.LimitUJ
		overshoot += p.OvershootUJ
		for len(apps) < len(p.AppUJ) {
			apps = append(apps, 0)
		}
		for i, v := range p.AppUJ {
			apps[i] += v
		}
	}
	return
}

// The raw tier seals one bin per interval, in arrival order.
func TestRawTierOneBinPerInterval(t *testing.T) {
	tr := makeTier(0, 16, 2)
	for i := 1; i <= 5; i++ {
		feed(&tr, time.Duration(i)*time.Millisecond, time.Millisecond, 300)
	}
	ps := tr.snapshotRange(0, 0)
	if len(ps) != 5 {
		t.Fatalf("raw bins = %d, want 5", len(ps))
	}
	for i, p := range ps {
		if p.StartNS != int64(i)*1e6 || p.DurNS != 1e6 || p.Intervals != 1 {
			t.Errorf("bin %d: %+v", i, p)
		}
		if p.TotalUJ != 300 || p.AppUJ[0] != 100 || p.UnattributedUJ != 100 {
			t.Errorf("bin %d accounts: %+v", i, p)
		}
	}
}

// A coarse tier accumulates intervals into one aligned open bin and seals
// it only when an interval starts past the bin's width.
func TestCoarseTierAccumulatesAndSeals(t *testing.T) {
	tr := makeTier(time.Second, 16, 2)
	// 4 intervals inside [0,1s), then one starting at 1.0s.
	for i := 1; i <= 4; i++ {
		feed(&tr, time.Duration(i)*250*time.Millisecond, 250*time.Millisecond, 1000)
	}
	ps := tr.snapshotRange(0, 0)
	if len(ps) != 1 || ps[0].Intervals != 4 || ps[0].TotalUJ != 4000 {
		t.Fatalf("open bin: %+v", ps)
	}
	if ps[0].StartNS != 0 || ps[0].DurNS != time.Second.Nanoseconds() {
		t.Fatalf("open bin alignment: %+v", ps[0])
	}
	feed(&tr, 1250*time.Millisecond, 250*time.Millisecond, 1000)
	ps = tr.snapshotRange(0, 0)
	if len(ps) != 2 {
		t.Fatalf("bins after boundary = %d, want 2", len(ps))
	}
	if ps[0].Intervals != 4 || ps[1].Intervals != 1 || ps[1].StartNS != time.Second.Nanoseconds() {
		t.Fatalf("seal: %+v", ps)
	}
}

// A start that jumps several widths ahead opens the new aligned bin
// directly: gaps produce no empty bins.
func TestTierGapProducesNoEmptyBins(t *testing.T) {
	tr := makeTier(time.Second, 16, 2)
	feed(&tr, 500*time.Millisecond, 500*time.Millisecond, 100)
	feed(&tr, 10500*time.Millisecond, 500*time.Millisecond, 100)
	ps := tr.snapshotRange(0, 0)
	if len(ps) != 2 {
		t.Fatalf("gap filled with empty bins: %d points", len(ps))
	}
	if ps[1].StartNS != (10 * time.Second).Nanoseconds() {
		t.Fatalf("gap bin start: %+v", ps[1])
	}
}

// An interval whose start lands behind the open bin (clock skew after a
// coarse sample) folds into the open bin instead of rewinding the ring.
func TestTierSkewFoldsIntoOpenBin(t *testing.T) {
	tr := makeTier(time.Second, 16, 2)
	feed(&tr, 1500*time.Millisecond, 500*time.Millisecond, 100) // opens [1s,2s)
	feed(&tr, 900*time.Millisecond, 500*time.Millisecond, 100)  // starts at 0.4s: skew
	ps := tr.snapshotRange(0, 0)
	if len(ps) != 1 || ps[0].Intervals != 2 || ps[0].TotalUJ != 200 {
		t.Fatalf("skew: %+v", ps)
	}
}

// The ring drops oldest-first once full, and oldest() tracks what
// snapshotRange will actually return.
func TestTierRingWrap(t *testing.T) {
	tr := makeTier(0, 4, 2)
	if tr.oldest() != -1 {
		t.Fatal("empty tier has an oldest bin")
	}
	for i := 1; i <= 10; i++ {
		feed(&tr, time.Duration(i)*time.Millisecond, time.Millisecond, 90)
	}
	ps := tr.snapshotRange(0, 0)
	if len(ps) != 4 {
		t.Fatalf("wrapped ring returned %d bins, want 4", len(ps))
	}
	// Newest 4 of 10 intervals: starts 6,7,8,9 ms.
	for i, p := range ps {
		if want := int64(6+i) * 1e6; p.StartNS != want {
			t.Errorf("bin %d start %d, want %d", i, p.StartNS, want)
		}
	}
	if got := tr.oldest(); got != 6*time.Millisecond {
		t.Errorf("oldest = %v, want 6ms", got)
	}

	// Same, with an open bin at the write position (coarse tier).
	tc := makeTier(time.Second, 4, 2)
	for i := 0; i < 6; i++ {
		feed(&tc, time.Duration(i)*time.Second+500*time.Millisecond, 500*time.Millisecond, 90)
	}
	ps = tc.snapshotRange(0, 0)
	if len(ps) != 4 {
		t.Fatalf("coarse wrap returned %d bins, want 4", len(ps))
	}
	if ps[0].StartNS != (2 * time.Second).Nanoseconds() {
		t.Errorf("coarse oldest start: %+v", ps[0])
	}
	if got := tc.oldest(); got != 2*time.Second {
		t.Errorf("coarse oldest = %v, want 2s", got)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].StartNS <= ps[i-1].StartNS {
			t.Fatalf("wrap snapshot out of order: %+v", ps)
		}
	}
}

func TestSnapshotRangeBounds(t *testing.T) {
	tr := makeTier(0, 16, 2)
	for i := 1; i <= 8; i++ {
		feed(&tr, time.Duration(i)*time.Second, time.Second, 50)
	}
	// Bins start at 0..7s. [2s, 5s] keeps starts 2,3,4,5.
	ps := tr.snapshotRange(2*time.Second, 5*time.Second)
	if len(ps) != 4 {
		t.Fatalf("bounded range = %d bins, want 4", len(ps))
	}
	if ps[0].StartNS != (2*time.Second).Nanoseconds() || ps[3].StartNS != (5*time.Second).Nanoseconds() {
		t.Fatalf("bounds: %+v", ps)
	}
	// to <= 0 is open-ended.
	if got := len(tr.snapshotRange(6*time.Second, 0)); got != 2 {
		t.Fatalf("open-ended tail = %d bins, want 2", got)
	}
}

// Auto resolution picks the finest tier whose retention still covers the
// range start, falling back coarser as the raw ring wraps away.
func TestPickAutoResolution(t *testing.T) {
	var s store
	s.init(1, 8, 16, 16) // tiny raw ring: wraps after 8 intervals
	apps := []appAccount{{lastUJ: 10}}
	for i := 1; i <= 100; i++ {
		s.append(time.Duration(i)*100*time.Millisecond, 100*time.Millisecond, apps, 10, 0, 0, 0, 0)
	}
	// Raw retains starts [9.2s, 9.9s]; seconds tier covers from 0.
	if _, res := s.pick(ResAuto, 9500*time.Millisecond); res != ResRaw {
		t.Errorf("recent range picked %s, want raw", res)
	}
	if _, res := s.pick(ResAuto, 0); res != ResSecond {
		t.Errorf("full-history range picked %s, want 1s", res)
	}
	// Explicit resolutions are honoured verbatim.
	if _, res := s.pick(ResMinute, 0); res != ResMinute {
		t.Errorf("explicit 1m picked %s", res)
	}
}

// Downsampling must conserve every microjoule column and return sorted,
// step-aligned, non-overlapping windows.
func TestDownsampleConserves(t *testing.T) {
	var pts []Point
	// Unsorted input with irregular starts and mixed app-column widths.
	for i := 19; i >= 0; i-- {
		pts = append(pts, Point{
			StartNS: int64(i)*737_000_000 + int64(i%3),
			DurNS:   737_000_000, Intervals: 1,
			TotalUJ: uint64(1000 + i), UnattributedUJ: uint64(i), ExcludedUJ: uint64(i * 2),
			LimitUJ: uint64(i * 3), OvershootUJ: uint64(i % 5),
			AppUJ: []uint64{uint64(i * 7), uint64(i * 11)},
		})
	}
	wantT, wantU, wantE, wantL, wantO, wantA := sumPoints(pts)
	out := Downsample(pts, 3*time.Second)
	gotT, gotU, gotE, gotL, gotO, gotA := sumPoints(out)
	if gotT != wantT || gotU != wantU || gotE != wantE || gotL != wantL || gotO != wantO {
		t.Fatalf("package columns not conserved: %d/%d/%d/%d/%d vs %d/%d/%d/%d/%d",
			gotT, gotU, gotE, gotL, gotO, wantT, wantU, wantE, wantL, wantO)
	}
	for i := range wantA {
		if gotA[i] != wantA[i] {
			t.Errorf("app %d column not conserved: %d vs %d", i, gotA[i], wantA[i])
		}
	}
	step := (3 * time.Second).Nanoseconds()
	for i, p := range out {
		if p.StartNS%step != 0 {
			t.Errorf("window %d not aligned: %d", i, p.StartNS)
		}
		if i > 0 && p.StartNS <= out[i-1].StartNS {
			t.Errorf("windows out of order at %d", i)
		}
	}
	if len(out) >= len(pts) {
		t.Errorf("nothing merged: %d windows from %d points", len(out), len(pts))
	}
	// Non-positive step sorts without merging.
	if got := Downsample(pts, 0); len(got) != len(pts) {
		t.Errorf("step=0 merged points: %d from %d", len(got), len(pts))
	}
}

// End-to-end through the ledger: Range honours step and limit, and the
// downsampled series still sums to the cumulative totals.
func TestRangeStepAndLimit(t *testing.T) {
	chip := twoSocketChip()
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 60},
		{Name: "cam4", Core: chip.CoresPerSocket(), Shares: 40},
	}
	l := newTestLedger(t, chip, apps, Config{RawBins: 64})
	for i := 1; i <= 50; i++ {
		l.Append(okInput(chip, time.Duration(i)*100*time.Millisecond, 100*time.Millisecond, 100,
			[]units.Watts{30, 20}, nil))
	}
	s := l.Summarize()

	r, err := l.Range(Query{Res: ResRaw, Step: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.Resolution != ResRaw || len(r.Apps) != 2 {
		t.Fatalf("result header: %+v", r)
	}
	gotT, gotU, gotE, _, _, gotA := sumPoints(r.Points)
	if gotT != s.TotalUJ || gotU != s.UnattributedUJ || gotE != s.ExcludedUJ {
		t.Fatalf("downsampled series does not sum to cumulative totals: %d vs %d", gotT, s.TotalUJ)
	}
	for i := range s.Apps {
		if gotA[i] != s.Apps[i].TotalUJ {
			t.Errorf("app %d series sum %d, cumulative %d", i, gotA[i], s.Apps[i].TotalUJ)
		}
	}

	r, err = l.Range(Query{Res: ResRaw, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("limit ignored: %d points", len(r.Points))
	}
	// Newest kept: the last raw bin starts at 4.9 s.
	if want := (4900 * time.Millisecond).Nanoseconds(); r.Points[4].StartNS != want {
		t.Fatalf("limit kept oldest points: %+v", r.Points)
	}
}
