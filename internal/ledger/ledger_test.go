package ledger

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// twoSocketChip is a 2×10-core package: apps can live on separate RAPL
// domains, so exclusion and attribution are testable per socket.
func twoSocketChip() platform.Chip {
	return platform.MultiSocket(platform.Skylake(), 2)
}

func newTestLedger(t *testing.T, chip platform.Chip, apps []core.AppSpec, cfg Config) *Ledger {
	t.Helper()
	cfg.Chip = chip
	cfg.Apps = apps
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// okInput builds one interval's telemetry: every core trustworthy at the
// given frequency, every socket at the given watts.
func okInput(chip platform.Chip, at, dt time.Duration, limit units.Watts, sockW []units.Watts, freq []units.Hertz) Input {
	in := Input{
		At: at, Dt: dt, Limit: limit,
		PkgStatus:    telemetry.StatusOK,
		SocketPower:  sockW,
		SocketStatus: make([]telemetry.CoreStatus, len(sockW)),
		Cores:        make([]telemetry.CoreSample, chip.NumCores),
	}
	for s := range sockW {
		in.PackagePower += sockW[s]
		in.SocketStatus[s] = telemetry.StatusOK
	}
	for c := range in.Cores {
		f := units.Hertz(2e9)
		if c < len(freq) {
			f = freq[c]
		}
		in.Cores[c] = telemetry.CoreSample{CPU: c, ActiveFreq: f, Status: telemetry.StatusOK}
	}
	return in
}

func checkConservation(t *testing.T, l *Ledger) Summary {
	t.Helper()
	s := l.Summarize()
	if got := l.AttributedUJ() + s.UnattributedUJ + s.ExcludedUJ; got != s.TotalUJ {
		t.Fatalf("conservation violated: attributed %d + unattributed %d + excluded %d = %d, want total %d",
			l.AttributedUJ(), s.UnattributedUJ, s.ExcludedUJ, got, s.TotalUJ)
	}
	return s
}

func TestMicrojoules(t *testing.T) {
	cases := []struct {
		w    units.Watts
		dt   time.Duration
		want uint64
	}{
		{0, time.Second, 0},
		{-5, time.Second, 0},
		{50, 0, 0},
		{50, time.Second, 50_000_000},
		{50, time.Millisecond, 50_000},
		{1, time.Microsecond, 1},   // 1 W × 1 µs = 1 µJ
		{0.4, time.Microsecond, 0}, // 0.4 µJ rounds down
		{0.6, time.Microsecond, 1}, // 0.6 µJ rounds up
		{33.333, 3 * time.Second, 99_999_000},
	}
	for _, c := range cases {
		if got := microjoules(c.w, c.dt); got != c.want {
			t.Errorf("microjoules(%v, %v) = %d, want %d", c.w, c.dt, got, c.want)
		}
	}
}

// Attribution must hand out every microjoule of a trusted socket: the
// per-app accounts sum to the quantised socket energy exactly, whatever
// the weights.
func TestAttributionExact(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 90},
		{Name: "cam4", Core: 1, Shares: 10},
		{Name: "leela", Core: 2, Shares: 7},
	}
	l := newTestLedger(t, chip, apps, Config{})

	// Awkward wattage and interval so the float weights can't be exact.
	at := time.Duration(0)
	for i := 0; i < 1000; i++ {
		at += 997 * time.Microsecond
		in := okInput(chip, at, 997*time.Microsecond, 50,
			[]units.Watts{33.777}, []units.Hertz{2.1e9, 1.9e9, 2.7e9})
		l.Append(in)
	}
	s := checkConservation(t, l)
	if s.ExcludedUJ != 0 {
		t.Errorf("excluded %d uJ with fully trusted telemetry", s.ExcludedUJ)
	}
	if s.UnattributedUJ != 0 {
		t.Errorf("unattributed %d uJ with every core active", s.UnattributedUJ)
	}
	if s.Intervals != 1000 {
		t.Errorf("intervals = %d, want 1000", s.Intervals)
	}
	// Higher shares at comparable frequency must earn more energy.
	if !(s.Apps[0].TotalUJ > s.Apps[1].TotalUJ && s.Apps[0].TotalUJ > s.Apps[2].TotalUJ) {
		t.Errorf("share weighting inverted: %+v", s.Apps)
	}
}

// Largest-remainder ties go to the lowest app index, deterministically.
func TestLargestRemainderDeterminism(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{
		{Name: "a", Core: 0, Shares: 50},
		{Name: "b", Core: 1, Shares: 50},
	}
	mk := func() *Ledger { return newTestLedger(t, chip, apps, Config{}) }

	// 3 µJ split 50/50: 1.5 each, remainders tie, app0 takes the spare.
	in := okInput(chip, time.Microsecond, time.Microsecond, 50,
		[]units.Watts{3}, []units.Hertz{2e9, 2e9})
	l1, l2 := mk(), mk()
	l1.Append(in)
	l2.Append(in)
	s1, s2 := l1.Summarize(), l2.Summarize()
	if s1.Apps[0].TotalUJ != 2 || s1.Apps[1].TotalUJ != 1 {
		t.Errorf("tie-break not lowest-index: %d/%d, want 2/1", s1.Apps[0].TotalUJ, s1.Apps[1].TotalUJ)
	}
	for i := range s1.Apps {
		if s1.Apps[i].TotalUJ != s2.Apps[i].TotalUJ {
			t.Errorf("attribution not deterministic: app %d %d vs %d", i, s1.Apps[i].TotalUJ, s2.Apps[i].TotalUJ)
		}
	}
	checkConservation(t, l1)
}

// A fully idle socket's energy is unattributed — static power is real but
// belongs to no app, and must not be invented onto one.
func TestIdleEnergyUnattributed(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 50}}
	l := newTestLedger(t, chip, apps, Config{})
	in := okInput(chip, time.Second, time.Second, 50, []units.Watts{12}, []units.Hertz{0})
	in.Cores[0].Status = telemetry.StatusIdle
	l.Append(in)
	s := checkConservation(t, l)
	if s.UnattributedUJ != 12_000_000 {
		t.Errorf("unattributed = %d uJ, want 12000000", s.UnattributedUJ)
	}
	if got := l.AttributedUJ(); got != 0 {
		t.Errorf("attributed %d uJ to an idle app", got)
	}
}

// An untrustworthy socket is excluded whole: its energy lands in the
// excluded account and no app on it gets anything, while the other
// socket's attribution is unaffected.
func TestUntrustedSocketExcludedNotSmeared(t *testing.T) {
	chip := twoSocketChip()
	cps := chip.CoresPerSocket()
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 50},
		{Name: "cam4", Core: cps, Shares: 50}, // first core of socket 1
	}
	l := newTestLedger(t, chip, apps, Config{})
	in := okInput(chip, time.Second, time.Second, 100, []units.Watts{40, 60}, nil)
	in.SocketStatus[1] = telemetry.StatusStale
	l.Append(in)
	s := checkConservation(t, l)
	if s.ExcludedUJ != 60_000_000 {
		t.Errorf("excluded = %d uJ, want socket 1's 60000000", s.ExcludedUJ)
	}
	if s.Apps[1].TotalUJ != 0 {
		t.Errorf("app on untrusted socket attributed %d uJ, want 0", s.Apps[1].TotalUJ)
	}
	if s.Apps[0].TotalUJ != 40_000_000 {
		t.Errorf("trusted socket attribution disturbed: %d uJ, want 40000000", s.Apps[0].TotalUJ)
	}
}

// A lying app-core counter poisons its whole socket: the domain's energy
// cannot be split honestly when one of the weights is fabricated.
func TestUntrustedCoreExcludesSocket(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 50},
		{Name: "cam4", Core: 1, Shares: 50},
	}
	l := newTestLedger(t, chip, apps, Config{})
	in := okInput(chip, time.Second, time.Second, 100, []units.Watts{40}, nil)
	in.Cores[1].Status = telemetry.StatusDark
	l.Append(in)
	s := checkConservation(t, l)
	if s.ExcludedUJ != 40_000_000 {
		t.Errorf("excluded = %d uJ, want 40000000", s.ExcludedUJ)
	}
	if got := l.AttributedUJ(); got != 0 {
		t.Errorf("attributed %d uJ from a poisoned socket", got)
	}
}

func TestOvershootAccounting(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 50}}
	l := newTestLedger(t, chip, apps, Config{})
	in := okInput(chip, time.Second, time.Second, 50, []units.Watts{58}, nil)
	l.Append(in)
	s := l.Summarize()
	if s.OvershootUJ != 8_000_000 {
		t.Errorf("overshoot = %d uJ, want 8000000", s.OvershootUJ)
	}
	if s.LimitUJ != 50_000_000 {
		t.Errorf("limit budget = %d uJ, want 50000000", s.LimitUJ)
	}
	if s.OverIntervals != 1 {
		t.Errorf("over-limit intervals = %d, want 1", s.OverIntervals)
	}
}

func TestCostAndCarbon(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 50}}
	l := newTestLedger(t, chip, apps, Config{
		Rates: RateSchedule{{Start: 0, USDPerKWh: 0.36, GCO2PerKWh: 360}},
	})
	// 100 W × 36 s = 3600 J = 0.001 kWh.
	for i := 1; i <= 36; i++ {
		l.Append(okInput(chip, time.Duration(i)*time.Second, time.Second, 200, []units.Watts{100}, nil))
	}
	s := l.Summarize()
	if s.TotalJoules != 3600 {
		t.Fatalf("total = %v J, want 3600", s.TotalJoules)
	}
	if diff := s.CostUSD - 0.00036; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("cost = %v, want 0.00036", s.CostUSD)
	}
	if diff := s.CarbonGrams - 0.36; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("carbon = %v g, want 0.36", s.CarbonGrams)
	}
}

// Reconfiguration carries cumulative app totals by name and keeps the
// package accounts running.
func TestReconfigureCarriesTotalsByName(t *testing.T) {
	chip := platform.Skylake()
	l := newTestLedger(t, chip, []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 50},
		{Name: "cam4", Core: 1, Shares: 50},
	}, Config{})
	l.Append(okInput(chip, time.Second, time.Second, 100, []units.Watts{40}, nil))
	before := l.Summarize()

	// gcc moves to core 2 and keeps its joules; cam4 is replaced by leela,
	// whose account starts at zero.
	l.Reconfigure([]core.AppSpec{
		{Name: "gcc", Core: 2, Shares: 30},
		{Name: "leela", Core: 3, Shares: 70},
	})
	after := l.Summarize()
	if after.TotalUJ != before.TotalUJ {
		t.Errorf("package total changed across reconfigure: %d -> %d", before.TotalUJ, after.TotalUJ)
	}
	if after.Apps[0].Name != "gcc" || after.Apps[0].TotalUJ != before.Apps[0].TotalUJ {
		t.Errorf("gcc's total not carried: %+v", after.Apps[0])
	}
	if after.Apps[1].Name != "leela" || after.Apps[1].TotalUJ != 0 {
		t.Errorf("new app not zeroed: %+v", after.Apps[1])
	}

	// The ledger keeps accounting under the new spec set.
	l.Append(okInput(chip, 2*time.Second, time.Second, 100, []units.Watts{40}, nil))
	if got := l.Summarize().TotalUJ; got != before.TotalUJ+40_000_000 {
		t.Errorf("post-reconfigure total = %d, want %d", got, before.TotalUJ+40_000_000)
	}
}

// The hot path must not allocate: the loop_iteration zero-alloc CI gate
// rides on it.
func TestAppendAllocs(t *testing.T) {
	chip := twoSocketChip()
	cps := chip.CoresPerSocket()
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 90},
		{Name: "cam4", Core: 1, Shares: 10},
		{Name: "leela", Core: cps, Shares: 40},
	}
	l := newTestLedger(t, chip, apps, Config{
		Metrics: metrics.NewRegistry(),
		Flight:  flight.New(0),
	})
	var at time.Duration
	in := okInput(chip, 0, time.Millisecond, 50, []units.Watts{30, 25}, nil)
	allocs := testing.AllocsPerRun(200, func() {
		at += time.Millisecond
		in.At = at
		l.Append(in)
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %v times per interval, want 0", allocs)
	}
}

// Append must stay a negligible fraction of the 1 ms control interval.
// The acceptance bar is 5% (50 µs); a healthy run is well under 10 µs, so
// the margin absorbs CI-runner noise without hiding a real regression.
func TestAppendOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	chip := twoSocketChip()
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 90},
		{Name: "cam4", Core: 1, Shares: 10},
	}
	l := newTestLedger(t, chip, apps, Config{
		Metrics: metrics.NewRegistry(),
		Flight:  flight.New(0),
	})
	in := okInput(chip, 0, time.Millisecond, 50, []units.Watts{30, 25}, nil)
	const iters = 5000
	start := time.Now()
	for i := 1; i <= iters; i++ {
		in.At = time.Duration(i) * time.Millisecond
		l.Append(in)
	}
	mean := time.Since(start) / iters
	if mean > 50*time.Microsecond {
		t.Errorf("Append mean %v exceeds 5%% of a 1 ms control interval", mean)
	}
}

func TestDetectorSustainedOvershoot(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 50}}
	l := newTestLedger(t, chip, apps, Config{
		Detect: DetectorConfig{OvershootN: 5},
	})
	over := func(i int) Input {
		return okInput(chip, time.Duration(i)*time.Second, time.Second, 50, []units.Watts{60}, nil)
	}
	under := func(i int) Input {
		return okInput(chip, time.Duration(i)*time.Second, time.Second, 50, []units.Watts{45}, nil)
	}
	at := 0
	for i := 0; i < 4; i++ {
		at++
		l.Append(over(at))
	}
	if n := len(l.Anomalies()); n != 0 {
		t.Fatalf("fired after 4 intervals, want >=5: %d anomalies", n)
	}
	at++
	l.Append(over(at))
	if got := l.Summarize().Anomalies["overshoot"]; got != 1 {
		t.Fatalf("overshoot count = %d, want 1", got)
	}
	// Sustained excursion fires once, not once per interval.
	for i := 0; i < 20; i++ {
		at++
		l.Append(over(at))
	}
	if got := l.Summarize().Anomalies["overshoot"]; got != 1 {
		t.Fatalf("sustained excursion re-fired: count %d", got)
	}
	// Clearing re-arms; a second excursion fires again.
	at++
	l.Append(under(at))
	for i := 0; i < 5; i++ {
		at++
		l.Append(over(at))
	}
	if got := l.Summarize().Anomalies["overshoot"]; got != 2 {
		t.Fatalf("second excursion count = %d, want 2", got)
	}
	a := l.Anomalies()
	if len(a) != 2 || a[0].Kind != "overshoot" {
		t.Fatalf("feed = %+v", a)
	}
}

func TestDetectorCapOscillation(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 50}}
	l := newTestLedger(t, chip, apps, Config{
		Detect: DetectorConfig{OscillationWindow: 20, OscillationFlips: 4},
	})
	limits := []units.Watts{50, 60, 50, 60, 50, 60, 50, 60}
	for i, lim := range limits {
		l.Append(okInput(chip, time.Duration(i+1)*time.Second, time.Second, lim, []units.Watts{30}, nil))
	}
	if got := l.Summarize().Anomalies["oscillation"]; got != 1 {
		t.Fatalf("oscillation count = %d, want 1", got)
	}
	// A steady limit never flips.
	l2 := newTestLedger(t, chip, apps, Config{
		Detect: DetectorConfig{OscillationWindow: 20, OscillationFlips: 4},
	})
	for i := 0; i < 50; i++ {
		l2.Append(okInput(chip, time.Duration(i+1)*time.Second, time.Second, 50, []units.Watts{30}, nil))
	}
	if got := l2.Summarize().Anomalies["oscillation"]; got != 0 {
		t.Fatalf("steady limit fired oscillation %d times", got)
	}
}

func TestDetectorShareDrift(t *testing.T) {
	chip := platform.Skylake()
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 50},
		{Name: "cam4", Core: 1, Shares: 50},
	}
	l := newTestLedger(t, chip, apps, Config{
		Detect: DetectorConfig{DriftAlpha: 0.5, DriftN: 5, DriftMargin: 0.15},
	})
	// Equal shares but gcc's core runs 10× the frequency: its energy
	// fraction settles near 0.9 against a 0.5 share fraction.
	for i := 0; i < 20; i++ {
		l.Append(okInput(chip, time.Duration(i+1)*time.Second, time.Second, 100,
			[]units.Watts{40}, []units.Hertz{20e9, 2e9}))
	}
	s := l.Summarize()
	if got := s.Anomalies["share-drift"]; got == 0 {
		t.Fatalf("skewed run never fired share-drift: %+v", s.Anomalies)
	}
	found := false
	for _, a := range l.Anomalies() {
		if a.Kind == "share-drift" && a.App == "gcc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("share-drift feed entry names wrong app: %+v", l.Anomalies())
	}
}

func TestDetectorStragglerSocket(t *testing.T) {
	chip := twoSocketChip()
	apps := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 50}}
	l := newTestLedger(t, chip, apps, Config{
		Detect: DetectorConfig{StragglerN: 5},
	})
	for i := 0; i < 6; i++ {
		in := okInput(chip, time.Duration(i+1)*time.Second, time.Second, 100, []units.Watts{40, 40}, nil)
		in.SocketStatus[1] = telemetry.StatusDark
		l.Append(in)
	}
	if got := l.Summarize().Anomalies["straggler"]; got != 1 {
		t.Fatalf("straggler count = %d, want 1", got)
	}
	var hit *Anomaly
	for i, a := range l.Anomalies() {
		if a.Kind == "straggler" {
			hit = &l.Anomalies()[i]
		}
	}
	if hit == nil || hit.Core != 1 {
		t.Fatalf("straggler did not name socket 1: %+v", l.Anomalies())
	}
}

// The flight-recorder events must rebuild the ledger's totals
// bit-identically, even though the ring retains only the newest events.
func TestRebuildFromDumpBitIdentical(t *testing.T) {
	chip := twoSocketChip()
	cps := chip.CoresPerSocket()
	rec := flight.New(0)
	apps := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 90},
		{Name: "cam4", Core: 1, Shares: 10},
		{Name: "leela", Core: cps, Shares: 40},
	}
	l := newTestLedger(t, chip, apps, Config{Flight: rec, Detect: DetectorConfig{OvershootN: 3}})
	at := time.Duration(0)
	for i := 0; i < 500; i++ {
		at += 997 * time.Microsecond
		in := okInput(chip, at, 997*time.Microsecond, 40,
			[]units.Watts{31.13, 27.77}, []units.Hertz{2.1e9, 1.7e9})
		if i%7 == 0 {
			in.SocketStatus[1] = telemetry.StatusStale // some excluded energy
		}
		if i%5 == 0 {
			in.SocketPower[0] = 55 // overshoot excursions
			in.PackagePower = in.SocketPower[0] + in.SocketPower[1]
		}
		l.Append(in)
	}
	s := checkConservation(t, l)

	r := Rebuild(rec.Dump("test").Events)
	if r.Events == 0 {
		t.Fatal("dump contains no ledger events")
	}
	if r.TotalUJ != s.TotalUJ || r.UnattributedUJ != s.UnattributedUJ ||
		r.ExcludedUJ != s.ExcludedUJ || r.LimitUJ != s.LimitUJ || r.OvershootUJ != s.OvershootUJ {
		t.Fatalf("package accounts diverge:\nrebuilt %+v\nlive    %+v", r, s)
	}
	if len(r.AppUJ) != len(s.Apps) {
		t.Fatalf("rebuilt %d apps, want %d", len(r.AppUJ), len(s.Apps))
	}
	for i := range s.Apps {
		if r.AppUJ[i] != s.Apps[i].TotalUJ {
			t.Errorf("app %d: rebuilt %d uJ, live %d uJ", i, r.AppUJ[i], s.Apps[i].TotalUJ)
		}
	}
	if r.AttributedUJ()+r.UnattributedUJ+r.ExcludedUJ != r.TotalUJ {
		t.Error("rebuilt accounts violate conservation")
	}
	if len(r.AnomalyCounts) == 0 {
		t.Error("no anomalies rebuilt despite overshoot excursions")
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Append(Input{At: time.Second, Dt: time.Second})
	l.Reconfigure([]core.AppSpec{{Name: "x", Core: 0}})
	if s := l.Summarize(); s.TotalUJ != 0 {
		t.Error("nil Summarize not zero")
	}
	if l.AttributedUJ() != 0 || l.Anomalies() != nil {
		t.Error("nil accessors not zero")
	}
	if _, err := l.Range(Query{}); err == nil {
		t.Error("nil Range should error")
	}
}

func TestNewValidation(t *testing.T) {
	chip := platform.Skylake()
	if _, err := New(Config{Chip: chip}); err == nil {
		t.Error("no apps accepted")
	}
	if _, err := New(Config{Chip: chip, Apps: []core.AppSpec{{Name: "x", Core: 99}}}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if _, err := New(Config{Chip: chip, Apps: []core.AppSpec{{Name: "x", Core: 0}},
		Rates: RateSchedule{{Start: time.Hour, USDPerKWh: 1}}}); err == nil {
		t.Error("rate schedule not starting at 0 accepted")
	}
}
