package ledger

import (
	"time"

	"repro/internal/flight"
	"repro/internal/units"
)

// numAnomalyKinds sizes the per-kind counters; it tracks the flight
// Anomaly* code vocabulary.
const numAnomalyKinds = 4

// DetectorConfig tunes the streaming anomaly detectors. Every detector
// keeps O(1) state per subject, fires once when its condition is first
// sustained, and re-arms only after the condition fully clears — a
// sustained excursion produces one anomaly, not one per interval.
type DetectorConfig struct {
	// OvershootMargin is the fractional headroom above the limit that
	// counts as overshoot (default 0.05: power > limit × 1.05).
	OvershootMargin float64
	// OvershootN is how many consecutive overshooting intervals arm the
	// sustained-overshoot anomaly (default 10).
	OvershootN int

	// OscillationWindow is the trailing interval window over which
	// limit-direction flips are counted (default 100), and
	// OscillationFlips the flip count that fires the cap-thrash anomaly
	// (default 8).
	OscillationWindow int
	OscillationFlips  int

	// DriftAlpha is the EWMA weight for an app's energy-share fraction
	// (default 0.05); DriftMargin the absolute deviation from the granted
	// share fraction that counts as drift (default 0.15); DriftN the
	// consecutive drifting intervals that fire (default 100).
	DriftAlpha  float64
	DriftMargin float64
	DriftN      int

	// StragglerN is how many consecutive untrustworthy intervals flag a
	// socket as straggling (default 50).
	StragglerN int

	// FeedCapacity bounds the retained anomaly feed (default 256).
	FeedCapacity int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.OvershootMargin <= 0 {
		c.OvershootMargin = 0.05
	}
	if c.OvershootN <= 0 {
		c.OvershootN = 10
	}
	if c.OscillationWindow <= 0 {
		c.OscillationWindow = 100
	}
	if c.OscillationFlips <= 0 {
		c.OscillationFlips = 8
	}
	if c.DriftAlpha <= 0 {
		c.DriftAlpha = 0.05
	}
	if c.DriftMargin <= 0 {
		c.DriftMargin = 0.15
	}
	if c.DriftN <= 0 {
		c.DriftN = 100
	}
	if c.StragglerN <= 0 {
		c.StragglerN = 50
	}
	if c.FeedCapacity <= 0 {
		c.FeedCapacity = 256
	}
	return c
}

// Anomaly is one detector firing, as served in feeds.
type Anomaly struct {
	Kind      string  `json:"kind"`
	AtSeconds float64 `json:"at_seconds"`
	App       string  `json:"app,omitempty"`
	Core      int     `json:"core"`
	Value     float64 `json:"value"`
	Aux       float64 `json:"aux"`
}

// detectors is the ledger's streaming detector state: fixed-size, updated
// once per Append without allocating.
type detectors struct {
	cfg DetectorConfig

	overRun   int
	overFired bool

	lastLimitUW uint64
	lastDir     int
	flipRing    []bool
	flipNext    int
	flipCount   int
	oscFired    bool

	sockRun   []int
	sockFired []bool

	ring   []Anomaly
	next   int
	filled bool
	total  [numAnomalyKinds]uint64
}

func newDetectors(cfg DetectorConfig, sockets int) detectors {
	cfg = cfg.withDefaults()
	return detectors{
		cfg:       cfg,
		flipRing:  make([]bool, cfg.OscillationWindow),
		sockRun:   make([]int, sockets),
		sockFired: make([]bool, sockets),
		ring:      make([]Anomaly, cfg.FeedCapacity),
	}
}

// counts snapshots per-kind firing totals (cold path; allocates a map).
func (d *detectors) counts() map[string]uint64 {
	var out map[string]uint64
	for k := uint32(0); k < numAnomalyKinds; k++ {
		if d.total[k] == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]uint64, numAnomalyKinds)
		}
		out[flight.AnomalyName(k)] = d.total[k]
	}
	return out
}

// feed copies the retained anomalies, oldest first (cold path).
func (d *detectors) feed() []Anomaly {
	if !d.filled {
		return append([]Anomaly(nil), d.ring[:d.next]...)
	}
	out := make([]Anomaly, 0, len(d.ring))
	out = append(out, d.ring[d.next:]...)
	out = append(out, d.ring[:d.next]...)
	return out
}

// fire records one anomaly everywhere it surfaces: the metric family, the
// flight recorder, and the retained feed. Caller holds l.mu; fire is
// allocation-free.
func (l *Ledger) fire(code uint32, at time.Duration, coreID int, app string, value, aux uint64) {
	d := &l.det
	if code < numAnomalyKinds {
		d.total[code]++
		l.m.anomalies[code].Inc()
	}
	l.flight.Record(flight.Event{
		Kind: flight.KindAnomaly, Source: flight.SourceLedger,
		Core: int16(coreID), Arg: code, Value: value, Aux: aux,
	})
	d.ring[d.next] = Anomaly{
		Kind:      flight.AnomalyName(code),
		AtSeconds: at.Seconds(),
		App:       app,
		Core:      coreID,
		Value:     float64(value),
		Aux:       float64(aux),
	}
	d.next++
	if d.next == len(d.ring) {
		d.next = 0
		d.filled = true
	}
}

// runDetectors advances every streaming detector by one interval. Caller
// holds l.mu.
func (l *Ledger) runDetectors(in Input) {
	d := &l.det

	// Sustained overshoot: package power above limit × (1+margin) for N
	// consecutive intervals.
	if in.Limit > 0 && in.PackagePower > in.Limit+units.Watts(float64(in.Limit)*d.cfg.OvershootMargin) {
		d.overRun++
		if d.overRun >= d.cfg.OvershootN && !d.overFired {
			d.overFired = true
			l.fire(flight.AnomalyOvershoot, in.At, -1, "",
				uint64(float64(in.PackagePower-in.Limit)*1e6), uint64(d.overRun))
		}
	} else {
		d.overRun = 0
		d.overFired = false
	}

	// Cap oscillation: the enforced limit reversing direction too often
	// inside the trailing window — the signature of a thrashing
	// coordinator or a fighting pair of controllers.
	uw := uint64(float64(in.Limit) * 1e6)
	dir := 0
	if d.lastLimitUW != 0 {
		if uw > d.lastLimitUW {
			dir = 1
		} else if uw < d.lastLimitUW {
			dir = -1
		}
	}
	flip := dir != 0 && d.lastDir != 0 && dir != d.lastDir
	if dir != 0 {
		d.lastDir = dir
	}
	d.lastLimitUW = uw
	if d.flipRing[d.flipNext] {
		d.flipCount--
	}
	d.flipRing[d.flipNext] = flip
	if flip {
		d.flipCount++
	}
	d.flipNext++
	if d.flipNext == len(d.flipRing) {
		d.flipNext = 0
	}
	if d.flipCount >= d.cfg.OscillationFlips {
		if !d.oscFired {
			d.oscFired = true
			l.fire(flight.AnomalyOscillation, in.At, -1, "", uw, uint64(d.flipCount))
		}
	} else if d.flipCount == 0 {
		d.oscFired = false
	}

	// Per-app energy-share drift: the EWMA of each app's fraction of the
	// attributed energy wandering away from its granted share fraction.
	// Only intervals that attributed energy advance the EWMA — an idle or
	// excluded interval says nothing about proportionality.
	var attr uint64
	for i := range l.apps {
		attr += l.apps[i].lastUJ
	}
	if attr > 0 && l.totalShares > 0 {
		for i := range l.apps {
			a := &l.apps[i]
			frac := float64(a.lastUJ) / float64(attr)
			if !a.ewmaPrimed {
				a.ewmaFrac = frac
				a.ewmaPrimed = true
			} else {
				a.ewmaFrac += d.cfg.DriftAlpha * (frac - a.ewmaFrac)
			}
			sh := float64(a.spec.Shares)
			if sh <= 0 {
				sh = 1
			}
			shareFrac := sh / float64(l.totalShares)
			dev := a.ewmaFrac - shareFrac
			if dev < 0 {
				dev = -dev
			}
			if dev > d.cfg.DriftMargin {
				a.driftRun++
				if a.driftRun >= d.cfg.DriftN && !a.driftFired {
					a.driftFired = true
					l.fire(flight.AnomalyShareDrift, in.At, a.spec.Core, a.spec.Name,
						uint64(a.ewmaFrac*1e6), uint64(shareFrac*1e6))
				}
			} else {
				a.driftRun = 0
				a.driftFired = false
			}
		}
	}

	// Straggling socket: a RAPL domain whose telemetry has been
	// untrustworthy for a sustained run of intervals.
	for s := range d.sockRun {
		trusted := s < len(in.SocketStatus) && in.SocketStatus[s].Trustworthy()
		if !trusted {
			d.sockRun[s]++
			if d.sockRun[s] >= d.cfg.StragglerN && !d.sockFired[s] {
				d.sockFired[s] = true
				l.fire(flight.AnomalyStraggler, in.At, s, "", 0, uint64(d.sockRun[s]))
			}
		} else {
			d.sockRun[s] = 0
			d.sockFired[s] = false
		}
	}
}
