package ledger

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Rate is one segment of the cost/carbon schedule, effective from Start on
// the run clock until the next segment.
type Rate struct {
	Start      time.Duration
	USDPerKWh  float64
	GCO2PerKWh float64
}

// RateSchedule maps run time to energy price and carbon intensity. It must
// be sorted by Start with the first segment starting at 0.
type RateSchedule []Rate

// DefaultRates is a flat schedule near the 2019 US industrial average:
// $0.10/kWh at 400 gCO2/kWh.
var DefaultRates = RateSchedule{{Start: 0, USDPerKWh: 0.10, GCO2PerKWh: 400}}

// Validate checks ordering and non-negativity.
func (rs RateSchedule) Validate() error {
	if len(rs) == 0 {
		return fmt.Errorf("ledger: empty rate schedule")
	}
	if rs[0].Start != 0 {
		return fmt.Errorf("ledger: rate schedule must start at 0, got %v", rs[0].Start)
	}
	for i, r := range rs {
		if r.USDPerKWh < 0 || r.GCO2PerKWh < 0 {
			return fmt.Errorf("ledger: negative rate in segment %d", i)
		}
		if i > 0 && r.Start <= rs[i-1].Start {
			return fmt.Errorf("ledger: rate segments out of order at %d (%v after %v)", i, r.Start, rs[i-1].Start)
		}
	}
	return nil
}

// At returns the segment in effect at run time t. Allocation-free (a
// backwards linear scan; schedules are short).
func (rs RateSchedule) At(t time.Duration) Rate {
	for i := len(rs) - 1; i >= 0; i-- {
		if t >= rs[i].Start {
			return rs[i]
		}
	}
	if len(rs) > 0 {
		return rs[0]
	}
	return DefaultRates[0]
}

// ParseRateSchedule parses the operator syntax powerd's -energy-rates flag
// accepts: comma-separated segments "start=usd:gco2", where start is a Go
// duration or bare seconds. Example:
//
//	0=0.12:420,8h=0.08:250,20h=0.12:420
//
// prices the first eight run hours at 12¢/kWh and 420 gCO2/kWh, the next
// twelve at off-peak rates, and evening hours at peak again.
func ParseRateSchedule(s string) (RateSchedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("ledger: empty rate schedule")
	}
	var rs RateSchedule
	for _, seg := range strings.Split(s, ",") {
		seg = strings.TrimSpace(seg)
		eq := strings.IndexByte(seg, '=')
		if eq < 0 {
			return nil, fmt.Errorf("ledger: rate segment %q: want start=usd:gco2", seg)
		}
		start, err := parseRunTime(seg[:eq])
		if err != nil {
			return nil, fmt.Errorf("ledger: rate segment %q: %w", seg, err)
		}
		rest := seg[eq+1:]
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return nil, fmt.Errorf("ledger: rate segment %q: want start=usd:gco2", seg)
		}
		usd, err := strconv.ParseFloat(strings.TrimSpace(rest[:colon]), 64)
		if err != nil {
			return nil, fmt.Errorf("ledger: rate segment %q: bad price: %w", seg, err)
		}
		gco2, err := strconv.ParseFloat(strings.TrimSpace(rest[colon+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("ledger: rate segment %q: bad carbon intensity: %w", seg, err)
		}
		rs = append(rs, Rate{Start: start, USDPerKWh: usd, GCO2PerKWh: gco2})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	return rs, nil
}

// parseRunTime parses a run-clock offset: bare (fractional) seconds or a
// Go duration string. Negative and non-finite offsets are rejected.
func parseRunTime(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty time")
	}
	if sec, err := strconv.ParseFloat(s, 64); err == nil {
		// The comparison rejects NaN and infinities along with negatives
		// and offsets past ~century scale (which would overflow Duration).
		if !(sec >= 0 && sec <= 4e9) {
			return 0, fmt.Errorf("time %q out of range", s)
		}
		return time.Duration(sec * float64(time.Second)), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative time %q", s)
	}
	return d, nil
}
