package ledger

import (
	"net/url"
	"testing"
	"time"
)

func TestParseRateSchedule(t *testing.T) {
	rs, err := ParseRateSchedule("0=0.12:420,8h=0.08:250,20h=0.12:420")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[1].Start != 8*time.Hour || rs[1].USDPerKWh != 0.08 || rs[1].GCO2PerKWh != 250 {
		t.Fatalf("parsed %+v", rs)
	}
	// Out-of-order input is sorted before validation.
	rs, err = ParseRateSchedule("8h=0.08:250,0=0.12:420")
	if err != nil || rs[0].Start != 0 {
		t.Fatalf("unsorted input: %+v, %v", rs, err)
	}
	// Bare seconds work as segment starts.
	rs, err = ParseRateSchedule("0=0.1:400,90.5=0.2:500")
	if err != nil || rs[1].Start != 90500*time.Millisecond {
		t.Fatalf("bare seconds: %+v, %v", rs, err)
	}

	for _, bad := range []string{
		"",                    // empty
		"0.12:420",            // no start
		"0=0.12",              // no carbon
		"0=x:420",             // bad price
		"0=0.12:y",            // bad carbon
		"1h=0.12:420",         // first segment not at 0
		"0=0.1:400,0=0.2:500", // duplicate start
		"0=-0.1:400",          // negative price
		"0=0.1:-400",          // negative carbon
		"-5=0.1:400",          // negative start
		"NaN=0.1:400",         // non-finite start
	} {
		if _, err := ParseRateSchedule(bad); err == nil {
			t.Errorf("ParseRateSchedule(%q) accepted", bad)
		}
	}
}

func TestRateAt(t *testing.T) {
	rs := RateSchedule{
		{Start: 0, USDPerKWh: 0.12},
		{Start: 8 * time.Hour, USDPerKWh: 0.08},
		{Start: 20 * time.Hour, USDPerKWh: 0.15},
	}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0.12},
		{8*time.Hour - 1, 0.12},
		{8 * time.Hour, 0.08},
		{19 * time.Hour, 0.08},
		{20 * time.Hour, 0.15},
		{100 * time.Hour, 0.15},
	}
	for _, c := range cases {
		if got := rs.At(c.t).USDPerKWh; got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestParseRunTime(t *testing.T) {
	good := []struct {
		in   string
		want time.Duration
	}{
		{"0", 0},
		{"12.5", 12500 * time.Millisecond},
		{"90s", 90 * time.Second},
		{"1h30m", 90 * time.Minute},
		{" 5 ", 5 * time.Second},
	}
	for _, c := range good {
		got, err := parseRunTime(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseRunTime(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "-1", "-5s", "NaN", "Inf", "+Inf", "1e300", "abc", "5e9"} {
		if _, err := parseRunTime(bad); err == nil {
			t.Errorf("parseRunTime(%q) accepted", bad)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery(url.Values{})
	if err != nil || q.Res != ResAuto || q.From != 0 || q.To != 0 || q.Step != 0 || q.Limit != 0 {
		t.Fatalf("empty query: %+v, %v", q, err)
	}

	q, err = ParseQuery(url.Values{
		"from": {"10"}, "to": {"1m"}, "res": {"1s"}, "step": {"5s"}, "limit": {"12"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.From != 10*time.Second || q.To != time.Minute || q.Res != ResSecond ||
		q.Step != 5*time.Second || q.Limit != 12 {
		t.Fatalf("parsed %+v", q)
	}

	// An explicit to=0 means the closed range ending at the origin, not
	// open-ended: it is nudged to the smallest positive bound.
	q, err = ParseQuery(url.Values{"to": {"0"}})
	if err != nil || q.To != 1 {
		t.Fatalf("to=0: %+v, %v", q, err)
	}

	bad := []url.Values{
		{"from": {"abc"}},
		{"from": {"-5"}},
		{"to": {"NaN"}},
		{"from": {"10"}, "to": {"5"}}, // inverted range
		{"res": {"2s"}},
		{"res": {"RAW"}},
		{"step": {"-1s"}},
		{"limit": {"-1"}},
		{"limit": {"many"}},
		{"limit": {"1.5"}},
	}
	for _, v := range bad {
		if _, err := ParseQuery(v); err == nil {
			t.Errorf("ParseQuery(%v) accepted", v)
		}
	}
}
