package ledger

import (
	"sort"
	"time"
)

// Default tier capacities: at a 1 ms control interval the raw tier retains
// ~4 s, the one-second tier an hour, and the one-minute tier a day; at the
// paper's 1 s interval the raw tier alone covers more than an hour. Memory
// is fixed at construction regardless of run length.
const (
	DefaultRawBins    = 4096
	DefaultSecondBins = 3600
	DefaultMinuteBins = 1440
)

// Resolution names accepted by queries.
const (
	ResRaw    = "raw"
	ResSecond = "1s"
	ResMinute = "1m"
	ResAuto   = "auto"
)

// Point is one time-series bin as queries return it: integer microjoule
// accounts over [StartNS, StartNS+DurNS) of the run clock. AppUJ is
// indexed in spec order, paired with the surrounding result's app-name
// list.
type Point struct {
	StartNS        int64    `json:"start_ns"`
	DurNS          int64    `json:"dur_ns"`
	Intervals      uint32   `json:"intervals"`
	TotalUJ        uint64   `json:"total_uj"`
	UnattributedUJ uint64   `json:"unattributed_uj"`
	ExcludedUJ     uint64   `json:"excluded_uj"`
	LimitUJ        uint64   `json:"limit_uj"`
	OvershootUJ    uint64   `json:"overshoot_uj"`
	AppUJ          []uint64 `json:"app_uj"`
}

// bin is one preallocated tier slot; the hot path only ever writes into
// existing bins.
type bin struct {
	start     time.Duration
	dur       time.Duration
	intervals uint32
	appUJ     []uint64
	totalUJ   uint64
	unattrib  uint64
	excluded  uint64
	limitUJ   uint64
	overshoot uint64
}

func (b *bin) reset() {
	b.start, b.dur, b.intervals = 0, 0, 0
	b.totalUJ, b.unattrib, b.excluded, b.limitUJ, b.overshoot = 0, 0, 0, 0, 0
	for i := range b.appUJ {
		b.appUJ[i] = 0
	}
}

// tier is one fixed-capacity downsampling ring. The open bin (width > 0
// only) lives at position next; sealing advances next, overwriting the
// oldest bin once the ring wraps.
type tier struct {
	width  time.Duration // 0: raw, one sealed bin per interval
	bins   []bin
	next   int
	filled bool
	open   bool
}

func makeTier(width time.Duration, n, napps int) tier {
	t := tier{width: width, bins: make([]bin, n)}
	for i := range t.bins {
		t.bins[i].appUJ = make([]uint64, napps)
	}
	return t
}

// advance seals the bin at next. Caller has filled it.
func (t *tier) advance() {
	t.next++
	if t.next == len(t.bins) {
		t.next = 0
		t.filled = true
	}
	t.open = false
}

// accumulate folds one interval into the tier. at is the interval's end on
// the run clock, dur its length; the interval is binned by its start time,
// aligned down to the tier width. A start that jumps several widths ahead
// seals the open bin and opens a new aligned one (gaps produce no empty
// bins); a start behind the open bin (clock skew) accumulates into the
// open bin rather than rewinding the ring.
func (t *tier) accumulate(at, dur time.Duration, apps []appAccount, total, unattrib, excluded, limitUJ, overshoot uint64) {
	st := at - dur
	if st < 0 {
		st = 0
	}
	if t.width == 0 {
		b := &t.bins[t.next]
		b.reset()
		b.start, b.dur, b.intervals = st, dur, 1
		b.totalUJ, b.unattrib, b.excluded, b.limitUJ, b.overshoot = total, unattrib, excluded, limitUJ, overshoot
		for i := range apps {
			b.appUJ[i] = apps[i].lastUJ
		}
		t.advance()
		return
	}
	aligned := st - st%t.width
	if t.open && aligned > t.bins[t.next].start {
		t.advance()
	}
	b := &t.bins[t.next]
	if !t.open {
		b.reset()
		b.start = aligned
		b.dur = t.width
		t.open = true
	}
	b.intervals++
	b.totalUJ += total
	b.unattrib += unattrib
	b.excluded += excluded
	b.limitUJ += limitUJ
	b.overshoot += overshoot
	for i := range apps {
		b.appUJ[i] += apps[i].lastUJ
	}
}

// snapshotRange copies the retained bins whose start falls in [from, to]
// (to <= 0 means open-ended), oldest first, including the open bin.
// Allocates; query path only.
func (t *tier) snapshotRange(from, to time.Duration) []Point {
	n := t.next
	count := n
	if t.filled {
		count = len(t.bins)
	}
	if t.open {
		count++ // the open bin at position next
	}
	out := make([]Point, 0, count)
	emit := func(b *bin) {
		if b.intervals == 0 {
			return
		}
		if b.start < from || (to > 0 && b.start > to) {
			return
		}
		p := Point{
			StartNS:        b.start.Nanoseconds(),
			DurNS:          b.dur.Nanoseconds(),
			Intervals:      b.intervals,
			TotalUJ:        b.totalUJ,
			UnattributedUJ: b.unattrib,
			ExcludedUJ:     b.excluded,
			LimitUJ:        b.limitUJ,
			OvershootUJ:    b.overshoot,
			AppUJ:          append([]uint64(nil), b.appUJ...),
		}
		out = append(out, p)
	}
	if t.filled {
		// Sealed bins oldest-first: when a bin is open at position next it
		// is the newest, so the oldest sealed bin sits just past it;
		// otherwise position next itself holds the oldest.
		first := t.next
		if t.open {
			first++
		}
		for i := first; i < len(t.bins); i++ {
			emit(&t.bins[i])
		}
	}
	for i := 0; i < n; i++ {
		emit(&t.bins[i])
	}
	if t.open {
		emit(&t.bins[t.next])
	}
	return out
}

// oldest reports the start of the oldest retained bin, or -1 when empty.
func (t *tier) oldest() time.Duration {
	if t.filled {
		i := t.next // oldest sealed bin, about to be overwritten
		if t.open {
			i++ // position next holds the open (newest) bin instead
		}
		if i >= len(t.bins) {
			i = 0
		}
		return t.bins[i].start
	}
	if t.next == 0 && !t.open {
		return -1
	}
	return t.bins[0].start
}

// store is the three-tier time-series ring set.
type store struct {
	raw  tier
	secs tier
	mins tier
}

func (s *store) init(napps, rawBins, secBins, minBins int) {
	if rawBins <= 0 {
		rawBins = DefaultRawBins
	}
	if secBins <= 0 {
		secBins = DefaultSecondBins
	}
	if minBins <= 0 {
		minBins = DefaultMinuteBins
	}
	s.raw = makeTier(0, rawBins, napps)
	s.secs = makeTier(time.Second, secBins, napps)
	s.mins = makeTier(time.Minute, minBins, napps)
}

// reset clears all tiers and resizes the per-app columns (reconfiguration
// path; allocates).
func (s *store) reset(napps int) {
	s.raw = makeTier(0, len(s.raw.bins), napps)
	s.secs = makeTier(time.Second, len(s.secs.bins), napps)
	s.mins = makeTier(time.Minute, len(s.mins.bins), napps)
}

// append folds one interval into every tier. Allocation-free.
func (s *store) append(at, dur time.Duration, apps []appAccount, total, unattrib, excluded, limitUJ, overshoot uint64) {
	s.raw.accumulate(at, dur, apps, total, unattrib, excluded, limitUJ, overshoot)
	s.secs.accumulate(at, dur, apps, total, unattrib, excluded, limitUJ, overshoot)
	s.mins.accumulate(at, dur, apps, total, unattrib, excluded, limitUJ, overshoot)
}

// pick selects the tier for a resolution, resolving ResAuto to the finest
// tier whose retention still covers from.
func (s *store) pick(res string, from time.Duration) (*tier, string) {
	switch res {
	case ResRaw:
		return &s.raw, ResRaw
	case ResSecond:
		return &s.secs, ResSecond
	case ResMinute:
		return &s.mins, ResMinute
	}
	if o := s.raw.oldest(); o >= 0 && o <= from {
		return &s.raw, ResRaw
	}
	if o := s.secs.oldest(); o >= 0 && o <= from {
		return &s.secs, ResSecond
	}
	if s.mins.oldest() >= 0 {
		return &s.mins, ResMinute
	}
	return &s.raw, ResRaw
}

// Downsample merges points into step-aligned windows: each input point is
// assigned to the window containing its start, and windows are summed
// account by account. The merge conserves every microjoule column
// (Σ input == Σ output for each account) and returns windows sorted by
// start with no overlaps — the invariants the fuzz target holds it to.
// A non-positive step returns the points sorted by start, unmerged.
func Downsample(points []Point, step time.Duration) []Point {
	out := append([]Point(nil), points...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	if step <= 0 || len(out) == 0 {
		return out
	}
	stepNS := step.Nanoseconds()
	merged := out[:0]
	for _, p := range out {
		start := p.StartNS
		if start < 0 {
			start = 0
		}
		aligned := start - start%stepNS
		if n := len(merged); n > 0 && merged[n-1].StartNS == aligned {
			m := &merged[n-1]
			m.Intervals += p.Intervals
			m.TotalUJ += p.TotalUJ
			m.UnattributedUJ += p.UnattributedUJ
			m.ExcludedUJ += p.ExcludedUJ
			m.LimitUJ += p.LimitUJ
			m.OvershootUJ += p.OvershootUJ
			if len(p.AppUJ) > len(m.AppUJ) {
				grown := make([]uint64, len(p.AppUJ))
				copy(grown, m.AppUJ)
				m.AppUJ = grown
			}
			for i, v := range p.AppUJ {
				m.AppUJ[i] += v
			}
			continue
		}
		p.StartNS = aligned
		p.DurNS = stepNS
		p.AppUJ = append([]uint64(nil), p.AppUJ...)
		merged = append(merged, p)
	}
	return merged
}
