// Package ledger is the always-on per-application energy accountant: every
// control interval it integrates the per-socket RAPL power readings into
// per-app microjoules, attributed by granted shares and measured per-core
// activity, and appends the result to an in-memory multi-resolution
// time-series store (raw → 1 s → 1 min tiers, constant memory). On top of
// the store it runs streaming anomaly detectors (sustained overshoot, cap
// oscillation, per-app energy-share drift, straggling socket) that emit
// typed flight-recorder events and a padpd_anomalies_total metric family,
// and accumulates cost and carbon from a configurable $/kWh and gCO2/kWh
// rate schedule.
//
// Attribution is exact integer accounting. Each socket's power reading is
// quantised once per interval to microjoules (µJ = round(W · dt · 1e6)) and
// then distributed over the apps pinned to that socket by largest-remainder
// rounding of the weights shares×activeFreq — so the per-app microjoules of
// one socket sum to the socket's microjoules exactly, and the conservation
// identity
//
//	Σ app µJ + unattributed µJ + excluded µJ == total µJ
//
// holds bit-exactly over any horizon. Sockets whose RAPL counter or any
// app core's counters were untrustworthy this interval (stuck, torn, dark)
// contribute to the excluded account instead of being smeared across apps;
// trustworthy energy no app weight claims (idle/static power) lands in the
// unattributed account.
//
// Append is allocation-free: every tier bin, scratch slice, anomaly-ring
// slot, and metric child is preallocated at construction, so the ledger
// rides the 1 ms control loop without disturbing the zero-alloc gate.
package ledger

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// microjoulesPerKWh converts the integer energy accounts to kilowatt-hours
// for the cost/carbon schedule: 1 kWh = 3.6e6 J = 3.6e12 µJ.
const microjoulesPerKWh = 3.6e12

// Config assembles a ledger.
type Config struct {
	// Chip supplies the socket topology attribution follows: an app's
	// energy comes from the RAPL domain of the socket its core lives on.
	Chip platform.Chip

	// Apps are the managed applications, in daemon spec order — the order
	// KindEnergy events index and dump metadata lists.
	Apps []core.AppSpec

	// Rates is the $/kWh and gCO2/kWh schedule; nil uses DefaultRates.
	Rates RateSchedule

	// Metrics, when set, publishes the energy accounts and the
	// padpd_anomalies_total family on the registry.
	Metrics *metrics.Registry

	// Flight, when set, receives one KindEnergy event per account per
	// interval (delta + cumulative µJ) and one KindAnomaly event per
	// detector firing, so dumps reproduce the ledger's totals exactly.
	Flight *flight.Recorder

	// RawBins, SecondBins, MinuteBins size the three store tiers
	// (defaults: 4096 raw intervals, 3600 one-second bins, 1440
	// one-minute bins). The store's memory is fixed at construction.
	RawBins, SecondBins, MinuteBins int

	// Detect tunes the streaming anomaly detectors; zero fields take the
	// documented defaults.
	Detect DetectorConfig
}

// appAccount is one app's cumulative energy state.
type appAccount struct {
	spec    core.AppSpec
	socket  int
	totalUJ uint64 // cumulative attributed microjoules
	lastUJ  uint64 // microjoules attributed in the latest interval

	// Share-drift detector state: an EWMA of the app's fraction of the
	// attributed energy, compared against its granted share fraction.
	ewmaFrac   float64
	ewmaPrimed bool
	driftRun   int
	driftFired bool
}

// ledgerMetrics holds the ledger's cached metric handles (nil-safe).
type ledgerMetrics struct {
	totalJ     *metrics.Gauge
	unattribJ  *metrics.Gauge
	excludedJ  *metrics.Gauge
	overshootJ *metrics.Gauge
	costUSD    *metrics.Gauge
	carbonG    *metrics.Gauge
	appJ       []*metrics.Gauge // cached per-app children, spec order

	anomalies [numAnomalyKinds]*metrics.Counter
}

// Ledger is the per-app energy accountant. A nil *Ledger is a valid
// disabled ledger: every method no-ops or returns zero values.
type Ledger struct {
	mu sync.Mutex

	chip        platform.Chip
	apps        []appAccount
	sockApps    [][]int // app indices per socket
	totalShares int     // Σ max(1, shares), for share-fraction comparisons
	rates       RateSchedule
	flight      *flight.Recorder
	reg         *metrics.Registry
	m           ledgerMetrics

	// Cumulative integer accounts (µJ) and counters.
	totalUJ     uint64
	unattribUJ  uint64
	excludedUJ  uint64
	limitUJ     uint64
	overshootUJ uint64
	intervals   uint64
	overIntvls  uint64
	costUSD     float64
	carbonG     float64
	elapsed     time.Duration // run clock of the latest Append

	store store
	det   detectors

	// Preallocated attribution scratch, indexed by app.
	weights []float64
	baseUJ  []uint64
	rem     []float64
}

// New builds a ledger. The configuration is validated like daemon
// construction: every app core must exist on the chip.
func New(cfg Config) (*Ledger, error) {
	if err := cfg.Chip.Validate(); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("ledger: no applications")
	}
	for _, a := range cfg.Apps {
		if a.Core < 0 || a.Core >= cfg.Chip.NumCores {
			return nil, fmt.Errorf("ledger: app %s pinned to core %d beyond chip's %d cores",
				a.Name, a.Core, cfg.Chip.NumCores)
		}
	}
	rates := cfg.Rates
	if len(rates) == 0 {
		rates = DefaultRates
	}
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	l := &Ledger{
		chip:   cfg.Chip,
		rates:  rates,
		flight: cfg.Flight,
		reg:    cfg.Metrics,
		det:    newDetectors(cfg.Detect, cfg.Chip.Sockets()),
	}
	l.store.init(len(cfg.Apps), cfg.RawBins, cfg.SecondBins, cfg.MinuteBins)
	l.sizeApps(cfg.Apps)
	l.initMetrics()
	return l, nil
}

// sizeApps (re)builds the per-app accounts and attribution scratch for a
// spec set. Caller holds l.mu after construction.
func (l *Ledger) sizeApps(apps []core.AppSpec) {
	l.apps = make([]appAccount, len(apps))
	l.sockApps = make([][]int, l.chip.Sockets())
	l.totalShares = 0
	for i, a := range apps {
		s := l.chip.SocketOf(a.Core)
		l.apps[i] = appAccount{spec: a, socket: s}
		l.sockApps[s] = append(l.sockApps[s], i)
		if a.Shares > 0 {
			l.totalShares += int(a.Shares)
		} else {
			l.totalShares++
		}
	}
	l.weights = make([]float64, len(apps))
	l.baseUJ = make([]uint64, len(apps))
	l.rem = make([]float64, len(apps))
}

// initMetrics registers the ledger's metric families and caches every
// child handle the hot path touches. Caller holds no lock (construction
// and reconfiguration only).
func (l *Ledger) initMetrics() {
	if l.reg == nil {
		return
	}
	l.m.totalJ = l.reg.Gauge("padpd_energy_total_joules", "Total socket energy integrated by the ledger.")
	l.m.unattribJ = l.reg.Gauge("padpd_energy_unattributed_joules", "Trustworthy energy no app activity claimed (idle/static power).")
	l.m.excludedJ = l.reg.Gauge("padpd_energy_excluded_joules", "Energy excluded from attribution because a counter was untrustworthy.")
	l.m.overshootJ = l.reg.Gauge("padpd_energy_overshoot_joules", "Integral of package power above the enforced limit.")
	l.m.costUSD = l.reg.Gauge("padpd_energy_cost_usd", "Cumulative energy cost under the configured rate schedule.")
	l.m.carbonG = l.reg.Gauge("padpd_energy_carbon_grams", "Cumulative carbon under the configured rate schedule.")
	appVec := l.reg.GaugeVec("padpd_app_energy_joules", "Cumulative energy attributed to one application.", "app")
	l.m.appJ = make([]*metrics.Gauge, len(l.apps))
	for i := range l.apps {
		l.m.appJ[i] = appVec.With(l.apps[i].spec.Name)
	}
	vec := l.reg.CounterVec("padpd_anomalies_total", "Energy-ledger anomaly detector firings, by kind.", "kind")
	for k := uint32(0); k < numAnomalyKinds; k++ {
		l.m.anomalies[k] = vec.With(flight.AnomalyName(k))
	}
}

// Input is one control interval's telemetry handed to Append. The slices
// follow the telemetry sampler's double-buffer contract: they need only
// stay valid for the duration of the call.
type Input struct {
	At           time.Duration // run clock at the end of the interval
	Dt           time.Duration // interval length
	Limit        units.Watts   // enforced package limit this interval
	PackagePower units.Watts
	PkgStatus    telemetry.CoreStatus
	SocketPower  []units.Watts
	SocketStatus []telemetry.CoreStatus
	Cores        []telemetry.CoreSample
}

// microjoules quantises one interval's energy at watts w over dt. This is
// the ledger's only rounding step: everything downstream is exact integer
// arithmetic.
func microjoules(w units.Watts, dt time.Duration) uint64 {
	if w <= 0 || dt <= 0 {
		return 0
	}
	return uint64(float64(w)*dt.Seconds()*1e6 + 0.5)
}

// Append folds one control interval into the ledger: attribution, tier
// append, detectors, cost, metrics, flight events. It is allocation-free
// and safe for concurrent use with the query methods (single writer, own
// mutex — the daemon calls it once per interval outside its loop lock).
func (l *Ledger) Append(in Input) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.intervals++
	l.elapsed = in.At

	var intervalTotal, intervalUnattrib, intervalExcluded uint64
	for i := range l.apps {
		l.apps[i].lastUJ = 0
	}
	for s := range l.sockApps {
		var w units.Watts
		if s < len(in.SocketPower) {
			w = in.SocketPower[s]
		}
		uj := microjoules(w, in.Dt)
		intervalTotal += uj

		// Trust gate: the socket's RAPL counter and every app core on the
		// socket must be trustworthy, or the whole socket's energy is
		// excluded — a stuck or torn counter must not smear fabricated
		// attributions across the apps that share its domain.
		trusted := s < len(in.SocketStatus) && in.SocketStatus[s].Trustworthy()
		if trusted {
			for _, ai := range l.sockApps[s] {
				c := l.apps[ai].spec.Core
				if c >= len(in.Cores) || !in.Cores[c].Status.Trustworthy() {
					trusted = false
					break
				}
			}
		}
		if !trusted {
			intervalExcluded += uj
			continue
		}
		attributed := l.attributeSocket(s, uj, in.Cores)
		intervalUnattrib += uj - attributed
	}

	limitUJ := microjoules(in.Limit, in.Dt)
	var overUJ uint64
	if in.PackagePower > in.Limit {
		overUJ = microjoules(in.PackagePower-in.Limit, in.Dt)
		l.overIntvls++
	}
	l.totalUJ += intervalTotal
	l.unattribUJ += intervalUnattrib
	l.excludedUJ += intervalExcluded
	l.limitUJ += limitUJ
	l.overshootUJ += overUJ

	rate := l.rates.At(in.At)
	kwh := float64(intervalTotal) / microjoulesPerKWh
	l.costUSD += kwh * rate.USDPerKWh
	l.carbonG += kwh * rate.GCO2PerKWh

	l.store.append(in.At, in.Dt, l.apps, intervalTotal, intervalUnattrib, intervalExcluded, limitUJ, overUJ)
	l.runDetectors(in)
	l.publishLocked()
	l.recordEnergyEvents()
	l.mu.Unlock()
}

// attributeSocket distributes uj microjoules over the apps of socket s by
// largest-remainder rounding of the weights shares×activeFreq, and returns
// how much was attributed (uj when any weight is positive, 0 otherwise).
// Caller holds l.mu.
func (l *Ledger) attributeSocket(s int, uj uint64, cores []telemetry.CoreSample) uint64 {
	idx := l.sockApps[s]
	if uj == 0 || len(idx) == 0 {
		return 0
	}
	var sumW float64
	for _, ai := range idx {
		sh := float64(l.apps[ai].spec.Shares)
		if sh <= 0 {
			sh = 1
		}
		w := sh * float64(cores[l.apps[ai].spec.Core].ActiveFreq)
		l.weights[ai] = w
		sumW += w
	}
	if sumW <= 0 {
		return 0 // every core idle: static power is unattributed, not invented
	}
	var sumBase uint64
	for _, ai := range idx {
		f := float64(uj) * (l.weights[ai] / sumW)
		b := uint64(f)
		l.baseUJ[ai] = b
		l.rem[ai] = f - float64(b)
		sumBase += b
	}
	// Largest-remainder fix-up: hand the leftover microjoules to the apps
	// with the largest fractional remainders, lowest index winning ties —
	// deterministic, and exact by construction. Floating-point error can
	// in principle push Σfloor one past uj; walk it back first.
	for sumBase > uj {
		maxAt := idx[0]
		for _, ai := range idx {
			if l.baseUJ[ai] > l.baseUJ[maxAt] {
				maxAt = ai
			}
		}
		l.baseUJ[maxAt]--
		sumBase--
	}
	for left := uj - sumBase; left > 0; left-- {
		maxAt := -1
		for _, ai := range idx {
			if maxAt < 0 || l.rem[ai] > l.rem[maxAt] {
				maxAt = ai
			}
		}
		l.baseUJ[maxAt]++
		l.rem[maxAt]-- // keeps the walk well-defined even if left > len(idx)
	}
	for _, ai := range idx {
		l.apps[ai].lastUJ += l.baseUJ[ai]
		l.apps[ai].totalUJ += l.baseUJ[ai]
	}
	return uj
}

// publishLocked pushes the cumulative accounts to the cached metric
// handles. Caller holds l.mu.
func (l *Ledger) publishLocked() {
	l.m.totalJ.Set(float64(l.totalUJ) / 1e6)
	l.m.unattribJ.Set(float64(l.unattribUJ) / 1e6)
	l.m.excludedJ.Set(float64(l.excludedUJ) / 1e6)
	l.m.overshootJ.Set(float64(l.overshootUJ) / 1e6)
	l.m.costUSD.Set(l.costUSD)
	l.m.carbonG.Set(l.carbonG)
	for i := range l.apps {
		if i < len(l.m.appJ) {
			l.m.appJ[i].Set(float64(l.apps[i].totalUJ) / 1e6)
		}
	}
}

// recordEnergyEvents emits one KindEnergy event per account: every app
// (delta + cumulative), then the package accounts. Emitting every account
// every interval guarantees the latest interval's events alone rebuild the
// ledger bit-exactly from a dump, regardless of ring overwrites. Caller
// holds l.mu.
func (l *Ledger) recordEnergyEvents() {
	if l.flight == nil {
		return
	}
	for i := range l.apps {
		a := &l.apps[i]
		l.flight.Record(flight.Event{
			Kind: flight.KindEnergy, Source: flight.SourceLedger,
			Core: int16(a.spec.Core), Arg: uint32(i),
			Value: a.lastUJ, Aux: a.totalUJ,
		})
	}
	pkg := [...]struct {
		arg uint32
		cum uint64
	}{
		{flight.EnergyArgUnattributed, l.unattribUJ},
		{flight.EnergyArgExcluded, l.excludedUJ},
		{flight.EnergyArgTotal, l.totalUJ},
		{flight.EnergyArgLimit, l.limitUJ},
		{flight.EnergyArgOvershoot, l.overshootUJ},
	}
	for _, p := range pkg {
		l.flight.Record(flight.Event{
			Kind: flight.KindEnergy, Source: flight.SourceLedger,
			Core: -1, Arg: p.arg, Aux: p.cum,
		})
	}
}

// Reconfigure rebinds the ledger to a new app set after a live daemon
// reconfiguration. Cumulative per-app totals carry over by name; apps that
// disappear keep their joules in the package totals (conservation is over
// energy, not app identity). The per-app columns of the time-series tiers
// are reset — historical bins were indexed by the old spec order — while
// the package accounts and detectors keep running.
func (l *Ledger) Reconfigure(apps []core.AppSpec) {
	if l == nil || len(apps) == 0 {
		return
	}
	l.mu.Lock()
	carried := make(map[string]uint64, len(l.apps))
	for i := range l.apps {
		carried[l.apps[i].spec.Name] += l.apps[i].totalUJ
	}
	l.sizeApps(apps)
	for i := range l.apps {
		l.apps[i].totalUJ = carried[l.apps[i].spec.Name]
	}
	l.store.reset(len(apps))
	l.mu.Unlock()
	l.initMetrics()
}

// AppTotal is one app's row in a ledger summary.
type AppTotal struct {
	Name    string  `json:"name"`
	Core    int     `json:"core"`
	Shares  int     `json:"shares"`
	TotalUJ uint64  `json:"total_uj"`
	Joules  float64 `json:"joules"`
	// EnergyFrac and ShareFrac compare where the joules went against
	// where the shares said they should go — the share-drift detector's
	// view, over the whole run.
	EnergyFrac float64 `json:"energy_frac"`
	ShareFrac  float64 `json:"share_frac"`
}

// Summary is the ledger's cumulative account book.
type Summary struct {
	ElapsedSeconds  float64           `json:"elapsed_seconds"`
	Intervals       uint64            `json:"intervals"`
	OverIntervals   uint64            `json:"over_intervals"`
	TotalUJ         uint64            `json:"total_uj"`
	UnattributedUJ  uint64            `json:"unattributed_uj"`
	ExcludedUJ      uint64            `json:"excluded_uj"`
	LimitUJ         uint64            `json:"limit_uj"`
	OvershootUJ     uint64            `json:"overshoot_uj"`
	TotalJoules     float64           `json:"total_joules"`
	OvershootJoules float64           `json:"overshoot_joules"`
	CostUSD         float64           `json:"cost_usd"`
	CarbonGrams     float64           `json:"carbon_grams"`
	Apps            []AppTotal        `json:"apps"`
	Anomalies       map[string]uint64 `json:"anomalies,omitempty"`
}

// Summarize snapshots the cumulative accounts. Allocates; intended for
// status endpoints and tests, not the hot path.
func (l *Ledger) Summarize() Summary {
	if l == nil {
		return Summary{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Summary{
		ElapsedSeconds:  l.elapsed.Seconds(),
		Intervals:       l.intervals,
		OverIntervals:   l.overIntvls,
		TotalUJ:         l.totalUJ,
		UnattributedUJ:  l.unattribUJ,
		ExcludedUJ:      l.excludedUJ,
		LimitUJ:         l.limitUJ,
		OvershootUJ:     l.overshootUJ,
		TotalJoules:     float64(l.totalUJ) / 1e6,
		OvershootJoules: float64(l.overshootUJ) / 1e6,
		CostUSD:         l.costUSD,
		CarbonGrams:     l.carbonG,
		Apps:            make([]AppTotal, len(l.apps)),
	}
	var attributed uint64
	var shares int
	for i := range l.apps {
		attributed += l.apps[i].totalUJ
		sh := int(l.apps[i].spec.Shares)
		if sh <= 0 {
			sh = 1
		}
		shares += sh
	}
	for i := range l.apps {
		a := &l.apps[i]
		sh := int(a.spec.Shares)
		if sh <= 0 {
			sh = 1
		}
		row := AppTotal{
			Name:    a.spec.Name,
			Core:    a.spec.Core,
			Shares:  int(a.spec.Shares),
			TotalUJ: a.totalUJ,
			Joules:  float64(a.totalUJ) / 1e6,
		}
		if attributed > 0 {
			row.EnergyFrac = float64(a.totalUJ) / float64(attributed)
		}
		if shares > 0 {
			row.ShareFrac = float64(sh) / float64(shares)
		}
		s.Apps[i] = row
	}
	if counts := l.det.counts(); len(counts) > 0 {
		s.Anomalies = counts
	}
	return s
}

// AttributedUJ reports the cumulative microjoules attributed across all
// apps — the left side of the conservation identity. Tests use it next to
// Summarize.
func (l *Ledger) AttributedUJ() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum uint64
	for i := range l.apps {
		sum += l.apps[i].totalUJ
	}
	return sum
}

// Anomalies returns the retained anomaly feed, oldest first.
func (l *Ledger) Anomalies() []Anomaly {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.det.feed()
}
