package ledger

import (
	"fmt"
	"net/url"
	"strconv"
	"time"
)

// Query is one parsed /debug/energy request.
type Query struct {
	// From and To bound the range on the run clock (bin starts in
	// [From, To]); To == 0 leaves the range open-ended.
	From, To time.Duration
	// Res selects the tier: raw, 1s, 1m, or auto (default), which picks
	// the finest tier whose retention still covers From.
	Res string
	// Step, when positive, downsamples the selected tier's points into
	// step-aligned windows.
	Step time.Duration
	// Limit, when positive, keeps only the newest Limit points.
	Limit int
}

// ParseQuery parses /debug/energy URL parameters:
//
//	from, to  range bounds — bare seconds ("12.5") or Go durations ("90s")
//	res       raw | 1s | 1m | auto (default auto)
//	step      merge window, same syntax as from/to
//	limit     maximum points returned, newest kept
//
// Every error is a client error (HTTP 400).
func ParseQuery(v url.Values) (Query, error) {
	q := Query{Res: ResAuto}
	var err error
	if s := v.Get("from"); s != "" {
		if q.From, err = parseRunTime(s); err != nil {
			return Query{}, fmt.Errorf("ledger: from: %w", err)
		}
	}
	if s := v.Get("to"); s != "" {
		if q.To, err = parseRunTime(s); err != nil {
			return Query{}, fmt.Errorf("ledger: to: %w", err)
		}
		if q.To == 0 {
			// An explicit to=0 asks for the empty range ending at the
			// origin, which "open-ended" must not swallow: nudge to the
			// smallest closed bound.
			q.To = 1
		}
	}
	if q.To > 0 && q.From > q.To {
		return Query{}, fmt.Errorf("ledger: from %v past to %v", q.From, q.To)
	}
	switch s := v.Get("res"); s {
	case "", ResAuto:
		q.Res = ResAuto
	case ResRaw, ResSecond, ResMinute:
		q.Res = s
	default:
		return Query{}, fmt.Errorf("ledger: res %q: want raw, 1s, 1m, or auto", s)
	}
	if s := v.Get("step"); s != "" {
		if q.Step, err = parseRunTime(s); err != nil {
			return Query{}, fmt.Errorf("ledger: step: %w", err)
		}
	}
	if s := v.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return Query{}, fmt.Errorf("ledger: limit %q: want a non-negative integer", s)
		}
		q.Limit = n
	}
	return q, nil
}

// RangeResult is the /debug/energy payload: the selected resolution's
// points (AppUJ columns in Apps order) plus the cumulative summary.
type RangeResult struct {
	Resolution string   `json:"resolution"`
	Apps       []string `json:"apps"`
	Points     []Point  `json:"points"`
	Summary    Summary  `json:"summary"`
}

// Range serves one parsed query against the store. Allocates; query path
// only — Append keeps running concurrently.
func (l *Ledger) Range(q Query) (RangeResult, error) {
	if l == nil {
		return RangeResult{}, fmt.Errorf("ledger: not configured")
	}
	if q.Res == "" {
		q.Res = ResAuto
	}
	l.mu.Lock()
	t, res := l.store.pick(q.Res, q.From)
	points := t.snapshotRange(q.From, q.To)
	names := make([]string, len(l.apps))
	for i := range l.apps {
		names[i] = l.apps[i].spec.Name
	}
	l.mu.Unlock()
	if q.Step > 0 {
		points = Downsample(points, q.Step)
	}
	if q.Limit > 0 && len(points) > q.Limit {
		points = points[len(points)-q.Limit:]
	}
	return RangeResult{
		Resolution: res,
		Apps:       names,
		Points:     points,
		Summary:    l.Summarize(),
	}, nil
}
