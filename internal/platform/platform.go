// Package platform defines the two evaluation platforms of the paper
// (Table 1): the Intel Xeon-SP 4114 "Skylake" and the AMD Ryzen 1700X,
// as chip configurations combining a frequency specification (P-states,
// turbo tables, AVX licences), a power model, and capability flags that
// gate which policies a platform can run (per-core power measurement is
// Ryzen-only, hardware RAPL limiting is Skylake-only, Ryzen can hold only
// three distinct P-states at once).
package platform

import (
	"time"

	"fmt"

	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/units"
)

// Topology describes how a chip's cores are organised into sockets. The
// zero value is a single socket. Multi-socket packages model the NUMA
// machines the control loop must scale to: each socket is its own RAPL
// energy domain (the package energy MSR is per-socket, read through any
// of that socket's CPUs) and its own turbo-occupancy domain (active-core
// counts on one socket do not shrink another socket's turbo bins).
type Topology struct {
	// Sockets is the number of sockets (NUMA domains); 0 or 1 means a
	// single socket. NumCores must divide evenly into sockets, and cores
	// are assigned to sockets in contiguous blocks: socket s owns cores
	// [s·NumCores/Sockets, (s+1)·NumCores/Sockets).
	Sockets int
}

// Chip is one processor package configuration: a single socket in the
// paper's evaluation, or a multi-socket NUMA package when Topo.Sockets
// is set (power, RAPL bounds, and core counts then describe the whole
// package; the frequency spec and power model remain per-core/per-socket).
type Chip struct {
	Name     string
	Vendor   string
	NumCores int

	// Topo is the socket organisation; the zero value is single-socket.
	Topo Topology

	Freq  cpu.FreqSpec
	Power power.Model

	// CStates is the core idle-state table, ordered shallow to deep. An
	// empty table falls back to the power model's flat IdleCorePower.
	CStates []cpu.CState

	// PerCorePower reports whether the chip exposes per-core energy
	// counters (Ryzen does; Skylake exposes only the package domain).
	// The paper's power-share policy requires this.
	PerCorePower bool

	// HardwareRAPLLimit reports whether the chip's RAPL limiter is
	// available (documented) for enforcement. True on Skylake; the
	// Ryzen limiter is undocumented, so the paper enforces limits in
	// software only.
	HardwareRAPLLimit bool

	// MaxSimultaneousPStates bounds how many distinct frequencies may be
	// in effect at once across cores; zero means unlimited. Ryzen 1700X
	// supports only 3.
	MaxSimultaneousPStates int

	// RAPLMin and RAPLMax bound the valid package power limit range.
	RAPLMin, RAPLMax units.Watts

	// DegradedFloor is the safe P-state the control plane falls back to
	// for a core whose telemetry has gone stale or dark: slow enough that
	// a core running blind cannot blow the package power budget, fast
	// enough that its application keeps making progress. Zero means "use
	// the chip's minimum frequency".
	DegradedFloor units.Hertz

	// NormFreq is the frequency the paper normalises performance to
	// (2.2 GHz on Skylake, 3.0 GHz on Ryzen).
	NormFreq units.Hertz
}

// Sockets returns the number of sockets in the package (at least 1).
func (c Chip) Sockets() int {
	if c.Topo.Sockets > 1 {
		return c.Topo.Sockets
	}
	return 1
}

// CoresPerSocket returns how many cores each socket holds.
func (c Chip) CoresPerSocket() int {
	return c.NumCores / c.Sockets()
}

// SocketOf returns the socket owning the given core. Out-of-range cores
// clamp to the nearest socket so callers on degraded paths never index
// past the energy-domain arrays.
func (c Chip) SocketOf(core int) int {
	if core <= 0 {
		return 0
	}
	s := core / c.CoresPerSocket()
	if max := c.Sockets() - 1; s > max {
		return max
	}
	return s
}

// Validate reports whether the chip configuration is coherent.
func (c Chip) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("platform: chip has no name")
	}
	if c.NumCores <= 0 {
		return fmt.Errorf("platform %s: NumCores must be positive", c.Name)
	}
	if c.Topo.Sockets < 0 {
		return fmt.Errorf("platform %s: negative socket count", c.Name)
	}
	if s := c.Sockets(); c.NumCores%s != 0 {
		return fmt.Errorf("platform %s: %d cores do not divide into %d sockets", c.Name, c.NumCores, s)
	}
	if err := c.Freq.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", c.Name, err)
	}
	if err := c.Power.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", c.Name, err)
	}
	if err := cpu.ValidateCStates(c.CStates); err != nil {
		return fmt.Errorf("platform %s: %w", c.Name, err)
	}
	if c.Freq.Max() != c.Power.Curve.MaxFreq {
		return fmt.Errorf("platform %s: freq spec max %v disagrees with power curve max %v",
			c.Name, c.Freq.Max(), c.Power.Curve.MaxFreq)
	}
	if c.Freq.Min != c.Power.Curve.MinFreq {
		return fmt.Errorf("platform %s: freq spec min %v disagrees with power curve min %v",
			c.Name, c.Freq.Min, c.Power.Curve.MinFreq)
	}
	// Turbo occupancy is a per-socket property: active cores on one socket
	// do not consume another socket's turbo bins, so the table only has to
	// cover one socket's worth of cores.
	if len(c.Freq.Turbo) > 0 && c.Freq.Turbo[len(c.Freq.Turbo)-1].MaxActive < c.CoresPerSocket() {
		return fmt.Errorf("platform %s: turbo table does not cover %d cores per socket", c.Name, c.CoresPerSocket())
	}
	if c.MaxSimultaneousPStates < 0 {
		return fmt.Errorf("platform %s: negative MaxSimultaneousPStates", c.Name)
	}
	if !(c.RAPLMin > 0 && c.RAPLMin < c.RAPLMax) {
		return fmt.Errorf("platform %s: RAPL range [%v, %v] invalid", c.Name, c.RAPLMin, c.RAPLMax)
	}
	if c.NormFreq < c.Freq.Min || c.NormFreq > c.Freq.Max() {
		return fmt.Errorf("platform %s: NormFreq %v outside frequency range", c.Name, c.NormFreq)
	}
	if c.DegradedFloor != 0 && (c.DegradedFloor < c.Freq.Min || c.DegradedFloor > c.Freq.Max()) {
		return fmt.Errorf("platform %s: DegradedFloor %v outside frequency range", c.Name, c.DegradedFloor)
	}
	return nil
}

// SafeFloor returns the frequency the control plane programs on a core it
// can no longer trust: the chip's DegradedFloor, or its minimum frequency
// when none is configured.
func (c Chip) SafeFloor() units.Hertz {
	if c.DegradedFloor > 0 {
		return c.DegradedFloor
	}
	return c.Freq.Min
}

// Skylake returns the paper's Intel platform: Xeon-SP 4114, one socket,
// 10 cores, 0.8-2.2 GHz nominal plus TurboBoost to 3.0 GHz, per-core DVFS in
// 100 MHz steps, RAPL power capping over 20-85 W, package-level power
// measurement only.
func Skylake() Chip {
	return Chip{
		Name:     "Skylake Xeon-SP 4114",
		Vendor:   "Intel",
		NumCores: 10,
		Freq: cpu.FreqSpec{
			Min:  800 * units.MHz,
			Nom:  2200 * units.MHz,
			Step: 100 * units.MHz,
			Turbo: []cpu.TurboBin{
				{MaxActive: 2, Normal: 3000 * units.MHz, AVX: 1900 * units.MHz},
				{MaxActive: 4, Normal: 2800 * units.MHz, AVX: 1800 * units.MHz},
				{MaxActive: 10, Normal: 2500 * units.MHz, AVX: 1700 * units.MHz},
			},
		},
		Power: power.Model{
			Curve: power.VoltageCurve{
				MinFreq: 800 * units.MHz,
				NomFreq: 2200 * units.MHz,
				MaxFreq: 3000 * units.MHz,
				MinV:    0.62,
				NomV:    0.95,
				MaxV:    1.20,
			},
			CoreCeff:      2.4e-9,
			CoreLeakage:   0.6,
			IdleCorePower: 0.10,
			UncorePower:   12,
		},
		CStates: []cpu.CState{
			{Name: "C1", Power: 0.80, ExitLatency: 2 * time.Microsecond, TargetResidency: 5 * time.Microsecond},
			{Name: "C1E", Power: 0.40, ExitLatency: 10 * time.Microsecond, TargetResidency: 25 * time.Microsecond},
			{Name: "C6", Power: 0.10, ExitLatency: 133 * time.Microsecond, TargetResidency: 400 * time.Microsecond},
		},
		PerCorePower:           false,
		HardwareRAPLLimit:      true,
		MaxSimultaneousPStates: 0,
		RAPLMin:                20,
		RAPLMax:                85,
		DegradedFloor:          800 * units.MHz,
		NormFreq:               2200 * units.MHz,
	}
}

// Ryzen returns the paper's AMD platform: Ryzen 1700X, 8 cores,
// 0.4-3.4 GHz plus XFR to 3.8 GHz, per-core DVFS in 25 MHz steps limited to
// 3 simultaneous P-states, per-core power measurement, no documented
// hardware RAPL limiting.
func Ryzen() Chip {
	return Chip{
		Name:     "AMD Ryzen 1700X",
		Vendor:   "AMD",
		NumCores: 8,
		Freq: cpu.FreqSpec{
			Min:  400 * units.MHz,
			Nom:  3400 * units.MHz,
			Step: 25 * units.MHz,
			Turbo: []cpu.TurboBin{
				// Zen 1 splits 256-bit AVX into two 128-bit halves, so
				// there is no separate AVX licence frequency.
				{MaxActive: 2, Normal: 3800 * units.MHz, AVX: 3800 * units.MHz},
				{MaxActive: 8, Normal: 3500 * units.MHz, AVX: 3500 * units.MHz},
			},
		},
		Power: power.Model{
			Curve: power.VoltageCurve{
				MinFreq: 400 * units.MHz,
				NomFreq: 3400 * units.MHz,
				MaxFreq: 3800 * units.MHz,
				MinV:    0.70,
				NomV:    1.1875,
				MaxV:    1.35,
			},
			CoreCeff:      1.7e-9,
			CoreLeakage:   0.8,
			IdleCorePower: 0.12,
			UncorePower:   10,
		},
		CStates: []cpu.CState{
			{Name: "C1", Power: 0.70, ExitLatency: 1 * time.Microsecond, TargetResidency: 2 * time.Microsecond},
			{Name: "C2", Power: 0.30, ExitLatency: 50 * time.Microsecond, TargetResidency: 150 * time.Microsecond},
			{Name: "C6", Power: 0.12, ExitLatency: 350 * time.Microsecond, TargetResidency: time.Millisecond},
		},
		PerCorePower:           true,
		HardwareRAPLLimit:      false,
		MaxSimultaneousPStates: 3,
		RAPLMin:                15,
		RAPLMax:                95,
		DegradedFloor:          400 * units.MHz,
		NormFreq:               3000 * units.MHz,
	}
}

// ScaleSocket widens a single-socket chip to the given core count: the
// turbo table's last bin grows to cover every core and the RAPL window
// scales with the socket, so a control policy operates in the same
// regime at every size. The base chip must be single-socket.
func ScaleSocket(base Chip, cores int) Chip {
	chip := base
	chip.Name = fmt.Sprintf("%s (scaled %d cores)", base.Name, cores)
	chip.NumCores = cores
	chip.Topo = Topology{}
	chip.Freq.Turbo = append([]cpu.TurboBin(nil), base.Freq.Turbo...)
	if last := len(chip.Freq.Turbo) - 1; last >= 0 && chip.Freq.Turbo[last].MaxActive < cores {
		chip.Freq.Turbo[last].MaxActive = cores
	}
	chip.RAPLMax = base.RAPLMax * units.Watts(cores) / units.Watts(base.NumCores)
	if chip.RAPLMax <= chip.RAPLMin {
		chip.RAPLMax = chip.RAPLMin + 10
	}
	return chip
}

// MultiSocket replicates a single-socket chip into an n-socket NUMA
// package: n× the cores, n× the package RAPL window (each socket keeps
// its own energy domain and turbo-occupancy table), with the socket
// boundaries recorded in the topology. The per-core frequency spec and
// power model are unchanged — UncorePower remains per-socket and is
// accounted once per socket by the machine model.
func MultiSocket(socket Chip, n int) Chip {
	if n <= 1 {
		return socket
	}
	chip := socket
	chip.Name = fmt.Sprintf("%s ×%d sockets", socket.Name, n)
	chip.NumCores = socket.NumCores * n
	chip.Topo = Topology{Sockets: n}
	chip.RAPLMin = socket.RAPLMin * units.Watts(n)
	chip.RAPLMax = socket.RAPLMax * units.Watts(n)
	return chip
}

// ByName returns a platform by short name: "skylake" or "ryzen".
func ByName(name string) (Chip, error) {
	switch name {
	case "skylake", "intel", "xeon":
		return Skylake(), nil
	case "ryzen", "amd":
		return Ryzen(), nil
	}
	return Chip{}, fmt.Errorf("platform: unknown platform %q (want skylake or ryzen)", name)
}
