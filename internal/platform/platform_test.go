package platform

import (
	"testing"

	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestBothPlatformsValid(t *testing.T) {
	for _, c := range []Chip{Skylake(), Ryzen()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateCatchesIncoherence(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Chip)
	}{
		{"no name", func(c *Chip) { c.Name = "" }},
		{"no cores", func(c *Chip) { c.NumCores = 0 }},
		{"curve mismatch max", func(c *Chip) { c.Power.Curve.MaxFreq = 9 * units.GHz }},
		{"curve mismatch min", func(c *Chip) { c.Power.Curve.MinFreq = 1 * units.MHz }},
		{"turbo undersized", func(c *Chip) { c.NumCores = 64 }},
		{"negative pstates", func(c *Chip) { c.MaxSimultaneousPStates = -1 }},
		{"bad rapl range", func(c *Chip) { c.RAPLMin = 200 }},
		{"norm freq out of range", func(c *Chip) { c.NormFreq = 10 * units.GHz }},
	}
	for _, tc := range cases {
		c := Skylake()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPaperTable1Features(t *testing.T) {
	sky := Skylake()
	if sky.NumCores != 10 {
		t.Errorf("Skylake cores = %d", sky.NumCores)
	}
	if sky.Freq.Min != 800*units.MHz || sky.Freq.Nom != 2200*units.MHz || sky.Freq.Max() != 3*units.GHz {
		t.Errorf("Skylake freq range wrong: %v-%v+%v", sky.Freq.Min, sky.Freq.Nom, sky.Freq.Max())
	}
	if sky.Freq.Step != 100*units.MHz {
		t.Errorf("Skylake step = %v", sky.Freq.Step)
	}
	if sky.PerCorePower || !sky.HardwareRAPLLimit {
		t.Error("Skylake capabilities wrong")
	}
	if sky.RAPLMin != 20 || sky.RAPLMax != 85 {
		t.Errorf("Skylake RAPL range = %v-%v", sky.RAPLMin, sky.RAPLMax)
	}

	ryz := Ryzen()
	if ryz.NumCores != 8 {
		t.Errorf("Ryzen cores = %d", ryz.NumCores)
	}
	if ryz.Freq.Min != 400*units.MHz || ryz.Freq.Nom != 3400*units.MHz || ryz.Freq.Max() != 3800*units.MHz {
		t.Errorf("Ryzen freq range wrong")
	}
	if ryz.Freq.Step != 25*units.MHz {
		t.Errorf("Ryzen step = %v", ryz.Freq.Step)
	}
	if !ryz.PerCorePower || ryz.HardwareRAPLLimit {
		t.Error("Ryzen capabilities wrong")
	}
	if ryz.MaxSimultaneousPStates != 3 {
		t.Errorf("Ryzen P-state limit = %d", ryz.MaxSimultaneousPStates)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"skylake", "intel", "xeon"} {
		c, err := ByName(n)
		if err != nil || c.Vendor != "Intel" {
			t.Errorf("ByName(%q) = %v, %v", n, c.Vendor, err)
		}
	}
	for _, n := range []string{"ryzen", "amd"} {
		c, err := ByName(n)
		if err != nil || c.Vendor != "AMD" {
			t.Errorf("ByName(%q) = %v, %v", n, c.Vendor, err)
		}
	}
	if _, err := ByName("sparc"); err == nil {
		t.Error("unknown platform accepted")
	}
}

// Package power of a full gcc load at the all-core ceiling must sit inside
// the RAPL range on Skylake (the paper's Figure 1 shows no throttling at
// 85 W) and a full cactusBSSN load must exceed 50 W (so the 50 W limit
// actually binds).
func TestSkylakePowerEnvelope(t *testing.T) {
	sky := Skylake()
	gcc := workload.MustByName("gcc")
	allCore := sky.Freq.Ceiling(sky.NumCores, false)
	draws := make([]power.CoreDraw, sky.NumCores)
	for i := range draws {
		draws[i] = power.CoreDraw{Active: true, Freq: allCore, Activity: gcc.Activity}
	}
	full := sky.Power.Package(draws)
	if full >= sky.RAPLMax {
		t.Errorf("all-core gcc draws %v, should fit under TDP %v", full, sky.RAPLMax)
	}
	if full <= 50 {
		t.Errorf("all-core gcc draws only %v; 50 W limit would never bind", full)
	}

	cactus := workload.MustByName("cactusBSSN")
	for i := range draws {
		draws[i] = power.CoreDraw{Active: true, Freq: allCore, Activity: cactus.Activity}
	}
	if p := sky.Power.Package(draws); p <= 50 {
		t.Errorf("all-core cactusBSSN draws only %v, 50 W limit would never bind", p)
	}
}

// On Ryzen the dynamic range of core power should be roughly the paper's
// reported factor of 12-14 between min and max frequency.
func TestRyzenCorePowerDynamicRange(t *testing.T) {
	ryz := Ryzen()
	lo := ryz.Power.CorePower(ryz.Freq.Min, 1)
	hi := ryz.Power.CorePower(ryz.Freq.Max(), 1)
	ratio := float64(hi / lo)
	if ratio < 8 || ratio > 25 {
		t.Errorf("Ryzen core power dynamic range = %.1fx, want ~12-14x", ratio)
	}
}

// The AVX licence must actually bind on Skylake: an AVX app's ceiling at
// full occupancy is far below the normal ceiling (cam4's 1667 MHz vs gcc's
// 2360 MHz in Figure 1).
func TestSkylakeAVXLicenceBinds(t *testing.T) {
	sky := Skylake()
	avx := sky.Freq.Ceiling(10, true)
	normal := sky.Freq.Ceiling(10, false)
	if avx >= normal {
		t.Errorf("AVX ceiling %v not below normal %v", avx, normal)
	}
	if avx != 1700*units.MHz {
		t.Errorf("AVX all-core ceiling = %v, want 1700 MHz", avx)
	}
}
