package platform

import "testing"

func TestSocketAccessorsSingleSocket(t *testing.T) {
	sky := Skylake()
	if sky.Sockets() != 1 || sky.CoresPerSocket() != sky.NumCores {
		t.Fatalf("single socket: sockets=%d cps=%d", sky.Sockets(), sky.CoresPerSocket())
	}
	for _, c := range []int{0, sky.NumCores - 1, -3, sky.NumCores + 5} {
		if s := sky.SocketOf(c); s != 0 {
			t.Errorf("SocketOf(%d) = %d on a single socket", c, s)
		}
	}
}

func TestMultiSocketLayout(t *testing.T) {
	sky := Skylake()
	chip := MultiSocket(sky, 4)
	if err := chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if chip.Sockets() != 4 || chip.NumCores != 4*sky.NumCores {
		t.Fatalf("4-socket package: sockets=%d cores=%d", chip.Sockets(), chip.NumCores)
	}
	if chip.CoresPerSocket() != sky.NumCores {
		t.Fatalf("cores per socket = %d, want %d", chip.CoresPerSocket(), sky.NumCores)
	}
	// Contiguous block assignment, with out-of-range cores clamped so
	// degraded paths can never index past the energy-domain arrays.
	cps := chip.CoresPerSocket()
	for core := 0; core < chip.NumCores; core++ {
		if got := chip.SocketOf(core); got != core/cps {
			t.Fatalf("SocketOf(%d) = %d, want %d", core, got, core/cps)
		}
	}
	if got := chip.SocketOf(-1); got != 0 {
		t.Errorf("SocketOf(-1) = %d", got)
	}
	if got := chip.SocketOf(chip.NumCores + 7); got != 3 {
		t.Errorf("SocketOf(past-end) = %d, want last socket", got)
	}
	// Each socket is its own RAPL domain: the package window is n× the
	// socket's, and the per-socket turbo table still validates (active
	// cores on one socket do not consume another's bins).
	if chip.RAPLMax != sky.RAPLMax*4 || chip.RAPLMin != sky.RAPLMin*4 {
		t.Errorf("RAPL window [%v, %v], want 4x [%v, %v]",
			chip.RAPLMin, chip.RAPLMax, sky.RAPLMin, sky.RAPLMax)
	}
	// Replicating one socket is the identity.
	if got := MultiSocket(sky, 1); got.Name != sky.Name || got.Sockets() != 1 {
		t.Errorf("MultiSocket(n=1) altered the chip: %q", got.Name)
	}
}

func TestScaleSocketThenMultiSocket(t *testing.T) {
	// The bench flagship: 64-core sockets replicated 8x to 512 cores.
	socket := ScaleSocket(Skylake(), 64)
	if err := socket.Validate(); err != nil {
		t.Fatal(err)
	}
	if socket.NumCores != 64 || socket.Sockets() != 1 {
		t.Fatalf("scaled socket: cores=%d sockets=%d", socket.NumCores, socket.Sockets())
	}
	if last := socket.Freq.Turbo[len(socket.Freq.Turbo)-1]; last.MaxActive < 64 {
		t.Fatalf("turbo table does not cover the widened socket: %+v", last)
	}
	chip := MultiSocket(socket, 8)
	if err := chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if chip.NumCores != 512 || chip.Sockets() != 8 || chip.CoresPerSocket() != 64 {
		t.Fatalf("512-core package: cores=%d sockets=%d cps=%d",
			chip.NumCores, chip.Sockets(), chip.CoresPerSocket())
	}
	if chip.SocketOf(511) != 7 || chip.SocketOf(64) != 1 {
		t.Fatalf("socket assignment: SocketOf(511)=%d SocketOf(64)=%d",
			chip.SocketOf(511), chip.SocketOf(64))
	}
}

func TestValidateRejectsRaggedSockets(t *testing.T) {
	chip := Skylake() // 10 cores
	chip.Topo = Topology{Sockets: 3}
	if err := chip.Validate(); err == nil {
		t.Error("10 cores across 3 sockets validated")
	}
	chip.Topo = Topology{Sockets: -1}
	if err := chip.Validate(); err == nil {
		t.Error("negative socket count validated")
	}
}

func TestMultiSocketTurboIsPerSocket(t *testing.T) {
	// A turbo table covering one socket's cores must satisfy Validate on
	// the multi-socket package: occupancy is socket-local.
	sky := Skylake()
	chip := MultiSocket(sky, 2)
	if last := chip.Freq.Turbo[len(chip.Freq.Turbo)-1]; last.MaxActive >= chip.NumCores {
		t.Skip("turbo table covers the whole package; per-socket rule not exercised")
	}
	if err := chip.Validate(); err != nil {
		t.Fatalf("per-socket turbo table rejected: %v", err)
	}
}
