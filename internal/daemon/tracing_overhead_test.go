package daemon

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestTracingOverhead bounds the cost of round tracing at the nastiest
// plausible rate: a 1 ms control loop where EVERY iteration also records
// a full round (builder, receive span, the phase spans an agent
// synthesises from LastPhases, ring insert). The traced run must finish
// within 5% of the untraced run, plus a fixed slack floor so scheduler
// noise on small absolute times cannot flake the test. In production the
// coordinator traces one round per reallocation interval — orders of
// magnitude rarer than this.
func TestTracingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates synchronisation cost; overhead bound only meaningful on normal builds")
	}
	const iters = 4000
	run := func(withTrace bool) time.Duration {
		chip := platform.Skylake()
		m, err := sim.New(chip)
		if err != nil {
			t.Fatal(err)
		}
		names := []string{"gcc", "cam4"}
		for i, n := range names {
			if err := m.Pin(workload.NewInstance(workload.MustByName(n)), i); err != nil {
				t.Fatal(err)
			}
		}
		specs := specsFor(names, []units.Shares{90, 10}, nil)
		pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
		if err != nil {
			t.Fatal(err)
		}
		dmn, err := New(Config{
			Chip: chip, Policy: pol, Apps: specs, Limit: 50,
			Interval: time.Millisecond,
		}, m.Device(), MachineActuator{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := dmn.AttachVirtual(m); err != nil {
			t.Fatal(err)
		}
		var tr *tracing.Tracer
		if withTrace {
			tr = tracing.New("node", 0)
		}
		began := time.Now()
		for i := 0; i < iters; i++ {
			m.Run(time.Millisecond)
			if tr != nil {
				// What powerapi's agent records per traced round.
				rb := tr.Begin(uint64(i + 1))
				start := rb.Now()
				rb.Span("receive", "", start, rb.Now(), nil)
				ph := dmn.LastPhases()
				rb.SetInterval(ph.Interval)
				at := rb.Now()
				rb.Span("sample", "", at, at+ph.Sample, nil)
				at += ph.Sample
				rb.Span("decide", "", at, at+ph.Decide, nil)
				at += ph.Decide
				rb.Span("actuate", "", at, at+ph.Actuate, nil)
				rb.End()
			}
		}
		took := time.Since(began)
		if err := dmn.Err(); err != nil {
			t.Fatal(err)
		}
		if dmn.Iterations() < iters {
			t.Fatalf("only %d iterations ran", dmn.Iterations())
		}
		return took
	}
	// Interleave and keep per-variant minima: the min filters out one-off
	// scheduler hiccups better than the mean.
	const rounds = 3
	min := func(cur, v time.Duration) time.Duration {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	var bare, traced time.Duration
	for i := 0; i < rounds; i++ {
		bare = min(bare, run(false))
		traced = min(traced, run(true))
	}
	const slack = 50 * time.Millisecond
	budget := bare + bare/20 + slack
	t.Logf("bare %v, traced %v, budget %v", bare, traced, budget)
	if traced > budget {
		t.Errorf("tracing overhead too high: %v vs %v bare (budget %v)", traced, bare, budget)
	}
}
