// Package daemon implements the paper's userspace control daemon
// (Section 5): every control interval (1 second in the paper) it samples
// processor statistics — package (and, on Ryzen, per-core) power, retired
// instructions, and actual frequency — through the MSR device, hands the
// snapshot to the configured policy, and actuates the returned per-core
// P-state requests and park decisions.
//
// The daemon runs in two modes. Virtual mode attaches to a sim.Machine's
// tick hook and fires on virtual time — deterministic, used by all
// experiments. Real-time mode runs on a wall-clock ticker against any
// msr.Device (including the file-backed one) and records per-iteration
// scheduling jitter, making control-loop disturbances (GC pauses, scheduler
// noise — the known risk for a Go control loop) observable.
package daemon

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Actuator applies policy actions to the machine.
type Actuator interface {
	// SetFreq programs a core's P-state request.
	SetFreq(core int, f units.Hertz) error
	// Park forces a core into (or out of) a deep C-state.
	Park(core int, parked bool) error
}

// MachineActuator actuates a simulated machine: P-state requests go through
// the PERF_CTL MSR (the same path the real daemon uses) and park decisions
// through the machine's C-state control.
type MachineActuator struct {
	M *sim.Machine

	// Dev, when set, is the device P-state writes go through instead of
	// the machine's own — chaos runs pass the fault injector's wrapper
	// here so writes to an offline core fail like they would on hardware.
	Dev msr.Device
}

// SetFreq implements Actuator via an MSR write.
func (a MachineActuator) SetFreq(core int, f units.Hertz) error {
	dev := a.Dev
	if dev == nil {
		dev = a.M.Device()
	}
	return dev.Write(core, msr.IA32PerfCtl, msr.EncodePerfCtl(f, a.M.Chip().Freq.Step))
}

// Park implements Actuator via C-state control.
func (a MachineActuator) Park(core int, parked bool) error {
	if !parked && a.M.Idle(core) && a.M.App(core) == nil {
		return nil // nothing to wake
	}
	if parked == a.M.Idle(core) {
		return nil
	}
	return a.M.SetIdle(core, parked)
}

// MSRActuator actuates through a bare MSR device (e.g. the file-backed
// tree). Parking has no MSR, so Park fails; policies that starve require a
// richer actuator.
type MSRActuator struct {
	Dev  msr.Device
	Step units.Hertz
}

// SetFreq implements Actuator.
func (a MSRActuator) SetFreq(core int, f units.Hertz) error {
	return a.Dev.Write(core, msr.IA32PerfCtl, msr.EncodePerfCtl(f, a.Step))
}

// Park implements Actuator by failing: C-states are not reachable through
// the P-state MSRs.
func (a MSRActuator) Park(core int, parked bool) error {
	if !parked {
		return nil
	}
	return fmt.Errorf("daemon: MSR actuator cannot park core %d", core)
}

// Config assembles a daemon.
type Config struct {
	Chip     platform.Chip
	Policy   core.Policy
	Apps     []core.AppSpec
	Limit    units.Watts   // package power limit the policy enforces
	Interval time.Duration // control interval; default 1 s (the paper's)

	// OnSnapshot, when set, observes every control interval's snapshot
	// after the policy has been applied — the hook time-series recorders
	// (e.g. the stability study) attach to. The snapshot's Apps slice is
	// owned by the daemon's double-buffered reuse pool: it is valid during
	// the call and until the next-but-one control interval, after which the
	// loop overwrites it in place. Hooks that retain it must copy.
	OnSnapshot func(core.Snapshot)

	// Metrics, when set, instruments the control loop (iteration counts
	// and latency, actuations, limit changes, jitter) and the underlying
	// telemetry sampler on the given registry.
	Metrics *metrics.Registry

	// Journal, when set, receives one decision entry per control interval:
	// the observed snapshot, the actions emitted, and — when the policy
	// implements core.Explainer — the machine-readable reasons behind them.
	Journal *decisions.Journal

	// Flight, when set, records every policy decision (one event per typed
	// reason) and every actuation into the flight recorder, tags all
	// events — including the MSR traffic recorded underneath — with the
	// control-interval id, and contributes the control-plane description
	// to dump metadata. Nil disables recording.
	Flight *flight.Recorder

	// Triggers configures automatic flight dumps; the zero value disables
	// them. Triggers require Flight to be set.
	Triggers FlightTriggers

	// Resilience, when set, arms degraded mode: telemetry reads retry with
	// backoff, cores with lying or unreadable counters are isolated (policy
	// sees their last good state, actuation drops to a safe P-state floor),
	// actuation errors are tolerated, and a fault-storm watchdog dumps
	// flight state. Nil keeps the historical fail-fast behaviour.
	Resilience *Resilience

	// Ledger, when set, receives every control interval's telemetry for
	// per-app energy attribution, time-series history, anomaly detection,
	// and cost accounting. The daemon feeds it outside the loop lock (the
	// ledger has its own); Reconfigure rebinds it when the app set
	// changes. Nil disables energy accounting.
	Ledger *ledger.Ledger

	// SLO, when set, feeds per-service latency telemetry (p50/p90/p99,
	// arrival rate, queue depth, loss counters) into every snapshot the
	// policy sees. svc.Model implements this; any latency service can.
	// Like Apps, the slice handed to the policy lives in a double-buffered
	// reuse pool — OnSnapshot hooks that retain it must copy.
	SLO SLOSource

	// SLOTargets are the live p99 objectives the daemon stamps onto the
	// service telemetry by name each interval, overriding whatever target
	// the source itself reported. Reconfigure can swap them at runtime,
	// so operators retune objectives without restarting the service.
	SLOTargets []core.SLOTarget
}

// SLOSource supplies per-service latency/SLO telemetry for snapshots.
// FillServiceSLO appends one entry per service to dst and returns the
// extended slice; implementations must not retain dst.
type SLOSource interface {
	FillServiceSLO(dst []core.ServiceSLO) []core.ServiceSLO
}

// FlightTriggers are the daemon-side conditions that snapshot the flight
// recorder to a dump file, turning an anomaly into an offline test case.
type FlightTriggers struct {
	// Dir is where trigger dumps are written (default ".").
	Dir string

	// OverLimitFor fires a dump when observed package power has exceeded
	// the enforced limit for at least this long of run time, continuously.
	// The trigger re-arms when power falls back under the limit. Zero
	// disables.
	OverLimitFor time.Duration

	// IterationSLO fires a dump when one control iteration's wall-clock
	// latency (sample + policy + actuate) exceeds this budget. After
	// firing, the trigger holds off for SLOCooldownIters iterations so a
	// sustained breach produces one dump, not a dump per iteration. Zero
	// disables.
	IterationSLO time.Duration

	// OnDump, when set, observes every trigger firing: the dump path (or
	// an empty string when writing failed), the trigger reason, and the
	// write error if any.
	OnDump func(path, reason string, err error)
}

// SLOCooldownIters is how many iterations the latency trigger holds off
// after firing.
const SLOCooldownIters = 100

// daemonMetrics holds the daemon's metric handles. All handles are
// nil-receiver safe, so a daemon built without a registry pays one nil
// check per event.
type daemonMetrics struct {
	iterations   *metrics.Counter
	iterSeconds  *metrics.Histogram
	jitterSec    *metrics.Histogram
	actuations   *metrics.CounterVec
	sampleErrors *metrics.Counter
	limitWatts   *metrics.Gauge
	limitChanges *metrics.Counter
	pkgWatts     *metrics.Gauge
	parkedCores  *metrics.Gauge
	phaseSeconds *metrics.HistogramVec

	// Cached vec children: With allocates its variadic key per call, so the
	// hot path holds the resolved handles instead.
	actPark      *metrics.Counter
	actWake      *metrics.Counter
	actSetFreq   *metrics.Counter
	phaseSample  *metrics.Histogram
	phaseDecide  *metrics.Histogram
	phaseActuate *metrics.Histogram

	degradedCores     *metrics.Gauge
	degradedIntervals *metrics.Counter
	readmissions      *metrics.Counter
	actuationErrors   *metrics.Counter
	safeFloorActions  *metrics.Counter

	reconfigures *metrics.Counter
}

func newDaemonMetrics(reg *metrics.Registry) daemonMetrics {
	if reg == nil {
		return daemonMetrics{}
	}
	m := daemonMetrics{
		iterations:   reg.Counter("powerd_iterations_total", "Completed control-loop iterations."),
		iterSeconds:  reg.Histogram("powerd_iteration_seconds", "Wall-clock time spent in one control iteration (sample + policy + actuate).", metrics.DefBuckets),
		jitterSec:    reg.Histogram("powerd_jitter_seconds", "Real-time loop lateness per iteration (actual minus nominal interval).", metrics.DefBuckets),
		actuations:   reg.CounterVec("powerd_actuations_total", "Actuations applied, by kind.", "kind"),
		sampleErrors: reg.Counter("powerd_sample_errors_total", "Control iterations aborted by a telemetry sampling error."),
		limitWatts:   reg.Gauge("powerd_limit_watts", "Package power limit currently enforced."),
		limitChanges: reg.Counter("powerd_limit_changes_total", "Times the enforced power limit was changed via SetLimit."),
		pkgWatts:     reg.Gauge("powerd_package_power_watts", "Package power observed at the last control interval."),
		parkedCores:  reg.Gauge("powerd_parked_cores", "Cores currently parked by policy decision."),
		phaseSeconds: reg.HistogramVec("powerd_phase_seconds", "Wall-clock time of one control-iteration phase.", metrics.DefBuckets, "phase"),

		degradedCores:     reg.Gauge("powerd_degraded_cores", "Cores currently isolated from policy control by untrustworthy telemetry."),
		degradedIntervals: reg.Counter("powerd_degraded_intervals_total", "Control intervals that ran with at least one degraded core or a blind package counter."),
		readmissions:      reg.Counter("powerd_readmissions_total", "Cores re-admitted to policy control after sustained healthy telemetry."),
		actuationErrors:   reg.Counter("powerd_actuation_errors_total", "Actuations that failed and were tolerated in resilient mode."),
		safeFloorActions:  reg.Counter("powerd_safe_floor_actions_total", "Actions overridden to the safe P-state floor."),

		reconfigures: reg.Counter("powerd_reconfigures_total", "Live reconfigurations applied to the running daemon."),
	}
	m.actPark = m.actuations.With("park")
	m.actWake = m.actuations.With("wake")
	m.actSetFreq = m.actuations.With("setfreq")
	m.phaseSample = m.phaseSeconds.With("sample")
	m.phaseDecide = m.phaseSeconds.With("decide")
	m.phaseActuate = m.phaseSeconds.With("actuate")
	return m
}

// Daemon is the control loop.
type Daemon struct {
	cfg     Config
	dev     msr.Device
	act     Actuator
	sampler *telemetry.Sampler
	m       daemonMetrics

	// mu guards all mutable state below so HTTP status readers (the obs
	// server's /debug/status) can observe a live loop without racing it.
	mu         sync.RWMutex
	parked     []bool // indexed by core id
	iterations int
	last       core.Snapshot
	started    bool
	acc        time.Duration
	hookErr    error

	// Hot-path reuse buffers. appsBuf double-buffers the snapshot's Apps
	// slice the same way the telemetry sampler double-buffers its Sample:
	// RunIteration flips between the two, so the snapshot it returns (and
	// hands to OnSnapshot) stays intact for one further interval while
	// readers that go through the lock (StatusView, LastSnapshot) always
	// copy. degraded and scrHandled are per-core flag scratch; scrOverride
	// is the action buffer overrideDegraded rewrites into.
	appsBuf     [2][]core.AppState
	appsFlip    int
	svcBuf      [2][]core.ServiceSLO
	svcFlip     int
	degraded    []bool
	scrHandled  []bool
	scrOverride []core.Action

	// lastPhases is the sample/decide/actuate wall-clock breakdown of the
	// most recent completed iteration (guarded by mu) — what round tracing
	// stitches into node-side span trees.
	lastPhases PhaseLatencies

	// Flight-dump trigger state (guarded by mu).
	overSince  time.Duration // run time power first exceeded the limit; -1 while under
	overFired  bool          // over-limit dump already taken this excursion
	sloHoldoff int           // iterations until the latency trigger re-arms

	// Degraded-mode state (guarded by mu); res is nil outside resilient
	// mode and never changes after New.
	res        *Resilience
	health     []coreHealth    // per-app health state machine
	lastGood   []core.AppState // per-app last trustworthy policy input
	stormRun   int             // consecutive unhealthy intervals
	stormFired bool            // watchdog dump already taken this storm

	// Jitter is summarised by a streaming accumulator (mean/max) plus a
	// fixed-size reservoir (percentiles), so real-time loops of any length
	// run in constant memory.
	jitterAcc stats.Accumulator
	jitterRes *stats.Reservoir
}

// New builds a daemon over an MSR device and actuator.
func New(cfg Config, dev msr.Device, act Actuator) (*Daemon, error) {
	if err := cfg.Chip.Validate(); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("daemon: no policy")
	}
	if len(cfg.Apps) == 0 {
		return nil, fmt.Errorf("daemon: no applications")
	}
	if cfg.Limit <= 0 {
		return nil, fmt.Errorf("daemon: power limit must be positive")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	sampler, err := telemetry.NewSampler(dev, cfg.Chip.NumCores, cfg.Chip.Freq.Nom, cfg.Chip.PerCorePower)
	if err != nil {
		return nil, err
	}
	if err := sampler.SetSockets(cfg.Chip.Sockets()); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		sampler.Instrument(cfg.Metrics)
	}
	d := &Daemon{
		cfg:        cfg,
		dev:        dev,
		act:        act,
		sampler:    sampler,
		m:          newDaemonMetrics(cfg.Metrics),
		parked:     make([]bool, cfg.Chip.NumCores),
		degraded:   make([]bool, cfg.Chip.NumCores),
		scrHandled: make([]bool, cfg.Chip.NumCores),
		jitterRes:  stats.NewReservoir(0),
		overSince:  -1,
	}
	d.sizeAppBuffers()
	if cfg.Resilience != nil {
		res := cfg.Resilience.withDefaults(cfg.Chip.SafeFloor())
		d.res = &res
		d.health = make([]coreHealth, len(cfg.Apps))
		d.lastGood = make([]core.AppState, len(cfg.Apps))
		sampler.SetResilient(res.Retry)
	}
	d.m.limitWatts.Set(float64(cfg.Limit))
	d.mergeFlightMeta()
	return d, nil
}

// sizeAppBuffers (re)allocates the per-app reuse buffers for the current
// spec set; called at construction and when Reconfigure changes the apps.
// Caller holds d.mu after construction.
func (d *Daemon) sizeAppBuffers() {
	n := len(d.cfg.Apps)
	d.appsBuf[0] = make([]core.AppState, n)
	d.appsBuf[1] = make([]core.AppState, n)
	// overrideDegraded may emit one action per policy action plus one
	// safe-floor action per untouched app.
	d.scrOverride = make([]core.Action, 0, 2*n)
}

// mergeFlightMeta contributes the current control-plane description to the
// flight recorder's dump metadata; called at construction and again after a
// live reconfiguration so later dumps describe the plane that produced them.
func (d *Daemon) mergeFlightMeta() {
	if d.cfg.Flight == nil {
		return
	}
	apps := make([]flight.MetaApp, len(d.cfg.Apps))
	for i, a := range d.cfg.Apps {
		apps[i] = flight.MetaApp{
			Name: a.Name, Core: a.Core,
			Shares: int(a.Shares), HighPriority: a.HighPriority,
		}
	}
	d.cfg.Flight.MergeMeta(flight.Meta{
		Policy:     d.cfg.Policy.Name(),
		LimitWatts: float64(d.cfg.Limit),
		IntervalNS: d.cfg.Interval.Nanoseconds(),
		Apps:       apps,
	})
}

// microwatts encodes a power reading for an event payload.
func microwatts(w units.Watts) uint64 { return uint64(float64(w) * 1e6) }

// Start applies the policy's initial distribution and primes the sampler.
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return fmt.Errorf("daemon: already started")
	}
	if err := d.apply(d.cfg.Policy.Initial()); err != nil {
		return err
	}
	if err := d.sampler.Prime(); err != nil {
		return err
	}
	d.started = true
	return nil
}

// tolerate reports whether an actuation error should be absorbed instead
// of aborting the iteration: in resilient mode a failed write (a core gone
// dark mid-actuation) costs a metric tick, not the control loop.
func (d *Daemon) tolerate(err error) bool {
	if d.res == nil || err == nil {
		return false
	}
	d.m.actuationErrors.Inc()
	return true
}

// apply actuates a batch of policy actions. Caller holds d.mu.
func (d *Daemon) apply(actions []core.Action) error {
	for _, a := range actions {
		if a.Park {
			if err := d.act.Park(a.Core, true); err != nil {
				if d.tolerate(err) {
					continue
				}
				return fmt.Errorf("daemon: parking core %d: %w", a.Core, err)
			}
			d.parked[a.Core] = true
			d.m.actPark.Inc()
			d.cfg.Flight.Record(flight.Event{
				Kind: flight.KindActuate, Source: flight.SourceDaemon,
				Core: int16(a.Core), Arg: flight.ActPark,
			})
			continue
		}
		if d.parked[a.Core] {
			if err := d.act.Park(a.Core, false); err != nil {
				if d.tolerate(err) {
					continue
				}
				return fmt.Errorf("daemon: waking core %d: %w", a.Core, err)
			}
			d.parked[a.Core] = false
			d.m.actWake.Inc()
			d.cfg.Flight.Record(flight.Event{
				Kind: flight.KindActuate, Source: flight.SourceDaemon,
				Core: int16(a.Core), Arg: flight.ActWake,
			})
		}
		if err := d.act.SetFreq(a.Core, a.Freq); err != nil {
			if d.tolerate(err) {
				continue
			}
			return fmt.Errorf("daemon: setting core %d to %v: %w", a.Core, a.Freq, err)
		}
		d.m.actSetFreq.Inc()
		d.cfg.Flight.Record(flight.Event{
			Kind: flight.KindActuate, Source: flight.SourceDaemon,
			Core: int16(a.Core), Arg: flight.ActSetFreq, Value: uint64(a.Freq),
		})
	}
	return nil
}

// RunIteration performs one control interval of length dt: sample,
// policy update, actuate.
func (d *Daemon) RunIteration(dt time.Duration) (core.Snapshot, error) {
	began := time.Now()
	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		return core.Snapshot{}, fmt.Errorf("daemon: RunIteration before Start")
	}
	// Tag this interval's events — the sampling reads below included —
	// with its id, so the dump's span trees group sample→decide→actuate.
	d.cfg.Flight.BeginInterval(uint32(d.iterations + 1))
	sample, err := d.sampler.Sample(dt)
	if err != nil {
		d.mu.Unlock()
		d.m.sampleErrors.Inc()
		return core.Snapshot{}, err
	}
	d.appsFlip ^= 1
	snap := core.Snapshot{
		Time:         sample.At,
		Limit:        d.cfg.Limit,
		PackagePower: sample.PackagePower,
		Apps:         d.appsBuf[d.appsFlip],
	}
	nDegraded := 0
	if d.res != nil {
		for i := range d.degraded {
			d.degraded[i] = false
		}
	}
	for i, spec := range d.cfg.Apps {
		cs := sample.Cores[spec.Core]
		st := core.AppState{
			Spec:   spec,
			Freq:   cs.ActiveFreq,
			IPS:    cs.IPS,
			Power:  cs.Power,
			Parked: d.parked[spec.Core],
		}
		if d.res != nil {
			if d.updateHealthLocked(i, spec.Core, cs.Status) {
				// Untrusted core: the policy keeps seeing the last state we
				// could vouch for instead of zeros or garbage.
				d.degraded[spec.Core] = true
				nDegraded++
				st.Freq, st.IPS, st.Power = d.lastGood[i].Freq, d.lastGood[i].IPS, d.lastGood[i].Power
			} else {
				d.lastGood[i] = st
			}
		}
		snap.Apps[i] = st
	}
	if d.cfg.SLO != nil {
		d.svcFlip ^= 1
		svcs := d.cfg.SLO.FillServiceSLO(d.svcBuf[d.svcFlip][:0])
		d.svcBuf[d.svcFlip] = svcs
		d.stampTargetsLocked(svcs)
		snap.Services = svcs
	}
	sampleDone := time.Now()
	actions := d.cfg.Policy.Update(snap)
	polName := d.cfg.Policy.Name()
	if d.res != nil {
		if nDegraded > 0 || !sample.PkgStatus.Trustworthy() {
			d.m.degradedIntervals.Inc()
			actions = d.overrideDegraded(actions, sample, d.degraded)
		}
		d.m.degradedCores.Set(float64(nDegraded))
	}
	var reasons []core.Reason
	if ex, ok := d.cfg.Policy.(core.Explainer); ok {
		reasons = ex.LastReasons()
	}
	if d.cfg.Flight != nil {
		if len(reasons) == 0 {
			// Unexplained policies still leave a decision mark per interval.
			d.cfg.Flight.Record(flight.Event{
				Kind: flight.KindDecision, Source: flight.SourceDaemon, Core: -1,
				Value: microwatts(snap.PackagePower), Aux: microwatts(snap.Limit),
			})
		}
		for _, r := range reasons {
			d.cfg.Flight.Record(flight.Event{
				Kind: flight.KindDecision, Source: flight.SourceDaemon, Core: -1,
				Arg:   flight.ReasonCode(r),
				Value: microwatts(snap.PackagePower), Aux: microwatts(snap.Limit),
			})
		}
	}
	decideDone := time.Now()
	if err := d.apply(actions); err != nil {
		d.mu.Unlock()
		return snap, err
	}
	actuateDone := time.Now()
	d.iterations++
	d.last = snap
	d.lastPhases = PhaseLatencies{
		Interval: uint32(d.iterations),
		Sample:   sampleDone.Sub(began),
		Decide:   decideDone.Sub(sampleDone),
		Actuate:  actuateDone.Sub(decideDone),
	}
	phases := d.lastPhases
	nParked := 0
	for _, p := range d.parked {
		if p {
			nParked++
		}
	}
	dumpReason := d.checkTriggersLocked(snap, time.Since(began))
	if d.watchdogLocked(sample.Healthy()) && dumpReason == "" {
		dumpReason = "fault-storm"
	}
	d.mu.Unlock()

	// The ledger appends outside d.mu (it has its own lock); the sample's
	// slices stay valid under the sampler's double-buffer grace, and
	// Append consumes them synchronously.
	if d.cfg.Ledger != nil {
		d.cfg.Ledger.Append(ledger.Input{
			At:           sample.At,
			Dt:           sample.Interval,
			Limit:        snap.Limit,
			PackagePower: sample.PackagePower,
			PkgStatus:    sample.PkgStatus,
			SocketPower:  sample.SocketPower,
			SocketStatus: sample.SocketStatus,
			Cores:        sample.Cores,
		})
	}
	if d.cfg.Journal != nil {
		d.cfg.Journal.Append(decisions.Record(polName, reasons, snap, actions))
	}
	d.m.iterations.Inc()
	d.m.pkgWatts.Set(float64(snap.PackagePower))
	d.m.parkedCores.Set(float64(nParked))
	d.m.iterSeconds.Observe(time.Since(began).Seconds())
	d.m.phaseSample.Observe(phases.Sample.Seconds())
	d.m.phaseDecide.Observe(phases.Decide.Seconds())
	d.m.phaseActuate.Observe(phases.Actuate.Seconds())

	if dumpReason != "" {
		path, derr := d.DumpFlight(dumpReason)
		if d.cfg.Triggers.OnDump != nil {
			d.cfg.Triggers.OnDump(path, dumpReason, derr)
		}
	}

	// The snapshot hook runs outside the lock so it may call back into the
	// daemon's accessors.
	if d.cfg.OnSnapshot != nil {
		d.cfg.OnSnapshot(snap)
	}
	return snap, nil
}

// checkTriggersLocked evaluates the flight-dump triggers against one
// completed iteration and returns the trigger reason to dump for, or "".
// Caller holds d.mu.
func (d *Daemon) checkTriggersLocked(snap core.Snapshot, elapsed time.Duration) string {
	if d.cfg.Flight == nil {
		return ""
	}
	t := d.cfg.Triggers
	if snap.PackagePower > snap.Limit {
		if d.overSince < 0 {
			d.overSince = snap.Time
		}
	} else {
		d.overSince = -1
		d.overFired = false
	}
	if t.OverLimitFor > 0 && !d.overFired && d.overSince >= 0 &&
		snap.Time-d.overSince >= t.OverLimitFor {
		d.overFired = true
		return "power-over-limit"
	}
	if d.sloHoldoff > 0 {
		d.sloHoldoff--
	}
	if t.IterationSLO > 0 && elapsed > t.IterationSLO && d.sloHoldoff == 0 {
		d.sloHoldoff = SLOCooldownIters
		return "iteration-slo"
	}
	return ""
}

// DumpFlight snapshots the flight recorder to a versioned binary file in
// the configured trigger directory and returns its path. Manual callers
// (cmd/powerd's SIGQUIT handler) and automatic triggers share this path.
func (d *Daemon) DumpFlight(reason string) (string, error) {
	if d.cfg.Flight == nil {
		return "", fmt.Errorf("daemon: no flight recorder configured")
	}
	return flight.WriteDumpFile(d.cfg.Triggers.Dir, d.cfg.Flight.Dump(reason))
}

// SetLimit changes the power limit the daemon enforces from the next
// control interval on. Cluster-level coordinators (which redistribute a
// machine-room budget across node daemons) call this at their own cadence.
func (d *Daemon) SetLimit(w units.Watts) error {
	if w <= 0 {
		return fmt.Errorf("daemon: power limit must be positive, got %v", w)
	}
	d.mu.Lock()
	changed := d.cfg.Limit != w
	d.cfg.Limit = w
	d.mu.Unlock()
	if changed {
		d.m.limitChanges.Inc()
	}
	d.m.limitWatts.Set(float64(w))
	return nil
}

// PolicyName reports the configured policy's name.
func (d *Daemon) PolicyName() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cfg.Policy.Name()
}

// Chip reports the platform the daemon controls.
func (d *Daemon) Chip() platform.Chip { return d.cfg.Chip }

// Interval reports the control interval.
func (d *Daemon) Interval() time.Duration { return d.cfg.Interval }

// Apps returns a copy of the currently managed application specs.
func (d *Daemon) Apps() []core.AppSpec {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]core.AppSpec(nil), d.cfg.Apps...)
}

// Limit reports the currently enforced power limit.
func (d *Daemon) Limit() units.Watts {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cfg.Limit
}

// SLOTargets returns a copy of the live per-service p99 objectives.
func (d *Daemon) SLOTargets() []core.SLOTarget {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.cfg.SLOTargets) == 0 {
		return nil
	}
	return append([]core.SLOTarget(nil), d.cfg.SLOTargets...)
}

// Iterations reports completed control intervals.
func (d *Daemon) Iterations() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.iterations
}

// LastSnapshot returns the most recent snapshot. The Apps slice is copied
// out of the loop's reuse buffers, so the result is immutable to the caller.
func (d *Daemon) LastSnapshot() core.Snapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return cloneSnapshot(d.last)
}

// cloneSnapshot deep-copies the Apps and Services slices so readers escape
// the loop's double-buffered reuse pools. Caller holds d.mu (read or write).
func cloneSnapshot(s core.Snapshot) core.Snapshot {
	s.Apps = append([]core.AppState(nil), s.Apps...)
	if s.Services != nil {
		s.Services = append([]core.ServiceSLO(nil), s.Services...)
	}
	return s
}

// stampTargetsLocked overwrites each service entry's Target with the
// daemon's configured objective for that name, if one exists. The loop is
// allocation-free; target lists are short (a handful of services per
// node), so linear scan beats a map here. Caller holds d.mu.
func (d *Daemon) stampTargetsLocked(svcs []core.ServiceSLO) {
	for i := range svcs {
		for _, t := range d.cfg.SLOTargets {
			if t.Service == svcs[i].Name {
				svcs[i].Target = t.P99.Seconds()
				break
			}
		}
	}
}

// Parked reports whether the daemon last left the core parked.
func (d *Daemon) Parked(core int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return core >= 0 && core < len(d.parked) && d.parked[core]
}

// Err returns the first error raised inside the virtual-time hook, if any.
func (d *Daemon) Err() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.hookErr
}

// AttachVirtual starts the daemon and registers it on the machine's tick
// hook so one control iteration fires per configured interval of virtual
// time. Errors inside the hook stop further iterations and surface via
// Err.
func (d *Daemon) AttachVirtual(m *sim.Machine) error {
	if err := d.Start(); err != nil {
		return err
	}
	m.OnTick(func(dt time.Duration) {
		d.mu.Lock()
		if d.hookErr != nil {
			d.mu.Unlock()
			return
		}
		d.acc += dt
		if d.acc < d.cfg.Interval {
			d.mu.Unlock()
			return
		}
		interval := d.acc
		d.acc = 0
		d.mu.Unlock()
		if _, err := d.RunIteration(interval); err != nil {
			d.mu.Lock()
			d.hookErr = err
			d.mu.Unlock()
		}
	})
	return nil
}

// RunRealtime runs the control loop on a wall-clock ticker for the given
// number of iterations or until the context is cancelled, recording
// per-iteration lateness. The daemon must not already be attached to a
// virtual machine.
func (d *Daemon) RunRealtime(ctx context.Context, iterations int) error {
	if err := d.Start(); err != nil {
		return err
	}
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	prev := time.Now()
	for i := 0; i < iterations; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case now := <-ticker.C:
			actual := now.Sub(prev)
			prev = now
			late := (actual - d.cfg.Interval).Seconds()
			if late < 0 {
				late = 0
			}
			d.mu.Lock()
			d.jitterAcc.Add(late)
			d.jitterRes.Add(late)
			d.mu.Unlock()
			d.m.jitterSec.Observe(late)
			if _, err := d.RunIteration(actual); err != nil {
				return err
			}
		}
	}
	return nil
}

// JitterStats summarises real-time loop lateness in seconds.
type JitterStats struct {
	Samples int
	Mean    float64
	Max     float64
	P50     float64
	P90     float64
	P99     float64
}

// Jitter reports the lateness distribution observed by RunRealtime. The
// mean and max are exact (streaming accumulator); the percentile is
// estimated from a fixed-size reservoir, so memory stays constant no
// matter how long the loop runs.
func (d *Daemon) Jitter() JitterStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.jitterLocked()
}

// jitterLocked builds JitterStats. Caller holds d.mu (read or write).
// Quantiles sorts the reservoir once for all three percentiles.
func (d *Daemon) jitterLocked() JitterStats {
	qs := d.jitterRes.Quantiles(50, 90, 99)
	js := JitterStats{
		Samples: d.jitterAcc.Count(),
		Mean:    d.jitterAcc.Mean(),
		Max:     d.jitterAcc.Max(),
		P50:     qs[0],
		P90:     qs[1],
		P99:     qs[2],
	}
	if js.Samples == 0 {
		js.Mean, js.Max = 0, 0
	}
	return js
}

// PhaseLatencies is the wall-clock breakdown of one control iteration
// into the paper's sample → decide → actuate pipeline: telemetry
// sampling and snapshot assembly, the policy update (including reason
// extraction and degraded-mode overrides), and actuation of the
// returned actions. Interval is the flight-recorder interval id the
// breakdown belongs to, so node-side round traces can link both.
type PhaseLatencies struct {
	Interval uint32
	Sample   time.Duration
	Decide   time.Duration
	Actuate  time.Duration
}

// Total is the summed phase time.
func (p PhaseLatencies) Total() time.Duration { return p.Sample + p.Decide + p.Actuate }

// LastPhases reports the phase breakdown of the most recent completed
// iteration (zero before the first).
func (d *Daemon) LastPhases() PhaseLatencies {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastPhases
}

// StatusView is a coherent point-in-time view of the control loop: every
// field was read under one lock acquisition, so a reader can never pair,
// say, a new policy name with the previous configuration's limit while a
// live reconfiguration is in flight.
type StatusView struct {
	Policy     string
	Iterations int
	Limit      units.Watts
	Snapshot   core.Snapshot
	Apps       []core.AppSpec
	Phases     PhaseLatencies
	Jitter     JitterStats
	Err        error
}

// StatusView snapshots the daemon under a single lock acquisition. HTTP
// status and metrics exposition should prefer this over stitching
// together individual accessors, each of which locks separately.
func (d *Daemon) StatusView() StatusView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return StatusView{
		Policy:     d.cfg.Policy.Name(),
		Iterations: d.iterations,
		Limit:      d.cfg.Limit,
		Snapshot:   cloneSnapshot(d.last),
		Apps:       append([]core.AppSpec(nil), d.cfg.Apps...),
		Phases:     d.lastPhases,
		Jitter:     d.jitterLocked(),
		Err:        d.hookErr,
	}
}
