//go:build race

package daemon

// raceEnabled reports whether the race detector is compiled in; timing
// assertions skip under it because instrumentation inflates every
// synchronisation operation by an order of magnitude.
const raceEnabled = true
