package daemon

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/flight/flighttest"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// flightRun drives a shares-policy virtual run with a flight recorder and
// the given trigger config, returning the recorder and daemon.
func flightRun(t *testing.T, trig FlightTriggers, limit units.Watts, d time.Duration) (*flight.Recorder, *Daemon) {
	t.Helper()
	chip := platform.Skylake()
	rec := flight.New(0)
	flighttest.DumpOnFailure(t, rec)
	m, err := sim.New(chip, sim.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"gcc", "cam4"}
	for i, n := range names {
		if err := m.Pin(workload.NewInstance(workload.MustByName(n)), i); err != nil {
			t.Fatal(err)
		}
	}
	specs := specsFor(names, []units.Shares{90, 10}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dmn, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit,
		Flight: rec, Triggers: trig,
	}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := dmn.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(d)
	if err := dmn.Err(); err != nil {
		t.Fatal(err)
	}
	return rec, dmn
}

// TestFlightRecordsControlLoop checks the daemon-side recording contract:
// every interval leaves typed decision events, actuations are logged, MSR
// traffic is tagged with the interval that issued it, and the control-plane
// metadata lands in the dump.
func TestFlightRecordsControlLoop(t *testing.T) {
	rec, dmn := flightRun(t, FlightTriggers{}, 50, 10*time.Second)
	d := rec.Dump("test")

	if d.Meta.Policy != "frequency-shares" || d.Meta.LimitWatts != 50 {
		t.Errorf("control meta: %+v", d.Meta)
	}
	if len(d.Meta.Apps) != 2 || d.Meta.Apps[0].Name != "gcc" || d.Meta.Apps[0].Shares != 90 {
		t.Errorf("apps meta: %+v", d.Meta.Apps)
	}
	if d.Meta.Chip == "" || d.Meta.NumCores == 0 {
		t.Errorf("machine meta missing: %+v", d.Meta)
	}

	decisionsByIvl := map[uint32]int{}
	var actuates, reads int
	var sawReason bool
	for _, e := range d.Events {
		switch e.Kind {
		case flight.KindDecision:
			decisionsByIvl[e.Interval]++
			if flight.ReasonFromCode(e.Arg) != core.Reason("unknown") {
				sawReason = true
			}
			if e.Aux == 0 {
				t.Fatalf("decision without limit payload: %+v", e)
			}
		case flight.KindActuate:
			actuates++
		case flight.KindMSRRead:
			reads++
		}
	}
	if !sawReason {
		t.Error("no decision carried a typed reason")
	}
	if actuates == 0 || reads == 0 {
		t.Errorf("actuates=%d reads=%d, want both > 0", actuates, reads)
	}
	for ivl := uint32(1); int(ivl) <= dmn.Iterations(); ivl++ {
		if decisionsByIvl[ivl] == 0 {
			t.Errorf("interval %d has no decision events", ivl)
		}
	}
	// The sampler's reads must carry the interval that issued them, so span
	// trees can attribute sample latency.
	var taggedReads int
	for _, e := range d.Events {
		if e.Kind == flight.KindMSRRead && e.Interval >= 1 {
			taggedReads++
		}
	}
	if taggedReads == 0 {
		t.Error("no MSR read tagged with a control interval")
	}
}

// TestOverLimitTriggerDumps checks that sustained power over the limit
// snapshots the ring to a dump file exactly once per excursion.
func TestOverLimitTriggerDumps(t *testing.T) {
	dir := t.TempDir()
	var fired []string
	trig := FlightTriggers{
		Dir:          dir,
		OverLimitFor: 2 * time.Second,
		OnDump: func(path, reason string, err error) {
			if err != nil {
				t.Errorf("dump failed: %v", err)
			}
			fired = append(fired, reason)
		},
	}
	// 14 W is below what the mix draws even throttled, so the excursion is
	// sustained and the trigger must fire — but only once.
	flightRun(t, trig, 14, 20*time.Second)
	if len(fired) != 1 || fired[0] != "power-over-limit" {
		t.Fatalf("trigger firings = %v, want exactly one power-over-limit", fired)
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.fr"))
	if err != nil || len(files) != 1 {
		t.Fatalf("dump files = %v (err %v)", files, err)
	}
	if !strings.Contains(files[0], "power-over-limit") {
		t.Errorf("dump file name %q lacks trigger reason", files[0])
	}
	d, err := flight.ReadDumpFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Reason != "power-over-limit" || len(d.Events) == 0 {
		t.Errorf("dump: reason %q, %d events", d.Meta.Reason, len(d.Events))
	}
}

// TestIterationSLOTriggerHoldsOff checks the latency trigger fires on a
// breach and then holds off instead of dumping every iteration.
func TestIterationSLOTriggerHoldsOff(t *testing.T) {
	dir := t.TempDir()
	var fired int
	trig := FlightTriggers{
		Dir:          dir,
		IterationSLO: time.Nanosecond, // every iteration breaches
		OnDump: func(path, reason string, err error) {
			if err != nil {
				t.Errorf("dump failed: %v", err)
			}
			if reason != "iteration-slo" {
				t.Errorf("reason = %q", reason)
			}
			fired++
		},
	}
	_, dmn := flightRun(t, trig, 50, 30*time.Second)
	iters := dmn.Iterations()
	if iters >= SLOCooldownIters {
		t.Fatalf("test assumes < %d iterations, got %d", SLOCooldownIters, iters)
	}
	if fired != 1 {
		t.Errorf("SLO trigger fired %d times over %d breaching iterations, want 1 (holdoff)", fired, iters)
	}
}

// TestRecorderOverhead bounds the cost of always-on recording: the same
// virtual run with the recorder attached must finish within 5% of the run
// without it (plus a fixed slack floor so scheduler noise on tiny
// absolute times cannot flake the test).
func TestRecorderOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates synchronisation cost; overhead bound only meaningful on normal builds")
	}
	run := func(withRec bool) time.Duration {
		chip := platform.Skylake()
		var opts []sim.Option
		var rec *flight.Recorder
		if withRec {
			rec = flight.New(0)
			opts = append(opts, sim.WithFlightRecorder(rec))
		}
		m, err := sim.New(chip, opts...)
		if err != nil {
			t.Fatal(err)
		}
		names := []string{"gcc", "cam4"}
		for i, n := range names {
			if err := m.Pin(workload.NewInstance(workload.MustByName(n)), i); err != nil {
				t.Fatal(err)
			}
		}
		specs := specsFor(names, []units.Shares{90, 10}, nil)
		pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
		if err != nil {
			t.Fatal(err)
		}
		dmn, err := New(Config{
			Chip: chip, Policy: pol, Apps: specs, Limit: 50,
			Interval: 100 * time.Millisecond, Flight: rec,
		}, m.Device(), MachineActuator{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := dmn.AttachVirtual(m); err != nil {
			t.Fatal(err)
		}
		began := time.Now()
		m.Run(60 * time.Second) // 600 control iterations, 60k ticks
		took := time.Since(began)
		if err := dmn.Err(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	// Interleave and keep per-variant minima: the min filters out one-off
	// scheduler hiccups better than the mean.
	const rounds = 3
	min := func(cur, v time.Duration) time.Duration {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	var bare, rec time.Duration
	for i := 0; i < rounds; i++ {
		bare = min(bare, run(false))
		rec = min(rec, run(true))
	}
	const slack = 50 * time.Millisecond
	budget := bare + bare/20 + slack
	t.Logf("bare %v, recorded %v, budget %v", bare, rec, budget)
	if rec > budget {
		t.Errorf("recording overhead too high: %v vs %v bare (budget %v)", rec, bare, budget)
	}
}
