package daemon

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/units"
)

// TestScrapesDuringBufferReuse hammers every observer entry point —
// StatusView, LastSnapshot, Parked, Jitter — from scraper goroutines
// while the control loop recycles its snapshot buffers underneath them.
// Under `go test -race` (CI's configuration) this proves the reuse pool
// never leaks a live buffer to a reader: the scrapers deliberately WRITE
// into the Apps slices they get back, which the race detector flags the
// moment a view aliases the loop's double buffer instead of copying.
func TestScrapesDuringBufferReuse(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"gcc", "cam4", "leela", "cactusBSSN"}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, []units.Shares{40, 30, 20, 10}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs,
		Limit: chip.RAPLMax * 6 / 10, Metrics: metrics.NewRegistry(),
	}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	iters := 400
	if raceEnabled {
		iters = 150 // the detector makes each iteration ~10x slower
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				sv := d.StatusView()
				for i := range sv.Snapshot.Apps {
					sv.Snapshot.Apps[i].IPS = -1 // must be a private copy
				}
				snap := d.LastSnapshot()
				for i := range snap.Apps {
					snap.Apps[i].Power = -1
				}
				if len(snap.Apps) > 0 && snap.Apps[0].Power != -1 {
					t.Error("snapshot copy lost a write")
					return
				}
				d.Parked(0)
				d.Jitter()
			}
		}()
	}

	for i := 0; i < iters; i++ {
		m.Step()
		if _, err := d.RunIteration(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	// The loop's own view stayed coherent despite the scrapers' writes.
	last := d.LastSnapshot()
	if len(last.Apps) != len(specs) {
		t.Fatalf("apps = %d, want %d", len(last.Apps), len(specs))
	}
	for _, a := range last.Apps {
		if a.IPS < 0 || a.Power < 0 {
			t.Fatalf("scraper write leaked into the loop's buffers: %+v", a)
		}
	}
}
