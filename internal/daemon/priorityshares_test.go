package daemon

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/units"
)

// Closed loop for the Section 5.1 composition: priority classes with
// within-class shares. At 30 W even the two HP apps contend, so their
// 90/30 share ordering must show in delivered frequency while the LP class
// starves; power stays at the limit.
func TestPrioritySharesClosedLoop(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"cactusBSSN", "leela", "cactusBSSN", "cactusBSSN",
		"leela", "leela", "cactusBSSN", "leela", "cactusBSSN", "leela"}
	m := buildMachine(t, chip, names)
	specs := specsFor(names,
		[]units.Shares{90, 30, 50, 50, 50, 50, 50, 50, 50, 50},
		[]bool{true, true, false, false, false, false, false, false, false, false})
	pol, err := core.NewPriorityShares(chip, specs, core.PriorityConfig{Limit: 30})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 30},
		m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(90 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	snap := d.LastSnapshot()
	if snap.PackagePower > 30*1.05 {
		t.Errorf("package %v over the 30 W limit", snap.PackagePower)
	}
	// Within-HP share differentiation survives the closed loop.
	if snap.Apps[0].Freq <= snap.Apps[1].Freq {
		t.Errorf("HP share ordering lost: %v vs %v", snap.Apps[0].Freq, snap.Apps[1].Freq)
	}
	// Whatever LP state results, parked cores must be consistent between
	// the daemon and the machine.
	for i := 2; i < 10; i++ {
		if d.Parked(i) != m.Idle(i) {
			t.Errorf("core %d park state diverged", i)
		}
	}
}
