package daemon

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/metrics/decisions"
	"repro/internal/units"
)

// Reconfig describes a live configuration change applied to a running
// daemon through Reconfigure. Zero-valued fields keep their current
// setting; a non-nil Apps requires a Policy rebuilt over those specs,
// because policies capture their specs at construction.
type Reconfig struct {
	Policy core.Policy    // new policy; nil keeps the current one
	Apps   []core.AppSpec // new app specs; nil keeps the current ones
	Limit  units.Watts    // new power limit; 0 keeps the current one

	// SLOTargets replaces the live p99 objectives the daemon stamps onto
	// service telemetry; nil keeps the current set, an empty non-nil
	// slice clears every objective.
	SLOTargets []core.SLOTarget
}

// validate applies the same checks construction does, against the daemon's
// chip. It mutates nothing.
func (rc Reconfig) validate(d *Daemon) error {
	if rc.Policy == nil && rc.Apps == nil && rc.Limit == 0 && rc.SLOTargets == nil {
		return fmt.Errorf("daemon: empty reconfiguration")
	}
	for i, t := range rc.SLOTargets {
		if t.Service == "" {
			return fmt.Errorf("daemon: SLO target %d has no service name", i)
		}
		if t.P99 <= 0 {
			return fmt.Errorf("daemon: SLO target for %s must have a positive p99, got %v", t.Service, t.P99)
		}
		for _, u := range rc.SLOTargets[:i] {
			if u.Service == t.Service {
				return fmt.Errorf("daemon: duplicate SLO target for %s", t.Service)
			}
		}
	}
	if rc.Apps != nil && rc.Policy == nil {
		return fmt.Errorf("daemon: changing apps requires a policy rebuilt over the new specs")
	}
	if rc.Limit < 0 {
		return fmt.Errorf("daemon: power limit must be positive, got %v", rc.Limit)
	}
	if rc.Apps != nil {
		if len(rc.Apps) == 0 {
			return fmt.Errorf("daemon: no applications")
		}
		seen := make(map[int]bool, len(rc.Apps))
		for _, s := range rc.Apps {
			if s.Name == "" {
				return fmt.Errorf("daemon: app on core %d has no name", s.Core)
			}
			if s.Core < 0 || s.Core >= d.cfg.Chip.NumCores {
				return fmt.Errorf("daemon: app %s pinned to core %d beyond chip's %d cores",
					s.Name, s.Core, d.cfg.Chip.NumCores)
			}
			if seen[s.Core] {
				return fmt.Errorf("daemon: core %d assigned twice", s.Core)
			}
			seen[s.Core] = true
		}
	}
	return nil
}

// Reconfigure changes the daemon's policy, managed applications, and/or
// power limit without a restart. The change is validated exactly like
// construction, applied atomically between control intervals (the sampler
// keeps its counters, so no sample is dropped), journaled in the decision
// log with ReasonReconfigure, and recorded in the flight recorder as
// KindReconfigure events. When the policy changes, every parked core is
// woken and the new policy's initial distribution is applied immediately;
// the next control interval runs entirely under the new configuration.
func (d *Daemon) Reconfigure(rc Reconfig) error {
	if err := rc.validate(d); err != nil {
		return err
	}

	d.mu.Lock()
	prevLimit := d.cfg.Limit
	var codes []uint32
	if rc.Policy != nil {
		d.cfg.Policy = rc.Policy
		codes = append(codes, flight.ReconfigPolicy)
	}
	if rc.Apps != nil {
		d.cfg.Apps = append([]core.AppSpec(nil), rc.Apps...)
		d.sizeAppBuffers()
		d.cfg.Ledger.Reconfigure(d.cfg.Apps)
		codes = append(codes, flight.ReconfigShares)
		if d.res != nil {
			// Health state is per-app; a new app set starts trusted.
			d.health = make([]coreHealth, len(d.cfg.Apps))
			d.lastGood = make([]core.AppState, len(d.cfg.Apps))
		}
	}
	if rc.Limit > 0 && rc.Limit != prevLimit {
		d.cfg.Limit = rc.Limit
		codes = append(codes, flight.ReconfigLimit)
	}
	if rc.SLOTargets != nil {
		d.cfg.SLOTargets = append([]core.SLOTarget(nil), rc.SLOTargets...)
		codes = append(codes, flight.ReconfigSLO)
	}
	for _, c := range codes {
		d.cfg.Flight.Record(flight.Event{
			Kind: flight.KindReconfigure, Source: flight.SourceControl, Core: -1,
			Arg: c, Value: microwatts(d.cfg.Limit), Aux: microwatts(prevLimit),
		})
	}

	// A swapped policy starts from the clean slate its constructor assumed:
	// wake anything the old policy parked, then apply the new initial
	// distribution.
	var actions []core.Action
	if rc.Policy != nil && d.started {
		for c, p := range d.parked {
			if !p {
				continue
			}
			if err := d.act.Park(c, false); err != nil {
				if !d.tolerate(err) {
					d.mu.Unlock()
					return fmt.Errorf("daemon: reconfigure waking core %d: %w", c, err)
				}
				continue
			}
			d.parked[c] = false
			d.m.actWake.Inc()
			d.cfg.Flight.Record(flight.Event{
				Kind: flight.KindActuate, Source: flight.SourceDaemon,
				Core: int16(c), Arg: flight.ActWake,
			})
		}
		actions = d.cfg.Policy.Initial()
		if err := d.apply(actions); err != nil {
			d.mu.Unlock()
			return fmt.Errorf("daemon: reconfigure initial distribution: %w", err)
		}
	}
	polName := d.cfg.Policy.Name()
	snap := d.last
	snap.Limit = d.cfg.Limit
	d.mergeFlightMeta()
	d.mu.Unlock()

	d.m.reconfigures.Inc()
	d.m.limitWatts.Set(float64(d.Limit()))
	if rc.Limit > 0 && rc.Limit != prevLimit {
		d.m.limitChanges.Inc()
	}
	if d.cfg.Journal != nil {
		d.cfg.Journal.Append(decisions.Record(polName,
			[]core.Reason{core.ReasonReconfigure}, snap, actions))
	}
	return nil
}
