package daemon

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/units"
)

// flakyDevice wraps an MSR device and fails reads after a countdown,
// injecting the kind of fault a hot-unplugged or permission-lost
// /dev/cpu/N/msr produces mid-run.
type flakyDevice struct {
	inner     msr.Device
	failAfter int // reads remaining before failure
}

func (f *flakyDevice) Read(cpu int, reg uint32) (uint64, error) {
	if f.failAfter <= 0 {
		return 0, fmt.Errorf("injected: msr read failure")
	}
	f.failAfter--
	return f.inner.Read(cpu, reg)
}

func (f *flakyDevice) Write(cpu int, reg uint32, val uint64) error {
	return f.inner.Write(cpu, reg, val)
}

// failingActuator rejects every actuation.
type failingActuator struct{}

func (failingActuator) SetFreq(int, units.Hertz) error {
	return fmt.Errorf("injected: actuator failure")
}
func (failingActuator) Park(int, bool) error {
	return fmt.Errorf("injected: park failure")
}

func flakySetup(t *testing.T, dev msr.Device, act Actuator) *Daemon {
	t.Helper()
	chip := platform.Skylake()
	specs := specsFor([]string{"gcc", "leela"}, []units.Shares{60, 40}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50}, dev, act)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSamplerFaultSurfacesFromRunIteration(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc", "leela"})
	flaky := &flakyDevice{inner: m.Device(), failAfter: 1000}
	d := flakySetup(t, flaky, MachineActuator{M: m})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn down the budget: eventually an iteration must surface the
	// injected error rather than panic or fabricate data.
	var sawErr bool
	for i := 0; i < 100; i++ {
		m.Run(time.Second)
		if _, err := d.RunIteration(time.Second); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected MSR fault never surfaced")
	}
}

func TestSamplerFaultStopsVirtualHook(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc", "leela"})
	flaky := &flakyDevice{inner: m.Device(), failAfter: 200}
	d := flakySetup(t, flaky, MachineActuator{M: m})
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(60 * time.Second)
	if d.Err() == nil {
		t.Fatal("hook error not recorded")
	}
	after := d.Iterations()
	m.Run(10 * time.Second)
	if d.Iterations() != after {
		t.Error("iterations continued after a fatal hook error")
	}
}

func TestActuatorFaultSurfacesFromStart(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc", "leela"})
	d := flakySetup(t, m.Device(), failingActuator{})
	if err := d.Start(); err == nil {
		t.Fatal("failing actuator accepted at Start")
	}
}

func TestConstructionFailsWhenPowerUnitUnreadable(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc", "leela"})
	// Fail immediately: even the sampler's constructor read is rejected.
	flaky := &flakyDevice{inner: m.Device(), failAfter: 0}
	specs := specsFor([]string{"gcc", "leela"}, []units.Shares{60, 40}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50},
		flaky, MachineActuator{M: m}); err == nil {
		t.Fatal("unreadable power unit accepted")
	}
}
