package daemon

import (
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Resilience configures the daemon's degraded mode: what it does when
// telemetry lies, reads fail, or cores go dark. Nil (the default) keeps the
// historical fail-fast semantics — any sampling or actuation error aborts
// the iteration and, in virtual mode, stops the loop.
type Resilience struct {
	// SafeFloor is the P-state programmed on a core whose telemetry can no
	// longer be trusted: slow enough that a core running blind cannot blow
	// the package budget. Zero takes the chip's SafeFloor().
	SafeFloor units.Hertz

	// Retry bounds the sampler's per-read retry. The zero value takes
	// telemetry.DefaultRetry.
	Retry telemetry.RetryPolicy

	// ReadmitAfter is how many consecutive trustworthy intervals a degraded
	// core must produce before the daemon hands it back to the policy.
	// Values below 1 take the default of 2.
	ReadmitAfter int

	// StormIters, when positive, arms the fault-storm watchdog: after this
	// many consecutive unhealthy intervals the daemon dumps flight state
	// (reason "fault-storm") and re-arms once the storm clears.
	StormIters int
}

// withDefaults normalises the configuration against the chip.
func (r Resilience) withDefaults(floor units.Hertz) Resilience {
	if r.SafeFloor <= 0 {
		r.SafeFloor = floor
	}
	if r.ReadmitAfter < 1 {
		r.ReadmitAfter = 2
	}
	return r
}

// coreHealth is the daemon's per-app health state machine.
type coreHealth struct {
	degraded   bool
	healthyRun int // consecutive trustworthy intervals while degraded
}

// updateHealth advances one app's health state from its core's sample
// status and reports whether the app is currently degraded (policy input
// frozen, actuation forced to the safe floor). Caller holds d.mu.
func (d *Daemon) updateHealthLocked(app int, coreID int, st telemetry.CoreStatus) bool {
	h := &d.health[app]
	if st.Trustworthy() {
		if !h.degraded {
			return false
		}
		h.healthyRun++
		if h.healthyRun >= d.res.ReadmitAfter {
			h.degraded = false
			h.healthyRun = 0
			d.m.readmissions.Inc()
			d.cfg.Flight.Record(flight.Event{
				Kind: flight.KindHealth, Source: flight.SourceDaemon,
				Core: int16(coreID), Arg: flight.HealthReadmitted, Value: uint64(st),
			})
			return false
		}
		return true
	}
	h.healthyRun = 0
	if !h.degraded {
		h.degraded = true
		d.cfg.Flight.Record(flight.Event{
			Kind: flight.KindHealth, Source: flight.SourceDaemon,
			Core: int16(coreID), Arg: flight.HealthDegraded, Value: uint64(st),
		})
	}
	return true
}

// overrideDegraded rewrites the policy's actions for degraded operation:
// actions on dark cores (whose MSRs fail in both directions) are dropped,
// actions on otherwise-degraded cores are clamped to the safe floor, and
// degraded cores the policy left alone get an explicit safe-floor action.
// When the package reading itself is untrustworthy every core is forced to
// the floor — with the energy counter lying, no frequency above the floor
// can be proven within budget. Caller holds d.mu.
func (d *Daemon) overrideDegraded(actions []core.Action, sample telemetry.Sample, degraded []bool) []core.Action {
	pkgBlind := !sample.PkgStatus.Trustworthy()
	dark := func(c int) bool { return sample.Cores[c].Status == telemetry.StatusDark }
	out := d.scrOverride[:0]
	handled := d.scrHandled
	for i := range handled {
		handled[i] = false
	}
	for _, a := range actions {
		handled[a.Core] = true
		switch {
		case dark(a.Core):
			// No point actuating a core whose register file is gone; the
			// write would fail and teach us nothing.
			continue
		case a.Park:
			// Parking is always safe: a parked core draws C-state power.
			out = append(out, a)
		case degraded[a.Core] || pkgBlind:
			d.m.safeFloorActions.Inc()
			out = append(out, core.Action{Core: a.Core, Freq: d.res.SafeFloor})
		default:
			out = append(out, a)
		}
	}
	// Cores the policy left untouched still need forcing down when they —
	// or the package counter — went untrustworthy.
	for _, spec := range d.cfg.Apps {
		c := spec.Core
		if handled[c] || dark(c) || d.parked[c] {
			continue
		}
		if degraded[c] || pkgBlind {
			d.m.safeFloorActions.Inc()
			out = append(out, core.Action{Core: c, Freq: d.res.SafeFloor})
		}
	}
	return out
}

// watchdogLocked advances the fault-storm watchdog and reports whether it
// fired this interval. Caller holds d.mu.
func (d *Daemon) watchdogLocked(healthy bool) bool {
	if healthy {
		d.stormRun = 0
		d.stormFired = false
		return false
	}
	d.stormRun++
	if d.res == nil || d.res.StormIters <= 0 || d.stormFired || d.stormRun < d.res.StormIters {
		return false
	}
	d.stormFired = true
	return true
}
