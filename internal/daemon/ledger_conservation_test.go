package daemon

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestLedgerConservationUnderChaos runs the energy ledger inside the
// control loop against every fault class and holds it to the accounting
// identity that makes /debug/energy trustworthy:
//
//	attributed + unattributed + excluded == total   (exact, in µJ)
//
// Faulty telemetry (stuck counters, torn reads, dark cores) must land in
// the excluded account — never be smeared across apps — and the identity
// must hold bit-exactly through injection, the fault window, and recovery.
func TestLedgerConservationUnderChaos(t *testing.T) {
	for _, fc := range chaosFaults {
		t.Run(fc.name, func(t *testing.T) {
			chip := platform.Skylake()
			limit := units.Watts(35)
			names := []string{"gcc", "cam4", "leela"}

			rec := flight.New(flight.DefaultCapacity)
			m, err := sim.New(chip, sim.WithFlightRecorder(rec))
			if err != nil {
				t.Fatal(err)
			}
			for i, n := range names {
				if err := m.Pin(newInstanceFor(n), i); err != nil {
					t.Fatal(err)
				}
			}
			m.SetPowerLimit(limit)

			sched, err := fault.ParseSchedule(fc.sched)
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.New(sched, 1)
			inj.Flight(rec)
			inj.Drive(m)

			specs := specsFor(names, []units.Shares{60, 30, 10}, nil)
			pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
			if err != nil {
				t.Fatal(err)
			}
			led, err := ledger.New(ledger.Config{Chip: chip, Apps: specs, Flight: rec})
			if err != nil {
				t.Fatal(err)
			}
			dev := inj.WrapDevice(m.Device())
			d, err := New(Config{
				Chip: chip, Policy: pol, Apps: specs, Limit: limit,
				Interval:   20 * time.Millisecond,
				Flight:     rec,
				Ledger:     led,
				Triggers:   FlightTriggers{Dir: t.TempDir()},
				Resilience: &Resilience{StormIters: 5},
			}, dev, MachineActuator{M: m, Dev: dev})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.AttachVirtual(m); err != nil {
				t.Fatal(err)
			}
			m.Run(1500 * time.Millisecond)
			if err := d.Err(); err != nil {
				t.Fatalf("control loop died: %v", err)
			}

			s := led.Summarize()
			if s.Intervals != uint64(d.Iterations()) {
				t.Errorf("ledger saw %d intervals, loop ran %d", s.Intervals, d.Iterations())
			}
			if s.TotalUJ == 0 {
				t.Fatal("ledger accumulated no energy")
			}
			if got := led.AttributedUJ() + s.UnattributedUJ + s.ExcludedUJ; got != s.TotalUJ {
				t.Errorf("conservation violated under %s: attributed %d + unattributed %d + excluded %d = %d, want %d",
					fc.name, led.AttributedUJ(), s.UnattributedUJ, s.ExcludedUJ, got, s.TotalUJ)
			}
			// The run is mostly healthy (fault window is 200 ms of 1.5 s), so
			// attribution must actually have happened.
			if led.AttributedUJ() == 0 {
				t.Error("nothing attributed across a mostly-healthy run")
			}
			for i, a := range s.Apps {
				if a.TotalUJ == 0 {
					t.Errorf("app %d (%s) got no energy despite running throughout", i, a.Name)
				}
			}
			// The ledger's flight events must replay to the same accounts the
			// live ledger reports — the chaos run is exactly when the two
			// could silently diverge.
			r := ledger.Rebuild(rec.Dump("conservation").Events)
			if r.TotalUJ != s.TotalUJ || r.UnattributedUJ != s.UnattributedUJ || r.ExcludedUJ != s.ExcludedUJ {
				t.Errorf("replay diverged: rebuilt %d/%d/%d, live %d/%d/%d",
					r.TotalUJ, r.UnattributedUJ, r.ExcludedUJ,
					s.TotalUJ, s.UnattributedUJ, s.ExcludedUJ)
			}
			for i := range s.Apps {
				if r.AppUJ[i] != s.Apps[i].TotalUJ {
					t.Errorf("replay app %d: %d uJ, live %d uJ", i, r.AppUJ[i], s.Apps[i].TotalUJ)
				}
			}
		})
	}
}
