package daemon

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
)

// The paper's Section 2.1 synergy: "core idling, even when there are jobs
// waiting to execute, can be useful to provide more power... to high
// priority tasks running on the remaining active cores." When the priority
// policy starves the LP class, the parked cores must descend into the
// deepest C-state so the freed power is real.
func TestStarvedCoresReachDeepIdle(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"cactusBSSN", "cactusBSSN", "cactusBSSN",
		"leela", "leela", "leela", "leela", "leela", "leela", "leela"}
	hp := []bool{true, true, true, false, false, false, false, false, false, false}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, nil, hp)
	pol, err := core.NewPriority(chip, specs, core.PriorityConfig{Limit: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 40},
		m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(30 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	deepest := len(chip.CStates) - 1
	for i := 3; i < 10; i++ {
		if !d.Parked(i) {
			t.Fatalf("LP core %d not starved", i)
		}
		if got := m.CurrentCState(i); got != deepest {
			t.Errorf("starved core %d in C-state %d, want deepest %d", i, got, deepest)
		}
	}
	// HP cores are active: no C-state.
	for i := 0; i < 3; i++ {
		if got := m.CurrentCState(i); got != -1 {
			t.Errorf("HP core %d reports C-state %d", i, got)
		}
	}
}
