package daemon

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/platform"
	"repro/internal/units"
)

func TestReconfigureRejects(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"gcc", "cam4"}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, []units.Shares{50, 50}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50},
		m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}

	badCore := specsFor(names, []units.Shares{50, 50}, nil)
	badCore[1].Core = chip.NumCores
	dupCore := specsFor(names, []units.Shares{50, 50}, nil)
	dupCore[1].Core = 0
	noName := specsFor(names, []units.Shares{50, 50}, nil)
	noName[0].Name = ""

	cases := []struct {
		name string
		rc   Reconfig
	}{
		{"empty", Reconfig{}},
		{"apps without policy", Reconfig{Apps: specs}},
		{"negative limit", Reconfig{Limit: -5}},
		{"no apps", Reconfig{Policy: pol, Apps: []core.AppSpec{}}},
		{"core beyond chip", Reconfig{Policy: pol, Apps: badCore}},
		{"core assigned twice", Reconfig{Policy: pol, Apps: dupCore}},
		{"unnamed app", Reconfig{Policy: pol, Apps: noName}},
	}
	for _, c := range cases {
		if err := d.Reconfigure(c.rc); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if got := d.Limit(); got != 50 {
		t.Errorf("limit = %v after rejected reconfigures", got)
	}
	if got := d.PolicyName(); got != pol.Name() {
		t.Errorf("policy = %q after rejected reconfigures", got)
	}
}

// TestReconfigurePolicySwap swaps the policy and shares on a daemon that is
// mid-run: the next interval must run under the new policy, the decision
// journal must show a contiguous reconfigure mark, and the flight recorder
// must carry the reconfigure events.
func TestReconfigurePolicySwap(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"gcc", "cam4"}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, []units.Shares{50, 50}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	journal := decisions.NewJournal(0)
	rec := flight.New(0)
	d, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
		Metrics: reg, Journal: journal, Flight: rec,
	}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(2 * time.Second)
	oldName := d.PolicyName()

	newSpecs := specsFor(names, []units.Shares{80, 20}, nil)
	newPol, err := core.NewPerformanceShares(chip, newSpecs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Reconfigure(Reconfig{Policy: newPol, Apps: newSpecs}); err != nil {
		t.Fatal(err)
	}
	if got := d.PolicyName(); got != newPol.Name() || got == oldName {
		t.Fatalf("policy = %q after swap, want %q", got, newPol.Name())
	}
	m.Run(2 * time.Second)

	// 2 intervals + the reconfigure mark + 2 intervals, no gaps.
	entries := journal.Tail(int(journal.Total()))
	if len(entries) != 5 {
		t.Fatalf("journal has %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d; a sample was dropped", i, e.Seq)
		}
	}
	mark := entries[2]
	if len(mark.Reasons) != 1 || mark.Reasons[0] != string(core.ReasonReconfigure) {
		t.Fatalf("mark reasons = %v", mark.Reasons)
	}
	if mark.Policy != newPol.Name() {
		t.Errorf("mark policy = %q", mark.Policy)
	}
	for _, e := range entries[3:] {
		if e.Policy != newPol.Name() {
			t.Errorf("post-swap entry seq %d under policy %q", e.Seq, e.Policy)
		}
	}

	// Policy and shares changes are distinct flight events.
	var codes []uint32
	for _, e := range rec.Dump("test").Events {
		if e.Kind != flight.KindReconfigure {
			continue
		}
		if e.Source != flight.SourceControl {
			t.Errorf("reconfigure event source = %v", e.Source)
		}
		codes = append(codes, e.Arg)
	}
	want := []uint32{flight.ReconfigPolicy, flight.ReconfigShares}
	if len(codes) != len(want) || codes[0] != want[0] || codes[1] != want[1] {
		t.Fatalf("reconfigure events = %v, want %v", codes, want)
	}

	if v := reg.Counter("powerd_reconfigures_total", "").Value(); v != 1 {
		t.Errorf("reconfigures counter = %v", v)
	}
}

func TestReconfigureLimitOnly(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"gcc"}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, []units.Shares{50}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(0)
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50, Flight: rec},
		m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Reconfigure(Reconfig{Limit: 40}); err != nil {
		t.Fatal(err)
	}
	if got := d.Limit(); got != 40 {
		t.Fatalf("limit = %v, want 40", got)
	}
	if got := d.PolicyName(); got != pol.Name() {
		t.Errorf("limit-only change swapped the policy to %q", got)
	}
	events := rec.Dump("test").Events
	var found bool
	for _, e := range events {
		if e.Kind != flight.KindReconfigure {
			continue
		}
		found = true
		if e.Arg != flight.ReconfigLimit {
			t.Errorf("event = %s, want %s", flight.ReconfigName(e.Arg), flight.ReconfigName(flight.ReconfigLimit))
		}
		if e.Value != microwatts(40) || e.Aux != microwatts(50) {
			t.Errorf("event value/aux = %d/%d, want new 40 W / old 50 W", e.Value, e.Aux)
		}
	}
	if !found {
		t.Error("no reconfigure flight event recorded")
	}
}
