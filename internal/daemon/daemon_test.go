package daemon

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// buildMachine pins the named profiles on consecutive cores at max request.
func buildMachine(t *testing.T, chip platform.Chip, names []string) *sim.Machine {
	t.Helper()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if err := m.Pin(workload.NewInstance(workload.MustByName(n)), i); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func specsFor(names []string, shares []units.Shares, hp []bool) []core.AppSpec {
	specs := make([]core.AppSpec, len(names))
	for i, n := range names {
		p := workload.MustByName(n)
		specs[i] = core.AppSpec{
			Name:        n,
			Core:        i,
			AVX:         p.AVX,
			BaselineIPS: p.IPS(3000 * units.MHz),
		}
		if shares != nil {
			specs[i].Shares = shares[i]
		}
		if hp != nil {
			specs[i].HighPriority = hp[i]
		}
	}
	return specs
}

func TestNewValidation(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc"})
	specs := specsFor([]string{"gcc"}, []units.Shares{50}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	good := Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50}
	if _, err := New(good, m.Device(), MachineActuator{M: m}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Apps = nil },
		func(c *Config) { c.Limit = 0 },
		func(c *Config) { c.Chip.NumCores = 0 },
	} {
		bad := good
		mut(&bad)
		if _, err := New(bad, m.Device(), MachineActuator{M: m}); err == nil {
			t.Error("invalid config accepted")
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc"})
	specs := specsFor([]string{"gcc"}, []units.Shares{50}, nil)
	pol, _ := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunIteration(time.Second); err == nil {
		t.Error("RunIteration before Start accepted")
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

// The headline closed-loop test: frequency shares 90/10 between a LD and an
// HD application under a 50 W limit on Skylake. The daemon must (a) hold
// package power at or below the limit, and (b) keep the high-share
// application's frequency well above the low-share one's.
func TestFrequencySharesClosedLoop(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"leela", "leela", "leela", "leela", "leela",
		"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN"}
	shares := []units.Shares{90, 90, 90, 90, 90, 10, 10, 10, 10, 10}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, shares, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Iterations() < 50 {
		t.Fatalf("only %d iterations ran", d.Iterations())
	}
	snap := d.LastSnapshot()
	if snap.PackagePower > 50*1.05 {
		t.Errorf("settled power %v exceeds limit", snap.PackagePower)
	}
	// High-share apps (cores 0-4) must run much faster than low-share.
	fHigh := snap.Apps[0].Freq
	fLow := snap.Apps[5].Freq
	if fHigh <= fLow {
		t.Errorf("share ordering violated: high %v <= low %v", fHigh, fLow)
	}
	if float64(fHigh)/float64(fLow) < 1.5 {
		t.Errorf("frequency ratio %.2f too small for 90/10 shares", float64(fHigh)/float64(fLow))
	}
}

// Under RAPL at the same limit there is no share differentiation — the
// policy's value is exactly this contrast (Figure 9 vs native RAPL).
func TestRAPLBaselineHasNoDifferentiation(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"leela", "leela", "leela", "leela", "leela",
		"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN"}
	m := buildMachine(t, chip, names)
	for i := range names {
		if err := m.SetRequest(i, chip.Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPowerLimit(50)
	m.Run(5 * time.Second)
	fLD := m.EffectiveFreq(0)
	fHD := m.EffectiveFreq(5)
	// Both classes end at the same RAPL cap (no AVX apps here).
	if fLD != fHD {
		t.Errorf("RAPL differentiated: LD %v vs HD %v", fLD, fHD)
	}
}

func TestPerformanceSharesClosedLoop(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"leela", "leela", "cactusBSSN", "cactusBSSN"}
	shares := []units.Shares{70, 70, 30, 30}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, shares, nil)
	pol, err := core.NewPerformanceShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 45}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	snap := d.LastSnapshot()
	if snap.PackagePower > 45*1.05 {
		t.Errorf("settled power %v exceeds limit", snap.PackagePower)
	}
	// Normalised performance must be ordered by shares.
	npHigh := snap.Apps[0].NormPerf()
	npLow := snap.Apps[2].NormPerf()
	if npHigh <= npLow {
		t.Errorf("performance ordering violated: %0.3f <= %0.3f", npHigh, npLow)
	}
}

func TestPowerSharesClosedLoopOnRyzen(t *testing.T) {
	chip := platform.Ryzen()
	names := []string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN",
		"leela", "leela", "leela", "leela"}
	shares := []units.Shares{70, 70, 70, 70, 30, 30, 30, 30}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, shares, nil)
	pol, err := core.NewPowerShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 50}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(90 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	snap := d.LastSnapshot()
	if snap.PackagePower > 50*1.08 {
		t.Errorf("settled power %v exceeds limit", snap.PackagePower)
	}
	// Per-core power must be ordered by shares.
	pHigh := snap.Apps[0].Power
	pLow := snap.Apps[4].Power
	if pHigh <= pLow {
		t.Errorf("power ordering violated: %v <= %v", pHigh, pLow)
	}
	// And roughly in 70/30 proportion (the paper's Figure 10 tolerance).
	ratio := float64(pHigh / pLow)
	if ratio < 1.4 || ratio > 3.5 {
		t.Errorf("power ratio %.2f far from 7/3", ratio)
	}
}

// Priority closed loop: at 40 W with 3 HP and 7 LP apps the LP class stays
// parked and the HP class runs at or above its all-HP turbo bin — the
// paper's opportunistic-scaling result (Figure 7 at 40 W, 3H7L).
func TestPriorityClosedLoopStarvation(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"cactusBSSN", "cactusBSSN", "leela",
		"cactusBSSN", "leela", "leela", "cactusBSSN", "leela", "cactusBSSN", "leela"}
	hp := []bool{true, true, true, false, false, false, false, false, false, false}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, nil, hp)
	pol, err := core.NewPriority(chip, specs, core.PriorityConfig{Limit: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 40}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	snap := d.LastSnapshot()
	if snap.PackagePower > 40*1.05 {
		t.Errorf("power %v exceeds 40 W", snap.PackagePower)
	}
	for i := 3; i < 10; i++ {
		if !d.Parked(i) {
			t.Errorf("LP core %d not starved at 40 W", i)
		}
	}
	// HP apps run fast thanks to the freed turbo headroom: above the
	// all-core bin.
	if f := snap.Apps[2].Freq; f < 2500*units.MHz {
		t.Errorf("HP app at %v, expected turbo above 2.5 GHz", f)
	}
}

// With ample power (85 W) the priority policy must run everything.
func TestPriorityClosedLoopFullPower(t *testing.T) {
	chip := platform.Skylake()
	names := []string{"cactusBSSN", "leela", "cactusBSSN", "leela"}
	hp := []bool{true, true, false, false}
	m := buildMachine(t, chip, names)
	specs := specsFor(names, nil, hp)
	pol, err := core.NewPriority(chip, specs, core.PriorityConfig{Limit: 85})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Chip: chip, Policy: pol, Apps: specs, Limit: 85}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range names {
		if d.Parked(i) {
			t.Errorf("core %d parked despite 85 W budget", i)
		}
	}
	snap := d.LastSnapshot()
	if f := snap.Apps[3].Freq; f < chip.Freq.Min {
		t.Errorf("LP app frequency %v below floor", f)
	}
}

func TestMSRActuatorCannotPark(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc"})
	act := MSRActuator{Dev: m.Device(), Step: chip.Freq.Step}
	if err := act.Park(0, true); err == nil {
		t.Error("MSR actuator parked a core")
	}
	if err := act.Park(0, false); err != nil {
		t.Errorf("unpark no-op failed: %v", err)
	}
	if err := act.SetFreq(0, 1500*units.MHz); err != nil {
		t.Fatal(err)
	}
	if got := m.Request(0); got != 1500*units.MHz {
		t.Errorf("request = %v", got)
	}
}

// Real-time mode over the file-backed MSR device: the loop must complete
// its iterations and record a jitter distribution.
func TestRealtimeLoopRecordsJitter(t *testing.T) {
	chip := platform.Skylake()
	dir := t.TempDir()
	dev, err := msr.NewFileDevice(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := specsFor([]string{"gcc", "leela"}, []units.Shares{60, 40}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
		Interval: 2 * time.Millisecond,
	}, dev, MSRActuator{Dev: dev, Step: chip.Freq.Step})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.RunRealtime(ctx, 20); err != nil {
		t.Fatal(err)
	}
	js := d.Jitter()
	if js.Samples != 20 {
		t.Errorf("jitter samples = %d, want 20", js.Samples)
	}
	if js.Max < js.Mean {
		t.Errorf("jitter stats inconsistent: %+v", js)
	}
	// The daemon's P-state writes must have landed in the file tree.
	v, err := dev.Read(0, msr.IA32PerfCtl)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Error("no PERF_CTL write reached the file device")
	}
}

// Real-time mode against the simulated machine's MSR device at millisecond
// intervals: virtual time advances one interval per wall iteration (through
// the snapshot hook, which runs on the loop goroutine), so the daemon sees
// real telemetry deltas. Verifies iteration count, bounded jitter stats,
// metrics, and the decision journal.
func TestRealtimeAgainstSimDevice(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"leela", "cactusBSSN"})
	specs := specsFor([]string{"leela", "cactusBSSN"}, []units.Shares{80, 20}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	journal := decisions.NewJournal(16)
	const iters = 30
	interval := time.Millisecond
	d, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
		Interval: interval,
		Metrics:  reg,
		Journal:  journal,
		OnSnapshot: func(core.Snapshot) {
			m.Run(interval) // advance virtual time in lockstep with wall time
		},
	}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.RunRealtime(ctx, iters); err != nil {
		t.Fatal(err)
	}
	if got := d.Iterations(); got != iters {
		t.Errorf("iterations = %d, want %d", got, iters)
	}
	js := d.Jitter()
	if js.Samples != iters {
		t.Errorf("jitter samples = %d, want %d", js.Samples, iters)
	}
	if js.Max < js.Mean || js.Mean < 0 || js.P99 < 0 {
		t.Errorf("jitter stats inconsistent: %+v", js)
	}
	if got := reg.Counter("powerd_iterations_total", "").Value(); got != iters {
		t.Errorf("powerd_iterations_total = %v, want %d", got, iters)
	}
	if got := reg.Histogram("powerd_iteration_seconds", "", nil).Count(); got != iters {
		t.Errorf("iteration histogram count = %d, want %d", got, iters)
	}
	if journal.Total() != iters {
		t.Errorf("journal total = %d, want %d", journal.Total(), iters)
	}
	last, ok := journal.Last()
	if !ok || last.Policy != "frequency-shares" || len(last.Reasons) == 0 {
		t.Errorf("journal last = %+v, %v", last, ok)
	}
	// The daemon must have seen real power once virtual time advanced.
	if snap := d.LastSnapshot(); snap.PackagePower <= 0 {
		t.Errorf("no package power observed: %+v", snap)
	}
}

// Cancelling mid-run must surface the context error and leave a partial
// iteration count.
func TestRealtimeSimDeviceCancelMidRun(t *testing.T) {
	chip := platform.Skylake()
	m := buildMachine(t, chip, []string{"gcc"})
	specs := specsFor([]string{"gcc"}, []units.Shares{50}, nil)
	pol, _ := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	stopAfter := 5
	d, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
		Interval: time.Millisecond,
	}, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	d.cfg.OnSnapshot = func(core.Snapshot) {
		m.Run(time.Millisecond)
		if d.Iterations() >= stopAfter {
			cancel()
		}
	}
	if err := d.RunRealtime(ctx, 1_000_000); err == nil {
		t.Fatal("cancellation not surfaced")
	}
	if got := d.Iterations(); got < stopAfter || got > stopAfter+1 {
		t.Errorf("iterations = %d, want ~%d", got, stopAfter)
	}
}

func TestRealtimeContextCancel(t *testing.T) {
	chip := platform.Skylake()
	dev, err := msr.NewFileDevice(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := specsFor([]string{"gcc"}, []units.Shares{50}, nil)
	pol, _ := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	d, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
		Interval: time.Hour, // never fires
	}, dev, MSRActuator{Dev: dev, Step: chip.Freq.Step})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.RunRealtime(ctx, 1); err == nil {
		t.Error("cancelled context not surfaced")
	}
}
