package daemon

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func newInstanceFor(name string) *workload.Instance {
	return workload.NewInstance(workload.MustByName(name))
}

// The chaos suite: every fault class crossed with every policy, asserting
// the three invariants the hardened daemon guarantees — the package power
// cap is respected (machine truth, not telemetry), nobody the policy wants
// running is starved once the fault clears, and the share/priority
// structure re-emerges after recovery.

type chaosPolicy struct {
	name   string
	chip   platform.Chip
	shares []units.Shares
	hp     []bool
	build  func(chip platform.Chip, specs []core.AppSpec, limit units.Watts) (core.Policy, error)
}

func chaosPolicies() []chaosPolicy {
	shares := []units.Shares{60, 30, 10}
	return []chaosPolicy{
		{
			name: "priority", chip: platform.Skylake(), hp: []bool{true, false, false},
			build: func(chip platform.Chip, specs []core.AppSpec, limit units.Watts) (core.Policy, error) {
				return core.NewPriority(chip, specs, core.PriorityConfig{Limit: limit})
			},
		},
		{
			name: "freq-shares", chip: platform.Skylake(), shares: shares,
			build: func(chip platform.Chip, specs []core.AppSpec, limit units.Watts) (core.Policy, error) {
				return core.NewFrequencyShares(chip, specs, core.ShareConfig{})
			},
		},
		{
			name: "perf-shares", chip: platform.Skylake(), shares: shares,
			build: func(chip platform.Chip, specs []core.AppSpec, limit units.Watts) (core.Policy, error) {
				return core.NewPerformanceShares(chip, specs, core.ShareConfig{})
			},
		},
		{
			name: "power-shares", chip: platform.Ryzen(), shares: shares,
			build: func(chip platform.Chip, specs []core.AppSpec, limit units.Watts) (core.Policy, error) {
				return core.NewPowerShares(chip, specs, core.ShareConfig{})
			},
		},
	}
}

// chaosFaults are the fault windows, one per class: open at 300 ms, clear
// at 500 ms, leaving a full second of recovery. degrades marks classes the
// health state machine must provably catch (degrade + readmit + storm
// dump); torn's per-register coin flips and the pure platform classes
// either don't degrade telemetry or do so seed-dependently.
var chaosFaults = []struct {
	name     string
	sched    string
	degrades bool
}{
	{"eio", "at 300ms for 200ms eio cpu=* prob=0.7", true},
	{"stuck", "at 300ms for 200ms stuck cpu=* regs=MPERF,PKG_ENERGY_STATUS", true},
	{"torn", "at 300ms for 200ms torn cpu=*", false},
	{"latency", "at 300ms for 200ms latency cpu=* delay=2ms", false},
	{"thermal", "at 300ms for 200ms thermal cap=1000MHz", false},
	{"rapl", "at 300ms for 200ms rapl limit=22W", false},
	{"offline", "at 300ms for 200ms offline cpu=1", true},
}

func TestChaosMatrix(t *testing.T) {
	for _, pc := range chaosPolicies() {
		for _, fc := range chaosFaults {
			t.Run(pc.name+"/"+fc.name, func(t *testing.T) {
				runChaos(t, pc, fc.sched, fc.degrades)
			})
		}
	}
}

func runChaos(t *testing.T, pc chaosPolicy, schedText string, degrades bool) {
	t.Helper()
	names := []string{"gcc", "gcc", "gcc"}
	limit := units.Watts(35)
	if pc.chip.Vendor == "AMD" {
		limit = 40
	}

	rec := flight.New(flight.DefaultCapacity)
	m, err := sim.New(pc.chip, sim.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if err := m.Pin(newInstanceFor(n), i); err != nil {
			t.Fatal(err)
		}
	}
	if pc.chip.HardwareRAPLLimit {
		m.SetPowerLimit(limit)
	}

	sched, err := fault.ParseSchedule(schedText)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(sched, 1)
	inj.Flight(rec)
	inj.Drive(m) // before AttachVirtual: fault transitions precede control

	specs := specsFor(names, pc.shares, pc.hp)
	pol, err := pc.build(pc.chip, specs, limit)
	if err != nil {
		t.Fatal(err)
	}
	dev := inj.WrapDevice(m.Device())
	var dumps []string
	const interval = 20 * time.Millisecond
	var powers []units.Watts // machine-truth package power per interval
	d, err := New(Config{
		Chip: pc.chip, Policy: pol, Apps: specs, Limit: limit,
		Interval: interval,
		Flight:   rec,
		Triggers: FlightTriggers{
			Dir: t.TempDir(),
			OnDump: func(path, reason string, err error) {
				if err != nil {
					t.Errorf("dump %s: %v", reason, err)
				}
				dumps = append(dumps, reason)
			},
		},
		Resilience: &Resilience{StormIters: 5},
		OnSnapshot: func(core.Snapshot) {
			powers = append(powers, m.PackagePower())
		},
	}, dev, MachineActuator{M: m, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(1500 * time.Millisecond)
	if err := d.Err(); err != nil {
		t.Fatalf("control loop died: %v", err)
	}
	if got := d.Iterations(); got != 75 {
		t.Fatalf("iterations = %d, want 75 (loop stalled?)", got)
	}

	// Invariant 1: machine-truth package power respects the cap at every
	// interval after initial convergence — fault window included. 25%
	// headroom absorbs the share policies' step-at-a-time settling.
	for i, p := range powers {
		if i < 10 {
			continue
		}
		if p > limit*125/100 {
			t.Errorf("interval %d: package power %v blew the %v cap", i, p, limit)
		}
	}

	// Invariant 2 & 3: the fault cleared at interval 25; after a second of
	// recovery the policy structure must be back and nobody starved.
	snap := d.LastSnapshot()
	if pc.hp != nil {
		hp, lp1, lp2 := snap.Apps[0], snap.Apps[1], snap.Apps[2]
		if hp.Parked {
			t.Error("high-priority app parked after recovery")
		}
		if hp.IPS <= 0 {
			t.Error("high-priority app starved after recovery")
		}
		if hp.Freq < lp1.Freq || hp.Freq < lp2.Freq {
			t.Errorf("priority inverted after recovery: hp=%v lp=%v,%v", hp.Freq, lp1.Freq, lp2.Freq)
		}
	} else {
		for i, a := range snap.Apps {
			if a.Parked {
				t.Errorf("app %d parked after recovery", i)
			}
			if a.IPS <= 0 {
				t.Errorf("app %d starved after recovery", i)
			}
		}
		f0, f1, f2 := snap.Apps[0].Freq, snap.Apps[1].Freq, snap.Apps[2].Freq
		if f0 < f1 || f1 < f2 {
			t.Errorf("share ordering (60:30:10) violated after recovery: %v %v %v", f0, f1, f2)
		}
	}

	// The schedule must have left its marks in the flight ring.
	injects, clears, degradedEv, readmits := 0, 0, 0, 0
	for _, ev := range rec.Snapshot() {
		switch ev.Kind {
		case flight.KindFaultInject:
			injects++
		case flight.KindFaultClear:
			clears++
		case flight.KindHealth:
			if ev.Arg == flight.HealthDegraded {
				degradedEv++
			} else if ev.Arg == flight.HealthReadmitted {
				readmits++
			}
		}
	}
	if injects == 0 || clears == 0 {
		t.Errorf("flight ring missing fault events: %d injects, %d clears", injects, clears)
	}
	if degrades {
		if degradedEv == 0 || readmits == 0 {
			t.Errorf("health events: %d degraded, %d readmitted; want both nonzero", degradedEv, readmits)
		}
		// Invariant: the watchdog dumped flight state during the storm.
		found := false
		for _, r := range dumps {
			if r == "fault-storm" {
				found = true
			}
		}
		if !found {
			t.Errorf("no fault-storm dump; dumps = %v", dumps)
		}
	}
}

// TestChaosSoakRace hammers a resilient real-time daemon with a cycling
// fault schedule while other goroutines churn the limit, snapshot flight
// dumps, and scrape metrics — the -race build of this test is the
// concurrency proof for the whole fault path.
func TestChaosSoakRace(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	chip := platform.Skylake()
	rec := flight.New(1 << 12)
	m, err := sim.New(chip, sim.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"gcc", "leela"}
	for i, n := range names {
		if err := m.Pin(newInstanceFor(n), i); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPowerLimit(40)
	sched, err := fault.ParseSchedule(`
at 50ms for 100ms eio cpu=* prob=0.5
at 120ms for 80ms stuck cpu=* regs=MPERF
at 200ms for 80ms torn cpu=*
at 280ms for 80ms latency cpu=* delay=100us
at 360ms for 80ms thermal cap=1100MHz
at 420ms for 60ms rapl limit=25W
at 480ms for 60ms offline cpu=1
`)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(sched, 99)
	inj.Flight(rec)
	inj.Drive(m)
	reg := metrics.NewRegistry()
	inj.Instrument(reg)

	specs := specsFor(names, []units.Shares{70, 30}, nil)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dev := inj.WrapDevice(m.Device())
	const interval = 2 * time.Millisecond
	d, err := New(Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 40,
		Interval:   interval,
		Metrics:    reg,
		Flight:     rec,
		Triggers:   FlightTriggers{Dir: t.TempDir()},
		Resilience: &Resilience{StormIters: 20},
		// Advance virtual time in lockstep on the loop goroutine so the
		// machine (not thread-safe by design) is only ever touched there.
		OnSnapshot: func(core.Snapshot) { m.Run(interval) },
	}, dev, MachineActuator{M: m, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	loopDone := make(chan error, 1)
	go func() { loopDone <- d.RunRealtime(ctx, 300) }()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // limit churn
		defer wg.Done()
		w := units.Watts(40)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if err := d.SetLimit(w); err != nil {
					t.Error(err)
					return
				}
				w = 75 - w // alternate 35/40
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	go func() { // flight dump churn
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if _, err := d.DumpFlight(fmt.Sprintf("soak-%d", i)); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}()
	go func() { // injector + metrics scrape churn
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = inj.ActiveWindows()
				_ = inj.Effects(fault.ClassEIO)
				_ = reg.WritePrometheus(io.Discard)
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()

	if err := <-loopDone; err != nil {
		t.Errorf("soak loop: %v", err)
	}
	close(stop)
	wg.Wait()
	if got := d.Iterations(); got != 300 {
		t.Errorf("iterations = %d, want 300", got)
	}
}
