package daemon

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/workload"
)

// sloHarness is a machine running one open-loop latency service on two
// cores plus one batch core, daemonised under the SLO-feedback policy.
func sloHarness(t *testing.T, rec *flight.Recorder, targets []core.SLOTarget) (*sim.Machine, *Daemon) {
	t.Helper()
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	model, err := svc.NewModel(svc.Config{
		Name:     "api",
		Cores:    []int{0, 1},
		Seed:     3,
		Arrivals: svc.OpenPoisson,
		Rate:     svc.ConstantRate(80),
		SLO:      50 * time.Millisecond,
		Window:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Attach(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(workload.NewInstance(workload.MustByName("gcc")), 2); err != nil {
		t.Fatal(err)
	}
	specs := []core.AppSpec{
		{Name: "api", Core: 0, Shares: 50},
		{Name: "api", Core: 1, Shares: 50},
		{Name: "gcc", Core: 2, Shares: 50},
	}
	pol, err := core.NewSLOFeedback(chip, specs, core.SLOConfig{
		Targets: []core.SLOTarget{{Service: "api", P99: 50 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 40,
		Interval:   50 * time.Millisecond,
		SLO:        model,
		SLOTargets: targets,
	}
	if rec != nil {
		cfg.Flight = rec
	}
	d, err := New(cfg, m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	return m, d
}

// The daemon feeds service telemetry into snapshots and stamps its
// configured objectives over the service-declared ones; Reconfigure
// moves the objective live and an empty set falls back to the
// service's own advisory target.
func TestDaemonSLOFeedAndReconfigure(t *testing.T) {
	rec := flight.New(0)
	m, d := sloHarness(t, rec, []core.SLOTarget{{Service: "api", P99: 40 * time.Millisecond}})
	m.Run(2 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}

	snap := d.LastSnapshot()
	if len(snap.Services) != 1 || snap.Services[0].Name != "api" {
		t.Fatalf("snapshot services = %+v", snap.Services)
	}
	s := snap.Services[0]
	if s.Target != 0.040 {
		t.Errorf("configured target not stamped: %v", s.Target)
	}
	if s.P99 <= 0 || s.Rate <= 0 {
		t.Errorf("no live telemetry: %+v", s)
	}

	// Move the objective live.
	if err := d.Reconfigure(Reconfig{SLOTargets: []core.SLOTarget{{Service: "api", P99: 70 * time.Millisecond}}}); err != nil {
		t.Fatal(err)
	}
	m.Run(500 * time.Millisecond)
	if got := d.LastSnapshot().Services[0].Target; got != 0.070 {
		t.Errorf("target after reconfigure = %v, want 0.07", got)
	}

	// Clearing every objective reverts to the service's advisory SLO.
	if err := d.Reconfigure(Reconfig{SLOTargets: []core.SLOTarget{}}); err != nil {
		t.Fatal(err)
	}
	m.Run(500 * time.Millisecond)
	if got := d.LastSnapshot().Services[0].Target; got != 0.050 {
		t.Errorf("target after clearing = %v, want the service's 0.05", got)
	}

	// Both SLO reconfigurations left flight marks.
	var sloMarks int
	for _, e := range rec.Dump("test").Events {
		if e.Kind == flight.KindReconfigure && e.Arg == flight.ReconfigSLO {
			sloMarks++
		}
	}
	if sloMarks != 2 {
		t.Errorf("ReconfigSLO flight events = %d, want 2", sloMarks)
	}

	// Malformed target sets are rejected whole.
	bad := []Reconfig{
		{SLOTargets: []core.SLOTarget{{Service: "", P99: time.Second}}},
		{SLOTargets: []core.SLOTarget{{Service: "api", P99: 0}}},
		{SLOTargets: []core.SLOTarget{{Service: "api", P99: time.Second}, {Service: "api", P99: 2 * time.Second}}},
	}
	for i, rc := range bad {
		if err := d.Reconfigure(rc); err == nil {
			t.Errorf("bad reconfig %d accepted", i)
		}
	}
}

// Live objective swaps from a second goroutine must not race the
// control loop's telemetry stamping (run under -race).
func TestSLOReconfigureSoak(t *testing.T) {
	m, d := sloHarness(t, nil, []core.SLOTarget{{Service: "api", P99: 40 * time.Millisecond}})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		targets := []time.Duration{30 * time.Millisecond, 60 * time.Millisecond, 90 * time.Millisecond}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			rc := Reconfig{SLOTargets: []core.SLOTarget{{Service: "api", P99: targets[i%len(targets)]}}}
			if i%5 == 4 {
				rc.SLOTargets = []core.SLOTarget{} // periodically clear
			}
			if err := d.Reconfigure(rc); err != nil {
				t.Errorf("soak reconfigure: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 40; i++ {
		m.Run(100 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if snap := d.LastSnapshot(); len(snap.Services) != 1 {
		t.Fatalf("snapshot services after soak = %+v", snap.Services)
	}
}
