package core

import (
	"fmt"
	"math"

	"repro/internal/platform"
	"repro/internal/units"
)

// PowerShares distributes *power* proportionally to shares (Section 5.2,
// "Power Shares"): each application's core should draw its share of the
// package budget. It requires per-core power measurement, which only the
// Ryzen platform provides, and as the paper finds it gives the weakest
// performance isolation — equal power means very different performance
// across demand classes.
//
// Targets are per-core power limits derived from a water level:
// target_i = clamp(level · budget · sᵢ/Σs, Pmin, Pmaxᵢ) where budget is the
// package limit minus the estimated non-core overhead.
type PowerShares struct {
	shareBase
	explain
	level   float64
	limit   units.Watts // the limit the bases were computed for
	targets []units.Watts
}

// powerFreqExponent is the assumed local exponent of core power in
// frequency (P ∝ f^e with V rising linearly in f). The translation damps
// its multiplicative correction with 1/e so a 2x power error moves
// frequency by 2^(1/e), not 2x — an undamped correction overshoots and the
// loop limit-cycles.
const powerFreqExponent = 2.5

// NewPowerShares builds the policy; it fails on chips without per-core
// power measurement (the paper runs power shares only on Ryzen).
func NewPowerShares(chip platform.Chip, specs []AppSpec, cfg ShareConfig) (*PowerShares, error) {
	b, err := newShareBase(chip, specs, cfg)
	if err != nil {
		return nil, err
	}
	if !chip.PerCorePower {
		return nil, fmt.Errorf("core: power shares need per-core power measurement, which %s lacks", chip.Name)
	}
	return &PowerShares{shareBase: b}, nil
}

// Name implements Policy.
func (p *PowerShares) Name() string { return "power-shares" }

// Targets exposes the current per-app power limits.
func (p *PowerShares) Targets() []units.Watts {
	return append([]units.Watts(nil), p.targets...)
}

// budget is the package limit minus the estimated non-core overhead
// (uncore plus idle cores' residual draw).
func (p *PowerShares) budget(limit units.Watts) units.Watts {
	idle := p.chip.NumCores - len(p.specs)
	if idle < 0 {
		idle = 0
	}
	b := limit - p.chip.Power.UncorePower - units.Watts(idle)*p.chip.Power.IdleCorePower
	if b < 0 {
		b = 0
	}
	return b
}

func (p *PowerShares) bounds(limit units.Watts) (bases, lo, hi []float64) {
	var total units.Shares
	for _, s := range p.specs {
		total += s.Shares
	}
	budget := float64(p.budget(limit))
	bases, lo, hi = p.scrBases, p.scrLo, p.scrHi
	pmin := float64(p.chip.Power.CorePower(p.chip.Freq.Min, 1))
	for i, s := range p.specs {
		bases[i] = budget * s.Shares.Fraction(total)
		lo[i] = pmin
		hi[i] = float64(p.chip.Power.CorePower(p.ceiling(i), 1.6))
	}
	return bases, lo, hi
}

func (p *PowerShares) materialize(bases, lo, hi []float64) {
	if p.targets == nil {
		p.targets = make([]units.Watts, len(p.specs))
	}
	applyLevelInto(p.scrLvl, p.level, bases, lo, hi)
	for i, t := range p.scrLvl {
		p.targets[i] = units.Watts(t)
	}
}

// linearFreq is the paper's "simple linear equation" mapping a power target
// onto the frequency range, used before feedback exists.
func (p *PowerShares) linearFreq(i int, w units.Watts) units.Hertz {
	lo := p.chip.Power.CorePower(p.chip.Freq.Min, 1)
	hi := p.chip.Power.CorePower(p.ceiling(i), 1.6)
	frac := float64((w - lo) / (hi - lo))
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f := p.chip.Freq.Min + units.Hertz(frac*float64(p.ceiling(i)-p.chip.Freq.Min))
	return f.Clamp(p.chip.Freq.Min, p.ceiling(i))
}

// InitialForLimit computes the initial distribution for a given package
// limit: per-application power limits in share proportion of the core
// budget, translated to frequencies through the linear power model
// (modelling error is corrected by the feedback loop).
func (p *PowerShares) InitialForLimit(limit units.Watts) []Action {
	p.setReasons(ReasonInitial)
	p.level = 1
	p.limit = limit
	bases, lo, hi := p.bounds(limit)
	p.materialize(bases, lo, hi)
	freqs := p.scrFreqs
	for i := range p.specs {
		freqs[i] = p.linearFreq(i, p.targets[i])
	}
	return p.translate(freqs)
}

// Initial implements Policy using the chip's maximum RAPL limit; daemons
// that know the actual limit should call InitialForLimit.
func (p *PowerShares) Initial() []Action {
	return p.InitialForLimit(p.chip.RAPLMax)
}

// Update implements Policy: the power gap moves the water level directly
// (power is the shared resource, so no α conversion is needed), and the
// translation scales each core's frequency by the damped ratio of its power
// limit to its measured power.
func (p *PowerShares) Update(s Snapshot) []Action {
	limitChanged := p.targets != nil && p.limit != s.Limit
	if p.targets == nil || limitChanged {
		p.InitialForLimit(s.Limit)
	}
	bases, lo, hi := p.bounds(s.Limit)
	if !p.withinDeadband(s) {
		p.setReasons(gapReason(s), ReasonShareRebalance)
		delta := p.cfg.Gain * float64(s.Limit-s.PackagePower)
		var cur float64
		for _, t := range p.targets {
			cur += float64(t)
		}
		p.level = solveLevel(bases, lo, hi, cur+delta)
		p.materialize(bases, lo, hi)
	} else {
		p.setReasons(ReasonWithinDeadband, ReasonTranslateOnly)
	}
	if limitChanged {
		p.prependReason(ReasonLimitChange)
	}
	freqs := p.scrFreqs
	for i, spec := range p.specs {
		st := stateForHint(s, spec.Core, i)
		var f units.Hertz
		switch {
		case st == nil || st.Freq <= 0 || st.Power <= 0.01:
			f = p.linearFreq(i, p.targets[i])
		default:
			ratio := math.Pow(float64(p.targets[i]/st.Power), 1/powerFreqExponent)
			f = st.Freq * units.Hertz(ratio)
		}
		freqs[i] = f.Clamp(p.chip.Freq.Min, p.ceiling(i))
	}
	return p.translate(freqs)
}
