package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestWaterFillProportional(t *testing.T) {
	alloc := WaterFill(100, []float64{3, 1}, []float64{1000, 1000})
	if math.Abs(alloc[0]-75) > 1e-9 || math.Abs(alloc[1]-25) > 1e-9 {
		t.Errorf("alloc = %v, want [75 25]", alloc)
	}
}

func TestWaterFillRespectsCapsAndRevokes(t *testing.T) {
	// First recipient caps at 10; its residual 65 flows to the second.
	alloc := WaterFill(100, []float64{3, 1}, []float64{10, 1000})
	if alloc[0] != 10 {
		t.Errorf("alloc[0] = %v, want cap 10", alloc[0])
	}
	if math.Abs(alloc[1]-90) > 1e-9 {
		t.Errorf("alloc[1] = %v, want 90 (revoked portion re-funded)", alloc[1])
	}
}

func TestWaterFillInsufficientCaps(t *testing.T) {
	alloc := WaterFill(100, []float64{1, 1}, []float64{10, 20})
	if alloc[0] != 10 || alloc[1] != 20 {
		t.Errorf("alloc = %v, want caps [10 20]", alloc)
	}
}

func TestWaterFillZeroAmountAndWeights(t *testing.T) {
	alloc := WaterFill(0, []float64{1, 2}, []float64{10, 10})
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("zero amount alloc = %v", alloc)
	}
	alloc = WaterFill(-5, []float64{1}, []float64{10})
	if alloc[0] != 0 {
		t.Errorf("negative amount alloc = %v", alloc)
	}
	// Zero-weight recipients get nothing even with cap room.
	alloc = WaterFill(10, []float64{0, 1}, []float64{10, 10})
	if alloc[0] != 0 || math.Abs(alloc[1]-10) > 1e-9 {
		t.Errorf("zero-weight alloc = %v", alloc)
	}
}

func TestWaterFillPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched lengths")
		}
	}()
	WaterFill(1, []float64{1}, []float64{1, 2})
}

// Properties: conservation (sum == min(amount, sum caps)), cap respect, and
// non-negativity, over random instances.
func TestWaterFillProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		weights := make([]float64, n)
		caps := make([]float64, n)
		var capSum float64
		for i := 0; i < n; i++ {
			weights[i] = rng.Float64() * 5
			caps[i] = rng.Float64() * 20
			capSum += caps[i]
		}
		amount := rng.Float64() * 50
		alloc := WaterFill(amount, weights, caps)
		var sum float64
		for i, a := range alloc {
			if a < -1e-12 || a > caps[i]+1e-9 {
				return false
			}
			sum += a
		}
		want := math.Min(amount, capSum)
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with ample caps the allocation is exactly share-proportional.
func TestWaterFillExactProportionality(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		w := []float64{float64(a%50) + 1, float64(b%50) + 1, float64(c%50) + 1}
		caps := []float64{1e12, 1e12, 1e12}
		alloc := WaterFill(1000, w, caps)
		total := w[0] + w[1] + w[2]
		for i := range w {
			if math.Abs(alloc[i]-1000*w[i]/total) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestShareWeights(t *testing.T) {
	specs := []AppSpec{{Shares: 3}, {Shares: 1}}
	w := shareWeights(specs)
	if w[0] != 3 || w[1] != 1 {
		t.Errorf("shareWeights = %v", w)
	}
}

func TestNormPerf(t *testing.T) {
	st := AppState{Spec: AppSpec{BaselineIPS: 2e9}, IPS: 1e9}
	if got := st.NormPerf(); got != 0.5 {
		t.Errorf("NormPerf = %v", got)
	}
	st.Spec.BaselineIPS = 0
	if got := st.NormPerf(); got != 0 {
		t.Errorf("NormPerf without baseline = %v", got)
	}
}

func TestValidateSpecs(t *testing.T) {
	good := []AppSpec{{Name: "a", Core: 0, Shares: 1}, {Name: "b", Core: 1, Shares: 2}}
	if err := validateSpecs(good, true); err != nil {
		t.Errorf("valid specs rejected: %v", err)
	}
	cases := []struct {
		name  string
		specs []AppSpec
	}{
		{"empty", nil},
		{"unnamed", []AppSpec{{Core: 0, Shares: 1}}},
		{"negative core", []AppSpec{{Name: "a", Core: -1, Shares: 1}}},
		{"duplicate core", []AppSpec{{Name: "a", Core: 0, Shares: 1}, {Name: "b", Core: 0, Shares: 1}}},
	}
	for _, c := range cases {
		if err := validateSpecs(c.specs, true); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// Shares only checked when required.
	noShares := []AppSpec{{Name: "a", Core: 0}}
	if err := validateSpecs(noShares, false); err != nil {
		t.Errorf("needShares=false rejected: %v", err)
	}
	if err := validateSpecs(noShares, true); err == nil {
		t.Error("needShares=true accepted zero shares")
	}
	_ = units.Shares(0)
}
