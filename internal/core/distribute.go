package core

// WaterFill distributes a non-negative amount across recipients in
// proportion to their weights, capping each recipient at caps[i] and
// redistributing the capped recipients' residual share among the rest.
// This is the min-funding revocation step of the paper's redistribution
// function [Waldspurger 2002]: once an application saturates (cannot
// usefully absorb more of the resource), its portion is revoked and
// re-funded to the remaining applications in share proportion.
//
// The returned allocations satisfy 0 <= alloc[i] <= caps[i] and
// sum(alloc) == min(amount, sum(caps)) up to floating-point error.
// Recipients with non-positive weight receive nothing. WaterFill panics if
// the slice lengths differ (programmer error).
func WaterFill(amount float64, weights, caps []float64) []float64 {
	if len(weights) != len(caps) {
		panic("core: WaterFill slice lengths differ")
	}
	alloc := make([]float64, len(weights))
	if amount <= 0 {
		return alloc
	}
	active := make([]bool, len(weights))
	nActive := 0
	for i, w := range weights {
		if w > 0 && caps[i] > 0 {
			active[i] = true
			nActive++
		}
	}
	remaining := amount
	// Each pass either exhausts the amount or saturates at least one
	// recipient, so the loop runs at most len(weights)+1 times.
	for remaining > 1e-12 && nActive > 0 {
		var wsum float64
		for i, w := range weights {
			if active[i] {
				wsum += w
			}
		}
		if wsum <= 0 {
			break
		}
		saturatedThisPass := false
		// Distribute against a fixed snapshot of remaining so shares are
		// computed consistently within the pass.
		pass := remaining
		for i := range weights {
			if !active[i] {
				continue
			}
			give := pass * weights[i] / wsum
			room := caps[i] - alloc[i]
			if give >= room {
				give = room
				active[i] = false
				nActive--
				saturatedThisPass = true
			}
			alloc[i] += give
			remaining -= give
		}
		if !saturatedThisPass {
			// Everyone took their full proportional slice: done.
			break
		}
	}
	return alloc
}

// shareWeights extracts float weights from app specs.
func shareWeights(specs []AppSpec) []float64 {
	w := make([]float64, len(specs))
	for i, s := range specs {
		w[i] = float64(s.Shares)
	}
	return w
}
