package core

// solveLevel finds the water level λ >= 0 such that the total allocation
//
//	Σ_i clamp(λ * base_i, lo_i, hi_i)
//
// equals want (clamped to the feasible range [Σlo, Σhi]). The share
// policies derive each application's resource target from a single level:
// target_i = clamp(λ·base_i, lo_i, hi_i) with base_i proportional to the
// application's shares. This *is* min-funding revocation in closed form —
// an application clamped at its cap (saturated) stops absorbing the
// resource and the level keeps rising for the others; under shortage the
// level falls and reclaims first from applications holding more than their
// proportional entitlement.
//
// The total is monotone non-decreasing in λ, so bisection is exact. Bases
// must be positive; bounds must satisfy 0 <= lo_i <= hi_i.
func solveLevel(bases, lo, hi []float64, want float64) float64 {
	total := func(level float64) float64 {
		var t float64
		for i, b := range bases {
			v := level * b
			if v < lo[i] {
				v = lo[i]
			}
			if v > hi[i] {
				v = hi[i]
			}
			t += v
		}
		return t
	}
	var loSum, hiSum float64
	for i := range bases {
		loSum += lo[i]
		hiSum += hi[i]
	}
	if want <= loSum {
		return 0
	}
	// Upper bound on λ: every target capped.
	var lmax float64
	for i, b := range bases {
		if b <= 0 {
			continue
		}
		if l := hi[i] / b; l > lmax {
			lmax = l
		}
	}
	if want >= hiSum {
		return lmax
	}
	a, b := 0.0, lmax
	for i := 0; i < 64; i++ {
		mid := (a + b) / 2
		if total(mid) < want {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2
}

// applyLevel materialises the per-application targets for a level.
func applyLevel(level float64, bases, lo, hi []float64) []float64 {
	out := make([]float64, len(bases))
	applyLevelInto(out, level, bases, lo, hi)
	return out
}

// applyLevelInto is the allocation-free variant: targets are written into
// the caller-owned dst, which must have the same length as bases.
func applyLevelInto(dst []float64, level float64, bases, lo, hi []float64) {
	for i, b := range bases {
		v := level * b
		if v < lo[i] {
			v = lo[i]
		}
		if v > hi[i] {
			v = hi[i]
		}
		dst[i] = v
	}
}
