package core

import (
	"slices"
	"testing"

	"repro/internal/platform"
	"repro/internal/units"
)

func prioritySharesSpecs() []AppSpec {
	return []AppSpec{
		{Name: "hpBig", Core: 0, Shares: 90, HighPriority: true},
		{Name: "hpSmall", Core: 1, Shares: 30, HighPriority: true},
		{Name: "lpBig", Core: 2, Shares: 60},
		{Name: "lpSmall", Core: 3, Shares: 20},
	}
}

func TestPrioritySharesConstructor(t *testing.T) {
	sky := platform.Skylake()
	if _, err := NewPriorityShares(sky, prioritySharesSpecs(), PriorityConfig{Limit: 50}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := NewPriorityShares(sky, prioritySharesSpecs(), PriorityConfig{}); err == nil {
		t.Error("zero limit accepted")
	}
	noShares := prioritySharesSpecs()
	noShares[0].Shares = 0
	if _, err := NewPriorityShares(sky, noShares, PriorityConfig{Limit: 50}); err == nil {
		t.Error("zero shares accepted")
	}
	lpOnly := []AppSpec{{Name: "l", Core: 0, Shares: 1}}
	if _, err := NewPriorityShares(sky, lpOnly, PriorityConfig{Limit: 50}); err == nil {
		t.Error("no-HP config accepted")
	}
}

func TestPrioritySharesInitial(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriorityShares(sky, prioritySharesSpecs(), PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	if p.Name() != "priority+shares" {
		t.Errorf("Name = %q", p.Name())
	}
	// Within the HP class, frequency follows shares: the 90-share app at
	// its ceiling (2 active cores -> 3.0 GHz), the 30-share app at a third.
	fBig, fSmall := freqOf(actions, 0), freqOf(actions, 1)
	if fBig != 3000*units.MHz {
		t.Errorf("high-share HP initial = %v, want 3 GHz", fBig)
	}
	if fSmall != 1000*units.MHz {
		t.Errorf("low-share HP initial = %v, want 1 GHz (30/90 of max)", fSmall)
	}
	// LP parked.
	if !parked(actions, 2) || !parked(actions, 3) {
		t.Error("LP not parked initially")
	}
}

func TestPrioritySharesLPPaysFirst(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriorityShares(sky, prioritySharesSpecs(), PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	// Force LP running with headroom.
	p.lpActive = 2
	p.lpLevel = 0.5
	hpBefore := slices.Clone(p.classTargets(p.hp, p.hpLevel))
	lpBefore := slices.Clone(p.classTargets(p.lp[:2], p.lpLevel))
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	hpAfter := slices.Clone(p.classTargets(p.hp, p.hpLevel))
	lpAfter := slices.Clone(p.classTargets(p.lp[:2], p.lpLevel))
	if hpAfter[0] != hpBefore[0] || hpAfter[1] != hpBefore[1] {
		t.Error("HP throttled while LP had headroom")
	}
	if !(lpAfter[0] < lpBefore[0] || lpAfter[1] < lpBefore[1]) {
		t.Error("LP did not pay")
	}
	// At the LP floor, the class starves before HP pays.
	p.lpLevel = 0
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	if p.LPActive() != 0 {
		t.Errorf("LPActive = %d, want starved", p.LPActive())
	}
	// Then HP pays.
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	hpFinal := slices.Clone(p.classTargets(p.hp, p.hpLevel))
	if hpFinal[0] >= hpAfter[0] {
		t.Error("HP did not throttle after LP starved")
	}
}

func TestPrioritySharesWithinClassOrdering(t *testing.T) {
	// Under any snapshot sequence, within-class frequencies stay ordered
	// by shares.
	sky := platform.Skylake()
	p, err := NewPriorityShares(sky, prioritySharesSpecs(), PriorityConfig{Limit: 45})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	powers := []units.Watts{60, 50, 44, 40, 35, 47, 43, 52, 41, 38}
	for i := 0; i < 60; i++ {
		actions := p.Update(Snapshot{Limit: 45, PackagePower: powers[i%len(powers)]})
		if freqOf(actions, 0) < freqOf(actions, 1) {
			t.Fatalf("HP ordering inverted: %v < %v", freqOf(actions, 0), freqOf(actions, 1))
		}
		if p.LPActive() == 2 && !parked(actions, 2) && !parked(actions, 3) {
			if freqOf(actions, 2) < freqOf(actions, 3) {
				t.Fatalf("LP ordering inverted: %v < %v", freqOf(actions, 2), freqOf(actions, 3))
			}
		}
	}
}

// With equal shares everywhere, the composed policy devolves to the plain
// priority policy's class behaviour (Section 4.1's observation).
func TestPrioritySharesEqualSharesDevolves(t *testing.T) {
	sky := platform.Skylake()
	specs := prioritySpecs(2, 2)
	for i := range specs {
		specs[i].Shares = 50
	}
	p, err := NewPriorityShares(sky, specs, PriorityConfig{Limit: 85})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	if freqOf(actions, 0) != freqOf(actions, 1) {
		t.Errorf("equal-share HP apps diverged: %v vs %v", freqOf(actions, 0), freqOf(actions, 1))
	}
	// Grow LP with a huge residual; both LP apps track together.
	p.Update(Snapshot{Limit: 85, PackagePower: 20})
	p.Update(Snapshot{Limit: 85, PackagePower: 25})
	actions = p.Update(Snapshot{Limit: 85, PackagePower: 35})
	if p.LPActive() == 2 {
		if freqOf(actions, 2) != freqOf(actions, 3) {
			t.Errorf("equal-share LP apps diverged: %v vs %v", freqOf(actions, 2), freqOf(actions, 3))
		}
	}
}

func TestPrioritySharesRyzenClusters(t *testing.T) {
	ryz := platform.Ryzen()
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 100, HighPriority: true},
		{Name: "b", Core: 1, Shares: 60, HighPriority: true},
		{Name: "c", Core: 2, Shares: 40, HighPriority: true},
		{Name: "d", Core: 3, Shares: 25, HighPriority: true},
		{Name: "e", Core: 4, Shares: 10, HighPriority: true},
	}
	p, err := NewPriorityShares(ryz, specs, PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	set := make(map[units.Hertz]bool)
	for _, a := range actions {
		if !a.Park {
			set[a.Freq] = true
		}
	}
	if len(set) > 3 {
		t.Errorf("Ryzen actions use %d P-states, want <= 3", len(set))
	}
}
