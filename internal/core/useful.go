package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/units"
)

// UsefulFrequency implements the measurement side of the paper's
// Section 4.4 refinement: some applications "perform no faster when run at
// higher frequencies" (memory-bound code — the saturating curves of
// Figure 2), so policies should grant them the highest *useful* frequency
// rather than the highest possible one, freeing power for everyone else.
// Hardware support such as Intel's HWP "can help identify this point"; this
// is the software equivalent over two telemetry samples.
//
// Given two IPS measurements of the same application at two distinct
// frequencies, it fits the two-parameter latency model
//
//	seconds/instruction = cpi/f + stall
//
// and returns the highest frequency at which the application's *frequency
// elasticity* — the fraction of its time that actually scales with the
// clock, (cpi/f) / (cpi/f + stall) — is still at least threshold. Above
// that point, most added cycles are spent waiting on memory. A threshold
// of 0.5 (the default for threshold <= 0) caps at f = cpi/stall, where
// exactly half the time responds to frequency. Core-bound applications
// (stall ≈ 0) get the chip maximum back; strongly memory-bound ones get a
// low cap. An error is returned when the measurements cannot identify the
// model (equal frequencies, non-positive IPS, or non-monotone samples).
func UsefulFrequency(fLo units.Hertz, ipsLo float64, fHi units.Hertz, ipsHi float64,
	spec cpu.FreqSpec, threshold float64) (units.Hertz, error) {

	if fLo <= 0 || fHi <= 0 || fLo == fHi {
		return 0, fmt.Errorf("core: useful frequency needs two distinct positive frequencies")
	}
	if ipsLo <= 0 || ipsHi <= 0 {
		return 0, fmt.Errorf("core: useful frequency needs positive IPS samples")
	}
	if fLo > fHi {
		fLo, fHi = fHi, fLo
		ipsLo, ipsHi = ipsHi, ipsLo
	}
	if ipsHi < ipsLo {
		return 0, fmt.Errorf("core: IPS decreased with frequency; samples unusable")
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	if threshold >= 1 {
		return spec.Max(), nil
	}
	// Fit 1/ips = cpi/f + stall through the two samples.
	tLo, tHi := 1/ipsLo, 1/ipsHi
	cpi := (tLo - tHi) / (1/float64(fLo) - 1/float64(fHi))
	stall := tHi - cpi/float64(fHi)
	if cpi < 0 {
		return 0, fmt.Errorf("core: fitted negative CPI; samples unusable")
	}
	if stall <= 0 {
		return spec.Max(), nil
	}
	// Elasticity e(f) = (cpi/f)/(cpi/f + stall) falls with f; solve
	// e(f*) = threshold.
	fUseful := units.Hertz(cpi * (1 - threshold) / (threshold * stall))
	if fUseful >= spec.Max() {
		return spec.Max(), nil
	}
	if fUseful < spec.Min {
		return spec.Min, nil
	}
	return spec.Quantize(fUseful), nil
}
