package core

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/units"
)

// ShareConfig tunes the proportional-share control loops.
type ShareConfig struct {
	// Deadband is the fraction of the power limit within which the loop
	// holds still rather than redistributing (default 2%). Without it the
	// α-model's residual error causes ceaseless one-step churn.
	Deadband float64

	// Gain scales the α-model's step (default 1.0, the paper's naïve
	// model).
	Gain float64
}

func (c *ShareConfig) fill() {
	if c.Deadband <= 0 {
		c.Deadband = 0.02
	}
	if c.Gain <= 0 {
		c.Gain = 1.0
	}
}

// shareBase carries the state common to the three share policies,
// including the preallocated per-interval scratch (water-level inputs,
// materialised targets, the action buffer, and the P-state clusterer)
// that makes a steady-state Update allocation-free. The Action slice a
// policy returns is owned by this scratch: it is valid until the next
// Initial/Update call, per the Policy contract.
type shareBase struct {
	chip  platform.Chip
	specs []AppSpec
	cfg   ShareConfig

	scrBases []float64
	scrLo    []float64
	scrHi    []float64
	scrLvl   []float64
	scrFreqs []units.Hertz
	scrActs  []Action
	cluster  *pstateClusterer
}

func newShareBase(chip platform.Chip, specs []AppSpec, cfg ShareConfig) (shareBase, error) {
	if err := chip.Validate(); err != nil {
		return shareBase{}, fmt.Errorf("core: %w", err)
	}
	if err := validateSpecs(specs, true); err != nil {
		return shareBase{}, err
	}
	for _, s := range specs {
		if s.Core >= chip.NumCores {
			return shareBase{}, fmt.Errorf("core: app %s pinned to core %d beyond chip's %d cores",
				s.Name, s.Core, chip.NumCores)
		}
	}
	cfg.fill()
	n := len(specs)
	return shareBase{
		chip:     chip,
		specs:    append([]AppSpec(nil), specs...),
		cfg:      cfg,
		scrBases: make([]float64, n),
		scrLo:    make([]float64, n),
		scrHi:    make([]float64, n),
		scrLvl:   make([]float64, n),
		scrFreqs: make([]units.Hertz, n),
		scrActs:  make([]Action, n),
		cluster:  newPStateClusterer(n, chip.MaxSimultaneousPStates),
	}, nil
}

// ceiling returns the highest frequency app i can reach given that all
// managed applications keep their cores busy, honouring a per-app useful-
// frequency cap (Section 4.4) when the spec carries one.
func (b *shareBase) ceiling(i int) units.Hertz {
	c := b.chip.Freq.Ceiling(len(b.specs), b.specs[i].AVX)
	if mf := b.specs[i].MaxFreq; mf > 0 && mf < c {
		if mf < b.chip.Freq.Min {
			return b.chip.Freq.Min
		}
		return b.chip.Freq.Quantize(mf)
	}
	return c
}

// maxShare returns the largest share weight among the managed apps.
func (b *shareBase) maxShare() units.Shares {
	var m units.Shares
	for _, s := range b.specs {
		if s.Shares > m {
			m = s.Shares
		}
	}
	return m
}

// withinDeadband reports whether the measured power is close enough to the
// limit that no redistribution should happen.
func (b *shareBase) withinDeadband(s Snapshot) bool {
	gap := float64(s.Limit - s.PackagePower)
	if gap < 0 {
		gap = -gap
	}
	return gap <= b.cfg.Deadband*float64(s.Limit)
}

// alpha computes the paper's conversion factor α = PowerDelta/MaxPower.
func (b *shareBase) alpha(s Snapshot) float64 {
	return b.cfg.Gain * float64(s.Limit-s.PackagePower) / float64(b.chip.RAPLMax)
}

// translate converts per-app frequency targets into actions, quantising and
// applying the platform's simultaneous-P-state constraint (Ryzen's 3).
// freqs is clustered in place; the returned slice is the shared action
// scratch, valid until the next policy call.
func (b *shareBase) translate(freqs []units.Hertz) []Action {
	b.cluster.clusterInto(freqs, freqs, b.chip.Freq)
	actions := b.scrActs
	for i, s := range b.specs {
		actions[i] = Action{Core: s.Core, Freq: freqs[i], Park: false}
	}
	return actions
}

// stateFor finds the snapshot entry for the app pinned to core, or nil.
func stateFor(s Snapshot, core int) *AppState {
	for i := range s.Apps {
		if s.Apps[i].Spec.Core == core {
			return &s.Apps[i]
		}
	}
	return nil
}

// stateForHint is stateFor with a position hint: the daemon materialises
// Snapshot.Apps in spec order, so the app for specs[i] is almost always
// Apps[i] — O(1) instead of an O(n) scan per app (which would make the
// translate pass quadratic on a 512-core machine). The scan remains as
// the fallback for callers holding differently-ordered snapshots.
func stateForHint(s Snapshot, core, hint int) *AppState {
	if hint >= 0 && hint < len(s.Apps) && s.Apps[hint].Spec.Core == core {
		return &s.Apps[hint]
	}
	return stateFor(s, core)
}

// FrequencyShares distributes *frequency* proportionally to shares
// (Section 5.2, "Frequency Shares"): the policy the paper finds simplest
// and most stable. It needs only package power measurements and per-core
// DVFS.
//
// Per-application frequency limits derive from a single water level:
// target_i = clamp(level · MaxFreq · sᵢ/s_max, MinFreq, ceilingᵢ). The
// redistribution function converts the power gap into a frequency budget
// with the paper's α model and moves the level so the total target
// frequency absorbs the budget — min-funding revocation falls out of the
// clamping (see solveLevel).
type FrequencyShares struct {
	shareBase
	explain
	level   float64
	targets []units.Hertz
}

// NewFrequencyShares builds the policy for the chip and application set.
func NewFrequencyShares(chip platform.Chip, specs []AppSpec, cfg ShareConfig) (*FrequencyShares, error) {
	b, err := newShareBase(chip, specs, cfg)
	if err != nil {
		return nil, err
	}
	return &FrequencyShares{shareBase: b}, nil
}

// Name implements Policy.
func (p *FrequencyShares) Name() string { return "frequency-shares" }

// Targets exposes the current per-app frequency limits (for tests and
// reports).
func (p *FrequencyShares) Targets() []units.Hertz {
	return append([]units.Hertz(nil), p.targets...)
}

func (p *FrequencyShares) bounds() (bases, lo, hi []float64) {
	maxShare := p.maxShare()
	bases, lo, hi = p.scrBases, p.scrLo, p.scrHi
	for i, s := range p.specs {
		bases[i] = float64(p.chip.Freq.Max()) * s.Shares.Fraction(maxShare)
		lo[i] = float64(p.chip.Freq.Min)
		hi[i] = float64(p.ceiling(i))
	}
	return bases, lo, hi
}

func (p *FrequencyShares) materialize(bases, lo, hi []float64) {
	if p.targets == nil {
		p.targets = make([]units.Hertz, len(p.specs))
	}
	applyLevelInto(p.scrLvl, p.level, bases, lo, hi)
	for i, t := range p.scrLvl {
		p.targets[i] = units.Hertz(t)
	}
}

// Initial implements Policy: the highest-share application starts at the
// maximum frequency and the others at their share proportions of it
// (level 1).
func (p *FrequencyShares) Initial() []Action {
	p.setReasons(ReasonInitial)
	p.level = 1
	bases, lo, hi := p.bounds()
	p.materialize(bases, lo, hi)
	return p.translateTargets()
}

// translateTargets stages the continuous targets into the frequency
// scratch before translation, so clustering's in-place quantisation never
// corrupts the control state the next interval integrates from.
func (p *FrequencyShares) translateTargets() []Action {
	copy(p.scrFreqs, p.targets)
	return p.translate(p.scrFreqs)
}

// Update implements Policy: it converts the power gap into a frequency
// budget with the α model and moves the water level to absorb it.
func (p *FrequencyShares) Update(s Snapshot) []Action {
	if p.targets == nil {
		p.Initial()
	}
	if p.withinDeadband(s) {
		p.setReasons(ReasonWithinDeadband)
		return nil
	}
	p.setReasons(gapReason(s), ReasonShareRebalance)
	bases, lo, hi := p.bounds()
	freqDelta := p.alpha(s) * float64(p.chip.Freq.Max()) * float64(len(p.specs))
	var cur float64
	for _, t := range p.targets {
		cur += float64(t)
	}
	p.level = solveLevel(bases, lo, hi, cur+freqDelta)
	p.materialize(bases, lo, hi)
	return p.translateTargets()
}
