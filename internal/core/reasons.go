package core

// Reason is a machine-readable explanation for a policy decision, recorded
// once per control interval by policies implementing Explainer and
// surfaced through the daemon's decision journal. The vocabulary is closed:
// observability consumers (dashboards, tests, the /debug/status endpoint)
// match on these exact strings.
type Reason string

const (
	// ReasonInitial marks the initial distribution, applied before the
	// first control interval.
	ReasonInitial Reason = "initial-distribution"

	// ReasonWithinDeadband: measured power sits close enough to the limit
	// that the policy holds still.
	ReasonWithinDeadband Reason = "within-deadband"

	// ReasonPowerOverLimit / ReasonPowerUnderLimit classify the sign of
	// the power gap the update responded to.
	ReasonPowerOverLimit  Reason = "power-over-limit"
	ReasonPowerUnderLimit Reason = "power-under-limit"

	// ReasonShareRebalance: a share policy moved its water level to absorb
	// the power gap.
	ReasonShareRebalance Reason = "share-rebalance"

	// ReasonTranslateOnly: targets held still but the translation layer
	// re-derived frequencies from fresh measurements (performance and
	// power shares re-translate every interval as IPS drifts with phase).
	ReasonTranslateOnly Reason = "translate-only"

	// ReasonLimitChange: the enforced power limit changed since the last
	// interval (e.g. a cluster coordinator moved the node's budget) and
	// the policy rebuilt its distribution for the new limit.
	ReasonLimitChange Reason = "limit-change"

	// Priority-policy reasons: which class paid or gained.
	ReasonThrottleLP    Reason = "throttle-lp"
	ReasonParkStarvedLP Reason = "park-starved-lp"
	ReasonThrottleHP    Reason = "throttle-hp"
	ReasonRestoreHP     Reason = "restore-hp"
	ReasonWakeLP        Reason = "wake-lp"
	ReasonRaiseLP       Reason = "raise-lp"

	// ReasonSaturated: the responsible class hit its floor or ceiling, so
	// the update could not move despite a power gap.
	ReasonSaturated Reason = "saturated"

	// ReasonReconfigure: the daemon's configuration (policy, shares, or
	// limit) was changed mid-run through the Reconfigure path and the new
	// policy's initial distribution was applied.
	ReasonReconfigure Reason = "reconfigure"

	// SLO-feedback reasons: how the policy read the per-service
	// tail-latency telemetry this interval.
	//
	// ReasonSLOFallback: the snapshot carried no service telemetry, so
	// the policy behaved as plain frequency shares.
	ReasonSLOFallback Reason = "slo-fallback-shares"
	// ReasonSLOBoost: at least one service ran over its p99 objective
	// and its serving cores were sped up at batch apps' expense.
	ReasonSLOBoost Reason = "slo-boost"
	// ReasonSLORelax: services ran comfortably under their objectives
	// and ceded frequency back to batch apps.
	ReasonSLORelax Reason = "slo-relax"
	// ReasonSLOMet: every service with telemetry met its objective.
	ReasonSLOMet Reason = "slo-met"
	// ReasonSLOSaturated: a service missed its objective but its cores
	// were already at their ceiling (or batch apps at their floor), so
	// the SLO cannot be bought under the current power limit. The
	// integral term holds (anti-windup) while this is recorded.
	ReasonSLOSaturated Reason = "slo-saturated"
)

// Explainer is optionally implemented by policies that can explain their
// last decision. The daemon checks for it after every Initial/Update and
// journals the reasons alongside the snapshot and actions.
type Explainer interface {
	// LastReasons returns the machine-readable reasons for the most
	// recent Initial or Update call. The returned slice must not be
	// mutated by the caller and is valid until the next policy call.
	LastReasons() []Reason
}

// explain is the embeddable recorder the policies share. Reasons are
// copied into a fixed inline buffer so recording a decision allocates
// nothing: the variadic argument slice never escapes and stays on the
// caller's stack.
type explain struct {
	buf [4]Reason
	n   int
}

// setReasons replaces the recorded reasons (at most 4 are kept).
func (e *explain) setReasons(rs ...Reason) { e.n = copy(e.buf[:], rs) }

// prependReason pushes a reason in front of the recorded ones, dropping
// the last if the buffer is full.
func (e *explain) prependReason(r Reason) {
	n := e.n
	if n >= len(e.buf) {
		n = len(e.buf) - 1
	}
	copy(e.buf[1:n+1], e.buf[:n])
	e.buf[0] = r
	e.n = n + 1
}

// LastReasons implements Explainer.
func (e *explain) LastReasons() []Reason { return e.buf[:e.n] }

// gapReason classifies the power gap of a snapshot.
func gapReason(s Snapshot) Reason {
	if s.PackagePower > s.Limit {
		return ReasonPowerOverLimit
	}
	return ReasonPowerUnderLimit
}
