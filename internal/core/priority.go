package core

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/units"
)

// Priority implements the paper's two-level priority policy (Sections 4.1
// and 5.1): high-priority (HP) applications run at the maximum possible
// frequency under the power limit; low-priority (LP) applications are
// started at the slowest P-state only when residual power allows, raised
// with the residual, and starved (cores parked in a deep C-state) when it
// does not. Starving LP applications deliberately frees turbo headroom for
// the HP class — the paper's chosen trade-off ("in our implementation we
// starve the LP applications"), which is why Figure 7 shows HP applications
// running *faster* at 40 W than at 85 W when most of the machine is LP.
type Priority struct {
	explain
	chip     platform.Chip
	specs    []AppSpec
	limit    units.Watts
	partial  bool
	hp, lp   []int // indices into specs
	hpFreq   units.Hertz
	lpFreq   units.Hertz
	lpActive int // number of LP apps currently running (0 = class starved)

	// scrActs is the reusable action buffer; the slice actions() returns is
	// valid until the next Initial/Update call, per the Policy contract.
	scrActs []Action
}

// PriorityConfig parameterises the priority policy.
type PriorityConfig struct {
	// Limit is the package power limit the policy enforces.
	Limit units.Watts

	// PartialLP enables the paper's Section 4.4 alternative: instead of
	// starving the low-priority class all-or-nothing, park only as many
	// LP cores as the residual power requires ("the policy should disable
	// cores and let the OS scheduler time-slice applications on the
	// remaining cores"). LP cores are parked from the highest index down.
	// The trade-off is real: running LP cores raises occupancy, which can
	// shrink the HP class's turbo bin.
	PartialLP bool
}

// NewPriority builds the policy. Shares are ignored; only the
// HighPriority flag of each spec matters.
func NewPriority(chip platform.Chip, specs []AppSpec, cfg PriorityConfig) (*Priority, error) {
	if err := chip.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := validateSpecs(specs, false); err != nil {
		return nil, err
	}
	if cfg.Limit <= 0 {
		return nil, fmt.Errorf("core: priority policy needs a positive power limit")
	}
	p := &Priority{
		chip:    chip,
		specs:   append([]AppSpec(nil), specs...),
		limit:   cfg.Limit,
		partial: cfg.PartialLP,
	}
	for i, s := range p.specs {
		if s.HighPriority {
			p.hp = append(p.hp, i)
		} else {
			p.lp = append(p.lp, i)
		}
	}
	if len(p.hp) == 0 {
		return nil, fmt.Errorf("core: priority policy needs at least one high-priority app")
	}
	p.scrActs = make([]Action, 0, len(p.specs))
	return p, nil
}

// Name implements Policy.
func (p *Priority) Name() string { return "priority" }

// LPRunning reports whether any low-priority application is unparked.
func (p *Priority) LPRunning() bool { return p.lpActive > 0 }

// LPActive reports how many low-priority applications are unparked.
func (p *Priority) LPActive() int { return p.lpActive }

// hpCeiling is the HP class's frequency ceiling at the current occupancy.
func (p *Priority) hpCeiling() units.Hertz {
	active := len(p.hp) + p.lpActive
	ceil := p.chip.Freq.Max()
	for _, i := range p.hp {
		if c := p.chip.Freq.Ceiling(active, p.specs[i].AVX); c < ceil {
			ceil = c
		}
	}
	return ceil
}

// Initial implements Policy: HP applications start at the maximum P-state;
// LP applications start parked, awaiting residual power.
func (p *Priority) Initial() []Action {
	p.setReasons(ReasonInitial)
	p.lpActive = 0
	p.lpFreq = p.chip.Freq.Min
	p.hpFreq = p.hpCeiling()
	return p.actions()
}

func (p *Priority) actions() []Action {
	// Internal class frequencies stay continuous (the α-model control
	// state); emitted actions are quantised to valid P-states.
	hpF := p.chip.Freq.Quantize(p.hpFreq)
	lpF := p.chip.Freq.Quantize(p.lpFreq)
	out := p.scrActs[:0]
	for _, i := range p.hp {
		out = append(out, Action{Core: p.specs[i].Core, Freq: hpF})
	}
	for k, i := range p.lp {
		if k < p.lpActive {
			out = append(out, Action{Core: p.specs[i].Core, Freq: lpF})
		} else {
			out = append(out, Action{Core: p.specs[i].Core, Park: true})
		}
	}
	return out
}

// lpStartCost estimates the package power cost of waking n more LP
// applications at the minimum frequency: the LP cores' own draw plus the
// HP class's extra draw from losing turbo headroom (higher occupancy
// lowers the turbo bin). Activity is unknown before the apps run, so
// nominal activity 1.0 is assumed; the margin in Update absorbs the
// estimate's error.
func (p *Priority) lpStartCost(n int) units.Watts {
	cost := units.Watts(n) * p.chip.Power.CorePower(p.chip.Freq.Min, 1)
	ceilNow := p.chip.Freq.Ceiling(len(p.hp)+p.lpActive, false)
	ceilAfter := p.chip.Freq.Ceiling(len(p.hp)+p.lpActive+n, false)
	for _, i := range p.hp {
		if p.specs[i].AVX {
			continue // AVX licence already binds; occupancy change is secondary
		}
		fNow := p.hpFreq
		if ceilNow < fNow {
			fNow = ceilNow
		}
		fAfter := p.hpFreq
		if ceilAfter < fAfter {
			fAfter = ceilAfter
		}
		if fNow > fAfter {
			cost += p.chip.Power.CorePower(fNow, 1) - p.chip.Power.CorePower(fAfter, 1)
		}
	}
	return cost
}

// freqDelta converts the power gap into a per-core frequency step with the
// paper's α model (α = PowerDelta/MaxPower scaled by the frequency range),
// so the loop settles in a few control intervals regardless of the chip's
// P-state granularity (Ryzen's 25 MHz quanta would otherwise take minutes
// of one-step moves). The magnitude is floored at one quantum so the loop
// never stalls.
func (p *Priority) freqDelta(s Snapshot) units.Hertz {
	gap := float64(s.Limit - s.PackagePower)
	d := units.Hertz(gap / float64(p.chip.RAPLMax) * float64(p.chip.Freq.Max()))
	if d > 0 && d < p.chip.Freq.Step {
		d = p.chip.Freq.Step
	}
	if d < 0 && d > -p.chip.Freq.Step {
		d = -p.chip.Freq.Step
	}
	return d
}

// Update implements Policy. Over the limit it takes power from the LP
// class first (throttle, then starve — one app at a time in partial mode,
// the whole class otherwise); only with LP fully starved does it throttle
// HP. Under the limit it restores HP to maximum first, then wakes LP
// applications the residual affords, then raises the LP frequency.
func (p *Priority) Update(s Snapshot) []Action {
	switch {
	case s.PackagePower > s.Limit:
		d := p.freqDelta(s) // negative
		switch {
		case p.lpActive > 0 && p.lpFreq > p.chip.Freq.Min:
			p.setReasons(ReasonPowerOverLimit, ReasonThrottleLP)
			p.lpFreq = (p.lpFreq + d).Clamp(p.chip.Freq.Min, p.lpCeiling())
		case p.lpActive > 0:
			// LP already at the floor: starve one app (partial mode) or
			// the whole class (the paper's implementation).
			p.setReasons(ReasonPowerOverLimit, ReasonParkStarvedLP)
			if p.partial {
				p.lpActive--
			} else {
				p.lpActive = 0
			}
			p.lpFreq = p.chip.Freq.Min
		case p.hpFreq > p.chip.Freq.Min:
			p.setReasons(ReasonPowerOverLimit, ReasonThrottleHP)
			p.hpFreq = (p.hpFreq + d).Clamp(p.chip.Freq.Min, p.hpCeiling())
		default:
			p.setReasons(ReasonPowerOverLimit, ReasonSaturated)
		}
	case s.PackagePower < s.Limit*0.97:
		d := p.freqDelta(s) // positive
		residual := s.Limit - s.PackagePower
		grow := 0
		if p.lpActive < len(p.lp) {
			if p.partial {
				grow = 1
			} else if p.lpActive == 0 {
				grow = len(p.lp)
			}
		}
		switch {
		case p.hpFreq < p.hpCeiling():
			p.setReasons(ReasonPowerUnderLimit, ReasonRestoreHP)
			p.hpFreq = (p.hpFreq + d).Clamp(p.chip.Freq.Min, p.hpCeiling())
		case grow > 0 && residual > p.lpStartCost(grow)*1.2:
			p.setReasons(ReasonPowerUnderLimit, ReasonWakeLP)
			p.lpActive += grow
			p.lpFreq = p.chip.Freq.Min
			// Waking LP raises occupancy and may shrink the HP turbo bin.
			if c := p.hpCeiling(); p.hpFreq > c {
				p.hpFreq = c
			}
		case p.lpActive > 0 && p.lpFreq < p.lpCeiling():
			p.setReasons(ReasonPowerUnderLimit, ReasonRaiseLP)
			p.lpFreq = (p.lpFreq + d).Clamp(p.chip.Freq.Min, p.lpCeiling())
		default:
			p.setReasons(ReasonPowerUnderLimit, ReasonSaturated)
		}
	default:
		p.setReasons(ReasonWithinDeadband)
	}
	return p.actions()
}

// lpCeiling is the LP class's frequency ceiling at current occupancy.
func (p *Priority) lpCeiling() units.Hertz {
	active := len(p.hp) + p.lpActive
	ceil := p.chip.Freq.Max()
	for _, i := range p.lp {
		if c := p.chip.Freq.Ceiling(active, p.specs[i].AVX); c < ceil {
			ceil = c
		}
	}
	return ceil
}
