package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestUsefulFrequencyMemoryBound(t *testing.T) {
	spec := platform.Skylake().Freq
	lbm := workload.MustByName("lbm")
	fLo, fHi := 1*units.GHz, 2*units.GHz
	got, err := UsefulFrequency(fLo, lbm.IPS(fLo), fHi, lbm.IPS(fHi), spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// lbm saturates hard: at the default elasticity threshold its useful
	// frequency is cpi/stall = 0.9/0.55e-9 ≈ 1.64 GHz, far below max.
	if got >= 2*units.GHz {
		t.Errorf("lbm useful frequency = %v, want well below max", got)
	}
	if got < spec.Min {
		t.Errorf("useful frequency %v below chip minimum", got)
	}
	// The cap marks the half-elastic point: above it, less than half of
	// additional cycles buy performance.
	elasticity := (lbm.BaseCPI / float64(got)) / (lbm.BaseCPI/float64(got) + lbm.MemStall)
	if elasticity < 0.48 || elasticity > 0.56 {
		t.Errorf("elasticity at cap = %.3f, want ~0.5", elasticity)
	}
}

func TestUsefulFrequencyCoreBound(t *testing.T) {
	spec := platform.Skylake().Freq
	exch := workload.MustByName("exchange2")
	fLo, fHi := 1*units.GHz, 2*units.GHz
	got, err := UsefulFrequency(fLo, exch.IPS(fLo), fHi, exch.IPS(fHi), spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Core-bound code keeps benefiting all the way up.
	if got != spec.Max() {
		t.Errorf("exchange2 useful frequency = %v, want max", got)
	}
	// A threshold of 1 short-circuits to max.
	if f, err := UsefulFrequency(fLo, exch.IPS(fLo), fHi, exch.IPS(fHi), spec, 1.5); err != nil || f != spec.Max() {
		t.Errorf("threshold>=1 gave %v, %v", f, err)
	}
}

func TestUsefulFrequencyErrors(t *testing.T) {
	spec := platform.Skylake().Freq
	if _, err := UsefulFrequency(1*units.GHz, 1e9, 1*units.GHz, 2e9, spec, 0.5); err == nil {
		t.Error("equal frequencies accepted")
	}
	if _, err := UsefulFrequency(1*units.GHz, 0, 2*units.GHz, 1e9, spec, 0.5); err == nil {
		t.Error("zero IPS accepted")
	}
	if _, err := UsefulFrequency(1*units.GHz, 2e9, 2*units.GHz, 1e9, spec, 0.5); err == nil {
		t.Error("decreasing IPS accepted")
	}
}

func TestUsefulFrequencySwappedArgsAgree(t *testing.T) {
	spec := platform.Skylake().Freq
	lbm := workload.MustByName("lbm")
	a, err := UsefulFrequency(1*units.GHz, lbm.IPS(1*units.GHz), 2*units.GHz, lbm.IPS(2*units.GHz), spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UsefulFrequency(2*units.GHz, lbm.IPS(2*units.GHz), 1*units.GHz, lbm.IPS(1*units.GHz), spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("order dependence: %v vs %v", a, b)
	}
}

// A MaxFreq cap on a spec must bind the share policy's ceiling.
func TestSpecMaxFreqCapsCeiling(t *testing.T) {
	chip := platform.Skylake()
	specs := []AppSpec{
		{Name: "lbm", Core: 0, Shares: 50, AVX: true, MaxFreq: 1200 * units.MHz},
		{Name: "exchange2", Core: 1, Shares: 50},
	}
	p, err := NewFrequencyShares(chip, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	if f := freqOf(actions, 0); f > 1200*units.MHz {
		t.Errorf("capped app initialised at %v", f)
	}
	// Hammer with surplus power: the capped app must never exceed its cap.
	for i := 0; i < 50; i++ {
		actions = p.Update(Snapshot{Limit: 85, PackagePower: 30})
		if f := freqOf(actions, 0); f > 1200*units.MHz {
			t.Fatalf("cap violated: %v", f)
		}
	}
	if f := freqOf(actions, 1); f <= 1200*units.MHz {
		t.Errorf("uncapped app stuck at %v", f)
	}
}

// A cap below the chip minimum clamps to the minimum rather than panicking
// or underflowing.
func TestSpecMaxFreqBelowMin(t *testing.T) {
	chip := platform.Skylake()
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 50, MaxFreq: 100 * units.MHz},
		{Name: "b", Core: 1, Shares: 50},
	}
	p, err := NewFrequencyShares(chip, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	if f := freqOf(actions, 0); f != chip.Freq.Min {
		t.Errorf("sub-minimum cap gave %v, want chip minimum", f)
	}
}
