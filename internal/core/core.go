// Package core implements the paper's contribution: differential
// power-delivery policies for applications co-located on one socket under a
// package power limit.
//
// Two policy classes are provided (Section 4): a two-level priority policy
// (high-priority applications run at maximum speed, low-priority
// applications receive residual power and may be starved), and
// proportional-share policies over three different resources — power,
// frequency, and performance (Section 4.2). Every share policy is built
// from the paper's three functions (Section 5.2):
//
//   - an initial distribution function that turns shares into initial
//     per-application resource limits;
//   - a redistribution function that distributes the gap between measured
//     package power and the power limit across non-saturated applications,
//     applying min-funding revocation [Waldspurger] so saturated
//     applications' portions flow to the rest;
//   - a translation function that converts resource limits into quantised
//     per-core frequency requests (clustered to three P-states on Ryzen).
//
// Policies are pure controllers: they consume telemetry snapshots and emit
// per-core actions, and are driven by the daemon package.
package core

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// AppSpec is the operator's description of one managed application.
type AppSpec struct {
	Name         string
	Core         int          // core the application is pinned to
	Shares       units.Shares // proportional-share weight
	HighPriority bool         // priority-policy class
	AVX          bool         // subject to the AVX frequency licence

	// BaselineIPS is the application's standalone instructions per second
	// at maximum frequency, measured offline. Required by the
	// performance-share policy to normalise measured IPS.
	BaselineIPS float64

	// MaxFreq optionally caps the application's frequency below the
	// chip's ceiling — the paper's Section 4.4 modification: "run
	// applications at the highest useful frequency rather than the
	// highest possible frequency". Zero means uncapped. See
	// UsefulFrequency for deriving the cap from measurements.
	MaxFreq units.Hertz
}

// AppState is one application's telemetry within a snapshot.
type AppState struct {
	Spec   AppSpec
	Freq   units.Hertz // measured active frequency over the interval
	IPS    float64     // measured instructions per second
	Power  units.Watts // measured per-core power (0 where unsupported)
	Parked bool        // core currently held in a deep C-state
}

// NormPerf returns measured performance normalised to the standalone
// baseline, the quantity performance shares distribute. Zero baseline
// yields zero.
func (a AppState) NormPerf() float64 {
	if a.Spec.BaselineIPS <= 0 {
		return 0
	}
	return a.IPS / a.Spec.BaselineIPS
}

// Snapshot is one control interval's input to a policy.
type Snapshot struct {
	Time         time.Duration
	Limit        units.Watts
	PackagePower units.Watts
	Apps         []AppState

	// Services carries per-service tail-latency telemetry when a
	// latency-service model is wired into the daemon (Config.SLO). It
	// is empty on daemons without one; policies that consume it must
	// fall back to share behaviour in that case.
	Services []ServiceSLO
}

// ServiceSLO is one latency service's sliding-window telemetry within a
// snapshot. Latencies are seconds; a zero P99 means the window holds no
// completions yet.
type ServiceSLO struct {
	Name     string
	P50      float64
	P90      float64
	P99      float64
	Target   float64 // p99 objective in seconds; 0 = no SLO configured
	Rate     float64 // completions per second over the window
	QueueLen int     // requests waiting (not in service)
	Dropped  uint64  // cumulative queue-full rejections
	Timeouts uint64  // cumulative queueing-deadline expiries
}

// Met reports whether the window's p99 meets the target. Services with
// no target or no completions yet are trivially met.
func (s ServiceSLO) Met() bool {
	return s.Target <= 0 || s.P99 <= 0 || s.P99 <= s.Target
}

// SLOTarget names one service's p99 objective. It configures both the
// SLO-feedback policy (which services are interactive) and the daemon
// (which stamps the live target into snapshot telemetry, so a
// Reconfigure can move objectives mid-run).
type SLOTarget struct {
	Service string
	P99     time.Duration
}

// Action is one per-core decision emitted by a policy.
type Action struct {
	Core int
	Freq units.Hertz // requested P-state frequency (ignored when parking)
	Park bool        // park the core (deep C-state, application starved)
}

// Policy is a differential power-delivery controller.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Initial returns the initial distribution's actions, applied before
	// the first control interval.
	Initial() []Action
	// Update consumes one telemetry snapshot and returns redistribution
	// actions (already translated to frequencies).
	Update(Snapshot) []Action
}

// validateSpecs performs the checks shared by all policy constructors.
func validateSpecs(specs []AppSpec, needShares bool) error {
	if len(specs) == 0 {
		return fmt.Errorf("core: no applications")
	}
	cores := make(map[int]bool)
	for _, s := range specs {
		if s.Name == "" {
			return fmt.Errorf("core: app on core %d has no name", s.Core)
		}
		if s.Core < 0 {
			return fmt.Errorf("core: app %s has negative core", s.Name)
		}
		if cores[s.Core] {
			return fmt.Errorf("core: core %d assigned twice", s.Core)
		}
		cores[s.Core] = true
		if needShares && s.Shares <= 0 {
			return fmt.Errorf("core: app %s needs positive shares", s.Name)
		}
	}
	return nil
}
