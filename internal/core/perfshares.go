package core

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/units"
)

// PerformanceShares distributes *performance loss* proportionally to shares
// (Section 5.2, "Performance Shares"): applications with more shares suffer
// less slowdown relative to running alone at maximum frequency. It requires
// per-application performance feedback — IPS normalised to an offline
// standalone baseline — which makes it the most demanding policy and, as
// the paper observes, the least stable: IPS moves with program phase, so
// the loop keeps rebalancing.
//
// Targets are normalised performance limits derived from a water level:
// target_i = clamp(level · sᵢ/s_max, minNormPerf, 1).
type PerformanceShares struct {
	shareBase
	explain
	level   float64
	targets []float64
}

// minNormPerf is the floor for performance targets: the paper's share
// policies never starve, they hold applications at least at the minimum
// frequency, which corresponds to a small but positive normalised
// performance.
const minNormPerf = 0.02

// NewPerformanceShares builds the policy. Every spec must carry a
// standalone baseline.
func NewPerformanceShares(chip platform.Chip, specs []AppSpec, cfg ShareConfig) (*PerformanceShares, error) {
	b, err := newShareBase(chip, specs, cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		if s.BaselineIPS <= 0 {
			return nil, fmt.Errorf("core: performance shares need BaselineIPS for %s", s.Name)
		}
	}
	return &PerformanceShares{shareBase: b}, nil
}

// Name implements Policy.
func (p *PerformanceShares) Name() string { return "performance-shares" }

// Targets exposes the current normalised performance limits.
func (p *PerformanceShares) Targets() []float64 {
	return append([]float64(nil), p.targets...)
}

func (p *PerformanceShares) bounds() (bases, lo, hi []float64) {
	maxShare := p.maxShare()
	bases, lo, hi = p.scrBases, p.scrLo, p.scrHi
	for i, s := range p.specs {
		bases[i] = s.Shares.Fraction(maxShare)
		lo[i] = minNormPerf
		hi[i] = 1
	}
	return bases, lo, hi
}

// materialize fills the normalised performance targets for the current
// level without allocating.
func (p *PerformanceShares) materialize(bases, lo, hi []float64) {
	if p.targets == nil {
		p.targets = make([]float64, len(p.specs))
	}
	applyLevelInto(p.targets, p.level, bases, lo, hi)
}

// Initial implements Policy: the highest-share application targets full
// standalone performance, the rest their share proportion of it. Without
// measurements yet, the first translation assumes performance tracks
// frequency.
func (p *PerformanceShares) Initial() []Action {
	p.setReasons(ReasonInitial)
	p.level = 1
	bases, lo, hi := p.bounds()
	p.materialize(bases, lo, hi)
	freqs := p.scrFreqs
	for i := range p.specs {
		f := units.Hertz(p.targets[i] * float64(p.chip.Freq.Max()))
		freqs[i] = f.Clamp(p.chip.Freq.Min, p.ceiling(i))
	}
	return p.translate(freqs)
}

// Update implements Policy: the power gap becomes a performance budget
// (α · MaxPerformance · NumAvailableCores with MaxPerformance = 1 in
// normalised units) absorbed by moving the water level; the translation
// scales each core's frequency by the ratio of its target to its measured
// normalised performance.
func (p *PerformanceShares) Update(s Snapshot) []Action {
	if p.targets == nil {
		p.Initial()
	}
	bases, lo, hi := p.bounds()
	if !p.withinDeadband(s) {
		p.setReasons(gapReason(s), ReasonShareRebalance)
		perfDelta := p.alpha(s) * 1.0 * float64(len(p.specs))
		var cur float64
		for _, t := range p.targets {
			cur += t
		}
		p.level = solveLevel(bases, lo, hi, cur+perfDelta)
		p.materialize(bases, lo, hi)
	} else {
		p.setReasons(ReasonWithinDeadband, ReasonTranslateOnly)
	}
	// Translation always runs: even inside the deadband, measured
	// performance drifts with program phase and the frequencies must track
	// the existing targets.
	freqs := p.scrFreqs
	for i, spec := range p.specs {
		st := stateForHint(s, spec.Core, i)
		var f units.Hertz
		switch {
		case st == nil || st.Freq <= 0 || st.NormPerf() <= 1e-3:
			// No useful measurement yet: assume performance tracks
			// frequency.
			f = units.Hertz(p.targets[i] * float64(p.chip.Freq.Max()))
		default:
			f = st.Freq * units.Hertz(p.targets[i]/st.NormPerf())
		}
		freqs[i] = f.Clamp(p.chip.Freq.Min, p.ceiling(i))
	}
	return p.translate(freqs)
}
