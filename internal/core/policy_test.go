package core

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/units"
)

func skySpecs2() []AppSpec {
	return []AppSpec{
		{Name: "leela", Core: 0, Shares: 90, BaselineIPS: 2e9},
		{Name: "cactusBSSN", Core: 1, Shares: 10, BaselineIPS: 1.5e9},
	}
}

func freqOf(actions []Action, core int) units.Hertz {
	for _, a := range actions {
		if a.Core == core {
			return a.Freq
		}
	}
	return -1
}

func parked(actions []Action, core int) bool {
	for _, a := range actions {
		if a.Core == core {
			return a.Park
		}
	}
	return false
}

func TestFrequencySharesConstructor(t *testing.T) {
	sky := platform.Skylake()
	if _, err := NewFrequencyShares(sky, nil, ShareConfig{}); err == nil {
		t.Error("empty specs accepted")
	}
	bad := skySpecs2()
	bad[0].Shares = 0
	if _, err := NewFrequencyShares(sky, bad, ShareConfig{}); err == nil {
		t.Error("zero shares accepted")
	}
	oob := skySpecs2()
	oob[0].Core = 99
	if _, err := NewFrequencyShares(sky, oob, ShareConfig{}); err == nil {
		t.Error("core beyond chip accepted")
	}
	badChip := sky
	badChip.NumCores = 0
	if _, err := NewFrequencyShares(badChip, skySpecs2(), ShareConfig{}); err == nil {
		t.Error("invalid chip accepted")
	}
}

func TestFrequencySharesInitialProportions(t *testing.T) {
	p, err := NewFrequencyShares(platform.Skylake(), skySpecs2(), ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	if p.Name() != "frequency-shares" {
		t.Errorf("Name = %q", p.Name())
	}
	f0, f1 := freqOf(actions, 0), freqOf(actions, 1)
	// Highest-share app at its ceiling (2 apps active: 3.0 GHz bin).
	if f0 != 3000*units.MHz {
		t.Errorf("high-share initial = %v, want 3 GHz", f0)
	}
	// Low-share app at 10/90 of max, floored at Min (800 MHz > 333 MHz).
	if f1 != 800*units.MHz {
		t.Errorf("low-share initial = %v, want the 800 MHz floor", f1)
	}
}

func TestFrequencySharesOverLimitWithdrawsProportionally(t *testing.T) {
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 50},
		{Name: "b", Core: 1, Shares: 50},
	}
	p, err := NewFrequencyShares(platform.Skylake(), specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	before := p.Targets()
	p.Update(Snapshot{Limit: 50, PackagePower: 60, Apps: []AppState{
		{Spec: specs[0], Freq: before[0]},
		{Spec: specs[1], Freq: before[1]},
	}})
	after := p.Targets()
	if !(after[0] < before[0] && after[1] < before[1]) {
		t.Errorf("targets did not drop: %v -> %v", before, after)
	}
	// Equal shares: equal withdrawal.
	d0, d1 := before[0]-after[0], before[1]-after[1]
	if math.Abs(float64(d0-d1)) > 1 {
		t.Errorf("unequal withdrawal: %v vs %v", d0, d1)
	}
}

func TestFrequencySharesUnderLimitGrowsAndSaturates(t *testing.T) {
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 90},
		{Name: "b", Core: 1, Shares: 10},
	}
	sky := platform.Skylake()
	p, err := NewFrequencyShares(sky, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	// App a is already at its ceiling: all growth must flow to b
	// (min-funding revocation).
	before := p.Targets()
	p.Update(Snapshot{Limit: 85, PackagePower: 40})
	after := p.Targets()
	if after[0] != before[0] {
		t.Errorf("saturated app target moved: %v -> %v", before[0], after[0])
	}
	if after[1] <= before[1] {
		t.Errorf("unsaturated app did not grow: %v -> %v", before[1], after[1])
	}
}

func TestFrequencySharesDeadband(t *testing.T) {
	p, err := NewFrequencyShares(platform.Skylake(), skySpecs2(), ShareConfig{Deadband: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	if got := p.Update(Snapshot{Limit: 50, PackagePower: 49.8}); got != nil {
		t.Errorf("deadband update returned actions: %v", got)
	}
}

func TestFrequencySharesTargetsNeverLeaveRange(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewFrequencyShares(sky, skySpecs2(), ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	// Hammer with extreme snapshots.
	for i := 0; i < 100; i++ {
		limit := units.Watts(20 + i%60)
		power := units.Watts(100 - i%90)
		p.Update(Snapshot{Limit: limit, PackagePower: power})
		for _, f := range p.Targets() {
			if f < sky.Freq.Min || f > sky.Freq.Max() {
				t.Fatalf("target out of range: %v", f)
			}
		}
	}
}

func TestFrequencySharesUpdateWithoutInitial(t *testing.T) {
	p, err := NewFrequencyShares(platform.Skylake(), skySpecs2(), ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Update before Initial must self-initialise, not panic.
	actions := p.Update(Snapshot{Limit: 50, PackagePower: 80})
	if len(actions) == 0 {
		t.Error("no actions")
	}
}

func TestFrequencySharesRyzenClustering(t *testing.T) {
	ryz := platform.Ryzen()
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 100}, {Name: "b", Core: 1, Shares: 80},
		{Name: "c", Core: 2, Shares: 60}, {Name: "d", Core: 3, Shares: 40},
		{Name: "e", Core: 4, Shares: 20}, {Name: "f", Core: 5, Shares: 10},
	}
	p, err := NewFrequencyShares(ryz, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	set := make(map[units.Hertz]bool)
	for _, a := range actions {
		set[a.Freq] = true
	}
	if len(set) > 3 {
		t.Errorf("Ryzen actions use %d P-states, want <= 3", len(set))
	}
}

func TestPerformanceSharesRequiresBaselines(t *testing.T) {
	specs := skySpecs2()
	specs[1].BaselineIPS = 0
	if _, err := NewPerformanceShares(platform.Skylake(), specs, ShareConfig{}); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestPerformanceSharesInitial(t *testing.T) {
	p, err := NewPerformanceShares(platform.Skylake(), skySpecs2(), ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	tg := p.Targets()
	if math.Abs(tg[0]-1.0) > 1e-9 {
		t.Errorf("high-share target = %v, want 1.0", tg[0])
	}
	if math.Abs(tg[1]-10.0/90) > 1e-9 {
		t.Errorf("low-share target = %v, want 1/9", tg[1])
	}
	if f := freqOf(actions, 0); f != 3000*units.MHz {
		t.Errorf("high-share initial freq = %v", f)
	}
}

func TestPerformanceSharesTranslationTracksMeasurement(t *testing.T) {
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 50, BaselineIPS: 2e9},
		{Name: "b", Core: 1, Shares: 50, BaselineIPS: 2e9},
	}
	p, err := NewPerformanceShares(platform.Skylake(), specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	// App a overshoots its performance target (norm 1.0 vs target after
	// withdrawal), app b undershoots; in the deadband the translation must
	// still move a down and b up.
	snap := Snapshot{
		Limit: 50, PackagePower: 50,
		Apps: []AppState{
			{Spec: specs[0], Freq: 2 * units.GHz, IPS: 2e9},   // norm 1.0
			{Spec: specs[1], Freq: 2 * units.GHz, IPS: 0.8e9}, // norm 0.4
		},
	}
	// Force equal targets of 0.7 by construction: withdraw from initial.
	p.targets = []float64{0.7, 0.7}
	actions := p.Update(snap)
	fa, fb := freqOf(actions, 0), freqOf(actions, 1)
	if fa >= 2*units.GHz {
		t.Errorf("overshooting app frequency did not drop: %v", fa)
	}
	if fb <= 2*units.GHz {
		t.Errorf("undershooting app frequency did not rise: %v", fb)
	}
}

func TestPerformanceSharesTargetsStayInRange(t *testing.T) {
	p, err := NewPerformanceShares(platform.Skylake(), skySpecs2(), ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	for i := 0; i < 200; i++ {
		p.Update(Snapshot{Limit: 40, PackagePower: units.Watts(20 + i%50)})
		for _, tg := range p.Targets() {
			if tg < minNormPerf-1e-9 || tg > 1+1e-9 {
				t.Fatalf("target out of range: %v", tg)
			}
		}
	}
}

func TestPowerSharesRequiresPerCorePower(t *testing.T) {
	if _, err := NewPowerShares(platform.Skylake(), skySpecs2(), ShareConfig{}); err == nil {
		t.Error("Skylake accepted for power shares")
	}
	if _, err := NewPowerShares(platform.Ryzen(), skySpecs2(), ShareConfig{}); err != nil {
		t.Errorf("Ryzen rejected: %v", err)
	}
}

func TestPowerSharesInitialProportions(t *testing.T) {
	ryz := platform.Ryzen()
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 70},
		{Name: "b", Core: 1, Shares: 30},
	}
	p, err := NewPowerShares(ryz, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.InitialForLimit(50)
	tg := p.Targets()
	if tg[0] <= tg[1] {
		t.Errorf("targets not ordered by shares: %v", tg)
	}
	// Budget excludes uncore and idle cores.
	budget := 50 - float64(ryz.Power.UncorePower) - 6*float64(ryz.Power.IdleCorePower)
	if got := float64(tg[0] + tg[1]); got > budget+1e-6 {
		t.Errorf("targets %v exceed budget %v", got, budget)
	}
	if f := freqOf(actions, 0); f <= freqOf(actions, 1) {
		t.Errorf("frequencies not ordered: %v vs %v", f, freqOf(actions, 1))
	}
}

func TestPowerSharesTranslationFeedback(t *testing.T) {
	ryz := platform.Ryzen()
	specs := []AppSpec{
		{Name: "a", Core: 0, Shares: 50},
		{Name: "b", Core: 1, Shares: 50},
	}
	p, err := NewPowerShares(ryz, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.InitialForLimit(50)
	tg := p.Targets()
	snap := Snapshot{
		Limit: 50, PackagePower: 50,
		Apps: []AppState{
			// App a draws double its limit, app b half.
			{Spec: specs[0], Freq: 2 * units.GHz, Power: tg[0] * 2},
			{Spec: specs[1], Freq: 2 * units.GHz, Power: tg[1] / 2},
		},
	}
	actions := p.Update(snap)
	fa, fb := freqOf(actions, 0), freqOf(actions, 1)
	if fa >= 2*units.GHz {
		t.Errorf("over-budget app frequency did not drop: %v", fa)
	}
	if fb <= 2*units.GHz {
		t.Errorf("under-budget app frequency did not rise: %v", fb)
	}
}

func TestPriorityConstructor(t *testing.T) {
	sky := platform.Skylake()
	hp := []AppSpec{{Name: "h", Core: 0, HighPriority: true}}
	if _, err := NewPriority(sky, hp, PriorityConfig{Limit: 50}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := NewPriority(sky, hp, PriorityConfig{}); err == nil {
		t.Error("zero limit accepted")
	}
	lpOnly := []AppSpec{{Name: "l", Core: 0}}
	if _, err := NewPriority(sky, lpOnly, PriorityConfig{Limit: 50}); err == nil {
		t.Error("no-HP config accepted")
	}
}

func prioritySpecs(nHP, nLP int) []AppSpec {
	specs := make([]AppSpec, 0, nHP+nLP)
	for i := 0; i < nHP; i++ {
		specs = append(specs, AppSpec{Name: "hp", Core: i, HighPriority: true})
	}
	for i := 0; i < nLP; i++ {
		specs = append(specs, AppSpec{Name: "lp", Core: nHP + i})
	}
	return specs
}

func TestPriorityInitialParksLP(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(3, 7), PriorityConfig{Limit: 40})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	// 3 HP active: 4-core turbo bin (2.8 GHz).
	if f := freqOf(actions, 0); f != 2800*units.MHz {
		t.Errorf("HP initial = %v, want 2.8 GHz", f)
	}
	for core := 3; core < 10; core++ {
		if !parked(actions, core) {
			t.Errorf("LP core %d not parked initially", core)
		}
	}
	if p.LPRunning() {
		t.Error("LPRunning true initially")
	}
}

func TestPriorityOverLimitThrottlesLPBeforeHP(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(2, 2), PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	// Force LP running at some speed.
	p.lpActive = len(p.lp)
	p.lpFreq = 1500 * units.MHz
	hpBefore := p.hpFreq
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	if p.lpFreq >= 1500*units.MHz || p.lpFreq < sky.Freq.Min {
		t.Errorf("LP freq = %v, want a downward move within range", p.lpFreq)
	}
	if p.hpFreq != hpBefore {
		t.Error("HP throttled while LP had headroom")
	}
	// Drive LP to the floor, then one more over-limit parks the class.
	p.lpFreq = sky.Freq.Min
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	if p.LPRunning() {
		t.Error("LP not starved at floor under over-limit")
	}
	// With LP starved, HP finally throttles.
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	if p.hpFreq >= hpBefore {
		t.Error("HP did not throttle after LP starved")
	}
}

func TestPriorityUnderLimitRaisesHPThenStartsLP(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(2, 2), PriorityConfig{Limit: 85})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	p.hpFreq = 2 * units.GHz
	p.Update(Snapshot{Limit: 85, PackagePower: 30})
	if p.hpFreq <= 2*units.GHz || p.hpFreq > p.hpCeiling() {
		t.Errorf("HP freq = %v, want an upward move toward the ceiling", p.hpFreq)
	}
	if p.LPRunning() {
		t.Error("LP started before HP reached ceiling")
	}
	// HP at ceiling with huge residual: LP class wakes at the floor.
	p.hpFreq = p.hpCeiling()
	p.Update(Snapshot{Limit: 85, PackagePower: 30})
	if !p.LPRunning() {
		t.Fatal("LP not started despite residual")
	}
	if p.lpFreq != sky.Freq.Min {
		t.Errorf("LP started at %v, want floor", p.lpFreq)
	}
	// Next iteration raises LP.
	p.Update(Snapshot{Limit: 85, PackagePower: 40})
	if p.lpFreq <= sky.Freq.Min || p.lpFreq > p.lpCeiling() {
		t.Errorf("LP freq = %v, want a raise within range", p.lpFreq)
	}
}

func TestPriorityDoesNotStartLPWithoutHeadroom(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(3, 7), PriorityConfig{Limit: 40})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	p.hpFreq = p.hpCeiling()
	// Residual of 4 W cannot cover 7 LP cores plus the HP turbo-bin loss.
	p.Update(Snapshot{Limit: 40, PackagePower: 36})
	if p.LPRunning() {
		t.Error("LP started without sufficient residual")
	}
}

func TestPriorityActionCoverage(t *testing.T) {
	p, err := NewPriority(platform.Skylake(), prioritySpecs(2, 3), PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	actions := p.Initial()
	if len(actions) != 5 {
		t.Fatalf("actions = %d, want one per app", len(actions))
	}
	seen := make(map[int]bool)
	for _, a := range actions {
		seen[a.Core] = true
	}
	for core := 0; core < 5; core++ {
		if !seen[core] {
			t.Errorf("no action for core %d", core)
		}
	}
}
