package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/units"
)

func TestPartialLPStarvesOneAtATime(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(2, 4), PriorityConfig{Limit: 50, PartialLP: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	p.lpActive = 4
	p.lpFreq = sky.Freq.Min
	// Over the limit with LP at the floor: exactly one LP app parks.
	p.Update(Snapshot{Limit: 50, PackagePower: 55})
	if p.LPActive() != 3 {
		t.Errorf("LPActive = %d, want 3", p.LPActive())
	}
	// The classic policy would have parked the whole class.
	classic, err := NewPriority(sky, prioritySpecs(2, 4), PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	classic.Initial()
	classic.lpActive = 4
	classic.lpFreq = sky.Freq.Min
	classic.Update(Snapshot{Limit: 50, PackagePower: 55})
	if classic.LPActive() != 0 {
		t.Errorf("classic LPActive = %d, want 0", classic.LPActive())
	}
}

func TestPartialLPGrowsOneAtATime(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(2, 4), PriorityConfig{Limit: 85, PartialLP: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	p.hpFreq = p.hpCeiling()
	p.Update(Snapshot{Limit: 85, PackagePower: 30})
	if p.LPActive() != 1 {
		t.Errorf("LPActive after first grow = %d, want 1", p.LPActive())
	}
	p.hpFreq = p.hpCeiling() // occupancy changed the ceiling
	p.Update(Snapshot{Limit: 85, PackagePower: 35})
	if p.LPActive() != 2 {
		t.Errorf("LPActive after second grow = %d, want 2", p.LPActive())
	}
}

func TestPartialActionsParkTail(t *testing.T) {
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(2, 3), PriorityConfig{Limit: 50, PartialLP: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	p.lpActive = 2
	actions := p.actions()
	// LP cores are 2, 3, 4; the first two run, the last parks.
	if parked(actions, 2) || parked(actions, 3) {
		t.Error("running LP cores parked")
	}
	if !parked(actions, 4) {
		t.Error("tail LP core not parked")
	}
}

// Closed-loop contrast at 40 W with 3 HP / 7 LP: the classic policy starves
// everything and boosts HP turbo; partial mode runs some LP at the cost of
// the HP turbo bin — the trade the paper describes.
func TestPartialVsClassicTradeoff(t *testing.T) {
	// This is exercised end-to-end in the experiments package
	// (ConsolidationStudy); here we verify the policy-level invariant that
	// partial mode never reports more active LP apps than exist and never
	// goes negative, across a noisy snapshot sequence.
	sky := platform.Skylake()
	p, err := NewPriority(sky, prioritySpecs(3, 7), PriorityConfig{Limit: 40, PartialLP: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	powers := []units.Watts{60, 55, 45, 38, 35, 42, 39, 36, 41, 37, 44, 33, 38, 40, 39}
	for i := 0; i < 100; i++ {
		p.Update(Snapshot{Limit: 40, PackagePower: powers[i%len(powers)]})
		if p.LPActive() < 0 || p.LPActive() > 7 {
			t.Fatalf("LPActive out of range: %d", p.LPActive())
		}
	}
}
