package core

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/units"
)

// PriorityShares composes the paper's two policy classes the way
// Section 5.1 describes: "If the total power is above the target, the
// daemon lowers the P-state of all HP applications... This uses one of the
// proportional share policies described below." Applications are split
// into the HP and LP priority classes; *within* each class, frequency is
// distributed by shares through the same water-level mechanism as the
// standalone frequency-share policy. The plain Priority policy is the
// degenerate case where every application in a class holds equal shares
// ("in the absence of a separate proportional share policy, all HP and all
// LP applications run at the same P-states").
type PriorityShares struct {
	explain
	chip    platform.Chip
	specs   []AppSpec
	partial bool
	hp, lp  []int // indices into specs

	hpLevel  float64
	lpLevel  float64
	lpActive int

	// Per-interval scratch, sized for the full spec set and sliced down to
	// the class being worked on. Class use is strictly sequential (the HP
	// targets are consumed into actions before the LP targets are computed)
	// so one shared set suffices. The Action slice actions() returns is
	// owned by this scratch: valid until the next Initial/Update call.
	scrBases []float64
	scrLo    []float64
	scrHi    []float64
	scrLvl   []float64
	scrT     []units.Hertz
	scrFreqs []units.Hertz
	scrActs  []Action
	cluster  *pstateClusterer
}

// NewPriorityShares builds the composed policy. Every spec needs positive
// shares; the HighPriority flag selects the class.
func NewPriorityShares(chip platform.Chip, specs []AppSpec, cfg PriorityConfig) (*PriorityShares, error) {
	if err := chip.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := validateSpecs(specs, true); err != nil {
		return nil, err
	}
	if cfg.Limit <= 0 {
		return nil, fmt.Errorf("core: priority policy needs a positive power limit")
	}
	p := &PriorityShares{
		chip:    chip,
		specs:   append([]AppSpec(nil), specs...),
		partial: cfg.PartialLP,
	}
	for i, s := range p.specs {
		if s.HighPriority {
			p.hp = append(p.hp, i)
		} else {
			p.lp = append(p.lp, i)
		}
	}
	if len(p.hp) == 0 {
		return nil, fmt.Errorf("core: priority policy needs at least one high-priority app")
	}
	n := len(p.specs)
	p.scrBases = make([]float64, n)
	p.scrLo = make([]float64, n)
	p.scrHi = make([]float64, n)
	p.scrLvl = make([]float64, n)
	p.scrT = make([]units.Hertz, n)
	p.scrFreqs = make([]units.Hertz, n)
	p.scrActs = make([]Action, 0, n)
	p.cluster = newPStateClusterer(n, chip.MaxSimultaneousPStates)
	return p, nil
}

// Name implements Policy.
func (p *PriorityShares) Name() string { return "priority+shares" }

// LPActive reports how many low-priority applications are unparked.
func (p *PriorityShares) LPActive() int { return p.lpActive }

// occupancy is the number of cores currently executing.
func (p *PriorityShares) occupancy() int { return len(p.hp) + p.lpActive }

// classBounds builds the water-level inputs for one class at the current
// occupancy.
func (p *PriorityShares) classBounds(idxs []int) (bases, lo, hi []float64) {
	var maxShare units.Shares
	for _, i := range idxs {
		if p.specs[i].Shares > maxShare {
			maxShare = p.specs[i].Shares
		}
	}
	n := len(idxs)
	bases, lo, hi = p.scrBases[:n], p.scrLo[:n], p.scrHi[:n]
	for k, i := range idxs {
		ceil := p.chip.Freq.Ceiling(p.occupancy(), p.specs[i].AVX)
		if mf := p.specs[i].MaxFreq; mf > 0 && mf < ceil {
			ceil = p.chip.Freq.Quantize(mf)
			if ceil < p.chip.Freq.Min {
				ceil = p.chip.Freq.Min
			}
		}
		bases[k] = float64(p.chip.Freq.Max()) * p.specs[i].Shares.Fraction(maxShare)
		lo[k] = float64(p.chip.Freq.Min)
		hi[k] = float64(ceil)
	}
	return bases, lo, hi
}

// classTargets materialises one class's per-app frequencies into the shared
// scratch; the result is valid until the next classTargets/moveLevel/
// classSaturated call.
func (p *PriorityShares) classTargets(idxs []int, level float64) []units.Hertz {
	bases, lo, hi := p.classBounds(idxs)
	lvl := p.scrLvl[:len(idxs)]
	applyLevelInto(lvl, level, bases, lo, hi)
	out := p.scrT[:len(idxs)]
	for i, t := range lvl {
		out[i] = units.Hertz(t)
	}
	return out
}

// moveLevel shifts a class's water level to absorb a total frequency delta.
func (p *PriorityShares) moveLevel(idxs []int, level, freqDelta float64) float64 {
	bases, lo, hi := p.classBounds(idxs)
	lvl := p.scrLvl[:len(idxs)]
	applyLevelInto(lvl, level, bases, lo, hi)
	var cur float64
	for _, t := range lvl {
		cur += t
	}
	return solveLevel(bases, lo, hi, cur+freqDelta)
}

// classSaturated reports whether a class can still move in the given
// direction (+1 up, -1 down).
func (p *PriorityShares) classSaturated(idxs []int, level float64, dir int) bool {
	bases, lo, hi := p.classBounds(idxs)
	ts := p.scrLvl[:len(idxs)]
	applyLevelInto(ts, level, bases, lo, hi)
	for i, t := range ts {
		if dir > 0 && t < hi[i]-1e-6 {
			return false
		}
		if dir < 0 && t > lo[i]+1e-6 {
			return false
		}
	}
	return true
}

// Initial implements Policy: HP starts at level 1 (highest-share HP app at
// its ceiling), LP parked.
func (p *PriorityShares) Initial() []Action {
	p.setReasons(ReasonInitial)
	p.hpLevel = 1
	p.lpLevel = 0
	p.lpActive = 0
	return p.actions()
}

func (p *PriorityShares) actions() []Action {
	out := p.scrActs[:0]
	hpT := p.classTargets(p.hp, p.hpLevel)
	for k, i := range p.hp {
		out = append(out, Action{Core: p.specs[i].Core, Freq: p.chip.Freq.Quantize(hpT[k])})
	}
	if p.lpActive > 0 {
		running := p.lp[:p.lpActive]
		lpT := p.classTargets(running, p.lpLevel)
		for k, i := range running {
			out = append(out, Action{Core: p.specs[i].Core, Freq: p.chip.Freq.Quantize(lpT[k])})
		}
	}
	for _, i := range p.lp[p.lpActive:] {
		out = append(out, Action{Core: p.specs[i].Core, Park: true})
	}
	// The platform's simultaneous-P-state limit applies across classes.
	if p.chip.MaxSimultaneousPStates > 0 {
		freqs := p.scrFreqs[:0]
		for _, a := range out {
			if !a.Park {
				freqs = append(freqs, a.Freq)
			}
		}
		p.cluster.clusterInto(freqs, freqs, p.chip.Freq)
		j := 0
		for i := range out {
			if !out[i].Park {
				out[i].Freq = freqs[j]
				j++
			}
		}
	}
	return out
}

// freqDelta converts the power gap into a class frequency budget (the α
// model, scaled by the class size).
func (p *PriorityShares) freqDelta(s Snapshot, classSize int) float64 {
	alpha := float64(s.Limit-s.PackagePower) / float64(p.chip.RAPLMax)
	d := alpha * float64(p.chip.Freq.Max()) * float64(classSize)
	step := float64(p.chip.Freq.Step)
	if d > 0 && d < step {
		d = step
	}
	if d < 0 && d > -step {
		d = -step
	}
	return d
}

// lpStartCost mirrors Priority.lpStartCost for n additional LP apps.
func (p *PriorityShares) lpStartCost(n int) units.Watts {
	cost := units.Watts(n) * p.chip.Power.CorePower(p.chip.Freq.Min, 1)
	ceilNow := p.chip.Freq.Ceiling(p.occupancy(), false)
	ceilAfter := p.chip.Freq.Ceiling(p.occupancy()+n, false)
	if ceilAfter < ceilNow {
		hpT := p.classTargets(p.hp, p.hpLevel)
		for k, i := range p.hp {
			if p.specs[i].AVX {
				continue
			}
			fNow := hpT[k].Clamp(p.chip.Freq.Min, ceilNow)
			fAfter := hpT[k].Clamp(p.chip.Freq.Min, ceilAfter)
			if fNow > fAfter {
				cost += p.chip.Power.CorePower(fNow, 1) - p.chip.Power.CorePower(fAfter, 1)
			}
		}
	}
	return cost
}

// Update implements Policy with the same ordering as Priority: LP pays
// first on the way down; HP is restored first on the way up.
func (p *PriorityShares) Update(s Snapshot) []Action {
	switch {
	case s.PackagePower > s.Limit:
		d := p.freqDelta(s, max(p.lpActive, 1)) // negative
		switch {
		case p.lpActive > 0 && !p.classSaturated(p.lp[:p.lpActive], p.lpLevel, -1):
			p.setReasons(ReasonPowerOverLimit, ReasonThrottleLP, ReasonShareRebalance)
			p.lpLevel = p.moveLevel(p.lp[:p.lpActive], p.lpLevel, d)
		case p.lpActive > 0:
			p.setReasons(ReasonPowerOverLimit, ReasonParkStarvedLP)
			if p.partial {
				p.lpActive--
			} else {
				p.lpActive = 0
			}
			p.lpLevel = 0
		default:
			p.setReasons(ReasonPowerOverLimit, ReasonThrottleHP, ReasonShareRebalance)
			p.hpLevel = p.moveLevel(p.hp, p.hpLevel, p.freqDelta(s, len(p.hp)))
		}
	case s.PackagePower < s.Limit*0.97:
		residual := s.Limit - s.PackagePower
		grow := 0
		if p.lpActive < len(p.lp) {
			if p.partial {
				grow = 1
			} else if p.lpActive == 0 {
				grow = len(p.lp)
			}
		}
		switch {
		case !p.classSaturated(p.hp, p.hpLevel, +1):
			p.setReasons(ReasonPowerUnderLimit, ReasonRestoreHP, ReasonShareRebalance)
			p.hpLevel = p.moveLevel(p.hp, p.hpLevel, p.freqDelta(s, len(p.hp)))
		case grow > 0 && residual > p.lpStartCost(grow)*1.2:
			p.setReasons(ReasonPowerUnderLimit, ReasonWakeLP)
			p.lpActive += grow
			p.lpLevel = 0
		case p.lpActive > 0 && !p.classSaturated(p.lp[:p.lpActive], p.lpLevel, +1):
			p.setReasons(ReasonPowerUnderLimit, ReasonRaiseLP, ReasonShareRebalance)
			p.lpLevel = p.moveLevel(p.lp[:p.lpActive], p.lpLevel, p.freqDelta(s, p.lpActive))
		default:
			p.setReasons(ReasonPowerUnderLimit, ReasonSaturated)
		}
	default:
		p.setReasons(ReasonWithinDeadband)
	}
	return p.actions()
}
