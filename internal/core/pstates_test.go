package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/units"
)

func distinctCount(fs []units.Hertz) int {
	set := make(map[units.Hertz]bool)
	for _, f := range fs {
		set[f] = true
	}
	return len(set)
}

func TestClusterReducesToK(t *testing.T) {
	spec := platform.Ryzen().Freq
	targets := []units.Hertz{
		3400 * units.MHz, 3375 * units.MHz, 2200 * units.MHz, 2150 * units.MHz,
		900 * units.MHz, 850 * units.MHz, 800 * units.MHz, 3300 * units.MHz,
	}
	out := ClusterPStates(targets, 3, spec)
	if len(out) != len(targets) {
		t.Fatalf("length changed: %d", len(out))
	}
	if got := distinctCount(out); got > 3 {
		t.Errorf("distinct frequencies = %d, want <= 3", got)
	}
	// Natural grouping: the three 3.3-3.4 GHz cores share one value, the two
	// 2.1-2.2 share another, the three <1 GHz share the third.
	if out[0] != out[1] || out[0] != out[7] {
		t.Errorf("high group split: %v %v %v", out[0], out[1], out[7])
	}
	if out[2] != out[3] {
		t.Errorf("mid group split: %v %v", out[2], out[3])
	}
	if out[4] != out[5] || out[4] != out[6] {
		t.Errorf("low group split: %v %v %v", out[4], out[5], out[6])
	}
}

func TestClusterIdentityWhenFewDistinct(t *testing.T) {
	spec := platform.Ryzen().Freq
	targets := []units.Hertz{3400 * units.MHz, 800 * units.MHz, 3400 * units.MHz}
	out := ClusterPStates(targets, 3, spec)
	for i := range targets {
		if out[i] != targets[i] {
			t.Errorf("identity violated at %d: %v -> %v", i, targets[i], out[i])
		}
	}
}

func TestClusterPassthroughWhenUnlimited(t *testing.T) {
	spec := platform.Skylake().Freq
	targets := []units.Hertz{2250 * units.MHz, 1333 * units.MHz}
	out := ClusterPStates(targets, 0, spec)
	// Quantised but not clustered.
	if out[0] != 2200*units.MHz || out[1] != 1300*units.MHz {
		t.Errorf("passthrough = %v", out)
	}
}

func TestClusterEmpty(t *testing.T) {
	if out := ClusterPStates(nil, 3, platform.Ryzen().Freq); len(out) != 0 {
		t.Errorf("empty input gave %v", out)
	}
}

// Properties over random inputs: at most k distinct outputs, all valid
// quantised levels, and order preservation (clustering must not invert the
// relative order of two cores' frequencies).
func TestClusterProperties(t *testing.T) {
	spec := platform.Ryzen().Freq
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		targets := make([]units.Hertz, n)
		for i := range targets {
			targets[i] = spec.Min + units.Hertz(rng.Float64()*float64(spec.Max()-spec.Min))
		}
		out := ClusterPStates(targets, 3, spec)
		if distinctCount(out) > 3 {
			return false
		}
		for i := range out {
			if out[i] < spec.Min || out[i] > spec.Max() {
				return false
			}
			if out[i] != spec.Quantize(out[i]) {
				return false
			}
			for j := range out {
				if targets[i] < targets[j] && out[i] > out[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The representative must sit within its group's range: no core should move
// by more than the span of the whole input.
func TestClusterRepresentativeWithinRange(t *testing.T) {
	spec := platform.Ryzen().Freq
	targets := []units.Hertz{3 * units.GHz, 1 * units.GHz, 2 * units.GHz, 2100 * units.MHz}
	out := ClusterPStates(targets, 2, spec)
	for i, f := range out {
		if f < 1*units.GHz-spec.Step || f > 3*units.GHz+spec.Step {
			t.Errorf("core %d moved outside input range: %v", i, f)
		}
	}
}
