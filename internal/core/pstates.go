package core

import (
	"math"
	"sort"

	"repro/internal/cpu"
	"repro/internal/units"
)

// ClusterPStates reduces a vector of per-core target frequencies to at most
// k distinct values, implementing the paper's Ryzen "selection utility":
// the 1700X can hold only three simultaneous P-states, so the daemon must
// map its per-core targets onto three representative frequencies.
//
// The mapping is the optimal contiguous partition of the sorted targets
// into k groups minimising the total absolute deviation from each group's
// median (computed by dynamic programming — the input is at most a few
// dozen cores, so the O(n²k) DP is trivially cheap). Each target is
// replaced by its group's median, quantised to the chip's step.
//
// k <= 0 or k >= the number of distinct targets returns the targets
// quantised but otherwise unchanged.
func ClusterPStates(targets []units.Hertz, k int, spec cpu.FreqSpec) []units.Hertz {
	out := make([]units.Hertz, len(targets))
	for i, f := range targets {
		out[i] = spec.Quantize(f)
	}
	if k <= 0 || len(out) == 0 {
		return out
	}
	distinct := make(map[units.Hertz]bool)
	for _, f := range out {
		distinct[f] = true
	}
	if len(distinct) <= k {
		return out
	}

	// Sort with original index tracking.
	type item struct {
		f   units.Hertz
		idx int
	}
	items := make([]item, len(out))
	for i, f := range out {
		items[i] = item{f, i}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].f < items[b].f })
	n := len(items)

	// cost[i][j]: total absolute deviation of items[i..j] from their median.
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := i; j < n; j++ {
			med := float64(items[(i+j)/2].f)
			var c float64
			for t := i; t <= j; t++ {
				c += math.Abs(float64(items[t].f) - med)
			}
			cost[i][j] = c
		}
	}

	// dp[g][j]: min cost partitioning items[0..j] into g+1 groups;
	// cut[g][j]: start index of the last group.
	dp := make([][]float64, k)
	cut := make([][]int, k)
	for g := range dp {
		dp[g] = make([]float64, n)
		cut[g] = make([]int, n)
		for j := 0; j < n; j++ {
			if g == 0 {
				dp[g][j] = cost[0][j]
				cut[g][j] = 0
				continue
			}
			dp[g][j] = math.Inf(1)
			for s := g; s <= j; s++ {
				if c := dp[g-1][s-1] + cost[s][j]; c < dp[g][j] {
					dp[g][j] = c
					cut[g][j] = s
				}
			}
		}
	}

	// Walk the cuts back and assign each group its quantised median.
	groups := min(k, n)
	j := n - 1
	for g := groups - 1; g >= 0; g-- {
		s := cut[g][j]
		med := spec.Quantize(items[(s+j)/2].f)
		for t := s; t <= j; t++ {
			out[items[t].idx] = med
		}
		j = s - 1
		if j < 0 {
			break
		}
	}
	return out
}
