package core

import (
	"math"
	"slices"

	"repro/internal/cpu"
	"repro/internal/units"
)

// ClusterPStates reduces a vector of per-core target frequencies to at most
// k distinct values, implementing the paper's Ryzen "selection utility":
// the 1700X can hold only three simultaneous P-states, so the daemon must
// map its per-core targets onto three representative frequencies.
//
// The mapping is the optimal contiguous partition of the sorted targets
// into k groups minimising the total absolute deviation from each group's
// median (computed by dynamic programming — the input is at most a few
// dozen cores, so the O(n²k) DP is trivially cheap). Each target is
// replaced by its group's median, quantised to the chip's step.
//
// k <= 0 or k >= the number of distinct targets returns the targets
// quantised but otherwise unchanged.
//
// This convenience wrapper allocates; policies on the control loop's hot
// path hold a pstateClusterer and use clusterInto instead.
func ClusterPStates(targets []units.Hertz, k int, spec cpu.FreqSpec) []units.Hertz {
	out := make([]units.Hertz, len(targets))
	newPStateClusterer(len(targets), k).clusterInto(out, targets, spec)
	return out
}

// clusterItem pairs a quantised target with its original position.
type clusterItem struct {
	f   units.Hertz
	idx int
}

// pstateClusterer carries the preallocated working set for repeated
// ClusterPStates runs over vectors of a fixed maximum size: sort items,
// the O(n²) cost matrix, and the DP tables, all flattened and reused so a
// steady-state clusterInto call performs no heap allocation.
type pstateClusterer struct {
	k     int
	items []clusterItem
	cost  []float64 // n*n, row-major: cost of items[i..j]
	dp    []float64 // k*n
	cut   []int     // k*n
}

// newPStateClusterer sizes the working set for vectors of up to n targets
// clustered into at most k groups. k <= 0 builds a quantise-only
// clusterer with no DP tables (the Skylake case: no simultaneous-P-state
// limit).
func newPStateClusterer(n, k int) *pstateClusterer {
	c := &pstateClusterer{k: k}
	if k > 0 && n > 0 {
		c.items = make([]clusterItem, n)
		c.cost = make([]float64, n*n)
		c.dp = make([]float64, k*n)
		c.cut = make([]int, k*n)
	}
	return c
}

// clusterInto quantises targets into dst (which may alias targets) and,
// when the clusterer carries a group limit, reduces them to at most k
// distinct values. len(dst) must equal len(targets) and not exceed the
// size the clusterer was built for.
func (c *pstateClusterer) clusterInto(dst, targets []units.Hertz, spec cpu.FreqSpec) {
	for i, f := range targets {
		dst[i] = spec.Quantize(f)
	}
	n := len(dst)
	if c.k <= 0 || n == 0 {
		return
	}
	items := c.items[:n]
	for i, f := range dst {
		items[i] = clusterItem{f, i}
	}
	slices.SortFunc(items, func(a, b clusterItem) int {
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	})
	// Count distinct values on the sorted items; at or below the limit the
	// quantised targets already comply.
	distinct := 1
	for i := 1; i < n; i++ {
		if items[i].f != items[i-1].f {
			distinct++
		}
	}
	if distinct <= c.k {
		return
	}

	// cost[i*n+j]: total absolute deviation of items[i..j] from their median.
	cost := c.cost[: n*n : n*n]
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			med := float64(items[(i+j)/2].f)
			var cc float64
			for t := i; t <= j; t++ {
				cc += math.Abs(float64(items[t].f) - med)
			}
			cost[i*n+j] = cc
		}
	}

	// dp[g*n+j]: min cost partitioning items[0..j] into g+1 groups;
	// cut[g*n+j]: start index of the last group.
	k := c.k
	dp := c.dp[: k*n : k*n]
	cut := c.cut[: k*n : k*n]
	for g := 0; g < k; g++ {
		for j := 0; j < n; j++ {
			if g == 0 {
				dp[j] = cost[j]
				cut[j] = 0
				continue
			}
			dp[g*n+j] = math.Inf(1)
			for s := g; s <= j; s++ {
				if cc := dp[(g-1)*n+s-1] + cost[s*n+j]; cc < dp[g*n+j] {
					dp[g*n+j] = cc
					cut[g*n+j] = s
				}
			}
		}
	}

	// Walk the cuts back and assign each group its quantised median.
	groups := min(k, n)
	j := n - 1
	for g := groups - 1; g >= 0; g-- {
		s := cut[g*n+j]
		med := spec.Quantize(items[(s+j)/2].f)
		for t := s; t <= j; t++ {
			dst[items[t].idx] = med
		}
		j = s - 1
		if j < 0 {
			break
		}
	}
}
