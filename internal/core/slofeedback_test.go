package core

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/units"
)

func sloSpecs(apiShares, batchShares units.Shares) []AppSpec {
	return []AppSpec{
		{Name: "api", Core: 0, Shares: apiShares},
		{Name: "api", Core: 1, Shares: apiShares},
		{Name: "gcc", Core: 2, Shares: batchShares},
	}
}

func sloSnapshot(chip platform.Chip, limit, power units.Watts, services ...ServiceSLO) Snapshot {
	s := Snapshot{Limit: limit, PackagePower: power, Services: services}
	for core := 0; core < 3; core++ {
		name := "api"
		if core == 2 {
			name = "gcc"
		}
		s.Apps = append(s.Apps, AppState{
			Spec: AppSpec{Name: name, Core: core, Shares: 10},
			Freq: chip.Freq.Nom, IPS: 1e9,
		})
	}
	return s
}

func TestSLOFeedbackValidation(t *testing.T) {
	chip := platform.Skylake()
	specs := sloSpecs(10, 10)
	target := []SLOTarget{{Service: "api", P99: 50 * time.Millisecond}}
	cases := []SLOConfig{
		{},                                      // no targets
		{Targets: []SLOTarget{{Service: "", P99: time.Millisecond}}},       // empty name
		{Targets: []SLOTarget{{Service: "api"}}},                           // zero p99
		{Targets: append(append([]SLOTarget(nil), target...), target...)},  // duplicate
		{Targets: []SLOTarget{{Service: "ghost", P99: time.Millisecond}}},  // matches nothing
	}
	for i, cfg := range cases {
		if _, err := NewSLOFeedback(chip, specs, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewSLOFeedback(chip, []AppSpec{{Name: "api", Core: 0}}, SLOConfig{Targets: target}); err == nil {
		t.Error("specs without shares accepted")
	}
	p, err := NewSLOFeedback(chip, specs, SLOConfig{Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "slo-feedback" {
		t.Errorf("name %q", p.Name())
	}
}

// TestSLOFallbackMatchesFrequencyShares: without service telemetry the
// policy must behave exactly like frequency shares, flagged as such.
func TestSLOFallbackMatchesFrequencyShares(t *testing.T) {
	chip := platform.Skylake()
	specs := sloSpecs(20, 10)
	p, err := NewSLOFeedback(chip, specs, SLOConfig{Targets: []SLOTarget{{Service: "api", P99: 50 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFrequencyShares(chip, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aInit, bInit := p.Initial(), fs.Initial()
	if len(aInit) != len(bInit) {
		t.Fatalf("initial action counts differ: %d vs %d", len(aInit), len(bInit))
	}
	for i := range aInit {
		if aInit[i] != bInit[i] {
			t.Errorf("initial action %d: %+v vs %+v", i, aInit[i], bInit[i])
		}
	}
	powers := []units.Watts{60, 44, 38, 35, 52, 41}
	for step, pw := range powers {
		snap := sloSnapshot(chip, 40, pw)
		got, want := p.Update(snap), fs.Update(snap)
		if len(got) != len(want) {
			t.Fatalf("step %d: action counts differ: %d vs %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("step %d action %d: %+v vs %+v", step, i, got[i], want[i])
			}
		}
		rs := p.LastReasons()
		if len(rs) == 0 || rs[0] != ReasonSLOFallback {
			t.Errorf("step %d: reasons %v lack leading %s", step, rs, ReasonSLOFallback)
		}
	}
}

// TestSLOBoostsViolatingService: a service over its p99 objective pulls
// frequency from the batch pool.
func TestSLOBoostsViolatingService(t *testing.T) {
	chip := platform.Skylake()
	// Low interactive shares so the initial distribution leaves the
	// serving cores well below their ceiling.
	p, err := NewSLOFeedback(chip, sloSpecs(10, 50), SLOConfig{Targets: []SLOTarget{{Service: "api", P99: 50 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	before := p.Targets()
	snap := sloSnapshot(chip, 40, 40, ServiceSLO{Name: "api", P50: 0.04, P90: 0.08, P99: 0.120, Target: 0.05})
	acts := p.Update(snap)
	if len(acts) == 0 {
		t.Fatal("no actions despite a 2.4× p99 violation")
	}
	after := p.Targets()
	if !(after[0] > before[0] && after[1] > before[1]) {
		t.Errorf("interactive targets did not rise: %v -> %v", before, after)
	}
	if !(after[2] < before[2]) {
		t.Errorf("batch target did not pay: %v -> %v", before[2], after[2])
	}
	found := false
	for _, r := range p.LastReasons() {
		if r == ReasonSLOBoost {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons %v lack %s", p.LastReasons(), ReasonSLOBoost)
	}
	// Repeated violation keeps boosting until the ceiling.
	for i := 0; i < 200; i++ {
		p.Update(snap)
	}
	final := p.Targets()
	if final[0] < after[0] {
		t.Errorf("sustained violation lowered the serving target: %v -> %v", after[0], final[0])
	}
}

// TestSLORelaxReturnsHeadroom: a service far under its objective cedes
// frequency back to batch.
func TestSLORelaxReturnsHeadroom(t *testing.T) {
	chip := platform.Skylake()
	p, err := NewSLOFeedback(chip, sloSpecs(50, 10), SLOConfig{Targets: []SLOTarget{{Service: "api", P99: 100 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	before := p.Targets()
	snap := sloSnapshot(chip, 40, 40, ServiceSLO{Name: "api", P50: 0.002, P90: 0.004, P99: 0.010, Target: 0.1})
	p.Update(snap)
	after := p.Targets()
	if !(after[0] < before[0]) {
		t.Errorf("interactive target did not relax: %v -> %v", before, after)
	}
	if !(after[2] >= before[2]) {
		t.Errorf("batch target should not fall on relax: %v -> %v", before[2], after[2])
	}
	found := false
	for _, r := range p.LastReasons() {
		if r == ReasonSLORelax {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons %v lack %s", p.LastReasons(), ReasonSLORelax)
	}
}

// TestSLOAntiWindup: with serving cores pinned at their ceiling and the
// SLO still missed, the integral must hold (conditional integration)
// and the decision must read saturated.
func TestSLOAntiWindup(t *testing.T) {
	chip := platform.Skylake()
	p, err := NewSLOFeedback(chip, sloSpecs(50, 50), SLOConfig{Targets: []SLOTarget{{Service: "api", P99: 10 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial() // equal shares: everything starts at its ceiling
	snap := sloSnapshot(chip, 40, 40, ServiceSLO{Name: "api", P99: 0.05, Target: 0.01})
	for i := 0; i < 500; i++ {
		p.Update(snap)
	}
	for _, ig := range p.Integrals() {
		if ig > 2 || ig < -2 {
			t.Errorf("integral escaped its clamp: %v", p.Integrals())
		}
	}
	found := false
	for _, r := range p.LastReasons() {
		if r == ReasonSLOSaturated {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons %v lack %s under a hopeless SLO", p.LastReasons(), ReasonSLOSaturated)
	}
}

// TestSLOCapBeatsSLO: when batch is already at its floor and power still
// exceeds the limit, the interactive pool must shed too.
func TestSLOCapBeatsSLO(t *testing.T) {
	chip := platform.Skylake()
	p, err := NewSLOFeedback(chip, sloSpecs(50, 10), SLOConfig{Targets: []SLOTarget{{Service: "api", P99: time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	// Massive sustained overshoot with a violated SLO: the controller
	// wants to boost but the cap must win.
	snap := sloSnapshot(chip, 20, 60, ServiceSLO{Name: "api", P99: 0.05, Target: 0.001})
	for i := 0; i < 300; i++ {
		p.Update(snap)
	}
	tg := p.Targets()
	sum := float64(tg[0] + tg[1] + tg[2])
	floor := 3 * float64(chip.Freq.Min)
	if sum > floor*1.05 {
		t.Errorf("sustained 3× overshoot left Σtargets at %v, want pinned near the floor %v", sum, floor)
	}
}

// TestSLODeadbandHolds: on-objective services with power in the deadband
// produce no actions.
func TestSLODeadbandHolds(t *testing.T) {
	chip := platform.Skylake()
	p, err := NewSLOFeedback(chip, sloSpecs(20, 10), SLOConfig{Targets: []SLOTarget{{Service: "api", P99: 50 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	snap := sloSnapshot(chip, 40, 40, ServiceSLO{Name: "api", P99: 0.049, Target: 0.05})
	if acts := p.Update(snap); acts != nil {
		t.Errorf("deadband update emitted %d actions", len(acts))
	}
	rs := p.LastReasons()
	wantMet, wantHold := false, false
	for _, r := range rs {
		if r == ReasonSLOMet {
			wantMet = true
		}
		if r == ReasonWithinDeadband {
			wantHold = true
		}
	}
	if !wantMet || !wantHold {
		t.Errorf("reasons %v, want both %s and %s", rs, ReasonWithinDeadband, ReasonSLOMet)
	}
}

// TestSLOTargetFromSnapshotWins: a live target stamped by the daemon
// overrides the constructor-time objective.
func TestSLOTargetFromSnapshotWins(t *testing.T) {
	chip := platform.Skylake()
	p, err := NewSLOFeedback(chip, sloSpecs(10, 50), SLOConfig{Targets: []SLOTarget{{Service: "api", P99: time.Second}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	before := p.Targets()
	// Constructor goal (1s) is comfortably met, but the live target
	// (20ms) is violated: the live one must drive a boost.
	snap := sloSnapshot(chip, 40, 40, ServiceSLO{Name: "api", P99: 0.080, Target: 0.020})
	p.Update(snap)
	after := p.Targets()
	if !(after[0] > before[0]) {
		t.Errorf("live target ignored: %v -> %v", before, after)
	}
}

// TestSLOFeedbackUpdateZeroAlloc: the decide path allocates nothing in
// steady state — the property loop_iteration/slo/* gates in CI.
func TestSLOFeedbackUpdateZeroAlloc(t *testing.T) {
	chip := platform.Skylake()
	p, err := NewSLOFeedback(chip, sloSpecs(20, 10), SLOConfig{Targets: []SLOTarget{{Service: "api", P99: 50 * time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	snaps := []Snapshot{
		sloSnapshot(chip, 40, 47, ServiceSLO{Name: "api", P99: 0.08, Target: 0.05}),
		sloSnapshot(chip, 40, 33, ServiceSLO{Name: "api", P99: 0.01, Target: 0.05}),
		sloSnapshot(chip, 40, 40),
		sloSnapshot(chip, 40, 40, ServiceSLO{Name: "api", P99: 0.05, Target: 0.05}),
	}
	for _, s := range snaps {
		p.Update(s)
	}
	i := 0
	n := testing.AllocsPerRun(400, func() {
		p.Update(snaps[i%len(snaps)])
		i++
	})
	if n != 0 {
		t.Errorf("allocs per Update = %v, want 0", n)
	}
}
