package core

import (
	"testing"

	"repro/internal/platform"
)

// reasonsOf fetches a policy's last reasons through the Explainer
// interface, failing if the policy does not implement it.
func reasonsOf(t *testing.T, p Policy) []Reason {
	t.Helper()
	ex, ok := p.(Explainer)
	if !ok {
		t.Fatalf("%s does not implement Explainer", p.Name())
	}
	return ex.LastReasons()
}

func hasReason(rs []Reason, want Reason) bool {
	for _, r := range rs {
		if r == want {
			return true
		}
	}
	return false
}

func TestFrequencySharesReasons(t *testing.T) {
	p, err := NewFrequencyShares(platform.Skylake(), skySpecs2(), ShareConfig{Deadband: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonInitial) {
		t.Errorf("initial reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	rs := reasonsOf(t, p)
	if !hasReason(rs, ReasonPowerOverLimit) || !hasReason(rs, ReasonShareRebalance) {
		t.Errorf("over-limit reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 30})
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonPowerUnderLimit) {
		t.Errorf("under-limit reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 49.8})
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonWithinDeadband) {
		t.Errorf("deadband reasons = %v", rs)
	}
}

func TestPerformanceSharesReasons(t *testing.T) {
	p, err := NewPerformanceShares(platform.Skylake(), skySpecs2(), ShareConfig{Deadband: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonInitial) {
		t.Errorf("initial reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	rs := reasonsOf(t, p)
	if !hasReason(rs, ReasonPowerOverLimit) || !hasReason(rs, ReasonShareRebalance) {
		t.Errorf("over-limit reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 49.9})
	rs = reasonsOf(t, p)
	if !hasReason(rs, ReasonWithinDeadband) || !hasReason(rs, ReasonTranslateOnly) {
		t.Errorf("deadband reasons = %v", rs)
	}
}

func TestPowerSharesReasons(t *testing.T) {
	p, err := NewPowerShares(platform.Ryzen(), skySpecs2(), ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p.InitialForLimit(50)
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonInitial) {
		t.Errorf("initial reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	rs := reasonsOf(t, p)
	if !hasReason(rs, ReasonPowerOverLimit) || !hasReason(rs, ReasonShareRebalance) {
		t.Errorf("over-limit reasons = %v", rs)
	}
	// Changing the enforced limit between updates is itself a recorded
	// decision (cluster coordinators do this at their own cadence).
	p.Update(Snapshot{Limit: 40, PackagePower: 39})
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonLimitChange) {
		t.Errorf("limit-change reasons = %v", rs)
	}
}

func TestPriorityReasons(t *testing.T) {
	specs := []AppSpec{
		{Name: "hp", Core: 0, HighPriority: true},
		{Name: "lp", Core: 1},
	}
	p, err := NewPriority(platform.Skylake(), specs, PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonInitial) {
		t.Errorf("initial reasons = %v", rs)
	}
	// After Initial the LP class is parked and HP sits at its ceiling, so
	// an over-limit snapshot must throttle HP.
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	rs := reasonsOf(t, p)
	if !hasReason(rs, ReasonPowerOverLimit) || !hasReason(rs, ReasonThrottleHP) {
		t.Errorf("over-limit reasons = %v", rs)
	}
	// Now HP is below its ceiling: headroom restores HP first.
	p.Update(Snapshot{Limit: 50, PackagePower: 20})
	rs = reasonsOf(t, p)
	if !hasReason(rs, ReasonPowerUnderLimit) || !hasReason(rs, ReasonRestoreHP) {
		t.Errorf("under-limit reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 49.5})
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonWithinDeadband) {
		t.Errorf("deadband reasons = %v", rs)
	}
}

func TestPrioritySharesReasons(t *testing.T) {
	p, err := NewPriorityShares(platform.Skylake(), prioritySharesSpecs(), PriorityConfig{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	p.Initial()
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonInitial) {
		t.Errorf("initial reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 60})
	rs := reasonsOf(t, p)
	if !hasReason(rs, ReasonPowerOverLimit) {
		t.Errorf("over-limit reasons = %v", rs)
	}
	p.Update(Snapshot{Limit: 50, PackagePower: 49.5})
	if rs := reasonsOf(t, p); !hasReason(rs, ReasonWithinDeadband) {
		t.Errorf("deadband reasons = %v", rs)
	}
}
