package core

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/units"
)

// SLOConfig tunes the SLO-feedback policy.
type SLOConfig struct {
	ShareConfig

	// Targets declares the managed latency services and their p99
	// objectives. Specs whose Name matches a target are that service's
	// serving cores; every other spec is batch. At least one target is
	// required. A live target in the snapshot telemetry (stamped by the
	// daemon) overrides the constructor-time objective, so Reconfigure
	// can move goals mid-run.
	Targets []SLOTarget

	// KP and KI are the proportional and integral gains applied to the
	// relative p99 error (P99-Target)/Target per control interval
	// (defaults 0.6 and 0.08).
	KP, KI float64

	// IntegralClamp bounds the magnitude of each service's integral
	// term — the anti-windup backstop (default 2).
	IntegralClamp float64

	// SLODeadband is the relative error band within which a service is
	// considered on-objective and contributes no control action
	// (default 0.1, i.e. ±10% of the target).
	SLODeadband float64

	// MaxStep is the largest per-interval frequency move a full-scale
	// controller output applies to one serving core (default 10% of the
	// chip's maximum frequency).
	MaxStep units.Hertz
}

func (c *SLOConfig) fill(chip platform.Chip) {
	c.ShareConfig.fill()
	if c.KP <= 0 {
		c.KP = 0.6
	}
	if c.KI <= 0 {
		c.KI = 0.08
	}
	if c.IntegralClamp <= 0 {
		c.IntegralClamp = 2
	}
	if c.SLODeadband <= 0 {
		c.SLODeadband = 0.1
	}
	if c.MaxStep <= 0 {
		c.MaxStep = chip.Freq.Max() / 10
	}
}

const (
	sloModeFeedback = iota
	sloModeFallback
)

// SLOFeedback reallocates power between interactive latency services
// and batch applications to meet per-service p99 objectives under the
// package power limit. Per interval it runs an anti-windup
// proportional-integral loop on each service's relative p99 error
// (measured over the service's sliding window, delivered through
// Snapshot.Services): services over their objective pull frequency from
// the batch pool, services comfortably under it cede frequency back.
// Batch applications absorb the residual power gap through the same
// water-level used by FrequencyShares, so the cap always wins — when
// batch cores bottom out at their floor, the interactive pool is shed
// too and the decision is flagged ReasonSLOSaturated.
//
// When a snapshot carries no service telemetry (no latency model wired
// into the daemon, or it has not produced a window yet) the policy
// degrades to plain frequency shares over the configured share weights,
// flagged ReasonSLOFallback.
type SLOFeedback struct {
	shareBase
	explain
	cfg SLOConfig

	fb      *FrequencyShares // fallback controller (own scratch/state)
	mode    int
	started bool

	targets []float64 // continuous per-spec frequency targets (Hz)

	// Static per-service configuration (construction order of Targets).
	svcNames []string
	svcGoal  []float64 // constructor-time p99 objective, seconds
	svcCores []int     // serving cores per service
	svcOf    []int     // spec index -> service index, -1 = batch
	nBatch   int

	// Controller state and per-interval scratch, all preallocated.
	integ  []float64 // PI integral per service
	svcU   []float64 // last controller output per service
	svcE   []float64 // last relative error per service
	svcTgt []float64 // effective target per service, seconds
	svcP99 []float64
	svcSeen []bool
	satHi  []int // serving cores clamped at ceiling this interval
	satLo  []int // serving cores clamped at floor this interval
	rbuf   [4]Reason
}

// NewSLOFeedback builds the policy. Specs need positive shares (the
// fallback path and the batch water-level distribute by them); every
// target must name at least one spec.
func NewSLOFeedback(chip platform.Chip, specs []AppSpec, cfg SLOConfig) (*SLOFeedback, error) {
	b, err := newShareBase(chip, specs, cfg.ShareConfig)
	if err != nil {
		return nil, err
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("core: slo-feedback needs at least one SLO target")
	}
	fb, err := NewFrequencyShares(chip, specs, cfg.ShareConfig)
	if err != nil {
		return nil, err
	}
	cfg.fill(chip)
	p := &SLOFeedback{
		shareBase: b,
		cfg:       cfg,
		fb:        fb,
		targets:   make([]float64, len(b.specs)),
		svcOf:     make([]int, len(b.specs)),
	}
	seen := make(map[string]bool, len(cfg.Targets))
	for _, t := range cfg.Targets {
		if t.Service == "" {
			return nil, fmt.Errorf("core: slo-feedback target with empty service name")
		}
		if t.P99 <= 0 {
			return nil, fmt.Errorf("core: slo-feedback target %s needs a positive p99", t.Service)
		}
		if seen[t.Service] {
			return nil, fmt.Errorf("core: duplicate slo-feedback target %s", t.Service)
		}
		seen[t.Service] = true
		p.svcNames = append(p.svcNames, t.Service)
		p.svcGoal = append(p.svcGoal, t.P99.Seconds())
	}
	ns := len(p.svcNames)
	p.svcCores = make([]int, ns)
	p.integ = make([]float64, ns)
	p.svcU = make([]float64, ns)
	p.svcE = make([]float64, ns)
	p.svcTgt = make([]float64, ns)
	p.svcP99 = make([]float64, ns)
	p.svcSeen = make([]bool, ns)
	p.satHi = make([]int, ns)
	p.satLo = make([]int, ns)
	for i, s := range p.specs {
		p.svcOf[i] = -1
		for j, name := range p.svcNames {
			if s.Name == name {
				p.svcOf[i] = j
				p.svcCores[j]++
				break
			}
		}
		if p.svcOf[i] < 0 {
			p.nBatch++
		}
	}
	for j, name := range p.svcNames {
		if p.svcCores[j] == 0 {
			return nil, fmt.Errorf("core: slo-feedback target %s matches no application spec", name)
		}
	}
	return p, nil
}

// Name implements Policy.
func (p *SLOFeedback) Name() string { return "slo-feedback" }

// Targets exposes the current per-app frequency targets (for tests and
// reports).
func (p *SLOFeedback) Targets() []units.Hertz {
	out := make([]units.Hertz, len(p.targets))
	for i, t := range p.targets {
		out[i] = units.Hertz(t)
	}
	return out
}

// Integrals exposes the per-service integral terms (for tests).
func (p *SLOFeedback) Integrals() []float64 {
	return append([]float64(nil), p.integ...)
}

func (p *SLOFeedback) bounds() (bases, lo, hi []float64) {
	maxShare := p.maxShare()
	bases, lo, hi = p.scrBases, p.scrLo, p.scrHi
	for i, s := range p.specs {
		bases[i] = float64(p.chip.Freq.Max()) * s.Shares.Fraction(maxShare)
		lo[i] = float64(p.chip.Freq.Min)
		hi[i] = float64(p.ceiling(i))
	}
	return bases, lo, hi
}

// Initial implements Policy: the share-proportional level-1
// distribution, identical to FrequencyShares' starting point; the PI
// state starts from rest.
func (p *SLOFeedback) Initial() []Action {
	p.setReasons(ReasonInitial)
	p.started = true
	p.mode = sloModeFeedback
	p.fb.Initial() // keep the fallback controller's state initialised
	bases, lo, hi := p.bounds()
	applyLevelInto(p.scrLvl, 1, bases, lo, hi)
	copy(p.targets, p.scrLvl)
	for j := range p.integ {
		p.integ[j] = 0
	}
	return p.translateTargets()
}

func (p *SLOFeedback) translateTargets() []Action {
	for i, t := range p.targets {
		p.scrFreqs[i] = units.Hertz(t)
	}
	return p.translate(p.scrFreqs)
}

// matchServices binds snapshot telemetry to the configured services.
// The daemon materialises Services in model order, so the hinted probe
// is O(1); the scan remains for differently-ordered snapshots.
func (p *SLOFeedback) matchServices(s Snapshot) int {
	n := 0
	for j, name := range p.svcNames {
		p.svcSeen[j] = false
		p.svcP99[j] = 0
		p.svcTgt[j] = 0
		var e *ServiceSLO
		if j < len(s.Services) && s.Services[j].Name == name {
			e = &s.Services[j]
		} else {
			for k := range s.Services {
				if s.Services[k].Name == name {
					e = &s.Services[k]
					break
				}
			}
		}
		if e == nil {
			continue
		}
		p.svcSeen[j] = true
		n++
		p.svcP99[j] = e.P99
		if e.Target > 0 {
			p.svcTgt[j] = e.Target
		} else {
			p.svcTgt[j] = p.svcGoal[j]
		}
	}
	return n
}

// adoptFallbackReasons copies the inner share policy's explanation,
// prefixed with the fallback marker, without allocating.
func (p *SLOFeedback) adoptFallbackReasons() {
	rs := p.fb.LastReasons()
	p.explain.buf[0] = ReasonSLOFallback
	n := copy(p.explain.buf[1:], rs)
	p.explain.n = n + 1
}

// Update implements Policy.
func (p *SLOFeedback) Update(s Snapshot) []Action {
	if !p.started {
		p.Initial()
	}
	if p.matchServices(s) == 0 {
		// No latency telemetry: degrade to frequency shares. Hand the
		// inner controller our targets so the transition is seamless.
		if p.mode != sloModeFallback {
			for i, t := range p.targets {
				p.fb.targets[i] = units.Hertz(t)
			}
			p.mode = sloModeFallback
		}
		acts := p.fb.Update(s)
		p.adoptFallbackReasons()
		return acts
	}
	if p.mode != sloModeFeedback {
		// Returning from fallback: resume from where shares left off.
		for i, t := range p.fb.targets {
			p.targets[i] = float64(t)
		}
		p.mode = sloModeFeedback
	}

	maxF := float64(p.chip.Freq.Max())
	minF := float64(p.chip.Freq.Min)
	step := float64(p.cfg.MaxStep)

	// Per-service PI on the relative p99 error.
	allMet, anyActive := true, false
	for j := range p.svcNames {
		p.svcU[j] = 0
		p.svcE[j] = 0
		if !p.svcSeen[j] || p.svcP99[j] <= 0 || p.svcTgt[j] <= 0 {
			continue
		}
		e := (p.svcP99[j] - p.svcTgt[j]) / p.svcTgt[j]
		if e > 0 {
			allMet = false
		}
		if e >= -p.cfg.SLODeadband && e <= p.cfg.SLODeadband {
			e = 0
		}
		p.svcE[j] = e
		u := p.cfg.KP*e + p.cfg.KI*p.integ[j]
		if u > 1 {
			u = 1
		} else if u < -1 {
			u = -1
		}
		if u > -0.02 && u < 0.02 {
			u = 0
		}
		p.svcU[j] = u
		if u != 0 {
			anyActive = true
		}
	}
	if !anyActive && p.withinDeadband(s) {
		if allMet {
			p.setReasons(ReasonWithinDeadband, ReasonSLOMet)
		} else {
			// Violating but the controller is pinned (integral held by
			// anti-windup): saturated under this cap.
			p.setReasons(ReasonWithinDeadband, ReasonSLOSaturated)
		}
		return nil
	}

	// Move interactive targets by the controller output.
	anyBoost, anyRelax := false, false
	var deltaInteractive float64
	for j := range p.satHi {
		p.satHi[j] = 0
		p.satLo[j] = 0
	}
	for i := range p.specs {
		j := p.svcOf[i]
		if j < 0 {
			continue
		}
		t := p.targets[i] + p.svcU[j]*step
		hi := float64(p.ceiling(i))
		if t >= hi {
			t = hi
			p.satHi[j]++
		}
		if t <= minF {
			t = minF
			p.satLo[j]++
		}
		if d := t - p.targets[i]; d != 0 {
			deltaInteractive += d
			if d > 0 {
				anyBoost = true
			} else {
				anyRelax = true
			}
		}
		p.targets[i] = t
	}

	// Anti-windup by conditional integration: the integral only
	// accumulates while the actuator can still move in the error's
	// direction; in the deadband it leaks back to zero.
	anySat := false
	for j := range p.svcNames {
		if !p.svcSeen[j] {
			continue
		}
		e := p.svcE[j]
		switch {
		case e == 0:
			p.integ[j] *= 0.8
		case e > 0 && p.satHi[j] == p.svcCores[j]:
			anySat = true
		case e < 0 && p.satLo[j] == p.svcCores[j]:
			// pinned at the floor; hold
		default:
			p.integ[j] += e
			if p.integ[j] > p.cfg.IntegralClamp {
				p.integ[j] = p.cfg.IntegralClamp
			} else if p.integ[j] < -p.cfg.IntegralClamp {
				p.integ[j] = -p.cfg.IntegralClamp
			}
		}
	}

	// Batch absorbs the package power gap (α model) net of what the
	// interactive pool just took, through the shares water-level.
	freqBudget := p.alpha(s) * maxF * float64(len(p.specs))
	residual := freqBudget - deltaInteractive
	if p.nBatch > 0 {
		bases, lo, hi := p.bounds()
		var batchCur float64
		for i := range p.specs {
			if p.svcOf[i] >= 0 {
				bases[i], lo[i], hi[i] = 0, 0, 0
				continue
			}
			batchCur += p.targets[i]
		}
		want := batchCur + residual
		lvl := solveLevel(bases, lo, hi, want)
		applyLevelInto(p.scrLvl, lvl, bases, lo, hi)
		var batchGot float64
		for i := range p.specs {
			if p.svcOf[i] < 0 {
				p.targets[i] = p.scrLvl[i]
				batchGot += p.scrLvl[i]
			}
		}
		residual = want - batchGot
	}
	// Shortfall the batch pool could not shed lands on the interactive
	// pool: the cap beats the SLO.
	nInteractive := len(p.specs) - p.nBatch
	if residual < 0 && s.PackagePower > s.Limit && nInteractive > 0 {
		per := residual / float64(nInteractive)
		for i := range p.specs {
			if p.svcOf[i] < 0 {
				continue
			}
			t := p.targets[i] + per
			if t < minF {
				t = minF
			}
			if hi := float64(p.ceiling(i)); t > hi {
				t = hi
			}
			p.targets[i] = t
		}
		anySat = true
	}

	// Explain the decision (at most 4 reasons).
	rs := p.rbuf[:0]
	rs = append(rs, gapReason(s))
	switch {
	case anyBoost:
		rs = append(rs, ReasonSLOBoost)
	case anyRelax:
		rs = append(rs, ReasonSLORelax)
	default:
		rs = append(rs, ReasonShareRebalance)
	}
	if anySat {
		rs = append(rs, ReasonSLOSaturated)
	}
	if allMet {
		rs = append(rs, ReasonSLOMet)
	}
	p.setReasons(rs...)
	return p.translateTargets()
}
