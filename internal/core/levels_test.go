package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func totalAt(level float64, bases, lo, hi []float64) float64 {
	var t float64
	for _, v := range applyLevel(level, bases, lo, hi) {
		t += v
	}
	return t
}

func TestSolveLevelExactProportional(t *testing.T) {
	bases := []float64{3, 1}
	lo := []float64{0, 0}
	hi := []float64{100, 100}
	level := solveLevel(bases, lo, hi, 40)
	ts := applyLevel(level, bases, lo, hi)
	if math.Abs(ts[0]-30) > 1e-6 || math.Abs(ts[1]-10) > 1e-6 {
		t.Errorf("targets = %v, want [30 10]", ts)
	}
}

func TestSolveLevelRevocation(t *testing.T) {
	// The high-share app caps at 10: its surplus must flow to the other.
	bases := []float64{3, 1}
	lo := []float64{0, 0}
	hi := []float64{10, 100}
	level := solveLevel(bases, lo, hi, 40)
	ts := applyLevel(level, bases, lo, hi)
	if ts[0] != 10 {
		t.Errorf("capped target = %v, want 10", ts[0])
	}
	if math.Abs(ts[1]-30) > 1e-6 {
		t.Errorf("re-funded target = %v, want 30", ts[1])
	}
}

// Withdrawing after revocation must reclaim from the over-entitled app
// first: this is the property the incremental scheme got wrong.
func TestSolveLevelWithdrawalReclaimsSurplusFirst(t *testing.T) {
	bases := []float64{3, 1}
	lo := []float64{0, 0}
	hi := []float64{10, 100}
	// At want=40, targets are [10, 30]: app 1 holds 3x its entitlement
	// relative to app 0. Shrinking to 25 must reduce app 1 only.
	level := solveLevel(bases, lo, hi, 25)
	ts := applyLevel(level, bases, lo, hi)
	if ts[0] != 10 {
		t.Errorf("app0 lost resource while app1 over-entitled: %v", ts)
	}
	if math.Abs(ts[1]-15) > 1e-6 {
		t.Errorf("app1 = %v, want 15", ts[1])
	}
	// Shrinking further to 12 finally cuts into app 0 (level below its
	// cap): proportionality is restored.
	level = solveLevel(bases, lo, hi, 12)
	ts = applyLevel(level, bases, lo, hi)
	if math.Abs(ts[0]-9) > 1e-6 || math.Abs(ts[1]-3) > 1e-6 {
		t.Errorf("proportional shrink = %v, want [9 3]", ts)
	}
}

func TestSolveLevelBoundsRespected(t *testing.T) {
	bases := []float64{1, 1}
	lo := []float64{5, 5}
	hi := []float64{8, 8}
	// Unreachably low want: floors bind.
	level := solveLevel(bases, lo, hi, 0)
	ts := applyLevel(level, bases, lo, hi)
	if ts[0] != 5 || ts[1] != 5 {
		t.Errorf("floor targets = %v", ts)
	}
	// Unreachably high want: caps bind.
	level = solveLevel(bases, lo, hi, 1000)
	ts = applyLevel(level, bases, lo, hi)
	if ts[0] != 8 || ts[1] != 8 {
		t.Errorf("cap targets = %v", ts)
	}
}

// Property: the solved level reproduces the wanted total within tolerance
// whenever it is feasible, and the total is monotone in the level.
func TestSolveLevelProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		bases := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		var loSum, hiSum float64
		for i := 0; i < n; i++ {
			bases[i] = 0.1 + rng.Float64()*5
			lo[i] = rng.Float64() * 2
			hi[i] = lo[i] + rng.Float64()*10
			loSum += lo[i]
			hiSum += hi[i]
		}
		want := loSum + rng.Float64()*(hiSum-loSum)
		level := solveLevel(bases, lo, hi, want)
		got := totalAt(level, bases, lo, hi)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			return false
		}
		// Monotonicity spot check.
		return totalAt(level*0.5, bases, lo, hi) <= got+1e-9 &&
			totalAt(level*2, bases, lo, hi) >= got-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: targets from applyLevel always sit inside their bounds and are
// ordered by base (share) when bounds are shared.
func TestApplyLevelOrdering(t *testing.T) {
	prop := func(lvlRaw uint8, a, b, c uint8) bool {
		level := float64(lvlRaw) / 64
		bases := []float64{float64(a%20) + 1, float64(b%20) + 1, float64(c%20) + 1}
		lo := []float64{1, 1, 1}
		hi := []float64{50, 50, 50}
		ts := applyLevel(level, bases, lo, hi)
		for i := range ts {
			if ts[i] < lo[i] || ts[i] > hi[i] {
				return false
			}
			for j := range ts {
				if bases[i] < bases[j] && ts[i] > ts[j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
