package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/units"
)

// allPolicies builds one instance of every policy over the same app set on
// the chip.
func allPolicies(t *testing.T, chip platform.Chip) []Policy {
	t.Helper()
	n := chip.NumCores
	specs := make([]AppSpec, n)
	for i := 0; i < n; i++ {
		specs[i] = AppSpec{
			Name:         "app",
			Core:         i,
			Shares:       units.Shares(10 + 10*i),
			HighPriority: i < n/2,
			AVX:          i%3 == 0,
			BaselineIPS:  2e9,
		}
	}
	var out []Policy
	if p, err := NewFrequencyShares(chip, specs, ShareConfig{}); err == nil {
		out = append(out, p)
	} else {
		t.Fatal(err)
	}
	if p, err := NewPerformanceShares(chip, specs, ShareConfig{}); err == nil {
		out = append(out, p)
	} else {
		t.Fatal(err)
	}
	if chip.PerCorePower {
		if p, err := NewPowerShares(chip, specs, ShareConfig{}); err == nil {
			out = append(out, p)
		} else {
			t.Fatal(err)
		}
	}
	if p, err := NewPriority(chip, specs, PriorityConfig{Limit: 40}); err == nil {
		out = append(out, p)
	} else {
		t.Fatal(err)
	}
	if p, err := NewPriority(chip, specs, PriorityConfig{Limit: 40, PartialLP: true}); err == nil {
		out = append(out, p)
	} else {
		t.Fatal(err)
	}
	if p, err := NewPriorityShares(chip, specs, PriorityConfig{Limit: 40}); err == nil {
		out = append(out, p)
	} else {
		t.Fatal(err)
	}
	return out
}

// randomSnapshot fabricates adversarial telemetry: wild powers, noisy
// frequencies, occasionally zeroed measurements.
func randomSnapshot(rng *rand.Rand, chip platform.Chip, n int) Snapshot {
	s := Snapshot{
		Limit:        units.Watts(10 + rng.Float64()*90),
		PackagePower: units.Watts(rng.Float64() * 150),
		Apps:         make([]AppState, n),
	}
	for i := 0; i < n; i++ {
		st := AppState{
			Spec: AppSpec{Name: "app", Core: i, Shares: units.Shares(10 + 10*i), BaselineIPS: 2e9},
		}
		if rng.Intn(5) != 0 { // 1 in 5 samples are blank (parked core)
			st.Freq = chip.Freq.Min + units.Hertz(rng.Float64()*float64(chip.Freq.Max()-chip.Freq.Min))
			st.IPS = rng.Float64() * 4e9
			st.Power = units.Watts(rng.Float64() * 15)
		}
		s.Apps[i] = st
	}
	return s
}

// Every policy, fed arbitrary telemetry, must only ever emit actions for
// known cores with valid quantised frequencies (or parks) — garbage in,
// well-formed actuation out.
func TestAllPoliciesEmitValidActionsUnderFuzz(t *testing.T) {
	for _, chip := range []platform.Chip{platform.Skylake(), platform.Ryzen()} {
		rng := rand.New(rand.NewSource(12345))
		for _, pol := range allPolicies(t, chip) {
			check := func(actions []Action) {
				distinct := make(map[units.Hertz]bool)
				for _, a := range actions {
					if a.Core < 0 || a.Core >= chip.NumCores {
						t.Fatalf("%s/%s: action for unknown core %d", chip.Vendor, pol.Name(), a.Core)
					}
					if a.Park {
						continue
					}
					if a.Freq < chip.Freq.Min || a.Freq > chip.Freq.Max() {
						t.Fatalf("%s/%s: frequency %v out of range", chip.Vendor, pol.Name(), a.Freq)
					}
					mult := float64(a.Freq) / float64(chip.Freq.Step)
					if math.Abs(mult-math.Round(mult)) > 1e-6 {
						t.Fatalf("%s/%s: frequency %v not quantised", chip.Vendor, pol.Name(), a.Freq)
					}
					distinct[a.Freq] = true
				}
				if k := chip.MaxSimultaneousPStates; k > 0 && len(distinct) > k {
					t.Fatalf("%s/%s: %d distinct P-states exceed platform limit %d",
						chip.Vendor, pol.Name(), len(distinct), k)
				}
			}
			check(pol.Initial())
			for i := 0; i < 300; i++ {
				check(pol.Update(randomSnapshot(rng, chip, chip.NumCores)))
			}
		}
	}
}
