// Package rapl implements a Running Average Power Limit controller over the
// simulated chip, reproducing the hardware behaviour the paper measures in
// Section 3:
//
//   - the controller keeps a running average of package power over a short
//     window and adjusts a single internal frequency cap to hold the
//     average at or below the programmed limit;
//   - the cap descends from the top, so the *fastest* cores are throttled
//     first ("RAPL only reduces the frequency of the unconstrained core",
//     Figure 4) — cores already running slower, whether by user P-state
//     request or by AVX licence (cam4 in Figure 1), are unaffected until
//     the cap descends to their level;
//   - power freed by user-throttled cores is automatically available to
//     unconstrained cores, which the cap then allows to run faster
//     (Figure 4a).
//
// The controller knows nothing about priorities, which is precisely the
// paper's complaint: this package is the baseline the policy daemon is
// evaluated against.
package rapl

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cpu"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/units"
)

// Config parameterises a limiter.
type Config struct {
	// Window is the averaging window. Real RAPL uses tens of
	// milliseconds to seconds; default 50 ms.
	Window time.Duration

	// Interval is how often the cap may move by one step; default 2 ms.
	// Together with the frequency step count it bounds settling time.
	Interval time.Duration

	// ReleaseMargin is extra headroom (as a fraction of the predicted
	// one-step power gain) required before the cap is raised, providing
	// hysteresis; default 3%.
	ReleaseMargin float64
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = 50 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.ReleaseMargin <= 0 {
		c.ReleaseMargin = 0.03
	}
}

// Limiter is the RAPL power-capping state machine for one package.
type Limiter struct {
	spec cpu.FreqSpec
	cfg  Config

	limit   units.Watts // 0 disables capping
	cap     units.Hertz // current internal frequency cap
	avg     *runningAverage
	last    units.Watts   // most recent instantaneous sample
	pending time.Duration // time since the cap last moved

	// Optional instrumentation; nil handles no-op.
	mThrottles *metrics.Counter
	mReleases  *metrics.Counter
	mCapMHz    *metrics.Gauge
	flight     *flight.Recorder
}

// Instrument registers the limiter's metrics on reg: throttle events (cap
// lowered one step), release events (cap raised), and the current cap in
// MHz. Safe to call with a nil registry.
func (l *Limiter) Instrument(reg *metrics.Registry) {
	l.mThrottles = reg.Counter("rapl_throttle_events_total", "RAPL cap step-downs (package power over the limit).")
	l.mReleases = reg.Counter("rapl_release_events_total", "RAPL cap step-ups (headroom regained under the limit).")
	l.mCapMHz = reg.Gauge("rapl_cap_mhz", "Current RAPL internal frequency cap in MHz.")
	l.mCapMHz.Set(l.cap.MHzF())
}

// Flight attaches the flight recorder: every cap step-down (throttle) and
// step-up (release) is logged with the new cap and the instantaneous
// package power. A nil recorder disables logging.
func (l *Limiter) Flight(rec *flight.Recorder) { l.flight = rec }

// recordCap logs one cap movement to the flight recorder.
func (l *Limiter) recordCap(kind flight.Kind) {
	l.flight.Record(flight.Event{
		Kind:   kind,
		Source: flight.SourceRAPL,
		Core:   -1,
		Value:  uint64(l.cap),
		Aux:    uint64(float64(l.last) * 1e6),
	})
}

// New returns a limiter for a chip with the given frequency spec. The cap
// starts fully open (at the chip's maximum frequency).
func New(spec cpu.FreqSpec, cfg Config) (*Limiter, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("rapl: %w", err)
	}
	cfg.fill()
	return &Limiter{
		spec: spec,
		cfg:  cfg,
		cap:  spec.Max(),
		avg:  newRunningAverage(cfg.Window),
	}, nil
}

// SetLimit programs the package power limit; zero disables capping and
// fully opens the cap.
func (l *Limiter) SetLimit(w units.Watts) {
	if w < 0 {
		w = 0
	}
	l.limit = w
	if w == 0 {
		l.cap = l.spec.Max()
	}
}

// Limit reports the programmed limit (0 when disabled).
func (l *Limiter) Limit() units.Watts { return l.limit }

// Cap reports the current internal frequency cap. Callers combine it with
// per-core requests via cpu.FreqSpec.Effective.
func (l *Limiter) Cap() units.Hertz { return l.cap }

// Average reports the current windowed average power.
func (l *Limiter) Average() units.Watts { return l.avg.value() }

// Observe feeds one simulation step's package power into the controller and
// moves the cap at most one frequency step per configured interval. It
// returns the cap in effect after the observation.
func (l *Limiter) Observe(pkg units.Watts, dt time.Duration) units.Hertz {
	if dt <= 0 {
		return l.cap
	}
	// A lying energy counter (fault injection, torn multi-register sample)
	// can hand the controller NaN, ±Inf, or a negative wattage. None of
	// these may poison the running average or move the cap — a zero-clamped
	// negative would read as full headroom and wrongly release — so hold
	// the last sane sample instead.
	if f := float64(pkg); math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		pkg = l.last
	}
	l.avg.add(pkg, dt)
	l.last = pkg
	if l.limit <= 0 {
		return l.cap
	}
	l.pending += dt
	if l.pending < l.cfg.Interval {
		return l.cap
	}
	l.pending = 0
	// The up/down decision uses the instantaneous sample: deciding on the
	// lagging windowed average while stepping every interval produces
	// large limit cycles (the cap keeps descending long after power has
	// fallen below the limit).
	if l.last > l.limit {
		if l.cap > l.spec.Min {
			l.cap -= l.spec.Step
			if l.cap < l.spec.Min {
				l.cap = l.spec.Min
			}
			l.mThrottles.Inc()
			l.mCapMHz.Set(l.cap.MHzF())
			l.recordCap(flight.KindRAPLThrottle)
		}
		return l.cap
	}
	// Release only when the predicted power cost of one step up still fits
	// under the limit; otherwise the cap bounces between two levels and the
	// high phase violates the limit. Package power scales roughly as
	// f^2.5 in the DVFS range (P ~ V^2 f with V linear in f), so one step
	// costs about last * 2.5 * step/cap.
	const freqExponent = 2.5
	if l.cap < l.spec.Max() {
		gain := l.last * units.Watts(freqExponent*float64(l.spec.Step)/float64(l.cap))
		if l.last+gain*units.Watts(1+l.cfg.ReleaseMargin) <= l.limit {
			l.cap += l.spec.Step
			if l.cap > l.spec.Max() {
				l.cap = l.spec.Max()
			}
			l.mReleases.Inc()
			l.mCapMHz.Set(l.cap.MHzF())
			l.recordCap(flight.KindRAPLRelease)
		}
	}
	return l.cap
}

// runningAverage maintains a time-weighted average over a sliding window.
type runningAverage struct {
	window  time.Duration
	samples []sample
	sumWJ   float64 // watt-seconds in window
	sumT    time.Duration
}

type sample struct {
	w  units.Watts
	dt time.Duration
}

func newRunningAverage(window time.Duration) *runningAverage {
	return &runningAverage{window: window}
}

func (r *runningAverage) add(w units.Watts, dt time.Duration) {
	r.samples = append(r.samples, sample{w, dt})
	r.sumWJ += float64(w) * dt.Seconds()
	r.sumT += dt
	for r.sumT > r.window && len(r.samples) > 1 {
		old := r.samples[0]
		if r.sumT-old.dt < r.window {
			break
		}
		r.samples = r.samples[1:]
		r.sumWJ -= float64(old.w) * old.dt.Seconds()
		r.sumT -= old.dt
	}
}

func (r *runningAverage) value() units.Watts {
	s := r.sumT.Seconds()
	if s <= 0 {
		return 0
	}
	return units.Watts(r.sumWJ / s)
}
