package rapl

import (
	"math"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/units"
)

func skySpec() cpu.FreqSpec { return platform.Skylake().Freq }

// toyPlant computes package power for n identical cores whose requests are
// given, all capped by the limiter's cap.
func toyPlant(chip platform.Chip, requests []units.Hertz, activity float64, cap units.Hertz) units.Watts {
	draws := make([]power.CoreDraw, len(requests))
	for i, r := range requests {
		eff := chip.Freq.Effective(r, cap, len(requests), false)
		draws[i] = power.CoreDraw{Active: true, Freq: eff, Activity: activity}
	}
	return chip.Power.Package(draws)
}

func TestNewRejectsBadSpec(t *testing.T) {
	if _, err := New(cpu.FreqSpec{}, Config{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestDisabledLimiterNeverCaps(t *testing.T) {
	l, err := New(skySpec(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		l.Observe(500, time.Millisecond)
	}
	if l.Cap() != skySpec().Max() {
		t.Errorf("disabled limiter moved cap to %v", l.Cap())
	}
}

func TestSetLimitZeroReopens(t *testing.T) {
	l, _ := New(skySpec(), Config{})
	l.SetLimit(30)
	for i := 0; i < 500; i++ {
		l.Observe(100, time.Millisecond)
	}
	if l.Cap() >= skySpec().Max() {
		t.Fatal("cap did not descend under overload")
	}
	l.SetLimit(0)
	if l.Cap() != skySpec().Max() {
		t.Errorf("cap not reopened: %v", l.Cap())
	}
	if l.Limit() != 0 {
		t.Errorf("limit = %v", l.Limit())
	}
}

func TestNegativeLimitTreatedAsDisabled(t *testing.T) {
	l, _ := New(skySpec(), Config{})
	l.SetLimit(-5)
	if l.Limit() != 0 {
		t.Errorf("negative limit stored: %v", l.Limit())
	}
}

// Closed-loop: 10 gcc-like cores at full request under a 50 W limit must
// settle with average power at or below the limit, and the cap must sit
// strictly below max.
func TestConvergesUnderLimit(t *testing.T) {
	chip := platform.Skylake()
	l, _ := New(chip.Freq, Config{})
	l.SetLimit(50)
	requests := make([]units.Hertz, chip.NumCores)
	for i := range requests {
		requests[i] = chip.Freq.Max()
	}
	dt := time.Millisecond
	for i := 0; i < 3000; i++ {
		p := toyPlant(chip, requests, 0.85, l.Cap())
		l.Observe(p, dt)
	}
	finalPower := toyPlant(chip, requests, 0.85, l.Cap())
	if finalPower > 50*1.02 {
		t.Errorf("settled power %v exceeds 50 W limit", finalPower)
	}
	if l.Cap() >= chip.Freq.Max() {
		t.Error("cap never descended")
	}
	if l.Average() > 51 {
		t.Errorf("windowed average %v above limit", l.Average())
	}
}

// Fastest-first: with half the cores user-throttled to the minimum
// frequency, the cap settles above the throttled cores' frequency — RAPL
// only reduces the unconstrained cores (Figure 4).
func TestThrottlesFastestCoresFirst(t *testing.T) {
	chip := platform.Skylake()
	l, _ := New(chip.Freq, Config{})
	l.SetLimit(50)
	requests := make([]units.Hertz, chip.NumCores)
	for i := range requests {
		if i < 5 {
			requests[i] = chip.Freq.Max() // unconstrained
		} else {
			requests[i] = chip.Freq.Min // user-throttled
		}
	}
	dt := time.Millisecond
	for i := 0; i < 3000; i++ {
		p := toyPlant(chip, requests, 0.85, l.Cap())
		l.Observe(p, dt)
	}
	if l.Cap() <= chip.Freq.Min {
		t.Errorf("cap %v descended to the floor; should stop above throttled cores", l.Cap())
	}
	// The throttled cores' effective frequency must be their own request,
	// not the cap.
	eff := chip.Freq.Effective(chip.Freq.Min, l.Cap(), chip.NumCores, false)
	if eff != chip.Freq.Min {
		t.Errorf("throttled core runs at %v, want its requested %v", eff, chip.Freq.Min)
	}
}

// Power freed by throttled cores must raise the cap (and so the speed of
// unconstrained cores) compared to an all-fast configuration at the same
// limit (Figure 4a).
func TestFreedPowerRaisesCap(t *testing.T) {
	chip := platform.Skylake()
	settle := func(requests []units.Hertz) units.Hertz {
		l, _ := New(chip.Freq, Config{})
		l.SetLimit(50)
		for i := 0; i < 4000; i++ {
			p := toyPlant(chip, requests, 0.85, l.Cap())
			l.Observe(p, time.Millisecond)
		}
		return l.Cap()
	}
	allFast := make([]units.Hertz, chip.NumCores)
	halfSlow := make([]units.Hertz, chip.NumCores)
	for i := range allFast {
		allFast[i] = chip.Freq.Max()
		if i < 5 {
			halfSlow[i] = chip.Freq.Max()
		} else {
			halfSlow[i] = chip.Freq.Min
		}
	}
	capAll := settle(allFast)
	capHalf := settle(halfSlow)
	if capHalf <= capAll {
		t.Errorf("cap with half throttled (%v) should exceed all-fast cap (%v)", capHalf, capAll)
	}
}

// Raising the limit must release the cap upward (hysteresis permitting).
func TestReleasesWhenLimitRaised(t *testing.T) {
	chip := platform.Skylake()
	l, _ := New(chip.Freq, Config{})
	l.SetLimit(40)
	requests := make([]units.Hertz, chip.NumCores)
	for i := range requests {
		requests[i] = chip.Freq.Max()
	}
	for i := 0; i < 3000; i++ {
		l.Observe(toyPlant(chip, requests, 0.85, l.Cap()), time.Millisecond)
	}
	lowCap := l.Cap()
	l.SetLimit(80)
	for i := 0; i < 3000; i++ {
		l.Observe(toyPlant(chip, requests, 0.85, l.Cap()), time.Millisecond)
	}
	if l.Cap() <= lowCap {
		t.Errorf("cap did not release: %v -> %v", lowCap, l.Cap())
	}
}

func TestObserveIgnoresNonPositiveDt(t *testing.T) {
	l, _ := New(skySpec(), Config{})
	l.SetLimit(30)
	before := l.Cap()
	l.Observe(500, 0)
	l.Observe(500, -time.Second)
	if l.Cap() != before || l.Average() != 0 {
		t.Error("non-positive dt affected state")
	}
}

func TestRunningAverageWindow(t *testing.T) {
	r := newRunningAverage(100 * time.Millisecond)
	// 100 ms at 10 W.
	for i := 0; i < 10; i++ {
		r.add(10, 10*time.Millisecond)
	}
	if math.Abs(float64(r.value()-10)) > 1e-9 {
		t.Fatalf("avg = %v, want 10", r.value())
	}
	// 100 ms at 50 W should fully displace the old samples.
	for i := 0; i < 10; i++ {
		r.add(50, 10*time.Millisecond)
	}
	if math.Abs(float64(r.value()-50)) > 1 {
		t.Errorf("avg after displacement = %v, want ~50", r.value())
	}
}

func TestRunningAverageEmpty(t *testing.T) {
	r := newRunningAverage(time.Second)
	if r.value() != 0 {
		t.Errorf("empty average = %v", r.value())
	}
}

// The cap must always remain a valid frequency within [Min, Max].
func TestCapStaysInRange(t *testing.T) {
	chip := platform.Skylake()
	l, _ := New(chip.Freq, Config{Interval: time.Millisecond})
	l.SetLimit(1) // impossible limit: cap slams to the floor
	for i := 0; i < 5000; i++ {
		l.Observe(100, time.Millisecond)
		if c := l.Cap(); c < chip.Freq.Min || c > chip.Freq.Max() {
			t.Fatalf("cap out of range: %v", c)
		}
	}
	if l.Cap() != chip.Freq.Min {
		t.Errorf("cap should bottom out at %v, got %v", chip.Freq.Min, l.Cap())
	}
	l.SetLimit(10000) // unreachable: cap opens fully
	for i := 0; i < 5000; i++ {
		l.Observe(1, time.Millisecond)
	}
	if l.Cap() != chip.Freq.Max() {
		t.Errorf("cap should top out at %v, got %v", chip.Freq.Max(), l.Cap())
	}
}
