package rapl

import (
	"math"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/units"
)

// capMoves drives the limiter with a series of readings and counts cap
// step-downs (throttles) and step-ups (releases).
func capMoves(l *Limiter, readings []units.Watts, dt time.Duration) (throttles, releases int) {
	prev := l.Cap()
	for _, w := range readings {
		c := l.Observe(w, dt)
		if c < prev {
			throttles++
		} else if c > prev {
			releases++
		}
		prev = c
	}
	return
}

// repeat builds n copies of w.
func repeat(w units.Watts, n int) []units.Watts {
	out := make([]units.Watts, n)
	for i := range out {
		out[i] = w
	}
	return out
}

// settleUnder runs the closed loop until the cap stabilises under the limit.
func settleUnder(t *testing.T, chip platform.Chip, limit units.Watts) *Limiter {
	t.Helper()
	l, err := New(chip.Freq, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.SetLimit(limit)
	requests := make([]units.Hertz, chip.NumCores)
	for i := range requests {
		requests[i] = chip.Freq.Max()
	}
	for i := 0; i < 3000; i++ {
		l.Observe(toyPlant(chip, requests, 0.85, l.Cap()), time.Millisecond)
	}
	if l.Cap() >= chip.Freq.Max() || l.Cap() <= chip.Freq.Min {
		t.Fatalf("loop did not settle mid-range: cap %v", l.Cap())
	}
	return l
}

// Release hysteresis: readings sitting just barely under the limit must not
// raise the cap — one step up would put power straight back over the limit
// and the cap would bounce between two levels forever.
func TestNoReleaseWithoutHeadroom(t *testing.T) {
	chip := platform.Skylake()
	l := settleUnder(t, chip, 50)
	_, releases := capMoves(l, repeat(49.5, 2000), time.Millisecond)
	if releases != 0 {
		t.Errorf("cap released %d times on 0.5 W of headroom; hysteresis should hold it", releases)
	}
	// With real headroom the same limiter must release promptly.
	_, releases = capMoves(l, repeat(30, 2000), time.Millisecond)
	if releases == 0 {
		t.Error("cap never released despite 20 W of headroom")
	}
}

// Oscillating readings around the limit: alternating ±1% measurement noise
// on the closed loop must leave the cap inside the hysteresis dead band —
// zero movements once settled — rather than chattering throttle/release.
func TestOscillatingReadingsSettleWithoutChatter(t *testing.T) {
	chip := platform.Skylake()
	l, err := New(chip.Freq, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.SetLimit(50)
	requests := make([]units.Hertz, chip.NumCores)
	for i := range requests {
		requests[i] = chip.Freq.Max()
	}
	noisy := func(i int, p units.Watts) units.Watts {
		if i%2 == 0 {
			return p * 1.01
		}
		return p * 0.99
	}
	for i := 0; i < 4000; i++ {
		l.Observe(noisy(i, toyPlant(chip, requests, 0.85, l.Cap())), time.Millisecond)
	}
	start := l.Cap()
	moves := 0
	for i := 0; i < 4000; i++ {
		c := l.Observe(noisy(i, toyPlant(chip, requests, 0.85, l.Cap())), time.Millisecond)
		if c != start {
			moves++
			start = c
		}
	}
	if moves != 0 {
		t.Errorf("cap chattered %d times under ±1%% oscillating readings", moves)
	}
	if p := toyPlant(chip, requests, 0.85, l.Cap()); p > 50*1.02 {
		t.Errorf("settled power %v exceeds the 50 W limit", p)
	}
}

// A square-wave load (watts flipping far above / far below the limit every
// 20 ms) must produce bounded cap movement per cycle — the cap tracks the
// wave instead of winding up: it may not travel more than one step per
// configured interval, and each half-cycle moves it in one direction only.
func TestSquareWaveLoadBoundsCapTravel(t *testing.T) {
	chip := platform.Skylake()
	l, err := New(chip.Freq, Config{Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l.SetLimit(50)
	dt := time.Millisecond
	for cycle := 0; cycle < 20; cycle++ {
		th, rel := capMoves(l, repeat(80, 20), dt) // 20 ms over the limit
		if rel != 0 {
			t.Fatalf("cycle %d: cap released %d times while 30 W over the limit", cycle, rel)
		}
		if th > 10 {
			t.Fatalf("cycle %d: %d throttles in 20 ms at a 2 ms interval; rate limit broken", cycle, th)
		}
		th, _ = capMoves(l, repeat(20, 20), dt) // 20 ms well under the limit
		if th != 0 {
			t.Fatalf("cycle %d: cap throttled %d times while 30 W under the limit", cycle, th)
		}
	}
	if c := l.Cap(); c < chip.Freq.Min || c > chip.Freq.Max() {
		t.Fatalf("cap out of range after square wave: %v", c)
	}
}

// Garbage readings — NaN, ±Inf, negative watts — must not poison the
// average, move the cap, or wedge the controller.
func TestObserveSanitizesGarbageReadings(t *testing.T) {
	chip := platform.Skylake()
	l := settleUnder(t, chip, 50)
	capBefore := l.Cap()
	garbage := []units.Watts{
		units.Watts(math.NaN()),
		units.Watts(math.Inf(1)),
		units.Watts(math.Inf(-1)),
		-1e6,
	}
	for i := 0; i < 50; i++ {
		for _, g := range garbage {
			l.Observe(g, time.Millisecond)
		}
	}
	if avg := float64(l.Average()); math.IsNaN(avg) || math.IsInf(avg, 0) || avg < 0 {
		t.Errorf("garbage poisoned the running average: %v", avg)
	}
	if c := l.Cap(); c < chip.Freq.Min || c > chip.Freq.Max() {
		t.Errorf("garbage drove the cap out of range: %v", c)
	}
	// Garbage holds the last sane sample, which settled near the limit —
	// the cap must not have climbed on lies.
	if l.Cap() > capBefore {
		t.Errorf("garbage readings opened the cap: %v -> %v", capBefore, l.Cap())
	}
	// The controller keeps working afterwards: sustained overload still
	// throttles, and the cap stays valid.
	th, _ := capMoves(l, repeat(80, 200), time.Millisecond)
	if th == 0 {
		t.Error("controller wedged after garbage: overload no longer throttles")
	}
}
