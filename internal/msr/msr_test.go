package msr

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestPerfCtlRoundTrip(t *testing.T) {
	for _, step := range []units.Hertz{100 * units.MHz, 25 * units.MHz} {
		for f := step; f <= 4*units.GHz; f += step {
			v := EncodePerfCtl(f, step)
			back := DecodePerfCtl(v, step)
			if back != f {
				// The 8-bit ratio field caps at 255 steps.
				if f/step > 255 {
					continue
				}
				t.Fatalf("step %v: round trip %v -> %v", step, f, back)
			}
		}
	}
}

func TestPerfCtlZeroStep(t *testing.T) {
	if got := EncodePerfCtl(2*units.GHz, 0); got != 0 {
		t.Errorf("EncodePerfCtl with zero step = %d", got)
	}
}

func TestEnergyUnitSizes(t *testing.T) {
	u16 := EnergyUnit{ESU: 16}
	if got := float64(u16.UnitJoules()); math.Abs(got-15.2587890625e-6) > 1e-12 {
		t.Errorf("ESU 16 unit = %g, want 15.26 µJ", got)
	}
	u14 := EnergyUnit{ESU: 14}
	if got := float64(u14.UnitJoules()); math.Abs(got-61.03515625e-6) > 1e-12 {
		t.Errorf("ESU 14 unit = %g, want 61.04 µJ", got)
	}
}

func TestEnergyRoundTrip(t *testing.T) {
	u := EnergyUnit{ESU: 14}
	for _, j := range []units.Joules{0, 0.001, 1, 100, 1234.5} {
		c := u.ToCounts(j)
		back := u.FromCounts(c)
		if math.Abs(float64(back-j)) > float64(u.UnitJoules()) {
			t.Errorf("round trip %v -> %v", j, back)
		}
	}
	if u.ToCounts(-5) != 0 {
		t.Error("negative energy should clamp to zero counts")
	}
}

func TestEnergyCounterWraps(t *testing.T) {
	u := EnergyUnit{ESU: 14}
	// Energy beyond 2^32 counts must wrap like the hardware counter.
	bigJ := u.FromCounts(0xFFFFFFFF) + 10*u.UnitJoules()
	c := u.ToCounts(bigJ)
	if c >= 1<<32 {
		t.Fatalf("counter did not wrap: %d", c)
	}
	if c > 100 {
		t.Errorf("wrapped counter = %d, want small residue", c)
	}
}

func TestDeltaCountsWrap(t *testing.T) {
	if got := DeltaCounts(100, 250); got != 150 {
		t.Errorf("no-wrap delta = %d", got)
	}
	if got := DeltaCounts(0xFFFFFF00, 0x40); got != 0x140 {
		t.Errorf("wrap delta = %#x, want 0x140", got)
	}
}

// Property: accumulating energy through the wrapped counter and reading back
// deltas conserves total energy.
func TestEnergyDeltaConservation(t *testing.T) {
	u := EnergyUnit{ESU: 16}
	prop := func(chunks []uint16) bool {
		var trueTotal units.Joules
		var counter uint64
		var readTotal units.Joules
		prev := counter
		for _, c := range chunks {
			j := units.Joules(float64(c) / 100) // up to ~655 J per chunk
			trueTotal += j
			counter = (counter + uint64(float64(j)*float64(uint64(1)<<u.ESU))) & 0xFFFFFFFF
			readTotal += u.FromCounts(DeltaCounts(prev, counter))
			prev = counter
		}
		return math.Abs(float64(readTotal-trueTotal)) < float64(len(chunks)+1)*float64(u.UnitJoules())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerUnitRoundTrip(t *testing.T) {
	for _, esu := range []uint{14, 16, 10} {
		v := EncodePowerUnit(EnergyUnit{ESU: esu})
		if got := DecodePowerUnit(v); got.ESU != esu {
			t.Errorf("ESU round trip %d -> %d", esu, got.ESU)
		}
	}
}

func TestPowerLimitRoundTrip(t *testing.T) {
	for _, w := range []units.Watts{20, 40, 50, 85, 95.5} {
		for _, en := range []bool{true, false} {
			v := EncodePowerLimit(w, en)
			gw, gen := DecodePowerLimit(v)
			if math.Abs(float64(gw-w)) > 0.125 || gen != en {
				t.Errorf("limit round trip (%v,%v) -> (%v,%v)", w, en, gw, gen)
			}
		}
	}
}

func TestCanonicalAliases(t *testing.T) {
	alias := map[uint32]uint32{
		AMDPStateCtl:   IA32PerfCtl,
		AMDPStateStat:  IA32PerfStatus,
		AMDRAPLPwrUnit: RAPLPowerUnit,
		AMDCoreEnergy:  PP0EnergyStatus,
		AMDPkgEnergy:   PkgEnergyStatus,
	}
	for from, to := range alias {
		if got := Canonical(from); got != to {
			t.Errorf("Canonical(0x%X) = 0x%X, want 0x%X", from, got, to)
		}
	}
	if got := Canonical(IA32Aperf); got != IA32Aperf {
		t.Errorf("Canonical should be identity for canonical regs")
	}
}

func TestSimDeviceDispatch(t *testing.T) {
	d := NewSimDevice()
	var wrote uint64
	d.OnRead(IA32Aperf, func(cpu int) (uint64, error) { return uint64(cpu) * 10, nil })
	d.OnWrite(IA32PerfCtl, func(cpu int, val uint64) error { wrote = val; return nil })

	if v, err := d.Read(3, IA32Aperf); err != nil || v != 30 {
		t.Errorf("Read = %d, %v", v, err)
	}
	if err := d.Write(0, IA32PerfCtl, 0x1600); err != nil || wrote != 0x1600 {
		t.Errorf("Write: %v, wrote=%#x", err, wrote)
	}
	// AMD alias reaches the same handler.
	if err := d.Write(0, AMDPStateCtl, 0x800); err != nil || wrote != 0x800 {
		t.Errorf("alias write: %v, wrote=%#x", err, wrote)
	}
	if _, err := d.Read(0, 0xDEAD); !errors.Is(err, ErrUnknownRegister) {
		t.Errorf("unknown read error = %v", err)
	}
	if err := d.Write(0, 0xDEAD, 1); !errors.Is(err, ErrUnknownRegister) {
		t.Errorf("unknown write error = %v", err)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	d, err := NewFileDevice(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(2, IA32PerfCtl, 0xABCD1234DEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := d.Read(2, IA32PerfCtl)
	if err != nil || v != 0xABCD1234DEADBEEF {
		t.Errorf("Read = %#x, %v", v, err)
	}
	// Unwritten registers read as zero.
	if v, err := d.Read(0, PkgEnergyStatus); err != nil || v != 0 {
		t.Errorf("absent register = %#x, %v", v, err)
	}
	// AMD alias hits the same file.
	if v, err := d.Read(2, AMDPStateCtl); err != nil || v != 0xABCD1234DEADBEEF {
		t.Errorf("alias read = %#x, %v", v, err)
	}
}

func TestFileDevicePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewFileDevice(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Write(0, PkgEnergyStatus, 42); err != nil {
		t.Fatal(err)
	}
	d2, err := NewFileDevice(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d2.Read(0, PkgEnergyStatus); v != 42 {
		t.Errorf("persisted value = %d, want 42", v)
	}
}

func TestMirror(t *testing.T) {
	src := NewSimDevice()
	src.OnRead(IA32Aperf, func(cpu int) (uint64, error) { return 100 + uint64(cpu), nil })
	src.OnRead(IA32Mperf, func(cpu int) (uint64, error) { return 200 + uint64(cpu), nil })
	dst, err := NewFileDevice(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := Mirror(src, dst, 4, []uint32{IA32Aperf, IA32Mperf}); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		if v, _ := dst.Read(cpu, IA32Aperf); v != 100+uint64(cpu) {
			t.Errorf("cpu%d aperf = %d", cpu, v)
		}
		if v, _ := dst.Read(cpu, IA32Mperf); v != 200+uint64(cpu) {
			t.Errorf("cpu%d mperf = %d", cpu, v)
		}
	}
}

func TestMirrorPropagatesErrors(t *testing.T) {
	src := NewSimDevice() // no handlers: read fails
	dst, err := NewFileDevice(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := Mirror(src, dst, 1, []uint32{IA32Aperf}); err == nil {
		t.Error("Mirror should propagate read errors")
	}
}

// accessLog is a test Recorder capturing every recorded access.
type accessLog struct {
	ops []string
}

func (l *accessLog) RecordMSR(write bool, cpu int, reg uint32, val uint64) {
	op := "r"
	if write {
		op = "w"
	}
	l.ops = append(l.ops, fmt.Sprintf("%s cpu%d %s %d", op, cpu, RegName(reg), val))
}

func TestSimDeviceRecorder(t *testing.T) {
	d := NewSimDevice()
	d.OnRead(IA32Aperf, func(cpu int) (uint64, error) { return 42, nil })
	d.OnWrite(IA32PerfCtl, func(cpu int, val uint64) error { return nil })
	log := &accessLog{}
	d.SetRecorder(log)
	if _, err := d.Read(1, IA32Aperf); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(2, AMDPStateCtl, 0x1800); err != nil { // alias: canonicalised
		t.Fatal(err)
	}
	if _, err := d.Read(0, IA32FixedCtr0); err == nil {
		t.Fatal("unwired register should fail")
	}
	want := []string{"r cpu1 APERF 42", "w cpu2 PERF_CTL 6144"}
	if len(log.ops) != len(want) {
		t.Fatalf("recorded %v, want %v", log.ops, want)
	}
	for i := range want {
		if log.ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, log.ops[i], want[i])
		}
	}
	// Failed accesses are not recorded.
	d.SetRecorder(nil)
	if _, err := d.Read(1, IA32Aperf); err != nil {
		t.Fatal(err)
	}
	if len(log.ops) != 2 {
		t.Error("recorder not removed")
	}
}

func TestFileDeviceRecorder(t *testing.T) {
	d, err := NewFileDevice(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log := &accessLog{}
	d.SetRecorder(log)
	if err := d.Write(0, IA32PerfCtl, 0x2A00); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, IA32PerfCtl); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(3, IA32Aperf); err != nil { // absent: RAZ, still recorded
		t.Fatal(err)
	}
	want := []string{"w cpu0 PERF_CTL 10752", "r cpu0 PERF_CTL 10752", "r cpu3 APERF 0"}
	if len(log.ops) != len(want) {
		t.Fatalf("recorded %v, want %v", log.ops, want)
	}
	for i := range want {
		if log.ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, log.ops[i], want[i])
		}
	}
}

func TestRegName(t *testing.T) {
	if RegName(IA32Aperf) != "APERF" || RegName(AMDPkgEnergy) != "PKG_ENERGY_STATUS" {
		t.Error("known registers should name")
	}
	if RegName(0xDEAD) != "0xDEAD" {
		t.Errorf("unknown register = %q", RegName(0xDEAD))
	}
}
