// Package msr emulates the model-specific-register interface that power
// management software uses on real hardware. The paper's userspace daemon
// reads counters (APERF/MPERF, instructions retired, RAPL energy status)
// and writes P-state requests (IA32_PERF_CTL, or the AMD 17h P-state MSRs)
// through /dev/cpu/N/msr; this package provides the same register-level
// interface over the simulator.
//
// Two device implementations are provided: SimDevice dispatches reads and
// writes to registered handlers (the simulated machine wires its state in),
// and FileDevice persists registers as little-endian 8-byte files under a
// directory tree shaped like /dev/cpu/N — the "file-based MSR access" path,
// which also lets the daemon run as a plain process against a directory.
package msr

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/units"
)

// Architectural and model-specific register addresses. Intel addresses are
// used as the canonical set; the AMD 17h equivalents alias onto the same
// simulated state so one daemon binary drives both platforms, exactly as the
// paper's modified turbostat did.
const (
	IA32Mperf      uint32 = 0xE7  // cycles at nominal frequency while in C0
	IA32Aperf      uint32 = 0xE8  // cycles at effective frequency while in C0
	IA32PerfStatus uint32 = 0x198 // current P-state (ratio in bits 15:8)
	IA32PerfCtl    uint32 = 0x199 // requested P-state (ratio in bits 15:8)
	IA32FixedCtr0  uint32 = 0x309 // instructions retired

	RAPLPowerUnit   uint32 = 0x606 // unit definitions (energy status unit in bits 12:8)
	PkgPowerLimit   uint32 = 0x610 // package power limit (1/8 W units, enable bit 15)
	PkgEnergyStatus uint32 = 0x611 // package energy consumed (32-bit, wraps)
	PP0EnergyStatus uint32 = 0x639 // core-domain energy (per-core in the simulator)

	IA32PmEnable   uint32 = 0x770 // HWP enable (bit 0)
	IA32HwpRequest uint32 = 0x774 // HWP hints: min/max performance and EPP

	// AMD family 17h aliases.
	AMDPStateCtl   uint32 = 0xC0010062
	AMDPStateStat  uint32 = 0xC0010063
	AMDRAPLPwrUnit uint32 = 0xC0010299
	AMDCoreEnergy  uint32 = 0xC001029A
	AMDPkgEnergy   uint32 = 0xC001029B
)

// Canonical maps AMD alias registers onto the canonical Intel-addressed
// simulated state; other registers map to themselves.
func Canonical(reg uint32) uint32 {
	switch reg {
	case AMDPStateCtl:
		return IA32PerfCtl
	case AMDPStateStat:
		return IA32PerfStatus
	case AMDRAPLPwrUnit:
		return RAPLPowerUnit
	case AMDCoreEnergy:
		return PP0EnergyStatus
	case AMDPkgEnergy:
		return PkgEnergyStatus
	}
	return reg
}

// Device is register-level access to one socket's MSRs, addressed by
// logical CPU.
type Device interface {
	Read(cpu int, reg uint32) (uint64, error)
	Write(cpu int, reg uint32, val uint64) error
}

// BatchReader is the bulk-sampling extension of Device: one call reads a
// single register across cpus [0, len(vals)) into the caller-owned vals
// slice, amortising per-call overhead (interface dispatch, lock
// acquisition) over the whole sweep — the difference between a per-core
// and a per-register cost on a 512-core package.
//
// Two error disciplines, selected by ok:
//
//   - ok == nil (strict): the first failing cpu aborts the sweep and its
//     error is returned; vals entries past it are unspecified.
//   - ok != nil (resilient): the sweep always visits every cpu, ok[i]
//     records whether cpu i's read succeeded (vals[i] is zeroed on
//     failure), and the returned error is the first one encountered —
//     nil when every cpu read cleanly. len(ok) must equal len(vals).
//
// Implementations must not retain vals or ok.
type BatchReader interface {
	ReadBatch(reg uint32, vals []uint64, ok []bool) error
}

// ReadBatch reads reg across cpus [0, len(vals)) on any Device, using the
// device's own BatchReader when it has one and falling back to per-cpu
// Read calls otherwise. Semantics follow BatchReader.
func ReadBatch(dev Device, reg uint32, vals []uint64, ok []bool) error {
	if br, isBatch := dev.(BatchReader); isBatch {
		return br.ReadBatch(reg, vals, ok)
	}
	return ReadBatchFunc(dev.Read, reg, vals, ok)
}

// ReadBatchFunc implements BatchReader semantics over a per-cpu read
// function; device implementations and wrappers (e.g. the fault
// injector) share it for their own sweeps.
func ReadBatchFunc(read func(cpu int, reg uint32) (uint64, error), reg uint32, vals []uint64, ok []bool) error {
	var first error
	for cpu := range vals {
		v, err := read(cpu, reg)
		if err != nil {
			if ok == nil {
				return err
			}
			if first == nil {
				first = err
			}
			vals[cpu] = 0
			ok[cpu] = false
			continue
		}
		vals[cpu] = v
		if ok != nil {
			ok[cpu] = true
		}
	}
	return first
}

// Recorder observes every successful register access on a device — the
// flight recorder's MSR tap (internal/flight implements it). Registers are
// reported in canonical form so AMD-alias traffic lands on one register
// stream.
type Recorder interface {
	RecordMSR(write bool, cpu int, reg uint32, val uint64)
}

// RegName names the architectural registers this package defines, for
// analyzer output; unknown registers format as hex.
func RegName(reg uint32) string {
	switch Canonical(reg) {
	case IA32Mperf:
		return "MPERF"
	case IA32Aperf:
		return "APERF"
	case IA32PerfStatus:
		return "PERF_STATUS"
	case IA32PerfCtl:
		return "PERF_CTL"
	case IA32FixedCtr0:
		return "FIXED_CTR0"
	case RAPLPowerUnit:
		return "RAPL_POWER_UNIT"
	case PkgPowerLimit:
		return "PKG_POWER_LIMIT"
	case PkgEnergyStatus:
		return "PKG_ENERGY_STATUS"
	case PP0EnergyStatus:
		return "PP0_ENERGY_STATUS"
	case IA32PmEnable:
		return "PM_ENABLE"
	case IA32HwpRequest:
		return "HWP_REQUEST"
	}
	return fmt.Sprintf("0x%X", reg)
}

// EncodePerfCtl encodes a frequency request as a PERF_CTL value: the
// frequency expressed as a multiple of step, stored in bits 15:8 (the
// Intel ratio field; we reuse the layout for AMD with its 25 MHz step).
func EncodePerfCtl(f, step units.Hertz) uint64 {
	if step <= 0 {
		return 0
	}
	ratio := uint64(f.QuantizeNearest(step) / step)
	return (ratio & 0xFF) << 8
}

// DecodePerfCtl recovers the requested frequency from a PERF_CTL value.
func DecodePerfCtl(val uint64, step units.Hertz) units.Hertz {
	return units.Hertz((val>>8)&0xFF) * step
}

// EncodeHWPRequest encodes IA32_HWP_REQUEST hints: the minimum and maximum
// performance ratios (frequency as a multiple of step) in bits 7:0 and
// 15:8, and the energy-performance preference (0 = maximum performance,
// 255 = maximum energy saving) in bits 31:24. The desired-performance field
// (bits 23:16) is left zero: autonomous selection, as the paper's HWP
// discussion assumes.
func EncodeHWPRequest(min, max units.Hertz, step units.Hertz, epp uint8) uint64 {
	if step <= 0 {
		return 0
	}
	lo := uint64(min.QuantizeNearest(step)/step) & 0xFF
	hi := uint64(max.QuantizeNearest(step)/step) & 0xFF
	return lo | hi<<8 | uint64(epp)<<24
}

// DecodeHWPRequest recovers the hints from an IA32_HWP_REQUEST value.
func DecodeHWPRequest(val uint64, step units.Hertz) (min, max units.Hertz, epp uint8) {
	return units.Hertz(val&0xFF) * step,
		units.Hertz((val>>8)&0xFF) * step,
		uint8(val >> 24)
}

// EnergyUnit converts between joules and RAPL energy-status counts. The
// unit is 2^-ESU joules; Skylake server parts use ESU 14 (61 µJ), most
// client parts 16 (15.3 µJ, the value the paper cites).
type EnergyUnit struct{ ESU uint }

// UnitJoules returns the size of one count in joules.
func (u EnergyUnit) UnitJoules() units.Joules {
	return units.Joules(1.0 / float64(uint64(1)<<u.ESU))
}

// ToCounts converts energy to counts, truncating to the 32-bit counter
// width (the hardware counter wraps).
func (u EnergyUnit) ToCounts(j units.Joules) uint64 {
	if j < 0 {
		return 0
	}
	return uint64(float64(j)*float64(uint64(1)<<u.ESU)) & 0xFFFFFFFF
}

// FromCounts converts counts back to energy.
func (u EnergyUnit) FromCounts(c uint64) units.Joules {
	return units.Joules(float64(c&0xFFFFFFFF)) * u.UnitJoules()
}

// DeltaCounts computes the counter delta from prev to cur accounting for a
// single 32-bit wrap, as energy readers must.
func DeltaCounts(prev, cur uint64) uint64 {
	prev &= 0xFFFFFFFF
	cur &= 0xFFFFFFFF
	if cur >= prev {
		return cur - prev
	}
	return cur + (1 << 32) - prev
}

// EncodePowerUnit builds a RAPL_POWER_UNIT value carrying the energy status
// unit in bits 12:8.
func EncodePowerUnit(u EnergyUnit) uint64 { return uint64(u.ESU&0x1F) << 8 }

// DecodePowerUnit extracts the energy unit from a RAPL_POWER_UNIT value.
func DecodePowerUnit(val uint64) EnergyUnit { return EnergyUnit{ESU: uint((val >> 8) & 0x1F)} }

// EncodePowerLimit encodes a package power limit: watts in 1/8 W units in
// bits 14:0, enable in bit 15.
func EncodePowerLimit(w units.Watts, enable bool) uint64 {
	v := uint64(float64(w)*8) & 0x7FFF
	if enable {
		v |= 1 << 15
	}
	return v
}

// DecodePowerLimit recovers the limit and enable flag.
func DecodePowerLimit(val uint64) (units.Watts, bool) {
	return units.Watts(float64(val&0x7FFF) / 8), val&(1<<15) != 0
}

// SimDevice dispatches register access to handlers registered per canonical
// register address. Unhandled registers return ErrUnknownRegister. It is
// safe for concurrent use if the registered handlers are.
type SimDevice struct {
	mu     sync.RWMutex
	reads  map[uint32]func(cpu int) (uint64, error)
	writes map[uint32]func(cpu int, val uint64) error
	rec    Recorder
}

// ErrUnknownRegister is returned for access to an unwired register.
var ErrUnknownRegister = fmt.Errorf("msr: unknown register")

// NewSimDevice returns an empty device; wire registers with OnRead/OnWrite.
func NewSimDevice() *SimDevice {
	return &SimDevice{
		reads:  make(map[uint32]func(int) (uint64, error)),
		writes: make(map[uint32]func(int, uint64) error),
	}
}

// OnRead registers a read handler for reg (and its aliases).
func (d *SimDevice) OnRead(reg uint32, fn func(cpu int) (uint64, error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads[Canonical(reg)] = fn
}

// OnWrite registers a write handler for reg (and its aliases).
func (d *SimDevice) OnWrite(reg uint32, fn func(cpu int, val uint64) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes[Canonical(reg)] = fn
}

// SetRecorder installs (or, with nil, removes) the access recorder. Install
// before traffic starts; accesses already in flight may go unrecorded.
func (d *SimDevice) SetRecorder(rec Recorder) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rec = rec
}

// Read implements Device.
func (d *SimDevice) Read(cpu int, reg uint32) (uint64, error) {
	d.mu.RLock()
	fn := d.reads[Canonical(reg)]
	rec := d.rec
	d.mu.RUnlock()
	if fn == nil {
		return 0, fmt.Errorf("%w: read 0x%X", ErrUnknownRegister, reg)
	}
	v, err := fn(cpu)
	if err == nil && rec != nil {
		rec.RecordMSR(false, cpu, Canonical(reg), v)
	}
	return v, err
}

// ReadBatch implements BatchReader: the handler and recorder are resolved
// once under a single lock acquisition and the sweep runs handler calls
// back to back, so sampling n cores costs one dispatch, not n.
func (d *SimDevice) ReadBatch(reg uint32, vals []uint64, ok []bool) error {
	creg := Canonical(reg)
	d.mu.RLock()
	fn := d.reads[creg]
	rec := d.rec
	d.mu.RUnlock()
	if fn == nil {
		err := fmt.Errorf("%w: read 0x%X", ErrUnknownRegister, reg)
		if ok == nil {
			return err
		}
		for i := range vals {
			vals[i] = 0
			ok[i] = false
		}
		return err
	}
	var first error
	for cpu := range vals {
		v, err := fn(cpu)
		if err != nil {
			if ok == nil {
				return err
			}
			if first == nil {
				first = err
			}
			vals[cpu] = 0
			ok[cpu] = false
			continue
		}
		if rec != nil {
			rec.RecordMSR(false, cpu, creg, v)
		}
		vals[cpu] = v
		if ok != nil {
			ok[cpu] = true
		}
	}
	return first
}

// Write implements Device.
func (d *SimDevice) Write(cpu int, reg uint32, val uint64) error {
	d.mu.RLock()
	fn := d.writes[Canonical(reg)]
	rec := d.rec
	d.mu.RUnlock()
	if fn == nil {
		return fmt.Errorf("%w: write 0x%X", ErrUnknownRegister, reg)
	}
	err := fn(cpu, val)
	if err == nil && rec != nil {
		rec.RecordMSR(true, cpu, Canonical(reg), val)
	}
	return err
}

// FileDevice stores each register as an 8-byte little-endian file at
// dir/cpuN/0xXXXXXXXX, a file-system rendition of /dev/cpu/N/msr. Reads of
// absent registers return zero, like reading an unimplemented MSR that RAZ.
// It is safe for concurrent use within one process.
type FileDevice struct {
	dir string
	mu  sync.Mutex
	rec Recorder
}

// SetRecorder installs (or, with nil, removes) the access recorder.
func (d *FileDevice) SetRecorder(rec Recorder) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rec = rec
}

// NewFileDevice creates (if needed) and opens a file-backed MSR tree.
func NewFileDevice(dir string) (*FileDevice, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("msr: creating device dir: %w", err)
	}
	return &FileDevice{dir: dir}, nil
}

// Dir returns the root of the device tree.
func (d *FileDevice) Dir() string { return d.dir }

func (d *FileDevice) path(cpu int, reg uint32) string {
	return filepath.Join(d.dir, fmt.Sprintf("cpu%d", cpu), fmt.Sprintf("0x%08X", Canonical(reg)))
}

// Read implements Device. Missing registers read as zero.
func (d *FileDevice) Read(cpu int, reg uint32) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readLocked(cpu, reg)
}

// ReadBatch implements BatchReader under a single lock acquisition.
func (d *FileDevice) ReadBatch(reg uint32, vals []uint64, ok []bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return ReadBatchFunc(d.readLocked, reg, vals, ok)
}

func (d *FileDevice) readLocked(cpu int, reg uint32) (uint64, error) {
	b, err := os.ReadFile(d.path(cpu, reg))
	if os.IsNotExist(err) {
		// RAZ reads are still observations; record them.
		if d.rec != nil {
			d.rec.RecordMSR(false, cpu, Canonical(reg), 0)
		}
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("msr: read cpu%d reg 0x%X: %w", cpu, reg, err)
	}
	if len(b) < 8 {
		return 0, fmt.Errorf("msr: short register file for cpu%d reg 0x%X: %d bytes", cpu, reg, len(b))
	}
	v := binary.LittleEndian.Uint64(b)
	if d.rec != nil {
		d.rec.RecordMSR(false, cpu, Canonical(reg), v)
	}
	return v, nil
}

// Write implements Device.
func (d *FileDevice) Write(cpu int, reg uint32, val uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.path(cpu, reg)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("msr: creating cpu dir: %w", err)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], val)
	if err := os.WriteFile(p, b[:], 0o644); err != nil {
		return fmt.Errorf("msr: write cpu%d reg 0x%X: %w", cpu, reg, err)
	}
	if d.rec != nil {
		d.rec.RecordMSR(true, cpu, Canonical(reg), val)
	}
	return nil
}

// Mirror copies a register set for cpus [0, n) from src to dst. It is used
// to publish simulator state into a FileDevice for out-of-process readers.
func Mirror(src, dst Device, n int, regs []uint32) error {
	for cpu := 0; cpu < n; cpu++ {
		for _, reg := range regs {
			v, err := src.Read(cpu, reg)
			if err != nil {
				return err
			}
			if err := dst.Write(cpu, reg, v); err != nil {
				return err
			}
		}
	}
	return nil
}
