package workload

// The rest of SPEC CPU2017 beyond the paper's recommended 11-benchmark
// subset (Section 3.1 cites Limaye & Adegbija's characterisation, which
// covers the full suite). These let downstream users build mixes the paper
// did not evaluate; every experiment in this repository sticks to the
// paper's subset. Parameters follow the same calibration conventions as
// profiles.go: demand class via activity factor, memory-boundness via the
// frequency-insensitive stall term, AVX for wide-vector code.
var extendedProfiles = []Profile{
	// Integer suite.
	{
		Name: "mcf", BaseCPI: 1.20, MemStall: 0.60e-9, Activity: 0.75,
		TotalInstructions: 2.0e11,
	},
	{
		Name: "xalancbmk", BaseCPI: 1.10, MemStall: 0.30e-9, Activity: 0.85,
		TotalInstructions: 2.8e11,
	},
	{
		Name: "x264", BaseCPI: 0.70, MemStall: 0.05e-9, Activity: 1.25, AVX: true,
		TotalInstructions: 4.4e11,
	},
	{
		Name: "xz", BaseCPI: 1.15, MemStall: 0.25e-9, Activity: 0.80,
		TotalInstructions: 2.6e11,
		Phases: []Phase{
			{Instructions: 3e9, CPIMult: 0.9, ActivityMult: 1.0},
			{Instructions: 3e9, CPIMult: 1.2, ActivityMult: 0.95},
		},
	},
	// Floating-point suite.
	{
		Name: "bwaves", BaseCPI: 0.95, MemStall: 0.40e-9, Activity: 1.35, AVX: true,
		TotalInstructions: 2.5e11,
	},
	{
		Name: "wrf", BaseCPI: 1.00, MemStall: 0.15e-9, Activity: 1.20, AVX: true,
		TotalInstructions: 3.4e11,
	},
	{
		Name: "nab", BaseCPI: 0.80, MemStall: 0.03e-9, Activity: 1.15,
		TotalInstructions: 4.1e11,
	},
	{
		Name: "fotonik3d", BaseCPI: 1.00, MemStall: 0.50e-9, Activity: 1.10,
		TotalInstructions: 2.3e11,
	},
	{
		Name: "roms", BaseCPI: 1.00, MemStall: 0.30e-9, Activity: 1.15,
		TotalInstructions: 2.9e11,
	},
	{
		Name: "namd", BaseCPI: 0.75, MemStall: 0.02e-9, Activity: 1.20,
		TotalInstructions: 4.3e11,
	},
	{
		Name: "parest", BaseCPI: 0.95, MemStall: 0.20e-9, Activity: 1.00,
		TotalInstructions: 3.3e11,
	},
	{
		Name: "blender", BaseCPI: 0.85, MemStall: 0.10e-9, Activity: 1.05,
		TotalInstructions: 3.7e11,
		Phases: []Phase{
			{Instructions: 4e9, CPIMult: 1.0, ActivityMult: 1.0},
			{Instructions: 2e9, CPIMult: 0.9, ActivityMult: 1.1},
		},
	},
	{
		Name: "pop2", BaseCPI: 1.05, MemStall: 0.25e-9, Activity: 1.15,
		TotalInstructions: 3.0e11,
	},
}

// ExtendedSPEC2017 returns the paper's subset plus the additional SPEC
// CPU2017 benchmarks, as a copy.
func ExtendedSPEC2017() []Profile {
	out := make([]Profile, 0, len(specProfiles)+len(extendedProfiles))
	out = append(out, specProfiles...)
	out = append(out, extendedProfiles...)
	return out
}

// ExtendedNames returns the names of the extended-only benchmarks.
func ExtendedNames() []string {
	out := make([]string, len(extendedProfiles))
	for i, p := range extendedProfiles {
		out[i] = p.Name
	}
	return out
}
