package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range SPEC2017() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if err := CPUBurn.Validate(); err != nil {
		t.Errorf("cpuburn: %v", err)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := MustByName("gcc")
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"zero CPI", func(p *Profile) { p.BaseCPI = 0 }},
		{"negative stall", func(p *Profile) { p.MemStall = -1 }},
		{"zero activity", func(p *Profile) { p.Activity = 0 }},
		{"zero instructions", func(p *Profile) { p.TotalInstructions = 0 }},
		{"bad phase", func(p *Profile) { p.Phases = []Phase{{Instructions: 0, CPIMult: 1, ActivityMult: 1}} }},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if p, err := ByName("cpugcc"); err != nil || p.Name != "gcc" {
		t.Errorf("cpugcc alias broken: %v %v", p.Name, err)
	}
	if _, err := ByName("cpuburn"); err != nil {
		t.Errorf("cpuburn lookup: %v", err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestSPEC2017CopyIsolated(t *testing.T) {
	a := SPEC2017()
	a[0].Name = "mutated"
	b := SPEC2017()
	if b[0].Name == "mutated" {
		t.Error("SPEC2017 returns shared backing array")
	}
}

func TestIPSMonotoneInFrequency(t *testing.T) {
	for _, p := range SPEC2017() {
		prev := 0.0
		for f := 800 * units.MHz; f <= 3*units.GHz; f += 100 * units.MHz {
			ips := p.IPS(f)
			if ips <= prev {
				t.Errorf("%s: IPS not increasing at %v", p.Name, f)
			}
			prev = ips
		}
	}
}

func TestIPSZeroFrequency(t *testing.T) {
	p := MustByName("gcc")
	if p.IPS(0) != 0 {
		t.Error("IPS(0) should be 0")
	}
}

func TestMemoryBoundSaturates(t *testing.T) {
	lbm := MustByName("lbm")
	exch := MustByName("exchange2")
	lo, hi := 1*units.GHz, 3*units.GHz
	sLbm := lbm.FrequencySensitivity(lo, hi)
	sExch := exch.FrequencySensitivity(lo, hi)
	if sLbm >= sExch {
		t.Errorf("lbm sensitivity %.3f should be below exchange2 %.3f", sLbm, sExch)
	}
	if sExch < 0.9 {
		t.Errorf("exchange2 should be near frequency-proportional, got %.3f", sExch)
	}
	if sLbm > 0.65 {
		t.Errorf("lbm should saturate, got sensitivity %.3f", sLbm)
	}
}

func TestDemandClasses(t *testing.T) {
	hd := DemandClass(SPEC2017())
	wantHD := []string{"lbm", "cactusBSSN", "imagick", "cam4"}
	wantLD := []string{"gcc", "leela", "omnetpp", "deepsjeng"}
	for _, n := range wantHD {
		if !hd[n] {
			t.Errorf("%s should be high demand", n)
		}
	}
	for _, n := range wantLD {
		if hd[n] {
			t.Errorf("%s should be low demand", n)
		}
	}
	if DemandClass(nil) != nil {
		t.Error("DemandClass(nil) should be nil")
	}
}

func TestAVXFlags(t *testing.T) {
	avx := map[string]bool{"lbm": true, "imagick": true, "cam4": true}
	for _, p := range SPEC2017() {
		if p.AVX != avx[p.Name] {
			t.Errorf("%s: AVX = %v, want %v", p.Name, p.AVX, avx[p.Name])
		}
	}
	if !CPUBurn.AVX {
		t.Error("cpuburn should be AVX")
	}
}

func TestRuntimeScalesDownWithFrequency(t *testing.T) {
	p := MustByName("gcc")
	r1 := p.Runtime(1 * units.GHz)
	r2 := p.Runtime(2 * units.GHz)
	if r2 >= r1 {
		t.Errorf("runtime should shrink with frequency: %v -> %v", r1, r2)
	}
	// gcc is nearly core-bound: halving frequency should roughly double
	// runtime but not exactly (memory stall).
	ratio := float64(r1) / float64(r2)
	if ratio < 1.5 || ratio > 2.0 {
		t.Errorf("gcc runtime ratio = %.2f, want within (1.5, 2.0)", ratio)
	}
}

func TestInstanceAdvanceAccounting(t *testing.T) {
	p := MustByName("exchange2")
	in := NewInstance(p)
	f := 2 * units.GHz
	got := in.Advance(f, time.Second)
	want := p.IPS(f)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Advance retired %g, want %g", got, want)
	}
	if in.TotalInstructions() != got {
		t.Errorf("TotalInstructions = %g, want %g", in.TotalInstructions(), got)
	}
	if in.ActiveTime() != time.Second {
		t.Errorf("ActiveTime = %v", in.ActiveTime())
	}
	if math.Abs(in.MeanIPS()-want)/want > 1e-9 {
		t.Errorf("MeanIPS = %g, want %g", in.MeanIPS(), want)
	}
}

func TestInstanceRestartsOnCompletion(t *testing.T) {
	p := MustByName("gcc")
	p.TotalInstructions = 1e9
	p.Phases = nil
	in := NewInstance(p)
	f := 2 * units.GHz
	// Run long enough for several completions.
	for i := 0; i < 10; i++ {
		in.Advance(f, time.Second)
	}
	expectRuns := int(p.IPS(f) * 10 / 1e9)
	if in.RunsCompleted() < expectRuns-1 || in.RunsCompleted() > expectRuns+1 {
		t.Errorf("RunsCompleted = %d, want about %d", in.RunsCompleted(), expectRuns)
	}
	if in.Progress() < 0 || in.Progress() >= 1 {
		t.Errorf("Progress = %v, want [0,1)", in.Progress())
	}
}

func TestInstancePhaseCycling(t *testing.T) {
	p := Profile{
		Name: "phasey", BaseCPI: 1, Activity: 1, TotalInstructions: 1e12,
		Phases: []Phase{
			{Instructions: 1e9, CPIMult: 1.0, ActivityMult: 1.0},
			{Instructions: 1e9, CPIMult: 2.0, ActivityMult: 1.5},
		},
	}
	in := NewInstance(p)
	f := 1 * units.GHz
	if in.CurrentCPI() != 1.0 {
		t.Fatalf("initial CPI = %v", in.CurrentCPI())
	}
	// Phase 0 lasts exactly 1s at 1 GHz and CPI 1.
	in.Advance(f, time.Second)
	if in.CurrentCPI() != 2.0 || in.CurrentActivity() != 1.5 {
		t.Errorf("after phase 0: CPI=%v act=%v, want 2.0/1.5", in.CurrentCPI(), in.CurrentActivity())
	}
	// Phase 1 lasts 2s at 1 GHz and CPI 2.
	in.Advance(f, 2*time.Second)
	if in.CurrentCPI() != 1.0 {
		t.Errorf("phase train did not cycle: CPI=%v", in.CurrentCPI())
	}
}

func TestInstanceAdvanceCrossesBoundaries(t *testing.T) {
	// One big Advance spanning several phase and run boundaries must retire
	// the same instructions as many small Advances.
	p := Profile{
		Name: "boundary", BaseCPI: 1, Activity: 1, TotalInstructions: 3e8,
		Phases: []Phase{
			{Instructions: 1e8, CPIMult: 1.0, ActivityMult: 1.0},
			{Instructions: 1e8, CPIMult: 1.5, ActivityMult: 1.0},
		},
	}
	f := 1 * units.GHz
	big := NewInstance(p)
	bigRet := big.Advance(f, 5*time.Second)

	small := NewInstance(p)
	var smallRet float64
	for i := 0; i < 5000; i++ {
		smallRet += small.Advance(f, time.Millisecond)
	}
	if math.Abs(bigRet-smallRet)/bigRet > 1e-6 {
		t.Errorf("big step retired %g, small steps %g", bigRet, smallRet)
	}
	if big.RunsCompleted() != small.RunsCompleted() {
		t.Errorf("runs: big %d, small %d", big.RunsCompleted(), small.RunsCompleted())
	}
}

func TestInstanceReset(t *testing.T) {
	in := NewInstance(MustByName("leela"))
	in.Advance(2*units.GHz, 5*time.Second)
	in.Reset()
	if in.TotalInstructions() != 0 || in.Progress() != 0 || in.ActiveTime() != 0 ||
		in.RunsCompleted() != 0 || in.CurrentCPI() != in.Profile.BaseCPI*in.Profile.Phases[0].CPIMult {
		t.Error("Reset did not clear state")
	}
}

func TestAdvanceZeroDuration(t *testing.T) {
	in := NewInstance(MustByName("gcc"))
	if got := in.Advance(2*units.GHz, 0); got != 0 {
		t.Errorf("Advance(0) = %g", got)
	}
	if got := in.Advance(2*units.GHz, -time.Second); got != 0 {
		t.Errorf("Advance(-1s) = %g", got)
	}
}

// Property: synthetic profiles are always valid and instruction accounting
// is conserved across arbitrary step sizes.
func TestSyntheticProperties(t *testing.T) {
	prop := func(seed int64, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Synthetic("syn", rng)
		if p.Validate() != nil {
			return false
		}
		in := NewInstance(p)
		steps := int(stepsRaw)%20 + 1
		var total float64
		for i := 0; i < steps; i++ {
			dt := time.Duration(rng.Intn(500)+1) * time.Millisecond
			total += in.Advance(2*units.GHz, dt)
		}
		return math.Abs(total-in.TotalInstructions()) <= 1e-6*total+1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGccVsCam4DemandOrdering(t *testing.T) {
	// The motivating example: gcc is low demand, cam4 high demand.
	gcc, cam4 := MustByName("gcc"), MustByName("cam4")
	if gcc.Activity >= cam4.Activity {
		t.Errorf("gcc activity %v should be below cam4 %v", gcc.Activity, cam4.Activity)
	}
	if !cam4.AVX || gcc.AVX {
		t.Error("cam4 should be AVX, gcc not")
	}
}
