// Package workload models the applications the paper co-locates under a
// power cap.
//
// A Profile is an analytic stand-in for one SPEC CPU2017 rate-1 benchmark:
// instead of executing instructions it describes how the benchmark's
// performance and power respond to frequency, which is the only thing the
// paper's policies observe. Performance follows a two-term latency model
//
//	seconds/instruction = CPI/f + MemStall
//
// where the CPI term scales with core frequency and the memory-stall term
// does not (Section 2.1's observation that "the speed of memory and I/O does
// not change with frequency"). Power demand is expressed as an activity
// factor that scales the platform's effective switched capacitance; AVX
// code has a higher activity factor and is subject to the platform's AVX
// frequency licence (the paper's cam4/lbm/imagick outliers in Figures 1-3).
//
// An Instance is one running copy of a profile pinned to a core: it tracks
// executed instructions, phase position, and completion/restart counts.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/units"
)

// Phase modulates a profile's behaviour for a span of instructions. Phase
// trains let the simulator reproduce the paper's observation that
// performance shares are less stable than frequency shares because IPS
// moves with program phase (Section 6.2).
type Phase struct {
	Instructions float64 // length of the phase in instructions
	CPIMult      float64 // multiplies the profile's BaseCPI
	ActivityMult float64 // multiplies the profile's Activity
}

// Profile describes one application's frequency/power/performance behaviour.
type Profile struct {
	Name string

	// BaseCPI is the core-bound cycles-per-instruction of the workload.
	BaseCPI float64

	// MemStall is the frequency-insensitive seconds of stall per
	// instruction (memory, I/O). Larger values make the workload
	// memory-bound: its performance saturates as frequency rises.
	MemStall float64

	// Activity is the power activity factor relative to a typical integer
	// workload at 1.0. It scales the platform's effective capacitance.
	Activity float64

	// AVX marks workloads that execute wide vector instructions: they draw
	// more power and are capped at the platform's AVX licence frequency.
	AVX bool

	// TotalInstructions is the benchmark's instruction count for
	// run-to-completion experiments.
	TotalInstructions float64

	// Phases optionally modulates CPI and activity along the run. The
	// train cycles: after the last phase the first begins again. Empty
	// means uniform behaviour.
	Phases []Phase

	// DutyCycle, when in (0, 1), makes the workload interactive: it
	// executes for DutyCycle of every DutyPeriod and sleeps (core in a
	// C-state) for the rest — the load shape OS frequency governors key
	// on. Zero or one means always runnable (the SPEC profiles).
	DutyCycle float64

	// DutyPeriod is the duty window length; defaults to 100 ms when
	// DutyCycle is fractional.
	DutyPeriod time.Duration
}

// dutyCycled reports whether the profile alternates between running and
// sleeping.
func (p Profile) dutyCycled() bool { return p.DutyCycle > 0 && p.DutyCycle < 1 }

// dutyPeriod returns the effective duty window.
func (p Profile) dutyPeriod() time.Duration {
	if p.DutyPeriod > 0 {
		return p.DutyPeriod
	}
	return 100 * time.Millisecond
}

// Validate reports whether the profile is well-formed.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("workload %s: BaseCPI must be positive, got %g", p.Name, p.BaseCPI)
	}
	if p.MemStall < 0 {
		return fmt.Errorf("workload %s: negative MemStall", p.Name)
	}
	if p.Activity <= 0 {
		return fmt.Errorf("workload %s: Activity must be positive, got %g", p.Name, p.Activity)
	}
	if p.TotalInstructions <= 0 {
		return fmt.Errorf("workload %s: TotalInstructions must be positive", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Instructions <= 0 || ph.CPIMult <= 0 || ph.ActivityMult <= 0 {
			return fmt.Errorf("workload %s: phase %d has non-positive parameter", p.Name, i)
		}
	}
	if p.DutyCycle < 0 || p.DutyCycle > 1 {
		return fmt.Errorf("workload %s: DutyCycle %g outside [0,1]", p.Name, p.DutyCycle)
	}
	if p.DutyPeriod < 0 {
		return fmt.Errorf("workload %s: negative DutyPeriod", p.Name)
	}
	return nil
}

// IPS returns the profile's steady-state instructions per second at
// frequency f, ignoring phases (phase modulation applies per Instance).
func (p Profile) IPS(f units.Hertz) float64 {
	return ipsAt(f, p.BaseCPI, p.MemStall)
}

func ipsAt(f units.Hertz, cpi, memStall float64) float64 {
	if f <= 0 {
		return 0
	}
	spi := cpi/float64(f) + memStall
	if spi <= 0 {
		return 0
	}
	return 1 / spi
}

// Runtime returns the profile's run-to-completion time at a fixed frequency,
// ignoring phases.
func (p Profile) Runtime(f units.Hertz) time.Duration {
	ips := p.IPS(f)
	if ips <= 0 {
		return 0
	}
	return time.Duration(p.TotalInstructions / ips * float64(time.Second))
}

// FrequencySensitivity reports how strongly performance responds to
// frequency: the ratio of IPS at hi to IPS at lo, divided by hi/lo. A value
// near 1 means perfectly frequency-sensitive (core-bound); near lo/hi means
// totally insensitive (memory-bound).
func (p Profile) FrequencySensitivity(lo, hi units.Hertz) float64 {
	if lo <= 0 || hi <= lo {
		return 0
	}
	return (p.IPS(hi) / p.IPS(lo)) / (float64(hi) / float64(lo))
}

// Instance is one running copy of a profile.
type Instance struct {
	Profile Profile

	// Pin is the core the instance is pinned to, assigned by the
	// simulator.
	Pin int

	done      float64 // instructions executed in the current run
	phaseIdx  int
	phaseDone float64 // instructions executed within the current phase
	restarts  int
	totalInst float64       // instructions across all runs
	active    time.Duration // time spent executing
	dutyPos   time.Duration // position within the current duty period
}

// NewInstance returns a fresh instance of p.
func NewInstance(p Profile) *Instance {
	return &Instance{Profile: p}
}

// CurrentCPI returns the effective CPI in the current phase.
func (in *Instance) CurrentCPI() float64 {
	if len(in.Profile.Phases) == 0 {
		return in.Profile.BaseCPI
	}
	return in.Profile.BaseCPI * in.Profile.Phases[in.phaseIdx].CPIMult
}

// CurrentActivity returns the effective power activity factor in the current
// phase.
func (in *Instance) CurrentActivity() float64 {
	if len(in.Profile.Phases) == 0 {
		return in.Profile.Activity
	}
	return in.Profile.Activity * in.Profile.Phases[in.phaseIdx].ActivityMult
}

// IPS returns the instance's instructions per second at frequency f in its
// current phase.
func (in *Instance) IPS(f units.Hertz) float64 {
	return ipsAt(f, in.CurrentCPI(), in.Profile.MemStall)
}

// DutyOn reports whether the instance is currently in the executing window
// of its duty period (always true for non-duty-cycled profiles). The
// simulator treats off-duty cores as C-state idle.
func (in *Instance) DutyOn() bool {
	if !in.Profile.dutyCycled() {
		return true
	}
	on := time.Duration(in.Profile.DutyCycle * float64(in.Profile.dutyPeriod()))
	return in.dutyPos < on
}

// Advance executes the instance at frequency f for dt and returns the number
// of instructions retired. Duty-cycled profiles execute only during the on
// window of each duty period and sleep for the rest. When the run completes
// mid-step the instance restarts immediately (the paper's fixed-duration
// experiments keep every core loaded); RunsCompleted counts the
// wrap-arounds.
func (in *Instance) Advance(f units.Hertz, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	if !in.Profile.dutyCycled() {
		in.active += dt
		return in.execute(f, dt.Seconds())
	}
	period := in.Profile.dutyPeriod()
	on := time.Duration(in.Profile.DutyCycle * float64(period))
	var retired float64
	remaining := dt
	for remaining > 0 {
		if in.dutyPos < on {
			seg := on - in.dutyPos
			if seg > remaining {
				seg = remaining
			}
			in.active += seg
			retired += in.execute(f, seg.Seconds())
			in.dutyPos += seg
			remaining -= seg
		} else {
			seg := period - in.dutyPos
			if seg > remaining {
				seg = remaining
			}
			in.dutyPos += seg
			remaining -= seg
		}
		if in.dutyPos >= period {
			in.dutyPos = 0
		}
	}
	return retired
}

// execute runs the instruction/phase/run accounting for sec seconds of
// execution time at frequency f.
func (in *Instance) execute(f units.Hertz, sec float64) float64 {
	remaining := sec
	var retired float64
	for remaining > 1e-15 {
		ips := in.IPS(f)
		if ips <= 0 {
			break
		}
		// Instructions until the next boundary: phase end or run end.
		untilRun := in.Profile.TotalInstructions - in.done
		bound := untilRun
		if n := len(in.Profile.Phases); n > 0 {
			untilPhase := in.Profile.Phases[in.phaseIdx].Instructions - in.phaseDone
			if untilPhase < bound {
				bound = untilPhase
			}
		}
		step := ips * remaining
		if step >= bound {
			step = bound
			remaining -= bound / ips
		} else {
			remaining = 0
		}
		retired += step
		in.done += step
		in.totalInst += step
		in.phaseDone += step
		if n := len(in.Profile.Phases); n > 0 {
			phaseLen := in.Profile.Phases[in.phaseIdx].Instructions
			if in.phaseDone >= phaseLen*(1-1e-12) {
				in.phaseIdx = (in.phaseIdx + 1) % n
				in.phaseDone = 0
			}
		}
		if in.done >= in.Profile.TotalInstructions*(1-1e-12) {
			in.done = 0
			in.restarts++
		}
	}
	return retired
}

// RunsCompleted reports how many full runs the instance has finished.
func (in *Instance) RunsCompleted() int { return in.restarts }

// Progress reports the fraction [0,1) of the current run completed.
func (in *Instance) Progress() float64 {
	return in.done / in.Profile.TotalInstructions
}

// TotalInstructions reports instructions retired across all runs.
func (in *Instance) TotalInstructions() float64 { return in.totalInst }

// ActiveTime reports how long the instance has been executing.
func (in *Instance) ActiveTime() time.Duration { return in.active }

// MeanIPS reports the instance's average IPS over its active time.
func (in *Instance) MeanIPS() float64 {
	s := in.active.Seconds()
	if s <= 0 {
		return 0
	}
	return in.totalInst / s
}

// Reset returns the instance to its initial state.
func (in *Instance) Reset() {
	in.done, in.phaseDone, in.totalInst = 0, 0, 0
	in.phaseIdx, in.restarts = 0, 0
	in.active = 0
	in.dutyPos = 0
}

// Synthetic returns a randomized but valid profile drawn from plausible
// ranges, for property tests and randomized experiments beyond the paper's
// fixed sets.
func Synthetic(name string, rng *rand.Rand) Profile {
	avx := rng.Float64() < 0.3
	act := 0.7 + rng.Float64()*0.5
	if avx {
		act += 0.4 + rng.Float64()*0.3
	}
	return Profile{
		Name:              name,
		BaseCPI:           0.6 + rng.Float64()*0.8,
		MemStall:          rng.Float64() * 0.5e-9,
		Activity:          act,
		AVX:               avx,
		TotalInstructions: 1e9 + rng.Float64()*9e9,
	}
}
