package workload

import (
	"fmt"
	"sort"
)

// The SPEC CPU2017 rate-1 subset the paper evaluates (Section 3.1), plus the
// cpuburn power virus used in the latency-sensitive experiments. The
// parameters are calibrated to the qualitative classes the paper reports,
// not to absolute SPEC scores:
//
//   - gcc and leela are low demand (LD); cactusBSSN, cam4, lbm and imagick
//     are high demand (HD);
//   - lbm, imagick and cam4 use AVX: they are the power outliers of
//     Figures 2-3 and are capped at the platform's AVX licence frequency
//     (which makes their performance saturate below max frequency);
//   - omnetpp and lbm are memory-bound: large frequency-insensitive stall;
//   - exchange2 and povray are core-bound: near-linear scaling with
//     frequency.
//
// MemStall is in seconds per instruction. TotalInstructions are scaled so
// runs complete in minutes of virtual time at nominal frequency.
var specProfiles = []Profile{
	{
		Name: "lbm", BaseCPI: 0.90, MemStall: 0.55e-9, Activity: 1.45, AVX: true,
		TotalInstructions: 2.4e11,
	},
	{
		Name: "cactusBSSN", BaseCPI: 1.10, MemStall: 0.20e-9, Activity: 1.30,
		TotalInstructions: 3.0e11,
		Phases: []Phase{
			{Instructions: 4e9, CPIMult: 1.00, ActivityMult: 1.00},
			{Instructions: 1e9, CPIMult: 1.10, ActivityMult: 1.05},
		},
	},
	{
		Name: "povray", BaseCPI: 0.80, MemStall: 0.01e-9, Activity: 1.05,
		TotalInstructions: 4.2e11,
	},
	{
		Name: "imagick", BaseCPI: 0.75, MemStall: 0.02e-9, Activity: 1.50, AVX: true,
		TotalInstructions: 4.5e11,
	},
	{
		Name: "cam4", BaseCPI: 1.00, MemStall: 0.12e-9, Activity: 1.40, AVX: true,
		TotalInstructions: 3.2e11,
		Phases: []Phase{
			{Instructions: 6e9, CPIMult: 1.00, ActivityMult: 1.00},
			{Instructions: 2e9, CPIMult: 1.15, ActivityMult: 0.95},
		},
	},
	{
		Name: "gcc", BaseCPI: 0.95, MemStall: 0.10e-9, Activity: 0.85,
		TotalInstructions: 3.8e11,
		Phases: []Phase{
			{Instructions: 5e9, CPIMult: 1.00, ActivityMult: 1.00},
			{Instructions: 2e9, CPIMult: 1.08, ActivityMult: 1.02},
		},
	},
	{
		Name: "exchange2", BaseCPI: 0.85, MemStall: 0.02e-9, Activity: 0.88,
		TotalInstructions: 4.6e11,
	},
	{
		Name: "deepsjeng", BaseCPI: 0.95, MemStall: 0.06e-9, Activity: 0.90,
		TotalInstructions: 4.0e11,
	},
	{
		Name: "leela", BaseCPI: 1.05, MemStall: 0.05e-9, Activity: 0.80,
		TotalInstructions: 3.6e11,
		Phases: []Phase{
			{Instructions: 3e9, CPIMult: 0.97, ActivityMult: 1.00},
			{Instructions: 3e9, CPIMult: 1.04, ActivityMult: 1.00},
		},
	},
	{
		Name: "perlbench", BaseCPI: 1.00, MemStall: 0.08e-9, Activity: 0.92,
		TotalInstructions: 3.9e11,
	},
	{
		Name: "omnetpp", BaseCPI: 1.30, MemStall: 0.45e-9, Activity: 0.82,
		TotalInstructions: 2.2e11,
	},
}

// CPUBurn is the cpuburn power virus: maximal switching activity, purely
// core-bound, AVX-heavy. It exists only to draw power (Figures 5, 12, 13).
var CPUBurn = Profile{
	Name: "cpuburn", BaseCPI: 0.60, MemStall: 0, Activity: 2.00, AVX: true,
	TotalInstructions: 1e12,
}

// SPEC2017 returns the paper's 11-benchmark subset, in the paper's order.
// The returned slice is a copy; callers may modify it.
func SPEC2017() []Profile {
	out := make([]Profile, len(specProfiles))
	copy(out, specProfiles)
	return out
}

// Names returns the names of the SPEC2017 subset in order.
func Names() []string {
	out := make([]string, len(specProfiles))
	for i, p := range specProfiles {
		out[i] = p.Name
	}
	return out
}

// ByName returns the named profile. Recognized names are the paper's
// SPEC2017 subset ("gcc" also answers to "cpugcc", as the paper uses both),
// the extended SPEC2017 benchmarks, and "cpuburn".
func ByName(name string) (Profile, error) {
	if name == "cpugcc" {
		name = "gcc"
	}
	if name == CPUBurn.Name {
		return CPUBurn, nil
	}
	for _, p := range specProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range extendedProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// MustByName is ByName for static tables; it panics on unknown names.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// DemandClass partitions profiles into high demand (HD) and low demand (LD)
// by comparing each profile's power-proxy (activity factor) to the median of
// the group, following the paper's definition: HD applications "use more
// power at a given frequency" than their co-runners. Ties go to LD.
func DemandClass(profiles []Profile) map[string]bool {
	if len(profiles) == 0 {
		return nil
	}
	acts := make([]float64, len(profiles))
	for i, p := range profiles {
		acts[i] = p.Activity
	}
	sorted := make([]float64, len(acts))
	copy(sorted, acts)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	hd := make(map[string]bool, len(profiles))
	for i, p := range profiles {
		hd[p.Name] = acts[i] > median
	}
	return hd
}
