package workload

import (
	"testing"

	"repro/internal/units"
)

func TestExtendedProfilesValid(t *testing.T) {
	for _, p := range ExtendedSPEC2017() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestExtendedLookup(t *testing.T) {
	for _, n := range ExtendedNames() {
		p, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
		if p.Name != n {
			t.Errorf("ByName(%q) returned %q", n, p.Name)
		}
	}
}

func TestExtendedDisjointFromSubset(t *testing.T) {
	subset := make(map[string]bool)
	for _, n := range Names() {
		subset[n] = true
	}
	for _, n := range ExtendedNames() {
		if subset[n] {
			t.Errorf("%s appears in both the paper subset and the extension", n)
		}
	}
	if got := len(ExtendedSPEC2017()); got != len(Names())+len(ExtendedNames()) {
		t.Errorf("ExtendedSPEC2017 has %d profiles", got)
	}
}

func TestExtendedClassAssignments(t *testing.T) {
	// mcf is the canonical memory-bound integer benchmark; namd the
	// canonical core-bound FP one.
	mcf := MustByName("mcf")
	namd := MustByName("namd")
	lo, hi := 1*units.GHz, 3*units.GHz
	if mcf.FrequencySensitivity(lo, hi) >= namd.FrequencySensitivity(lo, hi) {
		t.Error("mcf should be less frequency-sensitive than namd")
	}
	// bwaves and x264 carry the AVX licence.
	for _, n := range []string{"bwaves", "x264", "wrf"} {
		if !MustByName(n).AVX {
			t.Errorf("%s should be AVX", n)
		}
	}
	// The subset classification is unaffected by the extension.
	hd := DemandClass(SPEC2017())
	if !hd["cam4"] || hd["gcc"] {
		t.Error("paper subset demand classes changed")
	}
}

func TestPaperSubsetUnchanged(t *testing.T) {
	if got := len(SPEC2017()); got != 11 {
		t.Errorf("paper subset = %d profiles, must stay 11", got)
	}
	if got := len(Names()); got != 11 {
		t.Errorf("Names() = %d, must stay 11", got)
	}
}
