package workload

import (
	"fmt"
	"time"

	"repro/internal/power"
	"repro/internal/units"
)

// TracePoint is one sampling interval of a recorded application: its
// measured instruction rate and core power while running at the recording
// frequency. Telemetry samples (turbostat rows) convert directly.
type TracePoint struct {
	Duration time.Duration
	IPS      float64
	Power    units.Watts
}

// ProfileFromTrace builds a replayable workload profile from a telemetry
// trace recorded at frequency refFreq on a machine described by the power
// model. This is the substitution path for workloads that cannot ship with
// a repository (production services, proprietary benchmarks): record
// per-interval IPS and core power on the real system, replay the phase
// train in the simulator.
//
// Each point becomes one phase: its CPI is refFreq/IPS (a single-frequency
// trace cannot separate core cycles from memory stalls, so the profile
// carries no MemStall — replay fidelity is exact at refFreq and optimistic
// above it for memory-bound code), and its activity factor inverts the
// power model at refFreq. The profile's run length is the trace's total
// instruction count, so one full run replays the recording once.
func ProfileFromTrace(name string, points []TracePoint, refFreq units.Hertz, m power.Model) (Profile, error) {
	if name == "" {
		return Profile{}, fmt.Errorf("workload: trace profile needs a name")
	}
	if len(points) == 0 {
		return Profile{}, fmt.Errorf("workload: empty trace")
	}
	if refFreq <= 0 {
		return Profile{}, fmt.Errorf("workload: recording frequency must be positive")
	}
	if err := m.Validate(); err != nil {
		return Profile{}, fmt.Errorf("workload: %w", err)
	}

	v := float64(m.Curve.VoltageAt(refFreq))
	dynDenom := m.CoreCeff * v * v * float64(refFreq)
	var totalInstr, cpiSum, actSum float64
	cpis := make([]float64, len(points))
	acts := make([]float64, len(points))
	instrs := make([]float64, len(points))
	for i, p := range points {
		if p.Duration <= 0 {
			return Profile{}, fmt.Errorf("workload: trace point %d has non-positive duration", i)
		}
		if p.IPS <= 0 {
			return Profile{}, fmt.Errorf("workload: trace point %d has non-positive IPS", i)
		}
		dyn := float64(p.Power - m.CoreLeakage)
		if dyn <= 0 {
			return Profile{}, fmt.Errorf("workload: trace point %d power %v at or below leakage %v",
				i, p.Power, m.CoreLeakage)
		}
		cpis[i] = float64(refFreq) / p.IPS
		acts[i] = dyn / dynDenom
		instrs[i] = p.IPS * p.Duration.Seconds()
		totalInstr += instrs[i]
		cpiSum += cpis[i]
		actSum += acts[i]
	}
	baseCPI := cpiSum / float64(len(points))
	baseAct := actSum / float64(len(points))
	prof := Profile{
		Name:              name,
		BaseCPI:           baseCPI,
		MemStall:          0,
		Activity:          baseAct,
		TotalInstructions: totalInstr,
		Phases:            make([]Phase, len(points)),
	}
	for i := range points {
		prof.Phases[i] = Phase{
			Instructions: instrs[i],
			CPIMult:      cpis[i] / baseCPI,
			ActivityMult: acts[i] / baseAct,
		}
	}
	if err := prof.Validate(); err != nil {
		return Profile{}, err
	}
	return prof, nil
}
