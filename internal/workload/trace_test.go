package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/units"
)

func traceModel() power.Model {
	return power.Model{
		Curve: power.VoltageCurve{
			MinFreq: 800 * units.MHz, NomFreq: 2200 * units.MHz, MaxFreq: 3000 * units.MHz,
			MinV: 0.62, NomV: 0.95, MaxV: 1.20,
		},
		CoreCeff:      2.4e-9,
		CoreLeakage:   0.6,
		IdleCorePower: 0.1,
		UncorePower:   12,
	}
}

// recordTrace synthesises the telemetry a real recording session would
// produce: per-second IPS and core power of a source profile at refFreq.
func recordTrace(src Profile, refFreq units.Hertz, m power.Model, seconds int) []TracePoint {
	in := NewInstance(src)
	pts := make([]TracePoint, seconds)
	for i := range pts {
		act := in.CurrentActivity()
		instr := in.Advance(refFreq, time.Second)
		pts[i] = TracePoint{
			Duration: time.Second,
			IPS:      instr,
			Power:    m.CorePower(refFreq, act),
		}
	}
	return pts
}

func TestProfileFromTraceValidation(t *testing.T) {
	m := traceModel()
	good := []TracePoint{{Duration: time.Second, IPS: 1e9, Power: 4}}
	if _, err := ProfileFromTrace("", good, 2*units.GHz, m); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := ProfileFromTrace("x", nil, 2*units.GHz, m); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ProfileFromTrace("x", good, 0, m); err == nil {
		t.Error("zero frequency accepted")
	}
	bad := []TracePoint{{Duration: 0, IPS: 1e9, Power: 4}}
	if _, err := ProfileFromTrace("x", bad, 2*units.GHz, m); err == nil {
		t.Error("zero duration accepted")
	}
	bad = []TracePoint{{Duration: time.Second, IPS: 0, Power: 4}}
	if _, err := ProfileFromTrace("x", bad, 2*units.GHz, m); err == nil {
		t.Error("zero IPS accepted")
	}
	bad = []TracePoint{{Duration: time.Second, IPS: 1e9, Power: 0.1}}
	if _, err := ProfileFromTrace("x", bad, 2*units.GHz, m); err == nil {
		t.Error("sub-leakage power accepted")
	}
}

// Round trip: record a phase-heavy core-bound profile, rebuild it from the
// trace, and replay — IPS and power at the recording frequency must match
// the original within a percent.
func TestTraceRoundTripAtRecordingFrequency(t *testing.T) {
	m := traceModel()
	refFreq := 2 * units.GHz
	src := Profile{
		Name: "source", BaseCPI: 0.9, MemStall: 0, Activity: 1.1,
		TotalInstructions: 1e13,
		Phases: []Phase{
			{Instructions: 2e9, CPIMult: 1.0, ActivityMult: 1.0},
			{Instructions: 2e9, CPIMult: 1.4, ActivityMult: 1.3},
			{Instructions: 1e9, CPIMult: 0.8, ActivityMult: 0.9},
		},
	}
	pts := recordTrace(src, refFreq, m, 20)
	rebuilt, err := ProfileFromTrace("replay", pts, refFreq, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Replay the rebuilt profile for the trace duration and compare total
	// instructions and mean power against the recording.
	in := NewInstance(rebuilt)
	var replayInstr, replayEnergy float64
	for i := 0; i < 20; i++ {
		act := in.CurrentActivity()
		replayInstr += in.Advance(refFreq, time.Second)
		replayEnergy += float64(m.CorePower(refFreq, act))
	}
	var recInstr, recEnergy float64
	for _, p := range pts {
		recInstr += p.IPS * p.Duration.Seconds()
		recEnergy += float64(p.Power)
	}
	if rel := math.Abs(replayInstr-recInstr) / recInstr; rel > 0.01 {
		t.Errorf("instruction replay error %.4f", rel)
	}
	if rel := math.Abs(replayEnergy-recEnergy) / recEnergy; rel > 0.01 {
		t.Errorf("power replay error %.4f", rel)
	}
	// One full run of the rebuilt profile is exactly the recording.
	if rel := math.Abs(rebuilt.TotalInstructions-recInstr) / recInstr; rel > 1e-9 {
		t.Errorf("run length %.4g != trace instructions %.4g", rebuilt.TotalInstructions, recInstr)
	}
}

// The phase train must preserve the recording's temporal structure, not
// just its averages: a high-power second in the recording appears as a
// high-activity phase at the same position.
func TestTracePreservesPhaseStructure(t *testing.T) {
	m := traceModel()
	refFreq := 2 * units.GHz
	pts := []TracePoint{
		{Duration: time.Second, IPS: 2e9, Power: 4},
		{Duration: time.Second, IPS: 1e9, Power: 7},
		{Duration: time.Second, IPS: 2e9, Power: 4},
	}
	prof, err := ProfileFromTrace("x", pts, refFreq, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Phases) != 3 {
		t.Fatalf("phases = %d", len(prof.Phases))
	}
	// Middle phase: slower (higher CPI) and hotter (higher activity).
	if prof.Phases[1].CPIMult <= prof.Phases[0].CPIMult {
		t.Error("middle phase CPI not elevated")
	}
	if prof.Phases[1].ActivityMult <= prof.Phases[0].ActivityMult {
		t.Error("middle phase activity not elevated")
	}
	// First and third seconds were identical.
	if math.Abs(prof.Phases[0].CPIMult-prof.Phases[2].CPIMult) > 1e-12 {
		t.Error("identical trace points produced different phases")
	}
}
