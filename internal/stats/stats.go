// Package stats provides the small statistical toolkit the experiment
// harnesses need: means, percentiles, five-number box-plot summaries (the
// paper's Figures 2 and 3 are box plots over the SPEC2017 subset), and an
// online accumulator for streaming telemetry.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest element of xs, or zero for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or zero for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns zero for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted computes a percentile over an already-sorted slice
// without copying it — the allocation-free fast path for callers that
// sort once and read several percentiles (e.g. a latency window's
// p50/p90/p99 inside the control loop).
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns several percentiles in one pass over a single sort.
func Quantiles(xs []float64, ps ...float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = PercentileSorted(sorted, p)
	}
	return out
}

// BoxPlot is the five-number summary used for the paper's DVFS sweep
// figures: median, first and third quartiles, and the 1st and 99th
// percentiles as whiskers, matching the figure captions.
type BoxPlot struct {
	P1, Q1, Median, Q3, P99 float64
}

// Summarize computes the box-plot summary of xs.
func Summarize(xs []float64) BoxPlot {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return BoxPlot{
		P1:     PercentileSorted(sorted, 1),
		Q1:     PercentileSorted(sorted, 25),
		Median: PercentileSorted(sorted, 50),
		Q3:     PercentileSorted(sorted, 75),
		P99:    PercentileSorted(sorted, 99),
	}
}

// String renders the summary compactly for experiment tables.
func (b BoxPlot) String() string {
	return fmt.Sprintf("p1=%.3f q1=%.3f med=%.3f q3=%.3f p99=%.3f",
		b.P1, b.Q1, b.Median, b.Q3, b.P99)
}

// Accumulator maintains running count, mean, and M2 (for variance) using
// Welford's algorithm, plus min and max. It is suitable for streaming
// telemetry samples where retaining the full series is unnecessary.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Count reports the number of samples added.
func (a *Accumulator) Count() int { return a.n }

// Mean reports the running mean, or zero before any sample.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the population variance, or zero with fewer than two
// samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev reports the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest sample, or zero before any sample.
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest sample, or zero before any sample.
func (a *Accumulator) Max() float64 { return a.max }

// Normalize divides each element of xs by base, returning a new slice. A
// zero base yields a zero slice, avoiding NaN propagation into reports.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}
