package stats

import "math/rand"

// Reservoir is a fixed-size uniform sample of a stream (Vitter's
// algorithm R), used where percentiles of an unbounded series are needed
// without retaining it — the daemon's real-time jitter distribution is the
// motivating case: one sample per control interval forever would grow
// without bound, while a reservoir keeps memory constant and the
// percentile estimate unbiased.
type Reservoir struct {
	capacity int
	seen     int64
	xs       []float64
	rng      *rand.Rand
}

// NewReservoir returns a reservoir holding at most capacity samples.
// Non-positive capacities default to 512. The RNG is deterministically
// seeded so runs are reproducible.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = 512
	}
	return &Reservoir{
		capacity: capacity,
		rng:      rand.New(rand.NewSource(int64(capacity))),
	}
}

// Add folds x into the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.xs) < r.capacity {
		r.xs = append(r.xs, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.capacity) {
		r.xs[j] = x
	}
}

// Seen reports how many samples have been offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Len reports how many samples are retained.
func (r *Reservoir) Len() int { return len(r.xs) }

// Values returns a copy of the retained samples.
func (r *Reservoir) Values() []float64 {
	return append([]float64(nil), r.xs...)
}

// Percentile estimates the p-th percentile from the retained sample.
func (r *Reservoir) Percentile(p float64) float64 {
	return Percentile(r.xs, p)
}

// Quantiles estimates several percentiles from the retained sample over
// a single sort — the latency views ask for p50/p90/p99 together, and
// three Percentile calls would sort the reservoir three times.
func (r *Reservoir) Quantiles(ps ...float64) []float64 {
	return Quantiles(r.xs, ps...)
}
