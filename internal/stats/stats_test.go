package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %v, want 2.8", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice aggregates should be zero")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be zero")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := Percentile(xs, 25); got != 1.75 {
		t.Errorf("p25 = %v, want 1.75", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5}
	Percentile(xs, 90)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	qs := Quantiles(xs, 0, 50, 100)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("Quantiles = %v", qs)
	}
}

func TestSummarizeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b := Summarize(xs)
	if !(b.P1 <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.P99) {
		t.Errorf("box plot not ordered: %+v", b)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	prop := func(seed int64, pa, pb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(100))
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		lo, hi := float64(pa%101), float64(pb%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		plo, phi := Percentile(xs, lo), Percentile(xs, hi)
		if plo > phi+1e-12 {
			return false
		}
		return plo >= Min(xs)-1e-12 && phi <= Max(xs)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.Float64() * 50
		acc.Add(xs[i])
	}
	if acc.Count() != len(xs) {
		t.Fatalf("Count = %d", acc.Count())
	}
	if !almostEqual(acc.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Mean: acc=%v batch=%v", acc.Mean(), Mean(xs))
	}
	if !almostEqual(acc.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("StdDev: acc=%v batch=%v", acc.StdDev(), StdDev(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Errorf("Min/Max mismatch")
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.Variance() != 0 {
		t.Error("empty accumulator should be zero")
	}
	acc.Add(5)
	if acc.Mean() != 5 || acc.Variance() != 0 || acc.Min() != 5 || acc.Max() != 5 {
		t.Errorf("single-sample accumulator wrong: %+v", acc)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4}, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("Normalize = %v", got)
	}
	z := Normalize([]float64{2, 4}, 0)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize by zero = %v, want zeros", z)
	}
}

// Property: median of sorted data equals middle element for odd lengths.
func TestMedianOdd(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2*rng.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		med := Percentile(xs, 50)
		sort.Float64s(xs)
		return almostEqual(med, xs[n/2], 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
