package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/flight/flighttest"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// liveRun builds a machine plus an instrumented daemon and returns them
// with the observability server mounted on a test HTTP server.
func liveRun(t *testing.T) (*sim.Machine, *daemon.Daemon, *httptest.Server) {
	t.Helper()
	chip := platform.Skylake()
	reg := metrics.NewRegistry()
	journal := decisions.NewJournal(64)
	m, err := sim.New(chip, sim.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"leela", "cactusBSSN"}
	specs := make([]core.AppSpec, len(names))
	for i, n := range names {
		p := workload.MustByName(n)
		if err := m.Pin(workload.NewInstance(p), i); err != nil {
			t.Fatal(err)
		}
		specs[i] = core.AppSpec{Name: n, Core: i, AVX: p.AVX, Shares: units.Shares(90 - 80*i)}
	}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
		Metrics: reg, Journal: journal,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(reg, journal, DaemonStatusFunc(d)).Handler())
	t.Cleanup(srv.Close)
	return m, d, srv
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// The acceptance test: scrape /metrics and /debug/status while the virtual
// run is in progress, then validate the final exposition.
func TestScrapeDuringLiveRun(t *testing.T) {
	m, d, srv := liveRun(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				get(t, srv.URL+"/metrics")
				get(t, srv.URL+"/debug/status")
				get(t, srv.URL+"/debug/vars")
				get(t, srv.URL+"/healthz")
			}
		}
	}()
	for i := 0; i < 30; i++ {
		m.Run(time.Second)
	}
	close(stop)
	wg.Wait()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Iterations() < 25 {
		t.Fatalf("only %d iterations ran", d.Iterations())
	}

	// /metrics: valid Prometheus text with counters, gauges, a histogram.
	out := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE powerd_iterations_total counter",
		"# TYPE powerd_limit_watts gauge",
		"powerd_limit_watts 50",
		"# TYPE powerd_iteration_seconds histogram",
		"powerd_iteration_seconds_count",
		`powerd_iteration_seconds_bucket{le="+Inf"}`,
		"# TYPE telemetry_samples_total counter",
		"# TYPE sim_ticks_total counter",
		"# TYPE rapl_cap_mhz gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}

	// /debug/status: last snapshot plus a bounded decision tail.
	var sr StatusResponse
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/status?n=5")), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status.Policy != "frequency-shares" {
		t.Errorf("policy = %q", sr.Status.Policy)
	}
	if sr.Status.Iterations != d.Iterations() {
		t.Errorf("status iterations = %d, want %d", sr.Status.Iterations, d.Iterations())
	}
	if sr.Status.LimitWatts != 50 || sr.Status.PackagePowerWatts <= 0 {
		t.Errorf("status power fields: %+v", sr.Status)
	}
	if len(sr.Status.Apps) != 2 || sr.Status.Apps[0].Name != "leela" {
		t.Errorf("status apps: %+v", sr.Status.Apps)
	}
	if len(sr.Decisions) != 5 {
		t.Fatalf("decision tail = %d entries, want 5", len(sr.Decisions))
	}
	last := sr.Decisions[len(sr.Decisions)-1]
	if last.Policy != "frequency-shares" || len(last.Reasons) == 0 {
		t.Errorf("last decision: %+v", last)
	}
	if uint64(d.Iterations()) != last.Seq {
		t.Errorf("last decision seq %d != iterations %d", last.Seq, d.Iterations())
	}

	// /debug/vars: a JSON object naming the iteration counter.
	var vars map[string]any
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["powerd_iterations_total"]; !ok {
		t.Errorf("/debug/vars missing powerd_iterations_total: %v", vars)
	}

	if got := get(t, srv.URL+"/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %q", got)
	}
}

// Nil components degrade to empty documents, not panics.
func TestNilComponents(t *testing.T) {
	srv := httptest.NewServer(New(nil, nil, nil).Handler())
	defer srv.Close()
	if out := get(t, srv.URL+"/metrics"); out != "" {
		t.Errorf("/metrics on nil registry = %q", out)
	}
	var sr StatusResponse
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/status")), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Decisions) != 0 {
		t.Errorf("decisions = %+v", sr.Decisions)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
}

// pprof must be absent unless explicitly mounted: profiles cost CPU and
// leak internals, so they ride behind powerd's -debug-pprof flag.
func TestPprofGating(t *testing.T) {
	plain := httptest.NewServer(New(nil, nil, nil).Handler())
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without WithPprof: %s, want 404", resp.Status)
	}

	prof := httptest.NewServer(New(nil, nil, nil, WithPprof()).Handler())
	defer prof.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(prof.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %s, want 200", path, resp.Status)
		}
	}
}

// The flight endpoints report ring occupancy and stream decodable dumps.
func TestFlightEndpoints(t *testing.T) {
	rec := flight.New(0)
	rec.BeginInterval(7)
	for i := 0; i < 5; i++ {
		rec.Record(flight.Event{Kind: flight.KindDecision, Source: flight.SourceDaemon, Core: -1})
	}
	srv := httptest.NewServer(New(nil, nil, nil, WithFlight(rec)).Handler())
	defer srv.Close()

	var fs FlightStats
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/flight")), &fs); err != nil {
		t.Fatal(err)
	}
	if fs.TotalEvents != 5 || fs.RetainedEvents != 5 || fs.Interval != 7 {
		t.Errorf("stats = %+v", fs)
	}

	// Dumps are POST-only.
	resp, err := http.Get(srv.URL + "/debug/flight/dump")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET dump = %s, want 405", resp.Status)
	}

	resp, err = http.Post(srv.URL+"/debug/flight/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST dump = %s", resp.Status)
	}
	if got := resp.Header.Get("X-Flight-Events"); got != "5" {
		t.Errorf("X-Flight-Events = %q, want 5", got)
	}
	d, err := flight.ReadDump(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 5 || d.Meta.Reason != "http" {
		t.Errorf("decoded dump: %d events, reason %q", len(d.Events), d.Meta.Reason)
	}

	// Absent recorder, absent endpoints.
	none := httptest.NewServer(New(nil, nil, nil).Handler())
	defer none.Close()
	resp, err = http.Post(none.URL+"/debug/flight/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("dump without WithFlight = %s, want 404", resp.Status)
	}
}

// TestDumpDuringRealtimeLoop hammers /metrics and /debug/flight/dump while
// a real-time control loop runs at a 1 ms interval over the simulated
// device. Run under -race (as CI does) this proves the recorder's
// single-writer rings, the dump snapshot path, and the metrics registry
// tolerate concurrent readers without torn state.
func TestDumpDuringRealtimeLoop(t *testing.T) {
	chip := platform.Skylake()
	reg := metrics.NewRegistry()
	rec := flight.New(1 << 10)
	flighttest.DumpOnFailure(t, rec)
	m, err := sim.New(chip, sim.WithMetrics(reg), sim.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	p := workload.MustByName("gcc")
	if err := m.Pin(workload.NewInstance(p), 0); err != nil {
		t.Fatal(err)
	}
	specs := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 100}}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50,
		Interval: time.Millisecond, Metrics: reg, Flight: rec,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(reg, nil, DaemonStatusFunc(d), WithFlight(rec)).Handler())
	defer srv.Close()

	loopDone := make(chan error, 1)
	go func() {
		loopDone <- d.RunRealtime(context.Background(), 200)
	}()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get(t, srv.URL+"/metrics")
				resp, err := http.Post(srv.URL+"/debug/flight/dump", "", nil)
				if err != nil {
					t.Error(err)
					return
				}
				dump, derr := flight.ReadDump(resp.Body)
				resp.Body.Close()
				if derr != nil {
					t.Errorf("dump mid-loop undecodable: %v", derr)
					return
				}
				// Every dump must be internally consistent: seq-sorted.
				for i := 1; i < len(dump.Events); i++ {
					if dump.Events[i].Seq <= dump.Events[i-1].Seq {
						t.Errorf("dump not seq-sorted at %d", i)
						return
					}
				}
			}
		}()
	}
	if err := <-loopDone; err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
	if d.Iterations() != 200 {
		t.Errorf("loop ran %d iterations, want 200", d.Iterations())
	}
	if rec.Total() == 0 {
		t.Error("recorder saw no events")
	}
}
