// Package obs serves the daemon's observability surface over HTTP:
//
//	/metrics            Prometheus text exposition of the metrics registry
//	/debug/vars         expvar-style JSON dump of the same registry
//	/debug/status       JSON: last snapshot plus the decision-journal tail
//	/debug/rounds       JSON: round-trace ring (with WithRounds)
//	/debug/energy       JSON: energy-ledger range query (with WithLedger)
//	/debug/flight       JSON: flight-recorder occupancy (with WithFlight)
//	/debug/flight/dump  POST: stream a flight-recorder dump (with WithFlight)
//	/debug/pprof/...    CPU/heap/block profiles (with WithPprof)
//	/healthz            liveness probe
//
// The paper evaluates its control loop from post-hoc traces; this package
// makes the same loop inspectable while it runs — cmd/powerd serves it
// behind -listen, cmd/turbostat reads it behind -connect, and tests scrape
// it during live virtual runs.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/tracing"
)

// AppStatus is one application's state in a status report.
type AppStatus struct {
	Name   string  `json:"name"`
	Core   int     `json:"core"`
	MHz    float64 `json:"mhz"`
	IPS    float64 `json:"ips"`
	Watts  float64 `json:"watts"`
	Parked bool    `json:"parked"`
}

// ServiceStatus is one latency service's tail-latency and SLO state in a
// status report. Latencies are in seconds over the service's sliding
// window; TargetSeconds is 0 when no objective is set.
type ServiceStatus struct {
	Name          string  `json:"name"`
	P50Seconds    float64 `json:"p50_seconds"`
	P90Seconds    float64 `json:"p90_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
	TargetSeconds float64 `json:"target_seconds,omitempty"`
	Met           bool    `json:"met"`
	Rate          float64 `json:"rate"`
	QueueLen      int     `json:"queue_len"`
	Dropped       uint64  `json:"dropped,omitempty"`
	Timeouts      uint64  `json:"timeouts,omitempty"`
}

// DaemonStatus is the control loop's externally visible state.
type DaemonStatus struct {
	Policy            string          `json:"policy"`
	Iterations        int             `json:"iterations"`
	TimeSeconds       float64         `json:"time_seconds"`
	LimitWatts        float64         `json:"limit_watts"`
	PackagePowerWatts float64         `json:"package_power_watts"`
	Apps              []AppStatus     `json:"apps"`
	Services          []ServiceStatus `json:"services,omitempty"`
	JitterMeanSeconds float64         `json:"jitter_mean_seconds"`
	JitterP50Seconds  float64         `json:"jitter_p50_seconds"`
	JitterP90Seconds  float64         `json:"jitter_p90_seconds"`
	JitterP99Seconds  float64         `json:"jitter_p99_seconds"`
	// Phase breakdown of the latest control iteration (the paper's
	// sample → decide → actuate pipeline), matching the span names a
	// round trace records.
	PhaseSampleSeconds  float64 `json:"phase_sample_seconds"`
	PhaseDecideSeconds  float64 `json:"phase_decide_seconds"`
	PhaseActuateSeconds float64 `json:"phase_actuate_seconds"`
	Error               string  `json:"error,omitempty"`
}

// StatusResponse is the /debug/status payload.
type StatusResponse struct {
	Status    DaemonStatus      `json:"status"`
	Decisions []decisions.Entry `json:"decisions"`
}

// DaemonStatusFunc adapts a daemon into the status callback the server
// needs. The callback snapshots the daemon under a single lock
// acquisition (daemon.StatusView), so a concurrent live reconfiguration
// can never surface as a torn read — a new policy name paired with the
// previous configuration's limit, say.
func DaemonStatusFunc(d *daemon.Daemon) func() DaemonStatus {
	return func() DaemonStatus {
		view := d.StatusView()
		snap := view.Snapshot
		st := DaemonStatus{
			Policy:              view.Policy,
			Iterations:          view.Iterations,
			TimeSeconds:         snap.Time.Seconds(),
			LimitWatts:          float64(view.Limit),
			PackagePowerWatts:   float64(snap.PackagePower),
			Apps:                make([]AppStatus, len(snap.Apps)),
			JitterMeanSeconds:   view.Jitter.Mean,
			JitterP50Seconds:    view.Jitter.P50,
			JitterP90Seconds:    view.Jitter.P90,
			JitterP99Seconds:    view.Jitter.P99,
			PhaseSampleSeconds:  view.Phases.Sample.Seconds(),
			PhaseDecideSeconds:  view.Phases.Decide.Seconds(),
			PhaseActuateSeconds: view.Phases.Actuate.Seconds(),
		}
		for i, a := range snap.Apps {
			st.Apps[i] = AppStatus{
				Name:   a.Spec.Name,
				Core:   a.Spec.Core,
				MHz:    a.Freq.MHzF(),
				IPS:    a.IPS,
				Watts:  float64(a.Power),
				Parked: a.Parked,
			}
		}
		for _, svc := range snap.Services {
			st.Services = append(st.Services, ServiceStatus{
				Name:          svc.Name,
				P50Seconds:    svc.P50,
				P90Seconds:    svc.P90,
				P99Seconds:    svc.P99,
				TargetSeconds: svc.Target,
				Met:           svc.Met(),
				Rate:          svc.Rate,
				QueueLen:      svc.QueueLen,
				Dropped:       svc.Dropped,
				Timeouts:      svc.Timeouts,
			})
		}
		if view.Err != nil {
			st.Error = view.Err.Error()
		}
		return st
	}
}

// Server bundles a metrics registry, a decision journal, and a status
// callback behind an http.Handler. Any of the three may be nil; the
// corresponding endpoint then serves an empty document.
type Server struct {
	reg     *metrics.Registry
	journal *decisions.Journal
	status  func() DaemonStatus
	flight  *flight.Recorder
	tracer  *tracing.Tracer
	ledger  *ledger.Ledger
	mux     *http.ServeMux

	mu   sync.Mutex
	hsrv *http.Server // live only between Serve and Shutdown
}

// DefaultTail is how many journal entries /debug/status returns when the
// request does not say (?n=).
const DefaultTail = 32

// Option configures optional server surfaces.
type Option func(*Server)

// WithFlight exposes the flight recorder: GET /debug/flight reports ring
// occupancy, POST /debug/flight/dump streams a versioned binary dump of the
// current ring contents (the same format the daemon's trigger dumps write,
// decodable by cmd/powerdump).
func WithFlight(rec *flight.Recorder) Option {
	return func(s *Server) { s.flight = rec }
}

// WithRounds exposes the round-trace ring: GET /debug/rounds returns the
// tracer's retained rounds as a JSON trace log — the per-machine half of
// the cross-node merged timeline (`powerdump -view merged` joins one such
// dump per machine by round ID).
func WithRounds(tr *tracing.Tracer) Option {
	return func(s *Server) { s.tracer = tr }
}

// WithLedger exposes the energy ledger: GET /debug/energy answers range
// queries (?from=, ?to=, ?res=raw|1s|1m|auto, ?step=, ?limit=) over the
// per-app energy time series, plus the cumulative summary — attribution
// totals, cost/carbon, and the anomaly feed.
func WithLedger(l *ledger.Ledger) Option {
	return func(s *Server) { s.ledger = l }
}

// WithPprof mounts net/http/pprof under /debug/pprof/, so CPU, heap, and
// block profiles can be taken from a live run. Off by default: profiles
// expose internals and cost CPU, so cmd/powerd gates this behind
// -debug-pprof.
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// WithHandler mounts an extra handler on the server's mux — how the
// powerapi control-plane agent rides on the daemon's existing
// observability listener instead of opening a second port. The pattern
// follows http.ServeMux rules (use a trailing slash for a subtree).
func WithHandler(pattern string, h http.Handler) Option {
	return func(s *Server) { s.mux.Handle(pattern, h) }
}

// getOnly rejects everything but GET (and HEAD, which net/http answers
// from GET handlers) with 405 and an Allow header — the read-only
// endpoints must not look writable.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// New assembles the observability server.
func New(reg *metrics.Registry, journal *decisions.Journal, status func() DaemonStatus, opts ...Option) *Server {
	s := &Server{reg: reg, journal: journal, status: status, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", getOnly(s.handleMetrics))
	s.mux.HandleFunc("/debug/vars", getOnly(s.handleVars))
	s.mux.HandleFunc("/debug/status", getOnly(s.handleStatus))
	s.mux.HandleFunc("/healthz", getOnly(s.handleHealthz))
	for _, o := range opts {
		o(s)
	}
	if s.flight != nil {
		s.mux.HandleFunc("/debug/flight", getOnly(s.handleFlight))
		s.mux.HandleFunc("/debug/flight/dump", s.handleFlightDump)
	}
	if s.tracer != nil {
		s.mux.HandleFunc("/debug/rounds", getOnly(s.handleRounds))
	}
	if s.ledger != nil {
		s.mux.HandleFunc("/debug/energy", getOnly(s.handleEnergy))
	}
	return s
}

// Handler exposes the endpoint mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve answers requests on l until the listener closes or Shutdown is
// called. It always returns a non-nil error; after a clean Shutdown that
// error is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	hsrv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.hsrv = hsrv
	s.mu.Unlock()
	return hsrv.Serve(l)
}

// Shutdown gracefully stops a server started with Serve: the listener
// closes immediately, in-flight requests get until ctx expires to finish.
// A server that never served returns nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hsrv := s.hsrv
	s.mu.Unlock()
	if hsrv == nil {
		return nil
	}
	return hsrv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg == nil {
		return
	}
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if s.reg == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	_ = s.reg.WriteJSON(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	n := DefaultTail
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			n = v
		}
	}
	resp := StatusResponse{Decisions: s.journal.Tail(n)}
	if resp.Decisions == nil {
		resp.Decisions = []decisions.Entry{}
	}
	if s.status != nil {
		resp.Status = s.status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (s *Server) handleRounds(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = s.tracer.Log().Write(w)
}

func (s *Server) handleEnergy(w http.ResponseWriter, r *http.Request) {
	q, err := ledger.ParseQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.ledger.Range(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// FlightStats is the /debug/flight payload.
type FlightStats struct {
	TotalEvents    uint64 `json:"total_events"`
	RetainedEvents int    `json:"retained_events"`
	Interval       uint32 `json:"interval"`
}

func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(FlightStats{
		TotalEvents:    s.flight.Total(),
		RetainedEvents: s.flight.Len(),
		Interval:       s.flight.Interval(),
	})
}

func (s *Server) handleFlightDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required (a dump mutates nothing but is expensive)", http.StatusMethodNotAllowed)
		return
	}
	d := s.flight.Dump("http")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="flight.fr"`)
	w.Header().Set("X-Flight-Events", strconv.Itoa(len(d.Events)))
	_ = d.Encode(w)
}
