package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/workload"
)

// TestStatusCoherentUnderReconfigure scrapes /debug/status while live
// reconfigurations flip the daemon between two (policy, limit) pairs.
// Because the status callback snapshots the daemon under one lock
// acquisition, a scrape must never observe a mixed pair — the new
// policy's name with the old configuration's limit. Run under -race (as
// CI does) this also proves the snapshot path is data-race free.
func TestStatusCoherentUnderReconfigure(t *testing.T) {
	chip := platform.Skylake()
	reg := metrics.NewRegistry()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.MustByName("gcc")
	if err := m.Pin(workload.NewInstance(p), 0); err != nil {
		t.Fatal(err)
	}
	specs := []core.AppSpec{{Name: "gcc", Core: 0, Shares: 100, AVX: p.AVX, HighPriority: true}}
	freq, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := core.NewPriority(chip, specs, core.PriorityConfig{Limit: 70})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: freq, Apps: specs, Limit: 40, Metrics: reg,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(reg, nil, DaemonStatusFunc(d)).Handler())
	defer srv.Close()

	// The two legal states the daemon ever occupies.
	valid := map[string]float64{
		freq.Name(): 40,
		prio.Name(): 70,
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sr StatusResponse
				if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/status")), &sr); err != nil {
					t.Error(err)
					return
				}
				want, ok := valid[sr.Status.Policy]
				if !ok {
					t.Errorf("unknown policy %q in status", sr.Status.Policy)
					return
				}
				if sr.Status.LimitWatts != want {
					t.Errorf("torn status: policy %q paired with limit %v, want %v",
						sr.Status.Policy, sr.Status.LimitWatts, want)
					return
				}
			}
		}()
	}

	for i := 0; i < 50; i++ {
		m.Run(200 * time.Millisecond)
		rc := daemon.Reconfig{Policy: prio, Limit: 70}
		if i%2 == 1 {
			rc = daemon.Reconfig{Policy: freq, Limit: 40}
		}
		if err := d.Reconfigure(rc); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// /debug/rounds serves the tracer's retained rounds as a JSON trace log
// and stays absent without WithRounds.
func TestRoundsEndpoint(t *testing.T) {
	tr := tracing.New("node-a", 8)
	b := tr.Begin(3)
	s0 := b.Now()
	b.Span("receive", "", s0, b.Now(), nil)
	b.End()

	srv := httptest.NewServer(New(nil, nil, nil, WithRounds(tr)).Handler())
	defer srv.Close()

	log, err := tracing.ReadLog(strings.NewReader(get(t, srv.URL+"/debug/rounds")))
	if err != nil {
		t.Fatal(err)
	}
	if log.Origin != "node-a" || len(log.Rounds) != 1 || log.Rounds[0].ID != 3 {
		t.Fatalf("served log = %+v", log)
	}
	if len(log.Rounds[0].Spans) != 1 || log.Rounds[0].Spans[0].Name != "receive" {
		t.Fatalf("spans = %+v", log.Rounds[0].Spans)
	}

	none := httptest.NewServer(New(nil, nil, nil).Handler())
	defer none.Close()
	resp, err := http.Get(none.URL + "/debug/rounds")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/debug/rounds without WithRounds = %s, want 404", resp.Status)
	}
}
