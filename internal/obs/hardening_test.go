package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
)

// TestEndpointHardening pins the method and media-type contract of every
// observability endpoint: read-only endpoints reject writes with 405 and an
// Allow header, the dump endpoint rejects reads the same way, and every
// response declares an explicit Content-Type.
func TestEndpointHardening(t *testing.T) {
	rec := flight.New(64)
	srv := httptest.NewServer(New(nil, nil, nil, WithFlight(rec)).Handler())
	defer srv.Close()

	readOnly := []string{"/metrics", "/debug/vars", "/debug/status", "/healthz", "/debug/flight"}
	for _, path := range readOnly {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s -> %d, want 405", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != http.MethodGet {
			t.Errorf("POST %s Allow = %q, want GET", path, got)
		}
	}

	for _, path := range readOnly {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s -> %d", path, resp.StatusCode)
		}
		if resp.Header.Get("Content-Type") == "" {
			t.Errorf("GET %s has no Content-Type", path)
		}
	}

	// The dump endpoint is the mirror image: POST-only.
	resp, err := http.Get(srv.URL + "/debug/flight/dump")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /debug/flight/dump -> %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Errorf("GET /debug/flight/dump Allow = %q, want POST", got)
	}
}

// TestGracefulShutdown: Serve stops with http.ErrServerClosed when Shutdown
// is called, in-flight requests complete, and new connections are refused.
func TestGracefulShutdown(t *testing.T) {
	s := New(nil, nil, nil)

	// Shutdown on a server that never served is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown before Serve: %v", err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	url := "http://" + l.Addr().String() + "/healthz"
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("healthz -> %d", resp.StatusCode)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("request succeeded after Shutdown")
	}
}
