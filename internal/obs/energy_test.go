package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/ledger"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestEnergyEndpointReplayBitIdentical is the PR's acceptance run: a
// ten-minute (virtual) controlled workload, queried over /debug/energy,
// must report per-app totals that a flight-recorder replay reproduces
// bit-identically — the ledger's HTTP face, its in-memory accounts, and
// its event stream are three views of the same integers.
func TestEnergyEndpointReplayBitIdentical(t *testing.T) {
	chip := platform.Skylake()
	rec := flight.New(flight.DefaultCapacity)
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"gcc", "cam4", "leela"}
	specs := make([]core.AppSpec, len(names))
	for i, n := range names {
		if err := m.Pin(workload.NewInstance(workload.MustByName(n)), i); err != nil {
			t.Fatal(err)
		}
		specs[i] = core.AppSpec{Name: n, Core: i, Shares: units.Shares(60 - 20*i)}
	}
	m.SetPowerLimit(40)
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	led, err := ledger.New(ledger.Config{Chip: chip, Apps: specs, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 40,
		Interval: time.Second, // the paper's control interval
		Ledger:   led,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(10 * time.Minute)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if got := d.Iterations(); got != 600 {
		t.Fatalf("iterations = %d, want 600", got)
	}

	srv := httptest.NewServer(New(nil, nil, nil, WithLedger(led), WithFlight(rec)).Handler())
	defer srv.Close()

	var res ledger.RangeResult
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/energy?res=1s")), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != len(names) || res.Summary.Intervals != 600 {
		t.Fatalf("endpoint summary: apps %v, intervals %d", res.Apps, res.Summary.Intervals)
	}
	if res.Summary.TotalJoules <= 0 {
		t.Fatal("no energy over a ten-minute run")
	}
	// The 1s series over the whole run must sum to the cumulative summary
	// exactly, per account.
	var seriesTotal uint64
	seriesApps := make([]uint64, len(names))
	for _, p := range res.Points {
		seriesTotal += p.TotalUJ
		for i, v := range p.AppUJ {
			seriesApps[i] += v
		}
	}
	if seriesTotal != res.Summary.TotalUJ {
		t.Errorf("series sums to %d uJ, summary says %d", seriesTotal, res.Summary.TotalUJ)
	}
	for i, a := range res.Summary.Apps {
		if seriesApps[i] != a.TotalUJ {
			t.Errorf("app %s: series %d uJ, summary %d uJ", a.Name, seriesApps[i], a.TotalUJ)
		}
	}

	// Replay: rebuild the accounts from the flight ring alone and compare
	// bit-for-bit against what the endpoint reported.
	r := ledger.Rebuild(rec.Dump("replay").Events)
	if r.TotalUJ != res.Summary.TotalUJ ||
		r.UnattributedUJ != res.Summary.UnattributedUJ ||
		r.ExcludedUJ != res.Summary.ExcludedUJ ||
		r.OvershootUJ != res.Summary.OvershootUJ {
		t.Errorf("replay package accounts diverge:\nrebuilt %+v\nserved  %+v", r, res.Summary)
	}
	for i, a := range res.Summary.Apps {
		if r.AppUJ[i] != a.TotalUJ {
			t.Errorf("replay app %s: %d uJ, served %d uJ", a.Name, r.AppUJ[i], a.TotalUJ)
		}
	}
}

func TestEnergyEndpointErrors(t *testing.T) {
	// Without a ledger the route does not exist.
	bare := httptest.NewServer(New(nil, nil, nil).Handler())
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/debug/energy")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ledger-less /debug/energy: %s, want 404", resp.Status)
	}

	chip := platform.Skylake()
	led, err := ledger.New(ledger.Config{
		Chip: chip,
		Apps: []core.AppSpec{{Name: "gcc", Core: 0, Shares: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(nil, nil, nil, WithLedger(led)).Handler())
	defer srv.Close()
	for _, q := range []string{"?from=abc", "?from=10&to=5", "?res=2s", "?limit=-1"} {
		resp, err := http.Get(srv.URL + "/debug/energy" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %s, want 400", q, resp.Status)
		}
	}
	// A well-formed query on an empty ledger is a 200 with zero accounts.
	var res ledger.RangeResult
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/energy?res=raw&limit=10")), &res); err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalUJ != 0 || len(res.Points) != 0 {
		t.Errorf("empty ledger served %+v", res)
	}
}
