package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func testCurve() VoltageCurve {
	return VoltageCurve{
		MinFreq: 800 * units.MHz,
		NomFreq: 2200 * units.MHz,
		MaxFreq: 3000 * units.MHz,
		MinV:    0.65,
		NomV:    1.00,
		MaxV:    1.25,
	}
}

func testModel() Model {
	return Model{
		Curve:         testCurve(),
		CoreCeff:      1.8e-9,
		CoreLeakage:   0.4,
		IdleCorePower: 0.05,
		UncorePower:   10,
	}
}

func TestCurveValidate(t *testing.T) {
	if err := testCurve().Validate(); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	bad := testCurve()
	bad.NomFreq = 700 * units.MHz
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing frequencies accepted")
	}
	bad = testCurve()
	bad.MaxV = 0.1
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing voltages accepted")
	}
}

func TestVoltageEndpoints(t *testing.T) {
	c := testCurve()
	if got := c.VoltageAt(c.MinFreq); got != c.MinV {
		t.Errorf("V(min) = %v, want %v", got, c.MinV)
	}
	if got := c.VoltageAt(c.NomFreq); math.Abs(float64(got-c.NomV)) > 1e-12 {
		t.Errorf("V(nom) = %v, want %v", got, c.NomV)
	}
	if got := c.VoltageAt(c.MaxFreq); got != c.MaxV {
		t.Errorf("V(max) = %v, want %v", got, c.MaxV)
	}
	// Out-of-range clamps.
	if got := c.VoltageAt(100 * units.MHz); got != c.MinV {
		t.Errorf("V(below) = %v, want %v", got, c.MinV)
	}
	if got := c.VoltageAt(5 * units.GHz); got != c.MaxV {
		t.Errorf("V(above) = %v, want %v", got, c.MaxV)
	}
}

// The turbo segment must be steeper per hertz than the nominal segment:
// this is what produces the paper's observed power jump at the turbo
// threshold.
func TestTurboSegmentSteeper(t *testing.T) {
	c := testCurve()
	nomSlope := float64(c.NomV-c.MinV) / float64(c.NomFreq-c.MinFreq)
	turboSlope := float64(c.MaxV-c.NomV) / float64(c.MaxFreq-c.NomFreq)
	if turboSlope <= nomSlope {
		t.Errorf("turbo slope %g not steeper than nominal %g", turboSlope, nomSlope)
	}
}

func TestVoltageMonotone(t *testing.T) {
	c := testCurve()
	prop := func(a, b uint16) bool {
		fa := c.MinFreq + units.Hertz(a)*units.MHz/20
		fb := c.MinFreq + units.Hertz(b)*units.MHz/20
		if fa > fb {
			fa, fb = fb, fa
		}
		return c.VoltageAt(fa) <= c.VoltageAt(fb)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := testModel()
	bad.CoreCeff = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Ceff accepted")
	}
	bad = testModel()
	bad.UncorePower = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative uncore accepted")
	}
}

func TestCorePowerMonotoneInFreq(t *testing.T) {
	m := testModel()
	prev := units.Watts(-1)
	for f := m.Curve.MinFreq; f <= m.Curve.MaxFreq; f += 100 * units.MHz {
		p := m.CorePower(f, 1.0)
		if p <= prev {
			t.Fatalf("power not increasing at %v: %v <= %v", f, p, prev)
		}
		prev = p
	}
}

func TestCorePowerScalesWithActivity(t *testing.T) {
	m := testModel()
	f := 2 * units.GHz
	lo := m.CorePower(f, 0.8)
	hi := m.CorePower(f, 1.6)
	if hi <= lo {
		t.Errorf("activity scaling broken: %v <= %v", hi, lo)
	}
	// Dynamic component should scale linearly with activity.
	dynLo := lo - m.CoreLeakage
	dynHi := hi - m.CoreLeakage
	if math.Abs(float64(dynHi/dynLo)-2.0) > 1e-9 {
		t.Errorf("dynamic power ratio = %v, want 2", dynHi/dynLo)
	}
}

func TestCorePowerNegativeActivityClamped(t *testing.T) {
	m := testModel()
	if got := m.CorePower(2*units.GHz, -5); got != m.CoreLeakage {
		t.Errorf("negative activity power = %v, want leakage %v", got, m.CoreLeakage)
	}
}

// Cubic-ish growth: power at max frequency should be several times the power
// at min frequency even though frequency grows only ~3.75x, because voltage
// rises too (P ~ V^2 f).
func TestSuperlinearGrowth(t *testing.T) {
	m := testModel()
	pMin := m.CorePower(m.Curve.MinFreq, 1) - m.CoreLeakage
	pMax := m.CorePower(m.Curve.MaxFreq, 1) - m.CoreLeakage
	freqRatio := float64(m.Curve.MaxFreq / m.Curve.MinFreq)
	if float64(pMax/pMin) <= freqRatio {
		t.Errorf("power ratio %v not superlinear vs freq ratio %v", pMax/pMin, freqRatio)
	}
}

func TestFreqForPowerInverse(t *testing.T) {
	m := testModel()
	for _, act := range []float64{0.7, 1.0, 1.5} {
		for f := m.Curve.MinFreq; f <= m.Curve.MaxFreq; f += 200 * units.MHz {
			p := m.CorePower(f, act)
			back := m.FreqForPower(p, act)
			if math.Abs(float64(back-f)) > 1e6 { // within 1 MHz
				t.Errorf("FreqForPower(CorePower(%v, %v)) = %v", f, act, back)
			}
		}
	}
}

func TestFreqForPowerEdges(t *testing.T) {
	m := testModel()
	if got := m.FreqForPower(0, 1); got != m.Curve.MinFreq {
		t.Errorf("unreachable target should return MinFreq, got %v", got)
	}
	if got := m.FreqForPower(1e6, 1); got != m.Curve.MaxFreq {
		t.Errorf("huge target should return MaxFreq, got %v", got)
	}
}

// Property: FreqForPower never exceeds the budget except at the floor.
func TestFreqForPowerWithinBudget(t *testing.T) {
	m := testModel()
	prop := func(raw uint8, actRaw uint8) bool {
		target := units.Watts(float64(raw)/255*20 + 0.1)
		act := 0.5 + float64(actRaw)/255
		f := m.FreqForPower(target, act)
		if f == m.Curve.MinFreq {
			return true // floor: may exceed budget by design
		}
		return m.CorePower(f, act) <= target+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPackageAggregation(t *testing.T) {
	m := testModel()
	draws := []CoreDraw{
		{Active: true, Freq: 2 * units.GHz, Activity: 1},
		{Active: true, Freq: 1 * units.GHz, Activity: 1.2},
		{Active: false},
	}
	want := m.UncorePower + m.CorePower(2*units.GHz, 1) +
		m.CorePower(1*units.GHz, 1.2) + m.IdleCorePower
	if got := m.Package(draws); math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("Package = %v, want %v", got, want)
	}
	if got := m.Package(nil); got != m.UncorePower {
		t.Errorf("empty package = %v, want uncore %v", got, m.UncorePower)
	}
}

func TestIdleCoresCheaperThanActive(t *testing.T) {
	m := testModel()
	idle := m.Package([]CoreDraw{{Active: false}})
	active := m.Package([]CoreDraw{{Active: true, Freq: m.Curve.MinFreq, Activity: 0.5}})
	if idle >= active {
		t.Errorf("idle %v should be cheaper than active %v", idle, active)
	}
}
