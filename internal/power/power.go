// Package power models processor power draw as a function of frequency,
// voltage, and workload activity.
//
// Dynamic power follows the classic CMOS relation P_dyn = C_eff * V^2 * f
// (the paper's Section 2.1). Voltage rises with frequency along a piecewise
// linear voltage/frequency curve whose slope steepens in the opportunistic
// (TurboBoost / XFR) range, which is what produces the ~5 W package-power
// jump the paper observes when workloads cross the turbo threshold
// (Figures 2 and 3). Static leakage per active core, an idle (C-state)
// residual, and a constant uncore term complete the package model.
package power

import (
	"fmt"

	"repro/internal/units"
)

// VoltageCurve is a two-segment piecewise-linear voltage/frequency curve.
// Below NomFreq the voltage scales gently; between NomFreq and MaxFreq
// (the turbo range) it scales steeply. Real voltage regulators follow the
// same shape: the last few hundred megahertz are bought with disproportionate
// voltage.
type VoltageCurve struct {
	MinFreq units.Hertz // lowest operating frequency
	NomFreq units.Hertz // nominal (non-turbo) ceiling
	MaxFreq units.Hertz // opportunistic-scaling ceiling
	MinV    units.Volts // voltage at MinFreq
	NomV    units.Volts // voltage at NomFreq
	MaxV    units.Volts // voltage at MaxFreq
}

// Validate reports whether the curve is well-formed: frequencies strictly
// increasing and voltages non-decreasing.
func (c VoltageCurve) Validate() error {
	if !(c.MinFreq > 0 && c.MinFreq < c.NomFreq && c.NomFreq <= c.MaxFreq) {
		return fmt.Errorf("power: voltage curve frequencies not increasing: min=%v nom=%v max=%v",
			c.MinFreq, c.NomFreq, c.MaxFreq)
	}
	if !(c.MinV > 0 && c.MinV <= c.NomV && c.NomV <= c.MaxV) {
		return fmt.Errorf("power: voltage curve voltages not increasing: %v %v %v",
			c.MinV, c.NomV, c.MaxV)
	}
	return nil
}

// VoltageAt returns the operating voltage for frequency f. Frequencies are
// clamped to the curve's range.
func (c VoltageCurve) VoltageAt(f units.Hertz) units.Volts {
	f = f.Clamp(c.MinFreq, c.MaxFreq)
	if f <= c.NomFreq {
		span := float64(c.NomFreq - c.MinFreq)
		if span <= 0 {
			return c.NomV
		}
		t := float64(f-c.MinFreq) / span
		return c.MinV + units.Volts(t)*(c.NomV-c.MinV)
	}
	span := float64(c.MaxFreq - c.NomFreq)
	if span <= 0 {
		return c.MaxV
	}
	t := float64(f-c.NomFreq) / span
	return c.NomV + units.Volts(t)*(c.MaxV-c.NomV)
}

// Model computes per-core and package power for a chip.
type Model struct {
	Curve VoltageCurve

	// CoreCeff is the effective switched capacitance (in farads) of one
	// core at workload activity factor 1.0. Workload profiles scale it via
	// their activity factor (AVX-heavy code switches more capacitance).
	CoreCeff float64

	// CoreLeakage is the static power of a powered, active (C0) core,
	// independent of frequency.
	CoreLeakage units.Watts

	// IdleCorePower is the residual draw of a core parked in a deep
	// C-state. Modern cores idle in the milliwatt range.
	IdleCorePower units.Watts

	// UncorePower is the constant package overhead: fabric, memory
	// controller, caches' static share.
	UncorePower units.Watts
}

// Validate reports whether the model's parameters are physically sensible.
func (m Model) Validate() error {
	if err := m.Curve.Validate(); err != nil {
		return err
	}
	if m.CoreCeff <= 0 {
		return fmt.Errorf("power: CoreCeff must be positive, got %g", m.CoreCeff)
	}
	if m.CoreLeakage < 0 || m.IdleCorePower < 0 || m.UncorePower < 0 {
		return fmt.Errorf("power: negative static power term")
	}
	return nil
}

// CorePower returns the draw of one active core running at frequency f with
// the given workload activity factor. Activity 1.0 corresponds to a typical
// integer workload; AVX-heavy code uses >1.
func (m Model) CorePower(f units.Hertz, activity float64) units.Watts {
	if activity < 0 {
		activity = 0
	}
	v := float64(m.Curve.VoltageAt(f))
	dyn := m.CoreCeff * activity * v * v * float64(f)
	return units.Watts(dyn) + m.CoreLeakage
}

// FreqForPower inverts CorePower: it returns the highest frequency within
// [Curve.MinFreq, Curve.MaxFreq] at which a core running the given activity
// draws at most target watts. This is the "simple linear power model"-style
// translation the paper's power-share policy needs; we solve the exact model
// by bisection since CorePower is monotone in f. If even the minimum
// frequency exceeds the target, MinFreq is returned (the policy layer is
// responsible for deciding between starvation and a frequency floor).
func (m Model) FreqForPower(target units.Watts, activity float64) units.Hertz {
	lo, hi := m.Curve.MinFreq, m.Curve.MaxFreq
	if m.CorePower(lo, activity) >= target {
		return lo
	}
	if m.CorePower(hi, activity) <= target {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.CorePower(mid, activity) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Package sums a package's power: uncore plus each core's contribution.
// Each entry of draws is one core; idle cores (Active=false) contribute the
// C-state residual.
func (m Model) Package(draws []CoreDraw) units.Watts {
	total := m.UncorePower
	for _, d := range draws {
		if d.Active {
			total += m.CorePower(d.Freq, d.Activity)
		} else {
			total += m.IdleCorePower
		}
	}
	return total
}

// CoreDraw describes one core's state for package power aggregation.
type CoreDraw struct {
	Active   bool
	Freq     units.Hertz
	Activity float64
}
