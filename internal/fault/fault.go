package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/sim"
	"repro/internal/units"
)

// ErrInjected marks every error the injector fabricates, so consumers (and
// tests) can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// regKey addresses one register on one CPU.
type regKey struct {
	cpu int
	reg uint32
}

// Injector realises a Schedule against a run: wrap the MSR device with
// WrapDevice to get the device-level classes, and Drive a simulated machine
// to get the platform classes plus automatic clock advancement. All fault
// decisions flow from the seed, so two runs with the same schedule, seed,
// and workload inject identically.
//
// The injector sits above the recorded device: reads it fails or serves
// stale never reach the inner device, so the flight recorder's MSR log
// remains ground truth for what the control plane actually observed, and a
// faulted run replays exactly.
type Injector struct {
	mu    sync.Mutex
	sched Schedule
	rng   *rand.Rand
	now   time.Duration

	active  []bool
	frozen  map[int]map[regKey]uint64 // stuck/torn cached values, by entry
	torn    map[int]map[regKey]bool   // torn per-key freeze decision, by entry
	prevCap map[int]units.Hertz       // thermal restore value, by entry
	prevLim map[int]units.Watts       // rapl restore value, by entry

	m     *sim.Machine
	rec   *flight.Recorder
	sleep func(time.Duration) // realises latency faults; nil = account only

	injections *metrics.CounterVec // windows opened, by class
	effects    *metrics.CounterVec // per-access perturbations, by class
	activeG    *metrics.Gauge

	counts       [numClasses]uint64 // per-access effects, for tests
	totalLatency time.Duration
}

// New builds an injector for the schedule, deterministic in seed.
func New(sched Schedule, seed int64) *Injector {
	return &Injector{
		sched:   sched,
		rng:     rand.New(rand.NewSource(seed)),
		active:  make([]bool, len(sched)),
		frozen:  make(map[int]map[regKey]uint64),
		torn:    make(map[int]map[regKey]bool),
		prevCap: make(map[int]units.Hertz),
		prevLim: make(map[int]units.Watts),
	}
}

// Instrument registers the injector's metrics.
func (in *Injector) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.injections = reg.CounterVec("fault_windows_total",
		"Fault windows opened, by class.", "class")
	in.effects = reg.CounterVec("fault_effects_total",
		"Individual injected perturbations (failed reads, stale serves, delays), by class.", "class")
	in.activeG = reg.Gauge("fault_active_windows",
		"Fault windows currently open.")
}

// Flight attaches a flight recorder; every window transition is recorded as
// a fault-inject/fault-clear event.
func (in *Injector) Flight(rec *flight.Recorder) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rec = rec
}

// WithSleep sets the function that realises latency faults (wall-clock runs
// pass time.Sleep). Without it delays are accounted but not imposed, which
// is what virtual-time runs want.
func (in *Injector) WithSleep(fn func(time.Duration)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sleep = fn
}

// Drive binds the injector to a simulated machine: platform faults
// (thermal, rapl, offline) are applied to it, and a tick hook advances the
// injector clock so windows open and close on their own. Call before
// attaching the daemon so fault transitions at tick t precede the control
// iteration at tick t.
func (in *Injector) Drive(m *sim.Machine) {
	in.mu.Lock()
	in.m = m
	in.mu.Unlock()
	m.OnTick(func(time.Duration) { in.AdvanceTo(m.Now()) })
}

// AdvanceTo moves the injector clock to run time t, opening and closing
// windows it has crossed. Drive calls it per tick; wall-clock users call it
// themselves.
func (in *Injector) AdvanceTo(t time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.now = t
	for i := range in.sched {
		if act := in.sched[i].Active(t); act != in.active[i] {
			in.active[i] = act
			if act {
				in.openLocked(i)
			} else {
				in.closeLocked(i)
			}
		}
	}
}

// openLocked applies entry i's window-open side effects.
func (in *Injector) openLocked(i int) {
	e := in.sched[i]
	var value uint64
	switch e.Class {
	case ClassThermal:
		if in.m != nil {
			in.prevCap[i] = in.m.ThermalCap()
			in.m.SetThermalCap(e.Cap)
		}
		value = uint64(e.Cap)
	case ClassRAPL:
		if in.m != nil {
			in.prevLim[i] = in.m.Limiter().Limit()
			in.m.SetPowerLimit(e.Limit)
		}
		value = uint64(float64(e.Limit) * 1e6) // microwatts
	case ClassOffline:
		if in.m != nil {
			// CPU is validated >= 0 for offline entries.
			_ = in.m.SetOffline(e.CPU, true)
		}
	case ClassLatency:
		value = uint64(e.Delay)
	case ClassEIO:
		value = uint64(e.Prob * 1e6) // parts per million
	}
	if in.injections != nil {
		in.injections.With(e.Class.String()).Inc()
	}
	if in.activeG != nil {
		in.activeG.Add(1)
	}
	in.rec.Record(flight.Event{
		Kind: flight.KindFaultInject, Source: flight.SourceFault,
		Core: int16(e.CPU), Arg: e.Class.FlightCode(), Value: value,
	})
}

// closeLocked applies entry i's window-close side effects. Clear events
// carry the value being restored so replay can apply them directly.
func (in *Injector) closeLocked(i int) {
	e := in.sched[i]
	var value uint64
	switch e.Class {
	case ClassThermal:
		if in.m != nil {
			in.m.SetThermalCap(in.prevCap[i])
			value = uint64(in.prevCap[i])
		}
		delete(in.prevCap, i)
	case ClassRAPL:
		if in.m != nil {
			in.m.SetPowerLimit(in.prevLim[i])
			value = uint64(float64(in.prevLim[i]) * 1e6)
		}
		delete(in.prevLim, i)
	case ClassOffline:
		if in.m != nil {
			_ = in.m.SetOffline(e.CPU, false)
		}
	}
	delete(in.frozen, i)
	delete(in.torn, i)
	if in.activeG != nil {
		in.activeG.Add(-1)
	}
	in.rec.Record(flight.Event{
		Kind: flight.KindFaultClear, Source: flight.SourceFault,
		Core: int16(e.CPU), Arg: e.Class.FlightCode(), Value: value,
	})
}

// ActiveWindows reports how many windows are currently open.
func (in *Injector) ActiveWindows() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, a := range in.active {
		if a {
			n++
		}
	}
	return n
}

// Effects reports how many per-access perturbations the class has caused.
func (in *Injector) Effects(c Class) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if c >= numClasses {
		return 0
	}
	return in.counts[c]
}

// TotalLatency reports the accumulated injected read latency.
func (in *Injector) TotalLatency() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.totalLatency
}

// noteLocked counts one per-access perturbation.
func (in *Injector) noteLocked(c Class) {
	in.counts[c]++
	if in.effects != nil {
		in.effects.With(c.String()).Inc()
	}
}

// WrapDevice interposes the injector between the control plane and dev.
// The wrapper must sit *above* any recording tap: faulted accesses never
// reach dev, so the flight log keeps recording only what physically
// happened.
func (in *Injector) WrapDevice(dev msr.Device) msr.Device {
	return &faultDevice{in: in, dev: dev}
}

type faultDevice struct {
	in  *Injector
	dev msr.Device
}

// Read applies every open matching window, in schedule order: offline and
// EIO fail the read, latency delays it, stuck serves the value cached at
// first faulted access, torn does the same for a seed-chosen half of the
// registers. The injector lock is held across the inner read so stale
// caches populate atomically; the inner device never calls back into the
// injector, so this cannot deadlock.
func (d *faultDevice) Read(cpu int, reg uint32) (uint64, error) {
	in := d.in
	creg := msr.Canonical(reg)
	in.mu.Lock()
	defer in.mu.Unlock()
	var delay time.Duration
	freeze := -1
	for i := range in.sched {
		e := &in.sched[i]
		if !in.active[i] || !e.Matches(cpu, creg) {
			continue
		}
		switch e.Class {
		case ClassOffline:
			in.noteLocked(e.Class)
			return 0, fmt.Errorf("fault: cpu%d offline, read %s: %w",
				cpu, msr.RegName(creg), ErrInjected)
		case ClassEIO:
			if e.Prob <= 0 || e.Prob >= 1 || in.rng.Float64() < e.Prob {
				in.noteLocked(e.Class)
				return 0, fmt.Errorf("fault: EIO cpu%d %s: %w",
					cpu, msr.RegName(creg), ErrInjected)
			}
		case ClassLatency:
			delay += e.Delay
			in.noteLocked(e.Class)
		case ClassStuck:
			if freeze < 0 {
				freeze = i
			}
		case ClassTorn:
			tm := in.torn[i]
			if tm == nil {
				tm = make(map[regKey]bool)
				in.torn[i] = tm
			}
			k := regKey{cpu, creg}
			fr, ok := tm[k]
			if !ok {
				fr = in.rng.Intn(2) == 0
				tm[k] = fr
			}
			if fr && freeze < 0 {
				freeze = i
			}
		}
	}
	if delay > 0 {
		in.totalLatency += delay
		if in.sleep != nil {
			in.sleep(delay)
		}
	}
	if freeze >= 0 {
		k := regKey{cpu, creg}
		fm := in.frozen[freeze]
		if fm == nil {
			fm = make(map[regKey]uint64)
			in.frozen[freeze] = fm
		}
		if v, ok := fm[k]; ok {
			in.noteLocked(in.sched[freeze].Class)
			return v, nil
		}
		v, err := d.dev.Read(cpu, reg)
		if err != nil {
			return v, err
		}
		fm[k] = v
		return v, nil
	}
	return d.dev.Read(cpu, reg)
}

// ReadBatch implements msr.BatchReader by delegating to the faulting Read
// per cpu, so batched sampling sweeps observe exactly the same injected
// faults — offline, EIO, latency, stuck, torn — as per-core reads do. A
// wrapped device's own batch fast path is deliberately not used: it would
// bypass the injector's per-access windows.
func (d *faultDevice) ReadBatch(reg uint32, vals []uint64, ok []bool) error {
	return msr.ReadBatchFunc(d.Read, reg, vals, ok)
}

// Write blocks actuation of offline CPUs (a dead core's MSRs are gone in
// both directions) and passes everything else through untouched.
func (d *faultDevice) Write(cpu int, reg uint32, val uint64) error {
	in := d.in
	creg := msr.Canonical(reg)
	in.mu.Lock()
	for i := range in.sched {
		e := &in.sched[i]
		if in.active[i] && e.Class == ClassOffline && e.Matches(cpu, creg) {
			in.noteLocked(e.Class)
			in.mu.Unlock()
			return fmt.Errorf("fault: cpu%d offline, write %s: %w",
				cpu, msr.RegName(creg), ErrInjected)
		}
	}
	in.mu.Unlock()
	return d.dev.Write(cpu, reg, val)
}
