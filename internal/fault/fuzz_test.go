package fault

import (
	"strings"
	"testing"
)

// FuzzParseSchedule throws arbitrary text at the schedule parser. The parser
// must never panic, and any schedule it accepts must round-trip: the
// canonical String() form reparses to the same canonical form, so saved
// schedules (e.g. in experiment configs) are stable.
func FuzzParseSchedule(f *testing.F) {
	f.Add("at 100ms for 100ms eio cpu=0 prob=0.6")
	f.Add("at 250ms for 100ms stuck cpu=* regs=MPERF,PKG_ENERGY_STATUS")
	f.Add("at 400ms for 100ms torn cpu=*")
	f.Add("at 550ms for 100ms latency cpu=* delay=1ms")
	f.Add("at 700ms for 100ms thermal cap=1200MHz")
	f.Add("at 850ms for 100ms rapl limit=25W")
	f.Add("at 1s for 100ms offline cpu=1")
	f.Add("at 0s for 1s eio regs=0x611 prob=1; at 2s for 1s eio prob=0\n# comment\n")
	f.Add("at 1ms for 1ms thermal cap=3Hz")
	f.Add("at 1ms for 1ms rapl limit=0.001W")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(text)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		canon := s.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %q: %v", canon, err)
		}
		if canon2 := s2.String(); canon != canon2 {
			t.Fatalf("round trip diverged:\n  once:  %q\n  twice: %q", canon, canon2)
		}
		if len(s2) != len(s) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(s), len(s2))
		}
		// Accepted schedules must also re-validate entry by entry.
		for i := range s {
			if err := s[i].Validate(); err != nil {
				t.Fatalf("accepted entry %d fails Validate: %v", i, err)
			}
		}
		// The canonical form must be newline-free per entry and stable
		// under whitespace normalisation the parser itself applies.
		if strings.Contains(canon, ";") {
			t.Fatalf("canonical form uses inline separators: %q", canon)
		}
	})
}
