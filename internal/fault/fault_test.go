package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// countingDevice serves monotonically increasing values and counts access.
type countingDevice struct {
	reads, writes int
	val           uint64
}

func (d *countingDevice) Read(cpu int, reg uint32) (uint64, error) {
	d.reads++
	d.val++
	return d.val, nil
}

func (d *countingDevice) Write(cpu int, reg uint32, val uint64) error {
	d.writes++
	return nil
}

func window(class Class, mut func(*Entry)) Schedule {
	e := Entry{At: 0, For: time.Second, Class: class, CPU: -1, Prob: 1}
	if mut != nil {
		mut(&e)
	}
	return Schedule{e}
}

func TestEIOFailsReadsOnlyInsideWindow(t *testing.T) {
	inner := &countingDevice{}
	in := New(window(ClassEIO, nil), 1)
	dev := in.WrapDevice(inner)

	in.AdvanceTo(0)
	if _, err := dev.Read(0, msr.IA32Aperf); !errors.Is(err, ErrInjected) {
		t.Fatalf("inside window: err = %v, want ErrInjected", err)
	}
	if inner.reads != 0 {
		t.Fatalf("failed read leaked to inner device (%d reads)", inner.reads)
	}
	in.AdvanceTo(2 * time.Second)
	if _, err := dev.Read(0, msr.IA32Aperf); err != nil {
		t.Fatalf("after window: %v", err)
	}
	if got := in.Effects(ClassEIO); got != 1 {
		t.Fatalf("effects = %d, want 1", got)
	}
}

func TestEIOProbabilityIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(window(ClassEIO, func(e *Entry) { e.Prob = 0.5 }), seed)
		dev := in.WrapDevice(&countingDevice{})
		in.AdvanceTo(0)
		out := make([]bool, 64)
		for i := range out {
			_, err := dev.Read(0, msr.IA32Aperf)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at read %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestStuckServesFrozenValue(t *testing.T) {
	inner := &countingDevice{}
	in := New(window(ClassStuck, nil), 1)
	dev := in.WrapDevice(inner)
	in.AdvanceTo(0)
	first, err := dev.Read(0, msr.IA32Mperf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v, err := dev.Read(0, msr.IA32Mperf)
		if err != nil {
			t.Fatal(err)
		}
		if v != first {
			t.Fatalf("stuck register advanced: %d -> %d", first, v)
		}
	}
	if inner.reads != 1 {
		t.Fatalf("inner reads = %d, want 1 (cache fill only)", inner.reads)
	}
	// Another CPU freezes independently at its own value.
	v2, _ := dev.Read(1, msr.IA32Mperf)
	if v2 == first {
		t.Fatal("cpu1 served cpu0's frozen value")
	}
	in.AdvanceTo(2 * time.Second)
	v, _ := dev.Read(0, msr.IA32Mperf)
	if v == first {
		t.Fatal("register still frozen after window closed")
	}
}

func TestTornFreezesSubsetOfRegisters(t *testing.T) {
	// With one register per read key and many keys, a fair coin must both
	// freeze some and leave some live.
	inner := &countingDevice{}
	in := New(window(ClassTorn, nil), 7)
	dev := in.WrapDevice(inner)
	in.AdvanceTo(0)
	frozen, live := 0, 0
	for cpu := 0; cpu < 16; cpu++ {
		a, _ := dev.Read(cpu, msr.IA32Aperf)
		b, _ := dev.Read(cpu, msr.IA32Aperf)
		if a == b {
			frozen++
		} else {
			live++
		}
	}
	if frozen == 0 || live == 0 {
		t.Fatalf("torn split frozen=%d live=%d, want both nonzero", frozen, live)
	}
}

func TestLatencyAccountsAndSleeps(t *testing.T) {
	in := New(window(ClassLatency, func(e *Entry) { e.Delay = 3 * time.Millisecond }), 1)
	var slept time.Duration
	in.WithSleep(func(d time.Duration) { slept += d })
	dev := in.WrapDevice(&countingDevice{})
	in.AdvanceTo(0)
	for i := 0; i < 4; i++ {
		if _, err := dev.Read(0, msr.IA32Aperf); err != nil {
			t.Fatal(err)
		}
	}
	if want := 12 * time.Millisecond; slept != want || in.TotalLatency() != want {
		t.Fatalf("slept %v, accounted %v, want %v", slept, in.TotalLatency(), want)
	}
}

func TestOfflineBlocksReadsAndWrites(t *testing.T) {
	inner := &countingDevice{}
	in := New(window(ClassOffline, func(e *Entry) { e.CPU = 2 }), 1)
	dev := in.WrapDevice(inner)
	in.AdvanceTo(0)
	if _, err := dev.Read(2, msr.IA32Aperf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read of offline cpu: %v", err)
	}
	if err := dev.Write(2, msr.IA32PerfCtl, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("write to offline cpu: %v", err)
	}
	if _, err := dev.Read(1, msr.IA32Aperf); err != nil {
		t.Fatalf("other cpu affected: %v", err)
	}
	if err := dev.Write(1, msr.IA32PerfCtl, 1); err != nil {
		t.Fatalf("other cpu write affected: %v", err)
	}
}

func TestPlatformFaultsDriveMachineAndFlight(t *testing.T) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(workload.NewInstance(workload.MustByName("gcc")), 0); err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.DefaultCapacity)
	rec.SetClock(m.Now)
	sched, err := ParseSchedule(`
at 10ms for 20ms thermal cap=1200MHz
at 15ms for 10ms rapl limit=30W
at 40ms for 20ms offline cpu=0
`)
	if err != nil {
		t.Fatal(err)
	}
	in := New(sched, 1)
	in.Flight(rec)
	reg := metrics.NewRegistry()
	in.Instrument(reg)
	in.Drive(m)

	m.Run(12 * time.Millisecond)
	if got := m.ThermalCap(); got != 1200*units.MHz {
		t.Fatalf("thermal cap = %v, want 1200 MHz", got)
	}
	if in.ActiveWindows() != 1 {
		t.Fatalf("active windows = %d, want 1", in.ActiveWindows())
	}
	m.Run(8 * time.Millisecond) // t=20ms: rapl window open
	if got := m.Limiter().Limit(); got != 30 {
		t.Fatalf("rapl limit = %v, want 30 W", got)
	}
	m.Run(15 * time.Millisecond) // t=35ms: both cleared
	if m.ThermalCap() != 0 {
		t.Fatalf("thermal cap not restored: %v", m.ThermalCap())
	}
	if got := m.Limiter().Limit(); got == 30 {
		t.Fatalf("rapl limit not restored: %v", got)
	}
	m.Run(10 * time.Millisecond) // t=45ms: core 0 offline
	if !m.Offline(0) {
		t.Fatal("core 0 should be offline")
	}
	m.Run(20 * time.Millisecond) // t=65ms: back online
	if m.Offline(0) {
		t.Fatal("core 0 should be back online")
	}

	// Every transition must be in the flight ring: 3 injects, 3 clears.
	injects, clears := 0, 0
	for _, ev := range rec.Snapshot() {
		switch ev.Kind {
		case flight.KindFaultInject:
			injects++
		case flight.KindFaultClear:
			clears++
		}
	}
	if injects != 3 || clears != 3 {
		t.Fatalf("flight saw %d injects, %d clears; want 3 and 3", injects, clears)
	}
}

func TestFlightCodesCoverAllClasses(t *testing.T) {
	seen := map[uint32]bool{}
	for c := Class(0); c < numClasses; c++ {
		code := c.FlightCode()
		if code == ^uint32(0) {
			t.Fatalf("class %s has no flight code", c)
		}
		if seen[code] {
			t.Fatalf("class %s shares a flight code", c)
		}
		seen[code] = true
		if flight.FaultName(code) != c.String() {
			t.Fatalf("flight name %q != class name %q", flight.FaultName(code), c)
		}
	}
}
