package fault

import (
	"strings"
	"testing"
	"time"

	"repro/internal/msr"
	"repro/internal/units"
)

func TestParseScheduleFull(t *testing.T) {
	text := `
# warm-up is clean
at 10s for 5s eio cpu=2 regs=APERF,MPERF prob=0.5
at 20s for 3s stuck cpu=* regs=PKG_ENERGY_STATUS
at 30s for 2s torn cpu=1
at 5s for 1s latency cpu=* delay=10ms
at 40s for 10s thermal cap=1200MHz
at 50s for 5s rapl limit=30W
at 60s for 10s offline cpu=3
`
	s, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 7 {
		t.Fatalf("got %d entries, want 7", len(s))
	}
	// Sorted by At: latency(5s) first.
	if s[0].Class != ClassLatency || s[0].Delay != 10*time.Millisecond {
		t.Fatalf("first entry = %+v", s[0])
	}
	eio := s[1]
	if eio.Class != ClassEIO || eio.CPU != 2 || eio.Prob != 0.5 {
		t.Fatalf("eio entry = %+v", eio)
	}
	if len(eio.Regs) != 2 || eio.Regs[0] != msr.IA32Aperf || eio.Regs[1] != msr.IA32Mperf {
		t.Fatalf("eio regs = %#v", eio.Regs)
	}
	stuck := s[2]
	if stuck.CPU != -1 || len(stuck.Regs) != 1 || stuck.Regs[0] != msr.PkgEnergyStatus {
		t.Fatalf("stuck entry = %+v", stuck)
	}
	th := s[4]
	if th.Class != ClassThermal || th.Cap != 1200*units.MHz {
		t.Fatalf("thermal entry = %+v", th)
	}
	ra := s[5]
	if ra.Class != ClassRAPL || ra.Limit != 30 {
		t.Fatalf("rapl entry = %+v", ra)
	}
	if got := s.End(); got != 70*time.Second {
		t.Fatalf("End = %v, want 70s", got)
	}
}

func TestParseScheduleSemicolons(t *testing.T) {
	s, err := ParseSchedule("at 1s for 1s thermal cap=1GHz; at 2s for 1s rapl limit=25")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].Cap != units.GHz || s[1].Limit != 25 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"at 1s for 1s nonsense",
		"whenever eio",
		"at 1s for 0s eio",
		"at -1s for 1s eio",
		"at 1s for 1s eio prob=2",
		"at 1s for 1s eio regs=BOGUS",
		"at 1s for 1s eio cpu=-2",
		"at 1s for 1s latency",
		"at 1s for 1s thermal",
		"at 1s for 1s thermal cap=0",
		"at 1s for 1s rapl",
		"at 1s for 1s offline",
		"at 1s for 1s offline cpu=*",
		"at 1s for 1s eio frobnicate=1",
		"at 1s for 1s eio prob",
	}
	for _, text := range bad {
		if _, err := ParseSchedule(text); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", text)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	text := `at 5s for 1s latency cpu=* delay=10ms
at 10s for 5s eio cpu=2 regs=APERF,MPERF prob=0.5
at 20s for 3s stuck cpu=* regs=PKG_ENERGY_STATUS
at 30s for 2s torn cpu=1
at 40s for 10s thermal cap=1200MHz
at 50s for 5s rapl limit=30W
at 60s for 10s offline cpu=3`
	s1, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSchedule(s1.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", s1.String(), err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("round trip diverged:\n%s\n--\n%s", s1.String(), s2.String())
	}
}

func TestEntryMatches(t *testing.T) {
	e := Entry{CPU: -1, Regs: []uint32{msr.IA32Aperf}}
	if !e.Matches(7, msr.IA32Aperf) || e.Matches(7, msr.IA32Mperf) {
		t.Fatal("register matching broken")
	}
	e = Entry{CPU: 3}
	if !e.Matches(3, msr.IA32Mperf) || e.Matches(2, msr.IA32Mperf) {
		t.Fatal("cpu matching broken")
	}
}

func TestClassNamesRoundTrip(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		got, err := ClassByName(c.String())
		if err != nil || got != c {
			t.Errorf("class %d round-trips as %d (%v)", c, got, err)
		}
		if strings.Contains(c.String(), " ") {
			t.Errorf("class name %q has spaces", c.String())
		}
	}
}
