// Package fault is the deterministic fault-injection subsystem: a
// seed-driven injector that perturbs the MSR device (transient EIO reads,
// stale/stuck registers, torn multi-register samples, latency spikes) and
// the platform model (thermal excursions forcing sudden frequency caps,
// RAPL limit drops, core offlining mid-run) according to a declarative
// schedule, logging every injected window to the flight recorder and
// metrics.
//
// The schedule format is line-oriented; each line opens one fault window:
//
//	# comments and blank lines are ignored
//	at 10s for 5s  eio     cpu=2 regs=APERF,MPERF prob=0.5
//	at 20s for 3s  stuck   cpu=* regs=PKG_ENERGY_STATUS
//	at 30s for 2s  torn    cpu=1
//	at 5s  for 1s  latency cpu=* delay=10ms
//	at 40s for 10s thermal cap=1200MHz
//	at 50s for 5s  rapl    limit=30W
//	at 60s for 10s offline cpu=3
//
// Device-level classes (eio, stuck, torn, latency) act on the wrapped MSR
// device and so perturb only what the control plane observes; platform
// classes (thermal, rapl, offline) act on the simulated machine and perturb
// what actually happens. Both kinds are recorded to the flight recorder so
// a faulted run replays deterministically.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/flight"
	"repro/internal/msr"
	"repro/internal/units"
)

// Class is a fault class.
type Class uint8

// The fault classes. Device-level classes perturb MSR access; platform
// classes perturb the machine itself.
const (
	// ClassEIO fails matching reads with a transient I/O error
	// (probability Prob per read), like a flaky /dev/cpu/N/msr.
	ClassEIO Class = iota
	// ClassStuck freezes matching registers at the value they held when
	// the window opened: reads keep succeeding but stop advancing — the
	// archetypal lying MSR.
	ClassStuck
	// ClassTorn freezes a seed-chosen half of the matching registers and
	// leaves the rest live, producing internally inconsistent
	// multi-register samples (APERF advancing while MPERF is stale).
	ClassTorn
	// ClassLatency adds Delay to every matching read, modelling SMI storms
	// and bus contention that stall MSR access.
	ClassLatency
	// ClassThermal clamps the package to Cap, the abrupt frequency
	// collapse a thermal excursion forces.
	ClassThermal
	// ClassRAPL drops the hardware power limit to Limit for the window
	// (firmware or a BMC rewriting PKG_POWER_LIMIT underneath the OS).
	ClassRAPL
	// ClassOffline takes CPU out of service: it stops executing and all
	// its MSR reads and writes fail — a dead core.
	ClassOffline
	numClasses
)

var classNames = map[Class]string{
	ClassEIO:     "eio",
	ClassStuck:   "stuck",
	ClassTorn:    "torn",
	ClassLatency: "latency",
	ClassThermal: "thermal",
	ClassRAPL:    "rapl",
	ClassOffline: "offline",
}

// String names the class as it appears in schedules.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return "unknown"
}

// FlightCode maps the class onto its stable dump code.
func (c Class) FlightCode() uint32 {
	switch c {
	case ClassEIO:
		return flight.FaultEIO
	case ClassStuck:
		return flight.FaultStuck
	case ClassTorn:
		return flight.FaultTorn
	case ClassLatency:
		return flight.FaultLatency
	case ClassThermal:
		return flight.FaultThermal
	case ClassRAPL:
		return flight.FaultRAPL
	case ClassOffline:
		return flight.FaultOffline
	}
	return ^uint32(0)
}

// ClassByName resolves a schedule keyword to its class.
func ClassByName(name string) (Class, error) {
	for c, n := range classNames {
		if n == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault class %q", name)
}

// Entry is one fault window.
type Entry struct {
	At    time.Duration // window open, in run time
	For   time.Duration // window length
	Class Class

	CPU   int           // target CPU; -1 matches every CPU
	Regs  []uint32      // canonical registers; empty matches every register
	Prob  float64       // eio: failure probability per read, (0, 1]
	Delay time.Duration // latency: added per read
	Cap   units.Hertz   // thermal: forced frequency clamp
	Limit units.Watts   // rapl: dropped power limit
}

// Active reports whether the window covers run time t.
func (e Entry) Active(t time.Duration) bool {
	return t >= e.At && t < e.At+e.For
}

// Matches reports whether the entry targets the given CPU and canonical
// register.
func (e Entry) Matches(cpu int, reg uint32) bool {
	if e.CPU >= 0 && e.CPU != cpu {
		return false
	}
	if len(e.Regs) == 0 {
		return true
	}
	for _, r := range e.Regs {
		if r == reg {
			return true
		}
	}
	return false
}

// Validate reports whether the entry is coherent.
func (e Entry) Validate() error {
	if e.Class >= numClasses {
		return fmt.Errorf("fault: unknown class %d", e.Class)
	}
	if e.At < 0 {
		return fmt.Errorf("fault: %s window starts before t=0", e.Class)
	}
	if e.For <= 0 {
		return fmt.Errorf("fault: %s window has non-positive duration %v", e.Class, e.For)
	}
	if e.Prob < 0 || e.Prob > 1 {
		return fmt.Errorf("fault: %s probability %v outside [0, 1]", e.Class, e.Prob)
	}
	switch e.Class {
	case ClassLatency:
		if e.Delay <= 0 {
			return fmt.Errorf("fault: latency window needs delay > 0")
		}
	case ClassThermal:
		if e.Cap <= 0 {
			return fmt.Errorf("fault: thermal window needs cap > 0")
		}
	case ClassRAPL:
		if e.Limit <= 0 {
			return fmt.Errorf("fault: rapl window needs limit > 0")
		}
	case ClassOffline:
		if e.CPU < 0 {
			return fmt.Errorf("fault: offline window needs a specific cpu")
		}
	}
	return nil
}

// String renders the entry in schedule syntax; ParseSchedule(e.String())
// round-trips.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "at %v for %v %s", e.At, e.For, e.Class)
	if e.CPU >= 0 {
		fmt.Fprintf(&b, " cpu=%d", e.CPU)
	} else if e.Class != ClassThermal && e.Class != ClassRAPL {
		b.WriteString(" cpu=*")
	}
	if len(e.Regs) > 0 {
		names := make([]string, len(e.Regs))
		for i, r := range e.Regs {
			names[i] = msr.RegName(r)
		}
		fmt.Fprintf(&b, " regs=%s", strings.Join(names, ","))
	}
	if e.Prob > 0 && e.Prob < 1 {
		fmt.Fprintf(&b, " prob=%g", e.Prob)
	}
	if e.Delay > 0 {
		fmt.Fprintf(&b, " delay=%v", e.Delay)
	}
	if e.Cap > 0 {
		// %g hertz round-trips exactly; unit suffixes would round.
		fmt.Fprintf(&b, " cap=%gHz", float64(e.Cap))
	}
	if e.Limit > 0 {
		fmt.Fprintf(&b, " limit=%gW", float64(e.Limit))
	}
	return b.String()
}

// Schedule is an ordered set of fault windows.
type Schedule []Entry

// String renders the schedule in parseable form.
func (s Schedule) String() string {
	lines := make([]string, len(s))
	for i, e := range s {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// End reports when the last window closes (0 for an empty schedule).
func (s Schedule) End() time.Duration {
	var end time.Duration
	for _, e := range s {
		if t := e.At + e.For; t > end {
			end = t
		}
	}
	return end
}

// regNames maps schedule register names onto canonical addresses. Hex
// literals (0x611) are also accepted.
var regNames = map[string]uint32{
	"APERF":             msr.IA32Aperf,
	"MPERF":             msr.IA32Mperf,
	"FIXED_CTR0":        msr.IA32FixedCtr0,
	"PERF_STATUS":       msr.IA32PerfStatus,
	"PERF_CTL":          msr.IA32PerfCtl,
	"RAPL_POWER_UNIT":   msr.RAPLPowerUnit,
	"PKG_POWER_LIMIT":   msr.PkgPowerLimit,
	"PKG_ENERGY_STATUS": msr.PkgEnergyStatus,
	"PP0_ENERGY_STATUS": msr.PP0EnergyStatus,
	"PM_ENABLE":         msr.IA32PmEnable,
	"HWP_REQUEST":       msr.IA32HwpRequest,
}

func parseReg(s string) (uint32, error) {
	if r, ok := regNames[strings.ToUpper(s)]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 32)
		if err != nil {
			return 0, fmt.Errorf("fault: bad register %q: %w", s, err)
		}
		return msr.Canonical(uint32(v)), nil
	}
	return 0, fmt.Errorf("fault: unknown register %q", s)
}

// parseHertz parses a frequency with an optional GHz/MHz/kHz/Hz suffix
// (plain numbers are hertz).
func parseHertz(s string) (units.Hertz, error) {
	mult := 1.0
	up := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(up, "GHZ"):
		mult, s = 1e9, s[:len(s)-3]
	case strings.HasSuffix(up, "MHZ"):
		mult, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(up, "KHZ"):
		mult, s = 1e3, s[:len(s)-3]
	case strings.HasSuffix(up, "HZ"):
		s = s[:len(s)-2]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("fault: bad frequency: %w", err)
	}
	return units.Hertz(v * mult), nil
}

// parseWatts parses a power with an optional W suffix.
func parseWatts(s string) (units.Watts, error) {
	if strings.HasSuffix(strings.ToUpper(s), "W") {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("fault: bad power: %w", err)
	}
	return units.Watts(v), nil
}

// ParseSchedule parses the line-oriented schedule format. Entries are
// returned sorted by window open time (stable for equal times). Inline
// schedules may separate entries with ';' instead of newlines.
func ParseSchedule(text string) (Schedule, error) {
	var sched Schedule
	text = strings.ReplaceAll(text, ";", "\n")
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", ln+1, err)
		}
		sched = append(sched, e)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

func parseEntry(line string) (Entry, error) {
	f := strings.Fields(line)
	if len(f) < 5 || f[0] != "at" || f[2] != "for" {
		return Entry{}, fmt.Errorf("want %q, got %q", "at <time> for <duration> <class> [k=v...]", line)
	}
	at, err := time.ParseDuration(f[1])
	if err != nil {
		return Entry{}, fmt.Errorf("bad window start: %w", err)
	}
	dur, err := time.ParseDuration(f[3])
	if err != nil {
		return Entry{}, fmt.Errorf("bad window duration: %w", err)
	}
	class, err := ClassByName(f[4])
	if err != nil {
		return Entry{}, err
	}
	e := Entry{At: at, For: dur, Class: class, CPU: -1}
	for _, kv := range f[5:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Entry{}, fmt.Errorf("bad parameter %q (want key=value)", kv)
		}
		switch key {
		case "cpu":
			if val == "*" {
				e.CPU = -1
				break
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Entry{}, fmt.Errorf("bad cpu %q", val)
			}
			e.CPU = n
		case "regs":
			for _, name := range strings.Split(val, ",") {
				r, err := parseReg(name)
				if err != nil {
					return Entry{}, err
				}
				e.Regs = append(e.Regs, r)
			}
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Entry{}, fmt.Errorf("bad prob %q", val)
			}
			e.Prob = p
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Entry{}, fmt.Errorf("bad delay %q", val)
			}
			e.Delay = d
		case "cap":
			if e.Cap, err = parseHertz(val); err != nil {
				return Entry{}, err
			}
		case "limit":
			if e.Limit, err = parseWatts(val); err != nil {
				return Entry{}, err
			}
		default:
			return Entry{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	if err := e.Validate(); err != nil {
		return Entry{}, err
	}
	return e, nil
}
