// Package units defines the physical quantities used throughout the power
// delivery simulator: frequency, power, energy, and voltage, plus the
// proportional-share type used by the policy engine.
//
// All quantities are float64 wrappers. Frequencies are carried in hertz,
// power in watts, energy in joules, and voltage in volts. Keeping distinct
// named types catches unit mix-ups at compile time (a recurring bug class in
// power-management code where MHz, kHz and P-state indices circulate
// together).
package units

import (
	"fmt"
	"math"
	"time"
)

// Hertz is a frequency in hertz.
type Hertz float64

// Convenience frequency constructors.
const (
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// MHzF returns the frequency as a float64 count of megahertz.
func (f Hertz) MHzF() float64 { return float64(f) / 1e6 }

// GHzF returns the frequency as a float64 count of gigahertz.
func (f Hertz) GHzF() float64 { return float64(f) / 1e9 }

// String formats the frequency using the most natural SI prefix.
func (f Hertz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.2f GHz", f.GHzF())
	case f >= MHz:
		return fmt.Sprintf("%.0f MHz", f.MHzF())
	case f >= KHz:
		return fmt.Sprintf("%.0f kHz", float64(f)/1e3)
	default:
		return fmt.Sprintf("%.0f Hz", float64(f))
	}
}

// Quantize rounds f down to an integer multiple of step. Hardware P-state
// interfaces only accept discrete frequency multipliers (100 MHz on Intel,
// 25 MHz on Ryzen), and rounding down keeps a requested budget feasible.
// A non-positive step returns f unchanged.
func (f Hertz) Quantize(step Hertz) Hertz {
	if step <= 0 {
		return f
	}
	n := math.Floor(float64(f) / float64(step))
	if n < 0 {
		n = 0
	}
	return Hertz(n) * step
}

// QuantizeNearest rounds f to the nearest integer multiple of step.
func (f Hertz) QuantizeNearest(step Hertz) Hertz {
	if step <= 0 {
		return f
	}
	n := math.Round(float64(f) / float64(step))
	if n < 0 {
		n = 0
	}
	return Hertz(n) * step
}

// Clamp restricts f to [lo, hi]. Callers must pass lo <= hi.
func (f Hertz) Clamp(lo, hi Hertz) Hertz {
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}

// Cycles returns the number of clock cycles elapsed at frequency f over d.
func (f Hertz) Cycles(d time.Duration) float64 {
	return float64(f) * d.Seconds()
}

// Watts is a power draw in watts.
type Watts float64

// String formats the power in watts with two decimals.
func (w Watts) String() string { return fmt.Sprintf("%.2f W", float64(w)) }

// Energy returns the energy consumed drawing w for d.
func (w Watts) Energy(d time.Duration) Joules {
	return Joules(float64(w) * d.Seconds())
}

// Clamp restricts w to [lo, hi]. Callers must pass lo <= hi.
func (w Watts) Clamp(lo, hi Watts) Watts {
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// Joules is an amount of energy in joules.
type Joules float64

// String formats the energy in joules with three decimals.
func (j Joules) String() string { return fmt.Sprintf("%.3f J", float64(j)) }

// Power returns the average power of consuming j over d. It reports zero for
// a non-positive duration rather than dividing by zero.
func (j Joules) Power(d time.Duration) Watts {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return Watts(float64(j) / s)
}

// Volts is an electric potential in volts.
type Volts float64

// String formats the voltage with three decimals.
func (v Volts) String() string { return fmt.Sprintf("%.3f V", float64(v)) }

// Shares is a proportional-share weight as used by lottery/stride-style
// proportional schedulers. Weights are relative: an application holding 3
// shares running beside one holding 1 share receives 3/4 of the resource.
type Shares int

// Fraction returns the fraction of the resource s represents out of total.
// It reports zero when total is non-positive.
func (s Shares) Fraction(total Shares) float64 {
	if total <= 0 {
		return 0
	}
	return float64(s) / float64(total)
}

// SumShares adds up a share slice.
func SumShares(ss []Shares) Shares {
	var t Shares
	for _, s := range ss {
		t += s
	}
	return t
}
