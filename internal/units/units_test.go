package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHertzString(t *testing.T) {
	cases := []struct {
		f    Hertz
		want string
	}{
		{2200 * MHz, "2.20 GHz"},
		{800 * MHz, "800 MHz"},
		{25 * KHz, "25 kHz"},
		{400, "400 Hz"},
		{3.8 * GHz, "3.80 GHz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestQuantizeFloors(t *testing.T) {
	f := 2250 * MHz
	if got := f.Quantize(100 * MHz); got != 2200*MHz {
		t.Errorf("Quantize(100MHz) = %v, want 2200 MHz", got)
	}
	if got := f.Quantize(25 * MHz); got != 2250*MHz {
		t.Errorf("Quantize(25MHz) = %v, want 2250 MHz", got)
	}
}

func TestQuantizeZeroStep(t *testing.T) {
	f := 1234 * MHz
	if got := f.Quantize(0); got != f {
		t.Errorf("Quantize(0) = %v, want %v", got, f)
	}
	if got := f.QuantizeNearest(-1); got != f {
		t.Errorf("QuantizeNearest(-1) = %v, want %v", got, f)
	}
}

func TestQuantizeNearest(t *testing.T) {
	if got := (2260 * MHz).QuantizeNearest(100 * MHz); got != 2300*MHz {
		t.Errorf("QuantizeNearest = %v, want 2300 MHz", got)
	}
	if got := (2240 * MHz).QuantizeNearest(100 * MHz); got != 2200*MHz {
		t.Errorf("QuantizeNearest = %v, want 2200 MHz", got)
	}
}

// Property: quantized value is always a multiple of the step and never
// exceeds the input (for Quantize) nor deviates by more than step/2 (for
// QuantizeNearest).
func TestQuantizeProperties(t *testing.T) {
	prop := func(raw uint32) bool {
		f := Hertz(raw) * KHz
		step := 25 * MHz
		q := f.Quantize(step)
		if q > f {
			return false
		}
		if f-q >= step {
			return false
		}
		mult := float64(q) / float64(step)
		if math.Abs(mult-math.Round(mult)) > 1e-9 {
			return false
		}
		qn := f.QuantizeNearest(step)
		return math.Abs(float64(qn-f)) <= float64(step)/2+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := (3 * GHz).Clamp(800*MHz, 2200*MHz); got != 2200*MHz {
		t.Errorf("Clamp high = %v", got)
	}
	if got := (100 * MHz).Clamp(800*MHz, 2200*MHz); got != 800*MHz {
		t.Errorf("Clamp low = %v", got)
	}
	if got := (1 * GHz).Clamp(800*MHz, 2200*MHz); got != 1*GHz {
		t.Errorf("Clamp mid = %v", got)
	}
	if got := Watts(90).Clamp(20, 85); got != 85 {
		t.Errorf("Watts clamp = %v", got)
	}
}

func TestCycles(t *testing.T) {
	got := (2 * GHz).Cycles(500 * time.Millisecond)
	if got != 1e9 {
		t.Errorf("Cycles = %g, want 1e9", got)
	}
}

func TestEnergyPowerRoundTrip(t *testing.T) {
	w := Watts(50)
	j := w.Energy(2 * time.Second)
	if j != 100 {
		t.Fatalf("Energy = %v, want 100 J", j)
	}
	if back := j.Power(2 * time.Second); math.Abs(float64(back-w)) > 1e-12 {
		t.Errorf("Power round trip = %v, want %v", back, w)
	}
	if z := j.Power(0); z != 0 {
		t.Errorf("Power(0) = %v, want 0", z)
	}
}

func TestSharesFraction(t *testing.T) {
	if got := Shares(3).Fraction(4); got != 0.75 {
		t.Errorf("Fraction = %v, want 0.75", got)
	}
	if got := Shares(3).Fraction(0); got != 0 {
		t.Errorf("Fraction of zero total = %v, want 0", got)
	}
}

func TestSumShares(t *testing.T) {
	if got := SumShares([]Shares{1, 2, 3}); got != 6 {
		t.Errorf("SumShares = %v, want 6", got)
	}
	if got := SumShares(nil); got != 0 {
		t.Errorf("SumShares(nil) = %v, want 0", got)
	}
}

// Property: fractions across a share vector sum to ~1 when total is the sum.
func TestFractionSumsToOne(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		ss := []Shares{Shares(a) + 1, Shares(b) + 1, Shares(c) + 1}
		total := SumShares(ss)
		var sum float64
		for _, s := range ss {
			sum += s.Fraction(total)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
