package tracing

import (
	"sort"
	"time"
)

// Straggler detection: a node is flagged for a round when its report
// RPC took at least StragglerFactor times the round's median report
// latency AND exceeded it by at least StragglerFloor. The absolute
// floor keeps loopback-fast rounds (median in the microseconds) from
// flagging ordinary scheduling noise.
const (
	StragglerFactor = 2
	StragglerFloor  = 5 * time.Millisecond
)

// NodeRound is one node's slice of a merged round: the coordinator's
// view of its RPCs plus, when the node's dump covers the round, the
// node-side span tree joined by round ID.
type NodeRound struct {
	Node string `json:"node"`
	// Report and Grant are the coordinator-side RPC spans for this node.
	Report *Span `json:"report,omitempty"`
	Grant  *Span `json:"grant,omitempty"`
	// Record is the node's own round record (receive/sample/decide/
	// actuate spans, flight-recorder interval link); nil when the node
	// dump has no record for the round — a partition-induced gap.
	Record *Round `json:"record,omitempty"`
	// Missing marks nodes the coordinator contacted but whose dump has
	// no matching round record.
	Missing bool `json:"missing,omitempty"`
	// Straggler marks the node flagged as this round's straggler.
	Straggler bool `json:"straggler,omitempty"`
}

// MergedRound is one coordinator round joined with every node that
// participated in it.
type MergedRound struct {
	ID    uint64        `json:"id"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Plan is the coordinator's local planning span, if recorded.
	Plan  *Span       `json:"plan,omitempty"`
	Nodes []NodeRound `json:"nodes"`
	// Straggler names the slowest node whose report RPC latency
	// qualifies under StragglerFactor/StragglerFloor.
	Straggler string `json:"straggler,omitempty"`
	// Gaps lists nodes with no node-side record for this round.
	Gaps []string `json:"gaps,omitempty"`
}

// StragglerStat aggregates one node's straggler behaviour across the
// merged window.
type StragglerStat struct {
	Node string `json:"node"`
	// Rounds is how many rounds flagged this node.
	Rounds int `json:"rounds"`
	// Worst is the node's worst report RPC latency.
	Worst time.Duration `json:"worst_ns"`
}

// Timeline is the cross-node merged view: every coordinator round
// resolved to per-node spans by round ID.
type Timeline struct {
	Coordinator string        `json:"coordinator"`
	Rounds      []MergedRound `json:"rounds"`
	// Stragglers ranks nodes by how often they were the round
	// straggler, worst first (top-K is the caller's slice to take).
	Stragglers []StragglerStat `json:"stragglers,omitempty"`
	// GapRounds counts rounds with at least one partition-induced gap.
	GapRounds int `json:"gap_rounds,omitempty"`
	// Tiers holds the merged timelines of mid-tier coordinators found
	// among the node logs (see MergeTree) — absent for flat rooms.
	Tiers []Timeline `json:"tiers,omitempty"`
}

// StragglerIn applies the straggler rule to one round's report
// latencies and returns the index of the flagged node, or -1. Only the
// slowest node can be the straggler; ties keep the first.
func StragglerIn(latencies []time.Duration) int {
	if len(latencies) < 2 {
		return -1
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	worst, at := time.Duration(-1), -1
	for i, l := range latencies {
		if l > worst {
			worst, at = l, i
		}
	}
	if worst >= median*StragglerFactor && worst >= median+StragglerFloor {
		return at
	}
	return -1
}

// IsCoordinator reports whether a log contains coordinator-side rounds
// — rounds with per-node report spans. This is how MergeTree tells a
// mid-tier coordinator's log from a leaf node's: a tier records both
// its agent's node-side rounds (under its parent's round IDs) and its
// own coordination rounds (under its own namespace) into one tracer.
func (l Log) IsCoordinator() bool {
	for _, r := range l.Rounds {
		if roundCoordinates(r) {
			return true
		}
	}
	return false
}

// roundCoordinates reports whether a round is coordinator-side: it
// carries per-node report spans or a planning span, rather than the
// receive/apply spans a node records about its own uplink traffic.
func roundCoordinates(r Round) bool {
	for _, s := range r.Spans {
		if (s.Name == "report" && s.Node != "") || s.Name == "plan" {
			return true
		}
	}
	return false
}

// MergeTree joins the logs of a whole coordination tree into one
// cross-tier timeline: the root's merged rounds at the top and, under
// Tiers, one merged timeline per mid-tier coordinator log found among
// the node logs, each joined against every remaining log. Round-ID
// namespaces (cluster.Config.RoundBase) keep the tiers' rounds
// disjoint, so a leaf's records join only the tier that actually
// coordinated it. Tiers are listed flat — the logs alone do not record
// parentage — and a flat room (no coordinator logs among the nodes)
// yields a Timeline identical to Merge's.
func MergeTree(coord Log, rest []Log) Timeline {
	tl := Merge(coord, rest)
	for i, l := range rest {
		if !l.IsCoordinator() {
			continue
		}
		// Only the log's coordinator-side rounds belong in its
		// sub-timeline; its agent-side rounds (receive/grant under the
		// parent's round IDs) already joined the parent's rounds above.
		sub := Log{Origin: l.Origin}
		for _, r := range l.Rounds {
			if roundCoordinates(r) {
				sub.Rounds = append(sub.Rounds, r)
			}
		}
		others := make([]Log, 0, len(rest)-1)
		others = append(others, rest[:i]...)
		others = append(others, rest[i+1:]...)
		if stl := Merge(sub, others); len(stl.Rounds) > 0 {
			tl.Tiers = append(tl.Tiers, stl)
		}
	}
	return tl
}

// Merge joins a coordinator log with node logs by round ID, flagging
// stragglers and partition-induced gaps. Node logs are matched to
// coordinator RPC spans by their Origin.
func Merge(coord Log, nodes []Log) Timeline {
	// Index node-side rounds: origin -> round ID -> merged record.
	// A node may record several rounds with the same ID (a status
	// report and a grant both arrive within one coordinator round);
	// collapse them into one record with the union of spans.
	byNode := make(map[string]map[uint64]*Round, len(nodes))
	for _, nl := range nodes {
		m := byNode[nl.Origin]
		if m == nil {
			m = make(map[uint64]*Round)
			byNode[nl.Origin] = m
		}
		for _, r := range nl.Rounds {
			if r.ID == 0 {
				continue
			}
			if have, ok := m[r.ID]; ok {
				have.Spans = append(have.Spans, r.Spans...)
				if r.Start < have.Start {
					have.Start = r.Start
				}
				if r.End > have.End {
					have.End = r.End
				}
				if r.Interval != 0 {
					have.Interval = r.Interval
				}
			} else {
				cp := r
				cp.Spans = append([]Span(nil), r.Spans...)
				m[r.ID] = &cp
			}
		}
	}

	tl := Timeline{Coordinator: coord.Origin}
	stats := make(map[string]*StragglerStat)
	for _, cr := range coord.Rounds {
		mr := MergedRound{ID: cr.ID, Start: cr.Start, End: cr.End}
		if p := cr.Find("plan", ""); p != nil {
			cp := *p
			mr.Plan = &cp
		}
		// One NodeRound per node the coordinator talked to, in the
		// order its report spans were recorded.
		var lats []time.Duration
		var latIdx []int
		for i := range cr.Spans {
			s := cr.Spans[i]
			if s.Name != "report" || s.Node == "" {
				continue
			}
			nr := NodeRound{Node: s.Node}
			sp := s
			nr.Report = &sp
			if g := cr.Find("grant", s.Node); g != nil {
				gp := *g
				nr.Grant = &gp
			}
			if rec, ok := byNode[s.Node][cr.ID]; ok {
				nr.Record = rec
			} else {
				nr.Missing = true
				mr.Gaps = append(mr.Gaps, s.Node)
			}
			if s.Err == "" {
				lats = append(lats, sp.Latency())
				latIdx = append(latIdx, len(mr.Nodes))
			}
			mr.Nodes = append(mr.Nodes, nr)
		}
		if at := StragglerIn(lats); at >= 0 {
			n := &mr.Nodes[latIdx[at]]
			n.Straggler = true
			mr.Straggler = n.Node
			st := stats[n.Node]
			if st == nil {
				st = &StragglerStat{Node: n.Node}
				stats[n.Node] = st
			}
			st.Rounds++
			if l := n.Report.Latency(); l > st.Worst {
				st.Worst = l
			}
		}
		if len(mr.Gaps) > 0 {
			tl.GapRounds++
		}
		tl.Rounds = append(tl.Rounds, mr)
	}
	sort.Slice(tl.Rounds, func(i, j int) bool { return tl.Rounds[i].ID < tl.Rounds[j].ID })
	for _, st := range stats {
		tl.Stragglers = append(tl.Stragglers, *st)
	}
	sort.Slice(tl.Stragglers, func(i, j int) bool {
		a, b := tl.Stragglers[i], tl.Stragglers[j]
		if a.Rounds != b.Rounds {
			return a.Rounds > b.Rounds
		}
		if a.Worst != b.Worst {
			return a.Worst > b.Worst
		}
		return a.Node < b.Node
	})
	return tl
}
