// Package tracing gives the distributed control plane a shared clockless
// vocabulary for answering "where did this round go?": the coordinator
// stamps every reallocation round with a monotonic round ID, propagates
// it through the powerapi envelope, and both sides record a small span
// tree for each round — the coordinator's fan-out → per-node RPC → grant
// phasing, and each node's receive → sample → decide → actuate pipeline —
// into constant-memory ring buffers that an operator can dump over HTTP
// and join offline by round ID (see Merge).
//
// Like the flight recorder, the package is dependency-free, nil-safe
// (a nil *Tracer swallows everything at zero cost) and bounded: a Tracer
// holds at most its configured capacity of rounds, evicting the oldest.
// All timestamps are offsets from the tracer's epoch, so two dumps from
// different machines are joined by round ID, never by wall clock.
package tracing

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"
)

// RoundIDBase derives a disjoint round-ID namespace from a coordinator
// name: the FNV-1a hash of the name shifted into the top 32 bits. Each
// coordinator in a tier tree mints rounds as base + counter, so logs
// from a whole building merge without ID collisions while the low bits
// stay a readable per-coordinator counter. The empty name maps to 0 —
// the flat single-coordinator namespace.
func RoundIDBase(origin string) uint64 {
	if origin == "" {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, origin)
	return uint64(h.Sum32()) << 32
}

// DefaultCapacity is the ring size used when New is given a
// non-positive capacity: enough for a few minutes of one-second rounds
// without measurable memory cost.
const DefaultCapacity = 256

// Span is one timed phase inside a round. Start and End are offsets
// from the recording tracer's epoch (serialised as nanoseconds).
type Span struct {
	// Name identifies the phase: "report", "plan", "grant" on the
	// coordinator; "receive", "sample", "decide", "actuate" on a node.
	Name string `json:"name"`
	// Node is the remote party for RPC spans ("report"/"grant"), empty
	// for local phases.
	Node  string        `json:"node,omitempty"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Err carries the failure for spans that did not complete cleanly.
	Err string `json:"err,omitempty"`
}

// Latency is the span's duration.
func (s Span) Latency() time.Duration { return s.End - s.Start }

// Round is the span tree one party recorded for one control round.
type Round struct {
	// ID is the coordinator-assigned monotonic round ID. Rounds from
	// different dumps join on this field.
	ID uint64 `json:"id"`
	// Origin names the recording party (coordinator or node name).
	Origin string        `json:"origin,omitempty"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	// Interval links a node-side round to the flight recorder's
	// interval spans (flight.IntervalSpan.Interval); zero on the
	// coordinator side.
	Interval uint32 `json:"interval,omitempty"`
	Spans    []Span `json:"spans,omitempty"`
}

// Latency is the round's end-to-end duration as its recorder saw it.
func (r Round) Latency() time.Duration { return r.End - r.Start }

// Find returns the first span with the given name and node ("" matches
// spans with no node), or nil.
func (r Round) Find(name, node string) *Span {
	for i := range r.Spans {
		if r.Spans[i].Name == name && r.Spans[i].Node == node {
			return &r.Spans[i]
		}
	}
	return nil
}

// Tracer records rounds into a fixed-size ring. The zero of its clock
// is the moment New was called. All methods are safe for concurrent
// use and safe on a nil receiver.
type Tracer struct {
	origin string
	epoch  time.Time

	mu    sync.Mutex
	ring  []Round
	next  int
	count int
	total uint64
}

// New builds a tracer identifying itself as origin, keeping the last
// capacity rounds (DefaultCapacity if capacity <= 0).
func New(origin string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		origin: origin,
		epoch:  time.Now(),
		ring:   make([]Round, capacity),
	}
}

// Origin reports the identity the tracer stamps on its rounds.
func (t *Tracer) Origin() string {
	if t == nil {
		return ""
	}
	return t.origin
}

// Now returns the current offset on the tracer's clock; zero on nil.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Add records a finished round, evicting the oldest if the ring is
// full. The round's Origin is stamped from the tracer.
func (t *Tracer) Add(r Round) {
	if t == nil {
		return
	}
	r.Origin = t.origin
	t.mu.Lock()
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.total++
	t.mu.Unlock()
}

// Total reports how many rounds have ever been recorded (including
// evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Rounds returns the retained rounds, oldest first.
func (t *Tracer) Rounds() []Round {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Round, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Log snapshots the tracer for serialisation: what /debug/rounds
// serves and what powerdump's merged view consumes.
func (t *Tracer) Log() Log {
	return Log{Origin: t.Origin(), Total: t.Total(), Rounds: t.Rounds()}
}

// Begin opens a builder for one round. Safe on a nil tracer: the
// builder is nil and every method on it is a no-op.
func (t *Tracer) Begin(id uint64) *RoundBuilder {
	if t == nil {
		return nil
	}
	return &RoundBuilder{t: t, r: Round{ID: id, Start: t.Now()}}
}

// RoundBuilder accumulates spans for an in-flight round. Span may be
// called from concurrent goroutines (the coordinator's fan-out does);
// End publishes the round to the tracer.
type RoundBuilder struct {
	t  *Tracer
	mu sync.Mutex
	r  Round
}

// Now returns the current offset on the underlying tracer's clock.
func (b *RoundBuilder) Now() time.Duration {
	if b == nil {
		return 0
	}
	return b.t.Now()
}

// Span records one timed phase.
func (b *RoundBuilder) Span(name, node string, start, end time.Duration, err error) {
	if b == nil {
		return
	}
	s := Span{Name: name, Node: node, Start: start, End: end}
	if err != nil {
		s.Err = err.Error()
	}
	b.mu.Lock()
	b.r.Spans = append(b.r.Spans, s)
	b.mu.Unlock()
}

// SetStart rewinds the round's start, for recorders that open the
// builder only after the work being described has finished.
func (b *RoundBuilder) SetStart(start time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.r.Start = start
	b.mu.Unlock()
}

// SetInterval links the round to a flight-recorder interval.
func (b *RoundBuilder) SetInterval(interval uint32) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.r.Interval = interval
	b.mu.Unlock()
}

// End stamps the round's end time and publishes it.
func (b *RoundBuilder) End() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.r.End = b.t.Now()
	r := b.r
	b.mu.Unlock()
	b.t.Add(r)
}

// Log is the serialised form of a tracer's retained rounds — the
// payload of GET /debug/rounds and the input to Merge.
type Log struct {
	Origin string  `json:"origin"`
	Total  uint64  `json:"total_rounds"`
	Rounds []Round `json:"rounds"`
}

// Write serialises the log as indented JSON.
func (l Log) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// ReadLog parses a log written by Log.Write (or served by
// /debug/rounds).
func ReadLog(r io.Reader) (Log, error) {
	var l Log
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return Log{}, fmt.Errorf("tracing: parsing log: %w", err)
	}
	return l, nil
}

// ReadLogFile parses a log from a file.
func ReadLogFile(path string) (Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return Log{}, fmt.Errorf("tracing: %w", err)
	}
	defer f.Close()
	l, err := ReadLog(f)
	if err != nil {
		return Log{}, fmt.Errorf("tracing: %s: %w", path, err)
	}
	return l, nil
}
