package tracing

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 || tr.Origin() != "" || tr.Total() != 0 {
		t.Fatalf("nil tracer leaked state")
	}
	if got := tr.Rounds(); got != nil {
		t.Fatalf("nil tracer Rounds = %v, want nil", got)
	}
	b := tr.Begin(7)
	b.Span("report", "n1", 0, 1, nil)
	b.SetInterval(3)
	b.End() // must not panic
	if l := tr.Log(); l.Origin != "" || len(l.Rounds) != 0 {
		t.Fatalf("nil tracer Log = %+v", l)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New("coord", 4)
	for id := uint64(1); id <= 10; id++ {
		tr.Add(Round{ID: id})
	}
	rounds := tr.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("kept %d rounds, want 4", len(rounds))
	}
	for i, r := range rounds {
		if want := uint64(7 + i); r.ID != want {
			t.Fatalf("rounds[%d].ID = %d, want %d (oldest-first)", i, r.ID, want)
		}
		if r.Origin != "coord" {
			t.Fatalf("rounds[%d].Origin = %q, want coord", i, r.Origin)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
}

func TestBuilderConcurrentSpans(t *testing.T) {
	tr := New("coord", 8)
	b := tr.Begin(1)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := b.Now()
			b.Span("report", "n", s, b.Now(), errors.New("boom"))
		}()
	}
	wg.Wait()
	b.End()
	rounds := tr.Rounds()
	if len(rounds) != 1 || len(rounds[0].Spans) != 16 {
		t.Fatalf("got %d rounds / %d spans, want 1/16", len(rounds), len(rounds[0].Spans))
	}
	for _, s := range rounds[0].Spans {
		if s.Err != "boom" {
			t.Fatalf("span err = %q", s.Err)
		}
	}
	if rounds[0].End < rounds[0].Start {
		t.Fatalf("round ends before it starts: %+v", rounds[0])
	}
}

func TestLogRoundTrip(t *testing.T) {
	tr := New("n3", 4)
	b := tr.Begin(42)
	b.SetInterval(9)
	b.Span("receive", "", 10, 20, nil)
	b.Span("sample", "", 11, 13, nil)
	b.End()

	var buf bytes.Buffer
	if err := tr.Log().Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != "n3" || got.Total != 1 || len(got.Rounds) != 1 {
		t.Fatalf("round-tripped log = %+v", got)
	}
	r := got.Rounds[0]
	if r.ID != 42 || r.Interval != 9 || len(r.Spans) != 2 {
		t.Fatalf("round-tripped round = %+v", r)
	}
	if s := r.Find("sample", ""); s == nil || s.Latency() != 2 {
		t.Fatalf("Find(sample) = %+v", s)
	}
}

func TestStragglerIn(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name string
		lats []time.Duration
		want int
	}{
		{"uniform", []time.Duration{ms(1), ms(1), ms(1), ms(1)}, -1},
		{"one slow", []time.Duration{ms(1), ms(50), ms(1), ms(2)}, 1},
		{"slow but under floor", []time.Duration{ms(1), ms(3), ms(1), ms(1)}, -1},
		{"slow but under factor", []time.Duration{ms(40), ms(60), ms(41), ms(42)}, -1},
		{"single node", []time.Duration{ms(100)}, -1},
	}
	for _, c := range cases {
		if got := StragglerIn(c.lats); got != c.want {
			t.Errorf("%s: StragglerIn = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestMerge joins a synthetic coordinator log with node logs and
// checks round resolution, gap flagging, and straggler ranking.
func TestMerge(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	coord := Log{
		Origin: "coord",
		Rounds: []Round{
			{ID: 2, Start: ms(100), End: ms(160), Spans: []Span{
				{Name: "report", Node: "a", Start: ms(100), End: ms(101)},
				{Name: "report", Node: "b", Start: ms(100), End: ms(150)},
				{Name: "report", Node: "c", Start: ms(100), End: ms(102)},
				{Name: "plan", Start: ms(150), End: ms(151)},
				{Name: "grant", Node: "a", Start: ms(151), End: ms(152)},
			}},
			{ID: 1, Start: ms(0), End: ms(10), Spans: []Span{
				{Name: "report", Node: "a", Start: ms(0), End: ms(1)},
				{Name: "report", Node: "b", Start: ms(0), End: ms(1)},
				{Name: "report", Node: "c", Start: ms(0), End: ms(2), Err: "timeout"},
			}},
		},
	}
	nodes := []Log{
		{Origin: "a", Rounds: []Round{
			{ID: 1, Interval: 5, Spans: []Span{{Name: "receive", Start: ms(0), End: ms(1)}}},
			{ID: 2, Interval: 6, Spans: []Span{{Name: "receive", Start: ms(100), End: ms(101)}}},
			// Second record for the same round (grant handling):
			// must collapse into one record with both spans.
			{ID: 2, Spans: []Span{{Name: "apply", Start: ms(151), End: ms(152)}}},
		}},
		{Origin: "b", Rounds: []Round{
			{ID: 1, Spans: []Span{{Name: "receive", Start: ms(0), End: ms(1)}}},
			{ID: 2, Spans: []Span{{Name: "receive", Start: ms(149), End: ms(150)}}},
		}},
		// node c's dump has no rounds: every coordinator round shows a gap.
	}

	tl := Merge(coord, nodes)
	if tl.Coordinator != "coord" || len(tl.Rounds) != 2 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.Rounds[0].ID != 1 || tl.Rounds[1].ID != 2 {
		t.Fatalf("rounds not sorted by ID: %d, %d", tl.Rounds[0].ID, tl.Rounds[1].ID)
	}

	r2 := tl.Rounds[1]
	if r2.Straggler != "b" {
		t.Fatalf("round 2 straggler = %q, want b", r2.Straggler)
	}
	if r2.Plan == nil || r2.Plan.Latency() != ms(1) {
		t.Fatalf("round 2 plan span = %+v", r2.Plan)
	}
	var a, c *NodeRound
	for i := range r2.Nodes {
		switch r2.Nodes[i].Node {
		case "a":
			a = &r2.Nodes[i]
		case "c":
			c = &r2.Nodes[i]
		}
	}
	if a == nil || a.Record == nil || a.Record.Interval != 6 || len(a.Record.Spans) != 2 {
		t.Fatalf("node a record not collapsed: %+v", a)
	}
	if a.Grant == nil || a.Grant.Latency() != ms(1) {
		t.Fatalf("node a grant = %+v", a.Grant)
	}
	if c == nil || !c.Missing || c.Record != nil {
		t.Fatalf("node c should be a gap: %+v", c)
	}
	if len(r2.Gaps) != 1 || r2.Gaps[0] != "c" {
		t.Fatalf("round 2 gaps = %v", r2.Gaps)
	}
	if tl.GapRounds != 2 {
		t.Fatalf("GapRounds = %d, want 2 (c missing in both)", tl.GapRounds)
	}

	// Round 1: b is not a straggler (uniform latencies); c's report
	// errored so it is excluded from straggler math but still a gap.
	if tl.Rounds[0].Straggler != "" {
		t.Fatalf("round 1 straggler = %q, want none", tl.Rounds[0].Straggler)
	}
	if len(tl.Stragglers) != 1 || tl.Stragglers[0].Node != "b" || tl.Stragglers[0].Rounds != 1 {
		t.Fatalf("straggler stats = %+v", tl.Stragglers)
	}
	if tl.Stragglers[0].Worst != ms(50) {
		t.Fatalf("straggler worst = %v, want 50ms", tl.Stragglers[0].Worst)
	}
}
