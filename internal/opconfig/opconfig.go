// Package opconfig loads operator configuration for the power-delivery
// daemon: which platform, which policy, the power limit, and the managed
// applications with their cores, shares or priorities — the file-based
// equivalent of the paper's "list of programs as input with their priority
// and shares" (Section 5).
package opconfig

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// App is one managed application entry.
type App struct {
	Name string `json:"name"`
	Core int    `json:"core"`

	// Shares is the proportional-share weight (share policies).
	Shares int `json:"shares,omitempty"`

	// Priority is "hp" or "lp" (priority policy).
	Priority string `json:"priority,omitempty"`

	// MaxFreqMHz optionally caps the application at a useful frequency.
	MaxFreqMHz int `json:"max_freq_mhz,omitempty"`
}

// Config is the operator's daemon configuration.
type Config struct {
	Platform   string  `json:"platform"`
	Policy     string  `json:"policy"` // frequency, performance, power, priority
	LimitWatts float64 `json:"limit_watts"`
	IntervalMS int     `json:"interval_ms,omitempty"`
	Apps       []App   `json:"apps"`
}

// Load reads and validates a configuration file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("opconfig: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Parse reads and validates a configuration document. Unknown fields are
// rejected so typos fail loudly.
func Parse(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("opconfig: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the configuration's coherence without building anything.
func (c Config) Validate() error {
	if _, err := platform.ByName(c.Platform); err != nil {
		return fmt.Errorf("opconfig: %w", err)
	}
	switch c.Policy {
	case "frequency", "performance", "power", "priority", "priority-shares":
	default:
		return fmt.Errorf("opconfig: unknown policy %q", c.Policy)
	}
	if c.LimitWatts <= 0 {
		return fmt.Errorf("opconfig: limit_watts must be positive")
	}
	if c.IntervalMS < 0 {
		return fmt.Errorf("opconfig: negative interval_ms")
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("opconfig: no apps")
	}
	for i, a := range c.Apps {
		if _, err := workload.ByName(a.Name); err != nil {
			return fmt.Errorf("opconfig: app %d: %w", i, err)
		}
		switch c.Policy {
		case "priority":
			if a.Priority != "hp" && a.Priority != "lp" {
				return fmt.Errorf("opconfig: app %q needs priority hp or lp", a.Name)
			}
		case "priority-shares":
			if a.Priority != "hp" && a.Priority != "lp" {
				return fmt.Errorf("opconfig: app %q needs priority hp or lp", a.Name)
			}
			if a.Shares <= 0 {
				return fmt.Errorf("opconfig: app %q needs positive shares for the %s policy", a.Name, c.Policy)
			}
		default:
			if a.Shares > 0 {
				break
			}
			return fmt.Errorf("opconfig: app %q needs positive shares for the %s policy", a.Name, c.Policy)
		}
		if a.MaxFreqMHz < 0 {
			return fmt.Errorf("opconfig: app %q has negative max_freq_mhz", a.Name)
		}
	}
	return nil
}

// Interval returns the control interval (the paper's 1 s by default).
func (c Config) Interval() time.Duration {
	if c.IntervalMS <= 0 {
		return time.Second
	}
	return time.Duration(c.IntervalMS) * time.Millisecond
}

// Limit returns the power limit.
func (c Config) Limit() units.Watts { return units.Watts(c.LimitWatts) }

// Build materialises the chip, app specs (with analytic standalone
// baselines for the performance policy), and the policy itself.
func (c Config) Build() (platform.Chip, []core.AppSpec, core.Policy, error) {
	chip, err := platform.ByName(c.Platform)
	if err != nil {
		return platform.Chip{}, nil, nil, err
	}
	specs := make([]core.AppSpec, len(c.Apps))
	for i, a := range c.Apps {
		p, err := workload.ByName(a.Name)
		if err != nil {
			return platform.Chip{}, nil, nil, err
		}
		specs[i] = core.AppSpec{
			Name:         p.Name,
			Core:         a.Core,
			Shares:       units.Shares(a.Shares),
			HighPriority: a.Priority == "hp",
			AVX:          p.AVX,
			MaxFreq:      units.Hertz(a.MaxFreqMHz) * units.MHz,
		}
		if c.Policy == "performance" {
			specs[i].BaselineIPS = p.IPS(chip.Freq.Ceiling(1, p.AVX))
		}
	}
	pol, err := PolicyFor(c.Policy, chip, specs, c.Limit())
	if err != nil {
		return platform.Chip{}, nil, nil, err
	}
	return chip, specs, pol, nil
}

// PolicyFor builds the named policy over chip and specs — the single
// by-name constructor shared by config loading, cmd/powerd's flags, and the
// control plane's live-reconfigure path. For the performance policy, specs
// missing a standalone baseline get the analytic one when their workload
// profile is known. The specs slice is not mutated.
func PolicyFor(name string, chip platform.Chip, specs []core.AppSpec, limit units.Watts) (core.Policy, error) {
	specs = append([]core.AppSpec(nil), specs...)
	if name == "performance" {
		for i := range specs {
			if specs[i].BaselineIPS > 0 {
				continue
			}
			if p, err := workload.ByName(specs[i].Name); err == nil {
				specs[i].BaselineIPS = p.IPS(chip.Freq.Ceiling(1, p.AVX))
			}
		}
	}
	switch name {
	case "frequency":
		return core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	case "performance":
		return core.NewPerformanceShares(chip, specs, core.ShareConfig{})
	case "power":
		return core.NewPowerShares(chip, specs, core.ShareConfig{})
	case "priority":
		return core.NewPriority(chip, specs, core.PriorityConfig{Limit: limit})
	case "priority-shares":
		return core.NewPriorityShares(chip, specs, core.PriorityConfig{Limit: limit})
	}
	return nil, fmt.Errorf("opconfig: unknown policy %q", name)
}
