// Package opconfig loads operator configuration for the power-delivery
// daemon: which platform, which policy, the power limit, and the managed
// applications with their cores, shares or priorities — the file-based
// equivalent of the paper's "list of programs as input with their priority
// and shares" (Section 5).
package opconfig

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/svc"
	"repro/internal/units"
	"repro/internal/workload"
)

// App is one managed application entry.
type App struct {
	Name string `json:"name"`
	Core int    `json:"core"`

	// Shares is the proportional-share weight (share policies).
	Shares int `json:"shares,omitempty"`

	// Priority is "hp" or "lp" (priority policy).
	Priority string `json:"priority,omitempty"`

	// MaxFreqMHz optionally caps the application at a useful frequency.
	MaxFreqMHz int `json:"max_freq_mhz,omitempty"`
}

// SLO is one per-service p99 latency objective. The service name must
// match a latency service fed to the daemon (and, for the slo-feedback
// policy, the app entries serving it).
type SLO struct {
	Service     string  `json:"service"`
	TargetP99MS float64 `json:"target_p99_ms"`

	// Load model for the materialised service, at most one of:
	// RatePerSec draws open-loop Poisson arrivals at a constant mean
	// rate, Trace replays a padtrace/1 arrival file open-loop, Users
	// runs a closed-loop population. All zero defaults to a closed loop
	// of 300 users (the paper's websearch population).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Trace      string  `json:"trace,omitempty"`
	Users      int     `json:"users,omitempty"`
}

// Config is the operator's daemon configuration.
type Config struct {
	Platform   string  `json:"platform"`
	Policy     string  `json:"policy"` // frequency, performance, power, priority, slo-feedback
	LimitWatts float64 `json:"limit_watts"`
	IntervalMS int     `json:"interval_ms,omitempty"`
	Apps       []App   `json:"apps"`

	// SLOs are the p99 objectives the daemon stamps onto service
	// telemetry. Required (non-empty) for the slo-feedback policy;
	// optional otherwise (targets then only annotate status output).
	SLOs []SLO `json:"slos,omitempty"`
}

// Load reads and validates a configuration file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("opconfig: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Parse reads and validates a configuration document. Unknown fields are
// rejected so typos fail loudly.
func Parse(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("opconfig: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the configuration's coherence without building anything.
func (c Config) Validate() error {
	if _, err := platform.ByName(c.Platform); err != nil {
		return fmt.Errorf("opconfig: %w", err)
	}
	switch c.Policy {
	case "frequency", "performance", "power", "priority", "priority-shares", "slo-feedback":
	default:
		return fmt.Errorf("opconfig: unknown policy %q", c.Policy)
	}
	for i, s := range c.SLOs {
		if s.Service == "" {
			return fmt.Errorf("opconfig: slo %d has no service name", i)
		}
		if s.TargetP99MS <= 0 {
			return fmt.Errorf("opconfig: slo for %q needs a positive target_p99_ms", s.Service)
		}
		for _, prev := range c.SLOs[:i] {
			if prev.Service == s.Service {
				return fmt.Errorf("opconfig: duplicate slo for service %q", s.Service)
			}
		}
		if s.RatePerSec < 0 {
			return fmt.Errorf("opconfig: slo for %q has negative rate_per_sec", s.Service)
		}
		if s.Users < 0 {
			return fmt.Errorf("opconfig: slo for %q has negative users", s.Service)
		}
		load := 0
		if s.RatePerSec > 0 {
			load++
		}
		if s.Trace != "" {
			load++
		}
		if s.Users > 0 {
			load++
		}
		if load > 1 {
			return fmt.Errorf("opconfig: slo for %q sets more than one of rate_per_sec, trace, users", s.Service)
		}
	}
	if c.Policy == "slo-feedback" && len(c.SLOs) == 0 {
		return fmt.Errorf("opconfig: the slo-feedback policy needs at least one slos entry")
	}
	if c.LimitWatts <= 0 {
		return fmt.Errorf("opconfig: limit_watts must be positive")
	}
	if c.IntervalMS < 0 {
		return fmt.Errorf("opconfig: negative interval_ms")
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("opconfig: no apps")
	}
	for i, a := range c.Apps {
		// An app serving a declared SLO is a latency service, not a batch
		// workload: its name identifies the service, so the workload
		// registry does not need to know it.
		if !c.hasSLO(a.Name) {
			if _, err := workload.ByName(a.Name); err != nil {
				return fmt.Errorf("opconfig: app %d: %w", i, err)
			}
		}
		switch c.Policy {
		case "priority":
			if a.Priority != "hp" && a.Priority != "lp" {
				return fmt.Errorf("opconfig: app %q needs priority hp or lp", a.Name)
			}
		case "priority-shares":
			if a.Priority != "hp" && a.Priority != "lp" {
				return fmt.Errorf("opconfig: app %q needs priority hp or lp", a.Name)
			}
			if a.Shares <= 0 {
				return fmt.Errorf("opconfig: app %q needs positive shares for the %s policy", a.Name, c.Policy)
			}
		default:
			if a.Shares > 0 {
				break
			}
			return fmt.Errorf("opconfig: app %q needs positive shares for the %s policy", a.Name, c.Policy)
		}
		if a.MaxFreqMHz < 0 {
			return fmt.Errorf("opconfig: app %q has negative max_freq_mhz", a.Name)
		}
	}
	return nil
}

// Interval returns the control interval (the paper's 1 s by default).
func (c Config) Interval() time.Duration {
	if c.IntervalMS <= 0 {
		return time.Second
	}
	return time.Duration(c.IntervalMS) * time.Millisecond
}

// Limit returns the power limit.
func (c Config) Limit() units.Watts { return units.Watts(c.LimitWatts) }

// hasSLO reports whether a service name carries a declared objective.
func (c Config) hasSLO(service string) bool {
	for _, s := range c.SLOs {
		if s.Service == service {
			return true
		}
	}
	return false
}

// SLOTargets converts the configured objectives to the daemon's typed
// form.
func (c Config) SLOTargets() []core.SLOTarget {
	if len(c.SLOs) == 0 {
		return nil
	}
	ts := make([]core.SLOTarget, len(c.SLOs))
	for i, s := range c.SLOs {
		ts[i] = core.SLOTarget{
			Service: s.Service,
			P99:     time.Duration(s.TargetP99MS * float64(time.Millisecond)),
		}
	}
	return ts
}

// BuildServices materialises one latency service per declared SLO,
// serving on the cores of the app entries that name it. Trace files are
// read here so a bad path fails at load time, not mid-run; seeds are
// positional so a run is reproducible from its config alone.
func (c Config) BuildServices() ([]svc.Config, error) {
	if len(c.SLOs) == 0 {
		return nil, nil
	}
	out := make([]svc.Config, 0, len(c.SLOs))
	for i, s := range c.SLOs {
		var cores []int
		for _, a := range c.Apps {
			if a.Name == s.Service {
				cores = append(cores, a.Core)
			}
		}
		if len(cores) == 0 {
			return nil, fmt.Errorf("opconfig: slo service %q has no app entries to serve on", s.Service)
		}
		sc := svc.Config{
			Name:  s.Service,
			Cores: cores,
			Seed:  int64(i + 1),
			SLO:   time.Duration(s.TargetP99MS * float64(time.Millisecond)),
		}
		switch {
		case s.RatePerSec > 0:
			sc.Arrivals = svc.OpenPoisson
			sc.Rate = svc.ConstantRate(s.RatePerSec)
		case s.Trace != "":
			f, err := os.Open(s.Trace)
			if err != nil {
				return nil, fmt.Errorf("opconfig: slo service %q: %w", s.Service, err)
			}
			arrivals, perr := svc.ParseTrace(f)
			f.Close()
			if perr != nil {
				return nil, fmt.Errorf("opconfig: slo service %q trace %s: %w", s.Service, s.Trace, perr)
			}
			sc.Arrivals = svc.OpenTrace
			sc.Trace = arrivals
		case s.Users > 0:
			sc.Arrivals = svc.Closed
			sc.Users = s.Users
		default:
			sc.Arrivals = svc.Closed
			sc.Users = 300
		}
		out = append(out, sc)
	}
	return out, nil
}

// Build materialises the chip, app specs (with analytic standalone
// baselines for the performance policy), and the policy itself.
func (c Config) Build() (platform.Chip, []core.AppSpec, core.Policy, error) {
	chip, err := platform.ByName(c.Platform)
	if err != nil {
		return platform.Chip{}, nil, nil, err
	}
	specs := make([]core.AppSpec, len(c.Apps))
	for i, a := range c.Apps {
		specs[i] = core.AppSpec{
			Name:         a.Name,
			Core:         a.Core,
			Shares:       units.Shares(a.Shares),
			HighPriority: a.Priority == "hp",
			MaxFreq:      units.Hertz(a.MaxFreqMHz) * units.MHz,
		}
		if c.hasSLO(a.Name) {
			// Latency-service entries have no workload profile; the SLO
			// feedback loop drives them from measured latency instead of
			// an analytic baseline.
			continue
		}
		p, err := workload.ByName(a.Name)
		if err != nil {
			return platform.Chip{}, nil, nil, err
		}
		specs[i].Name = p.Name
		specs[i].AVX = p.AVX
		if c.Policy == "performance" {
			specs[i].BaselineIPS = p.IPS(chip.Freq.Ceiling(1, p.AVX))
		}
	}
	pol, err := PolicyFor(c.Policy, chip, specs, c.Limit(), c.SLOTargets()...)
	if err != nil {
		return platform.Chip{}, nil, nil, err
	}
	return chip, specs, pol, nil
}

// PolicyFor builds the named policy over chip and specs — the single
// by-name constructor shared by config loading, cmd/powerd's flags, and the
// control plane's live-reconfigure path. For the performance policy, specs
// missing a standalone baseline get the analytic one when their workload
// profile is known. The optional trailing SLO targets parameterise the
// slo-feedback policy (which requires at least one) and are ignored by the
// others. The specs slice is not mutated.
func PolicyFor(name string, chip platform.Chip, specs []core.AppSpec, limit units.Watts, slos ...core.SLOTarget) (core.Policy, error) {
	specs = append([]core.AppSpec(nil), specs...)
	if name == "performance" {
		for i := range specs {
			if specs[i].BaselineIPS > 0 {
				continue
			}
			if p, err := workload.ByName(specs[i].Name); err == nil {
				specs[i].BaselineIPS = p.IPS(chip.Freq.Ceiling(1, p.AVX))
			}
		}
	}
	switch name {
	case "frequency":
		return core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	case "performance":
		return core.NewPerformanceShares(chip, specs, core.ShareConfig{})
	case "power":
		return core.NewPowerShares(chip, specs, core.ShareConfig{})
	case "priority":
		return core.NewPriority(chip, specs, core.PriorityConfig{Limit: limit})
	case "priority-shares":
		return core.NewPriorityShares(chip, specs, core.PriorityConfig{Limit: limit})
	case "slo-feedback":
		return core.NewSLOFeedback(chip, specs, core.SLOConfig{Targets: slos})
	}
	return nil, fmt.Errorf("opconfig: unknown policy %q", name)
}
