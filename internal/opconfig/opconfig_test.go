package opconfig

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/svc"
	"repro/internal/units"
)

const goodDoc = `{
	"platform": "skylake",
	"policy": "frequency",
	"limit_watts": 50,
	"interval_ms": 500,
	"apps": [
		{"name": "gcc", "core": 0, "shares": 90},
		{"name": "cam4", "core": 1, "shares": 10, "max_freq_mhz": 1700}
	]
}`

func TestParseGood(t *testing.T) {
	c, err := Parse(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if c.Interval() != 500*time.Millisecond {
		t.Errorf("Interval = %v", c.Interval())
	}
	if c.Limit() != 50 {
		t.Errorf("Limit = %v", c.Limit())
	}
	chip, specs, pol, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if chip.Vendor != "Intel" {
		t.Errorf("chip = %s", chip.Name)
	}
	if pol.Name() != "frequency-shares" {
		t.Errorf("policy = %s", pol.Name())
	}
	if specs[1].MaxFreq != 1700*units.MHz {
		t.Errorf("MaxFreq = %v", specs[1].MaxFreq)
	}
	if !specs[1].AVX {
		t.Error("cam4 AVX flag lost")
	}
}

func TestParseRejectsBadDocs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", "{nope"},
		{"unknown field", `{"platform":"skylake","policy":"frequency","limit_watts":50,"typo":1,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"bad platform", `{"platform":"sparc","policy":"frequency","limit_watts":50,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"bad policy", `{"platform":"skylake","policy":"magic","limit_watts":50,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"zero limit", `{"platform":"skylake","policy":"frequency","limit_watts":0,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"no apps", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[]}`},
		{"unknown app", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[{"name":"doom","core":0,"shares":1}]}`},
		{"missing shares", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[{"name":"gcc","core":0}]}`},
		{"bad priority", `{"platform":"skylake","policy":"priority","limit_watts":50,"apps":[{"name":"gcc","core":0,"priority":"vip"}]}`},
		{"negative cap", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[{"name":"gcc","core":0,"shares":1,"max_freq_mhz":-5}]}`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPriorityPolicyBuild(t *testing.T) {
	doc := `{
		"platform": "ryzen",
		"policy": "priority",
		"limit_watts": 40,
		"apps": [
			{"name": "cactusBSSN", "core": 0, "priority": "hp"},
			{"name": "leela", "core": 1, "priority": "lp"}
		]
	}`
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, specs, pol, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "priority" {
		t.Errorf("policy = %s", pol.Name())
	}
	if !specs[0].HighPriority || specs[1].HighPriority {
		t.Error("priority flags wrong")
	}
}

func TestPrioritySharesPolicyBuild(t *testing.T) {
	doc := `{
		"platform": "skylake",
		"policy": "priority-shares",
		"limit_watts": 45,
		"apps": [
			{"name": "cactusBSSN", "core": 0, "priority": "hp", "shares": 90},
			{"name": "leela", "core": 1, "priority": "lp", "shares": 30}
		]
	}`
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, _, pol, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "priority+shares" {
		t.Errorf("policy = %s", pol.Name())
	}
	// Missing shares is rejected for this policy.
	bad := strings.Replace(doc, `, "shares": 90`, "", 1)
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("priority-shares without shares accepted")
	}
}

func TestPerformancePolicyGetsBaselines(t *testing.T) {
	doc := strings.Replace(goodDoc, `"frequency"`, `"performance"`, 1)
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, specs, _, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.BaselineIPS <= 0 {
			t.Errorf("%s missing baseline", s.Name)
		}
	}
}

func TestPowerPolicyRejectedOnSkylakeAtBuild(t *testing.T) {
	doc := strings.Replace(goodDoc, `"frequency"`, `"power"`, 1)
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Build(); err == nil {
		t.Error("power shares on Skylake accepted at build")
	}
}

const sloDoc = `{
	"platform": "skylake",
	"policy": "slo-feedback",
	"limit_watts": 45,
	"apps": [
		{"name": "websearch", "core": 0, "shares": 50},
		{"name": "websearch", "core": 1, "shares": 50},
		{"name": "gcc", "core": 2, "shares": 50}
	],
	"slos": [
		{"service": "websearch", "target_p99_ms": 80}
	]
}`

func TestSLOFeedbackPolicyBuild(t *testing.T) {
	c, err := Parse(strings.NewReader(sloDoc))
	if err != nil {
		t.Fatal(err)
	}
	_, specs, pol, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "slo-feedback" {
		t.Errorf("policy = %s", pol.Name())
	}
	// Service entries keep their service name; batch apps resolve
	// through the workload registry as before.
	if specs[0].Name != "websearch" || specs[2].Name != "gcc" {
		t.Errorf("spec names = %s, %s", specs[0].Name, specs[2].Name)
	}
	ts := c.SLOTargets()
	if len(ts) != 1 || ts[0].Service != "websearch" || ts[0].P99 != 80*time.Millisecond {
		t.Errorf("SLOTargets = %+v", ts)
	}
}

func TestSLOConfigRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no slos for slo-feedback", strings.Replace(sloDoc, `"slos": [
		{"service": "websearch", "target_p99_ms": 80}
	]`, `"slos": []`, 1)},
		{"zero target", strings.Replace(sloDoc, `"target_p99_ms": 80`, `"target_p99_ms": 0`, 1)},
		{"empty service", strings.Replace(sloDoc, `"service": "websearch"`, `"service": ""`, 1)},
		{"duplicate slo", strings.Replace(sloDoc, `{"service": "websearch", "target_p99_ms": 80}`,
			`{"service": "websearch", "target_p99_ms": 80}, {"service": "websearch", "target_p99_ms": 90}`, 1)},
		{"service app without slo", strings.Replace(sloDoc, `"service": "websearch"`, `"service": "frontend"`, 1)},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// SLOs on a non-SLO policy are allowed: they annotate status output.
	doc := strings.Replace(goodDoc, `"apps"`, `"slos": [{"service": "gcc", "target_p99_ms": 10}], "apps"`, 1)
	if _, err := Parse(strings.NewReader(doc)); err != nil {
		t.Errorf("slos on frequency policy rejected: %v", err)
	}
}

func TestBuildServices(t *testing.T) {
	c, err := Parse(strings.NewReader(sloDoc))
	if err != nil {
		t.Fatal(err)
	}
	svcs, err := c.BuildServices()
	if err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 1 {
		t.Fatalf("services = %d, want 1", len(svcs))
	}
	s := svcs[0]
	if s.Name != "websearch" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.Cores) != 2 || s.Cores[0] != 0 || s.Cores[1] != 1 {
		t.Errorf("cores = %v, want [0 1]", s.Cores)
	}
	if s.SLO != 80*time.Millisecond {
		t.Errorf("advisory SLO = %v", s.SLO)
	}
	// No load knob: defaults to the paper's closed-loop 300 users.
	if s.Arrivals != svc.Closed || s.Users != 300 {
		t.Errorf("default load = %v/%d users, want closed/300", s.Arrivals, s.Users)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("default service invalid: %v", err)
	}
}

func TestBuildServicesLoadKnobs(t *testing.T) {
	withKnob := func(knob string) Config {
		doc := strings.Replace(sloDoc, `"target_p99_ms": 80`, `"target_p99_ms": 80, `+knob, 1)
		c, err := Parse(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%s: %v", knob, err)
		}
		return c
	}

	svcs, err := withKnob(`"rate_per_sec": 120`).BuildServices()
	if err != nil {
		t.Fatal(err)
	}
	if svcs[0].Arrivals != svc.OpenPoisson || svcs[0].Rate.Base != 120 {
		t.Errorf("rate knob: arrivals %v rate %v", svcs[0].Arrivals, svcs[0].Rate.Base)
	}

	svcs, err = withKnob(`"users": 40`).BuildServices()
	if err != nil {
		t.Fatal(err)
	}
	if svcs[0].Arrivals != svc.Closed || svcs[0].Users != 40 {
		t.Errorf("users knob: arrivals %v users %d", svcs[0].Arrivals, svcs[0].Users)
	}

	path := filepath.Join(t.TempDir(), "arrivals.pt")
	if err := os.WriteFile(path, []byte("padtrace/1\n10ms x3\n50ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	svcs, err = withKnob(`"trace": "` + path + `"`).BuildServices()
	if err != nil {
		t.Fatal(err)
	}
	if svcs[0].Arrivals != svc.OpenTrace || len(svcs[0].Trace) != 4 {
		t.Errorf("trace knob: arrivals %v len %d, want trace/4", svcs[0].Arrivals, len(svcs[0].Trace))
	}

	if _, err := withKnob(`"trace": "` + filepath.Join(t.TempDir(), "missing.pt") + `"`).BuildServices(); err == nil {
		t.Error("missing trace file accepted")
	}

	// Conflicting and negative load knobs fail validation at parse time.
	for _, knob := range []string{
		`"rate_per_sec": 120, "users": 40`,
		`"rate_per_sec": -1`,
		`"users": -3`,
	} {
		doc := strings.Replace(sloDoc, `"target_p99_ms": 80`, `"target_p99_ms": 80, `+knob, 1)
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("knob %s accepted", knob)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "powerd.json")
	if err := os.WriteFile(path, []byte(goodDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDefaultInterval(t *testing.T) {
	doc := strings.Replace(goodDoc, `"interval_ms": 500,`, "", 1)
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if c.Interval() != time.Second {
		t.Errorf("default interval = %v, want the paper's 1s", c.Interval())
	}
}
