package opconfig

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

const goodDoc = `{
	"platform": "skylake",
	"policy": "frequency",
	"limit_watts": 50,
	"interval_ms": 500,
	"apps": [
		{"name": "gcc", "core": 0, "shares": 90},
		{"name": "cam4", "core": 1, "shares": 10, "max_freq_mhz": 1700}
	]
}`

func TestParseGood(t *testing.T) {
	c, err := Parse(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if c.Interval() != 500*time.Millisecond {
		t.Errorf("Interval = %v", c.Interval())
	}
	if c.Limit() != 50 {
		t.Errorf("Limit = %v", c.Limit())
	}
	chip, specs, pol, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if chip.Vendor != "Intel" {
		t.Errorf("chip = %s", chip.Name)
	}
	if pol.Name() != "frequency-shares" {
		t.Errorf("policy = %s", pol.Name())
	}
	if specs[1].MaxFreq != 1700*units.MHz {
		t.Errorf("MaxFreq = %v", specs[1].MaxFreq)
	}
	if !specs[1].AVX {
		t.Error("cam4 AVX flag lost")
	}
}

func TestParseRejectsBadDocs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", "{nope"},
		{"unknown field", `{"platform":"skylake","policy":"frequency","limit_watts":50,"typo":1,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"bad platform", `{"platform":"sparc","policy":"frequency","limit_watts":50,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"bad policy", `{"platform":"skylake","policy":"magic","limit_watts":50,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"zero limit", `{"platform":"skylake","policy":"frequency","limit_watts":0,"apps":[{"name":"gcc","core":0,"shares":1}]}`},
		{"no apps", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[]}`},
		{"unknown app", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[{"name":"doom","core":0,"shares":1}]}`},
		{"missing shares", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[{"name":"gcc","core":0}]}`},
		{"bad priority", `{"platform":"skylake","policy":"priority","limit_watts":50,"apps":[{"name":"gcc","core":0,"priority":"vip"}]}`},
		{"negative cap", `{"platform":"skylake","policy":"frequency","limit_watts":50,"apps":[{"name":"gcc","core":0,"shares":1,"max_freq_mhz":-5}]}`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPriorityPolicyBuild(t *testing.T) {
	doc := `{
		"platform": "ryzen",
		"policy": "priority",
		"limit_watts": 40,
		"apps": [
			{"name": "cactusBSSN", "core": 0, "priority": "hp"},
			{"name": "leela", "core": 1, "priority": "lp"}
		]
	}`
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, specs, pol, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "priority" {
		t.Errorf("policy = %s", pol.Name())
	}
	if !specs[0].HighPriority || specs[1].HighPriority {
		t.Error("priority flags wrong")
	}
}

func TestPrioritySharesPolicyBuild(t *testing.T) {
	doc := `{
		"platform": "skylake",
		"policy": "priority-shares",
		"limit_watts": 45,
		"apps": [
			{"name": "cactusBSSN", "core": 0, "priority": "hp", "shares": 90},
			{"name": "leela", "core": 1, "priority": "lp", "shares": 30}
		]
	}`
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, _, pol, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "priority+shares" {
		t.Errorf("policy = %s", pol.Name())
	}
	// Missing shares is rejected for this policy.
	bad := strings.Replace(doc, `, "shares": 90`, "", 1)
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("priority-shares without shares accepted")
	}
}

func TestPerformancePolicyGetsBaselines(t *testing.T) {
	doc := strings.Replace(goodDoc, `"frequency"`, `"performance"`, 1)
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, specs, _, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if s.BaselineIPS <= 0 {
			t.Errorf("%s missing baseline", s.Name)
		}
	}
}

func TestPowerPolicyRejectedOnSkylakeAtBuild(t *testing.T) {
	doc := strings.Replace(goodDoc, `"frequency"`, `"power"`, 1)
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Build(); err == nil {
		t.Error("power shares on Skylake accepted at build")
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "powerd.json")
	if err := os.WriteFile(path, []byte(goodDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDefaultInterval(t *testing.T) {
	doc := strings.Replace(goodDoc, `"interval_ms": 500,`, "", 1)
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if c.Interval() != time.Second {
		t.Errorf("default interval = %v, want the paper's 1s", c.Interval())
	}
}
