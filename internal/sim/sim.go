// Package sim is the discrete-time simulation engine: it advances a Machine
// (one socket of a platform chip plus pinned workload instances) in fixed
// ticks, resolving each core's effective frequency from its P-state request,
// the RAPL cap, the AVX licence and the turbo grant, charging power and
// instructions, and exposing the whole state through the msr.Device
// interface so that the policy daemon interacts with the simulated machine
// exactly the way the paper's daemon interacted with silicon.
package sim

import (
	"fmt"
	"time"

	"repro/internal/cpu"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/rapl"
	"repro/internal/units"
	"repro/internal/workload"
)

// Option configures a Machine.
type Option func(*Machine)

// WithTick sets the simulation tick (default 1 ms).
func WithTick(dt time.Duration) Option {
	return func(m *Machine) { m.dt = dt }
}

// WithRAPLConfig overrides the RAPL controller configuration.
func WithRAPLConfig(cfg rapl.Config) Option {
	return func(m *Machine) { m.raplCfg = cfg }
}

// WithEnergyUnit sets the RAPL energy-status unit exponent (default 14,
// i.e. 61 µJ counts as on Skylake server parts).
func WithEnergyUnit(esu uint) Option {
	return func(m *Machine) { m.unit = msr.EnergyUnit{ESU: esu} }
}

// WithMetrics instruments the machine (and its RAPL limiter) on reg: tick
// counts, C-state sleep/wake transitions, and transitions of the
// constraint binding each core's effective frequency (turbo grant, AVX
// licence, RAPL cap). A nil registry disables instrumentation.
func WithMetrics(reg *metrics.Registry) Option {
	return func(m *Machine) { m.reg = reg }
}

// WithFlightRecorder attaches the flight recorder: the machine drives the
// recorder's clock from virtual time, taps every MSR access on its device,
// logs C-state sleep/wake and binding-constraint (turbo, AVX licence,
// RAPL cap) transitions, wires the RAPL limiter's throttle/release events,
// and contributes the machine description to the dump metadata. A nil
// recorder disables recording.
func WithFlightRecorder(rec *flight.Recorder) Option {
	return func(m *Machine) { m.flight = rec }
}

// Machine is one simulated socket.
type Machine struct {
	chip    platform.Chip
	cores   []*cpu.Core
	apps    []*workload.Instance // indexed by core; nil when unoccupied
	lastEff []units.Hertz        // effective frequency of the previous tick
	limiter *rapl.Limiter

	// thermalCap models a thermal excursion: a package-wide frequency
	// clamp the firmware imposes regardless of P-state requests, RAPL
	// state, or turbo grants. Zero means no excursion.
	thermalCap units.Hertz
	// offline marks cores that have died mid-run (hot-unplug, MCE): they
	// execute nothing and stay parked until brought back online.
	offline []bool

	clock   time.Duration
	dt      time.Duration
	raplCfg rapl.Config
	unit    msr.EnergyUnit
	// energySocket holds cumulative energy per RAPL domain: one entry per
	// socket (a single entry on single-socket chips). PkgEnergyStatus reads
	// on cpu i report i's socket domain, as on real multi-socket machines.
	energySocket []units.Joules
	energyCore   []units.Joules
	// activeSock is per-Step scratch for per-socket C0 occupancy: turbo
	// bins are a socket-local resource, so core i's grant depends only on
	// its own socket's active count.
	activeSock []int
	dev        *msr.SimDevice
	hooks      []func(dt time.Duration)
	idles      []coreIdle

	// Optional instrumentation; nil handles no-op.
	reg            *metrics.Registry
	flight         *flight.Recorder
	mTicks         *metrics.Counter
	mCStateTrans   *metrics.CounterVec
	mFreqConstr    *metrics.CounterVec
	lastConstraint []string // per core, last binding constraint observed
}

// coreIdle tracks one core's C-state machinery: the menu-style state chosen
// at idle entry (from an EWMA prediction of idle length), promotion to
// deeper states as the actual residency grows, and the exit-latency debt
// paid on wake.
type coreIdle struct {
	wasActive   bool
	idleSince   time.Duration
	state       int // index into chip.CStates; -1 while active or without a table
	predict     time.Duration
	wakePending time.Duration
	residency   []time.Duration
}

// New builds a machine for the chip with all cores idle at the nominal
// frequency.
func New(chip platform.Chip, opts ...Option) (*Machine, error) {
	if err := chip.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{
		chip:         chip,
		cores:        make([]*cpu.Core, chip.NumCores),
		apps:         make([]*workload.Instance, chip.NumCores),
		lastEff:      make([]units.Hertz, chip.NumCores),
		dt:           time.Millisecond,
		unit:         msr.EnergyUnit{ESU: 14},
		energySocket: make([]units.Joules, chip.Sockets()),
		energyCore:   make([]units.Joules, chip.NumCores),
		activeSock:   make([]int, chip.Sockets()),
		offline:      make([]bool, chip.NumCores),
	}
	for _, o := range opts {
		o(m)
	}
	if m.dt <= 0 {
		return nil, fmt.Errorf("sim: tick must be positive, got %v", m.dt)
	}
	m.idles = make([]coreIdle, chip.NumCores)
	for i := range m.cores {
		m.cores[i] = cpu.NewCore(i, chip.Freq.Nom)
		m.cores[i].Idle = true
		// Cores start idle-since-boot: deepest state, like real firmware
		// parks unused cores.
		m.idles[i].state = len(chip.CStates) - 1
		m.idles[i].residency = make([]time.Duration, len(chip.CStates))
	}
	var err error
	m.limiter, err = rapl.New(chip.Freq, m.raplCfg)
	if err != nil {
		return nil, err
	}
	if m.reg != nil {
		m.mTicks = m.reg.Counter("sim_ticks_total", "Simulation steps executed.")
		m.mCStateTrans = m.reg.CounterVec("sim_cstate_transitions_total",
			"Core C-state sleep/wake transitions.", "kind")
		m.mFreqConstr = m.reg.CounterVec("sim_freq_constraint_transitions_total",
			"Transitions of the constraint binding a core's effective frequency.", "constraint")
		m.limiter.Instrument(m.reg)
	}
	if m.reg != nil || m.flight != nil {
		m.lastConstraint = make([]string, chip.NumCores)
	}
	if m.flight != nil {
		m.flight.SetClock(m.Now)
		m.limiter.Flight(m.flight)
		m.flight.MergeMeta(flight.Meta{
			Chip:         chip.Name,
			NumCores:     chip.NumCores,
			TickNS:       m.dt.Nanoseconds(),
			NomHz:        float64(chip.Freq.Nom),
			ESU:          m.unit.ESU,
			PerCorePower: chip.PerCorePower,
		})
	}
	m.wireMSRs()
	if m.flight != nil {
		m.dev.SetRecorder(m.flight)
	}
	return m, nil
}

// Chip returns the machine's platform configuration.
func (m *Machine) Chip() platform.Chip { return m.chip }

// Now returns the virtual time elapsed.
func (m *Machine) Now() time.Duration { return m.clock }

// Tick returns the simulation tick.
func (m *Machine) Tick() time.Duration { return m.dt }

// Device returns the machine's MSR interface.
func (m *Machine) Device() msr.Device { return m.dev }

// Limiter returns the machine's RAPL controller.
func (m *Machine) Limiter() *rapl.Limiter { return m.limiter }

// Pin places an application instance on a core and wakes the core at the
// chip's nominal frequency. It fails if the core is occupied or out of
// range.
func (m *Machine) Pin(in *workload.Instance, core int) error {
	if core < 0 || core >= len(m.cores) {
		return fmt.Errorf("sim: core %d out of range [0,%d)", core, len(m.cores))
	}
	if m.apps[core] != nil {
		return fmt.Errorf("sim: core %d already runs %s", core, m.apps[core].Profile.Name)
	}
	if err := in.Profile.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	in.Pin = core
	m.apps[core] = in
	m.cores[core].Idle = false
	m.cores[core].Request = m.chip.Freq.Nom
	return nil
}

// Unpin removes the application from a core and idles the core.
func (m *Machine) Unpin(core int) {
	if core < 0 || core >= len(m.cores) {
		return
	}
	m.apps[core] = nil
	m.cores[core].Idle = true
}

// App returns the instance pinned to core, or nil.
func (m *Machine) App(core int) *workload.Instance {
	if core < 0 || core >= len(m.apps) {
		return nil
	}
	return m.apps[core]
}

// Apps returns all pinned instances in core order (nil-free).
func (m *Machine) Apps() []*workload.Instance {
	var out []*workload.Instance
	for _, a := range m.apps {
		if a != nil {
			out = append(out, a)
		}
	}
	return out
}

// SetRequest programs a core's P-state request, quantised to the chip's
// step. This is what the daemon's actuator ultimately calls (through the
// PERF_CTL MSR).
func (m *Machine) SetRequest(core int, f units.Hertz) error {
	if core < 0 || core >= len(m.cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	m.cores[core].Request = m.chip.Freq.Quantize(f)
	return nil
}

// Request reports a core's current P-state request.
func (m *Machine) Request(core int) units.Hertz { return m.cores[core].Request }

// SetIdle forces a core in or out of a deep C-state. Idling a core that
// hosts an application suspends the application (the paper's priority
// policy starves low-priority applications this way). Offline cores cannot
// be woken.
func (m *Machine) SetIdle(core int, idle bool) error {
	if core < 0 || core >= len(m.cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	if !idle && m.offline[core] {
		return fmt.Errorf("sim: core %d is offline", core)
	}
	if !idle && m.apps[core] == nil {
		return fmt.Errorf("sim: core %d has no application to wake", core)
	}
	m.cores[core].Idle = idle
	return nil
}

// Idle reports whether a core is parked.
func (m *Machine) Idle(core int) bool { return m.cores[core].Idle }

// SetThermalCap imposes (or, with zero, lifts) a package-wide thermal
// frequency clamp: every core's effective frequency is limited to f no
// matter what is requested or granted, the way a thermal excursion forces
// an abrupt frequency collapse on real silicon.
func (m *Machine) SetThermalCap(f units.Hertz) {
	if f < 0 {
		f = 0
	}
	m.thermalCap = f
}

// ThermalCap reports the active thermal clamp (0 when none).
func (m *Machine) ThermalCap() units.Hertz { return m.thermalCap }

// SetOffline takes a core out of (or returns it to) service mid-run. An
// offline core executes nothing — it behaves like a dead core — and
// SetIdle cannot wake it. Bringing a core back online resumes its pinned
// application, if any.
func (m *Machine) SetOffline(core int, off bool) error {
	if core < 0 || core >= len(m.cores) {
		return fmt.Errorf("sim: core %d out of range", core)
	}
	m.offline[core] = off
	if off {
		m.cores[core].Idle = true
	} else if m.apps[core] != nil {
		m.cores[core].Idle = false
	}
	return nil
}

// Offline reports whether a core is out of service.
func (m *Machine) Offline(core int) bool {
	if core < 0 || core >= len(m.offline) {
		return false
	}
	return m.offline[core]
}

// SetPowerLimit programs the RAPL package limit (zero disables). On chips
// without a documented hardware limiter this still drives the simulated
// limiter; callers modelling the paper's Ryzen setup simply leave it at
// zero and enforce limits in the daemon instead.
func (m *Machine) SetPowerLimit(w units.Watts) { m.limiter.SetLimit(w) }

// ActiveCores counts cores currently in C0: awake and, for duty-cycled
// workloads, inside the executing window.
func (m *Machine) ActiveCores() int {
	n := 0
	for _, s := range m.fillActiveSock() {
		n += s
	}
	return n
}

// fillActiveSock recounts C0 occupancy per socket into the preallocated
// scratch and returns it. Turbo occupancy is socket-local: the grant for
// core i is computed against its own socket's count only.
func (m *Machine) fillActiveSock() []int {
	for s := range m.activeSock {
		m.activeSock[s] = 0
	}
	cps := m.chip.CoresPerSocket()
	for i, c := range m.cores {
		if c.Idle || m.offline[i] {
			continue
		}
		if a := m.apps[i]; a != nil && !a.DutyOn() {
			continue
		}
		m.activeSock[i/cps]++
	}
	return m.activeSock
}

// EffectiveFreq reports the frequency a core ran at during the last tick.
func (m *Machine) EffectiveFreq(core int) units.Hertz { return m.lastEff[core] }

// Counters returns a core's architectural counter snapshot.
func (m *Machine) Counters(core int) cpu.Counters { return m.cores[core].Counters() }

// PackageEnergy returns cumulative package energy, summed over sockets.
func (m *Machine) PackageEnergy() units.Joules {
	var sum units.Joules
	for _, e := range m.energySocket {
		sum += e
	}
	return sum
}

// SocketEnergy returns the cumulative energy of one socket's RAPL domain.
func (m *Machine) SocketEnergy(socket int) units.Joules {
	if socket < 0 || socket >= len(m.energySocket) {
		return 0
	}
	return m.energySocket[socket]
}

// CoreEnergy returns cumulative energy of one core.
func (m *Machine) CoreEnergy(core int) units.Joules { return m.energyCore[core] }

// PackagePower computes the instantaneous package power for the machine's
// current state (same calculation the next Step will charge).
func (m *Machine) PackagePower() units.Watts {
	act := m.fillActiveSock()
	cps := m.chip.CoresPerSocket()
	var total units.Watts
	for i := range m.cores {
		total += m.corePowerAt(i, m.effective(i, act[i/cps]))
	}
	return total + m.chip.Power.UncorePower*units.Watts(m.chip.Sockets())
}

// OnTick registers a hook invoked after every simulation step. Hooks run in
// registration order; they may mutate machine state (the websearch latency
// model and the policy daemon both attach here).
func (m *Machine) OnTick(fn func(dt time.Duration)) { m.hooks = append(m.hooks, fn) }

// effective resolves the frequency core i would run at now given active
// C0 core count.
func (m *Machine) effective(i int, active int) units.Hertz {
	c := m.cores[i]
	if c.Idle || m.offline[i] {
		return 0
	}
	avx := false
	if a := m.apps[i]; a != nil {
		if !a.DutyOn() {
			// Off-duty interactive workload: the core sits in a C-state.
			return 0
		}
		avx = a.Profile.AVX
	}
	f := m.chip.Freq.Effective(c.Request, m.limiter.Cap(), active, avx)
	if m.thermalCap > 0 && f > m.thermalCap {
		// A thermal clamp is not bound to P-state steps: the hardware
		// drops to whatever frequency the excursion dictates.
		f = m.thermalCap
	}
	return f
}

// corePowerAt returns the instantaneous draw of core i at frequency f.
func (m *Machine) corePowerAt(i int, f units.Hertz) units.Watts {
	c := m.cores[i]
	if c.Idle || f <= 0 {
		return m.idlePower(i)
	}
	activity := 1.0
	if a := m.apps[i]; a != nil {
		activity = a.CurrentActivity()
	}
	return m.chip.Power.CorePower(f, activity)
}

// idlePower returns the residual draw of an idle core: the resident
// C-state's power, or the flat model value on chips without a table.
func (m *Machine) idlePower(i int) units.Watts {
	if s := m.idles[i].state; s >= 0 && s < len(m.chip.CStates) {
		return m.chip.CStates[s].Power
	}
	return m.chip.Power.IdleCorePower
}

// CurrentCState reports the index (into Chip().CStates) of the core's
// resident idle state, or -1 while active or without a table.
func (m *Machine) CurrentCState(core int) int { return m.idles[core].state }

// CStateResidency reports per-state idle residency of a core, aligned with
// Chip().CStates.
func (m *Machine) CStateResidency(core int) []time.Duration {
	return append([]time.Duration(nil), m.idles[core].residency...)
}

// stepIdle advances core i's C-state machinery for a tick in which the
// core's activity is activeNow, returning the wake-latency debt to charge
// against this tick's execution.
func (m *Machine) stepIdle(i int, activeNow bool, dt time.Duration) time.Duration {
	id := &m.idles[i]
	table := m.chip.CStates
	switch {
	case activeNow && !id.wasActive:
		// Wake: pay the resident state's exit latency and update the
		// idle-length prediction (EWMA, menu-governor style).
		if id.state >= 0 && id.state < len(table) {
			id.wakePending = table[id.state].ExitLatency
		}
		idleLen := m.clock - id.idleSince
		id.predict = (id.predict*7 + idleLen*3) / 10
		m.flight.Record(flight.Event{
			Kind: flight.KindCStateWake, Source: flight.SourceSim, Core: int16(i),
			Arg: uint32(id.state + 1), Value: uint64(id.wakePending),
		})
		id.state = -1
		m.mCStateTrans.With("wake").Inc()
	case !activeNow && id.wasActive:
		// Sleep: menu selection on the predicted idle length.
		id.state = cpu.SelectCState(table, id.predict)
		id.idleSince = m.clock
		m.flight.Record(flight.Event{
			Kind: flight.KindCStateSleep, Source: flight.SourceSim, Core: int16(i),
			Value: uint64(id.state),
		})
		m.mCStateTrans.With("sleep").Inc()
	}
	if !activeNow && id.state >= 0 && id.state < len(table) {
		// Residency promotion: once the core has provably idled past a
		// deeper state's target residency, move down.
		for id.state+1 < len(table) &&
			m.clock-id.idleSince >= table[id.state+1].TargetResidency {
			id.state++
		}
		id.residency[id.state] += dt
	}
	id.wasActive = activeNow
	debt := id.wakePending
	if debt > dt {
		debt = dt
	}
	id.wakePending -= debt
	return debt
}

// constraintFor classifies what bound core i's effective frequency at the
// given occupancy: the OS request, the RAPL cap, the AVX licence, or the
// turbo grant. Idle (or off-duty) cores report "idle".
func (m *Machine) constraintFor(i, active int) string {
	c := m.cores[i]
	if c.Idle || m.offline[i] {
		return "idle"
	}
	a := m.apps[i]
	if a != nil && !a.DutyOn() {
		return "idle"
	}
	avx := a != nil && a.Profile.AVX
	f := m.chip.Freq.Quantize(c.Request)
	constraint := "request"
	if cap := m.limiter.Cap(); cap > 0 && cap < f {
		f = cap
		constraint = "rapl-cap"
	}
	if ceil := m.chip.Freq.Ceiling(active, avx); ceil < f {
		f = ceil
		if avx && ceil < m.chip.Freq.Ceiling(active, false) {
			constraint = "avx-licence"
		} else {
			constraint = "turbo"
		}
	}
	if m.thermalCap > 0 && m.thermalCap < f {
		constraint = "thermal"
	}
	return constraint
}

// Step advances the machine one tick.
func (m *Machine) Step() {
	dt := m.dt
	act := m.fillActiveSock()
	cps := m.chip.CoresPerSocket()
	m.mTicks.Inc()
	var pkg units.Watts
	var sockPower units.Watts
	sock := 0
	for i, c := range m.cores {
		if i/cps != sock {
			// Socket boundary: close out the previous socket's domain.
			sockPower += m.chip.Power.UncorePower
			m.energySocket[sock] += sockPower.Energy(dt)
			pkg += sockPower
			sockPower = 0
			sock = i / cps
		}
		active := act[sock]
		eff := m.effective(i, active)
		if m.lastConstraint != nil {
			if constr := m.constraintFor(i, active); constr != m.lastConstraint[i] {
				m.lastConstraint[i] = constr
				if constr != "idle" {
					m.mFreqConstr.With(constr).Inc()
					m.flight.Record(flight.Event{
						Kind: flight.KindConstraint, Source: flight.SourceSim,
						Core: int16(i), Arg: flight.ConstraintCode(constr),
					})
				}
			}
		}
		debt := m.stepIdle(i, eff > 0, dt)
		if debt > 0 && eff > 0 {
			// The wake exit latency eats into this tick's execution: model
			// it as a proportionally slower tick (zero if the whole tick is
			// consumed by the exit).
			eff = units.Hertz(float64(eff) * (1 - float64(debt)/float64(dt)))
		}
		m.lastEff[i] = eff
		p := m.corePowerAt(i, eff)
		sockPower += p
		e := p.Energy(dt)
		var instr float64
		if a := m.apps[i]; a != nil && !c.Idle {
			instr = a.Advance(eff, dt)
		}
		c.Account(eff, m.chip.Freq.Nom, dt, instr, e)
		m.energyCore[i] += e
	}
	sockPower += m.chip.Power.UncorePower
	m.energySocket[sock] += sockPower.Energy(dt)
	pkg += sockPower
	m.limiter.Observe(pkg, dt)
	m.clock += dt
	for _, h := range m.hooks {
		h(dt)
	}
}

// Run advances the machine for a duration of virtual time.
func (m *Machine) Run(d time.Duration) {
	end := m.clock + d
	for m.clock < end {
		m.Step()
	}
}

// RunUntil advances until cond reports true or max virtual time elapses,
// returning the virtual time spent and whether the condition was met.
func (m *Machine) RunUntil(cond func() bool, max time.Duration) (time.Duration, bool) {
	start := m.clock
	for m.clock-start < max {
		if cond() {
			return m.clock - start, true
		}
		m.Step()
	}
	return m.clock - start, cond()
}

// wireMSRs connects the architectural registers to machine state.
func (m *Machine) wireMSRs() {
	d := msr.NewSimDevice()
	checkCPU := func(cpu int) error {
		if cpu < 0 || cpu >= len(m.cores) {
			return fmt.Errorf("sim: cpu %d out of range", cpu)
		}
		return nil
	}
	d.OnRead(msr.IA32Aperf, func(cpu int) (uint64, error) {
		if err := checkCPU(cpu); err != nil {
			return 0, err
		}
		return uint64(m.cores[cpu].Counters().APERF), nil
	})
	d.OnRead(msr.IA32Mperf, func(cpu int) (uint64, error) {
		if err := checkCPU(cpu); err != nil {
			return 0, err
		}
		return uint64(m.cores[cpu].Counters().MPERF), nil
	})
	d.OnRead(msr.IA32FixedCtr0, func(cpu int) (uint64, error) {
		if err := checkCPU(cpu); err != nil {
			return 0, err
		}
		return uint64(m.cores[cpu].Counters().Instr), nil
	})
	d.OnRead(msr.IA32PerfCtl, func(cpu int) (uint64, error) {
		if err := checkCPU(cpu); err != nil {
			return 0, err
		}
		return msr.EncodePerfCtl(m.cores[cpu].Request, m.chip.Freq.Step), nil
	})
	d.OnWrite(msr.IA32PerfCtl, func(cpu int, val uint64) error {
		if err := checkCPU(cpu); err != nil {
			return err
		}
		return m.SetRequest(cpu, msr.DecodePerfCtl(val, m.chip.Freq.Step))
	})
	d.OnRead(msr.IA32PerfStatus, func(cpu int) (uint64, error) {
		if err := checkCPU(cpu); err != nil {
			return 0, err
		}
		return msr.EncodePerfCtl(m.lastEff[cpu], m.chip.Freq.Step), nil
	})
	d.OnRead(msr.RAPLPowerUnit, func(int) (uint64, error) {
		return msr.EncodePowerUnit(m.unit), nil
	})
	d.OnRead(msr.PkgEnergyStatus, func(cpu int) (uint64, error) {
		// The package energy domain is per-socket: a read through cpu i
		// reports i's socket counter, as on real multi-socket machines
		// (single-socket chips have exactly one domain, so any cpu works).
		return m.unit.ToCounts(m.energySocket[m.chip.SocketOf(cpu)]), nil
	})
	d.OnRead(msr.PP0EnergyStatus, func(cpu int) (uint64, error) {
		if err := checkCPU(cpu); err != nil {
			return 0, err
		}
		if m.chip.PerCorePower {
			return m.unit.ToCounts(m.energyCore[cpu]), nil
		}
		// Without per-core measurement the PP0 domain reports the sum of
		// the addressed CPU's socket cores, as on Skylake.
		cps := m.chip.CoresPerSocket()
		base := m.chip.SocketOf(cpu) * cps
		var sum units.Joules
		for _, e := range m.energyCore[base : base+cps] {
			sum += e
		}
		return m.unit.ToCounts(sum), nil
	})
	d.OnRead(msr.PkgPowerLimit, func(int) (uint64, error) {
		return msr.EncodePowerLimit(m.limiter.Limit(), m.limiter.Limit() > 0), nil
	})
	d.OnWrite(msr.PkgPowerLimit, func(_ int, val uint64) error {
		if !m.chip.HardwareRAPLLimit {
			return fmt.Errorf("sim: %s has no documented RAPL limit interface", m.chip.Name)
		}
		w, enable := msr.DecodePowerLimit(val)
		if !enable {
			w = 0
		}
		m.SetPowerLimit(w.Clamp(0, m.chip.RAPLMax))
		return nil
	})
	m.dev = d
}
