package sim

import (
	"testing"
	"time"

	"repro/internal/msr"
	"repro/internal/platform"
)

// TestPerSocketEnergyDomains loads one socket of a two-socket package
// and checks the RAPL domains stay separate: the busy socket accumulates
// more energy than the idle one, the package total is their sum, and the
// energy MSR read through a CPU reports that CPU's own socket domain.
func TestPerSocketEnergyDomains(t *testing.T) {
	chip := platform.MultiSocket(platform.Skylake(), 2)
	m, err := New(chip)
	if err != nil {
		t.Fatal(err)
	}
	cps := chip.CoresPerSocket()
	// All work on socket 0; socket 1 idles (uncore + idle core power only).
	for i := 0; i < cps; i++ {
		pin(t, m, "gcc", i)
	}
	m.Run(100 * time.Millisecond)

	e0, e1 := m.SocketEnergy(0), m.SocketEnergy(1)
	if e0 <= 0 || e1 <= 0 {
		t.Fatalf("socket energy: %v, %v; both domains must accumulate", e0, e1)
	}
	if e0 <= e1 {
		t.Fatalf("busy socket %v <= idle socket %v", e0, e1)
	}
	if got, want := m.PackageEnergy(), e0+e1; got != want {
		t.Fatalf("package energy %v != socket sum %v", got, want)
	}
	if m.SocketEnergy(-1) != 0 || m.SocketEnergy(2) != 0 {
		t.Error("out-of-range socket energy is nonzero")
	}

	// The MSR view mirrors the domains: cpu 0 reads socket 0's counter,
	// a cpu on the second socket reads socket 1's, and they differ.
	dev := m.Device()
	c0, err := dev.Read(0, msr.PkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := dev.Read(cps, msr.PkgEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if c0 == c1 {
		t.Fatalf("energy MSR identical across sockets (%d); domains are shared", c0)
	}
	if c0 <= c1 {
		t.Fatalf("busy socket counter %d <= idle socket counter %d", c0, c1)
	}
}
