package sim

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// interactiveProfile returns a duty-cycled workload with the given on
// fraction and period.
func interactiveProfile(duty float64, period time.Duration) workload.Profile {
	p := workload.MustByName("gcc")
	p.Phases = nil
	p.DutyCycle = duty
	p.DutyPeriod = period
	return p
}

func TestBootIdleCoresInDeepestState(t *testing.T) {
	m := newSkylake(t)
	deepest := len(m.Chip().CStates) - 1
	for i := 0; i < m.Chip().NumCores; i++ {
		if got := m.CurrentCState(i); got != deepest {
			t.Errorf("core %d boots in state %d, want %d", i, got, deepest)
		}
	}
	// Deepest state power equals the legacy flat idle power, so the idle
	// package power is unchanged.
	chip := m.Chip()
	if chip.CStates[deepest].Power != chip.Power.IdleCorePower {
		t.Errorf("deepest state power %v != flat idle power %v",
			chip.CStates[deepest].Power, chip.Power.IdleCorePower)
	}
}

func TestActiveCoreReportsNoCState(t *testing.T) {
	m := newSkylake(t)
	pin(t, m, "gcc", 0)
	m.Step()
	if got := m.CurrentCState(0); got != -1 {
		t.Errorf("active core C-state = %d, want -1", got)
	}
}

func TestResidencyPromotion(t *testing.T) {
	// A duty-cycled core with long idle windows must promote through the
	// table and spend most of its idle time in C6.
	m, err := New(platform.Skylake(), WithTick(50*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	p := interactiveProfile(0.3, 10*time.Millisecond) // 7 ms idle windows
	if err := m.Pin(workload.NewInstance(p), 0); err != nil {
		t.Fatal(err)
	}
	m.Run(200 * time.Millisecond)
	res := m.CStateResidency(0)
	if len(res) != 3 {
		t.Fatalf("residency entries = %d", len(res))
	}
	total := res[0] + res[1] + res[2]
	if total <= 0 {
		t.Fatal("no idle residency recorded")
	}
	if float64(res[2])/float64(total) < 0.8 {
		t.Errorf("C6 residency fraction = %.2f, want dominant (res=%v)",
			float64(res[2])/float64(total), res)
	}
	// The shallow states still see entry time before promotion.
	if res[0] == 0 {
		t.Error("C1 never visited on idle entry")
	}
}

func TestShortIdleStaysShallow(t *testing.T) {
	// Idle windows shorter than C6's 400 us target residency must not
	// reach C6.
	m, err := New(platform.Skylake(), WithTick(10*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	p := interactiveProfile(0.5, 400*time.Microsecond) // 200 us idle windows
	if err := m.Pin(workload.NewInstance(p), 0); err != nil {
		t.Fatal(err)
	}
	// Let the boot-idle history wash out, then measure.
	m.Run(10 * time.Millisecond)
	before := m.CStateResidency(0)
	m.Run(10 * time.Millisecond)
	after := m.CStateResidency(0)
	if d := after[2] - before[2]; d != 0 {
		t.Errorf("C6 gained %v residency with 200 us idle windows", d)
	}
	if d := (after[0] + after[1]) - (before[0] + before[1]); d <= 0 {
		t.Error("shallow states gained no residency")
	}
}

// Wake latency must cost real work: with very short duty periods, a chip
// whose C6 exit costs 133 us loses a measurable instruction fraction.
func TestWakeLatencyCostsInstructions(t *testing.T) {
	run := func(period time.Duration) float64 {
		m, err := New(platform.Skylake(), WithTick(100*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		p := interactiveProfile(0.5, period)
		if err := m.Pin(workload.NewInstance(p), 0); err != nil {
			t.Fatal(err)
		}
		if err := m.SetRequest(0, 2*units.GHz); err != nil {
			t.Fatal(err)
		}
		m.Run(time.Second)
		return m.Counters(0).Instr
	}
	// Same total on-time (50%), but 4 ms periods wake 10x more often than
	// 40 ms periods, paying 10x the exit latency.
	frequentWakes := run(4 * time.Millisecond)
	rareWakes := run(40 * time.Millisecond)
	if frequentWakes >= rareWakes {
		t.Errorf("frequent wakes retired %.4g, rare wakes %.4g; wake latency has no cost",
			frequentWakes, rareWakes)
	}
	// The loss should be on the order of exitLatency/period, not huge.
	ratio := frequentWakes / rareWakes
	if ratio < 0.85 {
		t.Errorf("wake cost implausibly large: ratio %.3f", ratio)
	}
}

// Deep idle saves power versus shallow idle for the same duty cycle.
func TestDeepIdleSavesEnergy(t *testing.T) {
	// Long idle windows reach C6 (0.10 W); short ones sit in C1/C1E
	// (0.8/0.4 W). Same 30% on-time.
	run := func(period time.Duration) units.Joules {
		m, err := New(platform.Skylake(), WithTick(50*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		p := interactiveProfile(0.3, period)
		if err := m.Pin(workload.NewInstance(p), 0); err != nil {
			t.Fatal(err)
		}
		if err := m.SetRequest(0, 2*units.GHz); err != nil {
			t.Fatal(err)
		}
		m.Run(500 * time.Millisecond)
		return m.CoreEnergy(0)
	}
	deep := run(20 * time.Millisecond)     // 14 ms idles: C6
	shallow := run(500 * time.Microsecond) // 350 us idles: C1E at best
	if deep >= shallow {
		t.Errorf("deep idle energy %v not below shallow idle %v", deep, shallow)
	}
}
