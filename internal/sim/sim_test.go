package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func newSkylake(t *testing.T, opts ...Option) *Machine {
	t.Helper()
	m, err := New(platform.Skylake(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newRyzen(t *testing.T, opts ...Option) *Machine {
	t.Helper()
	m, err := New(platform.Ryzen(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func pin(t *testing.T, m *Machine, name string, core int) *workload.Instance {
	t.Helper()
	in := workload.NewInstance(workload.MustByName(name))
	if err := m.Pin(in, core); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := platform.Skylake()
	bad.NumCores = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid chip accepted")
	}
	if _, err := New(platform.Skylake(), WithTick(-time.Second)); err == nil {
		t.Error("negative tick accepted")
	}
}

func TestPinErrors(t *testing.T) {
	m := newSkylake(t)
	in := workload.NewInstance(workload.MustByName("gcc"))
	if err := m.Pin(in, -1); err == nil {
		t.Error("negative core accepted")
	}
	if err := m.Pin(in, 10); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := m.Pin(in, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(workload.NewInstance(workload.MustByName("leela")), 0); err == nil {
		t.Error("double pin accepted")
	}
	if err := m.Pin(workload.NewInstance(workload.Profile{}), 1); err == nil {
		t.Error("invalid profile accepted")
	}
	if got := m.App(0); got != in {
		t.Error("App(0) mismatch")
	}
	if got := m.App(99); got != nil {
		t.Error("App out of range should be nil")
	}
	if n := len(m.Apps()); n != 1 {
		t.Errorf("Apps() = %d entries", n)
	}
}

func TestUnpinIdlesCore(t *testing.T) {
	m := newSkylake(t)
	pin(t, m, "gcc", 3)
	if m.Idle(3) {
		t.Fatal("pinned core should be awake")
	}
	m.Unpin(3)
	if !m.Idle(3) || m.App(3) != nil {
		t.Error("unpin did not idle core")
	}
	m.Unpin(-1) // must not panic
}

func TestSetIdleSemantics(t *testing.T) {
	m := newSkylake(t)
	pin(t, m, "gcc", 0)
	if err := m.SetIdle(0, true); err != nil {
		t.Fatal(err)
	}
	if m.ActiveCores() != 0 {
		t.Error("idled core still active")
	}
	if err := m.SetIdle(0, false); err != nil {
		t.Fatal(err)
	}
	if err := m.SetIdle(5, false); err == nil {
		t.Error("waking an empty core should fail")
	}
	if err := m.SetIdle(99, true); err == nil {
		t.Error("out of range accepted")
	}
}

func TestClockAdvances(t *testing.T) {
	m := newSkylake(t, WithTick(2*time.Millisecond))
	m.Run(100 * time.Millisecond)
	if m.Now() != 100*time.Millisecond {
		t.Errorf("Now = %v", m.Now())
	}
	if m.Tick() != 2*time.Millisecond {
		t.Errorf("Tick = %v", m.Tick())
	}
}

func TestIdleMachineDrawsOnlyStaticPower(t *testing.T) {
	m := newSkylake(t)
	chip := m.Chip()
	want := chip.Power.UncorePower + units.Watts(chip.NumCores)*chip.Power.IdleCorePower
	if got := m.PackagePower(); math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("idle power = %v, want %v", got, want)
	}
	m.Run(time.Second)
	if got := m.PackageEnergy(); math.Abs(float64(got)-float64(want)) > 1e-6 {
		t.Errorf("idle energy over 1s = %v, want %v", got, want)
	}
}

func TestTurboGrantDependsOnOccupancy(t *testing.T) {
	m := newSkylake(t)
	chip := m.Chip()
	// One core, non-AVX, requesting max: gets single-core turbo.
	pin(t, m, "gcc", 0)
	if err := m.SetRequest(0, chip.Freq.Max()); err != nil {
		t.Fatal(err)
	}
	m.Step() // first tick pays the C6 wake latency
	m.Step()
	if got := m.EffectiveFreq(0); got != 3000*units.MHz {
		t.Errorf("single-core turbo = %v, want 3 GHz", got)
	}
	// Fill all cores: all-core bin applies.
	for i := 1; i < chip.NumCores; i++ {
		pin(t, m, "gcc", i)
		if err := m.SetRequest(i, chip.Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	m.Step()
	m.Step()
	if got := m.EffectiveFreq(0); got != 2500*units.MHz {
		t.Errorf("all-core frequency = %v, want 2.5 GHz", got)
	}
}

func TestAVXLicenceCapsEffectiveFreq(t *testing.T) {
	m := newSkylake(t)
	for i := 0; i < 10; i++ {
		name := "gcc"
		if i >= 5 {
			name = "cam4"
		}
		pin(t, m, name, i)
		if err := m.SetRequest(i, m.Chip().Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	m.Step() // first tick pays the C6 wake latency
	m.Step()
	if got := m.EffectiveFreq(0); got != 2500*units.MHz {
		t.Errorf("gcc core = %v, want 2.5 GHz", got)
	}
	if got := m.EffectiveFreq(5); got != 1700*units.MHz {
		t.Errorf("cam4 core = %v, want AVX cap 1.7 GHz", got)
	}
}

func TestRAPLClosedLoopOnMachine(t *testing.T) {
	m := newSkylake(t)
	for i := 0; i < 10; i++ {
		pin(t, m, "gcc", i)
		if err := m.SetRequest(i, m.Chip().Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPowerLimit(50)
	m.Run(2 * time.Second)
	if got := m.PackagePower(); got > 50*1.02 {
		t.Errorf("settled package power %v exceeds 50 W", got)
	}
	if m.EffectiveFreq(0) >= 2500*units.MHz {
		t.Error("RAPL never throttled")
	}
	// Average over the last second must also respect the limit.
	e0 := m.PackageEnergy()
	m.Run(time.Second)
	avg := (m.PackageEnergy() - e0).Power(time.Second)
	if avg > 50*1.02 {
		t.Errorf("1s average %v exceeds limit", avg)
	}
}

func TestInstructionsMatchWorkloadModel(t *testing.T) {
	m := newSkylake(t)
	in := pin(t, m, "exchange2", 0)
	if err := m.SetRequest(0, 2000*units.MHz); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	want := in.Profile.IPS(2000 * units.MHz)
	got := m.Counters(0).Instr
	// The first tick pays the C6 wake latency (133 us), so allow that
	// fraction of slack.
	if math.Abs(got-want)/want > 2e-4 {
		t.Errorf("instructions = %g, want %g", got, want)
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := newRyzen(t)
	pin(t, m, "cactusBSSN", 0)
	if err := m.SetRequest(0, 3000*units.MHz); err != nil {
		t.Fatal(err)
	}
	p := m.PackagePower()
	m.Run(time.Second)
	// Power is constant here (no RAPL, fixed phase would vary slightly:
	// cactusBSSN has phases, so allow 10%).
	if math.Abs(float64(m.PackageEnergy())-float64(p)) > 0.1*float64(p) {
		t.Errorf("package energy %v vs initial power %v", m.PackageEnergy(), p)
	}
	var coreSum units.Joules
	for i := 0; i < m.Chip().NumCores; i++ {
		coreSum += m.CoreEnergy(i)
	}
	uncore := m.Chip().Power.UncorePower.Energy(time.Second)
	if math.Abs(float64(m.PackageEnergy()-coreSum-uncore)) > 1e-6 {
		t.Errorf("package %v != cores %v + uncore %v", m.PackageEnergy(), coreSum, uncore)
	}
}

func TestRunUntil(t *testing.T) {
	m := newSkylake(t)
	in := pin(t, m, "gcc", 0)
	in.Profile.TotalInstructions = 1e9
	elapsed, ok := m.RunUntil(func() bool { return in.RunsCompleted() >= 1 }, 10*time.Second)
	if !ok {
		t.Fatal("run never completed")
	}
	if elapsed <= 0 || elapsed > 2*time.Second {
		t.Errorf("elapsed = %v", elapsed)
	}
	_, ok = m.RunUntil(func() bool { return false }, 10*time.Millisecond)
	if ok {
		t.Error("impossible condition reported met")
	}
}

func TestOnTickHookRuns(t *testing.T) {
	m := newSkylake(t)
	var ticks int
	m.OnTick(func(dt time.Duration) {
		if dt != m.Tick() {
			t.Errorf("hook dt = %v", dt)
		}
		ticks++
	})
	m.Run(50 * time.Millisecond)
	if ticks != 50 {
		t.Errorf("hook ran %d times, want 50", ticks)
	}
}

func TestMSRPerfCtlRoundTrip(t *testing.T) {
	m := newSkylake(t)
	pin(t, m, "gcc", 2)
	dev := m.Device()
	if err := dev.Write(2, msr.IA32PerfCtl, msr.EncodePerfCtl(1500*units.MHz, 100*units.MHz)); err != nil {
		t.Fatal(err)
	}
	if got := m.Request(2); got != 1500*units.MHz {
		t.Errorf("request after MSR write = %v", got)
	}
	v, err := dev.Read(2, msr.IA32PerfCtl)
	if err != nil {
		t.Fatal(err)
	}
	if got := msr.DecodePerfCtl(v, 100*units.MHz); got != 1500*units.MHz {
		t.Errorf("PERF_CTL read back = %v", got)
	}
	m.Step() // first tick pays the C6 wake latency
	m.Step()
	v, err = dev.Read(2, msr.IA32PerfStatus)
	if err != nil {
		t.Fatal(err)
	}
	if got := msr.DecodePerfCtl(v, 100*units.MHz); got != 1500*units.MHz {
		t.Errorf("PERF_STATUS = %v", got)
	}
}

func TestMSRCounterDerivation(t *testing.T) {
	m := newSkylake(t)
	pin(t, m, "gcc", 0)
	if err := m.SetRequest(0, 1100*units.MHz); err != nil {
		t.Fatal(err)
	}
	dev := m.Device()
	a0, _ := dev.Read(0, msr.IA32Aperf)
	m0, _ := dev.Read(0, msr.IA32Mperf)
	m.Run(time.Second)
	a1, _ := dev.Read(0, msr.IA32Aperf)
	m1, _ := dev.Read(0, msr.IA32Mperf)
	nom := m.Chip().Freq.Nom
	derived := float64(nom) * float64(a1-a0) / float64(m1-m0)
	if math.Abs(derived-1.1e9) > 1e6 {
		t.Errorf("derived frequency = %g, want 1.1 GHz", derived)
	}
}

func TestMSREnergyStatus(t *testing.T) {
	m := newSkylake(t)
	pin(t, m, "gcc", 0)
	dev := m.Device()
	uv, err := dev.Read(0, msr.RAPLPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	unit := msr.DecodePowerUnit(uv)
	c0, _ := dev.Read(0, msr.PkgEnergyStatus)
	m.Run(time.Second)
	c1, _ := dev.Read(0, msr.PkgEnergyStatus)
	got := unit.FromCounts(msr.DeltaCounts(c0, c1))
	want := m.PackageEnergy()
	if math.Abs(float64(got-want)) > 2*float64(unit.UnitJoules()) {
		t.Errorf("MSR energy = %v, machine energy = %v", got, want)
	}
}

func TestMSRPowerLimitWrite(t *testing.T) {
	m := newSkylake(t)
	dev := m.Device()
	if err := dev.Write(0, msr.PkgPowerLimit, msr.EncodePowerLimit(50, true)); err != nil {
		t.Fatal(err)
	}
	if got := m.Limiter().Limit(); got != 50 {
		t.Errorf("limit = %v", got)
	}
	v, _ := dev.Read(0, msr.PkgPowerLimit)
	if w, en := msr.DecodePowerLimit(v); w != 50 || !en {
		t.Errorf("read back (%v,%v)", w, en)
	}
	// Disable clears the limit.
	if err := dev.Write(0, msr.PkgPowerLimit, msr.EncodePowerLimit(50, false)); err != nil {
		t.Fatal(err)
	}
	if got := m.Limiter().Limit(); got != 0 {
		t.Errorf("limit after disable = %v", got)
	}
}

func TestRyzenRejectsHardwareRAPLWrite(t *testing.T) {
	m := newRyzen(t)
	err := m.Device().Write(0, msr.PkgPowerLimit, msr.EncodePowerLimit(50, true))
	if err == nil {
		t.Error("Ryzen accepted a hardware RAPL limit write")
	}
}

func TestPerCoreEnergyVisibility(t *testing.T) {
	// Ryzen: per-core energy differs per core.
	ry := newRyzen(t)
	pin(t, ry, "cactusBSSN", 0)
	ry.Run(time.Second)
	e0, _ := ry.Device().Read(0, msr.AMDCoreEnergy)
	e1, _ := ry.Device().Read(1, msr.AMDCoreEnergy)
	if e0 <= e1 {
		t.Errorf("busy core energy %d should exceed idle core %d", e0, e1)
	}
	// Skylake: PP0 reads the same (sum) regardless of addressed cpu.
	sk := newSkylake(t)
	pin(t, sk, "gcc", 0)
	sk.Run(time.Second)
	s0, _ := sk.Device().Read(0, msr.PP0EnergyStatus)
	s1, _ := sk.Device().Read(7, msr.PP0EnergyStatus)
	if s0 != s1 {
		t.Errorf("Skylake PP0 should not be per-core: %d vs %d", s0, s1)
	}
}

func TestMSRRejectsBadCPU(t *testing.T) {
	m := newSkylake(t)
	if _, err := m.Device().Read(100, msr.IA32Aperf); err == nil {
		t.Error("out-of-range cpu read accepted")
	}
	if err := m.Device().Write(-1, msr.IA32PerfCtl, 0); err == nil {
		t.Error("out-of-range cpu write accepted")
	}
}

// Opportunistic scaling headroom: idling other cores must let the remaining
// core run faster and finish sooner (the basis of the priority policy's
// starvation choice).
func TestIdlingCoresBoostsRemaining(t *testing.T) {
	run := func(loaded int) units.Hertz {
		m := newSkylake(t)
		for i := 0; i < loaded; i++ {
			pin(t, m, "gcc", i)
			if err := m.SetRequest(i, m.Chip().Freq.Max()); err != nil {
				t.Fatal(err)
			}
		}
		m.Step()
		return m.EffectiveFreq(0)
	}
	if f1, f10 := run(1), run(10); f1 <= f10 {
		t.Errorf("1-core freq %v should exceed 10-core freq %v", f1, f10)
	}
}

func TestWithMetricsInstrumentsMachine(t *testing.T) {
	reg := metrics.NewRegistry()
	m := newSkylake(t, WithMetrics(reg))
	for i := 0; i < 4; i++ {
		pin(t, m, "cactusBSSN", i)
		if err := m.SetRequest(i, m.Chip().Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPowerLimit(30) // far below 4 cores at max: RAPL must throttle
	m.Run(3 * time.Second)

	if v := reg.Counter("sim_ticks_total", "").Value(); v <= 0 {
		t.Errorf("sim_ticks_total = %v", v)
	}
	// Pinned cores woke out of idle at the start of the run.
	wake := reg.CounterVec("sim_cstate_transitions_total", "", "kind").With("wake")
	if v := wake.Value(); v <= 0 {
		t.Errorf("no wake transitions counted")
	}
	// Parking an active core is a sleep transition.
	if err := m.SetIdle(0, true); err != nil {
		t.Fatal(err)
	}
	m.Run(100 * time.Millisecond)
	sleep := reg.CounterVec("sim_cstate_transitions_total", "", "kind").With("sleep")
	if v := sleep.Value(); v <= 0 {
		t.Errorf("no sleep transitions counted")
	}
	// The run started request-bound and became RAPL-bound once the cap
	// descended below the request.
	fc := reg.CounterVec("sim_freq_constraint_transitions_total", "", "constraint")
	if v := fc.With("rapl-cap").Value(); v <= 0 {
		t.Errorf("no rapl-cap constraint transitions counted")
	}
	// The limiter's own metrics ride along on the same registry.
	if v := reg.Counter("rapl_throttle_events_total", "").Value(); v <= 0 {
		t.Errorf("rapl_throttle_events_total = %v", v)
	}
	if v := reg.Gauge("rapl_cap_mhz", "").Value(); v <= 0 {
		t.Errorf("rapl_cap_mhz = %v", v)
	}
}
