package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// randomOps drives a machine through a random sequence of control actions
// (pin, unpin, park, wake, P-state writes, limit changes) interleaved with
// run time, then hands it to an invariant checker.
func randomOps(t *testing.T, chip platform.Chip, seed int64, check func(*Machine)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := New(chip)
	if err != nil {
		t.Fatal(err)
	}
	levels := chip.Freq.Levels()
	for op := 0; op < 40; op++ {
		core := rng.Intn(chip.NumCores)
		switch rng.Intn(6) {
		case 0: // pin a random profile if free
			if m.App(core) == nil {
				p := workload.Synthetic("syn", rng)
				if err := m.Pin(workload.NewInstance(p), core); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // unpin
			m.Unpin(core)
		case 2: // park
			if err := m.SetIdle(core, true); err != nil {
				t.Fatal(err)
			}
		case 3: // wake (only valid with an app)
			if m.App(core) != nil {
				if err := m.SetIdle(core, false); err != nil {
					t.Fatal(err)
				}
			}
		case 4: // P-state request
			if err := m.SetRequest(core, levels[rng.Intn(len(levels))]); err != nil {
				t.Fatal(err)
			}
		case 5: // power limit
			if chip.HardwareRAPLLimit && rng.Intn(2) == 0 {
				m.SetPowerLimit(units.Watts(float64(chip.RAPLMin) +
					rng.Float64()*float64(chip.RAPLMax-chip.RAPLMin)))
			} else {
				m.SetPowerLimit(0)
			}
		}
		m.Run(time.Duration(rng.Intn(200)+1) * time.Millisecond)
		check(m)
	}
}

// Invariant: package energy always equals the sum of core energies plus the
// uncore's share, regardless of operation order.
func TestEnergyConservationUnderRandomOps(t *testing.T) {
	prop := func(seed int64) bool {
		ok := true
		for _, chip := range []platform.Chip{platform.Skylake(), platform.Ryzen()} {
			randomOps(t, chip, seed, func(m *Machine) {
				var cores units.Joules
				for i := 0; i < chip.NumCores; i++ {
					cores += m.CoreEnergy(i)
				}
				uncore := chip.Power.UncorePower.Energy(m.Now())
				if math.Abs(float64(m.PackageEnergy()-cores-uncore)) >
					1e-9*math.Max(1, float64(m.PackageEnergy())) {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Invariant: counters never decrease and APERF never exceeds MPERF by more
// than the turbo ratio allows.
func TestCounterMonotonicityUnderRandomOps(t *testing.T) {
	chip := platform.Skylake()
	maxRatio := float64(chip.Freq.Max()) / float64(chip.Freq.Nom)
	prev := make(map[int][3]float64)
	randomOps(t, chip, 99, func(m *Machine) {
		for i := 0; i < chip.NumCores; i++ {
			c := m.Counters(i)
			p := prev[i]
			if c.APERF < p[0] || c.MPERF < p[1] || c.Instr < p[2] {
				t.Fatalf("core %d counters decreased: %+v -> %+v", i, p, c)
			}
			if c.MPERF > 0 && c.APERF/c.MPERF > maxRatio+1e-9 {
				t.Fatalf("core %d APERF/MPERF ratio %.3f exceeds turbo ratio %.3f",
					i, c.APERF/c.MPERF, maxRatio)
			}
			prev[i] = [3]float64{c.APERF, c.MPERF, c.Instr}
		}
	})
}

// Invariant: with a hardware limit active, the windowed average power never
// sits far above the limit once settled; without one, effective frequencies
// never exceed the occupancy ceiling.
func TestFrequencyCeilingUnderRandomOps(t *testing.T) {
	chip := platform.Ryzen()
	randomOps(t, chip, 1234, func(m *Machine) {
		active := m.ActiveCores()
		for i := 0; i < chip.NumCores; i++ {
			eff := m.EffectiveFreq(i)
			if eff == 0 {
				continue
			}
			// Ceiling computed for the *current* occupancy may be stale by
			// one tick after wakeups; allow the next-lower bin by checking
			// against the most permissive plausible occupancy (active-1).
			lo := active - 1
			if lo < 1 {
				lo = 1
			}
			if ceil := chip.Freq.Ceiling(lo, false); eff > ceil {
				t.Fatalf("core %d at %v above ceiling %v (active %d)", i, eff, ceil, active)
			}
		}
	})
}

// Invariant: virtual time, instructions and energy scale linearly with run
// length for a static configuration (no hidden state drift).
func TestLinearityOfStaticRuns(t *testing.T) {
	run := func(d time.Duration) (float64, units.Joules) {
		m, err := New(platform.Skylake())
		if err != nil {
			t.Fatal(err)
		}
		p := workload.MustByName("exchange2")
		if err := m.Pin(workload.NewInstance(p), 0); err != nil {
			t.Fatal(err)
		}
		if err := m.SetRequest(0, 2*units.GHz); err != nil {
			t.Fatal(err)
		}
		m.Run(d)
		return m.Counters(0).Instr, m.PackageEnergy()
	}
	i1, e1 := run(time.Second)
	i3, e3 := run(3 * time.Second)
	if math.Abs(i3/i1-3) > 0.01 {
		t.Errorf("instructions not linear: %g vs %g", i1, i3)
	}
	if math.Abs(float64(e3/e1)-3) > 0.01 {
		t.Errorf("energy not linear: %v vs %v", e1, e3)
	}
}
