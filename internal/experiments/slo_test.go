package experiments

import "testing"

// The subsystem's headline acceptance criterion: at the study budget
// the SLO-feedback policy meets the service's p99 objective under the
// diurnal open-loop trace while the static share policies leave the
// tail over it.
func TestSLOFeedbackMeetsWhereSharesMiss(t *testing.T) {
	res, err := SLOStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(SLOPolicies) {
		t.Fatalf("cells = %d, want one per policy (%d)", len(res.Cells), len(SLOPolicies))
	}
	byPolicy := make(map[string]SLOCell, len(res.Cells))
	for _, c := range res.Cells {
		byPolicy[c.Policy] = c
	}
	target := res.Target.Seconds()

	fb := byPolicy["slo-feedback"]
	if !fb.Met {
		t.Errorf("slo-feedback p99 %.1f ms over the %.0f ms objective", fb.P99*1000, target*1000)
	}
	fs := byPolicy["frequency-shares"]
	if fs.Met {
		t.Errorf("frequency shares meet the objective (p99 %.1f ms); budget %v leaves no headroom gap to demonstrate", fs.P99*1000, res.Limit)
	}
	ps := byPolicy["performance-shares"]
	if ps.Met {
		t.Errorf("performance shares meet the objective (p99 %.1f ms)", ps.P99*1000)
	}

	// The feedback policy wins by draining the batch pool: its serving
	// cores run faster, its batch cores slower, than the equal-share
	// water level.
	if fb.SvcFreq <= fs.SvcFreq {
		t.Errorf("feedback serving freq %v not above equal-share level %v", fb.SvcFreq, fs.SvcFreq)
	}
	if fb.BatFreq >= fs.BatFreq {
		t.Errorf("feedback batch freq %v not below equal-share level %v", fb.BatFreq, fs.BatFreq)
	}
	// Unlike priority, feedback keeps the batch class running.
	if fb.BatIPS <= 0 {
		t.Error("feedback starved the batch class entirely")
	}

	// Every policy honours the budget (8% tolerance, as elsewhere).
	for _, c := range res.Cells {
		if float64(c.Package) > float64(res.Limit)*1.08 {
			t.Errorf("%s: package %v over the %v budget", c.Policy, c.Package, res.Limit)
		}
	}

	// All runs replay the identical arrival trace, so completion rates
	// agree across policies.
	for _, c := range res.Cells {
		if c.Rate < fb.Rate*0.98 || c.Rate > fb.Rate*1.02 {
			t.Errorf("%s: completion rate %.1f/s diverges from %.1f/s on the shared trace", c.Policy, c.Rate, fb.Rate)
		}
	}
}
