package experiments

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/units"
)

// Table3Sets are the randomly selected application sets of Table 3 (two
// copies of each run on the ten Skylake cores).
var Table3Sets = map[string][]string{
	"A": {"deepsjeng", "perlbench", "cactusBSSN", "exchange2", "gcc"},
	"B": {"deepsjeng", "omnetpp", "perlbench", "cam4", "lbm"},
}

// Figure11Shares are the Skylake share levels: application i of each set
// receives level i.
var Figure11Shares = []units.Shares{20, 40, 60, 80, 100}

// RandomCell is one application's outcome in a random-mix run.
type RandomCell struct {
	Set    string
	App    string
	AppIdx int
	Shares units.Shares
	Limit  units.Watts
	Policy PolicyKind

	Freq     units.Hertz
	Norm     float64 // normalised performance
	FreqFrac float64 // fraction of the run's total frequency
	PerfFrac float64 // fraction of the run's total normalised performance
}

// Figure11Result reproduces Figure 11: random SPEC2017 mixes (Table 3)
// under frequency and performance shares at 85/50/40 W on Skylake.
type Figure11Result struct {
	Cells []RandomCell
}

// Figure11 runs the random experiments.
func Figure11() (Figure11Result, error) {
	chip := platform.Skylake()
	var out Figure11Result
	for _, set := range []string{"A", "B"} {
		apps := Table3Sets[set]
		// Two copies of each application, pinned app-major: cores 2i and
		// 2i+1 run application i with the same share level.
		names := make([]string, 0, 10)
		shares := make([]units.Shares, 0, 10)
		for i, a := range apps {
			names = append(names, a, a)
			shares = append(shares, Figure11Shares[i], Figure11Shares[i])
		}
		for _, limit := range []units.Watts{85, 50, 40} {
			for _, kind := range []PolicyKind{FreqShares, PerfShares} {
				res, err := Run(RunConfig{
					Chip: chip, Names: names, Shares: shares,
					Policy: kind, Limit: limit,
				})
				if err != nil {
					return Figure11Result{}, fmt.Errorf("set %s limit %v %s: %w", set, limit, kind, err)
				}
				// Per-application means over the two copies, plus totals
				// for the resource fractions.
				var totF, totN float64
				freqs := make([]units.Hertz, len(apps))
				norms := make([]float64, len(apps))
				for i, a := range apps {
					f := (res.Cores[2*i].MeanFreq + res.Cores[2*i+1].MeanFreq) / 2
					base := StandaloneIPS(chip, a)
					n := (res.Cores[2*i].IPS + res.Cores[2*i+1].IPS) / 2 / base
					freqs[i], norms[i] = f, n
					totF += float64(f)
					totN += n
				}
				for i, a := range apps {
					cell := RandomCell{
						Set: set, App: a, AppIdx: i, Shares: Figure11Shares[i],
						Limit: limit, Policy: kind,
						Freq: freqs[i], Norm: norms[i],
					}
					if totF > 0 {
						cell.FreqFrac = float64(freqs[i]) / totF
					}
					if totN > 0 {
						cell.PerfFrac = norms[i] / totN
					}
					out.Cells = append(out.Cells, cell)
				}
			}
		}
	}
	return out, nil
}

// Tables renders the result.
func (r Figure11Result) Tables() []trace.Table {
	t := trace.Table{
		Title: "Figure 11: random mixes (Table 3 sets A/B), Skylake share policies",
		Header: []string{"set", "app", "shares", "limit(W)", "policy",
			"MHz", "norm perf", "freq frac", "perf frac"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Set, c.App, fmt.Sprintf("%d", c.Shares), trace.W(c.Limit), string(c.Policy),
			trace.Hz(c.Freq), trace.F(c.Norm, 3), trace.Pct(c.FreqFrac), trace.Pct(c.PerfFrac))
	}
	return []trace.Table{t}
}
