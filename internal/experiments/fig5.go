package experiments

import (
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/websearch"
	"repro/internal/workload"
)

// Figure5Row is one power limit's latency outcome.
type Figure5Row struct {
	Limit        units.Watts
	AloneP90     float64 // seconds, websearch alone under RAPL
	ColocatedP90 float64 // seconds, websearch + cpuburn under RAPL
}

// Ratio reports the colocated p90 relative to running alone.
func (r Figure5Row) Ratio() float64 {
	if r.AloneP90 <= 0 {
		return 0
	}
	return r.ColocatedP90 / r.AloneP90
}

// Figure5Result reproduces Figure 5 (unfair throttling): the 90th
// percentile latency of websearch (300 users on 9 Skylake cores) with and
// without a colocated cpuburn power virus, under descending RAPL limits.
type Figure5Result struct {
	Users int
	Rows  []Figure5Row
}

// Figure5Limits are the sweep points.
var Figure5Limits = []units.Watts{85, 55, 50, 45, 40, 35}

// websearchConfig is the shared websearch setup for Figures 5, 12 and 13.
func websearchConfig(seed int64) websearch.Config {
	return websearch.Config{
		Users: 300,
		Cores: []int{0, 1, 2, 3, 4, 5, 6, 7, 8},
		Seed:  seed,
	}
}

// websearchP90 runs websearch under a RAPL limit, optionally with cpuburn
// on the remaining core, and returns the p90 latency of the steady window.
func websearchP90(limit units.Watts, withBurn bool) (float64, error) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		return 0, err
	}
	ws, err := websearch.New(websearchConfig(1))
	if err != nil {
		return 0, err
	}
	if err := ws.Attach(m); err != nil {
		return 0, err
	}
	for _, c := range websearchConfig(1).Cores {
		if err := m.SetRequest(c, chip.Freq.Max()); err != nil {
			return 0, err
		}
	}
	if withBurn {
		if err := m.Pin(workload.NewInstance(workload.CPUBurn), 9); err != nil {
			return 0, err
		}
		if err := m.SetRequest(9, chip.Freq.Max()); err != nil {
			return 0, err
		}
	}
	m.SetPowerLimit(limit)
	m.Run(10 * time.Second)
	ws.ResetStats()
	m.Run(30 * time.Second)
	return ws.LatencyPercentile(90), nil
}

// Figure5 runs the unfair-throttling experiment.
func Figure5() (Figure5Result, error) {
	out := Figure5Result{Users: 300}
	for _, limit := range Figure5Limits {
		alone, err := websearchP90(limit, false)
		if err != nil {
			return Figure5Result{}, err
		}
		coloc, err := websearchP90(limit, true)
		if err != nil {
			return Figure5Result{}, err
		}
		out.Rows = append(out.Rows, Figure5Row{Limit: limit, AloneP90: alone, ColocatedP90: coloc})
	}
	return out, nil
}

// Tables renders the result.
func (r Figure5Result) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Figure 5: websearch p90 latency under RAPL, alone vs +cpuburn (300 users)",
		Header: []string{"limit(W)", "alone p90 (ms)", "colocated p90 (ms)", "colocated/alone"},
	}
	for _, row := range r.Rows {
		t.AddRow(trace.W(row.Limit), trace.F(row.AloneP90*1000, 1),
			trace.F(row.ColocatedP90*1000, 1), trace.F(row.Ratio(), 2))
	}
	return []trace.Table{t}
}
