package experiments

// Ablations of the design choices DESIGN.md calls out: the Ryzen
// 3-P-state clustering, the daemon's control interval, and the share
// loops' deadband.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// ClusteringAblationResult compares frequency shares on Ryzen with the
// platform's real 3-simultaneous-P-state constraint against a hypothetical
// unconstrained chip: how much fidelity the clustering utility costs.
type ClusteringAblationResult struct {
	Limit units.Watts

	// DistinctConstrained counts distinct measured frequencies with the
	// constraint (must be <= 3); DistinctFree without.
	DistinctConstrained int
	DistinctFree        int

	// MeanAbsDiff is the mean per-app |constrained − unconstrained|
	// frequency difference.
	MeanAbsDiff units.Hertz

	// ShareErrConstrained / ShareErrFree are the mean absolute deviations
	// between each app's delivered frequency fraction and its share
	// fraction.
	ShareErrConstrained float64
	ShareErrFree        float64
}

// AblationClustering runs eight distinct share levels on Ryzen at 40 W,
// once with the real 3-P-state limit and once without.
func AblationClustering() (ClusteringAblationResult, error) {
	shares := []units.Shares{100, 85, 70, 60, 50, 40, 30, 20}
	names := make([]string, len(shares))
	for i := range names {
		names[i] = "leela"
	}
	run := func(chip platform.Chip) (RunResult, error) {
		return Run(RunConfig{
			Chip: chip, Names: names, Shares: shares,
			Policy: FreqShares, Limit: 40,
			Warmup: 40 * time.Second, Window: 20 * time.Second,
		})
	}
	constrainedChip := platform.Ryzen()
	freeChip := platform.Ryzen()
	freeChip.MaxSimultaneousPStates = 0

	constrained, err := run(constrainedChip)
	if err != nil {
		return ClusteringAblationResult{}, err
	}
	free, err := run(freeChip)
	if err != nil {
		return ClusteringAblationResult{}, err
	}

	res := ClusteringAblationResult{Limit: 40}
	res.DistinctConstrained = distinctFreqs(constrained, len(shares), constrainedChip.Freq.Step)
	res.DistinctFree = distinctFreqs(free, len(shares), freeChip.Freq.Step)
	var diff float64
	for i := range shares {
		diff += math.Abs(float64(constrained.Cores[i].MeanFreq - free.Cores[i].MeanFreq))
	}
	res.MeanAbsDiff = units.Hertz(diff / float64(len(shares)))
	res.ShareErrConstrained = shareError(constrained, shares)
	res.ShareErrFree = shareError(free, shares)
	return res, nil
}

// distinctFreqs counts distinct measured frequencies, bucketed to the
// P-state step so measurement noise does not inflate the count.
func distinctFreqs(r RunResult, n int, step units.Hertz) int {
	set := make(map[int64]bool)
	for i := 0; i < n; i++ {
		set[int64(r.Cores[i].MeanFreq.QuantizeNearest(step))] = true
	}
	return len(set)
}

// shareError measures how far delivered frequency fractions sit from share
// fractions.
func shareError(r RunResult, shares []units.Shares) float64 {
	var totF float64
	var totS units.Shares
	for i, s := range shares {
		totF += float64(r.Cores[i].MeanFreq)
		totS += s
	}
	if totF <= 0 {
		return 0
	}
	var err float64
	for i, s := range shares {
		err += math.Abs(float64(r.Cores[i].MeanFreq)/totF - s.Fraction(totS))
	}
	return err / float64(len(shares))
}

// Tables renders the ablation.
func (r ClusteringAblationResult) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Ablation: Ryzen 3-P-state clustering vs unconstrained per-core DVFS (frequency shares @ 40 W)",
		Header: []string{"variant", "distinct P-states", "share tracking error", "mean |Δf| vs free"},
	}
	t.AddRow("3 P-states (real chip)", fmt.Sprintf("%d", r.DistinctConstrained),
		trace.Pct(r.ShareErrConstrained), trace.Hz(r.MeanAbsDiff))
	t.AddRow("unconstrained", fmt.Sprintf("%d", r.DistinctFree),
		trace.Pct(r.ShareErrFree), "0")
	return []trace.Table{t}
}

// IntervalAblationResult measures how the daemon's control interval trades
// settling time: the virtual time from a cold start until package power
// first holds within 5% of the limit.
type IntervalAblationResult struct {
	Rows []IntervalAblationRow
}

// IntervalAblationRow is one control interval's outcome.
type IntervalAblationRow struct {
	Interval   time.Duration
	SettleTime time.Duration // zero if never settled
	FinalPower units.Watts
	Iterations int
}

// AblationInterval runs frequency shares (10 cactusBSSN on Skylake, 40 W)
// at several control intervals.
func AblationInterval() (IntervalAblationResult, error) {
	var out IntervalAblationResult
	for _, interval := range []time.Duration{time.Second, 250 * time.Millisecond, 100 * time.Millisecond} {
		row, err := intervalRun(interval)
		if err != nil {
			return IntervalAblationResult{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func intervalRun(interval time.Duration) (IntervalAblationRow, error) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		return IntervalAblationRow{}, err
	}
	specs := make([]core.AppSpec, 10)
	for i := 0; i < 10; i++ {
		if err := m.Pin(workload.NewInstance(workload.MustByName("cactusBSSN")), i); err != nil {
			return IntervalAblationRow{}, err
		}
		specs[i] = core.AppSpec{Name: "cactusBSSN", Core: i, Shares: 50}
	}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		return IntervalAblationRow{}, err
	}
	row := IntervalAblationRow{Interval: interval}
	const limit = 40
	settled := time.Duration(0)
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit, Interval: interval,
		OnSnapshot: func(s core.Snapshot) {
			row.Iterations++
			gap := float64(s.PackagePower - limit)
			if gap < 0 {
				gap = -gap
			}
			if settled == 0 && gap <= 0.05*limit {
				settled = s.Time
			}
			row.FinalPower = s.PackagePower
		},
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		return IntervalAblationRow{}, err
	}
	if err := d.AttachVirtual(m); err != nil {
		return IntervalAblationRow{}, err
	}
	m.Run(60 * time.Second)
	if err := d.Err(); err != nil {
		return IntervalAblationRow{}, err
	}
	row.SettleTime = settled
	return row, nil
}

// Tables renders the ablation.
func (r IntervalAblationResult) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Ablation: control interval vs settling time (frequency shares, 10x cactusBSSN @ 40 W)",
		Header: []string{"interval", "settle time", "final pkg W", "iterations"},
	}
	for _, row := range r.Rows {
		settle := "never"
		if row.SettleTime > 0 {
			settle = row.SettleTime.String()
		}
		t.AddRow(row.Interval.String(), settle, trace.W(row.FinalPower), fmt.Sprintf("%d", row.Iterations))
	}
	return []trace.Table{t}
}
