package experiments

// Extension studies: the paper's Section 4.4 and Section 8 discussion
// points, quantified on the simulated platforms.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// UsefulFreqResult quantifies the Section 4.4 refinement: capping
// memory-bound applications at their highest *useful* frequency saves
// package power at a small throughput cost, because cycles above the cap
// were mostly spent waiting on memory.
type UsefulFreqResult struct {
	Cap           units.Hertz // the useful-frequency cap applied to the memory-bound class
	UncappedPower units.Watts
	CappedPower   units.Watts
	UncappedIPS   float64 // total instruction throughput
	CappedIPS     float64
	MemBoundNorm  float64 // memory-bound class normalised perf with the cap
	CoreBoundFreq units.Hertz
}

// PowerSaving reports the fractional package power reduction.
func (r UsefulFreqResult) PowerSaving() float64 {
	if r.UncappedPower <= 0 {
		return 0
	}
	return 1 - float64(r.CappedPower/r.UncappedPower)
}

// ThroughputLoss reports the fractional total-IPS reduction.
func (r UsefulFreqResult) ThroughputLoss() float64 {
	if r.UncappedIPS <= 0 {
		return 0
	}
	return 1 - r.CappedIPS/r.UncappedIPS
}

// UsefulFreqStudy runs five copies of omnetpp (memory-bound) beside five of
// povray (core-bound) under frequency shares with ample power (85 W), with
// and without a useful-frequency cap on omnetpp derived from two IPS
// samples via core.UsefulFrequency. With surplus power the uncapped policy
// is work-conserving and burns cycles on memory stalls; the cap converts
// them into package power savings.
func UsefulFreqStudy() (UsefulFreqResult, error) {
	chip := platform.Skylake()
	names := []string{"omnetpp", "omnetpp", "omnetpp", "omnetpp", "omnetpp",
		"povray", "povray", "povray", "povray", "povray"}
	shares := []units.Shares{50, 50, 50, 50, 50, 50, 50, 50, 50, 50}

	// Derive the cap from two telemetry-style samples of omnetpp.
	omnetpp := workload.MustByName("omnetpp")
	fLo, fHi := 1200*units.MHz, 2200*units.MHz
	cap, err := core.UsefulFrequency(fLo, omnetpp.IPS(fLo), fHi, omnetpp.IPS(fHi), chip.Freq, 0.6)
	if err != nil {
		return UsefulFreqResult{}, err
	}

	run := func(caps []units.Hertz) (RunResult, error) {
		return Run(RunConfig{
			Chip: chip, Names: names, Shares: shares, MaxFreqs: caps,
			Policy: FreqShares, Limit: 85,
			Warmup: 30 * time.Second, Window: 15 * time.Second,
		})
	}
	uncapped, err := run(nil)
	if err != nil {
		return UsefulFreqResult{}, err
	}
	caps := make([]units.Hertz, len(names))
	for i := 0; i < 5; i++ {
		caps[i] = cap
	}
	capped, err := run(caps)
	if err != nil {
		return UsefulFreqResult{}, err
	}

	total := func(r RunResult) float64 {
		var t float64
		for _, c := range r.Cores[:len(names)] {
			t += c.IPS
		}
		return t
	}
	res := UsefulFreqResult{
		Cap:           cap,
		UncappedPower: uncapped.PackagePower,
		CappedPower:   capped.PackagePower,
		UncappedIPS:   total(uncapped),
		CappedIPS:     total(capped),
		MemBoundNorm:  normMean(chip, names[:5], capped, 0),
	}
	cbF, _, _, _ := classMeans(capped, func(i int) bool { return i >= 5 })
	res.CoreBoundFreq = cbF
	return res, nil
}

// Tables renders the study.
func (r UsefulFreqResult) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Useful-frequency study (Section 4.4): omnetpp capped at its half-elastic point, 85 W",
		Header: []string{"variant", "pkg W", "total GIPS", "power saving", "throughput loss"},
	}
	t.AddRow("uncapped", trace.W(r.UncappedPower), trace.F(r.UncappedIPS/1e9, 2), "-", "-")
	t.AddRow(fmt.Sprintf("capped @ %s", r.Cap), trace.W(r.CappedPower), trace.F(r.CappedIPS/1e9, 2),
		trace.Pct(r.PowerSaving()), trace.Pct(r.ThroughputLoss()))
	return []trace.Table{t}
}

// GamingResult quantifies the Section 8 game-ability discussion: an
// application deflates its measured IPS (inserting stalls) so the
// performance-share policy believes it is underserved and grants it extra
// frequency — hurting honest co-runners. The paper's soundness criterion is
// that the gaming step costs the gamer more useful work than the allocation
// gains it; frequency shares are immune by construction.
type GamingResult struct {
	Policy PolicyKind

	HonestCoRunnerNorm float64 // honest co-runners' perf facing an honest peer
	GamedCoRunnerNorm  float64 // honest co-runners' perf facing the gamer
	HonestSelfIPS      float64 // the would-be gamer's useful IPS playing honestly
	GamedSelfIPS       float64 // its useful IPS while gaming
	HonestFreq         units.Hertz
	GamedFreq          units.Hertz // frequency the gamer extracts
}

// GamingStudy runs the scenario under the given policy (PerfShares shows
// the vulnerability; FreqShares shows immunity).
func GamingStudy(kind PolicyKind) (GamingResult, error) {
	chip := platform.Skylake()
	honest := workload.MustByName("leela")
	gamer := honest
	gamer.Name = "leela-gamed"
	// The gaming step: padding memory stalls quadruples the stall term,
	// deflating measured IPS while genuinely slowing real work.
	gamer.MemStall *= 4

	names := []string{"g", "g", "g", "g", "g", "h", "h", "h", "h", "h"}
	shares := make([]units.Shares, 10)
	for i := range shares {
		shares[i] = 50
	}
	base := StandaloneIPS(chip, "leela")
	baselines := make([]float64, 10)
	for i := range baselines {
		baselines[i] = base // the gamer's baseline was measured pre-gaming
	}
	run := func(first workload.Profile) (RunResult, error) {
		profiles := make([]workload.Profile, 10)
		for i := range profiles {
			if i < 5 {
				profiles[i] = first
			} else {
				profiles[i] = honest
			}
		}
		return Run(RunConfig{
			Chip: chip, Names: names, Profiles: profiles, Shares: shares,
			Baselines: baselines, Policy: kind, Limit: 50,
			Warmup: 40 * time.Second, Window: 20 * time.Second,
		})
	}
	honestRun, err := run(honest)
	if err != nil {
		return GamingResult{}, err
	}
	gamedRun, err := run(gamer)
	if err != nil {
		return GamingResult{}, err
	}
	res := GamingResult{Policy: kind}
	hF, hIPS, _, _ := classMeans(honestRun, func(i int) bool { return i < 5 })
	_, hCoIPS, _, _ := classMeans(honestRun, func(i int) bool { return i >= 5 })
	gF, gIPS, _, _ := classMeans(gamedRun, func(i int) bool { return i < 5 })
	_, gCoIPS, _, _ := classMeans(gamedRun, func(i int) bool { return i >= 5 })
	res.HonestFreq, res.GamedFreq = hF, gF
	res.HonestSelfIPS, res.GamedSelfIPS = hIPS, gIPS
	res.HonestCoRunnerNorm = hCoIPS / base
	res.GamedCoRunnerNorm = gCoIPS / base
	return res, nil
}

// Tables renders the study.
func (r GamingResult) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Game-ability study (Section 8) under " + string(r.Policy) + ", 50 W",
		Header: []string{"metric", "honest", "gaming"},
	}
	t.AddRow("gamer frequency (MHz)", trace.Hz(r.HonestFreq), trace.Hz(r.GamedFreq))
	t.AddRow("gamer useful GIPS", trace.F(r.HonestSelfIPS/1e9, 3), trace.F(r.GamedSelfIPS/1e9, 3))
	t.AddRow("co-runner norm perf", trace.F(r.HonestCoRunnerNorm, 3), trace.F(r.GamedCoRunnerNorm, 3))
	return []trace.Table{t}
}
