package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// The SLO study's fixed scenario: an open-loop latency service on six
// Ryzen cores (the chip with per-core power measurement, so all five
// policies apply) replaying a diurnal arrival trace, colocated with two
// cpuburn batch cores, everything at equal per-core shares so static
// policies have no reason to favour the service. The budget is chosen
// so the equal-share water level leaves the serving cores too slow for
// the objective — the gap SLO feedback closes by draining the batch
// pool.
var (
	// SLOStudyLimit is the package budget of the headline comparison.
	SLOStudyLimit units.Watts = 35

	// SLOStudyTarget is the service's p99 objective.
	SLOStudyTarget = 65 * time.Millisecond

	// SLOSetpointMargin shrinks the controller's internal setpoint
	// below the declared objective. The PI loop's deadband tolerates
	// ±10% around its setpoint, so regulating to the objective itself
	// would let the tail settle just above it; regulating 15% inside
	// keeps the deadband's upper edge under the objective.
	SLOSetpointMargin = 0.85

	// SLOStudyPeriod is the compressed diurnal period.
	SLOStudyPeriod = 20 * time.Second

	// SLOStudyBaseRate is the diurnal base arrival rate (requests/s);
	// the evening peak reaches 115% of it.
	SLOStudyBaseRate = 300.0

	sloServiceCores = []int{0, 1, 2, 3, 4, 5}
	sloBatchCores   = []int{6, 7}
)

// SLOPolicies are the policies the study compares, feedback first.
var SLOPolicies = []string{
	"slo-feedback",
	"frequency-shares",
	"performance-shares",
	"power-shares",
	"priority",
}

// SLOCell is one policy's outcome under the diurnal open-loop load.
type SLOCell struct {
	Policy  string
	P50     float64 // seconds, over the full measurement window
	P90     float64
	P99     float64
	Target  float64 // seconds
	Met     bool    // P99 <= Target
	Rate    float64 // completions/s over the window
	Queue   int     // waiting requests at the end of the run
	SvcFreq units.Hertz
	BatFreq units.Hertz
	BatIPS  float64 // summed batch instructions/s
	Package units.Watts
}

// SLOStudyResult is the SLO-feedback vs static-policy comparison under
// a diurnal open-loop arrival process (the subsystem's headline
// experiment): at a budget where every static share policy leaves the
// service's p99 over its objective, the feedback policy trades batch
// frequency for serving frequency and meets it.
type SLOStudyResult struct {
	Limit  units.Watts
	Target time.Duration
	Cells  []SLOCell
}

// sloSetpoint is the controller's internal p99 setpoint.
func sloSetpoint() time.Duration {
	return time.Duration(float64(SLOStudyTarget) * SLOSetpointMargin)
}

// sloServiceConfig is the study's service: it replays a diurnal
// arrival trace materialised from the canonical rate curve, so every
// policy sees the identical open-loop arrival sequence.
func sloServiceConfig() (svc.Config, error) {
	span := 3 * SLOStudyPeriod // one warmup + two measured periods
	arrivals, err := svc.PoissonTrace(svc.Diurnal(SLOStudyBaseRate, SLOStudyPeriod), span, 1)
	if err != nil {
		return svc.Config{}, err
	}
	return svc.Config{
		Name:      "websearch",
		Cores:     sloServiceCores,
		Seed:      1,
		Arrivals:  svc.OpenTrace,
		Trace:     arrivals,
		SLO:       SLOStudyTarget,
		RecordAll: true,
	}, nil
}

// sloSpecsFor builds the run's app specs: equal shares everywhere, the
// service marked high priority for the priority policy's benefit.
func sloSpecsFor(chip platform.Chip) []core.AppSpec {
	specs := make([]core.AppSpec, 0, len(sloServiceCores)+len(sloBatchCores))
	for _, c := range sloServiceCores {
		specs = append(specs, core.AppSpec{
			Name: "websearch", Core: c, Shares: 50, HighPriority: true,
			BaselineIPS: svc.InteractiveProfile.IPS(chip.Freq.Ceiling(1, false)),
		})
	}
	for _, c := range sloBatchCores {
		specs = append(specs, core.AppSpec{
			Name: "cpuburn", Core: c, Shares: 50, AVX: true,
			BaselineIPS: workload.CPUBurn.IPS(chip.Freq.Ceiling(1, true)),
		})
	}
	return specs
}

// sloPolicyFor constructs one of the compared policies.
func sloPolicyFor(name string, chip platform.Chip, specs []core.AppSpec, limit units.Watts) (core.Policy, error) {
	switch name {
	case "slo-feedback":
		return core.NewSLOFeedback(chip, specs, core.SLOConfig{
			Targets: []core.SLOTarget{{Service: "websearch", P99: sloSetpoint()}},
		})
	case "frequency-shares":
		return core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	case "performance-shares":
		return core.NewPerformanceShares(chip, specs, core.ShareConfig{})
	case "power-shares":
		return core.NewPowerShares(chip, specs, core.ShareConfig{})
	case "priority":
		return core.NewPriority(chip, specs, core.PriorityConfig{Limit: limit})
	}
	return nil, fmt.Errorf("experiments: unknown SLO study policy %q", name)
}

// sloRun executes one policy for one warmup period plus two measured
// diurnal periods and reports the window's latency distribution.
func sloRun(policy string, limit units.Watts) (SLOCell, error) {
	chip := platform.Ryzen()
	m, err := sim.New(chip)
	if err != nil {
		return SLOCell{}, err
	}
	scfg, err := sloServiceConfig()
	if err != nil {
		return SLOCell{}, err
	}
	model, err := svc.NewModel(scfg)
	if err != nil {
		return SLOCell{}, err
	}
	if err := model.Attach(m); err != nil {
		return SLOCell{}, err
	}
	for _, c := range sloBatchCores {
		if err := m.Pin(workload.NewInstance(workload.CPUBurn), c); err != nil {
			return SLOCell{}, err
		}
	}
	specs := sloSpecsFor(chip)
	pol, err := sloPolicyFor(policy, chip, specs, limit)
	if err != nil {
		return SLOCell{}, err
	}
	sw, closeTrace, err := newRunTrace(pol.Name(), specs)
	if err != nil {
		return SLOCell{}, err
	}
	defer func() {
		if cerr := closeTrace(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	dcfg := daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit,
		SLO:        model,
		SLOTargets: []core.SLOTarget{{Service: "websearch", P99: sloSetpoint()}},
	}
	if sw != nil {
		dcfg.OnSnapshot = sw.Observe
	}
	dmn, err := daemon.New(dcfg, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		return SLOCell{}, err
	}
	if err := dmn.AttachVirtual(m); err != nil {
		return SLOCell{}, err
	}

	s := model.Service("websearch")
	meter := NewMeter(m)
	m.Run(SLOStudyPeriod) // one warmup period
	s.ResetStats()
	done0 := s.Completed()
	meter.Begin()
	m.Run(2 * SLOStudyPeriod) // two measured periods
	if err := dmn.Err(); err != nil {
		return SLOCell{}, err
	}
	ms := meter.Measure()

	cell := SLOCell{
		Policy:  policy,
		P50:     s.LatencyPercentile(50),
		P90:     s.LatencyPercentile(90),
		P99:     s.LatencyPercentile(99),
		Target:  SLOStudyTarget.Seconds(),
		Rate:    float64(s.Completed()-done0) / (2 * SLOStudyPeriod).Seconds(),
		Queue:   s.QueueLen(),
		Package: ms.PackagePower,
	}
	cell.Met = cell.P99 > 0 && cell.P99 <= cell.Target
	var sf, bf units.Hertz
	for _, c := range sloServiceCores {
		sf += ms.Cores[c].MeanFreq
	}
	cell.SvcFreq = sf / units.Hertz(len(sloServiceCores))
	for _, c := range sloBatchCores {
		bf += ms.Cores[c].MeanFreq
		cell.BatIPS += ms.Cores[c].IPS
	}
	cell.BatFreq = bf / units.Hertz(len(sloBatchCores))
	return cell, nil
}

// SLOStudy runs every policy at the study budget.
func SLOStudy() (SLOStudyResult, error) {
	return SLOStudyAt(SLOStudyLimit)
}

// SLOStudyAt runs the comparison at an explicit budget.
func SLOStudyAt(limit units.Watts) (SLOStudyResult, error) {
	out := SLOStudyResult{Limit: limit, Target: SLOStudyTarget}
	for _, p := range SLOPolicies {
		cell, err := sloRun(p, limit)
		if err != nil {
			return SLOStudyResult{}, err
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// Tables renders the result.
func (r SLOStudyResult) Tables() []trace.Table {
	tb := trace.Table{
		Title: fmt.Sprintf("SLO study: diurnal open-loop websearch (6 Ryzen cores) + cpuburn (2 cores), %v budget, p99 objective %v",
			r.Limit, r.Target),
		Header: []string{"policy", "p50 (ms)", "p90 (ms)", "p99 (ms)", "target (ms)", "met", "rate (req/s)", "svc MHz", "batch MHz", "batch GIPS", "pkg (W)"},
	}
	for _, c := range r.Cells {
		met := "MISSED"
		if c.Met {
			met = "met"
		}
		tb.AddRow(c.Policy,
			trace.F(c.P50*1000, 1), trace.F(c.P90*1000, 1), trace.F(c.P99*1000, 1),
			trace.F(c.Target*1000, 0), met, trace.F(c.Rate, 0),
			trace.Hz(c.SvcFreq), trace.Hz(c.BatFreq), trace.F(c.BatIPS/1e9, 2),
			trace.W(c.Package))
	}
	return []trace.Table{tb}
}
