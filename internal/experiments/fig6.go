package experiments

import (
	"time"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Figure6Row is one CPU-share combination on the time-shared core.
type Figure6Row struct {
	FixedApp  string  // app held at 50% of the core
	VariedApp string  // app whose share varies
	VariedPct float64 // varied app's core fraction
	CorePower units.Watts
}

// Figure6Result reproduces Figure 6: time-shared power consumption of
// cactusBSSN (HD) and gcc (LD) on one Ryzen core at 3.4 GHz, as docker-style
// CPU shares vary. The solo (100%) powers of each application are included
// as the reference lines of the figure.
type Figure6Result struct {
	Freq   units.Hertz
	SoloHD units.Watts // cactusBSSN alone at 100%
	SoloLD units.Watts // gcc alone at 100%
	Rows   []Figure6Row
}

// Figure6 runs the time-sharing power experiment.
func Figure6() (Figure6Result, error) {
	chip := platform.Ryzen()
	freq := 3400 * units.MHz
	out := Figure6Result{Freq: freq}

	solo := func(name string) (units.Watts, error) {
		c, err := sched.New(chip, freq)
		if err != nil {
			return 0, err
		}
		if err := c.Add(workload.NewInstance(workload.MustByName(name)), 1.0); err != nil {
			return 0, err
		}
		c.Run(10 * time.Second)
		return c.AveragePower(), nil
	}
	var err error
	if out.SoloHD, err = solo("cactusBSSN"); err != nil {
		return Figure6Result{}, err
	}
	if out.SoloLD, err = solo("gcc"); err != nil {
		return Figure6Result{}, err
	}

	pair := func(fixed, varied string, variedPct float64) (units.Watts, error) {
		c, err := sched.New(chip, freq)
		if err != nil {
			return 0, err
		}
		if err := c.Add(workload.NewInstance(workload.MustByName(fixed)), 0.5); err != nil {
			return 0, err
		}
		if err := c.Add(workload.NewInstance(workload.MustByName(varied)), variedPct); err != nil {
			return 0, err
		}
		c.Run(10 * time.Second)
		return c.AveragePower(), nil
	}
	for _, combo := range []struct{ fixed, varied string }{
		{"cactusBSSN", "gcc"}, // HD fixed at 50%, LD varies
		{"gcc", "cactusBSSN"}, // LD fixed at 50%, HD varies
	} {
		for _, pct := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			p, err := pair(combo.fixed, combo.varied, pct)
			if err != nil {
				return Figure6Result{}, err
			}
			out.Rows = append(out.Rows, Figure6Row{
				FixedApp:  combo.fixed,
				VariedApp: combo.varied,
				VariedPct: pct,
				CorePower: p,
			})
		}
	}
	return out, nil
}

// Tables renders the result.
func (r Figure6Result) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Figure 6: time-shared core power, cactusBSSN (HD) / gcc (LD) on one Ryzen core @ " + r.Freq.String(),
		Header: []string{"fixed app (50%)", "varied app", "varied share", "core power (W)"},
	}
	t.AddRow("cactusBSSN solo", "-", "100%", trace.W(r.SoloHD))
	t.AddRow("gcc solo", "-", "100%", trace.W(r.SoloLD))
	for _, row := range r.Rows {
		t.AddRow(row.FixedApp, row.VariedApp, trace.Pct(row.VariedPct), trace.W(row.CorePower))
	}
	return []trace.Table{t}
}
