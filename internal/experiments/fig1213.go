package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/websearch"
	"repro/internal/workload"
)

// LatencyCell is one (limit, scenario) outcome of the latency-sensitive
// experiments.
type LatencyCell struct {
	Limit    units.Watts
	Scenario string // "alone", "rapl", "freq-shares"
	P90      float64
	Relative float64 // P90 relative to "alone" at the same limit

	// Figure 13's series: mean active frequency of the websearch cores and
	// of the cpuburn core.
	WebsearchFreq units.Hertz
	CpuburnFreq   units.Hertz
}

// LatencyResult reproduces Figures 12 and 13: websearch (high priority, 90
// shares per core on 9 cores) colocated with cpuburn (10 shares, 1 core)
// under descending limits, comparing the frequency-share policy against
// native RAPL and against websearch running alone.
type LatencyResult struct {
	Cells []LatencyCell
}

// Figure12Limits are the sweep points.
var Figure12Limits = []units.Watts{55, 50, 45, 40, 35}

// latencyRun performs one scenario run and reports p90 plus mean
// frequencies of the two classes.
func latencyRun(limit units.Watts, scenario string) (LatencyCell, error) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		return LatencyCell{}, err
	}
	wcfg := websearchConfig(2)
	ws, err := websearch.New(wcfg)
	if err != nil {
		return LatencyCell{}, err
	}
	if err := ws.Attach(m); err != nil {
		return LatencyCell{}, err
	}
	withBurn := scenario != "alone"
	if withBurn {
		if err := m.Pin(workload.NewInstance(workload.CPUBurn), 9); err != nil {
			return LatencyCell{}, err
		}
	}
	meter := NewMeter(m)

	switch scenario {
	case "alone", "rapl":
		for _, c := range wcfg.Cores {
			if err := m.SetRequest(c, chip.Freq.Max()); err != nil {
				return LatencyCell{}, err
			}
		}
		if withBurn {
			if err := m.SetRequest(9, chip.Freq.Max()); err != nil {
				return LatencyCell{}, err
			}
		}
		m.SetPowerLimit(limit)
	case "freq-shares", "perf-shares":
		specs := make([]core.AppSpec, 0, 10)
		for _, c := range wcfg.Cores {
			specs = append(specs, core.AppSpec{
				Name: "websearch", Core: c, Shares: 90, HighPriority: true,
				BaselineIPS: websearch.Profile.IPS(chip.Freq.Ceiling(1, false)),
			})
		}
		specs = append(specs, core.AppSpec{
			Name: "cpuburn", Core: 9, Shares: 10, AVX: true,
			BaselineIPS: workload.CPUBurn.IPS(chip.Freq.Ceiling(1, true)),
		})
		var pol core.Policy
		var err error
		if scenario == "freq-shares" {
			pol, err = core.NewFrequencyShares(chip, specs, core.ShareConfig{})
		} else {
			pol, err = core.NewPerformanceShares(chip, specs, core.ShareConfig{})
		}
		if err != nil {
			return LatencyCell{}, err
		}
		d, err := daemon.New(daemon.Config{
			Chip: chip, Policy: pol, Apps: specs, Limit: limit,
		}, m.Device(), daemon.MachineActuator{M: m})
		if err != nil {
			return LatencyCell{}, err
		}
		if err := d.AttachVirtual(m); err != nil {
			return LatencyCell{}, err
		}
	}

	m.Run(15 * time.Second)
	ws.ResetStats()
	meter.Begin()
	m.Run(30 * time.Second)
	ms := meter.Measure()
	cell := LatencyCell{Limit: limit, Scenario: scenario, P90: ws.LatencyPercentile(90)}
	var wf units.Hertz
	for _, c := range wcfg.Cores {
		wf += ms.Cores[c].MeanFreq
	}
	cell.WebsearchFreq = wf / units.Hertz(len(wcfg.Cores))
	if withBurn {
		cell.CpuburnFreq = ms.Cores[9].MeanFreq
	}
	return cell, nil
}

// Figure12 runs the latency-sensitive comparison (Figure 13's frequency
// series is captured in the same cells).
func Figure12() (LatencyResult, error) {
	var out LatencyResult
	for _, limit := range Figure12Limits {
		alone, err := latencyRun(limit, "alone")
		if err != nil {
			return LatencyResult{}, err
		}
		alone.Relative = 1
		out.Cells = append(out.Cells, alone)
		for _, scenario := range []string{"rapl", "freq-shares", "perf-shares"} {
			cell, err := latencyRun(limit, scenario)
			if err != nil {
				return LatencyResult{}, err
			}
			if alone.P90 > 0 {
				cell.Relative = cell.P90 / alone.P90
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// Figure13 extracts the frequency series (already measured by Figure12);
// it exists so every figure has a regenerator entry point.
func Figure13() (LatencyResult, error) {
	res, err := Figure12()
	if err != nil {
		return LatencyResult{}, err
	}
	var out LatencyResult
	for _, c := range res.Cells {
		if c.Scenario == "freq-shares" {
			out.Cells = append(out.Cells, c)
		}
	}
	return out, nil
}

// Tables renders the result.
func (r LatencyResult) Tables() []trace.Table {
	lat := trace.Table{
		Title:  "Figure 12: websearch p90 latency, policies vs RAPL vs alone (90/10 shares)",
		Header: []string{"limit(W)", "scenario", "p90 (ms)", "relative to alone"},
	}
	freq := trace.Table{
		Title:  "Figure 13: active frequencies during the latency experiments",
		Header: []string{"limit(W)", "scenario", "websearch MHz", "cpuburn MHz"},
	}
	for _, c := range r.Cells {
		lat.AddRow(trace.W(c.Limit), c.Scenario, trace.F(c.P90*1000, 1), trace.F(c.Relative, 2))
		freq.AddRow(trace.W(c.Limit), c.Scenario, trace.Hz(c.WebsearchFreq), trace.Hz(c.CpuburnFreq))
	}
	return []trace.Table{lat, freq}
}
