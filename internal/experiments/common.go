// Package experiments reproduces every table and figure of the paper's
// evaluation (Sections 1, 3 and 6). Each FigureN function builds the
// workload mix the paper describes, runs it on the simulated platform under
// the corresponding mechanism or policy, and returns the measured series;
// the result types render to text tables matching the figure's axes. The
// index in DESIGN.md maps each experiment to its modules and bench target.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Per-iteration trace output. When a directory is set via SetTraceDir,
// every daemon-driven run writes its control-interval time series there as
// run-NNN-<policy>.csv through trace.SnapshotWriter (the same buffered CSV
// powerd's -trace flag produces).
var (
	traceMu  sync.Mutex
	traceDir string
	traceSeq int
)

// SetTraceDir enables (non-empty) or disables (empty) per-run CSV traces.
func SetTraceDir(dir string) {
	traceMu.Lock()
	defer traceMu.Unlock()
	traceDir = dir
}

// newRunTrace opens the next trace file for a run, or returns nils when
// tracing is disabled. The returned closer flushes and closes the file; its
// error must be checked — a failed flush silently truncates the trace.
func newRunTrace(policy string, specs []core.AppSpec) (*trace.SnapshotWriter, func() error, error) {
	traceMu.Lock()
	dir := traceDir
	traceSeq++
	seq := traceSeq
	traceMu.Unlock()
	if dir == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("run-%03d-%s.csv", seq, policy)))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: trace file: %w", err)
	}
	sw := trace.NewSnapshotWriter(f, specs)
	return sw, sw.Close, nil
}

// CoreMeasure is one core's averages over a measurement window.
type CoreMeasure struct {
	MeanFreq units.Hertz
	IPS      float64
	Power    units.Watts
}

// Measure is a machine-wide measurement window.
type Measure struct {
	Duration     time.Duration
	PackagePower units.Watts
	Cores        []CoreMeasure
}

// Meter accumulates per-core activity between Begin and Measure calls. It
// must be created before the machine runs (it hooks the tick stream).
type Meter struct {
	m       *sim.Machine
	active  bool
	begun   bool
	ticks   int
	freqSum []float64
	at0     time.Duration
	instr0  []float64
	energy0 []units.Joules
	pkg0    units.Joules
}

// NewMeter attaches a meter to the machine.
func NewMeter(m *sim.Machine) *Meter {
	n := m.Chip().NumCores
	mt := &Meter{
		m:       m,
		freqSum: make([]float64, n),
		instr0:  make([]float64, n),
		energy0: make([]units.Joules, n),
	}
	m.OnTick(func(dt time.Duration) {
		if !mt.active {
			return
		}
		mt.ticks++
		for i := 0; i < n; i++ {
			mt.freqSum[i] += float64(m.EffectiveFreq(i))
		}
	})
	return mt
}

// Begin starts a measurement window at the machine's current time.
func (mt *Meter) Begin() {
	mt.begun = true
	mt.active = true
	mt.ticks = 0
	mt.at0 = mt.m.Now()
	mt.pkg0 = mt.m.PackageEnergy()
	for i := range mt.freqSum {
		mt.freqSum[i] = 0
		mt.instr0[i] = mt.m.Counters(i).Instr
		mt.energy0[i] = mt.m.CoreEnergy(i)
	}
}

// Measure closes the window and returns the averages. A meter that never
// began returns a zero Measure.
func (mt *Meter) Measure() Measure {
	mt.active = false
	if !mt.begun {
		return Measure{Cores: make([]CoreMeasure, len(mt.freqSum))}
	}
	d := mt.m.Now() - mt.at0
	sec := d.Seconds()
	out := Measure{
		Duration: d,
		Cores:    make([]CoreMeasure, len(mt.freqSum)),
	}
	if sec <= 0 {
		return out
	}
	out.PackagePower = (mt.m.PackageEnergy() - mt.pkg0).Power(d)
	for i := range mt.freqSum {
		cm := CoreMeasure{
			IPS:   (mt.m.Counters(i).Instr - mt.instr0[i]) / sec,
			Power: (mt.m.CoreEnergy(i) - mt.energy0[i]).Power(d),
		}
		if mt.ticks > 0 {
			cm.MeanFreq = units.Hertz(mt.freqSum[i] / float64(mt.ticks))
		}
		out.Cores[i] = cm
	}
	return out
}

// PolicyKind selects the mechanism or policy of a run.
type PolicyKind string

// The mechanisms and policies the experiments compare.
const (
	RAPL        PolicyKind = "rapl"
	FreqShares  PolicyKind = "frequency-shares"
	PerfShares  PolicyKind = "performance-shares"
	PowerShares PolicyKind = "power-shares"
	PriorityPol PolicyKind = "priority"
)

// RunConfig describes one co-location run.
type RunConfig struct {
	Chip      platform.Chip
	Names     []string           // one profile name per occupied core, in core order
	Profiles  []workload.Profile // optional: explicit profiles overriding name lookup
	Shares    []units.Shares     // share policies; nil otherwise
	HP        []bool             // priority policy; nil otherwise
	MaxFreqs  []units.Hertz      // optional per-app useful-frequency caps (Section 4.4)
	Baselines []float64          // optional explicit standalone baselines (per app)
	Policy    PolicyKind
	Limit     units.Watts
	Warmup    time.Duration // default 40 s
	Window    time.Duration // default 20 s
	Tick      time.Duration // default 1 ms
}

// profiles resolves the run's workload profiles, preferring the explicit
// list over name lookup.
func (c RunConfig) profiles() ([]workload.Profile, error) {
	if c.Profiles != nil {
		if len(c.Profiles) != len(c.Names) {
			return nil, fmt.Errorf("experiments: %d profiles for %d names", len(c.Profiles), len(c.Names))
		}
		return c.Profiles, nil
	}
	out := make([]workload.Profile, len(c.Names))
	for i, n := range c.Names {
		p, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func (c *RunConfig) fill() {
	if c.Warmup <= 0 {
		c.Warmup = 40 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 20 * time.Second
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
}

// RunResult is one run's measurements.
type RunResult struct {
	Measure
	Parked []bool               // per occupied core: starved at the end of the run
	Apps   []*workload.Instance // the pinned instances, in core order
}

// Run executes one co-location run and measures the steady-state window.
func Run(cfg RunConfig) (RunResult, error) {
	cfg.fill()
	if cfg.Policy == RAPL {
		m, apps, err := buildPinned(cfg)
		if err != nil {
			return RunResult{}, err
		}
		for i := range cfg.Names {
			if err := m.SetRequest(i, cfg.Chip.Freq.Max()); err != nil {
				return RunResult{}, err
			}
		}
		m.SetPowerLimit(cfg.Limit)
		return measureSteady(cfg, m, apps, nil)
	}
	specs, err := buildSpecs(cfg)
	if err != nil {
		return RunResult{}, err
	}
	pol, err := buildPolicy(cfg, specs)
	if err != nil {
		return RunResult{}, err
	}
	return runWithPolicy(cfg, specs, pol)
}

// runWithPolicy executes a run under an explicitly constructed policy —
// used by Run and by studies that need policy options the generic builder
// does not expose (e.g. partial LP starvation).
func runWithPolicy(cfg RunConfig, specs []core.AppSpec, pol core.Policy) (res RunResult, err error) {
	cfg.fill()
	m, apps, err := buildPinned(cfg)
	if err != nil {
		return RunResult{}, err
	}
	sw, closeTrace, err := newRunTrace(pol.Name(), specs)
	if err != nil {
		return RunResult{}, err
	}
	defer func() {
		if cerr := closeTrace(); cerr != nil && err == nil {
			res, err = RunResult{}, cerr
		}
	}()
	dcfg := daemon.Config{
		Chip: cfg.Chip, Policy: pol, Apps: specs, Limit: cfg.Limit,
	}
	if sw != nil {
		dcfg.OnSnapshot = sw.Observe
	}
	dmn, err := daemon.New(dcfg, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		return RunResult{}, err
	}
	if err := dmn.AttachVirtual(m); err != nil {
		return RunResult{}, err
	}
	return measureSteady(cfg, m, apps, dmn)
}

// buildPinned constructs the machine and pins the configured workloads.
func buildPinned(cfg RunConfig) (*sim.Machine, []*workload.Instance, error) {
	if len(cfg.Names) == 0 || len(cfg.Names) > cfg.Chip.NumCores {
		return nil, nil, fmt.Errorf("experiments: %d apps on a %d-core chip", len(cfg.Names), cfg.Chip.NumCores)
	}
	m, err := sim.New(cfg.Chip, sim.WithTick(cfg.Tick))
	if err != nil {
		return nil, nil, err
	}
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, nil, err
	}
	apps := make([]*workload.Instance, len(cfg.Names))
	for i := range cfg.Names {
		apps[i] = workload.NewInstance(profiles[i])
		if err := m.Pin(apps[i], i); err != nil {
			return nil, nil, err
		}
	}
	return m, apps, nil
}

// measureSteady runs the warmup and measurement window and packages the
// result.
func measureSteady(cfg RunConfig, m *sim.Machine, apps []*workload.Instance, dmn *daemon.Daemon) (RunResult, error) {
	meter := NewMeter(m)
	m.Run(cfg.Warmup)
	meter.Begin()
	m.Run(cfg.Window)
	if dmn != nil {
		if err := dmn.Err(); err != nil {
			return RunResult{}, err
		}
	}
	res := RunResult{
		Measure: meter.Measure(),
		Parked:  make([]bool, len(cfg.Names)),
		Apps:    apps,
	}
	for i := range cfg.Names {
		res.Parked[i] = m.Idle(i)
	}
	return res, nil
}

// buildSpecs assembles policy app specs from a run config.
func buildSpecs(cfg RunConfig) ([]core.AppSpec, error) {
	profiles, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	specs := make([]core.AppSpec, len(cfg.Names))
	for i := range cfg.Names {
		p := profiles[i]
		specs[i] = core.AppSpec{
			Name: cfg.Names[i],
			Core: i,
			AVX:  p.AVX,
		}
		if cfg.Shares != nil {
			specs[i].Shares = cfg.Shares[i]
		}
		if cfg.HP != nil {
			specs[i].HighPriority = cfg.HP[i]
		}
		if cfg.MaxFreqs != nil {
			specs[i].MaxFreq = cfg.MaxFreqs[i]
		}
		if cfg.Policy == PerfShares {
			if cfg.Baselines != nil {
				specs[i].BaselineIPS = cfg.Baselines[i]
			} else {
				specs[i].BaselineIPS = StandaloneIPS(cfg.Chip, p.Name)
			}
		}
	}
	return specs, nil
}

// buildPolicy constructs the requested policy.
func buildPolicy(cfg RunConfig, specs []core.AppSpec) (core.Policy, error) {
	switch cfg.Policy {
	case FreqShares:
		return core.NewFrequencyShares(cfg.Chip, specs, core.ShareConfig{})
	case PerfShares:
		return core.NewPerformanceShares(cfg.Chip, specs, core.ShareConfig{})
	case PowerShares:
		return core.NewPowerShares(cfg.Chip, specs, core.ShareConfig{})
	case PriorityPol:
		return core.NewPriority(cfg.Chip, specs, core.PriorityConfig{Limit: cfg.Limit})
	}
	return nil, fmt.Errorf("experiments: unknown policy %q", cfg.Policy)
}

// baselineKey caches standalone measurements per chip and profile.
type baselineKey struct {
	chip string
	app  string
}

var (
	baselineMu    sync.Mutex
	baselineCache = make(map[baselineKey]float64)
)

// StandaloneIPS measures (once, then caches) an application's standalone
// performance: one copy alone on the chip with no power limit, the paper's
// offline baseline for performance shares and for "standalone at 85 W"
// normalisation. Single-core occupancy grants full turbo, as on the real
// machines.
func StandaloneIPS(chip platform.Chip, name string) float64 {
	key := baselineKey{chip.Name, name}
	baselineMu.Lock()
	if v, ok := baselineCache[key]; ok {
		baselineMu.Unlock()
		return v
	}
	baselineMu.Unlock()

	m, err := sim.New(chip, sim.WithTick(time.Millisecond))
	if err != nil {
		panic(fmt.Sprintf("experiments: standalone baseline: %v", err))
	}
	p, err := workload.ByName(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: standalone baseline: %v", err))
	}
	in := workload.NewInstance(p)
	if err := m.Pin(in, 0); err != nil {
		panic(fmt.Sprintf("experiments: standalone baseline: %v", err))
	}
	if err := m.SetRequest(0, chip.Freq.Max()); err != nil {
		panic(fmt.Sprintf("experiments: standalone baseline: %v", err))
	}
	meter := NewMeter(m)
	m.Run(2 * time.Second)
	meter.Begin()
	m.Run(8 * time.Second)
	ips := meter.Measure().Cores[0].IPS

	baselineMu.Lock()
	baselineCache[key] = ips
	baselineMu.Unlock()
	return ips
}

// classMeans averages a measurement over the cores for which sel is true.
func classMeans(res RunResult, sel func(i int) bool) (freq units.Hertz, ips float64, power units.Watts, n int) {
	for i := range res.Apps {
		if !sel(i) {
			continue
		}
		cm := res.Cores[i]
		freq += cm.MeanFreq
		ips += cm.IPS
		power += cm.Power
		n++
	}
	if n > 0 {
		freq /= units.Hertz(n)
		ips /= float64(n)
		power /= units.Watts(n)
	}
	return freq, ips, power, n
}
