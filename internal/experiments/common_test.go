package experiments

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestMeterAverages(t *testing.T) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(workload.NewInstance(workload.MustByName("exchange2")), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRequest(0, 2000*units.MHz); err != nil {
		t.Fatal(err)
	}
	meter := NewMeter(m)
	m.Run(time.Second)
	meter.Begin()
	m.Run(2 * time.Second)
	ms := meter.Measure()
	if ms.Duration != 2*time.Second {
		t.Errorf("Duration = %v", ms.Duration)
	}
	if got := ms.Cores[0].MeanFreq; got != 2000*units.MHz {
		t.Errorf("MeanFreq = %v", got)
	}
	wantIPS := workload.MustByName("exchange2").IPS(2000 * units.MHz)
	if rel := (ms.Cores[0].IPS - wantIPS) / wantIPS; rel > 0.01 || rel < -0.01 {
		t.Errorf("IPS = %g, want %g", ms.Cores[0].IPS, wantIPS)
	}
	if ms.PackagePower <= chip.Power.UncorePower {
		t.Errorf("PackagePower = %v", ms.PackagePower)
	}
	// Measure before Begin on a fresh meter returns zeros, not NaN.
	fresh := NewMeter(m)
	z := fresh.Measure()
	if z.Duration != 0 {
		t.Errorf("fresh meter duration = %v", z.Duration)
	}
}

func TestStandaloneIPSCachesAndIsPositive(t *testing.T) {
	chip := platform.Skylake()
	a := StandaloneIPS(chip, "gcc")
	b := StandaloneIPS(chip, "gcc")
	if a <= 0 || a != b {
		t.Errorf("baseline = %g, %g", a, b)
	}
	// gcc standalone gets single-core turbo: baseline should be near its
	// analytic IPS at 3 GHz.
	want := workload.MustByName("gcc").IPS(3000 * units.MHz)
	if rel := (a - want) / want; rel > 0.05 || rel < -0.05 {
		t.Errorf("baseline %g far from analytic %g", a, want)
	}
	// AVX app baseline is capped by the licence.
	lbm := StandaloneIPS(chip, "lbm")
	capped := workload.MustByName("lbm").IPS(1900 * units.MHz)
	if rel := (lbm - capped) / capped; rel > 0.05 || rel < -0.05 {
		t.Errorf("lbm baseline %g far from AVX-capped %g", lbm, capped)
	}
}

func TestRunValidation(t *testing.T) {
	chip := platform.Skylake()
	if _, err := Run(RunConfig{Chip: chip, Policy: RAPL, Limit: 50}); err == nil {
		t.Error("empty names accepted")
	}
	names := make([]string, 11)
	for i := range names {
		names[i] = "gcc"
	}
	if _, err := Run(RunConfig{Chip: chip, Names: names, Policy: RAPL, Limit: 50}); err == nil {
		t.Error("too many apps accepted")
	}
	if _, err := Run(RunConfig{Chip: chip, Names: []string{"nope"}, Policy: RAPL, Limit: 50}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Run(RunConfig{Chip: chip, Names: []string{"gcc"}, Policy: "bogus", Limit: 50}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunRAPLRespectsLimit(t *testing.T) {
	res, err := Run(RunConfig{
		Chip:   platform.Skylake(),
		Names:  []string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN"},
		Policy: RAPL,
		Limit:  40,
		Warmup: 5 * time.Second,
		Window: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PackagePower > 40*1.03 {
		t.Errorf("package power %v exceeds limit", res.PackagePower)
	}
}

func TestTablesRenderNonEmpty(t *testing.T) {
	for _, tb := range []struct {
		name string
		rows int
	}{
		{"Table1", len(Table1().Rows)},
		{"Table2", len(Table2().Rows)},
		{"Table3", len(Table3().Rows)},
	} {
		if tb.rows == 0 {
			t.Errorf("%s empty", tb.name)
		}
	}
}

func TestSummarize(t *testing.T) {
	if got := summarize(nil); got != "-" {
		t.Errorf("empty = %q", got)
	}
	got := summarize([]string{"a", "a", "b"})
	if got != "2x a, 1x b" {
		t.Errorf("summarize = %q", got)
	}
}
