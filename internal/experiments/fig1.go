package experiments

import (
	"time"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/units"
)

// Figure1Row is one power limit's outcome in the motivating experiment.
type Figure1Row struct {
	Limit    units.Watts
	GccFreq  units.Hertz // mean active frequency of the gcc cores
	Cam4Freq units.Hertz
	GccNorm  float64 // performance normalised to standalone at 85 W
	Cam4Norm float64
}

// Figure1Result reproduces Figure 1: performance interference between a
// low-demand application (gcc) and a high-demand AVX application (cam4)
// sharing a Skylake socket under RAPL, normalised to each application's
// standalone execution at 85 W.
type Figure1Result struct {
	Rows []Figure1Row
}

// Figure1Limits are the paper's sweep points.
var Figure1Limits = []units.Watts{85, 70, 60, 50, 45, 40}

// Figure1 runs the motivating RAPL-interference experiment: five copies of
// gcc and five of cam4 on all ten Skylake cores under descending RAPL
// limits. RAPL's fastest-first throttling hits the faster, lower-power gcc
// cores long before the AVX-licence-capped cam4 cores.
func Figure1() (Figure1Result, error) {
	chip := platform.Skylake()
	mix := []string{"gcc", "gcc", "gcc", "gcc", "gcc", "cam4", "cam4", "cam4", "cam4", "cam4"}

	// Standalone baselines: five copies of each application alone at 85 W.
	standalone := func(name string) (float64, error) {
		res, err := Run(RunConfig{
			Chip:   chip,
			Names:  []string{name, name, name, name, name},
			Policy: RAPL,
			Limit:  85,
			Warmup: 5 * time.Second,
			Window: 10 * time.Second,
		})
		if err != nil {
			return 0, err
		}
		_, ips, _, _ := classMeans(res, func(int) bool { return true })
		return ips, nil
	}
	gccBase, err := standalone("gcc")
	if err != nil {
		return Figure1Result{}, err
	}
	cam4Base, err := standalone("cam4")
	if err != nil {
		return Figure1Result{}, err
	}

	var out Figure1Result
	for _, limit := range Figure1Limits {
		res, err := Run(RunConfig{
			Chip:   chip,
			Names:  mix,
			Policy: RAPL,
			Limit:  limit,
			Warmup: 10 * time.Second,
			Window: 10 * time.Second,
		})
		if err != nil {
			return Figure1Result{}, err
		}
		gccF, gccIPS, _, _ := classMeans(res, func(i int) bool { return i < 5 })
		camF, camIPS, _, _ := classMeans(res, func(i int) bool { return i >= 5 })
		out.Rows = append(out.Rows, Figure1Row{
			Limit:    limit,
			GccFreq:  gccF,
			Cam4Freq: camF,
			GccNorm:  gccIPS / gccBase,
			Cam4Norm: camIPS / cam4Base,
		})
	}
	return out, nil
}

// Tables renders the result.
func (r Figure1Result) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Figure 1: RAPL interference, gcc (LD) vs cam4 (HD/AVX), Skylake",
		Header: []string{"limit(W)", "gcc MHz", "cam4 MHz", "gcc norm perf", "cam4 norm perf"},
	}
	for _, row := range r.Rows {
		t.AddRow(trace.W(row.Limit), trace.Hz(row.GccFreq), trace.Hz(row.Cam4Freq),
			trace.F(row.GccNorm, 3), trace.F(row.Cam4Norm, 3))
	}
	return []trace.Table{t}
}
