package experiments

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/units"
)

// PriorityMix is one workload mix of the priority experiments: profile
// names for the high- and low-priority classes (Table 2 for Skylake).
type PriorityMix struct {
	Label string
	HP    []string
	LP    []string
}

// Table2Mixes are the Skylake priority mixes of Table 2.
func Table2Mixes() []PriorityMix {
	return []PriorityMix{
		{"10H 0L",
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN",
				"leela", "leela", "leela", "leela", "leela"},
			nil},
		{"7H 3L",
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN", "leela", "leela", "leela"},
			[]string{"cactusBSSN", "leela", "leela"}},
		{"5H 5L",
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN"},
			[]string{"leela", "leela", "leela", "leela", "leela"}},
		{"3H 7L",
			[]string{"cactusBSSN", "cactusBSSN", "leela"},
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "leela", "leela", "leela", "leela"}},
		{"1H 9L",
			[]string{"cactusBSSN"},
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN",
				"leela", "leela", "leela", "leela", "leela"}},
	}
}

// RyzenMixes are the Figure 8 mixes: similar-demand (8H, 4H4L) and
// mixed-demand (6H2L, 2H6L) variations on eight cores.
func RyzenMixes() []PriorityMix {
	return []PriorityMix{
		{"8H 0L",
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN",
				"leela", "leela", "leela", "leela"},
			nil},
		{"6H 2L",
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "leela", "leela", "leela"},
			[]string{"cactusBSSN", "leela"}},
		{"4H 4L",
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN"},
			[]string{"leela", "leela", "leela", "leela"}},
		{"2H 6L",
			[]string{"cactusBSSN", "leela"},
			[]string{"cactusBSSN", "cactusBSSN", "cactusBSSN", "leela", "leela", "leela"}},
	}
}

// PriorityCell is one (mix, limit, mechanism) outcome, averaged per class.
type PriorityCell struct {
	Mix       string
	Limit     units.Watts
	Policy    PolicyKind // PriorityPol or RAPL
	HPNorm    float64    // mean normalised performance of HP apps
	LPNorm    float64    // 0 when the class is starved
	HPFreq    units.Hertz
	LPFreq    units.Hertz
	HPPower   units.Watts // per-core power where available (Ryzen)
	LPPower   units.Watts
	LPStarved bool
	Package   units.Watts
}

// PriorityResult reproduces Figure 7 (Skylake, priority policy vs RAPL) or
// Figure 8 (Ryzen, priority policy only).
type PriorityResult struct {
	Chip  string
	Cells []PriorityCell
}

// PriorityLimits are the power limits of Figures 7 and 8.
var PriorityLimits = []units.Watts{85, 50, 40}

// Figure7 runs the Skylake priority experiments over the Table 2 mixes,
// under both the priority policy and native RAPL.
func Figure7() (PriorityResult, error) {
	return priorityExperiment(platform.Skylake(), Table2Mixes(), true)
}

// Figure8 runs the Ryzen priority experiments (no RAPL baseline: the
// platform's hardware limiter is undocumented).
func Figure8() (PriorityResult, error) {
	return priorityExperiment(platform.Ryzen(), RyzenMixes(), false)
}

func priorityExperiment(chip platform.Chip, mixes []PriorityMix, withRAPL bool) (PriorityResult, error) {
	out := PriorityResult{Chip: chip.Name}
	for _, mix := range mixes {
		names := append(append([]string{}, mix.HP...), mix.LP...)
		hp := make([]bool, len(names))
		for i := range mix.HP {
			hp[i] = true
		}
		kinds := []PolicyKind{PriorityPol}
		if withRAPL {
			kinds = append(kinds, RAPL)
		}
		for _, limit := range PriorityLimits {
			for _, kind := range kinds {
				cfg := RunConfig{
					Chip:   chip,
					Names:  names,
					HP:     hp,
					Policy: kind,
					Limit:  limit,
				}
				res, err := Run(cfg)
				if err != nil {
					return PriorityResult{}, fmt.Errorf("mix %s limit %v %s: %w", mix.Label, limit, kind, err)
				}
				cell := PriorityCell{Mix: mix.Label, Limit: limit, Policy: kind, Package: res.PackagePower}
				nHP := len(mix.HP)
				hpF, hpIPS, hpP, _ := classMeans(res, func(i int) bool { return i < nHP })
				lpF, lpIPS, lpP, nLP := classMeans(res, func(i int) bool { return i >= nHP })
				cell.HPFreq, cell.HPPower = hpF, hpP
				cell.LPFreq, cell.LPPower = lpF, lpP
				cell.HPNorm = normMean(chip, names[:nHP], res, 0)
				if nLP > 0 {
					cell.LPNorm = normMean(chip, names[nHP:], res, nHP)
					starved := true
					for i := nHP; i < len(names); i++ {
						if !res.Parked[i] {
							starved = false
						}
					}
					cell.LPStarved = starved && kind == PriorityPol
				}
				_ = lpIPS
				_ = hpIPS
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

// normMean averages per-app performance normalised to each app's standalone
// baseline, for apps at core offsets [off, off+len(names)).
func normMean(chip platform.Chip, names []string, res RunResult, off int) float64 {
	if len(names) == 0 {
		return 0
	}
	var sum float64
	for i, n := range names {
		base := StandaloneIPS(chip, n)
		if base > 0 {
			sum += res.Cores[off+i].IPS / base
		}
	}
	return sum / float64(len(names))
}

// Tables renders the result.
func (r PriorityResult) Tables() []trace.Table {
	t := trace.Table{
		Title: "Priority experiments on " + r.Chip + " (Figures 7/8)",
		Header: []string{"mix", "limit(W)", "policy", "HP norm", "LP norm", "HP MHz", "LP MHz",
			"HP W/core", "LP W/core", "LP starved", "pkg W"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Mix, trace.W(c.Limit), string(c.Policy),
			trace.F(c.HPNorm, 3), trace.F(c.LPNorm, 3),
			trace.Hz(c.HPFreq), trace.Hz(c.LPFreq),
			trace.W(c.HPPower), trace.W(c.LPPower),
			fmt.Sprintf("%v", c.LPStarved), trace.W(c.Package))
	}
	return []trace.Table{t}
}
