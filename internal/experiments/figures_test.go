package experiments

import (
	"math"
	"testing"

	"repro/internal/units"
)

// The tests in this file assert the *shapes* of the paper's figures (the
// pass/fail criteria listed in DESIGN.md), not absolute numbers: who wins,
// by roughly what factor, and where the crossovers fall.

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Figure1Limits) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	at := func(limit units.Watts) Figure1Row {
		for _, r := range res.Rows {
			if r.Limit == limit {
				return r
			}
		}
		t.Fatalf("no row for %v", limit)
		return Figure1Row{}
	}
	// At 85 W neither application is throttled.
	r85 := at(85)
	if r85.GccNorm < 0.95 || r85.Cam4Norm < 0.95 {
		t.Errorf("85 W norms = %.3f / %.3f, want ~1", r85.GccNorm, r85.Cam4Norm)
	}
	// Descending limits hit gcc (the faster, low-demand app) much harder
	// than the AVX-capped cam4.
	r40 := at(40)
	gccLoss := 1 - float64(r40.GccFreq)/float64(r85.GccFreq)
	camLoss := 1 - float64(r40.Cam4Freq)/float64(r85.Cam4Freq)
	if gccLoss <= camLoss+0.1 {
		t.Errorf("gcc frequency loss %.2f should far exceed cam4's %.2f", gccLoss, camLoss)
	}
	// At the lowest limit both converge to the same frequency.
	if math.Abs(float64(r40.GccFreq-r40.Cam4Freq)) > 2e8 {
		t.Errorf("40 W frequencies did not converge: %v vs %v", r40.GccFreq, r40.Cam4Freq)
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Median normalised runtime decreases as frequency rises.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Runtime.Median <= last.Runtime.Median {
		t.Errorf("runtime median not decreasing: %.3f -> %.3f", first.Runtime.Median, last.Runtime.Median)
	}
	// Median power increases with frequency.
	if first.Power.Median >= last.Power.Median {
		t.Errorf("power median not increasing")
	}
	// AVX applications saturate: imagick's runtime is identical at every
	// frequency at or above the single-core AVX licence (1.9 GHz).
	bi := indexOf(res.Benchmarks, "imagick")
	var base float64
	for _, row := range res.Rows {
		if row.Freq < 1900*units.MHz {
			continue
		}
		if base == 0 {
			base = row.RuntimeByBench[bi]
			continue
		}
		if math.Abs(row.RuntimeByBench[bi]-base)/base > 0.02 {
			t.Errorf("imagick runtime should saturate above the AVX licence: %.3f vs %.3f at %v",
				row.RuntimeByBench[bi], base, row.Freq)
		}
	}
	// AVX applications are power outliers at high frequency: the p99 of
	// the power distribution sits well above the median.
	top := res.Rows[len(res.Rows)-1]
	if top.Power.P99 < top.Power.Median*1.1 {
		t.Errorf("no AVX power outliers visible: p99 %.2f vs median %.2f", top.Power.P99, top.Power.Median)
	}
	// Energy efficiency: nanojoules per instruction is minimised at an
	// interior frequency — static power dominates at the low end, V² at
	// the high end (the classic energy-optimal DVFS point).
	minEPI, minIdx := res.Rows[0].EnergyPerInstr, 0
	for i, row := range res.Rows {
		if row.EnergyPerInstr < minEPI {
			minEPI, minIdx = row.EnergyPerInstr, i
		}
	}
	if minIdx == 0 || minIdx == len(res.Rows)-1 {
		t.Errorf("energy-optimal frequency at the sweep edge (row %d of %d)", minIdx, len(res.Rows))
	}
	// Turbo power jump: crossing the nominal frequency costs extra power.
	var belowNom, aboveNom float64
	for i := 1; i < len(res.Rows); i++ {
		dP := res.Rows[i].Power.Median - res.Rows[i-1].Power.Median
		if res.Rows[i].Freq <= res.NormFreq {
			if dP > belowNom {
				belowNom = dP
			}
		} else if dP > aboveNom {
			aboveNom = dP
		}
	}
	if aboveNom <= belowNom {
		t.Errorf("no turbo power jump: max step above nominal %.2f <= below %.2f", aboveNom, belowNom)
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// On Ryzen (no AVX licence) performance keeps improving to the top:
	// imagick's runtime at the maximum frequency is strictly below its
	// runtime at 3.0 GHz.
	bi := indexOf(res.Benchmarks, "imagick")
	var at30, atMax float64
	for _, row := range res.Rows {
		if row.Freq == 3000*units.MHz {
			at30 = row.RuntimeByBench[bi]
		}
	}
	atMax = res.Rows[len(res.Rows)-1].RuntimeByBench[bi]
	if atMax >= at30 {
		t.Errorf("Ryzen imagick saturated: %.3f at max vs %.3f at 3 GHz", atMax, at30)
	}
	// Runtime normalisation is at 3.0 GHz: the 3 GHz row's median is ~1.
	for _, row := range res.Rows {
		if row.Freq == 3000*units.MHz && math.Abs(row.Runtime.Median-1) > 0.02 {
			t.Errorf("3 GHz median runtime = %.3f, want ~1", row.Runtime.Median)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(limit units.Watts, thr units.Hertz) Figure4Row {
		for _, r := range res.Rows {
			if r.Limit == limit && r.ThrottleReq == thr {
				return r
			}
		}
		t.Fatalf("missing cell %v/%v", limit, thr)
		return Figure4Row{}
	}
	// Power freed by throttling half the cores speeds up the free half:
	// at 50 W, free cores with an 800 MHz partner beat free cores with a
	// 2.5 GHz partner.
	low := cell(50, 800*units.MHz)
	high := cell(50, 2500*units.MHz)
	if low.FreeNorm <= high.FreeNorm {
		t.Errorf("freed power not reused: %.3f <= %.3f", low.FreeNorm, high.FreeNorm)
	}
	// RAPL reduces only the unconstrained cores: the throttled half runs
	// at its requested frequency.
	if math.Abs(float64(low.ThrottledFreq-800*units.MHz)) > 1e6 {
		t.Errorf("throttled cores ran at %v, want their 800 MHz request", low.ThrottledFreq)
	}
	// At 85 W with everything free there is no throttling at all.
	free85 := cell(85, 2500*units.MHz)
	if free85.FreeNorm < 0.99 {
		t.Errorf("85 W free norm = %.3f", free85.FreeNorm)
	}
	// Lower limits throttle the free cores harder.
	if cell(40, 2000*units.MHz).FreeFreq >= cell(70, 2000*units.MHz).FreeFreq {
		t.Error("free frequency not decreasing with limit")
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	at := func(limit units.Watts) Figure5Row {
		for _, r := range res.Rows {
			if r.Limit == limit {
				return r
			}
		}
		t.Fatalf("missing %v", limit)
		return Figure5Row{}
	}
	// At 85 W colocation is harmless.
	if r := at(85); r.Ratio() > 1.25 {
		t.Errorf("85 W colocation ratio = %.2f, want ~1", r.Ratio())
	}
	// At 40 W the single power virus substantially degrades p90.
	if r := at(40); r.Ratio() < 1.3 {
		t.Errorf("40 W colocation ratio = %.2f, want >1.3", r.Ratio())
	}
	// Lower limits never help latency when colocated.
	if at(35).ColocatedP90 < at(55).ColocatedP90 {
		t.Error("colocated p90 improved as power dropped")
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if res.SoloHD <= res.SoloLD {
		t.Errorf("HD solo power %v should exceed LD solo %v", res.SoloHD, res.SoloLD)
	}
	// Power rises monotonically with the varied share within each combo,
	// and every pair draws less than the HD app alone plus the idle floor.
	var prev units.Watts
	var prevFixed string
	for _, row := range res.Rows {
		if row.FixedApp != prevFixed {
			prev, prevFixed = 0, row.FixedApp
		}
		if row.CorePower <= prev {
			t.Errorf("power not monotone for fixed=%s at %.0f%%: %v <= %v",
				row.FixedApp, row.VariedPct*100, row.CorePower, prev)
		}
		prev = row.CorePower
	}
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}
