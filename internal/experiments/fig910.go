package experiments

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/units"
)

// ShareCell is one (ratio, limit, policy) outcome of the proportional-share
// experiments, averaged per application class (the paper runs one LD class,
// leela, against one HD class, cactusBSSN).
type ShareCell struct {
	LDShare, HDShare units.Shares
	Limit            units.Watts
	Policy           PolicyKind

	LDFreq, HDFreq   units.Hertz
	LDNorm, HDNorm   float64 // normalised performance
	LDPower, HDPower units.Watts

	// Resource fractions: the LD class's share of the total across both
	// classes, per resource (Figure 10's y axis).
	LDFreqFrac, LDPerfFrac, LDPowerFrac float64

	Package units.Watts
}

// ShareResult reproduces Figure 9 (Skylake, frequency vs performance
// shares) or Figure 10 (Ryzen, plus power shares).
type ShareResult struct {
	Chip  string
	Cells []ShareCell
}

// ShareRatios are the LD/HD share ratios swept by Figures 9 and 10.
var ShareRatios = []struct{ LD, HD units.Shares }{
	{90, 10}, {70, 30}, {50, 50}, {30, 70}, {10, 90},
}

// Figure9 runs Skylake proportional-share experiments: five copies of
// leela (LD) at one share level against five of cactusBSSN (HD) at another,
// under frequency and performance shares.
func Figure9() (ShareResult, error) {
	return shareExperiment(platform.Skylake(), 5,
		[]PolicyKind{FreqShares, PerfShares},
		[]units.Watts{85, 50, 40})
}

// Figure10 runs the Ryzen experiments with all three share types at the
// paper's 40 W and 50 W limits.
func Figure10() (ShareResult, error) {
	return shareExperiment(platform.Ryzen(), 4,
		[]PolicyKind{FreqShares, PerfShares, PowerShares},
		[]units.Watts{50, 40})
}

func shareExperiment(chip platform.Chip, perClass int, kinds []PolicyKind, limits []units.Watts) (ShareResult, error) {
	out := ShareResult{Chip: chip.Name}
	names := make([]string, 0, 2*perClass)
	for i := 0; i < perClass; i++ {
		names = append(names, "leela")
	}
	for i := 0; i < perClass; i++ {
		names = append(names, "cactusBSSN")
	}
	for _, ratio := range ShareRatios {
		shares := make([]units.Shares, 2*perClass)
		for i := 0; i < perClass; i++ {
			shares[i] = ratio.LD
			shares[perClass+i] = ratio.HD
		}
		for _, limit := range limits {
			for _, kind := range kinds {
				res, err := Run(RunConfig{
					Chip: chip, Names: names, Shares: shares,
					Policy: kind, Limit: limit,
				})
				if err != nil {
					return ShareResult{}, fmt.Errorf("ratio %d/%d limit %v %s: %w",
						ratio.LD, ratio.HD, limit, kind, err)
				}
				cell := ShareCell{
					LDShare: ratio.LD, HDShare: ratio.HD,
					Limit: limit, Policy: kind, Package: res.PackagePower,
				}
				ldF, _, ldP, _ := classMeans(res, func(i int) bool { return i < perClass })
				hdF, _, hdP, _ := classMeans(res, func(i int) bool { return i >= perClass })
				cell.LDFreq, cell.LDPower = ldF, ldP
				cell.HDFreq, cell.HDPower = hdF, hdP
				cell.LDNorm = normMean(chip, names[:perClass], res, 0)
				cell.HDNorm = normMean(chip, names[perClass:], res, perClass)
				if tot := float64(ldF + hdF); tot > 0 {
					cell.LDFreqFrac = float64(ldF) / tot
				}
				if tot := cell.LDNorm + cell.HDNorm; tot > 0 {
					cell.LDPerfFrac = cell.LDNorm / tot
				}
				if tot := float64(ldP + hdP); tot > 0 {
					cell.LDPowerFrac = float64(ldP) / tot
				}
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

// Tables renders the result.
func (r ShareResult) Tables() []trace.Table {
	t := trace.Table{
		Title: "Proportional shares, leela (LD) vs cactusBSSN (HD) on " + r.Chip + " (Figures 9/10)",
		Header: []string{"shares LD/HD", "limit(W)", "policy",
			"LD MHz", "HD MHz", "LD norm", "HD norm", "LD W", "HD W",
			"LD freq frac", "LD perf frac", "LD power frac", "pkg W"},
	}
	for _, c := range r.Cells {
		t.AddRow(fmt.Sprintf("%d/%d", c.LDShare, c.HDShare), trace.W(c.Limit), string(c.Policy),
			trace.Hz(c.LDFreq), trace.Hz(c.HDFreq),
			trace.F(c.LDNorm, 3), trace.F(c.HDNorm, 3),
			trace.W(c.LDPower), trace.W(c.HDPower),
			trace.Pct(c.LDFreqFrac), trace.Pct(c.LDPerfFrac), trace.Pct(c.LDPowerFrac),
			trace.W(c.Package))
	}
	return []trace.Table{t}
}
