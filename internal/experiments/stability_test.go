package experiments

import "testing"

// The paper's Section 6.2 observation: frequency shares are the most
// stable; performance shares rebalance whenever IPS moves with program
// phase; power shares inherit the same noise through measured activity.
func TestStabilityShape(t *testing.T) {
	res, err := StabilityStudy()
	if err != nil {
		t.Fatal(err)
	}
	byKind := make(map[PolicyKind]StabilityCell)
	for _, c := range res.Cells {
		byKind[c.Policy] = c
	}
	fs, ok1 := byKind[FreqShares]
	ps, ok2 := byKind[PerfShares]
	pw, ok3 := byKind[PowerShares]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing cells: %+v", res.Cells)
	}
	// Frequency shares settle: very little steady-state frequency churn.
	if fs.FreqStdDev >= ps.FreqStdDev {
		t.Errorf("frequency shares churn %.1f MHz not below performance shares %.1f MHz",
			fs.FreqStdDev.MHzF(), ps.FreqStdDev.MHzF())
	}
	if fs.MoveRate > ps.MoveRate {
		t.Errorf("frequency shares move rate %.2f above performance shares %.2f",
			fs.MoveRate, ps.MoveRate)
	}
	// The feedback policies (performance and power) both keep rebalancing
	// against phase noise.
	if ps.MoveRate == 0 && pw.MoveRate == 0 {
		t.Error("feedback policies show no steady-state rebalancing at all; phase noise not reaching the loop")
	}
	// All three hold the power limit.
	for _, c := range res.Cells {
		if c.Package > 40*1.08 {
			t.Errorf("%s: package %v over limit", c.Policy, c.Package)
		}
	}
}
