package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/units"
	"repro/internal/workload"
)

// sloChaosRun mirrors chaosRun with the SLO-feedback policy driving an
// open-loop latency service while the fault injector misbehaves.
func sloChaosRun(t *testing.T, class fault.Class, schedText string, limit units.Watts) (ChaosCell, int) {
	t.Helper()
	sched, err := fault.ParseSchedule(schedText)
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(flight.DefaultCapacity)
	chip := platform.Skylake()
	m, err := sim.New(chip, sim.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	target := 100 * time.Millisecond
	model, err := svc.NewModel(svc.Config{
		Name:     "websearch",
		Cores:    []int{0, 1, 2},
		Seed:     7,
		Arrivals: svc.OpenPoisson,
		Rate:     svc.ConstantRate(120),
		SLO:      target,
		Window:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Attach(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(workload.NewInstance(workload.CPUBurn), 3); err != nil {
		t.Fatal(err)
	}
	specs := []core.AppSpec{
		{Name: "websearch", Core: 0, Shares: 50},
		{Name: "websearch", Core: 1, Shares: 50},
		{Name: "websearch", Core: 2, Shares: 50},
		{Name: "cpuburn", Core: 3, Shares: 50, AVX: true},
	}
	if chip.HardwareRAPLLimit {
		m.SetPowerLimit(limit)
	}
	inj := fault.New(sched, 11)
	inj.Flight(rec)
	inj.Drive(m)

	targets := []core.SLOTarget{{Service: "websearch", P99: target}}
	pol, err := core.NewSLOFeedback(chip, specs, core.SLOConfig{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	dev := inj.WrapDevice(m.Device())
	cell := ChaosCell{Class: class}
	iter, withSLO := 0, 0
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit,
		Interval:   20 * time.Millisecond,
		Flight:     rec,
		Resilience: &daemon.Resilience{},
		SLO:        model,
		SLOTargets: targets,
		OnSnapshot: func(s core.Snapshot) {
			iter++
			if len(s.Services) > 0 {
				withSLO++
			}
			// Machine truth, safe here: snapshots fire on the loop
			// goroutine in lockstep with virtual time.
			if p := m.PackagePower(); iter > 10 && p > cell.MaxPower {
				cell.MaxPower = p
			}
		},
	}, dev, daemon.MachineActuator{M: m, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(1500 * time.Millisecond)
	if err := d.Err(); err != nil {
		t.Fatalf("%s: daemon error: %v", class, err)
	}

	for _, e := range rec.Dump("slo-chaos").Events {
		switch e.Kind {
		case flight.KindFaultInject:
			cell.Windows++
		case flight.KindHealth:
			switch e.Arg {
			case flight.HealthDegraded:
				cell.Degraded++
			case flight.HealthReadmitted:
				cell.Readmitted++
			}
		}
	}
	cell.Recovered = cell.Degraded == cell.Readmitted
	return cell, withSLO
}

// The SLO-feedback policy must survive every fault class the resilient
// daemon handles: keep the machine-truth power near the cap, recover
// every degraded core, and keep consuming service telemetry throughout.
func TestSLOFeedbackUnderFaults(t *testing.T) {
	const limit = units.Watts(35)
	for _, cs := range chaosSchedules {
		cell, withSLO := sloChaosRun(t, cs.class, cs.sched, limit)
		if cell.Windows == 0 {
			t.Errorf("%s: no fault window opened", cell.Class)
		}
		if !cell.Recovered {
			t.Errorf("%s: %d degraded but only %d readmitted", cell.Class, cell.Degraded, cell.Readmitted)
		}
		if cell.MaxPower > limit*125/100 {
			t.Errorf("%s: machine power %v blew through the %v limit", cell.Class, cell.MaxPower, limit)
		}
		if withSLO == 0 {
			t.Errorf("%s: no snapshot carried service telemetry", cell.Class)
		}
	}
}
