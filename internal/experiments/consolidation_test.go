package experiments

import "testing"

// The Section 4.4 trade: starve-all hands HP the turbo headroom (HP runs
// faster, LP gets nothing); partial starvation runs some LP applications at
// the cost of HP turbo. Both hold the limit.
func TestConsolidationStudyShape(t *testing.T) {
	res, err := ConsolidationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	starve, partial := res.Cells[0], res.Cells[1]
	if starve.Variant != "starve-all" || partial.Variant != "partial" {
		t.Fatalf("variant order: %+v", res.Cells)
	}
	// The paper's implementation starves every LP app at 40 W with 3 HP.
	if starve.LPActive != 0 || starve.LPNorm > 0.01 {
		t.Errorf("starve-all left LP running: %+v", starve)
	}
	// Partial mode runs a good chunk of the LP class with real progress.
	if partial.LPActive < 3 {
		t.Errorf("partial mode ran only %d LP apps", partial.LPActive)
	}
	if partial.LPNorm <= 0.01 {
		t.Errorf("partial LP norm = %.3f, want progress", partial.LPNorm)
	}
	// The turbo trade: running LP raises occupancy past the 2-core turbo
	// bin, so partial HP runs slower than starve-all HP.
	if partial.HPFreq >= starve.HPFreq {
		t.Errorf("partial HP %v not below starve-all HP %v", partial.HPFreq, starve.HPFreq)
	}
	// Aggregate useful work still favours partial: 2·HPnorm + 8·LPnorm.
	starveTotal := 2*starve.HPNorm + 8*starve.LPNorm
	partialTotal := 2*partial.HPNorm + 8*partial.LPNorm
	if partialTotal <= starveTotal {
		t.Errorf("partial aggregate %.3f not above starve-all %.3f", partialTotal, starveTotal)
	}
	// Both respect the limit.
	for _, c := range res.Cells {
		if c.Package > 40*1.05 {
			t.Errorf("%s: package %v over 40 W", c.Variant, c.Package)
		}
	}
}
