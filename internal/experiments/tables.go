package experiments

import (
	"fmt"
	"strings"

	"repro/internal/platform"
	"repro/internal/trace"
)

// Table1 renders the paper's Table 1: the power-management features of the
// two evaluation platforms, taken from the platform configurations.
func Table1() trace.Table {
	t := trace.Table{
		Title:  "Table 1: power management features",
		Header: []string{"processor", "feature"},
	}
	for _, chip := range []platform.Chip{platform.Skylake(), platform.Ryzen()} {
		t.AddRow(chip.Name, fmt.Sprintf("%d cores", chip.NumCores))
		t.AddRow("", fmt.Sprintf("%s-%s + %s boost",
			chip.Freq.Min, chip.Freq.Nom, chip.Freq.Max()))
		step := fmt.Sprintf("per-core DVFS, %s increments", chip.Freq.Step)
		if chip.MaxSimultaneousPStates > 0 {
			step += fmt.Sprintf(", %d simultaneous P-states", chip.MaxSimultaneousPStates)
		}
		t.AddRow("", step)
		if chip.HardwareRAPLLimit {
			t.AddRow("", fmt.Sprintf("RAPL power capping (%s-%s)", chip.RAPLMin, chip.RAPLMax))
		}
		if chip.PerCorePower {
			t.AddRow("", "platform and per-core power measurements")
		} else {
			t.AddRow("", "platform power measurements")
		}
	}
	return t
}

// Table2 renders the Skylake priority mixes.
func Table2() trace.Table {
	t := trace.Table{
		Title:  "Table 2: workload mixes for Skylake priority experiments",
		Header: []string{"mix", "HP apps", "LP apps"},
	}
	for _, mix := range Table2Mixes() {
		t.AddRow(mix.Label, summarize(mix.HP), summarize(mix.LP))
	}
	return t
}

// Table3 renders the random-experiment application sets.
func Table3() trace.Table {
	t := trace.Table{
		Title:  "Table 3: applications for random experiments",
		Header: []string{"set", "app 0", "app 1", "app 2", "app 3", "app 4"},
	}
	for _, set := range []string{"A", "B"} {
		row := append([]string{set}, Table3Sets[set]...)
		t.AddRow(row...)
	}
	return t
}

// summarize compresses a name list into "3x cactusBSSN, 2x leela" form.
func summarize(names []string) string {
	if len(names) == 0 {
		return "-"
	}
	counts := make(map[string]int)
	var order []string
	for _, n := range names {
		if counts[n] == 0 {
			order = append(order, n)
		}
		counts[n]++
	}
	parts := make([]string, len(order))
	for i, n := range order {
		parts[i] = fmt.Sprintf("%dx %s", counts[n], n)
	}
	return strings.Join(parts, ", ")
}
