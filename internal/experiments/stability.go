package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// StabilityCell quantifies one policy's control stability over a long
// steady-state run: how much the per-application frequency and normalised
// performance wobble once the loop has settled, and how often the policy
// actually moves a frequency target.
type StabilityCell struct {
	Policy PolicyKind

	// FreqStdDev is the per-app standard deviation of measured frequency
	// across control intervals, averaged over apps (MHz of churn).
	FreqStdDev units.Hertz

	// PerfStdDev is the same for normalised performance.
	PerfStdDev float64

	// MoveRate is the fraction of control intervals in which at least one
	// application's measured frequency moved by more than one P-state
	// quantum — the "control operations to rebalance power" the paper
	// attributes to phase-driven IPS noise.
	MoveRate float64

	Package units.Watts
}

// StabilityResult reproduces the paper's Section 6.2 stability claim:
// "frequency is stable while running, while performance is measured as IPS
// relative to the long-term average... small phase changes can affect
// performance, leading to control operations to rebalance power", and
// power shares inherit the same phase noise through measured activity.
type StabilityResult struct {
	Chip  string
	Cells []StabilityCell
}

// StabilityStudy runs leela/cactusBSSN (both carry phase trains) 50/50 on
// Ryzen at 40 W for 150 control intervals under each share policy and
// measures steady-state churn after discarding the first 30 intervals.
func StabilityStudy() (StabilityResult, error) {
	chip := platform.Ryzen()
	out := StabilityResult{Chip: chip.Name}
	names := []string{"leela", "leela", "leela", "leela",
		"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN"}
	for _, kind := range []PolicyKind{FreqShares, PerfShares, PowerShares} {
		cell, err := stabilityRun(chip, names, kind)
		if err != nil {
			return StabilityResult{}, fmt.Errorf("stability %s: %w", kind, err)
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

func stabilityRun(chip platform.Chip, names []string, kind PolicyKind) (StabilityCell, error) {
	const (
		totalIters = 150
		warmIters  = 30
	)
	m, err := sim.New(chip)
	if err != nil {
		return StabilityCell{}, err
	}
	specs := make([]core.AppSpec, len(names))
	for i, n := range names {
		p := workload.MustByName(n)
		if err := m.Pin(workload.NewInstance(p), i); err != nil {
			return StabilityCell{}, err
		}
		specs[i] = core.AppSpec{
			Name: n, Core: i, Shares: 50, AVX: p.AVX,
			BaselineIPS: StandaloneIPS(chip, n),
		}
	}
	pol, err := buildPolicy(RunConfig{Chip: chip, Policy: kind, Limit: 40}, specs)
	if err != nil {
		return StabilityCell{}, err
	}

	// Record each control interval's per-app frequency and normalised
	// performance.
	freqSeries := make([][]float64, len(specs))
	perfSeries := make([][]float64, len(specs))
	var pkg stats.Accumulator
	iter := 0
	moves := 0
	prevFreqs := make([]units.Hertz, len(specs))
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 40,
		OnSnapshot: func(s core.Snapshot) {
			iter++
			if iter <= warmIters {
				for i, a := range s.Apps {
					prevFreqs[i] = a.Freq
				}
				return
			}
			moved := false
			for i, a := range s.Apps {
				freqSeries[i] = append(freqSeries[i], float64(a.Freq))
				perfSeries[i] = append(perfSeries[i], a.NormPerf())
				if diff := a.Freq - prevFreqs[i]; diff > chip.Freq.Step || diff < -chip.Freq.Step {
					moved = true
				}
				prevFreqs[i] = a.Freq
			}
			if moved {
				moves++
			}
			pkg.Add(float64(s.PackagePower))
		},
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		return StabilityCell{}, err
	}
	if err := d.AttachVirtual(m); err != nil {
		return StabilityCell{}, err
	}
	m.Run(time.Duration(totalIters+1) * time.Second)
	if err := d.Err(); err != nil {
		return StabilityCell{}, err
	}

	cell := StabilityCell{Policy: kind, Package: units.Watts(pkg.Mean())}
	var fsum, psum float64
	for i := range specs {
		fsum += stats.StdDev(freqSeries[i])
		psum += stats.StdDev(perfSeries[i])
	}
	cell.FreqStdDev = units.Hertz(fsum / float64(len(specs)))
	cell.PerfStdDev = psum / float64(len(specs))
	measured := iter - warmIters
	if measured > 0 {
		cell.MoveRate = float64(moves) / float64(measured)
	}
	return cell, nil
}

// Tables renders the result.
func (r StabilityResult) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Stability study (Section 6.2): steady-state control churn on " + r.Chip + " @ 40 W, 50/50 shares",
		Header: []string{"policy", "freq stddev (MHz)", "norm perf stddev", "move rate", "pkg W"},
	}
	for _, c := range r.Cells {
		t.AddRow(string(c.Policy), trace.F(c.FreqStdDev.MHzF(), 1),
			trace.F(c.PerfStdDev, 4), trace.Pct(c.MoveRate), trace.W(c.Package))
	}
	return []trace.Table{t}
}
