package experiments

import "testing"

// Section 4.4: capping the memory-bound class at its useful frequency must
// buy a package power saving several times larger than the total
// throughput loss, while leaving the core-bound class at full speed.
func TestUsefulFreqStudyShape(t *testing.T) {
	res, err := UsefulFreqStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cap <= 0 || res.Cap >= 2500*1e6 {
		t.Errorf("cap = %v, want a binding cap below the all-core ceiling", res.Cap)
	}
	saving := res.PowerSaving()
	loss := res.ThroughputLoss()
	if saving <= 0 {
		t.Fatalf("no power saving: %+v", res)
	}
	if loss < 0 {
		t.Fatalf("negative throughput loss: %+v", res)
	}
	if saving < 3*loss {
		t.Errorf("saving %.1f%% not >= 3x loss %.1f%%", saving*100, loss*100)
	}
	// The core-bound class keeps its ceiling.
	if res.CoreBoundFreq < 2400*1e6 {
		t.Errorf("core-bound class throttled to %v", res.CoreBoundFreq)
	}
}

// Section 8: under performance shares, deflating measured IPS extracts
// extra frequency and hurts honest co-runners, but the stalls cost the
// gamer at least as much useful work as the allocation gains it.
func TestGamingStudyPerfShares(t *testing.T) {
	res, err := GamingStudy(PerfShares)
	if err != nil {
		t.Fatal(err)
	}
	// The gamer extracts extra frequency...
	if res.GamedFreq <= res.HonestFreq {
		t.Errorf("gaming extracted no frequency: %v vs %v", res.GamedFreq, res.HonestFreq)
	}
	// ...which hurts the honest co-runners...
	if res.GamedCoRunnerNorm >= res.HonestCoRunnerNorm {
		t.Errorf("co-runners unharmed: %.3f vs %.3f", res.GamedCoRunnerNorm, res.HonestCoRunnerNorm)
	}
	// ...but does not net the gamer more useful work (the paper's
	// soundness criterion holds for this gaming step).
	if res.GamedSelfIPS > res.HonestSelfIPS*1.02 {
		t.Errorf("gaming was profitable: %.3g vs %.3g useful IPS", res.GamedSelfIPS, res.HonestSelfIPS)
	}
}

// Frequency shares are immune: the allocation ignores IPS, so the gamer
// gains no frequency and only hurts itself.
func TestGamingStudyFreqSharesImmune(t *testing.T) {
	res, err := GamingStudy(FreqShares)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(res.GamedFreq - res.HonestFreq)
	if diff < 0 {
		diff = -diff
	}
	if diff > 100e6 {
		t.Errorf("frequency shares moved with gaming: %v vs %v", res.GamedFreq, res.HonestFreq)
	}
	if res.GamedSelfIPS >= res.HonestSelfIPS {
		t.Errorf("gaming should only hurt the gamer under freq shares: %.3g vs %.3g",
			res.GamedSelfIPS, res.HonestSelfIPS)
	}
}
