package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// RobustnessMix is one randomized mix's outcome.
type RobustnessMix struct {
	Seed            int64
	Limit           units.Watts
	OrderViolations int     // adjacent share pairs whose frequencies invert by more than one step
	PowerOvershoot  float64 // fractional overshoot of the settled window power over the limit (0 if under)
	Starved         int     // apps pinned at the frequency floor
}

// RobustnessResult generalises the paper's random experiments (Section 6.3)
// beyond the two fixed Table 3 sets: many mixes of synthetic workloads with
// random share vectors and limits, checking the two properties a share
// policy must never lose — allocation ordered by shares, and the power
// limit held.
type RobustnessResult struct {
	Chip   string
	Policy PolicyKind
	Mixes  []RobustnessMix
}

// ViolationRate reports the fraction of mixes with any ordering violation.
func (r RobustnessResult) ViolationRate() float64 {
	if len(r.Mixes) == 0 {
		return 0
	}
	bad := 0
	for _, m := range r.Mixes {
		if m.OrderViolations > 0 {
			bad++
		}
	}
	return float64(bad) / float64(len(r.Mixes))
}

// OvershootP90 reports the 90th percentile power overshoot across mixes.
func (r RobustnessResult) OvershootP90() float64 {
	xs := make([]float64, len(r.Mixes))
	for i, m := range r.Mixes {
		xs[i] = m.PowerOvershoot
	}
	return stats.Percentile(xs, 90)
}

// RandomRobustness runs n random mixes on the chip under the policy.
// Each mix fills every core with a synthetic profile, draws shares from
// {10..100} and a limit from [0.45, 0.75] of the chip's RAPL maximum.
func RandomRobustness(chip platform.Chip, kind PolicyKind, n int, seed int64) (RobustnessResult, error) {
	if n <= 0 {
		return RobustnessResult{}, fmt.Errorf("experiments: need a positive mix count")
	}
	out := RobustnessResult{Chip: chip.Name, Policy: kind}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		mixSeed := rng.Int63()
		mix, err := robustnessMix(chip, kind, mixSeed)
		if err != nil {
			return RobustnessResult{}, fmt.Errorf("mix %d (seed %d): %w", i, mixSeed, err)
		}
		out.Mixes = append(out.Mixes, mix)
	}
	return out, nil
}

func robustnessMix(chip platform.Chip, kind PolicyKind, seed int64) (RobustnessMix, error) {
	rng := rand.New(rand.NewSource(seed))
	n := chip.NumCores
	names := make([]string, n)
	profiles := make([]workload.Profile, n)
	shares := make([]units.Shares, n)
	baselines := make([]float64, n)
	for i := 0; i < n; i++ {
		p := workload.Synthetic(fmt.Sprintf("syn%d", i), rng)
		names[i] = p.Name
		profiles[i] = p
		shares[i] = units.Shares(10 + rng.Intn(91))
		baselines[i] = p.IPS(chip.Freq.Ceiling(1, p.AVX))
	}
	span := float64(chip.RAPLMax)
	limit := units.Watts(span * (0.45 + rng.Float64()*0.3))
	res, err := Run(RunConfig{
		Chip: chip, Names: names, Profiles: profiles, Shares: shares,
		Baselines: baselines, Policy: kind, Limit: limit,
		Warmup: 40 * time.Second, Window: 15 * time.Second,
	})
	if err != nil {
		return RobustnessMix{}, err
	}
	mix := RobustnessMix{Seed: seed, Limit: limit}
	// Ordering: for every pair, a strictly larger share must not deliver
	// less of the shared resource than the smaller share, beyond a small
	// quantisation tolerance. Frequency shares are judged on frequency;
	// performance shares on normalised performance. (AVX apps are excluded
	// as comparands: their licence caps them regardless of shares.)
	metric := make([]float64, n)
	var tol float64
	if kind == PerfShares {
		for i := 0; i < n; i++ {
			metric[i] = res.Cores[i].IPS / baselines[i]
		}
		// One P-state step's worth of normalised performance, plus slack
		// for phase noise in the measured window.
		tol = 1.5 * float64(chip.Freq.Step) / float64(chip.Freq.Max())
	} else {
		for i := 0; i < n; i++ {
			metric[i] = float64(res.Cores[i].MeanFreq)
		}
		tol = float64(chip.Freq.Step)
	}
	// Two legitimate exemptions, both consequences the paper itself calls
	// out: an app at its frequency *ceiling* is saturated (min-funding
	// revocation hands its unused entitlement to smaller shares), and an
	// app at the frequency *floor* cannot be pushed lower (the low-
	// dynamic-range effect: "it uses a larger fraction of resources than
	// its share"), so a floor-pinned small-share app may legitimately
	// out-perform a larger share pinned to the same floor.
	atCeil := make([]bool, n)
	atFloor := make([]bool, n)
	for i := 0; i < n; i++ {
		ceil := chip.Freq.Ceiling(n, profiles[i].AVX)
		atCeil[i] = res.Cores[i].MeanFreq >= ceil-chip.Freq.Step
		atFloor[i] = res.Cores[i].MeanFreq <= chip.Freq.Min+chip.Freq.Step
	}
	for i := 0; i < n; i++ {
		if profiles[i].AVX || atCeil[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if profiles[j].AVX || atFloor[j] || shares[i] <= shares[j] {
				continue
			}
			if metric[i] < metric[j]-tol {
				mix.OrderViolations++
			}
		}
	}
	if res.PackagePower > limit {
		mix.PowerOvershoot = float64(res.PackagePower/limit) - 1
	}
	for i := 0; i < n; i++ {
		if res.Cores[i].MeanFreq <= chip.Freq.Min {
			mix.Starved++
		}
	}
	return mix, nil
}

// Tables renders the result.
func (r RobustnessResult) Tables() []trace.Table {
	t := trace.Table{
		Title: fmt.Sprintf("Random robustness: %d synthetic mixes on %s under %s",
			len(r.Mixes), r.Chip, r.Policy),
		Header: []string{"metric", "value"},
	}
	t.AddRow("mixes with ordering violations", trace.Pct(r.ViolationRate()))
	t.AddRow("p90 power overshoot", trace.Pct(r.OvershootP90()))
	var floor float64
	for _, m := range r.Mixes {
		floor += float64(m.Starved)
	}
	t.AddRow("mean apps at frequency floor", trace.F(floor/float64(len(r.Mixes)), 2))
	return []trace.Table{t}
}
