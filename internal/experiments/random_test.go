package experiments

import (
	"testing"

	"repro/internal/platform"
)

func TestRandomRobustnessValidation(t *testing.T) {
	if _, err := RandomRobustness(platform.Skylake(), FreqShares, 0, 1); err == nil {
		t.Error("zero mixes accepted")
	}
}

// Frequency shares must keep both invariants on arbitrary synthetic mixes:
// frequency ordered by shares (among licence-free apps) and power at the
// limit.
func TestRandomRobustnessSkylake(t *testing.T) {
	res, err := RandomRobustness(platform.Skylake(), FreqShares, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ViolationRate(); got != 0 {
		for _, m := range res.Mixes {
			if m.OrderViolations > 0 {
				t.Logf("seed %d limit %v: %d violations", m.Seed, m.Limit, m.OrderViolations)
			}
		}
		t.Errorf("ordering violation rate = %.2f, want 0", got)
	}
	if got := res.OvershootP90(); got > 0.08 {
		t.Errorf("p90 power overshoot = %.3f, want <= 8%%", got)
	}
}

// Performance shares must keep the same invariants on their own metric:
// normalised performance ordered by shares.
func TestRandomRobustnessPerfShares(t *testing.T) {
	res, err := RandomRobustness(platform.Skylake(), PerfShares, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ViolationRate(); got > 0.15 {
		for _, m := range res.Mixes {
			if m.OrderViolations > 0 {
				t.Logf("seed %d limit %v: %d violations", m.Seed, m.Limit, m.OrderViolations)
			}
		}
		t.Errorf("perf-share ordering violation rate = %.2f", got)
	}
	if got := res.OvershootP90(); got > 0.08 {
		t.Errorf("p90 power overshoot = %.3f", got)
	}
}

func TestRandomRobustnessRyzen(t *testing.T) {
	// Ryzen adds the 3-P-state clustering on top; the invariants must
	// survive it (clustering is order-preserving).
	res, err := RandomRobustness(platform.Ryzen(), FreqShares, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ViolationRate(); got != 0 {
		t.Errorf("ordering violation rate = %.2f, want 0", got)
	}
	if got := res.OvershootP90(); got > 0.08 {
		t.Errorf("p90 power overshoot = %.3f, want <= 8%%", got)
	}
	if len(res.Tables()) == 0 || len(res.Tables()[0].Rows) == 0 {
		t.Error("empty tables")
	}
}
