package experiments

import (
	"testing"

	"repro/internal/fault"
)

func TestChaosStudy(t *testing.T) {
	r, err := ChaosStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(chaosSchedules) {
		t.Fatalf("got %d cells, want %d", len(r.Cells), len(chaosSchedules))
	}
	for _, c := range r.Cells {
		if c.Windows == 0 {
			t.Errorf("%s: no fault window opened", c.Class)
		}
		if !c.Recovered {
			t.Errorf("%s: %d degraded but only %d readmitted", c.Class, c.Degraded, c.Readmitted)
		}
		// Machine-truth power must respect the limit with margin even
		// while telemetry lies (one averaging window of slack).
		if c.MaxPower > r.Limit*125/100 {
			t.Errorf("%s: machine power %v blew through the %v limit", c.Class, c.MaxPower, r.Limit)
		}
	}
	// The detectable classes must actually exercise the health machinery.
	for _, c := range r.Cells {
		switch c.Class {
		case fault.ClassEIO, fault.ClassStuck, fault.ClassOffline:
			if c.Degraded == 0 {
				t.Errorf("%s: expected core degradations, saw none", c.Class)
			}
		}
	}
	if tables := r.Tables(); len(tables) != 1 || len(tables[0].Rows) != len(r.Cells) {
		t.Error("Tables() shape wrong")
	}
}
