package experiments

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(mix string, limit units.Watts, kind PolicyKind) PriorityCell {
		for _, c := range res.Cells {
			if c.Mix == mix && c.Limit == limit && c.Policy == kind {
				return c
			}
		}
		t.Fatalf("missing cell %s/%v/%s", mix, limit, kind)
		return PriorityCell{}
	}
	// At 85 W everything runs under the priority policy.
	if c := cell("5H 5L", 85, PriorityPol); c.LPStarved || c.LPNorm <= 0 {
		t.Errorf("85 W starved LP: %+v", c)
	}
	// At 40 W with many HP apps, LP is starved and HP keeps most of its
	// standalone performance.
	c40 := cell("7H 3L", 40, PriorityPol)
	if !c40.LPStarved {
		t.Error("7H 3L at 40 W did not starve LP")
	}
	if c40.HPNorm < 0.5 {
		t.Errorf("7H 3L HP norm = %.3f, too low", c40.HPNorm)
	}
	// Opportunistic scaling: with only 3 HP apps at 40 W, the HP class
	// runs *faster* than at 85 W where all 10 cores are busy.
	h40 := cell("3H 7L", 40, PriorityPol)
	h85 := cell("3H 7L", 85, PriorityPol)
	if !h40.LPStarved {
		t.Error("3H 7L at 40 W should starve LP")
	}
	if h40.HPFreq <= h85.HPFreq {
		t.Errorf("no opportunistic boost: HP %v at 40 W vs %v at 85 W", h40.HPFreq, h85.HPFreq)
	}
	// RAPL makes no class distinction: HP and LP frequencies match.
	r := cell("5H 5L", 40, RAPL)
	if math.Abs(float64(r.HPFreq-r.LPFreq)) > 1e8 {
		t.Errorf("RAPL differentiated classes: %v vs %v", r.HPFreq, r.LPFreq)
	}
	// The priority policy protects HP far better than RAPL at 40 W.
	p := cell("5H 5L", 40, PriorityPol)
	if p.HPNorm <= r.HPNorm {
		t.Errorf("priority HP norm %.3f not above RAPL's %.3f", p.HPNorm, r.HPNorm)
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(mix string, limit units.Watts) PriorityCell {
		for _, c := range res.Cells {
			if c.Mix == mix && c.Limit == limit && c.Policy == PriorityPol {
				return c
			}
		}
		t.Fatalf("missing cell %s/%v", mix, limit)
		return PriorityCell{}
	}
	// At 40 W every mix with an LP class starves it.
	for _, mix := range []string{"6H 2L", "4H 4L", "2H 6L"} {
		if c := cell(mix, 40); !c.LPStarved {
			t.Errorf("%s at 40 W did not starve LP", mix)
		}
	}
	// At 85 W the 4H 4L mix runs its LP class.
	if c := cell("4H 4L", 85); c.LPStarved {
		t.Error("4H 4L at 85 W starved LP")
	}
	// Per-core power is measured on Ryzen: HP power must be positive.
	if c := cell("4H 4L", 50); c.HPPower <= 0 {
		t.Errorf("no per-core power on Ryzen: %+v", c)
	}
	// Package power respects the limit.
	for _, c := range res.Cells {
		if c.Package > c.Limit*1.08 {
			t.Errorf("%s at %v: package %v over limit", c.Mix, c.Limit, c.Package)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(ld units.Shares, limit units.Watts, kind PolicyKind) ShareCell {
		for _, c := range res.Cells {
			if c.LDShare == ld && c.Limit == limit && c.Policy == kind {
				return c
			}
		}
		t.Fatalf("missing cell %d/%v/%s", ld, limit, kind)
		return ShareCell{}
	}
	for _, kind := range []PolicyKind{FreqShares, PerfShares} {
		// Share ordering holds at 50 W: 90/10 puts LD on top, 10/90 HD.
		hi := cell(90, 50, kind)
		lo := cell(10, 50, kind)
		if hi.LDFreq <= hi.HDFreq {
			t.Errorf("%s 90/10: LD %v <= HD %v", kind, hi.LDFreq, hi.HDFreq)
		}
		if lo.LDFreq >= lo.HDFreq {
			t.Errorf("%s 10/90: LD %v >= HD %v", kind, lo.LDFreq, lo.HDFreq)
		}
		// The LD frequency fraction grows with the LD share.
		if hi.LDFreqFrac <= lo.LDFreqFrac {
			t.Errorf("%s: freq fraction not monotone: %.3f <= %.3f", kind, hi.LDFreqFrac, lo.LDFreqFrac)
		}
		// Low dynamic range: even at 10 shares the LD class keeps more
		// than 20%% of the frequency (800 MHz floor).
		if lo.LDFreqFrac < 0.2 {
			t.Errorf("%s: LD freq frac %.3f below the floor-imposed minimum", kind, lo.LDFreqFrac)
		}
		// Power is held at the limit.
		for _, limit := range []units.Watts{50, 40} {
			if c := cell(50, limit, kind); c.Package > limit*1.05 {
				t.Errorf("%s at %v: package %v over limit", kind, limit, c.Package)
			}
		}
	}
	// Frequency and performance shares give similar results (the paper's
	// key simplification argument): compare the 70/30 LD freq fraction.
	f := cell(70, 50, FreqShares)
	p := cell(70, 50, PerfShares)
	if math.Abs(f.LDFreqFrac-p.LDFreqFrac) > 0.15 {
		t.Errorf("freq vs perf shares diverge: %.3f vs %.3f", f.LDFreqFrac, p.LDFreqFrac)
	}
}

func TestFigure10Shape(t *testing.T) {
	res, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(ld units.Shares, limit units.Watts, kind PolicyKind) ShareCell {
		for _, c := range res.Cells {
			if c.LDShare == ld && c.Limit == limit && c.Policy == kind {
				return c
			}
		}
		t.Fatalf("missing cell %d/%v/%s", ld, limit, kind)
		return ShareCell{}
	}
	// Power shares track the power ratio at moderate ratios.
	for _, ratio := range []units.Shares{30, 50, 70} {
		c := cell(ratio, 50, PowerShares)
		want := float64(ratio) / 100
		if math.Abs(c.LDPowerFrac-want) > 0.15 {
			t.Errorf("power shares %d/50W: LD power frac %.3f, want ~%.2f", ratio, c.LDPowerFrac, want)
		}
	}
	// Power shares isolate performance worst: at equal shares, the LD app
	// gets much more performance than the HD app (equal power buys the
	// low-demand app more frequency).
	ps := cell(50, 50, PowerShares)
	if ps.LDNorm <= ps.HDNorm {
		t.Errorf("power shares should favour LD performance at equal shares: %.3f vs %.3f",
			ps.LDNorm, ps.HDNorm)
	}
	// Frequency shares at equal ratio give both classes the same
	// frequency.
	fs := cell(50, 50, FreqShares)
	if math.Abs(float64(fs.LDFreq-fs.HDFreq)) > 2e8 {
		t.Errorf("equal frequency shares diverged: %v vs %v", fs.LDFreq, fs.HDFreq)
	}
	// All policies respect the limit.
	for _, c := range res.Cells {
		if c.Package > c.Limit*1.08 {
			t.Errorf("%s %d/%v: package %v over limit", c.Policy, c.LDShare, c.Limit, c.Package)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	res, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	get := func(set string, idx int, limit units.Watts, kind PolicyKind) RandomCell {
		for _, c := range res.Cells {
			if c.Set == set && c.AppIdx == idx && c.Limit == limit && c.Policy == kind {
				return c
			}
		}
		t.Fatalf("missing cell %s/%d/%v/%s", set, idx, limit, kind)
		return RandomCell{}
	}
	// Set A under frequency shares at 50 W: frequency ordered by shares.
	for i := 0; i < 4; i++ {
		lo := get("A", i, 50, FreqShares)
		hi := get("A", i+1, 50, FreqShares)
		if hi.Freq < lo.Freq-units.Hertz(50*units.MHz) {
			t.Errorf("set A freq not ordered by shares: app%d %v > app%d %v",
				i, lo.Freq, i+1, hi.Freq)
		}
	}
	// Set B's AVX applications saturate below the normal ceiling even at
	// 85 W (cam4 = app 3, lbm = app 4).
	for _, idx := range []int{3, 4} {
		c := get("B", idx, 85, FreqShares)
		if c.Freq > 1800*units.MHz {
			t.Errorf("set B AVX app %d at %v, should be licence-capped", idx, c.Freq)
		}
	}
	// With surplus power (85 W) the policy is work-conserving: min-funding
	// revocation raises every set-A app to the same ceiling, so there is no
	// frequency differentiation.
	spread := func(limit units.Watts, from, to int) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := from; i <= to; i++ {
			f := float64(get("A", i, limit, FreqShares).Freq)
			lo = math.Min(lo, f)
			hi = math.Max(hi, f)
		}
		return hi - lo
	}
	if s := spread(85, 0, 4); s > 5e7 {
		t.Errorf("85 W should be work-conserving (no spread), got %.0f Hz", s)
	}
	// Under pressure the shares differentiate; at 40 W the dynamic range
	// compresses versus 50 W for the middle apps (the paper's "little
	// change in performance for A1-A3" observation).
	if spread(50, 0, 4) <= 1e8 {
		t.Error("no differentiation at 50 W")
	}
	if spread(40, 1, 3) >= spread(50, 1, 3) {
		t.Errorf("mid-app spread should compress at 40 W: %.0f vs %.0f",
			spread(40, 1, 3), spread(50, 1, 3))
	}
}

func TestFigure12And13Shape(t *testing.T) {
	res, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(limit units.Watts, scenario string) LatencyCell {
		for _, c := range res.Cells {
			if c.Limit == limit && c.Scenario == scenario {
				return c
			}
		}
		t.Fatalf("missing cell %v/%s", limit, scenario)
		return LatencyCell{}
	}
	// The policy recovers latency: at the tightest limits, 90/10 frequency
	// shares beat RAPL.
	for _, limit := range []units.Watts{40, 35} {
		rapl := cell(limit, "rapl")
		pol := cell(limit, "freq-shares")
		if pol.Relative >= rapl.Relative {
			t.Errorf("at %v: policy relative %.2f not below RAPL %.2f",
				limit, pol.Relative, rapl.Relative)
		}
		// RAPL colocation hurts substantially at these limits.
		if rapl.Relative < 1.1 {
			t.Errorf("at %v: RAPL colocation ratio %.2f unexpectedly benign", limit, rapl.Relative)
		}
	}
	// Figure 13: under the policy, cpuburn runs far below websearch.
	for _, limit := range Figure12Limits {
		c := cell(limit, "freq-shares")
		if c.CpuburnFreq >= c.WebsearchFreq {
			t.Errorf("at %v: cpuburn %v not below websearch %v", limit, c.CpuburnFreq, c.WebsearchFreq)
		}
	}
	// The paper's unshown claim: "using performance shares provided
	// similar improvements in performance over RAPL".
	for _, limit := range []units.Watts{40, 35} {
		rapl := cell(limit, "rapl")
		perf := cell(limit, "perf-shares")
		freq := cell(limit, "freq-shares")
		if perf.Relative >= rapl.Relative {
			t.Errorf("at %v: perf shares relative %.2f not below RAPL %.2f",
				limit, perf.Relative, rapl.Relative)
		}
		if diff := perf.Relative - freq.Relative; diff > 0.25 || diff < -0.25 {
			t.Errorf("at %v: perf shares %.2f far from freq shares %.2f",
				limit, perf.Relative, freq.Relative)
		}
	}
	f13, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(f13.Cells) != len(Figure12Limits) {
		t.Errorf("Figure13 cells = %d", len(f13.Cells))
	}
}
