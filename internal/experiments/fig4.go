package experiments

import (
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Figure4Row is one (limit, throttle frequency) cell of the RAPL × per-core
// DVFS study.
type Figure4Row struct {
	Limit         units.Watts
	ThrottleReq   units.Hertz // requested frequency of the throttled half
	FreeFreq      units.Hertz // measured frequency of the unconstrained half
	ThrottledFreq units.Hertz // measured frequency of the throttled half
	FreeNorm      float64     // unconstrained performance vs all-free at 85 W
}

// Figure4Result reproduces Figure 4: copies of gcc on all Skylake cores,
// half unconstrained at the maximum request and half throttled to a fixed
// frequency, under descending RAPL limits. Two effects must appear: power
// saved by the throttled half speeds up the unconstrained half, and RAPL
// reduces only the unconstrained (fastest) cores' frequency.
type Figure4Result struct {
	Rows []Figure4Row
}

// Figure4Limits and Figure4Throttles are the sweep points.
var (
	Figure4Limits    = []units.Watts{85, 70, 60, 50, 40}
	Figure4Throttles = []units.Hertz{800 * units.MHz, 1200 * units.MHz, 1600 * units.MHz, 2000 * units.MHz, 2500 * units.MHz}
)

// Figure4 runs the sweep.
func Figure4() (Figure4Result, error) {
	chip := platform.Skylake()

	run := func(limit units.Watts, throttle units.Hertz) (Measure, error) {
		m, err := sim.New(chip)
		if err != nil {
			return Measure{}, err
		}
		for i := 0; i < chip.NumCores; i++ {
			if err := m.Pin(workload.NewInstance(workload.MustByName("gcc")), i); err != nil {
				return Measure{}, err
			}
			req := chip.Freq.Max()
			if i >= chip.NumCores/2 {
				req = throttle
			}
			if err := m.SetRequest(i, req); err != nil {
				return Measure{}, err
			}
		}
		m.SetPowerLimit(limit)
		meter := NewMeter(m)
		m.Run(5 * time.Second)
		meter.Begin()
		m.Run(10 * time.Second)
		return meter.Measure(), nil
	}

	// Baseline: all cores unconstrained at 85 W.
	base, err := run(85, chip.Freq.Max())
	if err != nil {
		return Figure4Result{}, err
	}
	baseIPS := base.Cores[0].IPS

	var out Figure4Result
	for _, limit := range Figure4Limits {
		for _, throttle := range Figure4Throttles {
			ms, err := run(limit, throttle)
			if err != nil {
				return Figure4Result{}, err
			}
			var freeF, thrF units.Hertz
			var freeIPS float64
			half := chip.NumCores / 2
			for i := 0; i < half; i++ {
				freeF += ms.Cores[i].MeanFreq
				freeIPS += ms.Cores[i].IPS
			}
			for i := half; i < chip.NumCores; i++ {
				thrF += ms.Cores[i].MeanFreq
			}
			out.Rows = append(out.Rows, Figure4Row{
				Limit:         limit,
				ThrottleReq:   throttle,
				FreeFreq:      freeF / units.Hertz(half),
				ThrottledFreq: thrF / units.Hertz(chip.NumCores-half),
				FreeNorm:      freeIPS / float64(half) / baseIPS,
			})
		}
	}
	return out, nil
}

// Tables renders the result.
func (r Figure4Result) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Figure 4: RAPL x per-core DVFS (gcc on all Skylake cores, half throttled)",
		Header: []string{"limit(W)", "throttle req MHz", "free MHz", "throttled MHz", "free norm perf"},
	}
	for _, row := range r.Rows {
		t.AddRow(trace.W(row.Limit), trace.Hz(row.ThrottleReq), trace.Hz(row.FreeFreq),
			trace.Hz(row.ThrottledFreq), trace.F(row.FreeNorm, 3))
	}
	return []trace.Table{t}
}
