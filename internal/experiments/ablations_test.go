package experiments

import "testing"

func TestAblationClusteringShape(t *testing.T) {
	res, err := AblationClustering()
	if err != nil {
		t.Fatal(err)
	}
	// The real chip holds at most 3 distinct frequencies.
	if res.DistinctConstrained > 3 {
		t.Errorf("constrained run used %d distinct P-states", res.DistinctConstrained)
	}
	// The unconstrained chip differentiates more finely.
	if res.DistinctFree <= res.DistinctConstrained {
		t.Errorf("free run used %d distinct P-states, constrained %d",
			res.DistinctFree, res.DistinctConstrained)
	}
	// Clustering costs some share-tracking fidelity but not a lot.
	if res.ShareErrConstrained < res.ShareErrFree-1e-9 {
		t.Errorf("clustering somehow tracked better: %.4f vs %.4f",
			res.ShareErrConstrained, res.ShareErrFree)
	}
	if res.ShareErrConstrained > 0.10 {
		t.Errorf("clustering share error %.3f implausibly large", res.ShareErrConstrained)
	}
	if res.MeanAbsDiff < 0 {
		t.Errorf("negative mean abs diff")
	}
}

func TestAblationIntervalShape(t *testing.T) {
	res, err := AblationInterval()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SettleTime == 0 {
			t.Errorf("interval %v never settled (final %v)", row.Interval, row.FinalPower)
		}
		if row.FinalPower > 40*1.06 {
			t.Errorf("interval %v final power %v above limit", row.Interval, row.FinalPower)
		}
	}
	// Faster control intervals settle at least as fast (virtual time).
	slowest := res.Rows[0] // 1 s
	fastest := res.Rows[2] // 100 ms
	if fastest.SettleTime > slowest.SettleTime {
		t.Errorf("100 ms interval settled in %v, slower than 1 s interval's %v",
			fastest.SettleTime, slowest.SettleTime)
	}
	// And run proportionally more iterations.
	if fastest.Iterations <= slowest.Iterations {
		t.Errorf("iteration counts inconsistent: %d vs %d", fastest.Iterations, slowest.Iterations)
	}
}
