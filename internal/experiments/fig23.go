package experiments

import (
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// DVFSRow is one frequency step of a DVFS sweep: the distribution of
// normalised runtime and package power across the SPEC2017 subset, plus
// energy efficiency (the mobile-systems metric the paper contrasts its
// power focus against — Section 2's framing).
type DVFSRow struct {
	Freq    units.Hertz
	Runtime stats.BoxPlot
	Power   stats.BoxPlot

	// EnergyPerInstr is the median nanojoules per instruction across the
	// subset: high at low frequency (static power amortised over few
	// instructions) and at high frequency (V² cost), with the
	// energy-optimal point in between.
	EnergyPerInstr float64

	// RuntimeByBench, PowerByBench and EPIByBench align with the result's
	// Benchmarks.
	RuntimeByBench []float64
	PowerByBench   []float64
	EPIByBench     []float64
}

// DVFSResult reproduces Figures 2 (Skylake) and 3 (Ryzen): the effect of
// DVFS P-states on runtime (normalised to the paper's reference frequency)
// and package power, per benchmark, with box-plot summaries.
type DVFSResult struct {
	Chip       string
	NormFreq   units.Hertz
	Benchmarks []string
	Rows       []DVFSRow
}

// Figure2 sweeps DVFS on Skylake (0.8-3.0 GHz in 200 MHz steps, runtime
// normalised to 2.2 GHz).
func Figure2() (DVFSResult, error) {
	return dvfsSweep(platform.Skylake(), 200*units.MHz)
}

// Figure3 sweeps DVFS on Ryzen (0.4-3.8 GHz in 200 MHz steps, runtime
// normalised to 3.0 GHz).
func Figure3() (DVFSResult, error) {
	return dvfsSweep(platform.Ryzen(), 200*units.MHz)
}

// dvfsSweep pins each benchmark alone on one core, sets every P-state in
// the sweep, and measures steady-state IPS and package power. Normalised
// runtime is the inverse of IPS normalised to the reference frequency.
func dvfsSweep(chip platform.Chip, step units.Hertz) (DVFSResult, error) {
	out := DVFSResult{
		Chip:       chip.Name,
		NormFreq:   chip.NormFreq,
		Benchmarks: workload.Names(),
	}
	var freqs []units.Hertz
	for f := chip.Freq.Min; f <= chip.Freq.Max(); f += step {
		freqs = append(freqs, f)
	}
	// Ensure the normalisation frequency is part of the sweep.
	hasNorm := false
	for _, f := range freqs {
		if f == chip.NormFreq {
			hasNorm = true
		}
	}
	if !hasNorm {
		freqs = append(freqs, chip.NormFreq)
	}

	// ips[bench][freq index], power likewise.
	ips := make([][]float64, len(out.Benchmarks))
	pwr := make([][]float64, len(out.Benchmarks))
	normIPS := make([]float64, len(out.Benchmarks))
	for bi, name := range out.Benchmarks {
		ips[bi] = make([]float64, len(freqs))
		pwr[bi] = make([]float64, len(freqs))
		for fi, f := range freqs {
			m, err := sim.New(chip, sim.WithTick(2*time.Millisecond))
			if err != nil {
				return DVFSResult{}, err
			}
			in := workload.NewInstance(workload.MustByName(name))
			if err := m.Pin(in, 0); err != nil {
				return DVFSResult{}, err
			}
			if err := m.SetRequest(0, f); err != nil {
				return DVFSResult{}, err
			}
			meter := NewMeter(m)
			m.Run(time.Second)
			meter.Begin()
			m.Run(10 * time.Second)
			ms := meter.Measure()
			ips[bi][fi] = ms.Cores[0].IPS
			pwr[bi][fi] = float64(ms.PackagePower)
			if f == chip.NormFreq {
				normIPS[bi] = ms.Cores[0].IPS
			}
		}
	}

	for fi, f := range freqs {
		row := DVFSRow{
			Freq:           f,
			RuntimeByBench: make([]float64, len(out.Benchmarks)),
			PowerByBench:   make([]float64, len(out.Benchmarks)),
			EPIByBench:     make([]float64, len(out.Benchmarks)),
		}
		for bi := range out.Benchmarks {
			row.RuntimeByBench[bi] = normIPS[bi] / ips[bi][fi]
			row.PowerByBench[bi] = pwr[bi][fi]
			row.EPIByBench[bi] = pwr[bi][fi] / ips[bi][fi] * 1e9 // nJ/instr
		}
		row.Runtime = stats.Summarize(row.RuntimeByBench)
		row.Power = stats.Summarize(row.PowerByBench)
		row.EnergyPerInstr = stats.Percentile(row.EPIByBench, 50)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Tables renders the sweep as two tables (runtime and power box plots).
func (r DVFSResult) Tables() []trace.Table {
	rt := trace.Table{
		Title:  "Normalised runtime vs frequency, " + r.Chip + " (norm @ " + r.NormFreq.String() + ")",
		Header: []string{"MHz", "p1", "q1", "median", "q3", "p99"},
	}
	pw := trace.Table{
		Title:  "Package power (W) vs frequency, " + r.Chip,
		Header: []string{"MHz", "p1", "q1", "median", "q3", "p99", "median nJ/instr"},
	}
	for _, row := range r.Rows {
		rt.AddRow(trace.Hz(row.Freq), trace.F(row.Runtime.P1, 3), trace.F(row.Runtime.Q1, 3),
			trace.F(row.Runtime.Median, 3), trace.F(row.Runtime.Q3, 3), trace.F(row.Runtime.P99, 3))
		pw.AddRow(trace.Hz(row.Freq), trace.F(row.Power.P1, 2), trace.F(row.Power.Q1, 2),
			trace.F(row.Power.Median, 2), trace.F(row.Power.Q3, 2), trace.F(row.Power.P99, 2),
			trace.F(row.EnergyPerInstr, 2))
	}
	return []trace.Table{rt, pw}
}
