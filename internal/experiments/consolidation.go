package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/units"
)

// ConsolidationCell is one priority variant's outcome.
type ConsolidationCell struct {
	Variant  string // "starve-all" (the paper's choice) or "partial"
	HPFreq   units.Hertz
	HPNorm   float64
	LPActive int     // LP applications left running
	LPNorm   float64 // mean normalised perf over ALL LP apps (parked = 0)
	Package  units.Watts
}

// ConsolidationResult quantifies the paper's Section 4.4 starvation
// alternative at 40 W with 3 HP and 7 LP applications: the paper's
// implementation starves the whole LP class and spends the freed power on
// HP turbo ("we starve the LP applications"); the partial variant parks
// only as many LP cores as necessary, trading HP turbo headroom for LP
// progress.
type ConsolidationResult struct {
	Cells []ConsolidationCell
}

// ConsolidationStudy runs both variants on the paper's central scenario —
// two low-demand high-priority applications (leela) with eight LP
// applications behind them at 40 W. The residual power affords *some* LP
// applications but not the whole class at once, which is exactly where the
// two variants diverge: starve-all leaves the residual to HP turbo,
// partial spends it on LP progress.
func ConsolidationStudy() (ConsolidationResult, error) {
	chip := platform.Skylake()
	names := []string{"leela", "leela",
		"cactusBSSN", "cactusBSSN", "cactusBSSN", "cactusBSSN",
		"leela", "leela", "leela", "leela"}
	hp := []bool{true, true, false, false, false, false, false, false, false, false}

	run := func(partial bool) (ConsolidationCell, error) {
		variant := "starve-all"
		if partial {
			variant = "partial"
		}
		// Build through the generic runner but with a custom policy: the
		// runner's buildPolicy doesn't know about PartialLP, so construct
		// the pieces here.
		cfg := RunConfig{
			Chip: chip, Names: names, HP: hp,
			Policy: PriorityPol, Limit: 40,
			Warmup: 60 * time.Second, Window: 20 * time.Second,
		}
		specs, err := buildSpecs(cfg)
		if err != nil {
			return ConsolidationCell{}, err
		}
		pol, err := core.NewPriority(chip, specs, core.PriorityConfig{Limit: 40, PartialLP: partial})
		if err != nil {
			return ConsolidationCell{}, err
		}
		res, err := runWithPolicy(cfg, specs, pol)
		if err != nil {
			return ConsolidationCell{}, err
		}
		cell := ConsolidationCell{Variant: variant, Package: res.PackagePower}
		hpF, _, _, _ := classMeans(res, func(i int) bool { return i < 2 })
		cell.HPFreq = hpF
		cell.HPNorm = normMean(chip, names[:2], res, 0)
		cell.LPNorm = normMean(chip, names[2:], res, 2)
		for i := 2; i < len(names); i++ {
			if !res.Parked[i] {
				cell.LPActive++
			}
		}
		return cell, nil
	}

	var out ConsolidationResult
	for _, partial := range []bool{false, true} {
		cell, err := run(partial)
		if err != nil {
			return ConsolidationResult{}, err
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// Tables renders the study.
func (r ConsolidationResult) Tables() []trace.Table {
	t := trace.Table{
		Title:  "Consolidation study (Section 4.4): starve-all vs partial LP starvation, 2 LDHP + 8 LP @ 40 W",
		Header: []string{"variant", "HP MHz", "HP norm", "LP running", "LP norm", "pkg W"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Variant, trace.Hz(c.HPFreq), trace.F(c.HPNorm, 3),
			trace.F(float64(c.LPActive), 0), trace.F(c.LPNorm, 3), trace.W(c.Package))
	}
	return []trace.Table{t}
}
