package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// ChaosCell summarises one fault class's run: what was injected, how the
// resilient daemon reacted, and whether the power cap held on machine truth
// (not on the possibly-lying telemetry).
type ChaosCell struct {
	Class      fault.Class
	Windows    int         // fault windows opened
	Degraded   int         // core degradation events
	Readmitted int         // cores returned to normal control
	MaxPower   units.Watts // worst post-warmup machine-truth package power
	Recovered  bool        // every degraded core was readmitted by the end
}

// ChaosResult is the fault-injection robustness study: each fault class from
// internal/fault run against the resilient daemon on Skylake, three apps on
// frequency shares under a 35 W limit.
type ChaosResult struct {
	Chip  string
	Limit units.Watts
	Cells []ChaosCell
}

// chaosSchedules maps each fault class to a schedule exercising it. The
// stuck window freezes a subset of registers (MPERF + package energy): a
// fully frozen core is indistinguishable from an idle one, while a partial
// freeze is detectably inconsistent.
var chaosSchedules = []struct {
	class fault.Class
	sched string
}{
	{fault.ClassEIO, "at 300ms for 300ms eio cpu=* prob=0.7"},
	{fault.ClassStuck, "at 300ms for 300ms stuck cpu=* regs=MPERF,PKG_ENERGY_STATUS"},
	{fault.ClassTorn, "at 300ms for 300ms torn cpu=*"},
	{fault.ClassLatency, "at 300ms for 300ms latency cpu=* delay=2ms"},
	{fault.ClassThermal, "at 300ms for 300ms thermal cap=1000MHz"},
	{fault.ClassRAPL, "at 300ms for 300ms rapl limit=22W"},
	{fault.ClassOffline, "at 300ms for 300ms offline cpu=1"},
}

// ChaosStudy runs every fault class against the resilient daemon and
// reports the injection counts, health transitions, and the worst
// machine-truth package power.
func ChaosStudy() (ChaosResult, error) {
	chip := platform.Skylake()
	out := ChaosResult{Chip: chip.Name, Limit: 35}
	for _, cs := range chaosSchedules {
		cell, err := chaosRun(chip, cs.class, cs.sched, out.Limit)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("chaos %s: %w", cs.class, err)
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

func chaosRun(chip platform.Chip, class fault.Class, schedText string, limit units.Watts) (ChaosCell, error) {
	sched, err := fault.ParseSchedule(schedText)
	if err != nil {
		return ChaosCell{}, err
	}
	rec := flight.New(flight.DefaultCapacity)
	m, err := sim.New(chip, sim.WithFlightRecorder(rec))
	if err != nil {
		return ChaosCell{}, err
	}
	specs := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 60},
		{Name: "gcc", Core: 1, Shares: 30},
		{Name: "gcc", Core: 2, Shares: 10},
	}
	for _, s := range specs {
		if err := m.Pin(workload.NewInstance(workload.MustByName(s.Name)), s.Core); err != nil {
			return ChaosCell{}, err
		}
	}
	if chip.HardwareRAPLLimit {
		m.SetPowerLimit(limit)
	}
	inj := fault.New(sched, 11)
	inj.Flight(rec)
	inj.Drive(m)

	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		return ChaosCell{}, err
	}
	dev := inj.WrapDevice(m.Device())
	cell := ChaosCell{Class: class}
	iter := 0
	interval := 20 * time.Millisecond
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit, Interval: interval,
		Flight:     rec,
		Resilience: &daemon.Resilience{},
		OnSnapshot: func(core.Snapshot) {
			iter++
			// Machine truth, safe here: snapshots fire on the loop
			// goroutine in lockstep with virtual time.
			if p := m.PackagePower(); iter > 10 && p > cell.MaxPower {
				cell.MaxPower = p
			}
		},
	}, dev, daemon.MachineActuator{M: m, Dev: dev})
	if err != nil {
		return ChaosCell{}, err
	}
	if err := d.AttachVirtual(m); err != nil {
		return ChaosCell{}, err
	}
	m.Run(1500 * time.Millisecond)
	if err := d.Err(); err != nil {
		return ChaosCell{}, err
	}

	for _, e := range rec.Dump("chaos").Events {
		switch e.Kind {
		case flight.KindFaultInject:
			cell.Windows++
		case flight.KindHealth:
			switch e.Arg {
			case flight.HealthDegraded:
				cell.Degraded++
			case flight.HealthReadmitted:
				cell.Readmitted++
			}
		}
	}
	cell.Recovered = cell.Degraded == cell.Readmitted
	return cell, nil
}

// Tables renders the result.
func (r ChaosResult) Tables() []trace.Table {
	t := trace.Table{
		Title: fmt.Sprintf("Chaos study: fault classes vs the resilient daemon on %s @ %s, 60/30/10 shares",
			r.Chip, trace.W(r.Limit)),
		Header: []string{"fault", "windows", "degraded", "readmitted", "recovered", "max pkg W (truth)"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Class.String(), fmt.Sprint(c.Windows), fmt.Sprint(c.Degraded),
			fmt.Sprint(c.Readmitted), fmt.Sprintf("%v", c.Recovered), trace.W(c.MaxPower))
	}
	return []trace.Table{t}
}
