// Package metrics is a dependency-free metrics registry for the
// power-delivery daemon and its subsystems: counters, gauges, and
// histograms, optionally labelled, with Prometheus text-format exposition
// and an expvar-style JSON dump.
//
// The design follows two rules the control loop imposes:
//
//   - Instrumentation must be optional and free when disabled. Every
//     metric's methods are nil-receiver safe, so an uninstrumented
//     component holds nil handles and pays a single branch per event.
//   - Registration is idempotent (get-or-create): components register
//     their families at construction and several instances may share one
//     registry, as Prometheus client libraries allow.
//
// All operations are safe for concurrent use; the HTTP exposition path is
// exercised under the race detector.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// metricKind discriminates family types.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// DefBuckets are the default histogram buckets (seconds), spanning the
// microsecond control-loop iterations up to multi-second stalls.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5,
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reports the current count (zero on a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reports the current value (zero on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeFunc is a gauge whose value is computed at scrape time by a
// callback — used for values that are cheaper to derive than to track,
// such as process uptime. The callback must be safe for concurrent use.
type GaugeFunc struct {
	fn func() float64
}

// Value invokes the callback (zero on a nil GaugeFunc).
func (g *GaugeFunc) Value() float64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	uppers []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // per-bucket (non-cumulative), len(uppers)+1
	sum    float64
	count  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts aligned with uppers plus +Inf.
func (h *Histogram) snapshot() (uppers []float64, cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cumulative[i] = run
	}
	return h.uppers, cumulative, h.sum, h.count
}

// family is one named metric family, possibly labelled.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]any // label-value key -> *Counter/*Gauge/*Histogram
	keys     []string       // insertion order
	lvals    map[string][]string
}

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	}
	f.children[key] = m
	f.keys = append(f.keys, key)
	f.lvals[key] = append([]string(nil), values...)
	return m
}

func newHistogram(buckets []float64) *Histogram {
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	return &Histogram{uppers: uppers, counts: make([]uint64, len(uppers)+1)}
}

func labelKey(values []string) string {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	return key
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (nil on a nil vec).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Counter)
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (nil on a nil vec).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Gauge)
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (nil on a nil vec).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Histogram)
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid "disabled" registry: every
// constructor returns nil handles whose methods no-op.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family registers or fetches a family, enforcing kind and label agreement.
func (r *Registry) family(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s with %d labels (was %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]any),
		lvals:    make(map[string][]string),
	}
	r.fams[name] = f
	r.names = append(r.names, name)
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeFunc registers an unlabelled gauge computed by fn at scrape
// time. Registration is idempotent: if the family already has a child
// (a previous GaugeFunc or a plain Gauge of the same name), the
// existing child wins and fn is dropped.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[""]; ok {
		return
	}
	f.children[""] = &GaugeFunc{fn: fn}
	f.keys = append(f.keys, "")
	f.lvals[""] = nil
}

// Histogram registers (or fetches) an unlabelled histogram with the given
// upper bucket bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.family(name, help, kindHistogram, nil, buckets).child(nil).(*Histogram)
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, buckets)}
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
