package metrics

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Version reports the binary's version string: the module version when
// the binary was built from a tagged module, else the VCS revision the
// go tool stamped into the build info (suffixed "-dirty" for modified
// trees), else "dev". Cheap enough to call once at startup.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// RegisterBuildInfo publishes the process identity series every
// component exports so fleet rollups can detect mixed-version rooms:
//
//	padpd_build_info{component,version,go_version} 1
//	padpd_start_time_seconds                       <unix time>
//	padpd_uptime_seconds                           <live>
//
// component names the binary ("powerd", "powercoord", ...). Safe to
// call more than once and on a nil registry.
func RegisterBuildInfo(r *Registry, component string) {
	if r == nil {
		return
	}
	r.GaugeVec("padpd_build_info",
		"Build and version identity of the process; value is always 1.",
		"component", "version", "go_version").
		With(component, Version(), runtime.Version()).Set(1)
	start := time.Now()
	r.Gauge("padpd_start_time_seconds", "Unix time the process started.").
		Set(float64(start.UnixNano()) / 1e9)
	r.GaugeFunc("padpd_uptime_seconds", "Seconds since the process started.", func() float64 {
		return time.Since(start).Seconds()
	})
}
