package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, a HELP and TYPE line
// each, histogram children expanded to cumulative _bucket/_sum/_count
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, name := range r.names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's children in insertion order.
func (f *family) sortedChildren() (keys []string, lvals map[string][]string, children map[string]any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys = append([]string(nil), f.keys...)
	lvals = make(map[string][]string, len(keys))
	children = make(map[string]any, len(keys))
	for _, k := range keys {
		lvals[k] = f.lvals[k]
		children[k] = f.children[k]
	}
	return keys, lvals, children
}

func (f *family) writePrometheus(w io.Writer) error {
	keys, lvals, children := f.sortedChildren()
	if len(keys) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, key := range keys {
		labels := formatLabels(f.labels, lvals[key])
		switch m := children[key].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(m.Value())); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(m.Value())); err != nil {
				return err
			}
		case *GaugeFunc:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHistogram(w, f.name, f.labels, lvals[key], m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, labelNames, labelValues []string, h *Histogram) error {
	uppers, cumulative, sum, count := h.snapshot()
	for i, up := range uppers {
		le := formatLabels(append(labelNames, "le"), append(append([]string(nil), labelValues...), formatFloat(up)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cumulative[i]); err != nil {
			return err
		}
	}
	le := formatLabels(append(labelNames, "le"), append(append([]string(nil), labelValues...), "+Inf"))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, count); err != nil {
		return err
	}
	base := formatLabels(labelNames, labelValues)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, base, count)
	return err
}

// formatLabels renders {k="v",...}, or "" without labels.
func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// histogramJSON is the JSON dump shape of one histogram.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Mean    float64           `json:"mean"`
	Buckets map[string]uint64 `json:"buckets"`
}

// WriteJSON renders every family as a single JSON object keyed by metric
// name — the expvar-style dump served at /debug/vars. Unlabelled metrics
// map to their value; labelled families map to an object keyed by
// comma-joined label values; histograms map to {count, sum, mean, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	out := make(map[string]any)
	for _, f := range r.sortedFamilies() {
		keys, lvals, children := f.sortedChildren()
		if len(keys) == 0 {
			continue
		}
		if len(f.labels) == 0 {
			out[f.name] = jsonValue(children[keys[0]])
			continue
		}
		sub := make(map[string]any, len(keys))
		for _, k := range keys {
			sub[strings.Join(lvals[k], ",")] = jsonValue(children[k])
		}
		out[f.name] = sub
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Values flattens the registry into a map from Prometheus series name
// (name plus rendered label set, e.g. `powerd_actions_total{kind="set_freq"}`)
// to current value. Counters, gauges, and gauge funcs contribute one
// entry; histograms contribute their _sum and _count series. This is
// the snapshot the control plane piggybacks on status reports so the
// coordinator can aggregate fleet rollups; flat string keys make
// delta-encoding trivial (send only entries that changed).
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		keys, lvals, children := f.sortedChildren()
		for _, k := range keys {
			labels := formatLabels(f.labels, lvals[k])
			switch m := children[k].(type) {
			case *Counter:
				out[f.name+labels] = m.Value()
			case *Gauge:
				out[f.name+labels] = m.Value()
			case *GaugeFunc:
				out[f.name+labels] = m.Value()
			case *Histogram:
				_, _, sum, count := m.snapshot()
				out[f.name+"_sum"+labels] = sum
				out[f.name+"_count"+labels] = float64(count)
			}
		}
	}
	return out
}

func jsonValue(m any) any {
	switch m := m.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return m.Value()
	case *GaugeFunc:
		return m.Value()
	case *Histogram:
		uppers, cumulative, sum, count := m.snapshot()
		hj := histogramJSON{Count: count, Sum: sum, Buckets: make(map[string]uint64, len(uppers)+1)}
		if count > 0 {
			hj.Mean = sum / float64(count)
		}
		for i, up := range uppers {
			hj.Buckets[formatFloat(up)] = cumulative[i]
		}
		hj.Buckets["+Inf"] = count
		return hj
	}
	return nil
}
