package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Get-or-create: same name yields the same counter.
	if again := r.Counter("requests_total", "Requests."); again.Value() != 3.5 {
		t.Fatalf("re-registration returned a fresh counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "Temperature.")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %v, want 40", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 55.55 {
		t.Fatalf("sum = %v, want 55.55", got)
	}
	uppers, cum, _, _ := h.snapshot()
	if len(uppers) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape: %d uppers, %d buckets", len(uppers), len(cum))
	}
	want := []uint64{1, 2, 3, 4} // cumulative across 0.1, 1, 10, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestVecs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("actions_total", "Actions.", "kind")
	cv.With("park").Inc()
	cv.With("park").Inc()
	cv.With("wake").Inc()
	if got := cv.With("park").Value(); got != 2 {
		t.Fatalf("park = %v, want 2", got)
	}
	gv := r.GaugeVec("limit_watts", "Limits.", "node")
	gv.With("n0").Set(25)
	if got := gv.With("n0").Value(); got != 25 {
		t.Fatalf("n0 = %v, want 25", got)
	}
	hv := r.HistogramVec("dur_seconds", "Durations.", nil, "phase")
	hv.With("sample").Observe(0.001)
	if got := hv.With("sample").Count(); got != 1 {
		t.Fatalf("sample count = %d, want 1", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	cv := r.CounterVec("cv", "", "l")
	gv := r.GaugeVec("gv", "", "l")
	hv := r.HistogramVec("hv", "", nil, "l")
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("a").Inc()
	gv.With("a").Set(1)
	hv.With("a").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil metrics accumulated state")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("powerd_iterations_total", "Iterations.").Add(3)
	r.Gauge("powerd_limit_watts", "Limit.").Set(50)
	r.Histogram("powerd_iteration_seconds", "Latency.", []float64{0.01, 0.1}).Observe(0.05)
	r.CounterVec("powerd_actuations_total", "Actuations.", "kind").With("park").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP powerd_iterations_total Iterations.",
		"# TYPE powerd_iterations_total counter",
		"powerd_iterations_total 3",
		"# TYPE powerd_limit_watts gauge",
		"powerd_limit_watts 50",
		"# TYPE powerd_iteration_seconds histogram",
		`powerd_iteration_seconds_bucket{le="0.01"} 0`,
		`powerd_iteration_seconds_bucket{le="0.1"} 1`,
		`powerd_iteration_seconds_bucket{le="+Inf"} 1`,
		"powerd_iteration_seconds_sum 0.05",
		"powerd_iteration_seconds_count 1",
		`powerd_actuations_total{kind="park"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.GaugeVec("b", "", "x").With("v1").Set(2)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"a_total"`, "7", `"b"`, `"v1"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON dump missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h_seconds", "", nil)
	cv := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
				cv.With("a").Inc()
			}
		}()
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.WriteJSON(&sb)
		}
	}()
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := cv.With("a").Value(); got != 8000 {
		t.Fatalf("vec counter = %v, want 8000", got)
	}
}
