package metrics

import (
	"strings"
	"testing"
)

func TestValuesFlattensAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(-1.5)
	r.CounterVec("cv_total", "", "kind").With("a").Add(2)
	r.CounterVec("cv_total", "", "kind").With("b").Inc()
	h := r.Histogram("h_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	r.GaugeFunc("up", "", func() float64 { return 7 })

	v := r.Values()
	want := map[string]float64{
		"c_total":            3,
		"g":                  -1.5,
		`cv_total{kind="a"}`: 2,
		`cv_total{kind="b"}`: 1,
		"h_seconds_sum":      0.55,
		"h_seconds_count":    2,
		"up":                 7,
	}
	for k, wv := range want {
		if got, ok := v[k]; !ok || got != wv {
			t.Errorf("Values[%q] = %v (present=%v), want %v", k, got, ok, wv)
		}
	}
	if len(v) != len(want) {
		t.Errorf("Values has %d entries, want %d: %v", len(v), len(want), v)
	}

	var nilReg *Registry
	if nilReg.Values() != nil {
		t.Errorf("nil registry Values should be nil")
	}
}

func TestGaugeFuncExposition(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.GaugeFunc("ticks", "live ticks", func() float64 { n++; return n })
	// Re-registration keeps the first callback.
	r.GaugeFunc("ticks", "live ticks", func() float64 { return -99 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE ticks gauge\n") || !strings.Contains(out, "ticks 1\n") {
		t.Fatalf("prometheus output missing gauge func series:\n%s", out)
	}
	b.Reset()
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ticks": 2`) {
		t.Fatalf("json output missing gauge func value:\n%s", b.String())
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "powerd")
	RegisterBuildInfo(r, "powerd") // idempotent

	v := r.Values()
	var infoSeries string
	for k, val := range v {
		if strings.HasPrefix(k, "padpd_build_info{") {
			if infoSeries != "" {
				t.Fatalf("duplicate build info series: %q and %q", infoSeries, k)
			}
			infoSeries = k
			if val != 1 {
				t.Errorf("%s = %v, want 1", k, val)
			}
		}
	}
	if infoSeries == "" || !strings.Contains(infoSeries, `component="powerd"`) ||
		!strings.Contains(infoSeries, "go_version=") || !strings.Contains(infoSeries, "version=") {
		t.Fatalf("build info series missing or malformed: %q (all: %v)", infoSeries, v)
	}
	if v["padpd_start_time_seconds"] <= 0 {
		t.Errorf("start time = %v", v["padpd_start_time_seconds"])
	}
	if up, ok := v["padpd_uptime_seconds"]; !ok || up < 0 {
		t.Errorf("uptime = %v (present=%v)", up, ok)
	}

	RegisterBuildInfo(nil, "powerd") // must not panic
}
