// Package decisions is the control loop's structured decision journal:
// for every policy update it records the observed snapshot, the actions
// emitted, and the machine-readable reasons the policy gave through the
// core.Explainer interface. The journal is a fixed-capacity ring — the
// daemon appends once per control interval forever, the HTTP status
// endpoint reads the tail — so memory stays bounded no matter how long the
// daemon runs, and the paper's Section 5 control loop ("sample, decide,
// actuate, once per second") becomes inspectable while it runs instead of
// only in post-hoc CSVs.
package decisions

import (
	"sync"
	"time"

	"repro/internal/core"
)

// AppTrace is one application's telemetry inside a journal entry.
type AppTrace struct {
	Name   string  `json:"name"`
	Core   int     `json:"core"`
	MHz    float64 `json:"mhz"`
	IPS    float64 `json:"ips"`
	Watts  float64 `json:"watts"`
	Parked bool    `json:"parked"`
}

// ActionTrace is one emitted action inside a journal entry.
type ActionTrace struct {
	Core int     `json:"core"`
	MHz  float64 `json:"mhz,omitempty"`
	Park bool    `json:"park,omitempty"`
}

// Entry is one control interval's decision record.
type Entry struct {
	// Seq numbers entries from 1 in append order; the ring may have
	// discarded earlier entries but Seq keeps the absolute position.
	Seq uint64 `json:"seq"`

	// TimeSeconds is the snapshot's (virtual or wall) clock.
	TimeSeconds float64 `json:"time_seconds"`

	Policy            string   `json:"policy"`
	Reasons           []string `json:"reasons"`
	LimitWatts        float64  `json:"limit_watts"`
	PackagePowerWatts float64  `json:"package_power_watts"`

	Apps    []AppTrace    `json:"apps,omitempty"`
	Actions []ActionTrace `json:"actions,omitempty"`
}

// Record builds an entry from a policy update. Seq is assigned by Append.
func Record(policy string, reasons []core.Reason, s core.Snapshot, actions []core.Action) Entry {
	e := Entry{
		TimeSeconds:       s.Time.Seconds(),
		Policy:            policy,
		Reasons:           make([]string, len(reasons)),
		LimitWatts:        float64(s.Limit),
		PackagePowerWatts: float64(s.PackagePower),
		Apps:              make([]AppTrace, len(s.Apps)),
	}
	for i, r := range reasons {
		e.Reasons[i] = string(r)
	}
	for i, a := range s.Apps {
		e.Apps[i] = AppTrace{
			Name:   a.Spec.Name,
			Core:   a.Spec.Core,
			MHz:    a.Freq.MHzF(),
			IPS:    a.IPS,
			Watts:  float64(a.Power),
			Parked: a.Parked,
		}
	}
	for _, a := range actions {
		at := ActionTrace{Core: a.Core, Park: a.Park}
		if !a.Park {
			at.MHz = a.Freq.MHzF()
		}
		e.Actions = append(e.Actions, at)
	}
	return e
}

// Journal is a bounded, concurrency-safe ring of decision entries. A nil
// *Journal is a valid disabled journal: Append no-ops and readers see
// nothing.
type Journal struct {
	mu      sync.Mutex
	entries []Entry // ring storage
	next    int     // ring write position
	filled  bool
	seq     uint64
	started time.Time
}

// DefaultCapacity bounds the journal when callers pass a non-positive
// capacity: at the paper's 1 s control interval it retains the last ~8.5
// minutes of decisions.
const DefaultCapacity = 512

// NewJournal returns a journal retaining the last capacity entries
// (DefaultCapacity when non-positive).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{entries: make([]Entry, capacity), started: time.Now()}
}

// Append stamps the entry with the next sequence number and stores it,
// evicting the oldest entry once the ring is full.
func (j *Journal) Append(e Entry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	j.entries[j.next] = e
	j.next++
	if j.next == len(j.entries) {
		j.next = 0
		j.filled = true
	}
}

// Total reports how many entries have ever been appended.
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Len reports how many entries are currently retained.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lenLocked()
}

func (j *Journal) lenLocked() int {
	if j.filled {
		return len(j.entries)
	}
	return j.next
}

// Tail returns the most recent n entries, oldest first. Non-positive or
// oversized n returns everything retained.
func (j *Journal) Tail(n int) []Entry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	have := j.lenLocked()
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Entry, 0, n)
	start := j.next - n
	if !j.filled {
		start = j.next - n // same: next == have here
	}
	for i := 0; i < n; i++ {
		idx := start + i
		if idx < 0 {
			idx += len(j.entries)
		}
		out = append(out, j.entries[idx])
	}
	return out
}

// Last returns the most recent entry and whether one exists.
func (j *Journal) Last() (Entry, bool) {
	t := j.Tail(1)
	if len(t) == 0 {
		return Entry{}, false
	}
	return t[0], true
}
